#!/usr/bin/env bash
# Fail on dead relative links in the repo's markdown docs.
#
# Scans README.md and docs/*.md for [text](target) links, resolves each
# relative target against the file that contains it, and exits non-zero
# listing every target that does not exist. External links (http/https/
# mailto) and pure in-page anchors (#...) are skipped; a trailing
# #anchor on a file link is stripped before the existence check.
#
#   ./scripts/check_doc_links.sh   # run from anywhere inside the repo

set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root" || exit 1

docs=(README.md)
while IFS= read -r f; do docs+=("$f"); done < <(find docs -name '*.md' 2>/dev/null | sort)

fail=0
checked=0
for doc in "${docs[@]}"; do
  [ -f "$doc" ] || continue
  dir="$(dirname "$doc")"
  # Extract every (...) target of a markdown link.
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*) continue ;;  # external
      '#'*) continue ;;                          # in-page anchor
    esac
    path="${target%%#*}"                         # strip #anchor
    [ -n "$path" ] || continue
    checked=$((checked + 1))
    if [ ! -e "$dir/$path" ]; then
      echo "DEAD LINK: $doc -> $target" >&2
      fail=1
    fi
  done < <(grep -oE '\]\([^)]+\)' "$doc" | sed -E 's/^\]\(//; s/\)$//')
done

if [ "$fail" -ne 0 ]; then
  echo "doc link check failed" >&2
  exit 1
fi
echo "doc link check passed ($checked relative links across ${#docs[@]} files)"
