#!/usr/bin/env bash
# Validate a --metrics-out dump (seqge-metrics-v1) and assert that
# required metrics are present and non-trivial.
#
#   ./scripts/check_metrics_json.sh FILE [span=NAME|counter=NAME|
#                                         counter0=NAME|gauge=NAME|
#                                         histogram=NAME]...
#
# Checks always applied to FILE:
#   * parses as JSON with "schema": "seqge-metrics-v1"
#   * "metrics" is a list; every entry has name/type/labels and the
#     per-type value fields (counter/gauge: value; histogram: count,
#     sum, max, p50/p95/p99, bounds, buckets with len(bounds)+1)
#
# Each extra argument is a requirement:
#   span=walk_gen        seqge_span_wall_us{span="walk_gen"} exists
#                        with count > 0 (and its cpu twin exists)
#   counter=NAME         counter NAME exists with value > 0
#   counter0=NAME        counter NAME exists (zero allowed — for shed
#                        counters that legitimately stay 0 in a
#                        well-provisioned leg)
#   gauge=NAME           gauge NAME exists (any value)
#   histogram=NAME       histogram NAME exists with count > 0
#
# Exits non-zero listing every unmet requirement. Used by the CI
# metrics job on the bench_serving / bench_pipeline / embedding_server
# dumps and by the net job on the bench_net dump (seqge_net_*).

set -u

if [ "$#" -lt 1 ]; then
  echo "usage: $0 FILE [span=NAME|counter=NAME|gauge=NAME|histogram=NAME]..." >&2
  exit 2
fi

file="$1"
shift

if [ ! -f "$file" ]; then
  echo "check_metrics_json: no such file: $file" >&2
  exit 1
fi

python3 - "$file" "$@" <<'PY'
import json
import sys

path = sys.argv[1]
reqs = sys.argv[2:]

fail = []

try:
    with open(path) as f:
        doc = json.load(f)
except (OSError, ValueError) as e:
    print(f"check_metrics_json: {path}: not valid JSON: {e}",
          file=sys.stderr)
    sys.exit(1)

if doc.get("schema") != "seqge-metrics-v1":
    fail.append(f'schema is {doc.get("schema")!r}, want "seqge-metrics-v1"')

metrics = doc.get("metrics")
if not isinstance(metrics, list):
    fail.append('"metrics" missing or not a list')
    metrics = []

for i, m in enumerate(metrics):
    where = f"metrics[{i}]"
    if not isinstance(m, dict):
        fail.append(f"{where}: not an object")
        continue
    name = m.get("name")
    where = f"metrics[{i}] ({name})"
    if not isinstance(name, str) or not name:
        fail.append(f"{where}: missing name")
    mtype = m.get("type")
    if mtype not in ("counter", "gauge", "histogram"):
        fail.append(f"{where}: bad type {mtype!r}")
        continue
    if not isinstance(m.get("labels"), dict):
        fail.append(f"{where}: missing labels object")
    if mtype in ("counter", "gauge"):
        if not isinstance(m.get("value"), int):
            fail.append(f"{where}: {mtype} without integer value")
    else:
        for key in ("count", "sum", "max", "p50", "p95", "p99"):
            if not isinstance(m.get(key), (int, float)):
                fail.append(f"{where}: histogram missing {key}")
        bounds = m.get("bounds")
        buckets = m.get("buckets")
        if not isinstance(bounds, list) or not isinstance(buckets, list):
            fail.append(f"{where}: histogram missing bounds/buckets")
        elif len(buckets) != len(bounds) + 1:
            fail.append(f"{where}: {len(buckets)} buckets for "
                        f"{len(bounds)} bounds (want bounds+1)")
        elif isinstance(m.get("count"), int) and sum(buckets) != m["count"]:
            fail.append(f"{where}: bucket sum {sum(buckets)} != count "
                        f"{m['count']}")


def find(name, mtype, labels=None):
    for m in metrics:
        if not isinstance(m, dict) or m.get("name") != name:
            continue
        if m.get("type") != mtype:
            continue
        if labels is not None and m.get("labels") != labels:
            continue
        return m
    return None


for req in reqs:
    kind, _, name = req.partition("=")
    if not name:
        fail.append(f"malformed requirement {req!r}")
    elif kind == "span":
        wall = find("seqge_span_wall_us", "histogram", {"span": name})
        cpu = find("seqge_span_cpu_us", "histogram", {"span": name})
        if wall is None or cpu is None:
            fail.append(f"span {name!r}: wall/cpu histograms missing")
        elif not wall.get("count"):
            fail.append(f"span {name!r}: recorded zero samples")
    elif kind == "counter":
        m = find(name, "counter")
        if m is None:
            fail.append(f"counter {name!r}: missing")
        elif not m.get("value"):
            fail.append(f"counter {name!r}: value is zero")
    elif kind == "counter0":
        if find(name, "counter") is None:
            fail.append(f"counter {name!r}: missing")
    elif kind == "gauge":
        if find(name, "gauge") is None:
            fail.append(f"gauge {name!r}: missing")
    elif kind == "histogram":
        m = find(name, "histogram")
        if m is None:
            fail.append(f"histogram {name!r}: missing")
        elif not m.get("count"):
            fail.append(f"histogram {name!r}: recorded zero samples")
    else:
        fail.append(f"unknown requirement kind {kind!r} in {req!r}")

if fail:
    for f_ in fail:
        print(f"check_metrics_json: {path}: {f_}", file=sys.stderr)
    sys.exit(1)

print(f"check_metrics_json: {path}: OK "
      f"({len(metrics)} metrics, {len(reqs)} requirements)")
PY
