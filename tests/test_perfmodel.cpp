// Tests for the op-count formulas and the paper-anchored CPU latency
// models used by the Tables 3/4 benches.

#include <gtest/gtest.h>

#include "perfmodel/cpu_model.hpp"
#include "perfmodel/op_counts.hpp"

namespace seqge::perfmodel {
namespace {

TEST(WalkShape, PaperDefaults) {
  WalkShape s;
  EXPECT_EQ(s.contexts(), 73u);
  EXPECT_EQ(s.samples_per_context(), 77u);
}

TEST(OpCounts, HandComputedSmallShape) {
  // dims 2, window 3, ns 1, length 4 -> 2 contexts, 2 positives each,
  // 2 samples per positive.
  const WalkShape s{2, 3, 1, 4};
  EXPECT_EQ(s.contexts(), 2u);
  EXPECT_EQ(s.samples_per_context(), 4u);

  // SGNS: per positive (1+1)*3*2 + 2 = 14; per context 2*14 = 28; walk 56.
  EXPECT_EQ(sgns_walk_ops(s).macs, 56u);
  // OS-ELM alg1: per context 4*4 + 2*2 + 2*2*4 = 36; walk 72.
  EXPECT_EQ(oselm_walk_ops(s).macs, 72u);
  // Dataflow: per context 3*4 + 3*2 + 2*2*4 = 34; walk 68 + commit 4 = 72.
  EXPECT_EQ(oselm_dataflow_walk_ops(s).macs, 72u);
}

TEST(OpCounts, ProposedBeatsOriginalOnlyWhenPIsCheap) {
  // At the paper's shape, the OS-ELM P-update (O(N^2)) makes the
  // proposed model's op count *higher* than SGNS at large N — the
  // speedup in Table 3 comes from the single-epoch analytic training and
  // implementation, not from fewer MACs per context. Verify the
  // crossover exists.
  WalkShape small{8, 8, 10, 80};
  WalkShape large{96, 8, 10, 80};
  EXPECT_LT(oselm_walk_ops(small).macs * 3,
            sgns_walk_ops(small).macs * 4);  // comparable at small N
  EXPECT_GT(oselm_walk_ops(large).macs, sgns_walk_ops(large).macs);
}

TEST(OpCounts, DataflowSavesOneMatvec) {
  const WalkShape s{32, 8, 10, 80};
  const auto alg1 = oselm_walk_ops(s);
  const auto alg2 = oselm_dataflow_walk_ops(s);
  EXPECT_LT(alg2.macs, alg1.macs);
  // Savings ~= contexts * N^2 (minus the per-walk commit).
  const std::uint64_t saving = alg1.macs - alg2.macs;
  EXPECT_NEAR(static_cast<double>(saving),
              static_cast<double>(s.contexts() * 32 * 32 - 32 * 32 -
                                  s.contexts() * 32),
              static_cast<double>(s.contexts() * 32 * 2));
}

TEST(QuadraticFit, ExactThroughAnchors) {
  const auto m = QuadraticLatencyModel::fit3(32, 10.0, 64, 30.0, 96, 70.0);
  EXPECT_NEAR(m.predict_ms(32), 10.0, 1e-9);
  EXPECT_NEAR(m.predict_ms(64), 30.0, 1e-9);
  EXPECT_NEAR(m.predict_ms(96), 70.0, 1e-9);
}

TEST(QuadraticFit, RejectsDuplicateAnchors) {
  EXPECT_THROW(QuadraticLatencyModel::fit3(32, 1, 32, 2, 96, 3),
               std::invalid_argument);
}

TEST(CpuModels, ReproducePaperAnchors) {
  EXPECT_NEAR(a53_original_model().predict_ms(32), 35.357, 1e-6);
  EXPECT_NEAR(a53_original_model().predict_ms(64), 100.291, 1e-6);
  EXPECT_NEAR(a53_original_model().predict_ms(96), 202.175, 1e-6);
  EXPECT_NEAR(a53_proposed_model().predict_ms(96), 72.612, 1e-6);
  EXPECT_NEAR(i7_original_model().predict_ms(32), 1.309, 1e-6);
  EXPECT_NEAR(i7_proposed_model().predict_ms(64), 1.426, 1e-6);
}

TEST(CpuModels, PaperSpeedupRatiosRecovered) {
  // Table 3 headline: 45.50x (dims 32) to 205.25x (dims 96) vs the
  // original model on the A53, using the paper's FPGA latencies.
  const double fpga_ms[] = {0.777, 0.878, 0.985};
  const std::size_t dims[] = {32, 64, 96};
  const double expected[] = {45.504, 114.227, 205.254};
  const auto a53 = a53_original_model();
  for (int i = 0; i < 3; ++i) {
    const double speedup = a53.predict_ms(dims[i]) / fpga_ms[i];
    EXPECT_NEAR(speedup, expected[i], 0.01) << "dims " << dims[i];
  }
}

TEST(CpuModels, ProposedFasterThanOriginalAcrossMeasuredRange) {
  // Quadratic fits are trustworthy only inside the measured range
  // [32, 96]; outside it the extrapolated curves may cross.
  for (std::size_t dims = 32; dims <= 96; dims += 8) {
    EXPECT_LT(a53_proposed_model().predict_ms(dims),
              a53_original_model().predict_ms(dims))
        << dims;
    EXPECT_LT(i7_proposed_model().predict_ms(dims),
              i7_original_model().predict_ms(dims))
        << dims;
  }
}

}  // namespace
}  // namespace seqge::perfmodel
