// Parameterized property sweeps (TEST_P) over configuration space:
// OS-ELM stability across dims/mu/p0, walker correctness across p/q,
// dataflow-vs-alg1 consistency across window sizes, and fixed-point core
// stability across value ranges.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "embedding/oselm_dataflow.hpp"
#include "embedding/oselm_skipgram.hpp"
#include "fpga/hls_core.hpp"
#include "graph/generators.hpp"
#include "linalg/kernels.hpp"
#include "util/rng.hpp"
#include "walk/corpus.hpp"
#include "walk/node2vec_walker.hpp"

namespace seqge {
namespace {

// ---------------------------------------------------------------------
// OS-ELM stability sweep: across (dims, mu, p0) the model must stay
// finite, keep P positive-diagonal, and reduce squared error on a
// repeated workload.
class OselmStabilityTest
    : public ::testing::TestWithParam<std::tuple<int, double, double>> {};

TEST_P(OselmStabilityTest, StaysFiniteAndLearns) {
  const auto [dims, mu, p0] = GetParam();
  Rng rng(101);
  OselmSkipGram::Options opts;
  opts.dims = static_cast<std::size_t>(dims);
  opts.mu = mu;
  opts.p0 = p0;
  OselmSkipGram model(30, opts, rng);

  Rng wrng(102);
  std::vector<NodeId> walk(12);
  const std::vector<NodeId> negs = {27, 28, 29};
  double first = 0, last = 0;
  for (int iter = 0; iter < 50; ++iter) {
    for (auto& v : walk) v = static_cast<NodeId>(wrng.bounded(25));
    std::span<const NodeId> ws(walk);
    double err = 0;
    for_each_context(ws, 4, [&](const WalkContext& ctx) {
      err += model.train_context(ctx, negs);
    });
    if (iter == 0) first = err;
    last = err;
  }
  EXPECT_TRUE(std::isfinite(last));
  EXPECT_LT(last, first * 1.5) << "error must not blow up";
  for (std::size_t i = 0; i < opts.dims; ++i) {
    EXPECT_GT(model.covariance()(i, i), 0.0f);
    EXPECT_TRUE(std::isfinite(model.covariance()(i, i)));
  }
  for (float v : model.beta_transposed().flat()) {
    ASSERT_TRUE(std::isfinite(v));
  }
}

INSTANTIATE_TEST_SUITE_P(
    DimsMuP0, OselmStabilityTest,
    ::testing::Combine(::testing::Values(4, 16, 48),
                       ::testing::Values(0.005, 0.01, 0.1),
                       ::testing::Values(1.0, 10.0, 100.0)));

// ---------------------------------------------------------------------
// Walker sweep: across (p, q) every step must follow an edge and the
// analytic one-step distribution must match empirically on a fixed
// small graph.
class WalkerBiasTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(WalkerBiasTest, OneStepDistributionMatchesFormula) {
  const auto [p, q] = GetParam();
  // Lollipop: triangle 0-1-2 plus stick 2-3.
  const std::vector<Edge> edges = {{0, 1}, {1, 2}, {0, 2}, {2, 3}};
  const Graph g = Graph::from_edges(4, edges);

  Node2VecParams params;
  params.p = p;
  params.q = q;
  Node2VecWalker<Graph> walker(g, params);

  // From (prev=0, cur=2): neighbors of 2 are {0, 1, 3}.
  //   0: return           -> 1/p
  //   1: adjacent to 0    -> 1
  //   3: distance 2       -> 1/q
  const double w0 = 1.0 / p, w1 = 1.0, w3 = 1.0 / q;
  const double z = w0 + w1 + w3;

  Rng rng(201);
  constexpr int kTrials = 30000;
  int c0 = 0, c1 = 0, c3 = 0;
  for (int i = 0; i < kTrials; ++i) {
    const NodeId nxt = walker.biased_step(rng, 0, 2);
    c0 += (nxt == 0);
    c1 += (nxt == 1);
    c3 += (nxt == 3);
  }
  EXPECT_EQ(c0 + c1 + c3, kTrials);
  EXPECT_NEAR(c0 / static_cast<double>(kTrials), w0 / z, 0.02);
  EXPECT_NEAR(c1 / static_cast<double>(kTrials), w1 / z, 0.02);
  EXPECT_NEAR(c3 / static_cast<double>(kTrials), w3 / z, 0.02);
}

INSTANTIATE_TEST_SUITE_P(
    PqGrid, WalkerBiasTest,
    ::testing::Combine(::testing::Values(0.25, 0.5, 1.0, 2.0),
                       ::testing::Values(0.5, 1.0, 2.0)));

// ---------------------------------------------------------------------
// Dataflow consistency sweep: for every window size, a walk with
// exactly one context must make Algorithm 2 equal Algorithm 1.
class DataflowWindowTest : public ::testing::TestWithParam<int> {};

TEST_P(DataflowWindowTest, OneContextEquivalence) {
  const auto window = static_cast<std::size_t>(GetParam());
  Rng ra(301), rb(301);
  OselmSkipGram::Options o1;
  o1.dims = 8;
  OselmSkipGramDataflow::Options o2;
  o2.dims = 8;
  // alg1 is driven through train_context; compare pure recursions.
  o2.reset_p_per_walk = false;
  OselmSkipGram alg1(16, o1, ra);
  OselmSkipGramDataflow alg2(16, o2, rb);

  Rng wrng(302);
  std::vector<NodeId> walk(window);
  const std::vector<NodeId> negs = {14, 15};
  for (int iter = 0; iter < 8; ++iter) {
    for (auto& v : walk) v = static_cast<NodeId>(wrng.bounded(12));
    WalkContext ctx{walk[0],
                    std::span<const NodeId>(walk).subspan(1)};
    alg1.train_context(ctx, negs);
    alg2.train_walk(walk, window, negs);
  }
  EXPECT_LT(max_abs_diff(alg1.beta_transposed(), alg2.beta_transposed()),
            1e-4)
      << "window " << window;
}

INSTANTIATE_TEST_SUITE_P(Windows, DataflowWindowTest,
                         ::testing::Values(2, 3, 5, 8, 12));

// ---------------------------------------------------------------------
// Fixed-point core sweep: across weight scales the core must stay
// saturation-free in its normal operating range and track the float
// reference.
class CoreScaleTest : public ::testing::TestWithParam<double> {};

TEST_P(CoreScaleTest, TracksFloatReferenceAtScale) {
  const double scale = GetParam();
  fpga::AcceleratorConfig cfg;
  cfg.dims = 8;
  cfg.parallelism = 8;
  cfg.walk_length = 8;
  cfg.window = 4;
  cfg.negative_samples = 2;

  Rng rng(401);
  OselmSkipGramDataflow::Options opts;
  opts.dims = cfg.dims;
  opts.mu = cfg.mu;
  opts.p0 = cfg.p0;
  const std::size_t n = cfg.max_slots();
  OselmSkipGramDataflow ref(n, opts, rng);
  for (auto& v : ref.beta_transposed().flat()) {
    v *= static_cast<float>(scale);
  }

  fpga::HlsCore core(cfg);
  std::vector<fpga::CoreFixed> p(cfg.dims * cfg.dims);
  for (std::size_t i = 0; i < cfg.dims; ++i) {
    p[i * cfg.dims + i] = fpga::CoreFixed::from_double(cfg.p0);
  }
  core.load_p(p);
  std::vector<fpga::CoreFixed> row(cfg.dims);
  for (std::size_t v = 0; v < n; ++v) {
    auto src = ref.beta_transposed().row(v);
    for (std::size_t d = 0; d < cfg.dims; ++d) {
      row[d] = fpga::CoreFixed::from_double(src[d]);
    }
    core.load_beta_slot(v, row);
  }

  const std::vector<NodeId> walk = {0, 1, 2, 3, 4, 5, 6, 7};
  const std::vector<NodeId> negs = {8, 9};
  ref.train_walk(walk, cfg.window, negs);
  const std::vector<std::uint32_t> ws(walk.begin(), walk.end());
  const std::vector<std::uint32_t> ns(negs.begin(), negs.end());
  core.run_walk(ws, ns);

  double max_diff = 0;
  for (std::size_t v = 0; v < n; ++v) {
    auto fr = ref.beta_transposed().row(v);
    auto fc = core.beta_slot(v);
    for (std::size_t d = 0; d < cfg.dims; ++d) {
      max_diff = std::max(max_diff,
                          std::abs(fc[d].to_double() -
                                   static_cast<double>(fr[d])));
    }
  }
  EXPECT_LT(max_diff, 1e-3 * std::max(1.0, scale)) << "scale " << scale;
}

INSTANTIATE_TEST_SUITE_P(Scales, CoreScaleTest,
                         ::testing::Values(0.1, 1.0, 10.0, 40.0));

// ---------------------------------------------------------------------
// Corpus sweep: for every (walks_per_node, walk_length) the corpus
// bookkeeping must be exact.
class CorpusShapeTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CorpusShapeTest, Bookkeeping) {
  const auto [r, l] = GetParam();
  const Graph g = make_ring(25, 4);
  Node2VecParams params;
  params.walk_length = static_cast<std::size_t>(l);
  params.window = 2;
  Rng rng(501);
  const WalkCorpus corpus =
      generate_corpus(g, params, static_cast<std::size_t>(r), rng);
  EXPECT_EQ(corpus.walks.size(), 25u * static_cast<std::size_t>(r));
  std::uint64_t visits = 0;
  for (const auto& w : corpus.walks) {
    EXPECT_EQ(w.size(), static_cast<std::size_t>(l));
    visits += w.size();
  }
  std::uint64_t freq = 0;
  for (auto f : corpus.frequency) freq += f;
  EXPECT_EQ(freq, visits);
}

INSTANTIATE_TEST_SUITE_P(Shapes, CorpusShapeTest,
                         ::testing::Combine(::testing::Values(1, 3),
                                            ::testing::Values(2, 10, 40)));

}  // namespace
}  // namespace seqge
