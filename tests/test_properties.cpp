// Parameterized property sweeps (TEST_P) over configuration space:
// OS-ELM stability across dims/mu/p0, walker correctness across p/q,
// dataflow-vs-alg1 consistency across window sizes, and fixed-point core
// stability across value ranges.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "embedding/oselm_dataflow.hpp"
#include "embedding/oselm_skipgram.hpp"
#include "fpga/hls_core.hpp"
#include "graph/generators.hpp"
#include "graph/sliding_window.hpp"
#include "linalg/kernels.hpp"
#include "sampling/negative_sampler.hpp"
#include "util/rng.hpp"
#include "walk/corpus.hpp"
#include "walk/node2vec_walker.hpp"

namespace seqge {
namespace {

// ---------------------------------------------------------------------
// OS-ELM stability sweep: across (dims, mu, p0) the model must stay
// finite, keep P positive-diagonal, and reduce squared error on a
// repeated workload.
class OselmStabilityTest
    : public ::testing::TestWithParam<std::tuple<int, double, double>> {};

TEST_P(OselmStabilityTest, StaysFiniteAndLearns) {
  const auto [dims, mu, p0] = GetParam();
  Rng rng(101);
  OselmSkipGram::Options opts;
  opts.dims = static_cast<std::size_t>(dims);
  opts.mu = mu;
  opts.p0 = p0;
  OselmSkipGram model(30, opts, rng);

  Rng wrng(102);
  std::vector<NodeId> walk(12);
  const std::vector<NodeId> negs = {27, 28, 29};
  double first = 0, last = 0;
  for (int iter = 0; iter < 50; ++iter) {
    for (auto& v : walk) v = static_cast<NodeId>(wrng.bounded(25));
    std::span<const NodeId> ws(walk);
    double err = 0;
    for_each_context(ws, 4, [&](const WalkContext& ctx) {
      err += model.train_context(ctx, negs);
    });
    if (iter == 0) first = err;
    last = err;
  }
  EXPECT_TRUE(std::isfinite(last));
  EXPECT_LT(last, first * 1.5) << "error must not blow up";
  for (std::size_t i = 0; i < opts.dims; ++i) {
    EXPECT_GT(model.covariance()(i, i), 0.0f);
    EXPECT_TRUE(std::isfinite(model.covariance()(i, i)));
  }
  for (float v : model.beta_transposed().flat()) {
    ASSERT_TRUE(std::isfinite(v));
  }
}

INSTANTIATE_TEST_SUITE_P(
    DimsMuP0, OselmStabilityTest,
    ::testing::Combine(::testing::Values(4, 16, 48),
                       ::testing::Values(0.005, 0.01, 0.1),
                       ::testing::Values(1.0, 10.0, 100.0)));

// ---------------------------------------------------------------------
// Walker sweep: across (p, q) every step must follow an edge and the
// analytic one-step distribution must match empirically on a fixed
// small graph.
class WalkerBiasTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(WalkerBiasTest, OneStepDistributionMatchesFormula) {
  const auto [p, q] = GetParam();
  // Lollipop: triangle 0-1-2 plus stick 2-3.
  const std::vector<Edge> edges = {{0, 1}, {1, 2}, {0, 2}, {2, 3}};
  const Graph g = Graph::from_edges(4, edges);

  Node2VecParams params;
  params.p = p;
  params.q = q;
  Node2VecWalker<Graph> walker(g, params);

  // From (prev=0, cur=2): neighbors of 2 are {0, 1, 3}.
  //   0: return           -> 1/p
  //   1: adjacent to 0    -> 1
  //   3: distance 2       -> 1/q
  const double w0 = 1.0 / p, w1 = 1.0, w3 = 1.0 / q;
  const double z = w0 + w1 + w3;

  Rng rng(201);
  constexpr int kTrials = 30000;
  int c0 = 0, c1 = 0, c3 = 0;
  for (int i = 0; i < kTrials; ++i) {
    const NodeId nxt = walker.biased_step(rng, 0, 2);
    c0 += (nxt == 0);
    c1 += (nxt == 1);
    c3 += (nxt == 3);
  }
  EXPECT_EQ(c0 + c1 + c3, kTrials);
  EXPECT_NEAR(c0 / static_cast<double>(kTrials), w0 / z, 0.02);
  EXPECT_NEAR(c1 / static_cast<double>(kTrials), w1 / z, 0.02);
  EXPECT_NEAR(c3 / static_cast<double>(kTrials), w3 / z, 0.02);
}

INSTANTIATE_TEST_SUITE_P(
    PqGrid, WalkerBiasTest,
    ::testing::Combine(::testing::Values(0.25, 0.5, 1.0, 2.0),
                       ::testing::Values(0.5, 1.0, 2.0)));

// ---------------------------------------------------------------------
// Dataflow consistency sweep: for every window size, a walk with
// exactly one context must make Algorithm 2 equal Algorithm 1.
class DataflowWindowTest : public ::testing::TestWithParam<int> {};

TEST_P(DataflowWindowTest, OneContextEquivalence) {
  const auto window = static_cast<std::size_t>(GetParam());
  Rng ra(301), rb(301);
  OselmSkipGram::Options o1;
  o1.dims = 8;
  OselmSkipGramDataflow::Options o2;
  o2.dims = 8;
  // alg1 is driven through train_context; compare pure recursions.
  o2.reset_p_per_walk = false;
  OselmSkipGram alg1(16, o1, ra);
  OselmSkipGramDataflow alg2(16, o2, rb);

  Rng wrng(302);
  std::vector<NodeId> walk(window);
  const std::vector<NodeId> negs = {14, 15};
  for (int iter = 0; iter < 8; ++iter) {
    for (auto& v : walk) v = static_cast<NodeId>(wrng.bounded(12));
    WalkContext ctx{walk[0],
                    std::span<const NodeId>(walk).subspan(1)};
    alg1.train_context(ctx, negs);
    alg2.train_walk(walk, window, negs);
  }
  EXPECT_LT(max_abs_diff(alg1.beta_transposed(), alg2.beta_transposed()),
            1e-4)
      << "window " << window;
}

INSTANTIATE_TEST_SUITE_P(Windows, DataflowWindowTest,
                         ::testing::Values(2, 3, 5, 8, 12));

// ---------------------------------------------------------------------
// Fixed-point core sweep: across weight scales the core must stay
// saturation-free in its normal operating range and track the float
// reference.
class CoreScaleTest : public ::testing::TestWithParam<double> {};

TEST_P(CoreScaleTest, TracksFloatReferenceAtScale) {
  const double scale = GetParam();
  fpga::AcceleratorConfig cfg;
  cfg.dims = 8;
  cfg.parallelism = 8;
  cfg.walk_length = 8;
  cfg.window = 4;
  cfg.negative_samples = 2;

  Rng rng(401);
  OselmSkipGramDataflow::Options opts;
  opts.dims = cfg.dims;
  opts.mu = cfg.mu;
  opts.p0 = cfg.p0;
  const std::size_t n = cfg.max_slots();
  OselmSkipGramDataflow ref(n, opts, rng);
  for (auto& v : ref.beta_transposed().flat()) {
    v *= static_cast<float>(scale);
  }

  fpga::HlsCore core(cfg);
  std::vector<fpga::CoreFixed> p(cfg.dims * cfg.dims);
  for (std::size_t i = 0; i < cfg.dims; ++i) {
    p[i * cfg.dims + i] = fpga::CoreFixed::from_double(cfg.p0);
  }
  core.load_p(p);
  std::vector<fpga::CoreFixed> row(cfg.dims);
  for (std::size_t v = 0; v < n; ++v) {
    auto src = ref.beta_transposed().row(v);
    for (std::size_t d = 0; d < cfg.dims; ++d) {
      row[d] = fpga::CoreFixed::from_double(src[d]);
    }
    core.load_beta_slot(v, row);
  }

  const std::vector<NodeId> walk = {0, 1, 2, 3, 4, 5, 6, 7};
  const std::vector<NodeId> negs = {8, 9};
  ref.train_walk(walk, cfg.window, negs);
  const std::vector<std::uint32_t> ws(walk.begin(), walk.end());
  const std::vector<std::uint32_t> ns(negs.begin(), negs.end());
  core.run_walk(ws, ns);

  double max_diff = 0;
  for (std::size_t v = 0; v < n; ++v) {
    auto fr = ref.beta_transposed().row(v);
    auto fc = core.beta_slot(v);
    for (std::size_t d = 0; d < cfg.dims; ++d) {
      max_diff = std::max(max_diff,
                          std::abs(fc[d].to_double() -
                                   static_cast<double>(fr[d])));
    }
  }
  EXPECT_LT(max_diff, 1e-3 * std::max(1.0, scale)) << "scale " << scale;
}

INSTANTIATE_TEST_SUITE_P(Scales, CoreScaleTest,
                         ::testing::Values(0.1, 1.0, 10.0, 40.0));

// ---------------------------------------------------------------------
// Corpus sweep: for every (walks_per_node, walk_length) the corpus
// bookkeeping must be exact.
class CorpusShapeTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CorpusShapeTest, Bookkeeping) {
  const auto [r, l] = GetParam();
  const Graph g = make_ring(25, 4);
  Node2VecParams params;
  params.walk_length = static_cast<std::size_t>(l);
  params.window = 2;
  Rng rng(501);
  const WalkCorpus corpus =
      generate_corpus(g, params, static_cast<std::size_t>(r), rng);
  EXPECT_EQ(corpus.walks.size(), 25u * static_cast<std::size_t>(r));
  std::uint64_t visits = 0;
  for (const auto& w : corpus.walks) {
    EXPECT_EQ(w.size(), static_cast<std::size_t>(l));
    visits += w.size();
  }
  std::uint64_t freq = 0;
  for (auto f : corpus.frequency) freq += f;
  EXPECT_EQ(freq, visits);
}

INSTANTIATE_TEST_SUITE_P(Shapes, CorpusShapeTest,
                         ::testing::Combine(::testing::Values(1, 3),
                                            ::testing::Values(2, 10, 40)));

// ---------------------------------------------------------------------
// Sliding-window interleaving sweep: after any random interleaving of
// insert / remove / expire, the incrementally maintained structures
// (adjacency, degree table, alias sampler) must be indistinguishable
// from ones built fresh from the surviving edge set.
class WindowInterleavingTest : public ::testing::TestWithParam<int> {};

TEST_P(WindowInterleavingTest, MatchesFreshlyBuiltGraph) {
  constexpr std::size_t kN = 20;
  SlidingWindowGraph::Options opts;
  opts.max_age = 30;
  opts.max_edges = 40;
  opts.sampler_rebuild_interval = 7;  // force frequent lazy rebuilds
  SlidingWindowGraph win(kN, opts);

  // Reference: the live edge set, in insertion (== stamp) order.
  struct RefEdge {
    NodeId u, v;
    float w;
    std::uint64_t stamp;
  };
  std::vector<RefEdge> live;
  auto ref_find = [&](NodeId u, NodeId v) {
    return std::find_if(live.begin(), live.end(), [&](const RefEdge& e) {
      return (e.u == u && e.v == v) || (e.u == v && e.v == u);
    });
  };

  Rng rng(600 + static_cast<std::uint64_t>(GetParam()));
  std::uint64_t clock = 0;
  std::vector<ExpiredEdge> evicted;
  for (int op = 0; op < 400; ++op) {
    const std::uint64_t roll = rng.bounded(10);
    if (roll < 6) {  // insert
      const auto u = static_cast<NodeId>(rng.bounded(kN));
      const auto v = static_cast<NodeId>(rng.bounded(kN));
      const float w = 1.0f + 0.25f * static_cast<float>(rng.bounded(4));
      const std::uint64_t token = win.add_edge(u, v, w, clock);
      if (u == v || ref_find(u, v) != live.end()) {
        EXPECT_EQ(token, SlidingWindowGraph::kInvalidToken);
      } else {
        ASSERT_NE(token, SlidingWindowGraph::kInvalidToken);
        live.push_back({u, v, w, clock});
      }
    } else if (roll < 8) {  // remove a random pair, live or not
      const auto u = static_cast<NodeId>(rng.bounded(kN));
      const auto v = static_cast<NodeId>(rng.bounded(kN));
      const auto it = ref_find(u, v);
      const auto removed = win.remove_edge(u, v);
      ASSERT_EQ(removed.has_value(), it != live.end());
      if (it != live.end()) {
        EXPECT_EQ(removed->stamp, it->stamp);
        live.erase(it);
      }
    } else {  // advance the clock and expire
      clock += rng.bounded(8);
      evicted.clear();
      const std::size_t n = win.expire(clock, evicted);
      EXPECT_EQ(n, evicted.size());
      // Mirror the age horizon…
      if (clock > opts.max_age) {
        const std::uint64_t cutoff = clock - opts.max_age;
        std::erase_if(live, [&](const RefEdge& e) { return e.stamp < cutoff; });
      }
      // …and the capacity horizon (oldest-first).
      while (live.size() > opts.max_edges) live.erase(live.begin());
    }
    clock += rng.bounded(2);
  }

  // Fresh rebuild from the surviving edges.
  DynamicGraph fresh(kN);
  for (const RefEdge& e : live) {
    ASSERT_TRUE(fresh.add_edge(e.u, e.v, e.w));
  }

  ASSERT_EQ(win.num_edges(), fresh.num_edges());
  std::vector<std::uint64_t> fresh_counts(kN);
  for (NodeId u = 0; u < kN; ++u) {
    ASSERT_EQ(win.degree(u), fresh.degree(u)) << "node " << u;
    EXPECT_NEAR(win.weighted_degree(u), fresh.weighted_degree(u), 1e-6);
    fresh_counts[u] = fresh.degree(u);
    // Same neighbor sets with the same weights (order may differ).
    auto wn = win.neighbors(u);
    std::vector<NodeId> a(wn.begin(), wn.end());
    auto fn = fresh.neighbors(u);
    std::vector<NodeId> b(fn.begin(), fn.end());
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << "node " << u;
    for (NodeId v : a) {
      EXPECT_EQ(win.edge_weight(u, v), fresh.edge_weight(u, v));
    }
  }

  // The degree table feeding the sampler is exact…
  EXPECT_EQ(win.degree_counts(), fresh_counts);
  // …and the alias table built from it is the one a fresh build gives:
  // construction is deterministic from counts, so equal-seed draws
  // must agree exactly.
  const NegativeSampler& ws = win.refresh_sampler();
  const NegativeSampler fs(fresh_counts);
  Rng ra(777), rb(777);
  for (int i = 0; i < 512; ++i) {
    ASSERT_EQ(ws.sample(ra), fs.sample(rb)) << "draw " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WindowInterleavingTest,
                         ::testing::Range(0, 6));

}  // namespace
}  // namespace seqge
