// Tests for the FPGA substrate: the bit-accurate HLS core against the
// float dataflow reference, the DMA/performance models against the
// paper's measured latencies, the resource model against Table 6, and
// the host driver (Accelerator).

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "embedding/oselm_dataflow.hpp"
#include "embedding/trainer.hpp"
#include "eval/node_classification.hpp"
#include "fpga/accelerator.hpp"
#include "fpga/dma_model.hpp"
#include "fpga/energy_model.hpp"
#include "fpga/hls_core.hpp"
#include "fpga/perf_model.hpp"
#include "fpga/resource_model.hpp"
#include "graph/generators.hpp"
#include "linalg/kernels.hpp"
#include "perfmodel/cpu_model.hpp"
#include "perfmodel/op_counts.hpp"

namespace seqge::fpga {
namespace {

AcceleratorConfig tiny_config() {
  AcceleratorConfig cfg;
  cfg.dims = 8;
  cfg.parallelism = 8;
  cfg.walk_length = 12;
  cfg.window = 4;
  cfg.negative_samples = 3;
  return cfg;
}

TEST(AcceleratorConfig, DefaultParallelismMapping) {
  EXPECT_EQ(AcceleratorConfig::default_parallelism(32), 32u);
  EXPECT_EQ(AcceleratorConfig::default_parallelism(64), 48u);
  EXPECT_EQ(AcceleratorConfig::default_parallelism(96), 64u);
  const auto cfg = AcceleratorConfig::for_dims(64);
  EXPECT_EQ(cfg.parallelism, 48u);
}

TEST(AcceleratorConfig, ContextArithmeticMatchesPaper) {
  AcceleratorConfig cfg;  // l=80 w=8 ns=10
  EXPECT_EQ(cfg.contexts_per_walk(), 73u);
  EXPECT_EQ(cfg.samples_per_context(), 7u * 11u);
  EXPECT_EQ(cfg.max_slots(), 90u);
}

TEST(HlsCore, MatchesFloatDataflowReference) {
  // Same walk, same negatives, same initial weights: the fixed-point
  // core must track the float Algorithm-2 reference within quantization
  // tolerance.
  const AcceleratorConfig cfg = tiny_config();
  Rng rng(1);
  OselmSkipGramDataflow::Options opts;
  opts.dims = cfg.dims;
  opts.mu = cfg.mu;
  opts.p0 = cfg.p0;
  OselmSkipGramDataflow ref(16, opts, rng);

  HlsCore core(cfg);
  // Mirror the reference's beta into core slots 0..15 (one per node).
  // 16 nodes <= max_slots (12 + 3 = 15)? No: use 12 nodes.
  const std::size_t n_nodes = cfg.max_slots();
  Rng rng2(1);
  OselmSkipGramDataflow ref2(n_nodes, opts, rng2);
  std::vector<CoreFixed> row(cfg.dims);
  std::vector<CoreFixed> p(cfg.dims * cfg.dims);
  for (std::size_t i = 0; i < cfg.dims; ++i) {
    p[i * cfg.dims + i] = CoreFixed::from_double(cfg.p0);
  }
  core.load_p(p);
  for (std::size_t v = 0; v < n_nodes; ++v) {
    auto src = ref2.beta_transposed().row(v);
    for (std::size_t d = 0; d < cfg.dims; ++d) {
      row[d] = CoreFixed::from_double(src[d]);
    }
    core.load_beta_slot(v, row);
  }

  // A few walks over the same node ids (= slot ids here).
  Rng wrng(7);
  for (int iter = 0; iter < 5; ++iter) {
    std::vector<NodeId> walk(cfg.walk_length);
    for (auto& v : walk) {
      v = static_cast<NodeId>(wrng.bounded(n_nodes - 3));
    }
    const std::vector<NodeId> negs = {
        static_cast<NodeId>(n_nodes - 3), static_cast<NodeId>(n_nodes - 2),
        static_cast<NodeId>(n_nodes - 1)};
    ref2.train_walk(walk, cfg.window, negs);
    std::vector<std::uint32_t> walk_slots(walk.begin(), walk.end());
    std::vector<std::uint32_t> neg_slots(negs.begin(), negs.end());
    core.run_walk(walk_slots, neg_slots);
  }

  double max_diff = 0.0;
  for (std::size_t v = 0; v < n_nodes; ++v) {
    auto fref = ref2.beta_transposed().row(v);
    auto fcore = core.beta_slot(v);
    for (std::size_t d = 0; d < cfg.dims; ++d) {
      max_diff = std::max(
          max_diff, std::abs(fcore[d].to_double() -
                             static_cast<double>(fref[d])));
    }
  }
  EXPECT_LT(max_diff, 1e-3)
      << "fixed-point drift vs float reference too large";
}

TEST(HlsCore, MacCountMatchesOpCountFormula) {
  const AcceleratorConfig cfg = tiny_config();
  HlsCore core(cfg);
  std::vector<std::uint32_t> walk(cfg.walk_length);
  for (std::size_t i = 0; i < walk.size(); ++i) {
    walk[i] = static_cast<std::uint32_t>(i % 4);
  }
  const std::vector<std::uint32_t> negs = {5, 6, 7};
  core.run_walk(walk, negs);

  perfmodel::WalkShape shape{cfg.dims, cfg.window, cfg.negative_samples,
                             cfg.walk_length};
  // The functional core executes H (N), two matvecs (2N^2), hph (N),
  // dP+piht (N^2+N), and per-sample 2N. The formula counts 3N^2+2NS+3N
  // per context plus the commit N^2. Audit within the small bookkeeping
  // delta from skipped negatives (negatives equal to the positive).
  const auto expected = perfmodel::oselm_dataflow_walk_ops(shape);
  const double rel_err =
      std::abs(static_cast<double>(core.mac_count()) -
               static_cast<double>(expected.macs)) /
      static_cast<double>(expected.macs);
  EXPECT_LT(rel_err, 0.05) << "core=" << core.mac_count()
                           << " formula=" << expected.macs;
  EXPECT_EQ(core.contexts_processed(),
            cfg.walk_length - cfg.window + 1);
}

TEST(HlsCore, RejectsBadSlotAccess) {
  const AcceleratorConfig cfg = tiny_config();
  HlsCore core(cfg);
  std::vector<CoreFixed> row(cfg.dims);
  EXPECT_THROW(core.load_beta_slot(cfg.max_slots(), row),
               std::invalid_argument);
  std::vector<CoreFixed> bad_p(3);
  EXPECT_THROW(core.load_p(bad_p), std::invalid_argument);
  EXPECT_THROW(core.beta_slot(cfg.max_slots()), std::out_of_range);
}

TEST(DmaModel, LatencyPlusBandwidth) {
  DmaModel dma(2000.0, 1.0);
  const DmaTransfer t = dma.transfer(20000);
  EXPECT_EQ(t.bytes, 20000u);
  EXPECT_DOUBLE_EQ(t.microseconds, 1.0 + 10.0);
}

TEST(PerfModel, ReproducesPaperTable3FpgaRow) {
  // Paper: 0.777 / 0.878 / 0.985 ms per walk at dims 32 / 64 / 96.
  const double expected[] = {0.777, 0.878, 0.985};
  const std::size_t dims[] = {32, 64, 96};
  for (int i = 0; i < 3; ++i) {
    const PerfModel pm(AcceleratorConfig::for_dims(dims[i]));
    const WalkTiming t = pm.walk_timing();
    EXPECT_NEAR(t.total_us / 1000.0, expected[i], expected[i] * 0.02)
        << "dims " << dims[i];
  }
}

TEST(PerfModel, MonotonicInDims) {
  double prev = 0.0;
  for (std::size_t dims : {16, 32, 48, 64, 80, 96, 128}) {
    AcceleratorConfig cfg = AcceleratorConfig::for_dims(dims);
    const PerfModel pm(cfg);
    const double t = pm.walk_timing().total_us;
    EXPECT_GT(t, prev) << "dims " << dims;
    prev = t;
  }
}

TEST(PerfModel, MoreLanesAreFaster) {
  AcceleratorConfig slow = AcceleratorConfig::for_dims(64);
  slow.parallelism = 16;
  AcceleratorConfig fast = AcceleratorConfig::for_dims(64);
  fast.parallelism = 64;
  EXPECT_GT(PerfModel(slow).walk_timing().compute_us,
            PerfModel(fast).walk_timing().compute_us);
}

TEST(PerfModel, ShortWalkCostsLess) {
  const PerfModel pm(AcceleratorConfig::for_dims(32));
  const WalkTiming full = pm.walk_timing();
  const WalkTiming half = pm.walk_timing(36, 45);
  EXPECT_LT(half.total_us, full.total_us);
  EXPECT_LT(half.bytes_in, full.bytes_in);
}

TEST(ResourceModel, CalibratedPointsMatchTable6) {
  const ResourceModel rm;
  const DeviceSpec& dev = rm.device();

  struct Expected {
    std::size_t dims;
    std::size_t bram36, dsp, ff, lut;
    double bram_pct, dsp_pct, ff_pct, lut_pct;
  };
  const Expected rows[] = {
      {32, 183, 1379, 48609, 53330, 58.65, 79.80, 10.55, 23.15},
      {64, 271, 1552, 77584, 87901, 86.86, 89.81, 16.84, 38.15},
      {96, 272, 1573, 86081, 108639, 87.18, 91.03, 18.68, 47.15},
  };
  for (const auto& row : rows) {
    const auto usage = rm.estimate(AcceleratorConfig::for_dims(row.dims));
    EXPECT_TRUE(usage.calibrated);
    EXPECT_EQ(usage.bram36, row.bram36);
    EXPECT_EQ(usage.dsp, row.dsp);
    EXPECT_EQ(usage.ff, row.ff);
    EXPECT_EQ(usage.lut, row.lut);
    EXPECT_NEAR(usage.bram_pct(dev), row.bram_pct, 0.05);
    EXPECT_NEAR(usage.dsp_pct(dev), row.dsp_pct, 0.05);
    EXPECT_NEAR(usage.ff_pct(dev), row.ff_pct, 0.05);
    EXPECT_NEAR(usage.lut_pct(dev), row.lut_pct, 0.05);
    EXPECT_TRUE(usage.fits(dev));
  }
}

TEST(ResourceModel, StructuralEstimateScalesWithParallelism) {
  const ResourceModel rm;
  AcceleratorConfig small = tiny_config();
  AcceleratorConfig big = tiny_config();
  big.parallelism = 32;
  const auto us = rm.structural_estimate(small);
  const auto ub = rm.structural_estimate(big);
  EXPECT_LT(us.dsp, ub.dsp);
  EXPECT_LE(us.bram36, ub.bram36);
  EXPECT_FALSE(us.calibrated);
}

TEST(ResourceModel, StructuralInRightBallparkAtCalibrationPoints) {
  // The structural model is an estimate; require it within 2x of the
  // synthesized reality for DSP and BRAM.
  const ResourceModel rm;
  for (std::size_t dims : {32, 64, 96}) {
    const auto cfg = AcceleratorConfig::for_dims(dims);
    const auto cal = ResourceModel::calibrated_point(cfg).value();
    const auto est = rm.structural_estimate(cfg);
    EXPECT_GT(est.dsp, cal.dsp / 2);
    EXPECT_LT(est.dsp, cal.dsp * 2);
    EXPECT_GT(est.bram36, cal.bram36 / 4);
    EXPECT_LT(est.bram36, cal.bram36 * 4);
  }
}

TEST(EnergyModel, ReportArithmetic) {
  const EnergyReport r =
      EnergyModel::report({"test", 2.0}, /*ms_per_walk=*/5.0);
  EXPECT_DOUBLE_EQ(r.millijoules_per_walk, 10.0);
  EXPECT_DOUBLE_EQ(r.walks_per_joule, 100.0);
  EXPECT_THROW(EnergyModel::report({"x", 0.0}, 1.0), std::invalid_argument);
  EXPECT_THROW(EnergyModel::report({"x", 1.0}, 0.0), std::invalid_argument);
}

TEST(EnergyModel, PlPowerScalesWithUtilization) {
  const EnergyModel em;
  const ResourceModel rm;
  const auto p32 =
      em.pl_power(rm.estimate(AcceleratorConfig::for_dims(32)), rm.device());
  const auto p96 =
      em.pl_power(rm.estimate(AcceleratorConfig::for_dims(96)), rm.device());
  EXPECT_GT(p32.watts, 0.7) << "must exceed static floor";
  EXPECT_GT(p96.watts, p32.watts) << "bigger design burns more";
  EXPECT_LT(p96.watts, 10.0) << "sanity ceiling for a mid-size PL design";
}

TEST(EnergyModel, FpgaBeatsCpusPerWalk) {
  // The extension claim: energy/walk on the PL is far below both CPUs
  // at every calibrated design point.
  const EnergyModel em;
  const ResourceModel rm;
  for (std::size_t dims : {32u, 64u, 96u}) {
    const auto cfg = AcceleratorConfig::for_dims(dims);
    const double fpga_ms = PerfModel(cfg).walk_timing().total_us / 1000.0;
    const auto fpga = EnergyModel::report(
        em.pl_power(rm.estimate(cfg), rm.device()), fpga_ms);
    const auto a53 = EnergyModel::report(
        EnergyModel::cortex_a53(),
        perfmodel::a53_proposed_model().predict_ms(dims));
    const auto i7 = EnergyModel::report(
        EnergyModel::i7_11700(),
        perfmodel::i7_proposed_model().predict_ms(dims));
    EXPECT_LT(fpga.millijoules_per_walk, a53.millijoules_per_walk / 5.0);
    EXPECT_LT(fpga.millijoules_per_walk, i7.millijoules_per_walk / 2.0);
  }
}

TEST(Accelerator, TrainsAndAccumulatesSimTime) {
  const LabeledGraph data = generate_dcsbm(
      {.num_nodes = 80, .target_edges = 400, .num_classes = 3, .seed = 41});
  AcceleratorConfig cfg = tiny_config();
  Rng rng(42);
  Accelerator accel(data.graph.num_nodes(), cfg, rng);

  TrainConfig tcfg;
  tcfg.dims = cfg.dims;
  tcfg.walk.walk_length = cfg.walk_length;
  tcfg.walk.window = cfg.window;
  tcfg.negative_samples = cfg.negative_samples;
  tcfg.walks_per_node = 2;

  const MatrixF before = accel.extract_embedding();
  const TrainStats stats = train_all(accel, data.graph, tcfg, rng);
  const MatrixF after = accel.extract_embedding();

  EXPECT_GT(max_abs_diff(before, after), 1e-5);
  EXPECT_EQ(accel.walks_processed(), stats.num_walks);
  EXPECT_GT(accel.simulated_seconds(), 0.0);

  // Simulated time must be consistent with the perf model.
  const PerfModel pm(cfg);
  const double per_walk_us = pm.walk_timing().total_us;
  EXPECT_LE(accel.simulated_seconds() * 1e6,
            per_walk_us * static_cast<double>(stats.num_walks) + 1.0);
}

TEST(Accelerator, WindowMismatchThrows) {
  AcceleratorConfig cfg = tiny_config();
  Rng rng(1);
  Accelerator accel(20, cfg, rng);
  const std::vector<std::uint64_t> counts(20, 1);
  NegativeSampler sampler(counts);
  std::vector<NodeId> walk(cfg.walk_length, 0);
  EXPECT_THROW(accel.train_walk(walk, cfg.window + 1, sampler, 2,
                                NegativeMode::kPerWalk, rng),
               std::invalid_argument);
}

TEST(Accelerator, LearnsUsableEmbedding) {
  const LabeledGraph data = make_karate_club();
  AcceleratorConfig cfg;
  cfg.dims = 16;
  cfg.parallelism = 16;
  cfg.walk_length = 30;
  cfg.window = 8;
  cfg.negative_samples = 5;
  Rng rng(7);
  Accelerator accel(data.graph.num_nodes(), cfg, rng);

  TrainConfig tcfg;
  tcfg.dims = cfg.dims;
  tcfg.walk.walk_length = cfg.walk_length;
  tcfg.walk.window = cfg.window;
  tcfg.negative_samples = cfg.negative_samples;
  tcfg.walks_per_node = 20;
  train_all(accel, data.graph, tcfg, rng);

  // The two faction leaders should be far apart; a leader and a member
  // of its own faction close.
  const MatrixF emb = accel.extract_embedding();
  const double cross = cosine_similarity(emb.row(0), emb.row(33));
  const double within = cosine_similarity(emb.row(0), emb.row(1));
  EXPECT_GT(within, cross);
}

}  // namespace
}  // namespace seqge::fpga
