// Tests for binary model checkpointing: round trips, shape validation,
// corruption handling, and resumed-training equivalence.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "embedding/checkpoint.hpp"
#include "embedding/oselm_dataflow.hpp"
#include "embedding/oselm_skipgram.hpp"
#include "embedding/skipgram_sgd.hpp"
#include "fpga/accelerator.hpp"
#include "fpga/config.hpp"
#include "linalg/kernels.hpp"
#include "sampling/negative_sampler.hpp"
#include "serve/embedding_store.hpp"
#include "serve/query_engine.hpp"
#include "util/rng.hpp"

namespace seqge {
namespace {

OselmSkipGram trained_model(std::uint64_t seed) {
  Rng rng(seed);
  OselmSkipGram::Options opts;
  opts.dims = 8;
  OselmSkipGram model(20, opts, rng);
  const std::vector<std::uint64_t> counts(20, 1);
  NegativeSampler sampler(counts);
  std::vector<NodeId> walk = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  for (int i = 0; i < 5; ++i) {
    model.train_walk(walk, 4, sampler, 3, NegativeMode::kPerContext, rng);
  }
  return model;
}

TEST(Checkpoint, OselmRoundTrip) {
  OselmSkipGram model = trained_model(1);
  std::stringstream ss;
  save_model(ss, model);

  Rng rng(99);
  OselmSkipGram::Options opts;
  opts.dims = 8;
  OselmSkipGram restored(20, opts, rng);
  load_model(ss, restored);

  EXPECT_DOUBLE_EQ(
      max_abs_diff(model.beta_transposed(), restored.beta_transposed()),
      0.0);
  EXPECT_DOUBLE_EQ(max_abs_diff(model.covariance(), restored.covariance()),
                   0.0);
}

TEST(Checkpoint, DataflowRoundTrip) {
  Rng rng(2);
  OselmSkipGramDataflow::Options opts;
  opts.dims = 4;
  OselmSkipGramDataflow model(10, opts, rng);
  model.train_walk(std::vector<NodeId>{0, 1, 2, 3, 4}, 3,
                   std::vector<NodeId>{8, 9});
  std::stringstream ss;
  save_model(ss, model);

  Rng rng2(3);
  OselmSkipGramDataflow restored(10, opts, rng2);
  load_model(ss, restored);
  EXPECT_DOUBLE_EQ(
      max_abs_diff(model.beta_transposed(), restored.beta_transposed()),
      0.0);
}

TEST(Checkpoint, SgdSavesEmbedding) {
  Rng rng(4);
  SkipGramSGD model(12, 6, rng);
  std::stringstream ss;
  save_model(ss, model);
  const CheckpointHeader h = read_checkpoint_header(ss);
  EXPECT_EQ(h.dims, 6u);
  EXPECT_EQ(h.rows, 12u);
  EXPECT_FALSE(h.has_covariance);
  MatrixF beta;
  read_checkpoint_payload(ss, h, beta, nullptr);
  EXPECT_DOUBLE_EQ(max_abs_diff(beta, model.embeddings()), 0.0);
}

TEST(Checkpoint, ShapeMismatchRejected) {
  OselmSkipGram model = trained_model(5);
  std::stringstream ss;
  save_model(ss, model);

  Rng rng(6);
  OselmSkipGram::Options opts;
  opts.dims = 16;  // wrong dims
  OselmSkipGram wrong(20, opts, rng);
  EXPECT_THROW(load_model(ss, wrong), std::runtime_error);
}

TEST(Checkpoint, GarbageRejected) {
  std::stringstream ss("definitely not a checkpoint");
  Rng rng(7);
  OselmSkipGram::Options opts;
  opts.dims = 8;
  OselmSkipGram model(20, opts, rng);
  EXPECT_THROW(load_model(ss, model), std::runtime_error);
}

TEST(Checkpoint, TruncatedPayloadRejected) {
  OselmSkipGram model = trained_model(8);
  std::stringstream ss;
  save_model(ss, model);
  std::string blob = ss.str();
  blob.resize(blob.size() / 2);
  std::stringstream half(blob);
  Rng rng(9);
  OselmSkipGram::Options opts;
  opts.dims = 8;
  OselmSkipGram restored(20, opts, rng);
  EXPECT_THROW(load_model(half, restored), std::runtime_error);
}

namespace {

/// A lightly trained FPGA accelerator (Q8.24 device weights).
fpga::Accelerator trained_accelerator(std::size_t num_nodes,
                                      const fpga::AcceleratorConfig& cfg,
                                      std::uint64_t seed) {
  Rng rng(seed);
  fpga::Accelerator accel(num_nodes, cfg, rng);
  const std::vector<std::uint64_t> counts(num_nodes, 1);
  NegativeSampler sampler(counts);
  std::vector<NodeId> walk(cfg.walk_length);
  for (int w = 0; w < 40; ++w) {
    for (auto& v : walk) {
      v = static_cast<NodeId>(rng.bounded(num_nodes));
    }
    accel.train_walk(walk, cfg.window, sampler, cfg.negative_samples,
                     NegativeMode::kPerWalk, rng);
  }
  return accel;
}

}  // namespace

TEST(Checkpoint, FpgaRoundTripIsLossless) {
  fpga::AcceleratorConfig cfg = fpga::AcceleratorConfig::for_dims(8);
  cfg.walk_length = 12;
  cfg.window = 4;
  cfg.negative_samples = 3;
  const fpga::Accelerator accel = trained_accelerator(34, cfg, 21);

  std::stringstream ss;
  save_model(ss, accel);
  const CheckpointHeader h = read_checkpoint_header(ss);
  EXPECT_EQ(h.dims, 8u);
  EXPECT_EQ(h.rows, 34u);
  EXPECT_FALSE(h.has_covariance);

  ss.seekg(0);
  Rng rng(99);  // different init — must be fully overwritten by the load
  fpga::Accelerator restored(34, cfg, rng);
  load_model(ss, restored);
  // Q8.24 -> float -> Q8.24 for trained-scale values round-trips to
  // within one float32 ulp of the fixed-point grid.
  EXPECT_LE(max_abs_diff(restored.beta_as_float(), accel.beta_as_float()),
            1e-5);
  EXPECT_LE(max_abs_diff(restored.extract_embedding(),
                         accel.extract_embedding()),
            1e-5);
}

TEST(Checkpoint, FpgaCheckpointServedThroughOselmAgreesOnKnn) {
  // The serving handoff: the FPGA backend trains online and checkpoints
  // its Q8.24 weights; a CPU-side oselm model loads the (beta-only)
  // checkpoint and a QueryEngine serves k-NN from either. Results must
  // agree within quantization tolerance.
  constexpr std::size_t kNodes = 60;
  fpga::AcceleratorConfig cfg = fpga::AcceleratorConfig::for_dims(16);
  cfg.walk_length = 16;
  cfg.window = 4;
  cfg.negative_samples = 5;
  const fpga::Accelerator accel = trained_accelerator(kNodes, cfg, 31);

  std::stringstream ss;
  save_model(ss, accel);

  Rng rng(7);
  OselmSkipGram::Options opts;
  opts.dims = 16;
  opts.mu = cfg.mu;
  OselmSkipGram oselm(kNodes, opts, rng);
  // Beta-only checkpoint: covariance requirement must be relaxed…
  std::stringstream strict(ss.str());
  EXPECT_THROW(load_model(strict, oselm), std::runtime_error);
  // …and the relaxed load accepts it.
  std::stringstream relaxed(ss.str());
  load_model(relaxed, oselm, /*require_covariance=*/false);

  auto fpga_snap = std::make_shared<serve::Snapshot>();
  fpga_snap->version = 1;
  fpga_snap->embedding = accel.extract_embedding();
  auto cpu_snap = std::make_shared<serve::Snapshot>();
  cpu_snap->version = 1;
  cpu_snap->embedding = oselm.extract_embedding();

  const serve::QueryEngine fpga_engine(fpga_snap);
  const serve::QueryEngine cpu_engine(cpu_snap);
  double recall_sum = 0.0;
  for (NodeId u = 0; u < kNodes; ++u) {
    recall_sum += serve::recall_at_k(fpga_engine.topk(u, 10),
                                     cpu_engine.topk(u, 10));
  }
  EXPECT_GE(recall_sum / kNodes, 0.9);
}

TEST(Checkpoint, ResumedTrainingMatchesUninterrupted) {
  // Train 4 walks straight vs train 2, checkpoint, restore, train 2 —
  // identical final state (the paper's power-cycle resilience story).
  const std::vector<NodeId> walk = {0, 1, 2, 3, 4, 5, 6, 7};
  const std::vector<std::uint64_t> counts(20, 1);
  NegativeSampler sampler(counts);
  OselmSkipGram::Options opts;
  opts.dims = 8;

  Rng rng_a(11);
  OselmSkipGram straight(20, opts, rng_a);
  {
    Rng step(42);
    for (int i = 0; i < 4; ++i) {
      straight.train_walk(walk, 4, sampler, 3, NegativeMode::kPerContext,
                          step);
    }
  }

  Rng rng_b(11);
  OselmSkipGram first_half(20, opts, rng_b);
  Rng step(42);
  for (int i = 0; i < 2; ++i) {
    first_half.train_walk(walk, 4, sampler, 3, NegativeMode::kPerContext,
                          step);
  }
  std::stringstream ss;
  save_model(ss, first_half);
  Rng rng_c(77);
  OselmSkipGram resumed(20, opts, rng_c);
  load_model(ss, resumed);
  for (int i = 0; i < 2; ++i) {
    resumed.train_walk(walk, 4, sampler, 3, NegativeMode::kPerContext,
                       step);
  }
  EXPECT_DOUBLE_EQ(max_abs_diff(straight.beta_transposed(),
                                resumed.beta_transposed()),
                   0.0);
}

}  // namespace
}  // namespace seqge
