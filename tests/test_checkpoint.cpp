// Tests for binary model checkpointing: round trips, shape validation,
// corruption handling, and resumed-training equivalence.

#include <gtest/gtest.h>

#include <sstream>

#include "embedding/checkpoint.hpp"
#include "embedding/oselm_dataflow.hpp"
#include "embedding/oselm_skipgram.hpp"
#include "embedding/skipgram_sgd.hpp"
#include "linalg/kernels.hpp"
#include "sampling/negative_sampler.hpp"
#include "util/rng.hpp"

namespace seqge {
namespace {

OselmSkipGram trained_model(std::uint64_t seed) {
  Rng rng(seed);
  OselmSkipGram::Options opts;
  opts.dims = 8;
  OselmSkipGram model(20, opts, rng);
  const std::vector<std::uint64_t> counts(20, 1);
  NegativeSampler sampler(counts);
  std::vector<NodeId> walk = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  for (int i = 0; i < 5; ++i) {
    model.train_walk(walk, 4, sampler, 3, NegativeMode::kPerContext, rng);
  }
  return model;
}

TEST(Checkpoint, OselmRoundTrip) {
  OselmSkipGram model = trained_model(1);
  std::stringstream ss;
  save_model(ss, model);

  Rng rng(99);
  OselmSkipGram::Options opts;
  opts.dims = 8;
  OselmSkipGram restored(20, opts, rng);
  load_model(ss, restored);

  EXPECT_DOUBLE_EQ(
      max_abs_diff(model.beta_transposed(), restored.beta_transposed()),
      0.0);
  EXPECT_DOUBLE_EQ(max_abs_diff(model.covariance(), restored.covariance()),
                   0.0);
}

TEST(Checkpoint, DataflowRoundTrip) {
  Rng rng(2);
  OselmSkipGramDataflow::Options opts;
  opts.dims = 4;
  OselmSkipGramDataflow model(10, opts, rng);
  model.train_walk(std::vector<NodeId>{0, 1, 2, 3, 4}, 3,
                   std::vector<NodeId>{8, 9});
  std::stringstream ss;
  save_model(ss, model);

  Rng rng2(3);
  OselmSkipGramDataflow restored(10, opts, rng2);
  load_model(ss, restored);
  EXPECT_DOUBLE_EQ(
      max_abs_diff(model.beta_transposed(), restored.beta_transposed()),
      0.0);
}

TEST(Checkpoint, SgdSavesEmbedding) {
  Rng rng(4);
  SkipGramSGD model(12, 6, rng);
  std::stringstream ss;
  save_model(ss, model);
  const CheckpointHeader h = read_checkpoint_header(ss);
  EXPECT_EQ(h.dims, 6u);
  EXPECT_EQ(h.rows, 12u);
  EXPECT_FALSE(h.has_covariance);
  MatrixF beta;
  read_checkpoint_payload(ss, h, beta, nullptr);
  EXPECT_DOUBLE_EQ(max_abs_diff(beta, model.embeddings()), 0.0);
}

TEST(Checkpoint, ShapeMismatchRejected) {
  OselmSkipGram model = trained_model(5);
  std::stringstream ss;
  save_model(ss, model);

  Rng rng(6);
  OselmSkipGram::Options opts;
  opts.dims = 16;  // wrong dims
  OselmSkipGram wrong(20, opts, rng);
  EXPECT_THROW(load_model(ss, wrong), std::runtime_error);
}

TEST(Checkpoint, GarbageRejected) {
  std::stringstream ss("definitely not a checkpoint");
  Rng rng(7);
  OselmSkipGram::Options opts;
  opts.dims = 8;
  OselmSkipGram model(20, opts, rng);
  EXPECT_THROW(load_model(ss, model), std::runtime_error);
}

TEST(Checkpoint, TruncatedPayloadRejected) {
  OselmSkipGram model = trained_model(8);
  std::stringstream ss;
  save_model(ss, model);
  std::string blob = ss.str();
  blob.resize(blob.size() / 2);
  std::stringstream half(blob);
  Rng rng(9);
  OselmSkipGram::Options opts;
  opts.dims = 8;
  OselmSkipGram restored(20, opts, rng);
  EXPECT_THROW(load_model(half, restored), std::runtime_error);
}

TEST(Checkpoint, ResumedTrainingMatchesUninterrupted) {
  // Train 4 walks straight vs train 2, checkpoint, restore, train 2 —
  // identical final state (the paper's power-cycle resilience story).
  const std::vector<NodeId> walk = {0, 1, 2, 3, 4, 5, 6, 7};
  const std::vector<std::uint64_t> counts(20, 1);
  NegativeSampler sampler(counts);
  OselmSkipGram::Options opts;
  opts.dims = 8;

  Rng rng_a(11);
  OselmSkipGram straight(20, opts, rng_a);
  {
    Rng step(42);
    for (int i = 0; i < 4; ++i) {
      straight.train_walk(walk, 4, sampler, 3, NegativeMode::kPerContext,
                          step);
    }
  }

  Rng rng_b(11);
  OselmSkipGram first_half(20, opts, rng_b);
  Rng step(42);
  for (int i = 0; i < 2; ++i) {
    first_half.train_walk(walk, 4, sampler, 3, NegativeMode::kPerContext,
                          step);
  }
  std::stringstream ss;
  save_model(ss, first_half);
  Rng rng_c(77);
  OselmSkipGram resumed(20, opts, rng_c);
  load_model(ss, resumed);
  for (int i = 0; i < 2; ++i) {
    resumed.train_walk(walk, 4, sampler, 3, NegativeMode::kPerContext,
                       step);
  }
  EXPECT_DOUBLE_EQ(max_abs_diff(straight.beta_transposed(),
                                resumed.beta_transposed()),
                   0.0);
}

}  // namespace
}  // namespace seqge
