// Unit tests for the dense matrix container and the BLAS-lite kernels
// the trainers are built on.

#include <gtest/gtest.h>

#include <vector>

#include "linalg/kernels.hpp"
#include "linalg/matrix.hpp"
#include "util/rng.hpp"

namespace seqge {
namespace {

TEST(Matrix, ShapeAndIndexing) {
  MatrixF m(3, 4, 1.5f);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.size(), 12u);
  m(1, 2) = 7.0f;
  EXPECT_FLOAT_EQ(m(1, 2), 7.0f);
  EXPECT_FLOAT_EQ(m(0, 0), 1.5f);
}

TEST(Matrix, RowSpanIsContiguousView) {
  MatrixF m(2, 3);
  auto r1 = m.row(1);
  r1[0] = 9.0f;
  EXPECT_FLOAT_EQ(m(1, 0), 9.0f);
  EXPECT_EQ(r1.size(), 3u);
}

TEST(Matrix, SetIdentity) {
  MatrixF m(3, 3);
  m.set_identity(2.0f);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_FLOAT_EQ(m(i, j), i == j ? 2.0f : 0.0f);
    }
  }
  MatrixF rect(2, 3);
  EXPECT_THROW(rect.set_identity(1.0f), std::invalid_argument);
}

TEST(Matrix, FillUniformRange) {
  Rng rng(1);
  MatrixF m(50, 50);
  m.fill_uniform(rng, -0.25, 0.25);
  float lo = 1.0f, hi = -1.0f;
  for (float v : m.flat()) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_GE(lo, -0.25f);
  EXPECT_LT(hi, 0.25f);
  EXPECT_LT(lo, -0.2f);  // range is actually exercised
  EXPECT_GT(hi, 0.2f);
}

TEST(Kernels, DotAxpyScale) {
  std::vector<float> x = {1, 2, 3};
  std::vector<float> y = {4, 5, 6};
  EXPECT_FLOAT_EQ(dot<float>(x, y), 32.0f);

  axpy<float>(2.0f, x, y);  // y = {6, 9, 12}
  EXPECT_FLOAT_EQ(y[0], 6.0f);
  EXPECT_FLOAT_EQ(y[2], 12.0f);

  scale<float>(0.5f, y);
  EXPECT_FLOAT_EQ(y[1], 4.5f);
}

TEST(Kernels, MatvecAgainstHandComputed) {
  MatrixF m(2, 3);
  // [1 2 3; 4 5 6]
  float vals[] = {1, 2, 3, 4, 5, 6};
  std::copy(std::begin(vals), std::end(vals), m.flat().begin());
  std::vector<float> v = {1, 0, -1};
  std::vector<float> out(2);
  matvec(m, std::span<const float>(v), std::span<float>(out));
  EXPECT_FLOAT_EQ(out[0], -2.0f);
  EXPECT_FLOAT_EQ(out[1], -2.0f);
}

TEST(Kernels, MatvecTransposedAgainstHandComputed) {
  MatrixF m(2, 3);
  float vals[] = {1, 2, 3, 4, 5, 6};
  std::copy(std::begin(vals), std::end(vals), m.flat().begin());
  std::vector<float> v = {1, -1};
  std::vector<float> out(3);
  matvec_transposed(m, std::span<const float>(v), std::span<float>(out));
  EXPECT_FLOAT_EQ(out[0], -3.0f);
  EXPECT_FLOAT_EQ(out[1], -3.0f);
  EXPECT_FLOAT_EQ(out[2], -3.0f);
}

TEST(Kernels, MatvecTransposedConsistentWithMatvecOfTranspose) {
  Rng rng(3);
  MatrixF m(7, 5);
  m.fill_uniform(rng, -1.0, 1.0);
  MatrixF mt(5, 7);
  for (std::size_t r = 0; r < 7; ++r) {
    for (std::size_t c = 0; c < 5; ++c) mt(c, r) = m(r, c);
  }
  std::vector<float> v(7);
  for (auto& x : v) x = static_cast<float>(rng.uniform(-1, 1));
  std::vector<float> a(5), b(5);
  matvec_transposed(m, std::span<const float>(v), std::span<float>(a));
  matvec(mt, std::span<const float>(v), std::span<float>(b));
  for (std::size_t i = 0; i < 5; ++i) EXPECT_NEAR(a[i], b[i], 1e-5);
}

TEST(Kernels, Rank1Update) {
  MatrixF m(2, 2);
  std::vector<float> x = {1, 2};
  std::vector<float> y = {3, 4};
  rank1_update<float>(m, 2.0f, x, y);
  EXPECT_FLOAT_EQ(m(0, 0), 6.0f);
  EXPECT_FLOAT_EQ(m(0, 1), 8.0f);
  EXPECT_FLOAT_EQ(m(1, 0), 12.0f);
  EXPECT_FLOAT_EQ(m(1, 1), 16.0f);
}

TEST(Kernels, FloatSpecializationsMatchPerRowSimdCallsExactly) {
  // The float matvec/matvec_transposed/rank1_update specializations
  // route through the fused SIMD kernels; their contract is bit
  // identity with the per-row dot()/axpy() composition they replaced.
  // Odd shape exercises every tail.
  Rng rng(7);
  MatrixF m(13, 37);
  m.fill_uniform(rng, -1.0, 1.0);
  std::vector<float> v13(13), v37(37);
  for (auto& x : v13) x = static_cast<float>(rng.uniform(-1, 1));
  for (auto& x : v37) x = static_cast<float>(rng.uniform(-1, 1));

  std::vector<float> out(13);
  matvec(m, std::span<const float>(v37), std::span<float>(out));
  for (std::size_t r = 0; r < 13; ++r) {
    EXPECT_EQ(out[r], simd::dot(m.row(r).data(), v37.data(), 37)) << r;
  }

  std::vector<float> out_t(37);
  matvec_transposed(m, std::span<const float>(v13), std::span<float>(out_t));
  std::vector<float> ref_t(37, 0.0f);
  for (std::size_t r = 0; r < 13; ++r) {
    simd::axpy(v13[r], m.row(r).data(), ref_t.data(), 37);
  }
  for (std::size_t c = 0; c < 37; ++c) EXPECT_EQ(out_t[c], ref_t[c]) << c;

  MatrixF got = m;
  MatrixF ref = m;
  rank1_update<float>(got, 0.75f, v13, v37);
  for (std::size_t r = 0; r < 13; ++r) {
    simd::axpy(0.75f * v13[r], v37.data(), ref.row(r).data(), 37);
  }
  for (std::size_t i = 0; i < got.flat().size(); ++i) {
    EXPECT_EQ(got.flat()[i], ref.flat()[i]) << i;
  }
}

TEST(Kernels, FloatMatvecParallelPathMatchesPerRowDot) {
  // rows > 2048 takes the OpenMP row-parallel branch; each row is still
  // one canonical dot() — identical for any thread count.
  Rng rng(8);
  MatrixF m(2100, 9);
  m.fill_uniform(rng, -1.0, 1.0);
  std::vector<float> v(9);
  for (auto& x : v) x = static_cast<float>(rng.uniform(-1, 1));
  std::vector<float> out(2100);
  matvec(m, std::span<const float>(v), std::span<float>(out));
  for (std::size_t r = 0; r < 2100; ++r) {
    EXPECT_EQ(out[r], simd::dot(m.row(r).data(), v.data(), 9)) << r;
  }
}

TEST(Kernels, Norms) {
  std::vector<float> x = {3, 4};
  EXPECT_DOUBLE_EQ(l2_norm<float>(x), 5.0);
  MatrixF m(1, 2);
  m(0, 0) = 3;
  m(0, 1) = 4;
  EXPECT_DOUBLE_EQ(frobenius_norm(m), 5.0);
}

TEST(Kernels, SigmoidProperties) {
  EXPECT_DOUBLE_EQ(sigmoid(0.0), 0.5);
  EXPECT_NEAR(sigmoid(100.0), 1.0, 1e-12);
  EXPECT_NEAR(sigmoid(-100.0), 0.0, 1e-12);
  // Symmetry: s(-x) = 1 - s(x).
  for (double x : {0.1, 1.0, 5.0, 30.0}) {
    EXPECT_NEAR(sigmoid(-x), 1.0 - sigmoid(x), 1e-12);
  }
  // No overflow at extremes.
  EXPECT_TRUE(std::isfinite(sigmoid(1e6)));
  EXPECT_TRUE(std::isfinite(sigmoid(-1e6)));
}

TEST(Kernels, CosineSimilarity) {
  std::vector<float> x = {1, 0};
  std::vector<float> y = {0, 1};
  std::vector<float> z = {2, 0};
  std::vector<float> zero = {0, 0};
  EXPECT_NEAR(cosine_similarity<float>(x, y), 0.0, 1e-7);
  EXPECT_NEAR(cosine_similarity<float>(x, z), 1.0, 1e-7);
  EXPECT_DOUBLE_EQ(cosine_similarity<float>(x, zero), 0.0);
}

TEST(Kernels, MaxAbsDiff) {
  MatrixF a(2, 2, 1.0f), b(2, 2, 1.0f);
  b(1, 1) = 3.5f;
  EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 2.5);
}

}  // namespace
}  // namespace seqge
