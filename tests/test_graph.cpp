// Unit tests for the CSR graph, dynamic graph, connected components,
// union-find, and the spanning-forest split that drives the "seq"
// scenario.

#include <gtest/gtest.h>

#include <set>

#include "graph/components.hpp"
#include "graph/dynamic_graph.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/spanning_forest.hpp"
#include "util/rng.hpp"

namespace seqge {
namespace {

Graph triangle_plus_tail() {
  // 0-1-2 triangle, 2-3 tail; node 4 isolated.
  const std::vector<Edge> edges = {{0, 1}, {1, 2}, {0, 2}, {2, 3}};
  return Graph::from_edges(5, edges);
}

TEST(Graph, BasicTopology) {
  const Graph g = triangle_plus_tail();
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(2), 3u);
  EXPECT_EQ(g.degree(4), 0u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));  // undirected
  EXPECT_FALSE(g.has_edge(0, 3));
  EXPECT_FALSE(g.has_edge(4, 0));
}

TEST(Graph, NeighborsAreSorted) {
  const std::vector<Edge> edges = {{0, 3}, {0, 1}, {0, 2}};
  const Graph g = Graph::from_edges(4, edges);
  auto nbrs = g.neighbors(0);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
}

TEST(Graph, DuplicateEdgesMergeWeights) {
  const std::vector<Edge> edges = {{0, 1, 1.0f}, {1, 0, 2.5f}};
  const Graph g = Graph::from_edges(2, edges);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_FLOAT_EQ(g.edge_weight(0, 1), 3.5f);
  EXPECT_FLOAT_EQ(g.edge_weight(1, 0), 3.5f);
}

TEST(Graph, SelfLoopsDropped) {
  const std::vector<Edge> edges = {{0, 0}, {0, 1}};
  const Graph g = Graph::from_edges(2, edges);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_FALSE(g.has_edge(0, 0));
}

TEST(Graph, OutOfRangeNodeThrows) {
  const std::vector<Edge> edges = {{0, 7}};
  EXPECT_THROW(Graph::from_edges(3, edges), std::out_of_range);
}

TEST(Graph, EdgeListRoundTrip) {
  const Graph g = triangle_plus_tail();
  const auto edges = g.edge_list();
  EXPECT_EQ(edges.size(), g.num_edges());
  const Graph g2 = Graph::from_edges(g.num_nodes(), edges);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    ASSERT_EQ(g.degree(u), g2.degree(u));
    auto a = g.neighbors(u);
    auto b = g2.neighbors(u);
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
  }
}

TEST(Graph, WeightedDegree) {
  const std::vector<Edge> edges = {{0, 1, 2.0f}, {0, 2, 3.0f}};
  const Graph g = Graph::from_edges(3, edges);
  EXPECT_DOUBLE_EQ(g.weighted_degree(0), 5.0);
  EXPECT_DOUBLE_EQ(g.weighted_degree(1), 2.0);
}

TEST(DynamicGraph, InsertionSemantics) {
  DynamicGraph dg(4);
  EXPECT_TRUE(dg.add_edge(0, 1));
  EXPECT_FALSE(dg.add_edge(0, 1)) << "duplicate must be rejected";
  EXPECT_FALSE(dg.add_edge(1, 0)) << "reverse duplicate must be rejected";
  EXPECT_FALSE(dg.add_edge(2, 2)) << "self-loop must be rejected";
  EXPECT_TRUE(dg.add_edge(1, 2));
  EXPECT_EQ(dg.num_edges(), 2u);
  EXPECT_TRUE(dg.has_edge(2, 1));
  EXPECT_EQ(dg.degree(1), 2u);
}

TEST(DynamicGraph, NeighborsStaySorted) {
  DynamicGraph dg(5);
  dg.add_edge(0, 4);
  dg.add_edge(0, 1);
  dg.add_edge(0, 3);
  auto nbrs = dg.neighbors(0);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
}

TEST(DynamicGraph, RoundTripWithGraph) {
  const Graph g = triangle_plus_tail();
  const DynamicGraph dg = DynamicGraph::from_graph(g);
  EXPECT_EQ(dg.num_edges(), g.num_edges());
  const Graph g2 = dg.to_graph();
  EXPECT_EQ(g2.num_edges(), g.num_edges());
  EXPECT_TRUE(g2.has_edge(0, 2));
  EXPECT_FLOAT_EQ(g2.edge_weight(2, 3), 1.0f);
}

TEST(UnionFind, MergesAndCounts) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_sets(), 5u);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.unite(1, 2));
  EXPECT_FALSE(uf.unite(0, 2)) << "already connected";
  EXPECT_EQ(uf.num_sets(), 3u);
  EXPECT_TRUE(uf.connected(0, 2));
  EXPECT_FALSE(uf.connected(0, 3));
}

TEST(Components, LabelsAndCount) {
  const Graph g = triangle_plus_tail();
  const ComponentLabels cc = connected_components(g);
  EXPECT_EQ(cc.count, 2u);  // {0,1,2,3} and {4}
  EXPECT_EQ(cc.label[0], cc.label[3]);
  EXPECT_NE(cc.label[0], cc.label[4]);
  EXPECT_EQ(count_components(g), 2u);
}

TEST(SpanningForest, ForestProperties) {
  Rng rng(5);
  const LabeledGraph data = generate_dcsbm(
      {.num_nodes = 300, .target_edges = 1200, .num_classes = 4, .seed = 9});
  const Graph& g = data.graph;
  const std::size_t cc = count_components(g);

  const ForestSplit split = split_spanning_forest(g, rng);
  // |forest| = n - #components; forest + removed = all edges.
  EXPECT_EQ(split.forest_edges.size(), g.num_nodes() - cc);
  EXPECT_EQ(split.forest_edges.size() + split.removed_edges.size(),
            g.num_edges());

  const Graph forest =
      Graph::from_edges(g.num_nodes(), split.forest_edges);
  EXPECT_EQ(count_components(forest), cc)
      << "forest must preserve the component structure";
  // A forest has no cycles: |E| = n - #components exactly.
  EXPECT_EQ(forest.num_edges(), forest.num_nodes() - cc);
}

TEST(SpanningForest, ShuffleVariesAcrossSeeds) {
  const LabeledGraph data = generate_dcsbm(
      {.num_nodes = 100, .target_edges = 400, .num_classes = 2, .seed = 3});
  Rng r1(1), r2(2);
  const auto s1 = split_spanning_forest(data.graph, r1);
  const auto s2 = split_spanning_forest(data.graph, r2);
  // Different seeds should produce a different insertion order (first
  // few removed edges differ with overwhelming probability).
  bool differs = false;
  for (std::size_t i = 0; i < 5 && i < s1.removed_edges.size(); ++i) {
    if (!(s1.removed_edges[i] == s2.removed_edges[i])) differs = true;
  }
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace seqge
