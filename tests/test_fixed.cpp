// Unit and property tests for the Q-format fixed-point type that the
// FPGA functional model computes in. The key invariants: round-trip
// accuracy within one LSB, saturation at the format bounds (never
// wrap-around), and WideAcc dot products matching a double reference
// within accumulated rounding error.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "fixed/fixed_point.hpp"
#include "util/rng.hpp"

namespace seqge::fixed {
namespace {

using F = Fixed<8, 24>;  // the core format

TEST(FixedPoint, RoundTripWithinOneLsb)
{
  const double eps = F::epsilon().to_double();
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform(-100.0, 100.0);
    EXPECT_NEAR(F::from_double(v).to_double(), v, eps);
  }
}

TEST(FixedPoint, ExactValuesRepresentable) {
  EXPECT_DOUBLE_EQ(F::from_double(1.0).to_double(), 1.0);
  EXPECT_DOUBLE_EQ(F::from_double(-1.0).to_double(), -1.0);
  EXPECT_DOUBLE_EQ(F::from_double(0.5).to_double(), 0.5);
  EXPECT_DOUBLE_EQ(F::from_double(0.0).to_double(), 0.0);
  EXPECT_DOUBLE_EQ(F::from_double(63.25).to_double(), 63.25);
}

TEST(FixedPoint, SaturatesNotWraps) {
  const F big = F::from_double(1e9);
  EXPECT_DOUBLE_EQ(big.to_double(), F::max_value().to_double());
  const F small = F::from_double(-1e9);
  EXPECT_DOUBLE_EQ(small.to_double(), F::min_value().to_double());

  // Addition at the rail stays at the rail.
  const F sum = F::max_value() + F::from_double(1.0);
  EXPECT_EQ(sum, F::max_value());
  const F diff = F::min_value() - F::from_double(1.0);
  EXPECT_EQ(diff, F::min_value());
}

TEST(FixedPoint, AdditionMatchesDouble) {
  Rng rng(2);
  const double eps = 2 * F::epsilon().to_double();
  for (int i = 0; i < 10000; ++i) {
    const double a = rng.uniform(-50.0, 50.0);
    const double b = rng.uniform(-50.0, 50.0);
    const F fa = F::from_double(a), fb = F::from_double(b);
    EXPECT_NEAR((fa + fb).to_double(), a + b, 2 * eps);
    EXPECT_NEAR((fa - fb).to_double(), a - b, 2 * eps);
  }
}

TEST(FixedPoint, MultiplicationMatchesDouble) {
  Rng rng(3);
  const double eps = F::epsilon().to_double();
  for (int i = 0; i < 10000; ++i) {
    const double a = rng.uniform(-10.0, 10.0);
    const double b = rng.uniform(-10.0, 10.0);
    const F fa = F::from_double(a), fb = F::from_double(b);
    // Operand quantization (<= eps/2 each) dominates: |d(ab)| <=
    // |a|*eps/2 + |b|*eps/2 + eps.
    const double tol = (std::abs(a) + std::abs(b) + 2.0) * eps;
    EXPECT_NEAR((fa * fb).to_double(), a * b, tol);
  }
}

TEST(FixedPoint, MultiplicationSaturates) {
  const F a = F::from_double(100.0);
  EXPECT_EQ(a * a, F::max_value());
  EXPECT_EQ(a * -a, F::min_value());
}

TEST(FixedPoint, DivisionMatchesDouble) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double a = rng.uniform(-10.0, 10.0);
    double b = rng.uniform(0.5, 10.0);
    if (rng.bernoulli(0.5)) b = -b;
    const F q = F::from_double(a) / F::from_double(b);
    EXPECT_NEAR(q.to_double(), a / b, 1e-5) << a << " / " << b;
  }
}

TEST(FixedPoint, DivisionByZeroSaturates) {
  EXPECT_EQ(F::from_double(1.0) / F::from_double(0.0), F::max_value());
  EXPECT_EQ(F::from_double(-1.0) / F::from_double(0.0), F::min_value());
}

TEST(FixedPoint, ReciprocalOfOnePlusSmall) {
  // The Stage-4 pattern: k = 1 / (1 + hph) with hph >= 0.
  const F one = F::from_double(1.0);
  for (double hph : {0.0, 0.001, 0.1, 1.0, 10.0, 100.0}) {
    const F k = one / (one + F::from_double(hph));
    EXPECT_NEAR(k.to_double(), 1.0 / (1.0 + hph), 1e-5) << hph;
  }
}

TEST(FixedPoint, ComparisonOperators) {
  const F a = F::from_double(1.5), b = F::from_double(2.5);
  EXPECT_LT(a, b);
  EXPECT_GT(b, a);
  EXPECT_EQ(a, F::from_double(1.5));
  EXPECT_NE(a, b);
}

TEST(FixedPoint, NegationSymmetric) {
  const F a = F::from_double(3.25);
  EXPECT_DOUBLE_EQ((-a).to_double(), -3.25);
  // The lone asymmetric case: -min saturates to max.
  EXPECT_EQ(-F::min_value(), F::max_value());
}

TEST(WideAcc, DotProductMatchesDouble) {
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 1 + rng.bounded(128);
    std::vector<F> xs(n), ys(n);
    std::vector<double> xd(n), yd(n);
    for (std::size_t i = 0; i < n; ++i) {
      xd[i] = rng.uniform(-2.0, 2.0);
      yd[i] = rng.uniform(-2.0, 2.0);
      xs[i] = F::from_double(xd[i]);
      ys[i] = F::from_double(yd[i]);
    }
    CoreAcc acc;
    double ref = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      acc.mac(xs[i], ys[i]);
      ref += xd[i] * yd[i];
    }
    // Quantization of operands accumulates ~ n * 4 * eps.
    const double tol =
        static_cast<double>(n) * 4.0 * F::epsilon().to_double() + 1e-6;
    EXPECT_NEAR(acc.result().to_double(), ref, tol);
  }
}

TEST(WideAcc, DoesNotOverflowIntermediates) {
  // 1000 terms of 100 * 100 = 1e7 blows past the narrow format's +/-128
  // range, but the wide accumulator must not wrap; the final narrow
  // result saturates cleanly.
  CoreAcc acc;
  const F hundred = F::from_double(100.0);
  for (int i = 0; i < 1000; ++i) acc.mac(hundred, hundred);
  EXPECT_EQ(acc.result(), F::max_value());
}

TEST(WideAcc, AddAndReset) {
  CoreAcc acc;
  acc.add(F::from_double(1.5));
  acc.add(F::from_double(2.0));
  EXPECT_NEAR(acc.result().to_double(), 3.5, 1e-6);
  acc.reset();
  EXPECT_DOUBLE_EQ(acc.result().to_double(), 0.0);
}

TEST(FixedPoint, OtherFormatsCompile) {
  using Q16 = Fixed<16, 16>;
  EXPECT_NEAR(Q16::from_double(1000.5).to_double(), 1000.5, 1e-4);
  using Q4 = Fixed<4, 12>;
  EXPECT_DOUBLE_EQ(Q4::from_double(100.0).to_double(),
                   Q4::max_value().to_double());
}

}  // namespace
}  // namespace seqge::fixed
