// Sharded serving tests: copy-on-write delta publishing (row-copy
// accounting, bit-identity with the full-snapshot path, compaction),
// the sharded torn-row/monotonicity hammer mirroring the single-store
// one, fan-out/merge query identity with the N = 1 engine, incremental
// IVF maintenance, server routing over a sharded store, and checkpoint
// interop with the unsharded EmbeddingStore.

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <thread>
#include <vector>

#include "embedding/backend_registry.hpp"
#include "embedding/sparse_delta.hpp"
#include "embedding/trainer.hpp"
#include "graph/generators.hpp"
#include "linalg/kernels.hpp"
#include "serve/embedding_server.hpp"
#include "serve/embedding_store.hpp"
#include "serve/query_engine.hpp"
#include "serve/sharded_query.hpp"
#include "serve/sharded_store.hpp"
#include "util/rng.hpp"

namespace seqge::serve {
namespace {

MatrixF constant_matrix(std::size_t rows, std::size_t cols, float value) {
  MatrixF m(rows, cols);
  m.fill(value);
  return m;
}

MatrixF random_matrix(std::size_t rows, std::size_t cols,
                      std::uint64_t seed) {
  MatrixF m(rows, cols);
  Rng rng(seed);
  m.fill_uniform(rng, -1.0, 1.0);
  return m;
}

/// Delta payload for `touched`, value `v` in every entry.
MatrixF delta_rows(std::size_t count, std::size_t cols, float v) {
  return constant_matrix(count, cols, v);
}

// --- layout ---------------------------------------------------------------

TEST(ShardLayout, PartitionsTheNodeRange) {
  ShardLayout layout{4, 10, 3};  // ceil(10/4) == 3
  EXPECT_EQ(layout.begin(0), 0u);
  EXPECT_EQ(layout.rows(0), 3u);
  EXPECT_EQ(layout.begin(3), 9u);
  EXPECT_EQ(layout.rows(3), 1u);
  EXPECT_EQ(layout.shard_of(0), 0u);
  EXPECT_EQ(layout.shard_of(9), 3u);
  std::size_t total = 0;
  for (std::size_t s = 0; s < 4; ++s) total += layout.rows(s);
  EXPECT_EQ(total, 10u);
}

// --- publishing -----------------------------------------------------------

TEST(ShardedEmbeddingStore, FullPublishPopulatesEveryShard) {
  ShardedEmbeddingStore store(4);
  EXPECT_EQ(store.version(), 0u);
  EXPECT_TRUE(store.view().empty());

  const MatrixF m = random_matrix(10, 3, 1);
  EXPECT_EQ(store.publish(MatrixF(m), 42, "test"), 1u);
  EXPECT_EQ(store.version(), 1u);
  EXPECT_EQ(store.num_rows(), 10u);
  EXPECT_EQ(store.walks_trained(), 42u);
  EXPECT_EQ(store.producer(), "test");

  const auto shards = store.view();
  ASSERT_EQ(shards.size(), 4u);
  for (const auto& s : shards) {
    EXPECT_EQ(s->version, 1u);
    EXPECT_EQ(s->base_version, 1u);
    EXPECT_TRUE(s->changed_since_base.empty());
    for (std::size_t r = 0; r < s->num_rows(); ++r) {
      EXPECT_EQ(std::vector<float>(s->row(r).begin(), s->row(r).end()),
                std::vector<float>(m.row(s->row_begin + r).begin(),
                                   m.row(s->row_begin + r).end()));
    }
  }
  EXPECT_DOUBLE_EQ(max_abs_diff(store.materialize(), m), 0.0);
}

TEST(ShardedEmbeddingStore, BadPublishesRejected) {
  ShardedEmbeddingStore store(2);
  EXPECT_THROW(store.publish(MatrixF{}), std::invalid_argument);
  EXPECT_THROW(
      store.publish_delta(std::vector<NodeId>{0}, delta_rows(1, 2, 0.0f)),
      std::logic_error);  // no base yet
  EXPECT_THROW(store.materialize(), std::runtime_error);

  store.publish(constant_matrix(6, 2, 1.0f));
  // Shape must stay fixed after the first publish.
  EXPECT_THROW(store.publish(constant_matrix(7, 2, 1.0f)),
               std::invalid_argument);
  // Touched must be ascending, unique, in range; rows must match.
  EXPECT_THROW(store.publish_delta(std::vector<NodeId>{3, 1},
                                   delta_rows(2, 2, 0.0f)),
               std::invalid_argument);
  EXPECT_THROW(store.publish_delta(std::vector<NodeId>{1, 1},
                                   delta_rows(2, 2, 0.0f)),
               std::invalid_argument);
  EXPECT_THROW(store.publish_delta(std::vector<NodeId>{6},
                                   delta_rows(1, 2, 0.0f)),
               std::invalid_argument);
  EXPECT_THROW(store.publish_delta(std::vector<NodeId>{1},
                                   delta_rows(2, 2, 0.0f)),
               std::invalid_argument);
  EXPECT_THROW(store.publish_delta(std::vector<NodeId>{1},
                                   delta_rows(1, 3, 0.0f)),
               std::invalid_argument);
}

TEST(ShardedEmbeddingStore, DeltaPublishSwapsOnlyTouchedShards) {
  ShardedEmbeddingStore store(4);
  MatrixF reference = random_matrix(12, 3, 2);
  store.publish(MatrixF(reference));
  const auto before = store.view();

  // Touch rows 1 and 4 — shards 0 and 1 (rows_per_shard == 3).
  const std::vector<NodeId> touched = {1, 4};
  MatrixF rows = delta_rows(2, 3, 9.0f);
  EXPECT_EQ(store.publish_delta(touched, MatrixF(rows)), 2u);
  for (std::size_t i = 0; i < touched.size(); ++i) {
    auto dst = reference.row(touched[i]);
    auto src = rows.row(i);
    std::copy(src.begin(), src.end(), dst.begin());
  }

  const auto after = store.view();
  EXPECT_EQ(after[0]->version, 2u);
  EXPECT_EQ(after[0]->base_version, 1u);
  EXPECT_EQ(after[0]->changed_since_base,
            (std::vector<std::uint32_t>{1}));
  EXPECT_EQ(after[1]->version, 2u);
  EXPECT_EQ(after[1]->changed_since_base,
            (std::vector<std::uint32_t>{1}));  // local row of node 4
  // Untouched shards: the very same snapshot object, not even swapped.
  EXPECT_EQ(after[2], before[2]);
  EXPECT_EQ(after[3], before[3]);

  EXPECT_DOUBLE_EQ(max_abs_diff(store.materialize(), reference), 0.0);
  // Untouched rows of a touched shard are shared, not copied: the row
  // pointers must be identical to the previous snapshot's.
  EXPECT_EQ(after[0]->row(0).data(), before[0]->row(0).data());
  EXPECT_EQ(after[0]->row(2).data(), before[0]->row(2).data());
  EXPECT_NE(after[0]->row(1).data(), before[0]->row(1).data());
}

TEST(ShardedEmbeddingStore, RowsCopiedCountsBasePlusExactlyTouched) {
  // Every compaction trigger disabled (cost factor 0) so the
  // accounting below is exact.
  ShardedEmbeddingStore store(
      ShardedEmbeddingStore::Config{4, 1u << 20, 1.0, 0.0});
  store.publish(random_matrix(100, 4, 3));
  EXPECT_EQ(store.rows_copied(), 100u);

  // K delta publishes of T rows each: the store copies exactly K * T
  // rows — the copy-on-write publish-cost contract.
  std::uint64_t touched_total = 0;
  for (std::size_t k = 0; k < 10; ++k) {
    std::vector<NodeId> touched = {static_cast<NodeId>(3 * k),
                                   static_cast<NodeId>(3 * k + 1),
                                   static_cast<NodeId>(50 + 2 * k)};
    store.publish_delta(touched, delta_rows(3, 4, static_cast<float>(k)));
    touched_total += touched.size();
  }
  EXPECT_EQ(store.compactions(), 0u);
  EXPECT_EQ(store.rows_copied(), 100u + touched_total);
  EXPECT_EQ(store.delta_publishes(), 10u);
  EXPECT_EQ(store.full_publishes(), 1u);
}

TEST(ShardedEmbeddingStore, CompactionBoundsDeltaChainsAndKeepsContents) {
  // max_delta_chain == 2: the third delta stacked on one shard compacts.
  ShardedEmbeddingStore store(ShardedEmbeddingStore::Config{2, 2, 1.0});
  MatrixF reference = random_matrix(8, 2, 4);
  store.publish(MatrixF(reference));

  for (std::size_t k = 0; k < 6; ++k) {
    const std::vector<NodeId> touched = {static_cast<NodeId>(k % 4)};
    const MatrixF rows = delta_rows(1, 2, static_cast<float>(10 + k));
    auto dst = reference.row(touched[0]);
    std::copy(rows.row(0).begin(), rows.row(0).end(), dst.begin());
    store.publish_delta(touched, MatrixF(rows));
    const auto snap = store.shard(0);
    EXPECT_LE(snap->delta_chain(), 2u);
  }
  EXPECT_GT(store.compactions(), 0u);
  EXPECT_DOUBLE_EQ(max_abs_diff(store.materialize(), reference), 0.0);
  // A compaction rebases the shard: its overlay resets.
  EXPECT_GT(store.shard(0)->base_version, 1u);
}

// --- SnapshotSink delta integration ---------------------------------------

TEST(ShardedDeltaPublishing, TrainerDeltasReproduceFullStateExactly) {
  // Large enough that an 8-insertion window touches well under half
  // the rows — past half, on_delta deliberately rebases instead.
  const Graph graph = make_barabasi_albert(1200, 3, 11);
  TrainConfig cfg;
  cfg.dims = 8;
  cfg.seed = 5;
  cfg.negative_mode = NegativeMode::kPerWalk;
  cfg.walk.walk_length = 15;
  cfg.walk.window = 4;
  cfg.negative_samples = 5;

  auto store = std::make_shared<ShardedEmbeddingStore>(8);
  Rng rng(cfg.seed);
  auto model = make_backend("oselm", graph.num_nodes(), cfg, rng);

  SequentialConfig scfg;
  scfg.train = cfg;
  scfg.initial_walks_per_node = 1;
  scfg.max_insertions = 40;
  scfg.pipeline.snapshot_sink = store.get();
  scfg.snapshot_every_insertions = 8;
  const SequentialResult result =
      train_sequential(*model, graph, scfg, rng);

  ASSERT_GT(result.insertions, 0u);
  EXPECT_GT(store->delta_publishes(), 0u);
  // The delta path must land the sink on exactly the state a full
  // extract would give — bit-identical, not approximately.
  EXPECT_DOUBLE_EQ(
      max_abs_diff(store->materialize(), model->extract_embedding()), 0.0);
}

// Regression for the publish-cost contract: a cadence publish after K
// sequential insertions deep-copies at most the rows those insertions
// could have touched (2 walks of walk_length nodes + the shared
// negatives per insertion) — never O(n) per publish.
TEST(ShardedDeltaPublishing, SequentialPublishCopiesAtMostTouchedRows) {
  const Graph graph = make_barabasi_albert(1500, 3, 13);
  TrainConfig cfg;
  cfg.dims = 8;
  cfg.seed = 17;
  cfg.negative_mode = NegativeMode::kPerWalk;
  cfg.walk.walk_length = 20;
  cfg.walk.window = 4;
  cfg.negative_samples = 5;

  // Compaction disabled (chain, overlay, and cost triggers) so the
  // accounting below is exact.
  auto store = std::make_shared<ShardedEmbeddingStore>(
      ShardedEmbeddingStore::Config{8, 1u << 20, 1.0, 0.0});
  Rng rng(cfg.seed);
  auto model = make_backend("oselm", graph.num_nodes(), cfg, rng);

  SequentialConfig scfg;
  scfg.train = cfg;
  scfg.initial_walks_per_node = 1;
  scfg.max_insertions = 48;
  scfg.pipeline.snapshot_sink = store.get();
  scfg.snapshot_every_insertions = 8;
  train_sequential(*model, graph, scfg, rng);

  const std::uint64_t full = store->full_publishes();
  const std::uint64_t deltas = store->delta_publishes();
  ASSERT_GE(deltas, 4u);
  // Worst-case touched rows per 8-insertion window: 2 walks x
  // (walk_length nodes + negative_samples shared negatives) each.
  const std::uint64_t per_publish_bound =
      8 * 2 * (cfg.walk.walk_length + cfg.negative_samples);
  const std::uint64_t copied = store->rows_copied();
  EXPECT_LE(copied,
            full * graph.num_nodes() + deltas * per_publish_bound);
  // And the delta path must be far below republished-full cost.
  EXPECT_LT(copied, (full + deltas) * graph.num_nodes());
}

// --- concurrent hammer ----------------------------------------------------

// Sharded analogue of EmbeddingStore.ConcurrentReadersSeeConsistentSnapshots:
// one publisher alternates full publishes with random-subset delta
// publishes; every published row is uniform in the publishing version,
// so readers can detect (a) torn rows — mixed values inside one row,
// (b) time travel — a row newer than the shard's advertised version,
// (c) non-monotonic shard or store versions.
TEST(ShardedEmbeddingStore, ConcurrentReadersSeeConsistentShards) {
  constexpr std::size_t kRows = 64;
  constexpr std::size_t kCols = 16;
  constexpr std::size_t kShards = 4;
  constexpr std::uint64_t kPublishes = 300;
  constexpr std::size_t kReaders = 4;

  ShardedEmbeddingStore store(kShards);
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> torn{0};
  std::atomic<std::uint64_t> future_rows{0};
  std::atomic<std::uint64_t> non_monotonic{0};
  std::atomic<std::uint64_t> reads{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (std::size_t t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      std::vector<std::uint64_t> last_shard_seen(kShards, 0);
      std::uint64_t last_store_seen = 0;
      Rng rng(1000 + t);
      for (std::size_t i = 0;
           i < 500 || !done.load(std::memory_order_acquire); ++i) {
        const std::uint64_t sv = store.version();
        if (sv < last_store_seen) non_monotonic.fetch_add(1);
        last_store_seen = sv;
        if (sv == 0) continue;
        const std::size_t s = rng.bounded(kShards);
        const auto snap = store.shard(s);
        if (snap == nullptr) continue;
        if (snap->version < last_shard_seen[s]) non_monotonic.fetch_add(1);
        last_shard_seen[s] = snap->version;
        for (std::size_t r = 0; r < snap->num_rows(); ++r) {
          const auto row = snap->row(r);
          const float v0 = row[0];
          for (float v : row) {
            if (v != v0) {
              torn.fetch_add(1);
              break;
            }
          }
          if (static_cast<std::uint64_t>(v0) > snap->version) {
            future_rows.fetch_add(1);
          }
        }
        reads.fetch_add(1);
      }
    });
  }

  Rng prng(7);
  for (std::uint64_t p = 1; p <= kPublishes; ++p) {
    const auto value = static_cast<float>(p);
    if (p == 1 || p % 10 == 0) {
      store.publish(constant_matrix(kRows, kCols, value), p, "pub");
    } else {
      std::vector<NodeId> touched;
      for (NodeId r = 0; r < kRows; ++r) {
        if (prng.bounded(8) == 0) touched.push_back(r);
      }
      store.publish_delta(touched,
                          delta_rows(touched.size(), kCols, value), p,
                          "pub");
    }
  }
  done.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();

  EXPECT_EQ(torn.load(), 0u);
  EXPECT_EQ(future_rows.load(), 0u);
  EXPECT_EQ(non_monotonic.load(), 0u);
  EXPECT_EQ(store.version(), kPublishes);
  EXPECT_GT(reads.load(), 0u);
}

// --- ShardedQueryEngine ---------------------------------------------------

TEST(ShardedQueryEngine, ExactFanOutIsBitIdenticalToSingleStore) {
  const MatrixF m = random_matrix(500, 16, 21);

  EmbeddingStore single;
  single.publish(MatrixF(m));
  const QueryEngine reference(single.current());

  for (std::size_t num_shards : {1u, 4u, 7u}) {
    ShardedEmbeddingStore store(num_shards);
    store.publish(MatrixF(m));
    const ShardedQueryEngine sharded(store);
    EXPECT_EQ(sharded.num_shards(), num_shards);

    for (const Similarity sim : {Similarity::kCosine, Similarity::kDot}) {
      for (NodeId u : {NodeId{0}, NodeId{123}, NodeId{250}, NodeId{499}}) {
        const auto expect = reference.topk(u, 10, sim);
        const auto got = sharded.topk(u, 10, sim);
        ASSERT_EQ(got.size(), expect.size());
        for (std::size_t i = 0; i < expect.size(); ++i) {
          EXPECT_EQ(got[i].node, expect[i].node);
          EXPECT_EQ(got[i].score, expect[i].score);  // bit-identical
        }
      }
    }
    // Edge scores route through the same span scorer.
    for (const EdgeScore kind :
         {EdgeScore::kDot, EdgeScore::kCosine, EdgeScore::kHadamardL2}) {
      EXPECT_DOUBLE_EQ(sharded.score(3, 77, kind),
                       reference.score(3, 77, kind));
    }
  }
}

TEST(ShardedQueryEngine, ThreadedFanOutIsBitIdenticalToSequential) {
  const MatrixF m = random_matrix(600, 16, 27);
  ShardedEmbeddingStore store(5);
  store.publish(MatrixF(m));

  const ShardedQueryEngine sequential(store);
  ShardedIndexConfig threaded_cfg;
  threaded_cfg.scan_threads = 3;
  const ShardedQueryEngine threaded(store, threaded_cfg);

  for (const Similarity sim : {Similarity::kCosine, Similarity::kDot}) {
    for (NodeId u : {NodeId{0}, NodeId{150}, NodeId{311}, NodeId{599}}) {
      const auto expect = sequential.topk(u, 12, sim);
      const auto got = threaded.topk(u, 12, sim);
      ASSERT_EQ(got.size(), expect.size());
      for (std::size_t i = 0; i < expect.size(); ++i) {
        EXPECT_EQ(got[i].node, expect[i].node);
        EXPECT_EQ(got[i].score, expect[i].score);  // bit-identical
      }
    }
  }
}

TEST(ShardedQueryEngine, ThreadedFanOutBreaksScoreTiesLikeSequential) {
  // Tie-heavy matrix: every row is one of 4 distinct vectors, so the
  // top-k cutoff lands inside a large equal-score group and the result
  // is decided purely by tie-breaking (ascending node id). The
  // per-shard merge must reproduce the sequential scan's choices even
  // when ties straddle shard boundaries.
  MatrixF m(240, 8);
  const MatrixF basis = random_matrix(4, 8, 31);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    auto src = basis.row(r % 4);
    std::copy(src.begin(), src.end(), m.row(r).begin());
  }

  EmbeddingStore single;
  single.publish(MatrixF(m));
  const QueryEngine reference(single.current());

  ShardedEmbeddingStore store(7);
  store.publish(MatrixF(m));
  ShardedIndexConfig cfg;
  cfg.scan_threads = 4;
  const ShardedQueryEngine threaded(store, cfg);

  for (NodeId u : {NodeId{0}, NodeId{5}, NodeId{77}, NodeId{239}}) {
    const auto expect = reference.topk(u, 10, Similarity::kCosine);
    const auto got = threaded.topk(u, 10, Similarity::kCosine);
    ASSERT_EQ(got.size(), expect.size());
    for (std::size_t i = 0; i < expect.size(); ++i) {
      EXPECT_EQ(got[i].node, expect[i].node);
      EXPECT_EQ(got[i].score, expect[i].score);
    }
  }
}

TEST(ShardedEmbeddingStore, CompactionIsScheduledByDeltaCostNotChainDepth) {
  // 100 rows over 4 shards (25 rows each), 2 touched rows per shard per
  // publish. The old eager chain trigger would compact every shard on
  // nearly every publish past the chain bound; the cost trigger compacts
  // a shard only once >= compact_cost_factor x 25 delta rows have
  // accumulated since its base — about once every ceil(25 / 2) == 13
  // publishes per shard.
  ShardedEmbeddingStore store(ShardedEmbeddingStore::Config{4});
  store.publish(random_matrix(100, 4, 41));

  const std::size_t kPublishes = 50;
  for (std::size_t k = 0; k < kPublishes; ++k) {
    // The same 2 rows per shard every time: the overlay stays at 8% of
    // the shard (no overlay backstop), so compaction cadence is decided
    // purely by the appended-delta cost model.
    std::vector<NodeId> touched;
    for (std::size_t s = 0; s < 4; ++s) {
      const NodeId begin = static_cast<NodeId>(25 * s);
      touched.push_back(begin);
      touched.push_back(begin + 1);
    }
    store.publish_delta(touched, delta_rows(touched.size(), 4,
                                            static_cast<float>(k)));
  }
  // 2 appended rows per publish crosses the 25-row amortization bound
  // every 13th publish: 3 compactions per shard over 50 publishes (12
  // total), not one per publish as the old chain trigger produced.
  EXPECT_LE(store.compactions(), 16u);
  EXPECT_GE(store.compactions(), 4u);

  // Each compaction rebases its shard, so every delta chain stays far
  // below the publish count.
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_LE(store.shard(s)->delta_chain(), 13u);
  }
}

TEST(ShardedQueryEngine, StaysIdenticalAfterDeltaPublishes) {
  MatrixF m = random_matrix(300, 8, 23);
  ShardedEmbeddingStore store(5);
  store.publish(MatrixF(m));

  // Apply the same updates to the sharded store (as deltas) and to the
  // reference matrix (in place).
  Rng rng(9);
  for (int round = 0; round < 5; ++round) {
    std::vector<NodeId> touched;
    for (NodeId r = 0; r < 300; ++r) {
      if (rng.bounded(10) == 0) touched.push_back(r);
    }
    MatrixF rows(touched.size(), 8);
    rows.fill_uniform(rng, -1.0, 1.0);
    for (std::size_t i = 0; i < touched.size(); ++i) {
      auto dst = m.row(touched[i]);
      auto src = rows.row(i);
      std::copy(src.begin(), src.end(), dst.begin());
    }
    store.publish_delta(touched, std::move(rows));
  }

  EmbeddingStore single;
  single.publish(MatrixF(m));
  const QueryEngine reference(single.current());
  const ShardedQueryEngine sharded(store);
  for (NodeId u = 0; u < 300; u += 37) {
    const auto expect = reference.topk(u, 8);
    const auto got = sharded.topk(u, 8);
    ASSERT_EQ(got.size(), expect.size());
    for (std::size_t i = 0; i < expect.size(); ++i) {
      EXPECT_EQ(got[i].node, expect[i].node);
      EXPECT_EQ(got[i].score, expect[i].score);
    }
  }
}

TEST(ShardedQueryEngine, BadInputsThrow) {
  ShardedEmbeddingStore empty(2);
  EXPECT_THROW(ShardedQueryEngine{empty}, std::invalid_argument);

  ShardedEmbeddingStore store(2);
  store.publish(random_matrix(10, 4, 1));
  const ShardedQueryEngine engine(store);
  EXPECT_THROW(engine.topk(NodeId{10}, 3), std::invalid_argument);
  const std::vector<float> wrong_dims(3, 0.0f);
  EXPECT_THROW(engine.topk(std::span<const float>(wrong_dims), 3),
               std::invalid_argument);
  EXPECT_EQ(engine.topk(NodeId{0}, 100).size(), 9u);  // k clamped
}

/// Clustered rows (IVF's regime): `clusters` directions + jitter.
MatrixF clustered_matrix(std::size_t n, std::size_t dims,
                         std::size_t clusters, std::uint64_t seed) {
  Rng rng(seed);
  MatrixF centers(clusters, dims);
  centers.fill_gaussian(rng, 1.0);
  MatrixF m(n, dims);
  for (std::size_t r = 0; r < n; ++r) {
    const auto c = centers.row(r % clusters);
    auto row = m.row(r);
    for (std::size_t d = 0; d < dims; ++d) {
      row[d] = c[d] + static_cast<float>(rng.gaussian() * 0.15);
    }
  }
  return m;
}

TEST(ShardedQueryEngine, IvfFullProbeMatchesExactAndRecallIsHigh) {
  const MatrixF m = clustered_matrix(2000, 16, 20, 31);
  ShardedEmbeddingStore store(4);
  store.publish(MatrixF(m));

  const ShardedQueryEngine exact(store);
  ShardedIndexConfig icfg;
  icfg.index.kind = IndexConfig::Kind::kIvf;
  icfg.index.nlist = 16;  // per shard
  icfg.index.nprobe = 4;
  const ShardedQueryEngine ivf(store, icfg);

  double recall_sum = 0.0;
  constexpr std::size_t kQueries = 40;
  for (std::size_t q = 0; q < kQueries; ++q) {
    const auto u = static_cast<NodeId>(q * 47 % 2000);
    const auto truth = exact.topk(u, 10);
    // nprobe >= nlist degenerates to the exact scan.
    const auto full = ivf.topk(u, 10, Similarity::kCosine, /*nprobe=*/16);
    EXPECT_DOUBLE_EQ(recall_at_k(truth, full), 1.0);
    recall_sum += recall_at_k(truth, ivf.topk(u, 10));
  }
  EXPECT_GE(recall_sum / kQueries, 0.9);
}

TEST(ShardedQueryEngine, IncrementalRefreshReusesAndReassignsSelectively) {
  const MatrixF m = clustered_matrix(1200, 16, 12, 41);
  ShardedEmbeddingStore store(6);
  store.publish(MatrixF(m));

  ShardedIndexConfig icfg;
  icfg.index.kind = IndexConfig::Kind::kIvf;
  icfg.index.nlist = 8;
  icfg.index.nprobe = 8;  // per-shard exact fallback: recall checks easy
  icfg.reassign_threshold = 0.05f;
  const ShardedQueryEngine base(store, icfg);
  EXPECT_EQ(base.refresh_stats().shards_rebuilt, 6u);

  // Delta: rows 0..9 flip direction entirely (must re-assign); rows
  // 600..604 get a tiny nudge (must not).
  std::vector<NodeId> touched;
  MatrixF rows(15, 16);
  for (std::size_t i = 0; i < 10; ++i) {
    touched.push_back(static_cast<NodeId>(i));
    auto src = m.row(i);
    auto dst = rows.row(i);
    for (std::size_t d = 0; d < 16; ++d) dst[d] = -src[d] + 0.3f;
  }
  for (std::size_t i = 0; i < 5; ++i) {
    touched.push_back(static_cast<NodeId>(600 + i));
    auto src = m.row(600 + i);
    auto dst = rows.row(10 + i);
    for (std::size_t d = 0; d < 16; ++d) dst[d] = src[d] * 1.0001f;
  }
  store.publish_delta(touched, std::move(rows));

  const ShardedQueryEngine refreshed(store, icfg, &base);
  const auto& stats = refreshed.refresh_stats();
  // Rows 0..9 live in shard 0, rows 600..604 in shard 3: exactly two
  // shards refreshed, the other four shared untouched.
  EXPECT_EQ(stats.shards_refreshed, 2u);
  EXPECT_EQ(stats.shards_reused, 4u);
  EXPECT_EQ(stats.shards_rebuilt, 0u);
  EXPECT_EQ(stats.rows_updated, 15u);
  // The flipped rows moved past the threshold; the nudged ones did not.
  EXPECT_GE(stats.rows_reassigned, 1u);
  EXPECT_LE(stats.rows_reassigned, 10u);
  EXPECT_EQ(refreshed.version(), store.version());

  // The refreshed engine serves the *new* values (exact path check
  // against a from-scratch engine).
  const ShardedQueryEngine fresh(store, icfg);
  for (NodeId u : {NodeId{0}, NodeId{5}, NodeId{602}, NodeId{1100}}) {
    const auto a = refreshed.topk(u, 5);
    const auto b = fresh.topk(u, 5);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].score, b[i].score);
    }
  }
}

// --- EmbeddingServer over a sharded store ---------------------------------

TEST(EmbeddingServerSharded, AnswersMatchDirectEngineAcrossVersions) {
  auto store = std::make_shared<ShardedEmbeddingStore>(4);
  store->publish(clustered_matrix(400, 16, 8, 51));

  ServerConfig cfg;
  cfg.threads = 3;
  EmbeddingServer server(store, cfg);

  const ShardedQueryEngine reference(*store);
  for (std::size_t i = 0; i < 100; ++i) {
    const auto u = static_cast<NodeId>(i * 13 % 400);
    TopKResult res = server.topk(u, 5).get();
    EXPECT_EQ(res.version, 1u);
    const auto expect = reference.topk(u, 5);
    ASSERT_EQ(res.neighbors.size(), expect.size());
    for (std::size_t j = 0; j < expect.size(); ++j) {
      EXPECT_EQ(res.neighbors[j].node, expect[j].node);
    }
    ScoreResult sres = server.score(u, (u + 7) % 400).get();
    EXPECT_DOUBLE_EQ(sres.score, reference.score(u, (u + 7) % 400));
  }

  // A delta publish moves the served version forward.
  store->publish_delta(std::vector<NodeId>{1, 2},
                       delta_rows(2, 16, 3.5f));
  EXPECT_EQ(server.topk(0, 3).get().version, 2u);
  server.drain();
  EXPECT_EQ(server.engine_rebuilds(), 2u);
}

// --- checkpoint interop ---------------------------------------------------

TEST(ShardedEmbeddingStore, CheckpointRoundTripsThroughUnshardedStore) {
  ShardedEmbeddingStore store(3);
  const MatrixF m = random_matrix(9, 4, 61);
  store.publish(MatrixF(m));
  store.publish_delta(std::vector<NodeId>{2, 7}, delta_rows(2, 4, 8.0f));
  const MatrixF expected = store.materialize();

  std::stringstream ss;
  store.save(ss);

  EmbeddingStore single;
  EXPECT_EQ(single.load(ss), 1u);
  EXPECT_DOUBLE_EQ(max_abs_diff(single.current()->embedding, expected),
                   0.0);

  std::stringstream back;
  single.save(back);
  ShardedEmbeddingStore restored(5);
  EXPECT_EQ(restored.load(back), 1u);
  EXPECT_DOUBLE_EQ(max_abs_diff(restored.materialize(), expected), 0.0);
}

// --- dirty-row accounting --------------------------------------------------

// Pins the publish-cost invariant the StreamTrainer and train_sequential
// both rely on: a row touched by several passes of one insertion — as a
// walk node in the positive pass AND as a shared negative in the
// negative pass — is marked ONCE. mark() dedupes via the stamp array,
// so sorted().size() (and therefore rows_copied growth at the next
// delta publish) counts unique rows, never marks.
TEST(DirtyRowSet, RowTouchedByBothPassesCountsOnce) {
  DirtyRowSet dirty(32);
  // Positive pass: the walk's nodes.
  const std::vector<NodeId> walk = {4, 7, 9, 4, 12};
  dirty.mark_all(walk);
  // Negative pass: shared negatives overlapping the walk (7, 12).
  const std::vector<NodeId> negs = {7, 12, 20};
  dirty.mark_all(negs);
  EXPECT_EQ(dirty.size(), 5u);  // {4, 7, 9, 12, 20}, nothing twice
  const auto rows = dirty.sorted();
  const std::vector<NodeId> expected = {4, 7, 9, 12, 20};
  EXPECT_EQ(std::vector<NodeId>(rows.begin(), rows.end()), expected);

  // The deduped set drives the copy accounting end to end: a delta
  // publish of these rows copies exactly size() rows.
  ShardedEmbeddingStore store(
      ShardedEmbeddingStore::Config{2, 1u << 20, 1.0, 0.0});
  store.publish(random_matrix(32, 4, 21));
  const auto base = store.rows_copied();
  store.publish_delta(rows, delta_rows(rows.size(), 4, 1.5f));
  EXPECT_EQ(store.rows_copied() - base, rows.size());

  // clear() resets the stamps: the same rows can be re-marked next
  // epoch without leaking marks across publishes.
  dirty.clear();
  EXPECT_TRUE(dirty.empty());
  dirty.mark(7);
  EXPECT_EQ(dirty.size(), 1u);
}

// --- tombstones x compaction -----------------------------------------------

TEST(ShardedEmbeddingStore, TombstonesSurviveCompactionAndReviveOnDelta) {
  // max_delta_chain == 2 forces compactions quickly.
  ShardedEmbeddingStore store(ShardedEmbeddingStore::Config{2, 2, 1.0});
  store.publish(random_matrix(8, 2, 31));
  const std::vector<NodeId> dead = {1, 6};
  store.publish_tombstones(dead);
  EXPECT_EQ(store.tombstoned_rows(), 2u);

  // Hammer one shard until it compacts; rows 0/2 never touch the dead
  // rows, so both tombstones must be carried through the repack.
  for (std::size_t k = 0; k < 6; ++k) {
    const std::vector<NodeId> touched = {static_cast<NodeId>((k % 2) * 2)};
    store.publish_delta(touched, delta_rows(1, 2, static_cast<float>(k)));
  }
  EXPECT_GT(store.compactions(), 0u);
  EXPECT_EQ(store.tombstoned_rows(), 2u);
  auto tombstoned = [&](NodeId row) {
    const auto snap = store.shard(store.layout().shard_of(row));
    return snap->tombstoned(row - snap->row_begin);
  };
  EXPECT_TRUE(tombstoned(1));

  // Republishing a dead row revives it — including through the
  // compaction path.
  const std::vector<NodeId> touch_dead = {1};
  store.publish_delta(touch_dead, delta_rows(1, 2, 9.0f));
  EXPECT_EQ(store.tombstoned_rows(), 1u);
  EXPECT_FALSE(tombstoned(1));
  EXPECT_TRUE(tombstoned(6));
}

}  // namespace
}  // namespace seqge::serve
