// Tests for the unified backend registry — the single construction path
// for the three CPU models and the FPGA accelerator.

#include <gtest/gtest.h>

#include <stdexcept>

#include "embedding/backend_registry.hpp"
#include "fpga/accelerator.hpp"
#include "graph/generators.hpp"
#include "sampling/negative_sampler.hpp"
#include "walk/node2vec_walker.hpp"

namespace seqge {
namespace {

TrainConfig small_config() {
  TrainConfig cfg;
  cfg.dims = 8;
  cfg.walk.walk_length = 20;
  cfg.walk.window = 5;
  cfg.negative_samples = 4;
  return cfg;
}

TEST(BackendRegistry, BuiltinsPresentInStableOrder) {
  const std::vector<std::string> names = backend_names();
  ASSERT_GE(names.size(), 4u);
  EXPECT_EQ(names[0], "original-sgd");
  EXPECT_EQ(names[1], "oselm");
  EXPECT_EQ(names[2], "oselm-dataflow");
  EXPECT_EQ(names[3], "fpga");
  for (const std::string& n : names) {
    EXPECT_TRUE(BackendRegistry::instance().contains(n)) << n;
    EXPECT_FALSE(BackendRegistry::instance().describe(n).empty()) << n;
  }
  EXPECT_FALSE(BackendRegistry::instance().contains("no-such-backend"));
}

TEST(BackendRegistry, UnknownNameThrowsWithAvailableList) {
  const TrainConfig cfg = small_config();
  Rng rng(1);
  try {
    auto m = make_backend("warp-drive", 10, cfg, rng);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("warp-drive"), std::string::npos);
    EXPECT_NE(what.find("original-sgd"), std::string::npos);
    EXPECT_NE(what.find("fpga"), std::string::npos);
  }
}

TEST(BackendRegistry, EveryBuiltinTrainsAWalk) {
  const LabeledGraph data = generate_dcsbm(
      {.num_nodes = 60, .target_edges = 300, .num_classes = 3, .seed = 3});
  const TrainConfig cfg = small_config();
  const NegativeSampler sampler = NegativeSampler::from_degrees(data.graph);
  Node2VecWalker<Graph> walker(data.graph, cfg.walk);

  for (const std::string& backend : backend_names()) {
    Rng rng(cfg.seed);
    auto model = make_backend(backend, data.graph.num_nodes(), cfg, rng);
    ASSERT_NE(model, nullptr) << backend;
    EXPECT_EQ(model->dims(), cfg.dims) << backend;
    EXPECT_EQ(model->num_nodes(), data.graph.num_nodes()) << backend;
    EXPECT_FALSE(model->name().empty()) << backend;

    const auto walk = walker.walk(rng, 0);
    model->train_walk(walk, cfg.walk.window, sampler, cfg.negative_samples,
                      cfg.negative_mode, rng);
    const MatrixF emb = model->extract_embedding();
    EXPECT_EQ(emb.rows(), data.graph.num_nodes()) << backend;
    EXPECT_EQ(emb.cols(), cfg.dims) << backend;
  }
}

TEST(BackendRegistry, FpgaFactoryRespectsTrainConfig) {
  TrainConfig cfg = small_config();
  cfg.dims = 16;
  cfg.walk.walk_length = 30;
  cfg.walk.window = 4;
  cfg.negative_samples = 6;
  cfg.mu = 0.02;
  Rng rng(9);
  auto model = make_backend("fpga", 50, cfg, rng);
  const auto& accel = dynamic_cast<const fpga::Accelerator&>(*model);
  EXPECT_EQ(accel.config().dims, 16u);
  EXPECT_EQ(accel.config().walk_length, 30u);
  EXPECT_EQ(accel.config().window, 4u);
  EXPECT_EQ(accel.config().negative_samples, 6u);
  EXPECT_DOUBLE_EQ(accel.config().mu, 0.02);
}

TEST(BackendRegistry, AddRegistersAndReplaces) {
  // Use a scratch registry-like flow through the singleton with a
  // throwaway name; replacing must not grow the name list.
  auto& reg = BackendRegistry::instance();
  const std::size_t before = reg.names().size();
  reg.add("test-null", "first",
          [](std::size_t n, const TrainConfig& cfg, Rng& rng) {
            return make_model(ModelKind::kOselm, n, cfg, rng);
          });
  EXPECT_EQ(reg.names().size(), before + 1);
  EXPECT_EQ(reg.describe("test-null"), "first");
  reg.add("test-null", "second",
          [](std::size_t n, const TrainConfig& cfg, Rng& rng) {
            return make_model(ModelKind::kOselm, n, cfg, rng);
          });
  EXPECT_EQ(reg.names().size(), before + 1);
  EXPECT_EQ(reg.describe("test-null"), "second");
}

}  // namespace
}  // namespace seqge
