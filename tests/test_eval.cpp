// Tests for the downstream-evaluation substrate: F1 metrics against
// hand-computed confusions, stratified splitting, logistic regression on
// separable data, and the end-to-end embedding scorer.

#include <gtest/gtest.h>

#include <vector>

#include "eval/logistic_regression.hpp"
#include "eval/metrics.hpp"
#include "eval/node_classification.hpp"
#include "eval/split.hpp"
#include "util/rng.hpp"

namespace seqge {
namespace {

TEST(F1, PerfectPrediction) {
  const std::vector<std::uint32_t> y = {0, 1, 2, 0, 1, 2};
  const F1Scores s = f1_scores(y, y, 3);
  EXPECT_DOUBLE_EQ(s.micro, 1.0);
  EXPECT_DOUBLE_EQ(s.macro, 1.0);
  EXPECT_DOUBLE_EQ(s.accuracy, 1.0);
}

TEST(F1, HandComputedCase) {
  // pred: 0 0 1 1 ; actual: 0 1 1 0
  // class 0: tp=1 fp=1 fn=1 -> F1 = 0.5 ; class 1: same.
  const std::vector<std::uint32_t> pred = {0, 0, 1, 1};
  const std::vector<std::uint32_t> actual = {0, 1, 1, 0};
  const F1Scores s = f1_scores(pred, actual, 2);
  EXPECT_DOUBLE_EQ(s.micro, 0.5);
  EXPECT_DOUBLE_EQ(s.macro, 0.5);
  EXPECT_DOUBLE_EQ(s.accuracy, 0.5);
}

TEST(F1, MicroEqualsAccuracyForSingleLabel) {
  Rng rng(1);
  std::vector<std::uint32_t> pred(500), actual(500);
  for (std::size_t i = 0; i < 500; ++i) {
    pred[i] = static_cast<std::uint32_t>(rng.bounded(5));
    actual[i] = static_cast<std::uint32_t>(rng.bounded(5));
  }
  const F1Scores s = f1_scores(pred, actual, 5);
  EXPECT_DOUBLE_EQ(s.micro, s.accuracy);
}

TEST(F1, MacroPenalizesMinorityFailure) {
  // Majority class perfectly predicted, minority always wrong.
  std::vector<std::uint32_t> actual(100, 0), pred(100, 0);
  for (int i = 90; i < 100; ++i) actual[static_cast<std::size_t>(i)] = 1;
  const F1Scores s = f1_scores(pred, actual, 2);
  EXPECT_GT(s.micro, 0.85);
  EXPECT_LT(s.macro, 0.55);
}

TEST(F1, ErrorHandling) {
  const std::vector<std::uint32_t> a = {0, 1};
  const std::vector<std::uint32_t> b = {0};
  EXPECT_THROW(f1_scores(a, b, 2), std::invalid_argument);
  const std::vector<std::uint32_t> big = {5, 0};
  EXPECT_THROW(f1_scores(big, a, 2), std::out_of_range);
}

TEST(Split, ProportionsAndCoverage) {
  std::vector<std::uint32_t> labels;
  for (int c = 0; c < 4; ++c) {
    for (int i = 0; i < 100; ++i) labels.push_back(static_cast<std::uint32_t>(c));
  }
  Rng rng(2);
  const TrainTestSplit split = stratified_split(labels, 4, 0.1, rng);
  EXPECT_EQ(split.test_indices.size(), 40u);
  EXPECT_EQ(split.train_indices.size(), 360u);

  // Every index appears exactly once across the two partitions.
  std::vector<int> seen(400, 0);
  for (auto i : split.train_indices) ++seen[i];
  for (auto i : split.test_indices) ++seen[i];
  for (int s : seen) EXPECT_EQ(s, 1);

  // Stratification: 10 test samples per class.
  std::vector<int> per_class(4, 0);
  for (auto i : split.test_indices) ++per_class[labels[i]];
  for (int c : per_class) EXPECT_EQ(c, 10);
}

TEST(Split, TinyClassesKeepTestSample) {
  const std::vector<std::uint32_t> labels = {0, 0, 1, 1, 1};
  Rng rng(3);
  const TrainTestSplit split = stratified_split(labels, 2, 0.1, rng);
  std::vector<int> per_class(2, 0);
  for (auto i : split.test_indices) ++per_class[labels[i]];
  EXPECT_EQ(per_class[0], 1);
  EXPECT_EQ(per_class[1], 1);
}

TEST(Split, BadFractionThrows) {
  const std::vector<std::uint32_t> labels = {0, 1};
  Rng rng(4);
  EXPECT_THROW(stratified_split(labels, 2, 0.0, rng), std::invalid_argument);
  EXPECT_THROW(stratified_split(labels, 2, 1.0, rng), std::invalid_argument);
}

MatrixF gaussian_blobs(std::span<const std::uint32_t> labels,
                       std::size_t dims, double sep, Rng& rng) {
  MatrixF x(labels.size(), dims);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    auto row = x.row(i);
    for (std::size_t d = 0; d < dims; ++d) {
      const double center = (d == labels[i] % dims) ? sep : 0.0;
      row[d] = static_cast<float>(center + rng.gaussian());
    }
  }
  return x;
}

TEST(LogisticRegression, LearnsSeparableBlobs) {
  Rng rng(5);
  std::vector<std::uint32_t> labels(300);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    labels[i] = static_cast<std::uint32_t>(i % 3);
  }
  const MatrixF x = gaussian_blobs(labels, 6, 6.0, rng);

  const TrainTestSplit split = stratified_split(labels, 3, 0.2, rng);
  OneVsRestLogisticRegression clf;
  clf.fit(x, labels, split.train_indices, 3);
  const auto pred = clf.predict_rows(x, split.test_indices);
  std::vector<std::uint32_t> actual;
  for (auto i : split.test_indices) actual.push_back(labels[i]);
  EXPECT_GT(f1_scores(pred, actual, 3).micro, 0.95);
}

TEST(LogisticRegression, StandardizationHandlesScaledFeatures) {
  // Same blobs but features scaled by 1e-4 (like a small-mu embedding):
  // with standardization the classifier must still learn.
  Rng rng(6);
  std::vector<std::uint32_t> labels(200);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    labels[i] = static_cast<std::uint32_t>(i % 2);
  }
  MatrixF x = gaussian_blobs(labels, 4, 6.0, rng);
  for (auto& v : x.flat()) v *= 1e-4f;

  const TrainTestSplit split = stratified_split(labels, 2, 0.2, rng);
  OneVsRestLogisticRegression clf;
  clf.fit(x, labels, split.train_indices, 2);
  const auto pred = clf.predict_rows(x, split.test_indices);
  std::vector<std::uint32_t> actual;
  for (auto i : split.test_indices) actual.push_back(labels[i]);
  EXPECT_GT(f1_scores(pred, actual, 2).micro, 0.9);
}

TEST(LogisticRegression, EmptyTrainSetThrows) {
  MatrixF x(3, 2);
  const std::vector<std::uint32_t> labels = {0, 1, 0};
  OneVsRestLogisticRegression clf;
  EXPECT_THROW(clf.fit(x, labels, {}, 2), std::invalid_argument);
}

TEST(NodeClassification, EndToEndOnBlobs) {
  Rng rng(7);
  std::vector<std::uint32_t> labels(300);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    labels[i] = static_cast<std::uint32_t>(i % 3);
  }
  const MatrixF x = gaussian_blobs(labels, 8, 5.0, rng);
  const double f1 =
      mean_micro_f1(x, labels, 3, ClassificationConfig{}, 3, 42);
  EXPECT_GT(f1, 0.9);
}

TEST(NodeClassification, RandomFeaturesScoreNearChance) {
  Rng rng(8);
  std::vector<std::uint32_t> labels(400);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    labels[i] = static_cast<std::uint32_t>(i % 4);
  }
  MatrixF x(400, 8);
  x.fill_gaussian(rng, 1.0);
  const double f1 =
      mean_micro_f1(x, labels, 4, ClassificationConfig{}, 3, 43);
  EXPECT_LT(f1, 0.45) << "pure noise must not be learnable";
}

}  // namespace
}  // namespace seqge
