// SIMD dispatch layer + int8 quantized store tests.
//
// The float equivalence tests compare the dispatched kernels against
// the scalar reference (simd::scalar::) on whatever ISA this build
// selects: exhaustive over lengths that exercise every vector-width
// remainder, over unaligned starting offsets, and over NaN/denormal
// payloads. Vector accumulation reorders float sums, so float checks
// use tight relative tolerances — except where the contract is exact:
// dot_batch and dot_topk_scan must match per-row dot() calls
// bit-identically on the same ISA, and the int8 kernels are integer
// arithmetic, bit-exact across every implementation.
//
// The quantized-store tests pin the quantization contract: round-trip
// error bounded by scale/2 per element, ~4x size, deterministic scans,
// and recall@10 >= 0.95 for the int8 QueryEngine path vs. the exact
// float engine.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "linalg/simd.hpp"
#include "serve/embedding_store.hpp"
#include "serve/query_engine.hpp"
#include "serve/quantized_store.hpp"
#include "util/rng.hpp"

namespace seqge {
namespace {

std::vector<float> random_vec(std::size_t n, Rng& rng, double lo = -1.0,
                              double hi = 1.0) {
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.uniform(lo, hi));
  return v;
}

// Lengths covering every remainder of the widest vector step (8 for
// AVX2 floats, 16 for int8) plus zero and large-ish sizes.
const std::size_t kLengths[] = {0,  1,  2,  3,  4,  5,  7,  8,  9,  15,
                                16, 17, 23, 31, 32, 33, 63, 64, 100, 257};

TEST(SimdDispatch, ReportsAConsistentIsa) {
  const simd::Isa isa = simd::active_isa();
  EXPECT_EQ(isa, simd::active_isa());  // fixed for process lifetime
  const std::string name = simd::isa_name();
  EXPECT_TRUE(name == "scalar" || name == "avx2" || name == "neon");
#ifdef SEQGE_DISABLE_SIMD
  EXPECT_EQ(isa, simd::Isa::kScalar);
#endif
}

TEST(SimdFloat, DotMatchesScalarAcrossLengthsAndOffsets) {
  Rng rng(1);
  for (std::size_t n : kLengths) {
    for (std::size_t off : {0u, 1u, 3u}) {
      const auto x = random_vec(n + off, rng);
      const auto y = random_vec(n + off, rng);
      const float got = simd::dot(x.data() + off, y.data() + off, n);
      const float ref = simd::scalar::dot(x.data() + off, y.data() + off, n);
      // Vector lanes reorder the sum; error stays within a few ulps of
      // the term magnitudes.
      EXPECT_NEAR(got, ref, 1e-4f * (static_cast<float>(n) + 1.0f))
          << "n=" << n << " off=" << off;
    }
  }
}

TEST(SimdFloat, AxpyAndScaleMatchScalarExactly) {
  // axpy/scale are elementwise — no cross-lane reassociation — so the
  // only float difference FMA contraction could introduce is in
  // a * x[i] + y[i]. GCC contracts both paths identically for the
  // scalar tail; accept 1-ulp differences on the vector body.
  Rng rng(2);
  for (std::size_t n : kLengths) {
    const auto x = random_vec(n, rng);
    const float a = static_cast<float>(rng.uniform(-2.0, 2.0));

    auto y_got = random_vec(n, rng);
    auto y_ref = y_got;
    simd::axpy(a, x.data(), y_got.data(), n);
    simd::scalar::axpy(a, x.data(), y_ref.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(y_got[i], y_ref[i], 1e-6f) << "axpy n=" << n << " i=" << i;
    }

    auto s_got = x;
    auto s_ref = x;
    simd::scale(a, s_got.data(), n);
    simd::scalar::scale(a, s_ref.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      // A pure multiply rounds once on every path: bit-identical.
      EXPECT_EQ(s_got[i], s_ref[i]) << "scale n=" << n << " i=" << i;
    }
  }
}

TEST(SimdFloat, L2NormKeepsDoublePrecisionAccumulation) {
  Rng rng(3);
  for (std::size_t n : kLengths) {
    const auto x = random_vec(n, rng);
    const double got = simd::l2_norm(x.data(), n);
    const double ref = simd::scalar::l2_norm(x.data(), n);
    // Every ISA widens lanes to double before accumulating, so the only
    // difference is double-sum ordering: near-ulp agreement.
    EXPECT_NEAR(got, ref, 1e-12 * (ref + 1.0)) << "n=" << n;
  }
}

TEST(SimdFloat, DotBatchIsBitIdenticalToPerRowDot) {
  // The canonical per-row accumulation order contract: whatever
  // cross-row blocking dot_batch uses, each row's score must equal a
  // 1-row dot() call bit-for-bit. Cover every remainder of the 4-row
  // blocking and odd dims.
  Rng rng(4);
  for (std::size_t n : {0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u, 13u, 130u}) {
    for (std::size_t dims : {1u, 7u, 8u, 17u, 96u}) {
      const auto rows = random_vec(n * dims, rng);
      const auto q = random_vec(dims, rng);
      std::vector<float> scores(n, 0.0f);
      simd::dot_batch(rows.data(), n, dims, q.data(), scores.data());
      for (std::size_t r = 0; r < n; ++r) {
        EXPECT_EQ(scores[r], simd::dot(rows.data() + r * dims, q.data(), dims))
            << "n=" << n << " dims=" << dims << " r=" << r;
      }
    }
  }
}

TEST(SimdFloat, DotTopkScanOffersEveryRowWithBatchScores) {
  Rng rng(5);
  const std::size_t n = 300;  // crosses the 128-row scan block twice
  const std::size_t dims = 17;
  const auto rows = random_vec(n * dims, rng);
  const auto q = random_vec(dims, rng);
  std::vector<float> expect(n, 0.0f);
  simd::dot_batch(rows.data(), n, dims, q.data(), expect.data());

  std::size_t offered = 0;
  simd::dot_topk_scan(rows.data(), n, dims, q.data(),
                      [&](std::size_t r, float s) {
                        EXPECT_EQ(r, offered);  // row order
                        EXPECT_EQ(s, expect[r]);
                        ++offered;
                      });
  EXPECT_EQ(offered, n);
}

TEST(SimdFloat, PropagatesNanAndHandlesDenormals) {
  // NaN anywhere in the active range must surface in the dot result on
  // every ISA (vector min/max tricks can silently drop NaN; plain
  // FMA accumulation must not).
  for (std::size_t n : {1u, 8u, 9u, 33u}) {
    for (std::size_t pos : {std::size_t{0}, n - 1}) {
      std::vector<float> x(n, 1.0f);
      std::vector<float> y(n, 2.0f);
      x[pos] = std::numeric_limits<float>::quiet_NaN();
      EXPECT_TRUE(std::isnan(simd::dot(x.data(), y.data(), n)))
          << "n=" << n << " pos=" << pos;
    }
  }

  // Denormal inputs: products flush toward zero identically in scalar
  // and vector paths under the default FP environment.
  const float denorm = std::numeric_limits<float>::denorm_min();
  std::vector<float> x(16, denorm);
  std::vector<float> y(16, 2.0f);
  const float got = simd::dot(x.data(), y.data(), 16);
  const float ref = simd::scalar::dot(x.data(), y.data(), 16);
  EXPECT_EQ(got, ref);
}

TEST(SimdInt8, DotIsBitExactAgainstScalarEverywhere) {
  Rng rng(6);
  for (std::size_t n : kLengths) {
    for (std::size_t off : {0u, 1u, 5u}) {
      std::vector<std::int8_t> x(n + off);
      std::vector<std::int8_t> y(n + off);
      for (auto& v : x) {
        v = static_cast<std::int8_t>(
            static_cast<int>(rng.bounded(255)) - 127);
      }
      for (auto& v : y) {
        v = static_cast<std::int8_t>(
            static_cast<int>(rng.bounded(255)) - 127);
      }
      EXPECT_EQ(simd::dot_i8(x.data() + off, y.data() + off, n),
                simd::scalar::dot_i8(x.data() + off, y.data() + off, n))
          << "n=" << n << " off=" << off;
    }
  }

  // Saturation-adjacent extremes: +-127 everywhere, odd length.
  std::vector<std::int8_t> lo(33, -127);
  std::vector<std::int8_t> hi(33, 127);
  EXPECT_EQ(simd::dot_i8(lo.data(), hi.data(), 33), -127 * 127 * 33);
}

TEST(SimdInt8, BatchMatchesPerRowDot) {
  Rng rng(7);
  const std::size_t n = 37;
  const std::size_t dims = 19;
  std::vector<std::int8_t> rows(n * dims);
  std::vector<std::int8_t> q(dims);
  for (auto& v : rows) {
    v = static_cast<std::int8_t>(static_cast<int>(rng.bounded(255)) - 127);
  }
  for (auto& v : q) {
    v = static_cast<std::int8_t>(static_cast<int>(rng.bounded(255)) - 127);
  }
  std::vector<std::int32_t> out(n, 0);
  simd::dot_i8_batch(rows.data(), n, dims, q.data(), out.data());
  for (std::size_t r = 0; r < n; ++r) {
    EXPECT_EQ(out[r], simd::dot_i8(rows.data() + r * dims, q.data(), dims));
  }
}

// --- quantized store --------------------------------------------------------

using serve::QuantConfig;
using serve::QuantizedRowStore;

MatrixF random_rows(std::size_t n, std::size_t dims, std::uint64_t seed) {
  MatrixF m(n, dims);
  Rng rng(seed);
  m.fill_uniform(rng, -1.0, 1.0);
  return m;
}

TEST(QuantizedRowStore, RoundTripErrorIsBoundedByHalfScale) {
  for (const QuantConfig cfg :
       {QuantConfig{0, false}, QuantConfig{16, false}, QuantConfig{0, true},
        QuantConfig{16, true}}) {
    const MatrixF rows = random_rows(50, 48, 11);
    const QuantizedRowStore store(rows, cfg);
    std::vector<float> back(48);
    for (std::size_t r = 0; r < rows.rows(); ++r) {
      store.dequantize_row(r, back);
      float max_abs = 0.0f;
      for (float v : rows.row(r)) max_abs = std::max(max_abs, std::abs(v));
      // Per-row scale bound; per-block scales are only tighter. pow2
      // rounding at most doubles the scale.
      float bound = max_abs / 127.0f / 2.0f;
      if (cfg.pow2_scales) bound *= 2.0f;
      bound += 1e-7f;
      for (std::size_t i = 0; i < rows.cols(); ++i) {
        EXPECT_LE(std::abs(back[i] - rows.row(r)[i]), bound)
            << "block=" << cfg.block << " pow2=" << cfg.pow2_scales
            << " r=" << r << " i=" << i;
      }
    }
  }
}

TEST(QuantizedRowStore, AllZeroRowsQuantizeToZero) {
  MatrixF rows(4, 8);
  rows.fill(0.0f);
  const QuantizedRowStore store(rows, {});
  std::vector<float> back(8, 1.0f);
  store.dequantize_row(2, back);
  for (float v : back) EXPECT_EQ(v, 0.0f);

  const auto qq = QuantizedRowStore::quantize_query(
      std::vector<float>(8, 0.5f), {});
  EXPECT_EQ(store.score(2, qq), 0.0f);
}

TEST(QuantizedRowStore, IsRoughlyFourTimesSmallerThanFloat) {
  const std::size_t n = 200;
  const std::size_t dims = 64;
  const QuantizedRowStore store(random_rows(n, dims, 13), {});
  const std::size_t float_bytes = n * dims * sizeof(float);
  EXPECT_LT(store.bytes(), float_bytes / 3);  // codes + 1 scale per row
}

TEST(QuantizedRowStore, ScanMatchesPerRowScoresExactly) {
  // The fused scan and score() must agree bit-for-bit: both route the
  // integer dot through the same dispatched kernel and apply the same
  // float scaling. Check per-row and per-block layouts.
  for (const std::size_t block : {std::size_t{0}, std::size_t{16}}) {
    const MatrixF rows = random_rows(300, 48, 17);
    const QuantConfig cfg{block, false};
    const QuantizedRowStore store(rows, cfg);
    Rng rng(19);
    std::vector<float> q(48);
    for (auto& v : q) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    const auto qq = QuantizedRowStore::quantize_query(q, cfg);

    std::size_t offered = 0;
    store.scan(qq, [&](std::size_t r, float s) {
      EXPECT_EQ(r, offered);
      EXPECT_EQ(s, store.score(r, qq));
      ++offered;
    });
    EXPECT_EQ(offered, store.num_rows());
  }
}

TEST(QuantizedRowStore, ApproximateScoresTrackFloatDots) {
  // Unit rows vs unit query: the int8 approximation must stay within ~2%
  // absolute of the float dot (the margin the re-rank stage absorbs).
  MatrixF rows = random_rows(100, 32, 23);
  serve::l2_normalize_rows(rows);
  const QuantizedRowStore store(rows, {});
  Rng rng(29);
  std::vector<float> q(32);
  for (auto& v : q) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  serve::l2_normalize(q);
  const auto qq = QuantizedRowStore::quantize_query(q, {});
  for (std::size_t r = 0; r < rows.rows(); ++r) {
    const float exact = simd::dot(rows.row(r).data(), q.data(), 32);
    EXPECT_NEAR(store.score(r, qq), exact, 0.02f) << "r=" << r;
  }
}

TEST(QuantizedQueryEngine, HoldsRecallAgainstExactFloatScan) {
  using namespace serve;
  const std::size_t n = 2000;
  const std::size_t dims = 32;
  const std::size_t k = 10;
  auto store = std::make_shared<EmbeddingStore>();
  store->publish(random_rows(n, dims, 37));

  const QueryEngine exact(store->current());

  for (const auto kind :
       {IndexConfig::Kind::kBruteForce, IndexConfig::Kind::kIvf}) {
    IndexConfig cfg;
    cfg.kind = kind;
    cfg.nprobe = 12;
    cfg.quant = QuantMode::kInt8;
    cfg.quant_rerank = 4;
    const QueryEngine quant(store->current(), cfg);

    // IVF prunes cells on top of quantization; compare against the
    // float engine of the same kind so the recall measured is the
    // quantization loss alone.
    const QueryEngine float_same_kind(
        store->current(), IndexConfig{kind, 0, 12});

    double recall_sum = 0.0;
    const NodeId probes[] = {1, 42, 500, 999, 1500, 1999};
    for (NodeId u : probes) {
      const auto expect = float_same_kind.topk(u, k);
      const auto got = quant.topk(u, k);
      recall_sum += recall_at_k(expect, got);
    }
    EXPECT_GE(recall_sum / 6.0, 0.95) << "kind=" << static_cast<int>(kind);
  }

  // Dot similarity bypasses quantization (cosine-only contract): the
  // results must be bit-identical to the exact engine's.
  IndexConfig bf_quant;
  bf_quant.quant = QuantMode::kInt8;
  const QueryEngine quant_bf(store->current(), bf_quant);
  const auto expect = exact.topk(7, k, Similarity::kDot);
  const auto got = quant_bf.topk(7, k, Similarity::kDot);
  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(got[i].node, expect[i].node);
    EXPECT_EQ(got[i].score, expect[i].score);
  }
}

}  // namespace
}  // namespace seqge
