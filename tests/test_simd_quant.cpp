// SIMD dispatch layer + int8 quantized store tests.
//
// The float equivalence tests compare the dispatched kernels against
// the scalar reference (simd::scalar::) on whatever ISA this build
// selects: exhaustive over lengths that exercise every vector-width
// remainder, over unaligned starting offsets, and over NaN/denormal
// payloads. Vector accumulation reorders float sums, so float checks
// use tight relative tolerances — except where the contract is exact:
// dot_batch and dot_topk_scan must match per-row dot() calls
// bit-identically on the same ISA, and the int8 kernels are integer
// arithmetic, bit-exact across every implementation.
//
// The quantized-store tests pin the quantization contract: round-trip
// error bounded by scale/2 per element, ~4x size, deterministic scans,
// and recall@10 >= 0.95 for the int8 QueryEngine path vs. the exact
// float engine.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "linalg/simd.hpp"
#include "serve/embedding_store.hpp"
#include "serve/query_engine.hpp"
#include "serve/quantized_store.hpp"
#include "util/rng.hpp"

namespace seqge {
namespace {

std::vector<float> random_vec(std::size_t n, Rng& rng, double lo = -1.0,
                              double hi = 1.0) {
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.uniform(lo, hi));
  return v;
}

// Lengths covering every remainder of the widest vector step (8 for
// AVX2 floats, 16 for int8) plus zero and large-ish sizes.
const std::size_t kLengths[] = {0,  1,  2,  3,  4,  5,  7,  8,  9,  15,
                                16, 17, 23, 31, 32, 33, 63, 64, 100, 257};

TEST(SimdDispatch, ReportsAConsistentIsa) {
  const simd::Isa isa = simd::active_isa();
  EXPECT_EQ(isa, simd::active_isa());  // fixed for process lifetime
  const std::string name = simd::isa_name();
  EXPECT_TRUE(name == "scalar" || name == "avx2" || name == "neon");
#ifdef SEQGE_DISABLE_SIMD
  EXPECT_EQ(isa, simd::Isa::kScalar);
#endif
}

TEST(SimdFloat, DotMatchesScalarAcrossLengthsAndOffsets) {
  Rng rng(1);
  for (std::size_t n : kLengths) {
    for (std::size_t off : {0u, 1u, 3u}) {
      const auto x = random_vec(n + off, rng);
      const auto y = random_vec(n + off, rng);
      const float got = simd::dot(x.data() + off, y.data() + off, n);
      const float ref = simd::scalar::dot(x.data() + off, y.data() + off, n);
      // Vector lanes reorder the sum; error stays within a few ulps of
      // the term magnitudes.
      EXPECT_NEAR(got, ref, 1e-4f * (static_cast<float>(n) + 1.0f))
          << "n=" << n << " off=" << off;
    }
  }
}

TEST(SimdFloat, AxpyAndScaleMatchScalarExactly) {
  // axpy/scale are elementwise — no cross-lane reassociation — so the
  // only float difference FMA contraction could introduce is in
  // a * x[i] + y[i]. GCC contracts both paths identically for the
  // scalar tail; accept 1-ulp differences on the vector body.
  Rng rng(2);
  for (std::size_t n : kLengths) {
    const auto x = random_vec(n, rng);
    const float a = static_cast<float>(rng.uniform(-2.0, 2.0));

    auto y_got = random_vec(n, rng);
    auto y_ref = y_got;
    simd::axpy(a, x.data(), y_got.data(), n);
    simd::scalar::axpy(a, x.data(), y_ref.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(y_got[i], y_ref[i], 1e-6f) << "axpy n=" << n << " i=" << i;
    }

    auto s_got = x;
    auto s_ref = x;
    simd::scale(a, s_got.data(), n);
    simd::scalar::scale(a, s_ref.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      // A pure multiply rounds once on every path: bit-identical.
      EXPECT_EQ(s_got[i], s_ref[i]) << "scale n=" << n << " i=" << i;
    }
  }
}

TEST(SimdFloat, L2NormKeepsDoublePrecisionAccumulation) {
  Rng rng(3);
  for (std::size_t n : kLengths) {
    const auto x = random_vec(n, rng);
    const double got = simd::l2_norm(x.data(), n);
    const double ref = simd::scalar::l2_norm(x.data(), n);
    // Every ISA widens lanes to double before accumulating, so the only
    // difference is double-sum ordering: near-ulp agreement.
    EXPECT_NEAR(got, ref, 1e-12 * (ref + 1.0)) << "n=" << n;
  }
}

TEST(SimdFloat, DotBatchIsBitIdenticalToPerRowDot) {
  // The canonical per-row accumulation order contract: whatever
  // cross-row blocking dot_batch uses, each row's score must equal a
  // 1-row dot() call bit-for-bit. Cover every remainder of the 4-row
  // blocking and odd dims.
  Rng rng(4);
  for (std::size_t n : {0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u, 13u, 130u}) {
    for (std::size_t dims : {1u, 7u, 8u, 17u, 96u}) {
      const auto rows = random_vec(n * dims, rng);
      const auto q = random_vec(dims, rng);
      std::vector<float> scores(n, 0.0f);
      simd::dot_batch(rows.data(), n, dims, q.data(), scores.data());
      for (std::size_t r = 0; r < n; ++r) {
        EXPECT_EQ(scores[r], simd::dot(rows.data() + r * dims, q.data(), dims))
            << "n=" << n << " dims=" << dims << " r=" << r;
      }
    }
  }
}

TEST(SimdFloat, DotTopkScanOffersEveryRowWithBatchScores) {
  Rng rng(5);
  const std::size_t n = 300;  // crosses the 128-row scan block twice
  const std::size_t dims = 17;
  const auto rows = random_vec(n * dims, rng);
  const auto q = random_vec(dims, rng);
  std::vector<float> expect(n, 0.0f);
  simd::dot_batch(rows.data(), n, dims, q.data(), expect.data());

  std::size_t offered = 0;
  simd::dot_topk_scan(rows.data(), n, dims, q.data(),
                      [&](std::size_t r, float s) {
                        EXPECT_EQ(r, offered);  // row order
                        EXPECT_EQ(s, expect[r]);
                        ++offered;
                      });
  EXPECT_EQ(offered, n);
}

// --- fused training kernels (PR 9) -----------------------------------------
//
// The contract for every kernel below: bit-identical to the per-row
// composition of the dispatched dot()/axpy() it replaced, on the same
// ISA. That composition IS the pre-fusion training code, so these
// tests are the proof that fusing changed zero trained bits.

const std::size_t kTrainDims[] = {0, 1, 2, 3, 5, 7, 8, 9, 15, 16, 17,
                                  23, 31, 32, 33, 63, 64, 95, 96, 97};

TEST(SimdTrainKernels, MatvecTransposedMatchesAxpyCompositionExactly) {
  Rng rng(41);
  for (std::size_t off : {0u, 1u, 3u}) {
    for (std::size_t dims : kTrainDims) {
      for (std::size_t rows : {1u, 3u, 4u, 5u, 13u}) {
        const auto m = random_vec(rows * dims + off, rng);
        const auto v = random_vec(rows + off, rng);
        std::vector<float> got(dims + off, -1.0f), ref(dims + off, -1.0f);
        simd::matvec_t(m.data() + off, rows, dims, v.data() + off,
                       got.data() + off);
        for (std::size_t c = 0; c < dims; ++c) ref[off + c] = 0.0f;
        for (std::size_t r = 0; r < rows; ++r) {
          simd::axpy(v[off + r], m.data() + off + r * dims,
                     ref.data() + off, dims);
        }
        for (std::size_t c = 0; c < dims; ++c) {
          EXPECT_EQ(got[off + c], ref[off + c])
              << "rows=" << rows << " dims=" << dims << " off=" << off;
        }
      }
    }
  }
}

TEST(SimdTrainKernels, Rank1UpdateMatchesAxpyCompositionExactly) {
  Rng rng(42);
  for (std::size_t off : {0u, 1u, 3u}) {
    for (std::size_t dims : kTrainDims) {
      for (std::size_t rows : {1u, 3u, 4u, 5u, 13u}) {
        const auto base = random_vec(rows * dims + off, rng);
        const auto x = random_vec(rows + off, rng);
        const auto y = random_vec(dims + off, rng);
        const float a = static_cast<float>(rng.uniform(-2.0, 2.0));
        auto got = base;
        auto ref = base;
        simd::rank1_update(got.data() + off, rows, dims, a, x.data() + off,
                           y.data() + off);
        for (std::size_t r = 0; r < rows; ++r) {
          simd::axpy(a * x[off + r], y.data() + off,
                     ref.data() + off + r * dims, dims);
        }
        for (std::size_t i = 0; i < got.size(); ++i) {
          EXPECT_EQ(got[i], ref[i])
              << "rows=" << rows << " dims=" << dims << " off=" << off;
        }
      }
    }
  }
}

TEST(SimdTrainKernels, DotBatchGatherMatchesPerRowDotExactly) {
  Rng rng(43);
  for (std::size_t dims : kTrainDims) {
    for (std::size_t n : {1u, 2u, 3u, 4u, 5u, 11u}) {
      const auto pool = random_vec((n + 2) * (dims + 1) + 7, rng);
      const auto q = random_vec(dims + 1, rng);
      // Gather rows at non-uniform, unaligned strides.
      std::vector<const float*> rows(n);
      for (std::size_t i = 0; i < n; ++i) {
        rows[i] = pool.data() + i * (dims + 1) + (i % 3);
      }
      std::vector<float> scores(n, -1.0f);
      simd::dot_batch_gather(rows.data(), n, dims, q.data(), scores.data());
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(scores[i], simd::dot(rows[i], q.data(), dims))
            << "n=" << n << " dims=" << dims << " i=" << i;
      }
    }
  }
}

TEST(SimdTrainKernels, AxpyGatherMatchesPerRowAxpyExactly) {
  Rng rng(44);
  for (std::size_t dims : kTrainDims) {
    for (std::size_t n : {1u, 2u, 3u, 4u, 5u, 11u}) {
      const auto base = random_vec(n * (dims + 1) + 3, rng);
      const auto x = random_vec(dims + 1, rng);
      const auto coeffs = random_vec(n, rng);
      auto got = base;
      auto ref = base;
      std::vector<float*> rg(n), rr(n);
      for (std::size_t i = 0; i < n; ++i) {
        rg[i] = got.data() + i * (dims + 1) + (i % 2);
        rr[i] = ref.data() + i * (dims + 1) + (i % 2);
      }
      simd::axpy_gather(rg.data(), coeffs.data(), x.data(), n, dims);
      for (std::size_t i = 0; i < n; ++i) {
        simd::axpy(coeffs[i], x.data(), rr[i], dims);
      }
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i], ref[i]) << "n=" << n << " dims=" << dims;
      }
    }
  }
}

TEST(SimdTrainKernels, SgnsApplyMatchesUnfusedCompositionExactly) {
  Rng rng(45);
  for (std::size_t dims : kTrainDims) {
    for (std::size_t n : {1u, 2u, 3u, 4u, 5u, 11u}) {
      const auto base = random_vec(n * dims + 1, rng);
      const auto g = random_vec(n, rng);
      const auto h0 = random_vec(dims, rng);
      const float neg_lr = static_cast<float>(rng.uniform(-0.1, -0.001));
      auto rows_got = base;
      auto rows_ref = base;
      auto h_got = h0;
      auto h_ref = h0;
      std::vector<float*> rg(n), rr(n);
      for (std::size_t i = 0; i < n; ++i) {
        rg[i] = rows_got.data() + i * dims;
        rr[i] = rows_ref.data() + i * dims;
      }
      std::vector<float> hgrad(dims, 99.0f);  // scratch: contents ignored
      simd::sgns_apply(h_got.data(), hgrad.data(), rg.data(), g.data(),
                       neg_lr, n, dims);
      // The pre-fusion sequence: accumulate h_grad over samples, update
      // each sample row against the pre-update h, apply h_grad once.
      std::vector<float> hgrad_ref(dims, 0.0f);
      for (std::size_t i = 0; i < n; ++i) {
        simd::axpy(g[i], rr[i], hgrad_ref.data(), dims);
        simd::axpy(neg_lr * g[i], h_ref.data(), rr[i], dims);
      }
      simd::axpy(neg_lr, hgrad_ref.data(), h_ref.data(), dims);
      for (std::size_t i = 0; i < rows_got.size(); ++i) {
        EXPECT_EQ(rows_got[i], rows_ref[i]) << "n=" << n << " dims=" << dims;
      }
      for (std::size_t d = 0; d < dims; ++d) {
        EXPECT_EQ(h_got[d], h_ref[d]) << "n=" << n << " dims=" << dims;
      }
    }
  }
}

TEST(SimdTrainKernels, PropagateNanAndAgreeOnDenormals) {
  // NaN in the matrix must surface in matvec_t's output and in gathered
  // scores; denormal inputs must round identically to the composition.
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float denorm = std::numeric_limits<float>::denorm_min();
  for (std::size_t dims : {1u, 8u, 9u, 33u}) {
    std::vector<float> m(3 * dims, 1.0f);
    std::vector<float> v(3, 2.0f);
    m[dims + dims / 2] = nan;  // middle of row 1
    std::vector<float> out(dims, 0.0f);
    simd::matvec_t(m.data(), 3, dims, v.data(), out.data());
    EXPECT_TRUE(std::isnan(out[dims / 2])) << "dims=" << dims;

    std::vector<float> dm(4 * dims, denorm);
    std::vector<float> q(dims, 2.0f);
    const float* rows[] = {dm.data(), dm.data() + dims, dm.data() + 2 * dims,
                           dm.data() + 3 * dims};
    std::vector<float> scores(4, -1.0f);
    simd::dot_batch_gather(rows, 4, dims, q.data(), scores.data());
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_EQ(scores[i], simd::dot(rows[i], q.data(), dims));
    }
  }
}

TEST(SimdFloat, PropagatesNanAndHandlesDenormals) {
  // NaN anywhere in the active range must surface in the dot result on
  // every ISA (vector min/max tricks can silently drop NaN; plain
  // FMA accumulation must not).
  for (std::size_t n : {1u, 8u, 9u, 33u}) {
    for (std::size_t pos : {std::size_t{0}, n - 1}) {
      std::vector<float> x(n, 1.0f);
      std::vector<float> y(n, 2.0f);
      x[pos] = std::numeric_limits<float>::quiet_NaN();
      EXPECT_TRUE(std::isnan(simd::dot(x.data(), y.data(), n)))
          << "n=" << n << " pos=" << pos;
    }
  }

  // Denormal inputs: products flush toward zero identically in scalar
  // and vector paths under the default FP environment.
  const float denorm = std::numeric_limits<float>::denorm_min();
  std::vector<float> x(16, denorm);
  std::vector<float> y(16, 2.0f);
  const float got = simd::dot(x.data(), y.data(), 16);
  const float ref = simd::scalar::dot(x.data(), y.data(), 16);
  EXPECT_EQ(got, ref);
}

TEST(SimdInt8, DotIsBitExactAgainstScalarEverywhere) {
  Rng rng(6);
  for (std::size_t n : kLengths) {
    for (std::size_t off : {0u, 1u, 5u}) {
      std::vector<std::int8_t> x(n + off);
      std::vector<std::int8_t> y(n + off);
      for (auto& v : x) {
        v = static_cast<std::int8_t>(
            static_cast<int>(rng.bounded(255)) - 127);
      }
      for (auto& v : y) {
        v = static_cast<std::int8_t>(
            static_cast<int>(rng.bounded(255)) - 127);
      }
      EXPECT_EQ(simd::dot_i8(x.data() + off, y.data() + off, n),
                simd::scalar::dot_i8(x.data() + off, y.data() + off, n))
          << "n=" << n << " off=" << off;
    }
  }

  // Saturation-adjacent extremes: +-127 everywhere, odd length.
  std::vector<std::int8_t> lo(33, -127);
  std::vector<std::int8_t> hi(33, 127);
  EXPECT_EQ(simd::dot_i8(lo.data(), hi.data(), 33), -127 * 127 * 33);
}

TEST(SimdInt8, BatchMatchesPerRowDot) {
  Rng rng(7);
  const std::size_t n = 37;
  const std::size_t dims = 19;
  std::vector<std::int8_t> rows(n * dims);
  std::vector<std::int8_t> q(dims);
  for (auto& v : rows) {
    v = static_cast<std::int8_t>(static_cast<int>(rng.bounded(255)) - 127);
  }
  for (auto& v : q) {
    v = static_cast<std::int8_t>(static_cast<int>(rng.bounded(255)) - 127);
  }
  std::vector<std::int32_t> out(n, 0);
  simd::dot_i8_batch(rows.data(), n, dims, q.data(), out.data());
  for (std::size_t r = 0; r < n; ++r) {
    EXPECT_EQ(out[r], simd::dot_i8(rows.data() + r * dims, q.data(), dims));
  }
}

// --- quantized store --------------------------------------------------------

using serve::QuantConfig;
using serve::QuantizedRowStore;

MatrixF random_rows(std::size_t n, std::size_t dims, std::uint64_t seed) {
  MatrixF m(n, dims);
  Rng rng(seed);
  m.fill_uniform(rng, -1.0, 1.0);
  return m;
}

TEST(QuantizedRowStore, RoundTripErrorIsBoundedByHalfScale) {
  for (const QuantConfig cfg :
       {QuantConfig{0, false}, QuantConfig{16, false}, QuantConfig{0, true},
        QuantConfig{16, true}}) {
    const MatrixF rows = random_rows(50, 48, 11);
    const QuantizedRowStore store(rows, cfg);
    std::vector<float> back(48);
    for (std::size_t r = 0; r < rows.rows(); ++r) {
      store.dequantize_row(r, back);
      float max_abs = 0.0f;
      for (float v : rows.row(r)) max_abs = std::max(max_abs, std::abs(v));
      // Per-row scale bound; per-block scales are only tighter. pow2
      // rounding at most doubles the scale.
      float bound = max_abs / 127.0f / 2.0f;
      if (cfg.pow2_scales) bound *= 2.0f;
      bound += 1e-7f;
      for (std::size_t i = 0; i < rows.cols(); ++i) {
        EXPECT_LE(std::abs(back[i] - rows.row(r)[i]), bound)
            << "block=" << cfg.block << " pow2=" << cfg.pow2_scales
            << " r=" << r << " i=" << i;
      }
    }
  }
}

TEST(QuantizedRowStore, AllZeroRowsQuantizeToZero) {
  MatrixF rows(4, 8);
  rows.fill(0.0f);
  const QuantizedRowStore store(rows, {});
  std::vector<float> back(8, 1.0f);
  store.dequantize_row(2, back);
  for (float v : back) EXPECT_EQ(v, 0.0f);

  const auto qq = QuantizedRowStore::quantize_query(
      std::vector<float>(8, 0.5f), {});
  EXPECT_EQ(store.score(2, qq), 0.0f);
}

TEST(QuantizedRowStore, IsRoughlyFourTimesSmallerThanFloat) {
  const std::size_t n = 200;
  const std::size_t dims = 64;
  const QuantizedRowStore store(random_rows(n, dims, 13), {});
  const std::size_t float_bytes = n * dims * sizeof(float);
  EXPECT_LT(store.bytes(), float_bytes / 3);  // codes + 1 scale per row
}

TEST(QuantizedRowStore, ScanMatchesPerRowScoresExactly) {
  // The fused scan and score() must agree bit-for-bit: both route the
  // integer dot through the same dispatched kernel and apply the same
  // float scaling. Check per-row and per-block layouts.
  for (const std::size_t block : {std::size_t{0}, std::size_t{16}}) {
    const MatrixF rows = random_rows(300, 48, 17);
    const QuantConfig cfg{block, false};
    const QuantizedRowStore store(rows, cfg);
    Rng rng(19);
    std::vector<float> q(48);
    for (auto& v : q) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    const auto qq = QuantizedRowStore::quantize_query(q, cfg);

    std::size_t offered = 0;
    store.scan(qq, [&](std::size_t r, float s) {
      EXPECT_EQ(r, offered);
      EXPECT_EQ(s, store.score(r, qq));
      ++offered;
    });
    EXPECT_EQ(offered, store.num_rows());
  }
}

TEST(QuantizedRowStore, ApproximateScoresTrackFloatDots) {
  // Unit rows vs unit query: the int8 approximation must stay within ~2%
  // absolute of the float dot (the margin the re-rank stage absorbs).
  MatrixF rows = random_rows(100, 32, 23);
  serve::l2_normalize_rows(rows);
  const QuantizedRowStore store(rows, {});
  Rng rng(29);
  std::vector<float> q(32);
  for (auto& v : q) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  serve::l2_normalize(q);
  const auto qq = QuantizedRowStore::quantize_query(q, {});
  for (std::size_t r = 0; r < rows.rows(); ++r) {
    const float exact = simd::dot(rows.row(r).data(), q.data(), 32);
    EXPECT_NEAR(store.score(r, qq), exact, 0.02f) << "r=" << r;
  }
}

// --- block floating point ---------------------------------------------------

TEST(QuantizedRowStoreBfp, RoundTripErrorBoundedByHalfStep) {
  // BFP scale is 2^ceil(log2(max|x|/127)) — at most 2x the exact
  // symmetric scale, so the per-element error bound is one exact step.
  for (const QuantConfig cfg :
       {QuantConfig{0, false, true}, QuantConfig{16, false, true}}) {
    const MatrixF rows = random_rows(50, 48, 11);
    const QuantizedRowStore store(rows, cfg);
    std::vector<float> back(48);
    for (std::size_t r = 0; r < rows.rows(); ++r) {
      store.dequantize_row(r, back);
      float max_abs = 0.0f;
      for (float v : rows.row(r)) max_abs = std::max(max_abs, std::abs(v));
      const float bound = max_abs / 127.0f + 1e-7f;
      for (std::size_t i = 0; i < rows.cols(); ++i) {
        EXPECT_LE(std::abs(back[i] - rows.row(r)[i]), bound)
            << "block=" << cfg.block << " r=" << r << " i=" << i;
      }
    }
  }
}

TEST(QuantizedRowStoreBfp, MatchesPow2ScaleQuantizationExactly) {
  // bfp stores the same power-of-two scale as pow2_scales, just as an
  // int16 exponent: identical codes, identical dequantized values,
  // smaller metadata.
  const MatrixF rows = random_rows(80, 33, 19);
  const QuantizedRowStore pow2(rows, {0, true, false});
  const QuantizedRowStore bfp(rows, {0, false, true});
  EXPECT_LT(bfp.bytes(), pow2.bytes());
  std::vector<float> a(33), b(33);
  for (std::size_t r = 0; r < rows.rows(); ++r) {
    pow2.dequantize_row(r, a);
    bfp.dequantize_row(r, b);
    for (std::size_t i = 0; i < 33; ++i) {
      EXPECT_EQ(a[i], b[i]) << "r=" << r << " i=" << i;
    }
  }
}

TEST(QuantizedRowStoreBfp, ScanMatchesPerRowScoresExactly) {
  for (const std::size_t block : {std::size_t{0}, std::size_t{16}}) {
    const MatrixF rows = random_rows(300, 48, 17);
    const QuantConfig cfg{block, false, true};
    const QuantizedRowStore store(rows, cfg);
    Rng rng(19);
    std::vector<float> q(48);
    for (auto& v : q) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    const auto qq = QuantizedRowStore::quantize_query(q, cfg);
    ASSERT_EQ(qq.exps.size(), block == 0 ? 1u : 3u);
    ASSERT_TRUE(qq.scales.empty());

    std::size_t offered = 0;
    store.scan(qq, [&](std::size_t r, float s) {
      EXPECT_EQ(r, offered);
      EXPECT_EQ(s, store.score(r, qq));
      ++offered;
    });
    EXPECT_EQ(offered, store.num_rows());
  }
}

TEST(QuantizedRowStoreBfp, AllZeroRowsAndDenormalsAreSafe) {
  MatrixF rows(4, 8);
  rows.fill(0.0f);
  // Row 2: true float denormals. The shared exponent is ~-149; a
  // float-typed 2^|e| would overflow to inf and corrupt the codes —
  // the ldexp-based path must round-trip them exactly (the values are
  // powers of two).
  const float denorm = std::numeric_limits<float>::denorm_min() * 64;
  // Row 3: tiny but with a float-representable self-dot, to check
  // deeply negative exponents still score (exponent ~-73).
  const float tiny = 1e-20f;
  for (std::size_t i = 0; i < 8; ++i) {
    rows(2, i) = (i % 2 ? denorm : -denorm);
    rows(3, i) = (i % 2 ? tiny : -tiny);
  }
  const QuantConfig cfg{0, false, true};
  const QuantizedRowStore store(rows, cfg);
  std::vector<float> back(8, 1.0f);
  store.dequantize_row(1, back);
  for (float v : back) EXPECT_EQ(v, 0.0f);
  store.dequantize_row(2, back);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(back[i], rows(2, i)) << i;  // exact: powers of two
  }
  const auto qz = QuantizedRowStore::quantize_query(
      std::vector<float>(8, 0.0f), cfg);
  EXPECT_EQ(store.score(3, qz), 0.0f);
  const auto qd = QuantizedRowStore::quantize_query(
      std::vector<float>(rows.row(3).begin(), rows.row(3).end()), cfg);
  EXPECT_GT(store.score(3, qd), 0.0f);  // self-similarity positive
  EXPECT_EQ(store.score(1, qd), 0.0f);  // zero row scores zero
}

TEST(QuantizedRowStoreBfp, ApproximateScoresTrackFloatDots) {
  MatrixF rows = random_rows(100, 32, 23);
  serve::l2_normalize_rows(rows);
  const QuantizedRowStore store(rows, {0, false, true});
  Rng rng(29);
  std::vector<float> q(32);
  for (auto& v : q) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  serve::l2_normalize(q);
  const auto qq = QuantizedRowStore::quantize_query(q, {0, false, true});
  for (std::size_t r = 0; r < rows.rows(); ++r) {
    const float exact = simd::dot(rows.row(r).data(), q.data(), 32);
    // pow2 round-up costs up to 1 bit on each side vs plain int8's 2%.
    EXPECT_NEAR(store.score(r, qq), exact, 0.05f) << "r=" << r;
  }
}

TEST(QuantizedQueryEngineBfp, HoldsRecallAgainstExactFloatScan) {
  using namespace serve;
  const std::size_t n = 2000;
  const std::size_t dims = 32;
  const std::size_t k = 10;
  auto store = std::make_shared<EmbeddingStore>();
  store->publish(random_rows(n, dims, 37));

  for (const auto kind :
       {IndexConfig::Kind::kBruteForce, IndexConfig::Kind::kIvf}) {
    IndexConfig cfg;
    cfg.kind = kind;
    cfg.nprobe = 12;
    cfg.quant = QuantMode::kBfp;
    cfg.quant_rerank = 4;
    const QueryEngine quant(store->current(), cfg);
    const QueryEngine float_same_kind(
        store->current(), IndexConfig{kind, 0, 12});

    double recall_sum = 0.0;
    const NodeId probes[] = {1, 42, 500, 999, 1500, 1999};
    for (NodeId u : probes) {
      recall_sum += recall_at_k(float_same_kind.topk(u, k), quant.topk(u, k));
    }
    EXPECT_GE(recall_sum / 6.0, 0.95) << "kind=" << static_cast<int>(kind);
  }
}

TEST(QuantizedQueryEngine, HoldsRecallAgainstExactFloatScan) {
  using namespace serve;
  const std::size_t n = 2000;
  const std::size_t dims = 32;
  const std::size_t k = 10;
  auto store = std::make_shared<EmbeddingStore>();
  store->publish(random_rows(n, dims, 37));

  const QueryEngine exact(store->current());

  for (const auto kind :
       {IndexConfig::Kind::kBruteForce, IndexConfig::Kind::kIvf}) {
    IndexConfig cfg;
    cfg.kind = kind;
    cfg.nprobe = 12;
    cfg.quant = QuantMode::kInt8;
    cfg.quant_rerank = 4;
    const QueryEngine quant(store->current(), cfg);

    // IVF prunes cells on top of quantization; compare against the
    // float engine of the same kind so the recall measured is the
    // quantization loss alone.
    const QueryEngine float_same_kind(
        store->current(), IndexConfig{kind, 0, 12});

    double recall_sum = 0.0;
    const NodeId probes[] = {1, 42, 500, 999, 1500, 1999};
    for (NodeId u : probes) {
      const auto expect = float_same_kind.topk(u, k);
      const auto got = quant.topk(u, k);
      recall_sum += recall_at_k(expect, got);
    }
    EXPECT_GE(recall_sum / 6.0, 0.95) << "kind=" << static_cast<int>(kind);
  }

  // Dot similarity bypasses quantization (cosine-only contract): the
  // results must be bit-identical to the exact engine's.
  IndexConfig bf_quant;
  bf_quant.quant = QuantMode::kInt8;
  const QueryEngine quant_bf(store->current(), bf_quant);
  const auto expect = exact.topk(7, k, Similarity::kDot);
  const auto got = quant_bf.topk(7, k, Similarity::kDot);
  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(got[i].node, expect[i].node);
    EXPECT_EQ(got[i].score, expect[i].score);
  }
}

}  // namespace
}  // namespace seqge
