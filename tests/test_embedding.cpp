// Tests for the three training models, the sparse delta buffer, the
// model factory, and model-size accounting.

#include <gtest/gtest.h>

#include <vector>

#include "embedding/model.hpp"
#include "embedding/model_size.hpp"
#include "embedding/oselm_dataflow.hpp"
#include "embedding/oselm_skipgram.hpp"
#include "embedding/skipgram_sgd.hpp"
#include "embedding/sparse_delta.hpp"
#include "graph/generators.hpp"
#include "linalg/kernels.hpp"
#include "sampling/negative_sampler.hpp"
#include "util/rng.hpp"

namespace seqge {
namespace {

TEST(SkipGramSGD, InitDistribution) {
  Rng rng(1);
  SkipGramSGD m(50, 16, rng);
  // Input rows in U(-0.5/16, 0.5/16); output rows zero.
  for (float v : m.embeddings().flat()) {
    EXPECT_LE(std::abs(v), 0.5f / 16 + 1e-6f);
  }
  for (float v : m.output_weights().flat()) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(SkipGramSGD, PositivePairScoreRises) {
  Rng rng(2);
  SkipGramSGD m(10, 8, rng);
  const std::vector<NodeId> negs = {5, 6, 7};
  auto score = [&] {
    return sigmoid(dot<float>(m.embedding(0), m.output_weights().row(1)));
  };
  const double before = score();
  for (int i = 0; i < 50; ++i) m.train_pair(0, 1, negs, 0.1);
  EXPECT_GT(score(), before);
  EXPECT_GT(score(), 0.9);
}

TEST(SkipGramSGD, NegativeScoreFalls) {
  Rng rng(3);
  SkipGramSGD m(10, 8, rng);
  const std::vector<NodeId> negs = {4};
  for (int i = 0; i < 100; ++i) m.train_pair(0, 1, negs, 0.1);
  const double neg_score =
      sigmoid(dot<float>(m.embedding(0), m.output_weights().row(4)));
  EXPECT_LT(neg_score, 0.2);
}

TEST(SkipGramSGD, LossDecreasesOverTraining) {
  Rng rng(4);
  SkipGramSGD m(20, 8, rng);
  std::vector<NodeId> walk = {0, 1, 2, 3, 0, 1, 2, 3};
  const std::vector<std::uint64_t> counts(20, 1);
  NegativeSampler sampler(counts);
  double first = 0, last = 0;
  for (int epoch = 0; epoch < 30; ++epoch) {
    Rng step_rng(100 + epoch);
    const double loss = m.train_walk(walk, 4, sampler, 3,
                                     NegativeMode::kPerContext, step_rng,
                                     0.05);
    if (epoch == 0) first = loss;
    last = loss;
  }
  EXPECT_LT(last, first);
}

TEST(SkipGramSGD, NegativeEqualToPositiveIsSkipped) {
  Rng rng(5);
  SkipGramSGD m(5, 4, rng);
  // All negatives equal the positive: only the positive update may run.
  // (Convergence is slow because the input row starts tiny and only the
  // output row moves until h_grad becomes nonzero.)
  const std::vector<NodeId> negs = {1, 1, 1};
  for (int i = 0; i < 2000; ++i) m.train_pair(0, 1, negs, 0.5);
  const double pos_score =
      sigmoid(dot<float>(m.embedding(0), m.output_weights().row(1)));
  EXPECT_GT(pos_score, 0.8) << "positive must not be pushed down";
}

TEST(OselmSkipGram, PositiveScoreRises) {
  Rng rng(6);
  OselmSkipGram::Options opts;
  opts.dims = 8;
  // Larger mu/p0 than the training default so the RLS converges within
  // a few dozen presentations of a single pair.
  opts.mu = 0.5;
  opts.p0 = 100.0;
  OselmSkipGram m(10, opts, rng);
  std::vector<float> h(8);
  std::vector<NodeId> walk_buf = {0, 1};
  WalkContext ctx{0, std::span<const NodeId>(walk_buf).subspan(1)};
  const std::vector<NodeId> negs = {5, 6};
  for (int i = 0; i < 40; ++i) m.train_context(ctx, negs);
  m.hidden(0, h);
  const double pos = dot<float>(h, m.beta_transposed().row(1));
  const double neg = dot<float>(h, m.beta_transposed().row(5));
  EXPECT_GT(pos, 0.5);
  EXPECT_LT(neg, pos);
}

TEST(OselmSkipGram, EmbeddingIsScaledBeta) {
  Rng rng(7);
  OselmSkipGram::Options opts;
  opts.dims = 4;
  opts.mu = 0.02;
  OselmSkipGram m(6, opts, rng);
  const MatrixF emb = m.extract_embedding();
  for (std::size_t v = 0; v < 6; ++v) {
    for (std::size_t d = 0; d < 4; ++d) {
      EXPECT_FLOAT_EQ(emb(v, d), 0.02f * m.beta_transposed()(v, d));
    }
  }
}

TEST(OselmSkipGram, AlphaModeUsesFixedRandomHidden) {
  Rng rng(8);
  OselmSkipGram::Options opts;
  opts.dims = 8;
  opts.random_alpha = true;
  OselmSkipGram m(10, opts, rng);
  std::vector<float> h1(8), h2(8);
  m.hidden(3, h1);
  // Training must not change alpha-derived hidden vectors.
  std::vector<NodeId> walk_buf = {3, 4};
  WalkContext ctx{3, std::span<const NodeId>(walk_buf).subspan(1)};
  m.train_context(ctx, {});
  m.hidden(3, h2);
  for (std::size_t d = 0; d < 8; ++d) EXPECT_FLOAT_EQ(h1[d], h2[d]);
  // And alpha-mode hidden vectors are not mu-scaled beta.
  EXPECT_GT(l2_norm<float>(h1), 0.1);
}

TEST(OselmDataflow, SingleContextWalkMatchesAlgorithm1) {
  // With exactly one context per walk, the deferred update degenerates
  // to the immediate one; Algorithms 1 and 2 must agree (up to float
  // associativity).
  Rng rng_a(9), rng_b(9);
  OselmSkipGram::Options o1;
  o1.dims = 8;
  OselmSkipGramDataflow::Options o2;
  o2.dims = 8;
  // alg1 is driven through train_context (no per-walk boundary), so
  // disable alg2's per-walk P reset to compare the pure recursions.
  o2.reset_p_per_walk = false;
  OselmSkipGram alg1(12, o1, rng_a);
  OselmSkipGramDataflow alg2(12, o2, rng_b);

  // Same RNG seed -> identical beta init.
  EXPECT_NEAR(
      max_abs_diff(alg1.beta_transposed(), alg2.beta_transposed()), 0.0,
      1e-9);

  const std::vector<NodeId> walk = {0, 1, 2, 3};  // window 4 -> 1 context
  const std::vector<NodeId> negs = {7, 8};
  for (int step = 0; step < 10; ++step) {
    std::vector<NodeId> walk_buf = walk;
    WalkContext ctx{walk_buf[0],
                    std::span<const NodeId>(walk_buf).subspan(1)};
    alg1.train_context(ctx, negs);
    alg2.train_walk(walk, 4, negs);
  }
  EXPECT_LT(max_abs_diff(alg1.beta_transposed(), alg2.beta_transposed()),
            1e-4);
  EXPECT_LT(max_abs_diff(alg1.covariance(), alg2.covariance()), 1e-4);
}

TEST(OselmDataflow, MultiContextWalkDiffersFromAlgorithm1) {
  // With many contexts per walk, the deferred update intentionally uses
  // stale weights; results must differ (this is the accuracy cost that
  // Fig. 5 measures).
  Rng rng_a(10), rng_b(10);
  OselmSkipGram::Options o1;
  o1.dims = 8;
  OselmSkipGramDataflow::Options o2;
  o2.dims = 8;
  o2.reset_p_per_walk = false;
  OselmSkipGram alg1(20, o1, rng_a);
  OselmSkipGramDataflow alg2(20, o2, rng_b);

  std::vector<NodeId> walk(12);
  Rng wrng(11);
  for (auto& v : walk) v = static_cast<NodeId>(wrng.bounded(20));
  const std::vector<NodeId> negs = {17, 18, 19};

  std::vector<NodeId> walk_buf = walk;
  for_each_context(std::span<const NodeId>(walk_buf), 4,
                   [&](const WalkContext& ctx) {
                     alg1.train_context(ctx, negs);
                   });
  alg2.train_walk(walk, 4, negs);
  EXPECT_GT(max_abs_diff(alg1.beta_transposed(), alg2.beta_transposed()),
            1e-6);
}

TEST(OselmDataflow, CommitHappensOncePerWalk) {
  Rng rng(12);
  OselmSkipGramDataflow::Options opts;
  opts.dims = 4;
  OselmSkipGramDataflow m(10, opts, rng);
  const MatrixF p_before = m.covariance();
  const std::vector<NodeId> walk = {0, 1, 2, 3, 4, 5};
  m.train_walk(walk, 3, std::vector<NodeId>{8, 9});
  // P must have changed exactly once (not per context): the diagonal
  // shrinks but stays positive.
  const MatrixF& p_after = m.covariance();
  EXPECT_GT(max_abs_diff(p_before, p_after), 0.0);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_GT(p_after(i, i), 0.0f);
}

TEST(SparseRowDelta, AccumulatesAndApplies) {
  SparseRowDelta delta(10, 3);
  auto r5 = delta.row(5);
  r5[0] = 1.0f;
  r5[2] = 2.0f;
  auto r7 = delta.row(7);
  r7[1] = -1.0f;
  // Re-fetching the same row keeps contents.
  EXPECT_FLOAT_EQ(delta.row(5)[0], 1.0f);
  EXPECT_EQ(delta.dirty().size(), 2u);

  MatrixF target(10, 3, 1.0f);
  delta.apply_to(target);
  EXPECT_FLOAT_EQ(target(5, 0), 2.0f);
  EXPECT_FLOAT_EQ(target(5, 2), 3.0f);
  EXPECT_FLOAT_EQ(target(7, 1), 0.0f);
  EXPECT_FLOAT_EQ(target(0, 0), 1.0f);  // untouched rows unchanged
  EXPECT_TRUE(delta.dirty().empty());
}

TEST(SparseRowDelta, RowsResetAfterApply) {
  SparseRowDelta delta(4, 2);
  delta.row(1)[0] = 5.0f;
  MatrixF target(4, 2, 0.0f);
  delta.apply_to(target);
  // Touching the row again must give a zeroed buffer.
  auto r = delta.row(1);
  EXPECT_FLOAT_EQ(r[0], 0.0f);
  EXPECT_FLOAT_EQ(r[1], 0.0f);
}

TEST(ModelFactory, CreatesAllKindsWithCorrectNames) {
  TrainConfig cfg;
  cfg.dims = 8;
  Rng rng(13);
  auto sgd = make_model(ModelKind::kOriginalSGD, 20, cfg, rng);
  auto alg1 = make_model(ModelKind::kOselm, 20, cfg, rng);
  auto alg2 = make_model(ModelKind::kOselmDataflow, 20, cfg, rng);
  EXPECT_EQ(sgd->name(), "original-sgd");
  EXPECT_EQ(alg1->name(), "oselm-alg1");
  EXPECT_EQ(alg2->name(), "oselm-alg2");
  for (auto* m : {sgd.get(), alg1.get(), alg2.get()}) {
    EXPECT_EQ(m->dims(), 8u);
    EXPECT_EQ(m->num_nodes(), 20u);
    const MatrixF emb = m->extract_embedding();
    EXPECT_EQ(emb.rows(), 20u);
    EXPECT_EQ(emb.cols(), 8u);
  }
  // Proposed model is smaller than the original at equal precision.
  EXPECT_LT(alg1->model_bytes(), sgd->model_bytes());
}

TEST(ModelFactory, ValidatesConfig) {
  TrainConfig cfg;
  cfg.dims = 0;
  Rng rng(14);
  EXPECT_THROW(make_model(ModelKind::kOselm, 10, cfg, rng),
               std::invalid_argument);
}

TEST(ModelSize, MatchesPaperTable5Headline) {
  // amcp at dims 96: paper reports 20.303 MB vs 5.318 MB (3.82x).
  EXPECT_NEAR(proposed_model_mb(13752, 96), 5.318, 0.001);
  EXPECT_NEAR(original_model_mb(13752, 96), 21.123, 0.001);
  EXPECT_GT(model_size_ratio(13752, 96), 3.8);
  // Cora at 32 dims: proposed ~0.35 MB.
  EXPECT_NEAR(proposed_model_mb(2708, 32), 0.351, 0.001);
}

TEST(TrainConfig, Validation) {
  TrainConfig cfg;
  EXPECT_NO_THROW(cfg.validate());
  cfg.mu = -1.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = TrainConfig{};
  cfg.negative_samples = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace seqge
