// Tests for the synthetic-dataset substrate: the DC-SBM generator, the
// Table 1 dataset twins, utility graphs, and labeled-graph I/O.

#include <gtest/gtest.h>

#include <sstream>

#include "graph/components.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/stats.hpp"
#include "util/rng.hpp"

namespace seqge {
namespace {

TEST(Dcsbm, MatchesRequestedCounts) {
  const SbmConfig cfg{.num_nodes = 500,
                      .target_edges = 2500,
                      .num_classes = 5,
                      .seed = 1};
  const LabeledGraph g = generate_dcsbm(cfg);
  EXPECT_EQ(g.graph.num_nodes(), 500u);
  // Degree-floor patching may add a few edges beyond the target.
  EXPECT_GE(g.graph.num_edges(), 2500u);
  EXPECT_LE(g.graph.num_edges(), 2600u);
  EXPECT_EQ(g.num_classes, 5u);
  EXPECT_EQ(g.labels.size(), 500u);
}

TEST(Dcsbm, EveryNodeHasDegreeAtLeastOne) {
  const LabeledGraph g = generate_dcsbm(
      {.num_nodes = 1000, .target_edges = 1500, .num_classes = 7, .seed = 2});
  const GraphStats stats = compute_stats(g.graph);
  EXPECT_GE(stats.min_degree, 1u);
}

TEST(Dcsbm, LabelsInRangeAndBalanced) {
  const LabeledGraph g = generate_dcsbm(
      {.num_nodes = 800, .target_edges = 4000, .num_classes = 8, .seed = 3});
  std::vector<std::size_t> counts(8, 0);
  for (auto label : g.labels) {
    ASSERT_LT(label, 8u);
    ++counts[label];
  }
  for (std::size_t c : counts) EXPECT_NEAR(c, 100.0, 2.0);
}

TEST(Dcsbm, AssortativeBlocksAreHomophilous) {
  const LabeledGraph g = generate_dcsbm({.num_nodes = 1000,
                                         .target_edges = 8000,
                                         .num_classes = 5,
                                         .assortativity = 12.0,
                                         .seed = 4});
  const GraphStats stats = compute_stats(g);
  // Random labeling would give homophily ~ 1/5; assortativity 12 must
  // push it far above.
  EXPECT_GT(stats.label_homophily, 0.5);
}

TEST(Dcsbm, HigherAssortativityRaisesHomophily) {
  auto homophily = [](double assort) {
    const LabeledGraph g = generate_dcsbm({.num_nodes = 600,
                                           .target_edges = 4000,
                                           .num_classes = 4,
                                           .assortativity = assort,
                                           .seed = 5});
    return compute_stats(g).label_homophily;
  };
  EXPECT_GT(homophily(20.0), homophily(2.0));
}

TEST(Dcsbm, DeterministicForSameSeed) {
  const SbmConfig cfg{.num_nodes = 200,
                      .target_edges = 800,
                      .num_classes = 3,
                      .seed = 42};
  const LabeledGraph a = generate_dcsbm(cfg);
  const LabeledGraph b = generate_dcsbm(cfg);
  EXPECT_EQ(a.graph.num_edges(), b.graph.num_edges());
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.graph.edge_list().size(), b.graph.edge_list().size());
  const auto ea = a.graph.edge_list();
  const auto eb = b.graph.edge_list();
  for (std::size_t i = 0; i < ea.size(); ++i) EXPECT_TRUE(ea[i] == eb[i]);
}

TEST(Dcsbm, HeavyTailedDegrees) {
  const LabeledGraph g = generate_dcsbm({.num_nodes = 2000,
                                         .target_edges = 10000,
                                         .num_classes = 4,
                                         .degree_exponent = 2.3,
                                         .seed = 6});
  const GraphStats stats = compute_stats(g.graph);
  // Hubs should far exceed the mean degree.
  EXPECT_GT(static_cast<double>(stats.max_degree), 3.0 * stats.mean_degree);
}

TEST(Dcsbm, RejectsBadConfig) {
  EXPECT_THROW(
      generate_dcsbm({.num_nodes = 1, .target_edges = 1, .num_classes = 1}),
      std::invalid_argument);
  EXPECT_THROW(generate_dcsbm({.num_nodes = 10,
                               .target_edges = 5,
                               .num_classes = 20}),
               std::invalid_argument);
}

TEST(KarateClub, CanonicalShape) {
  const LabeledGraph g = make_karate_club();
  EXPECT_EQ(g.graph.num_nodes(), 34u);
  EXPECT_EQ(g.graph.num_edges(), 78u);
  EXPECT_EQ(g.num_classes, 2u);
  EXPECT_EQ(count_components(g.graph), 1u);
  // The two faction leaders are not directly connected.
  EXPECT_FALSE(g.graph.has_edge(0, 33));
  EXPECT_EQ(g.graph.degree(0), 16u);
  EXPECT_EQ(g.graph.degree(33), 17u);
}

TEST(Ring, RegularDegree) {
  const Graph g = make_ring(10, 4);
  for (NodeId u = 0; u < 10; ++u) EXPECT_EQ(g.degree(u), 4u);
  EXPECT_EQ(g.num_edges(), 20u);
  EXPECT_EQ(count_components(g), 1u);
}

TEST(ErdosRenyi, ExactEdgeCount) {
  const Graph g = make_erdos_renyi(100, 300, 7);
  EXPECT_EQ(g.num_nodes(), 100u);
  EXPECT_EQ(g.num_edges(), 300u);
  EXPECT_THROW(make_erdos_renyi(4, 100, 1), std::invalid_argument);
}

TEST(Datasets, SpecsMatchTable1) {
  const auto& specs = dataset_specs();
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0].name, "cora");
  EXPECT_EQ(specs[0].num_nodes, 2708u);
  EXPECT_EQ(specs[0].num_edges, 5429u);
  EXPECT_EQ(specs[0].num_classes, 7u);
  EXPECT_EQ(specs[1].name, "ampt");
  EXPECT_EQ(specs[1].num_nodes, 7650u);
  EXPECT_EQ(specs[1].num_edges, 143663u);
  EXPECT_EQ(specs[1].num_classes, 8u);
  EXPECT_EQ(specs[2].name, "amcp");
  EXPECT_EQ(specs[2].num_nodes, 13752u);
  EXPECT_EQ(specs[2].num_edges, 287209u);
  EXPECT_EQ(specs[2].num_classes, 10u);
}

TEST(Datasets, NameParsing) {
  EXPECT_EQ(dataset_from_name("cora"), DatasetId::kCora);
  EXPECT_EQ(dataset_from_name("AMPT"), DatasetId::kAmazonPhoto);
  EXPECT_EQ(dataset_from_name("amazon-computers"),
            DatasetId::kAmazonComputers);
  EXPECT_THROW(dataset_from_name("nope"), std::invalid_argument);
}

TEST(Datasets, FullScaleTwinMatchesSpec) {
  const LabeledGraph g = make_dataset(DatasetId::kCora, 1, 1.0);
  EXPECT_EQ(g.graph.num_nodes(), 2708u);
  EXPECT_NEAR(static_cast<double>(g.graph.num_edges()), 5429.0, 120.0);
  EXPECT_EQ(g.num_classes, 7u);
  EXPECT_EQ(g.name, "cora");
}

TEST(Datasets, ScaleShrinksProportionally) {
  const LabeledGraph g = make_dataset(DatasetId::kAmazonPhoto, 1, 0.1);
  EXPECT_NEAR(static_cast<double>(g.graph.num_nodes()), 765.0, 1.0);
  EXPECT_NEAR(static_cast<double>(g.graph.num_edges()), 14366.0, 150.0);
  EXPECT_THROW(make_dataset(DatasetId::kCora, 1, 0.0), std::invalid_argument);
  EXPECT_THROW(make_dataset(DatasetId::kCora, 1, 1.5), std::invalid_argument);
}

TEST(GraphIo, SaveLoadRoundTrip) {
  const LabeledGraph g = generate_dcsbm(
      {.num_nodes = 120, .target_edges = 500, .num_classes = 4, .seed = 8});
  std::stringstream ss;
  save_labeled_graph(ss, g);
  const LabeledGraph g2 = load_labeled_graph(ss);
  EXPECT_EQ(g2.graph.num_nodes(), g.graph.num_nodes());
  EXPECT_EQ(g2.graph.num_edges(), g.graph.num_edges());
  EXPECT_EQ(g2.labels, g.labels);
  EXPECT_EQ(g2.num_classes, g.num_classes);
  for (NodeId u = 0; u < g.graph.num_nodes(); ++u) {
    auto a = g.graph.neighbors(u);
    auto b = g2.graph.neighbors(u);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
  }
}

TEST(GraphIo, RejectsGarbage) {
  std::stringstream ss("not a graph file");
  EXPECT_THROW(load_labeled_graph(ss), std::runtime_error);
}

TEST(GraphStats, HandComputedCase) {
  const std::vector<Edge> edges = {{0, 1}, {1, 2}};
  LabeledGraph lg;
  lg.graph = Graph::from_edges(4, edges);
  lg.labels = {0, 0, 1, 1};
  lg.num_classes = 2;
  const GraphStats s = compute_stats(lg);
  EXPECT_EQ(s.num_nodes, 4u);
  EXPECT_EQ(s.num_edges, 2u);
  EXPECT_EQ(s.min_degree, 0u);
  EXPECT_EQ(s.max_degree, 2u);
  EXPECT_DOUBLE_EQ(s.mean_degree, 1.0);
  EXPECT_EQ(s.num_components, 2u);
  EXPECT_DOUBLE_EQ(s.label_homophily, 0.5);  // (0,1) same, (1,2) differ
}

}  // namespace
}  // namespace seqge
