// Unit tests for src/util: RNG determinism and statistical sanity, CLI
// parsing, table rendering, and stats helpers.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <optional>
#include <string>
#include <vector>

#include "util/bounded_queue.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace seqge {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double lo = 1.0, hi = 0.0, sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    lo = std::min(lo, u);
    hi = std::max(hi, u);
    sum += u;
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
  EXPECT_LT(lo, 0.001);
  EXPECT_GT(hi, 0.999);
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(11);
  std::array<int, 10> counts{};
  for (int i = 0; i < 100000; ++i) {
    const auto v = rng.bounded(10);
    ASSERT_LT(v, 10u);
    ++counts[v];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, 10000, 500);  // ~5 sigma for a fair die
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.range(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMoments) {
  Rng rng(17);
  constexpr int kN = 200000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sq / kN, 1.0, 0.03);
}

TEST(Rng, BernoulliRate) {
  Rng rng(19);
  int heads = 0;
  for (int i = 0; i < 100000; ++i) heads += rng.bernoulli(0.3);
  EXPECT_NEAR(heads / 100000.0, 0.3, 0.01);
}

TEST(SplitMix64, KnownSequenceIsStable) {
  SplitMix64 sm(0);
  const auto a = sm.next();
  const auto b = sm.next();
  EXPECT_NE(a, b);
  SplitMix64 sm2(0);
  EXPECT_EQ(sm2.next(), a);
  EXPECT_EQ(sm2.next(), b);
}

TEST(ArgParser, ParsesAllTypes) {
  std::int64_t n = 1;
  double x = 0.5;
  std::string s = "a";
  bool flag = false;
  ArgParser p("prog");
  p.add_int("n", &n, "int");
  p.add_double("x", &x, "double");
  p.add_string("s", &s, "string");
  p.add_flag("flag", &flag, "flag");

  const char* argv[] = {"prog", "--n", "42", "--x=2.5", "--s", "hello",
                        "--flag"};
  ASSERT_TRUE(p.parse(7, const_cast<char**>(argv)));
  EXPECT_EQ(n, 42);
  EXPECT_DOUBLE_EQ(x, 2.5);
  EXPECT_EQ(s, "hello");
  EXPECT_TRUE(flag);
}

TEST(ArgParser, RejectsUnknownOption) {
  ArgParser p("prog");
  const char* argv[] = {"prog", "--nope", "1"};
  EXPECT_FALSE(p.parse(3, const_cast<char**>(argv)));
}

TEST(ArgParser, RejectsBadValue) {
  std::int64_t n = 0;
  ArgParser p("prog");
  p.add_int("n", &n, "int");
  const char* argv[] = {"prog", "--n", "xyz"};
  EXPECT_FALSE(p.parse(3, const_cast<char**>(argv)));
}

TEST(ArgParser, CollectsPositional) {
  ArgParser p("prog");
  const char* argv[] = {"prog", "one", "two"};
  ASSERT_TRUE(p.parse(3, const_cast<char**>(argv)));
  ASSERT_EQ(p.positional().size(), 2u);
  EXPECT_EQ(p.positional()[0], "one");
}

TEST(Table, RendersAlignedRows) {
  Table t({"a", "bb"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| a   | bb |"), std::string::npos);
  EXPECT_NE(s.find("| 333 | 4  |"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "x,y\n1,2\n");
}

TEST(Table, RejectsArityMismatch) {
  Table t({"x", "y"});
  EXPECT_THROW(t.add_row({"1"}), std::invalid_argument);
}

TEST(Table, FmtPrecision) {
  EXPECT_EQ(Table::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(Table::fmt(2.0, 0), "2");
}

TEST(Stats, MeanStddevMedian) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(mean(xs), 3.0);
  EXPECT_NEAR(stddev(xs), std::sqrt(2.5), 1e-12);
  EXPECT_DOUBLE_EQ(median(xs), 3.0);
  EXPECT_DOUBLE_EQ(median({1.0, 2.0, 3.0, 4.0}), 2.5);
}

TEST(Stats, EmptyAndSingleton) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(stddev({}), 0.0);
  const std::vector<double> one = {7.0};
  EXPECT_DOUBLE_EQ(stddev(one), 0.0);
  EXPECT_DOUBLE_EQ(median({7.0}), 7.0);
}

TEST(Stats, MinMax) {
  const std::vector<double> xs = {3, -1, 4};
  EXPECT_DOUBLE_EQ(min_of(xs), -1.0);
  EXPECT_DOUBLE_EQ(max_of(xs), 4.0);
}

TEST(BoundedQueue, TryPushShedsWhenFullInsteadOfBlocking) {
  BoundedQueue<int> q(2);
  EXPECT_EQ(q.capacity(), 2u);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_EQ(q.size(), 2u);
  // Full: rejected immediately, no blocking, nothing lost.
  EXPECT_FALSE(q.try_push(3));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pop(), 1);
  // A freed slot admits again.
  EXPECT_TRUE(q.try_push(4));
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 4);
}

TEST(BoundedQueue, TryPushRejectedAfterClose) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.try_push(1));
  q.close();
  EXPECT_FALSE(q.try_push(2));
  EXPECT_EQ(q.pop(), 1);          // close drains what was admitted
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(BoundedQueue, TryPushDoesNotConsumeOnFailure) {
  BoundedQueue<std::string> q(1);
  EXPECT_TRUE(q.try_push("a"));
  std::string s = "still-mine";
  EXPECT_FALSE(q.try_push(std::move(s)));
  // The rejected value was not moved from: callers may answer the
  // request another way (the net server's shed path relies on this).
  EXPECT_EQ(s, "still-mine");
}

}  // namespace
}  // namespace seqge
