// Gates for the fused training-kernel layer (PR 9):
//  - fused vs force_unfused whole-model BIT identity for all three CPU
//    backends, in every negative mode, including duplicate-negative
//    walks (which must take the sequential fallback);
//  - steady-state train_walk performs ZERO heap allocations (pinned
//    with an operator-new counter, same technique as test_obs);
//  - the opt-in fast-sigmoid table is loss-equivalent to std::exp on a
//    fixed seed (it is NOT bit-identical — that is the contract).

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <new>
#include <vector>

#include "embedding/oselm_dataflow.hpp"
#include "linalg/kernels.hpp"
#include "embedding/oselm_skipgram.hpp"
#include "embedding/skipgram_sgd.hpp"
#include "sampling/negative_sampler.hpp"
#include "util/rng.hpp"

// Global allocation counter: every scalar/array new in this binary
// routes through here (aligned news keep their defaults — nothing on
// the training paths allocates aligned storage).
namespace {
std::atomic<std::size_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace seqge {
namespace {

constexpr std::size_t kNodes = 60;
constexpr std::size_t kDims = 24;  // not a multiple of 8: exercises tails
constexpr std::size_t kWindow = 5;
constexpr std::size_t kNs = 6;

/// Deterministic pseudo-walk corpus over kNodes nodes.
std::vector<std::vector<NodeId>> make_walks(std::size_t count,
                                            std::size_t len,
                                            std::uint64_t seed) {
  std::vector<std::vector<NodeId>> walks(count);
  Rng rng(seed);
  for (auto& w : walks) {
    w.resize(len);
    for (auto& v : w) {
      v = static_cast<NodeId>(rng.next() % kNodes);
    }
  }
  return walks;
}

NegativeSampler make_sampler() {
  std::vector<std::uint64_t> counts(kNodes);
  for (std::size_t i = 0; i < kNodes; ++i) counts[i] = 1 + i % 7;
  return NegativeSampler(counts);
}

bool bits_equal(std::span<const float> a, std::span<const float> b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

// ---------------------------------------------------------------------
// Fused vs unfused bit identity
// ---------------------------------------------------------------------

TEST(FusedIdentity, SkipGramPerContext) {
  Rng ra(7), rb(7);
  SkipGramSGD fused(kNodes, kDims, ra);
  SkipGramSGD ref(kNodes, kDims, rb);
  ref.set_force_unfused(true);
  const auto walks = make_walks(12, 30, 100);
  const auto sampler = make_sampler();
  double loss_f = 0.0, loss_r = 0.0;
  for (std::size_t i = 0; i < walks.size(); ++i) {
    Rng sa(1000 + i), sb(1000 + i);
    loss_f += fused.train_walk(walks[i], kWindow, sampler, kNs,
                               NegativeMode::kPerContext, sa, 0.025);
    loss_r += ref.train_walk(walks[i], kWindow, sampler, kNs,
                             NegativeMode::kPerContext, sb, 0.025);
  }
  EXPECT_EQ(loss_f, loss_r);
  EXPECT_TRUE(bits_equal(fused.embeddings().flat(), ref.embeddings().flat()));
  EXPECT_TRUE(bits_equal(fused.output_weights().flat(),
                         ref.output_weights().flat()));
}

TEST(FusedIdentity, SkipGramPerWalkSharedNegatives) {
  Rng ra(8), rb(8);
  SkipGramSGD fused(kNodes, kDims, ra);
  SkipGramSGD ref(kNodes, kDims, rb);
  ref.set_force_unfused(true);
  const auto walks = make_walks(12, 30, 200);
  const auto sampler = make_sampler();
  for (std::size_t i = 0; i < walks.size(); ++i) {
    Rng sa(2000 + i), sb(2000 + i);
    fused.train_walk(walks[i], kWindow, sampler, kNs,
                     NegativeMode::kPerWalk, sa, 0.025);
    ref.train_walk(walks[i], kWindow, sampler, kNs, NegativeMode::kPerWalk,
                   sb, 0.025);
  }
  EXPECT_TRUE(bits_equal(fused.embeddings().flat(), ref.embeddings().flat()));
  EXPECT_TRUE(bits_equal(fused.output_weights().flat(),
                         ref.output_weights().flat()));
}

TEST(FusedIdentity, SkipGramDuplicateNegativesFallBack) {
  // Duplicate draws must route through the sequential path and still
  // match the reference exactly.
  Rng ra(9), rb(9);
  SkipGramSGD fused(kNodes, kDims, ra);
  SkipGramSGD ref(kNodes, kDims, rb);
  ref.set_force_unfused(true);
  const std::vector<NodeId> dup_negs = {3, 11, 3, 20, 11};
  const auto walks = make_walks(6, 20, 300);
  for (const auto& w : walks) {
    const double lf = fused.train_walk(w, kWindow, dup_negs, 0.05);
    const double lr = ref.train_walk(w, kWindow, dup_negs, 0.05);
    EXPECT_EQ(lf, lr);
  }
  EXPECT_TRUE(bits_equal(fused.embeddings().flat(), ref.embeddings().flat()));
  EXPECT_TRUE(bits_equal(fused.output_weights().flat(),
                         ref.output_weights().flat()));
}

TEST(FusedIdentity, OselmBothModes) {
  OselmSkipGram::Options opts;
  opts.dims = kDims;
  for (const auto mode :
       {NegativeMode::kPerContext, NegativeMode::kPerWalk}) {
    Rng ra(11), rb(11);
    OselmSkipGram fused(kNodes, opts, ra);
    OselmSkipGram ref(kNodes, opts, rb);
    ref.set_force_unfused(true);
    const auto walks = make_walks(10, 25, 400);
    const auto sampler = make_sampler();
    double loss_f = 0.0, loss_r = 0.0;
    for (std::size_t i = 0; i < walks.size(); ++i) {
      Rng sa(3000 + i), sb(3000 + i);
      loss_f += fused.train_walk(walks[i], kWindow, sampler, kNs, mode, sa);
      loss_r += ref.train_walk(walks[i], kWindow, sampler, kNs, mode, sb);
    }
    EXPECT_EQ(loss_f, loss_r);
    EXPECT_TRUE(bits_equal(fused.beta_transposed().flat(),
                           ref.beta_transposed().flat()));
    EXPECT_TRUE(
        bits_equal(fused.covariance().flat(), ref.covariance().flat()));
  }
}

TEST(FusedIdentity, OselmDuplicateNegativesFallBack) {
  OselmSkipGram::Options opts;
  opts.dims = kDims;
  Rng ra(12), rb(12);
  OselmSkipGram fused(kNodes, opts, ra);
  OselmSkipGram ref(kNodes, opts, rb);
  ref.set_force_unfused(true);
  const std::vector<NodeId> dup_negs = {5, 5, 17, 23, 17, 9};
  for (const auto& w : make_walks(6, 20, 500)) {
    EXPECT_EQ(fused.train_walk(w, kWindow, dup_negs),
              ref.train_walk(w, kWindow, dup_negs));
  }
  EXPECT_TRUE(bits_equal(fused.beta_transposed().flat(),
                         ref.beta_transposed().flat()));
}

TEST(FusedIdentity, DataflowSharedNegatives) {
  OselmSkipGramDataflow::Options opts;
  opts.dims = kDims;
  Rng ra(13), rb(13);
  OselmSkipGramDataflow fused(kNodes, opts, ra);
  OselmSkipGramDataflow ref(kNodes, opts, rb);
  ref.set_force_unfused(true);
  const auto walks = make_walks(10, 25, 600);
  const auto sampler = make_sampler();
  double loss_f = 0.0, loss_r = 0.0;
  for (std::size_t i = 0; i < walks.size(); ++i) {
    Rng sa(4000 + i), sb(4000 + i);
    loss_f += fused.train_walk(walks[i], kWindow, sampler, kNs, sa);
    loss_r += ref.train_walk(walks[i], kWindow, sampler, kNs, sb);
  }
  EXPECT_EQ(loss_f, loss_r);
  EXPECT_TRUE(bits_equal(fused.beta_transposed().flat(),
                         ref.beta_transposed().flat()));
  EXPECT_TRUE(
      bits_equal(fused.covariance().flat(), ref.covariance().flat()));
}

TEST(FusedIdentity, DataflowDuplicateNegativesFallBack) {
  OselmSkipGramDataflow::Options opts;
  opts.dims = kDims;
  Rng ra(14), rb(14);
  OselmSkipGramDataflow fused(kNodes, opts, ra);
  OselmSkipGramDataflow ref(kNodes, opts, rb);
  ref.set_force_unfused(true);
  const std::vector<NodeId> dup_negs = {2, 31, 2, 8};
  for (const auto& w : make_walks(6, 20, 700)) {
    EXPECT_EQ(fused.train_walk(w, kWindow, dup_negs),
              ref.train_walk(w, kWindow, dup_negs));
  }
  EXPECT_TRUE(bits_equal(fused.beta_transposed().flat(),
                         ref.beta_transposed().flat()));
}

// ---------------------------------------------------------------------
// Steady-state allocation freedom
// ---------------------------------------------------------------------

// One warmup pass sizes every scratch vector; a second pass over the
// SAME walk sequence must not touch the heap at all.
template <typename TrainPass>
void expect_steady_state_alloc_free(TrainPass&& pass) {
  pass();  // warmup: scratch vectors grow to their steady-state sizes
  const std::size_t before = g_alloc_count.load(std::memory_order_relaxed);
  pass();
  const std::size_t after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before) << "train_walk allocated in steady state";
}

TEST(SteadyStateAlloc, SkipGram) {
  Rng rng(21);
  SkipGramSGD m(kNodes, kDims, rng);
  const auto walks = make_walks(8, 30, 800);
  const auto sampler = make_sampler();
  for (const auto mode :
       {NegativeMode::kPerContext, NegativeMode::kPerWalk}) {
    expect_steady_state_alloc_free([&] {
      for (std::size_t i = 0; i < walks.size(); ++i) {
        Rng sr(5000 + i);
        m.train_walk(walks[i], kWindow, sampler, kNs, mode, sr, 0.025);
      }
    });
  }
}

TEST(SteadyStateAlloc, Oselm) {
  OselmSkipGram::Options opts;
  opts.dims = kDims;
  Rng rng(22);
  OselmSkipGram m(kNodes, opts, rng);
  const auto walks = make_walks(8, 30, 900);
  const auto sampler = make_sampler();
  for (const auto mode :
       {NegativeMode::kPerContext, NegativeMode::kPerWalk}) {
    expect_steady_state_alloc_free([&] {
      for (std::size_t i = 0; i < walks.size(); ++i) {
        Rng sr(6000 + i);
        m.train_walk(walks[i], kWindow, sampler, kNs, mode, sr);
      }
    });
  }
}

TEST(SteadyStateAlloc, Dataflow) {
  OselmSkipGramDataflow::Options opts;
  opts.dims = kDims;
  Rng rng(23);
  OselmSkipGramDataflow m(kNodes, opts, rng);
  const auto walks = make_walks(8, 30, 950);
  const auto sampler = make_sampler();
  expect_steady_state_alloc_free([&] {
    for (std::size_t i = 0; i < walks.size(); ++i) {
      Rng sr(7000 + i);
      m.train_walk(walks[i], kWindow, sampler, kNs, sr);
    }
  });
}

// ---------------------------------------------------------------------
// Fast-sigmoid equivalence gate
// ---------------------------------------------------------------------

TEST(FastSigmoid, LossEquivalentOnFixedSeed) {
  Rng ra(31), rb(31);
  SkipGramSGD exact(kNodes, kDims, ra, /*fast_sigmoid=*/false);
  SkipGramSGD fast(kNodes, kDims, rb, /*fast_sigmoid=*/true);
  ASSERT_FALSE(exact.fast_sigmoid_enabled());
  ASSERT_TRUE(fast.fast_sigmoid_enabled());
  const auto walks = make_walks(40, 40, 1234);
  const auto sampler = make_sampler();
  double first_e = 0, first_f = 0, last_e = 0, last_f = 0;
  for (int epoch = 0; epoch < 5; ++epoch) {
    double le = 0, lf = 0;
    for (std::size_t i = 0; i < walks.size(); ++i) {
      Rng sa(9000 + i), sb(9000 + i);
      le += exact.train_walk(walks[i], kWindow, sampler, kNs,
                             NegativeMode::kPerContext, sa, 0.025);
      lf += fast.train_walk(walks[i], kWindow, sampler, kNs,
                            NegativeMode::kPerContext, sb, 0.025);
    }
    if (epoch == 0) {
      first_e = le;
      first_f = lf;
    }
    last_e = le;
    last_f = lf;
  }
  // Both converge, and the approximate losses track the exact ones
  // closely (the 1024-bin table's max absolute sigmoid error is ~3e-3).
  EXPECT_LT(last_e, first_e);
  EXPECT_LT(last_f, first_f);
  EXPECT_NEAR(last_f / last_e, 1.0, 0.05);
}

TEST(FastSigmoid, TrainedScoresAgree) {
  // A positive pair hammered with both variants ends up confidently
  // positive in both — the "recall" half of the equivalence gate.
  Rng ra(32), rb(32);
  SkipGramSGD exact(10, 8, ra, false);
  SkipGramSGD fast(10, 8, rb, true);
  const std::vector<NodeId> negs = {5, 6, 7};
  for (int i = 0; i < 50; ++i) {
    exact.train_pair(0, 1, negs, 0.1);
    fast.train_pair(0, 1, negs, 0.1);
  }
  auto score = [](const SkipGramSGD& m) {
    return sigmoid(dot<float>(m.embedding(0), m.output_weights().row(1)));
  };
  EXPECT_GT(score(exact), 0.9);
  EXPECT_GT(score(fast), 0.9);
  EXPECT_NEAR(score(exact), score(fast), 0.02);
}

}  // namespace
}  // namespace seqge
