// Tests for Walker's alias method and the negative sampler, including
// parameterized goodness-of-fit sweeps over distribution shapes.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "sampling/alias_table.hpp"
#include "sampling/negative_sampler.hpp"
#include "util/rng.hpp"

namespace seqge {
namespace {

TEST(AliasTable, ExactProbabilitiesSumToOne) {
  const std::vector<double> w = {1.0, 2.0, 3.0, 4.0};
  AliasTable t(w);
  double sum = 0.0;
  for (std::uint32_t i = 0; i < 4; ++i) sum += t.probability_of(i);
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_NEAR(t.probability_of(3), 0.4, 1e-12);
  EXPECT_NEAR(t.probability_of(0), 0.1, 1e-12);
}

TEST(AliasTable, ZeroWeightNeverSampled) {
  const std::vector<double> w = {0.0, 1.0, 0.0, 1.0};
  AliasTable t(w);
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const auto s = t.sample(rng);
    EXPECT_TRUE(s == 1 || s == 3);
  }
  EXPECT_NEAR(t.probability_of(0), 0.0, 1e-12);
}

TEST(AliasTable, SingleElement) {
  const std::vector<double> w = {5.0};
  AliasTable t(w);
  Rng rng(2);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(t.sample(rng), 0u);
}

TEST(AliasTable, ErrorCases) {
  EXPECT_THROW(AliasTable(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(AliasTable(std::vector<double>{0.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(AliasTable(std::vector<double>{1.0, -1.0}),
               std::invalid_argument);
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(AliasTable(std::vector<double>{1.0, inf}),
               std::invalid_argument);
}

// Parameterized goodness-of-fit: empirical frequencies must match the
// requested distribution for uniform, linear, geometric, spiked, and
// power-law weight shapes.
class AliasDistributionTest : public ::testing::TestWithParam<int> {};

std::vector<double> make_weights(int shape, std::size_t n) {
  std::vector<double> w(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i + 1);
    switch (shape) {
      case 0: w[i] = 1.0; break;                       // uniform
      case 1: w[i] = x; break;                         // linear
      case 2: w[i] = std::pow(0.7, x); break;          // geometric
      case 3: w[i] = (i == 0) ? 1000.0 : 1.0; break;   // spiked
      default: w[i] = std::pow(x, -1.5); break;        // power law
    }
  }
  return w;
}

TEST_P(AliasDistributionTest, EmpiricalMatchesExpected) {
  const std::size_t n = 32;
  const auto w = make_weights(GetParam(), n);
  const double total = std::accumulate(w.begin(), w.end(), 0.0);
  AliasTable t(w);
  Rng rng(123 + GetParam());

  constexpr int kDraws = 400000;
  std::vector<int> counts(n, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[t.sample(rng)];

  for (std::size_t i = 0; i < n; ++i) {
    const double expected = w[i] / total * kDraws;
    // 5-sigma binomial tolerance.
    const double sigma =
        std::sqrt(expected * (1.0 - w[i] / total)) + 1.0;
    EXPECT_NEAR(counts[i], expected, 5.0 * sigma)
        << "shape=" << GetParam() << " index=" << i;
    // probability_of must agree with the construction.
    EXPECT_NEAR(t.probability_of(static_cast<std::uint32_t>(i)),
                w[i] / total, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, AliasDistributionTest,
                         ::testing::Values(0, 1, 2, 3, 4));

TEST(NegativeSampler, PowerSmoothingFlattens) {
  // counts 1 vs 16: raw ratio 16, smoothed (3/4 power) ratio 16^0.75 = 8.
  const std::vector<std::uint64_t> counts = {1, 16};
  NegativeSampler s(counts, 0.75);
  Rng rng(3);
  int hi = 0;
  constexpr int kDraws = 90000;
  for (int i = 0; i < kDraws; ++i) hi += (s.sample(rng) == 1);
  const double ratio =
      static_cast<double>(hi) / static_cast<double>(kDraws - hi);
  EXPECT_NEAR(ratio, 8.0, 0.5);
}

TEST(NegativeSampler, ZeroCountGetsFloor) {
  const std::vector<std::uint64_t> counts = {0, 100};
  NegativeSampler s(counts);
  Rng rng(4);
  bool saw_zero = false;
  for (int i = 0; i < 20000 && !saw_zero; ++i) saw_zero = (s.sample(rng) == 0);
  EXPECT_TRUE(saw_zero) << "zero-frequency node must stay reachable";
}

TEST(NegativeSampler, BatchExcludesPositive) {
  const std::vector<std::uint64_t> counts = {10, 10, 10, 10};
  NegativeSampler s(counts);
  Rng rng(5);
  std::vector<std::uint32_t> batch;
  for (int trial = 0; trial < 200; ++trial) {
    s.sample_batch(rng, 8, /*exclude=*/2, batch);
    EXPECT_EQ(batch.size(), 8u);
    for (auto v : batch) EXPECT_NE(v, 2u);
  }
}

TEST(NegativeSampler, FromDegreesUsesGraphShape) {
  // A star graph: hub has degree n-1, leaves degree 1 — the hub must be
  // sampled far more often.
  struct FakeGraph {
    std::size_t num_nodes() const { return 9; }
    std::size_t degree(std::uint32_t u) const { return u == 0 ? 8 : 1; }
  } g;
  auto s = NegativeSampler::from_degrees(g);
  Rng rng(6);
  int hub = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) hub += (s.sample(rng) == 0);
  // Smoothed hub share: 8^.75 / (8^.75 + 8*1) = 0.373.
  EXPECT_NEAR(hub / static_cast<double>(kDraws), 0.373, 0.02);
}

}  // namespace
}  // namespace seqge
