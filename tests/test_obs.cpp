// Unit tests for src/obs: counter/gauge/histogram exactness under
// concurrency, histogram percentiles vs the order-statistic reference
// in util/stats, span nesting, the disabled-mode contract (no atomic
// writes, no allocation), registry identity rules, and byte-stable
// exporter output.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <new>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

// Global allocation counter for the disabled-mode zero-allocation
// test: every scalar/array new in this binary routes through here.
// (Aligned news keep their defaults — nothing on the record paths
// allocates aligned storage.)
namespace {
std::atomic<std::size_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace seqge {
namespace {

TEST(ObsCounter, ConcurrentIncrementsAreExact) {
  obs::EnabledGuard on(true);
  obs::Counter c;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(ObsGauge, SetAddSub) {
  obs::EnabledGuard on(true);
  obs::Gauge g;
  EXPECT_EQ(g.value(), 0);
  g.set(7);
  EXPECT_EQ(g.value(), 7);
  g.add(3);
  g.sub(5);
  EXPECT_EQ(g.value(), 5);
  g.set(-2);
  EXPECT_EQ(g.value(), -2);
}

TEST(ObsHistogram, CountSumMaxMean) {
  obs::EnabledGuard on(true);
  obs::Histogram h({1.0, 2.0, 4.0});
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.percentile(0.5), 0.0);
  h.observe(0.5);
  h.observe(3.0);
  h.observe(100.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 103.5);
  EXPECT_DOUBLE_EQ(h.mean(), 34.5);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  const obs::HistogramSnapshot snap = h.snapshot();
  ASSERT_EQ(snap.buckets.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(snap.buckets[0], 1u);
  EXPECT_EQ(snap.buckets[1], 0u);
  EXPECT_EQ(snap.buckets[2], 1u);
  EXPECT_EQ(snap.buckets[3], 1u);
}

TEST(ObsHistogram, RejectsNonAscendingBounds) {
  EXPECT_THROW(obs::Histogram({1.0, 1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(obs::Histogram({2.0, 1.0}), std::invalid_argument);
}

TEST(ObsHistogram, PercentileMatchesOrderStatisticReference) {
  obs::EnabledGuard on(true);
  // Unit-wide buckets over the sample range keep the interpolation
  // error below one bucket width, so the histogram estimate must land
  // within ~1 of the exact order-statistic percentile.
  std::vector<double> bounds;
  for (int b = 1; b <= 200; ++b) bounds.push_back(static_cast<double>(b));
  obs::Histogram h(std::move(bounds));
  Rng rng(99);
  std::vector<double> samples;
  samples.reserve(10000);
  for (int i = 0; i < 10000; ++i) {
    const double v = static_cast<double>(rng.bounded(20000)) / 100.0;
    samples.push_back(v);
    h.observe(v);
  }
  for (double q : {0.10, 0.50, 0.90, 0.95, 0.99}) {
    EXPECT_NEAR(h.percentile(q), percentile(samples, q), 1.5)
        << "q=" << q;
  }
}

TEST(ObsHistogram, PercentileNeverExceedsObservedMax) {
  obs::EnabledGuard on(true);
  obs::Histogram h({1.0, 1024.0});
  h.observe(600.0);  // alone in the wide (1, 1024] bucket
  // p99 would interpolate to ~1014 inside the bucket; the clamp caps
  // it at the observed max. p50 interpolates below the max and stays.
  EXPECT_DOUBLE_EQ(h.percentile(0.99), 600.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.50), 512.5);
  EXPECT_LE(h.percentile(0.95), 600.0);
}

TEST(ObsHistogram, ConcurrentObservesAreExact) {
  obs::EnabledGuard on(true);
  obs::Histogram h(obs::exponential_buckets(1.0, 2.0, 10));
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  double expected_sum = 0.0;
  for (int i = 0; i < kPerThread; ++i) {
    expected_sum += static_cast<double>(i % 100);
  }
  expected_sum *= kThreads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) {
        h.observe(static_cast<double>(i % 100));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  // Every observation is a small integer, so the atomic double
  // accumulation is exact — no tolerance needed.
  EXPECT_DOUBLE_EQ(h.sum(), expected_sum);
  EXPECT_DOUBLE_EQ(h.max(), 99.0);
}

TEST(ObsBuckets, ExponentialValuesAndValidation) {
  const std::vector<double> b = obs::exponential_buckets(1.0, 2.0, 4);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_DOUBLE_EQ(b[0], 1.0);
  EXPECT_DOUBLE_EQ(b[3], 8.0);
  EXPECT_THROW(obs::exponential_buckets(0.0, 2.0, 4),
               std::invalid_argument);
  EXPECT_THROW(obs::exponential_buckets(1.0, 1.0, 4),
               std::invalid_argument);
  EXPECT_THROW(obs::exponential_buckets(1.0, 2.0, 0),
               std::invalid_argument);
  EXPECT_EQ(obs::default_latency_buckets_us().size(), 26u);
}

TEST(ObsRegistry, GetOrCreateReturnsStableIdentity) {
  obs::Registry reg;
  obs::Counter* a = reg.counter("x_total", {{"k", "1"}});
  obs::Counter* b = reg.counter("x_total", {{"k", "1"}});
  obs::Counter* other = reg.counter("x_total", {{"k", "2"}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, other);
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_EQ(reg.find_counter("x_total", {{"k", "1"}}), a);
  EXPECT_EQ(reg.find_counter("x_total", {{"k", "3"}}), nullptr);
  EXPECT_EQ(reg.find_histogram("x_total", {{"k", "1"}}), nullptr);
}

TEST(ObsRegistry, KindConflictThrows) {
  obs::Registry reg;
  reg.counter("clash");
  EXPECT_THROW(reg.gauge("clash"), std::logic_error);
  EXPECT_THROW(reg.histogram("clash", {1.0}), std::logic_error);
}

TEST(ObsRegistry, CollectPreservesRegistrationOrder) {
  obs::EnabledGuard on(true);
  obs::Registry reg;
  reg.counter("z_total")->add(2);
  reg.gauge("a_depth")->set(-4);
  reg.histogram("m_us", {1.0})->observe(0.5);
  const auto snaps = reg.collect();
  ASSERT_EQ(snaps.size(), 3u);
  EXPECT_EQ(snaps[0].name, "z_total");
  EXPECT_EQ(snaps[0].counter_value, 2u);
  EXPECT_EQ(snaps[1].name, "a_depth");
  EXPECT_EQ(snaps[1].gauge_value, -4);
  EXPECT_EQ(snaps[2].name, "m_us");
  EXPECT_EQ(snaps[2].hist.count, 1u);
}

#ifndef SEQGE_OBS_DISABLED

int span_depth_probe() {
  OBS_SPAN("obs_test_outer");
  const int outer = obs::current_span_depth();
  {
    OBS_SPAN("obs_test_inner");
    EXPECT_EQ(obs::current_span_depth(), outer + 1);
  }
  EXPECT_EQ(obs::current_span_depth(), outer);
  return outer;
}

TEST(ObsSpan, NestingBalancesAndRecords) {
  obs::EnabledGuard on(true);
  EXPECT_EQ(obs::current_span_depth(), 0);
  EXPECT_EQ(span_depth_probe(), 1);
  EXPECT_EQ(obs::current_span_depth(), 0);
  const obs::Histogram* wall = obs::Registry::global().find_histogram(
      "seqge_span_wall_us", {{"span", "obs_test_inner"}});
  ASSERT_NE(wall, nullptr);
  EXPECT_GE(wall->count(), 1u);
  const obs::Histogram* cpu = obs::Registry::global().find_histogram(
      "seqge_span_cpu_us", {{"span", "obs_test_inner"}});
  ASSERT_NE(cpu, nullptr);
  EXPECT_EQ(cpu->count(), wall->count());
}

#else  // SEQGE_OBS_DISABLED

TEST(ObsSpan, CompiledOutSpansRegisterNothing) {
  obs::EnabledGuard on(true);
  OBS_SPAN("obs_test_compiled_out");
  EXPECT_EQ(obs::current_span_depth(), 0);
  EXPECT_EQ(obs::Registry::global().find_histogram(
                "seqge_span_wall_us", {{"span", "obs_test_compiled_out"}}),
            nullptr);
}

#endif  // SEQGE_OBS_DISABLED

TEST(ObsSpan, DisabledScopesKeepDepthAtZero) {
  obs::EnabledGuard off(false);
  OBS_SPAN("obs_test_disabled");
  EXPECT_EQ(obs::current_span_depth(), 0);
}

void span_alloc_probe() { OBS_SPAN("obs_test_alloc_probe"); }

TEST(ObsDisabled, RecordPathsWriteNothingAndAllocateNothing) {
  obs::Registry reg;
  obs::Counter* c;
  obs::Histogram* h;
  obs::Gauge* g;
  std::uint64_t warm_count;
  {
    // Warm every lazy path while enabled: registration, this thread's
    // stripe index, and the span site's static registration.
    obs::EnabledGuard on(true);
    c = reg.counter("warm_total");
    h = reg.histogram("warm_us", {1.0, 10.0});
    g = reg.gauge("warm_depth");
    c->add();
    h->observe(1.0);
    g->set(1);
    span_alloc_probe();
    warm_count = c->value();
  }
  obs::EnabledGuard off(false);
  const std::size_t allocs_before =
      g_alloc_count.load(std::memory_order_relaxed);
  for (int i = 0; i < 10000; ++i) {
    c->add();
    h->observe(5.0);
    g->add(1);
    span_alloc_probe();
  }
  // Disabled means silent: no allocation and no recorded value moved.
  EXPECT_EQ(g_alloc_count.load(std::memory_order_relaxed), allocs_before);
  EXPECT_EQ(c->value(), warm_count);
  EXPECT_EQ(h->count(), 1u);
  EXPECT_EQ(g->value(), 1);
}

TEST(ObsExport, PrometheusGolden) {
  obs::EnabledGuard on(true);
  obs::Registry reg;
  reg.counter("demo_requests_total", {{"path", "/q"}}, "Requests")->add(3);
  reg.gauge("demo_queue_depth")->set(2);
  obs::Histogram* h =
      reg.histogram("demo_latency_us", {1.0, 2.0, 4.0}, {}, "Latency");
  h->observe(0.5);
  h->observe(3.0);
  h->observe(100.0);
  const std::string expected =
      "# HELP demo_requests_total Requests\n"
      "# TYPE demo_requests_total counter\n"
      "demo_requests_total{path=\"/q\"} 3\n"
      "# TYPE demo_queue_depth gauge\n"
      "demo_queue_depth 2\n"
      "# HELP demo_latency_us Latency\n"
      "# TYPE demo_latency_us histogram\n"
      "demo_latency_us_bucket{le=\"1\"} 1\n"
      "demo_latency_us_bucket{le=\"2\"} 1\n"
      "demo_latency_us_bucket{le=\"4\"} 2\n"
      "demo_latency_us_bucket{le=\"+Inf\"} 3\n"
      "demo_latency_us_sum 103.5\n"
      "demo_latency_us_count 3\n";
  EXPECT_EQ(obs::render_prometheus(reg), expected);
}

TEST(ObsExport, JsonGolden) {
  obs::EnabledGuard on(true);
  obs::Registry reg;
  reg.counter("demo_requests_total", {{"path", "/q"}}, "Requests")->add(3);
  reg.gauge("demo_queue_depth")->set(2);
  obs::Histogram* h =
      reg.histogram("demo_latency_us", {1.0, 2.0, 4.0}, {}, "Latency");
  h->observe(0.5);
  h->observe(3.0);
  h->observe(100.0);
  const std::string expected =
      "{\n"
      "  \"schema\": \"seqge-metrics-v1\",\n"
      "  \"metrics\": [\n"
      "    {\"name\": \"demo_requests_total\", \"type\": \"counter\", "
      "\"labels\": {\"path\": \"/q\"}, \"value\": 3},\n"
      "    {\"name\": \"demo_queue_depth\", \"type\": \"gauge\", "
      "\"labels\": {}, \"value\": 2},\n"
      "    {\"name\": \"demo_latency_us\", \"type\": \"histogram\", "
      "\"labels\": {}, \"count\": 3, \"sum\": 103.5, \"max\": 100, "
      "\"p50\": 3, \"p95\": 100, \"p99\": 100, \"bounds\": [1, 2, 4], "
      "\"buckets\": [1, 0, 1, 1]}\n"
      "  ]\n"
      "}\n";
  EXPECT_EQ(obs::render_json(reg), expected);
}

TEST(ObsExport, PeriodicDumperWritesFile) {
  obs::EnabledGuard on(true);
  obs::Registry::global().counter("obstest_dumper_total")->add();
  const std::string path = "test_obs_periodic_dump.json";
  std::remove(path.c_str());
  {
    obs::PeriodicDumper dumper(path, std::chrono::milliseconds(5));
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  }  // destructor stops and writes the final dump
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::stringstream body;
  body << f.rdbuf();
  EXPECT_NE(body.str().find("seqge-metrics-v1"), std::string::npos);
  EXPECT_NE(body.str().find("obstest_dumper_total"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace seqge
