// Mathematical invariant tests for the OS-ELM recursion underlying the
// proposed model. The rank-1 RLS update must satisfy, in exact
// arithmetic,
//
//   P_k     = (P_0^{-1} + sum_i H_i^T H_i)^{-1}          (Sherman-Morrison)
//   beta_k  = P_k (sum_i H_i^T t_i)         (with beta_0 = 0)
//
// i.e. the sequentially-trained output weights equal the closed-form
// ridge-regression solution over everything seen so far — precisely the
// "no catastrophic forgetting" argument of the paper. We verify both
// against direct Gauss-Jordan inverses on small systems.

#include <gtest/gtest.h>

#include <vector>

#include "embedding/oselm_skipgram.hpp"
#include "linalg/kernels.hpp"
#include "linalg/matrix.hpp"
#include "util/rng.hpp"

namespace seqge {
namespace {

/// Gauss-Jordan inverse for small dense systems (test-only).
Matrix<double> invert(const Matrix<double>& a) {
  const std::size_t n = a.rows();
  Matrix<double> m = a;
  Matrix<double> inv(n, n);
  inv.set_identity(1.0);
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(m(r, col)) > std::abs(m(pivot, col))) pivot = r;
    }
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(m(pivot, c), m(col, c));
        std::swap(inv(pivot, c), inv(col, c));
      }
    }
    const double d = m(col, col);
    EXPECT_GT(std::abs(d), 1e-12) << "singular matrix in test";
    for (std::size_t c = 0; c < n; ++c) {
      m(col, c) /= d;
      inv(col, c) /= d;
    }
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const double f = m(r, col);
      for (std::size_t c = 0; c < n; ++c) {
        m(r, c) -= f * m(col, c);
        inv(r, c) -= f * inv(col, c);
      }
    }
  }
  return inv;
}

constexpr std::size_t kDims = 6;
constexpr std::size_t kNodes = 12;
constexpr double kP0 = 10.0;

/// Build a random-alpha model (fixed H per center node, independent of
/// beta) with beta zeroed, so the recursion is exactly classic OS-ELM.
OselmSkipGram make_pure_oselm(Rng& rng) {
  OselmSkipGram::Options opts;
  opts.dims = kDims;
  opts.p0 = kP0;
  opts.random_alpha = true;
  OselmSkipGram model(kNodes, opts, rng);
  model.beta_transposed().fill(0.0f);
  return model;
}

TEST(OselmMath, CovarianceMatchesDirectInverse) {
  Rng rng(21);
  OselmSkipGram model = make_pure_oselm(rng);

  // Gram accumulator A = P0^{-1} I + sum H^T H.
  Matrix<double> gram(kDims, kDims);
  gram.set_identity(1.0 / kP0);

  std::vector<float> h(kDims);
  std::vector<NodeId> walk_buf(2);
  for (int step = 0; step < 60; ++step) {
    const auto center = static_cast<NodeId>(rng.bounded(kNodes));
    const auto positive = static_cast<NodeId>(rng.bounded(kNodes));
    model.hidden(center, h);
    for (std::size_t i = 0; i < kDims; ++i) {
      for (std::size_t j = 0; j < kDims; ++j) {
        gram(i, j) += static_cast<double>(h[i]) * h[j];
      }
    }
    walk_buf = {center, positive};
    WalkContext ctx{center, std::span<const NodeId>(walk_buf).subspan(1)};
    model.train_context(ctx, {});
  }

  const Matrix<double> expected_p = invert(gram);
  const MatrixF& p = model.covariance();
  for (std::size_t i = 0; i < kDims; ++i) {
    for (std::size_t j = 0; j < kDims; ++j) {
      EXPECT_NEAR(p(i, j), expected_p(i, j), 5e-3)
          << "P[" << i << "][" << j << "]";
    }
  }
}

TEST(OselmMath, BetaConvergesToRidgeSolution) {
  Rng rng(22);
  OselmSkipGram model = make_pure_oselm(rng);

  // Track one output column: node `target` is the positive (t=1) of
  // every context, so its column's recursion sees every sample.
  constexpr NodeId kTarget = 3;

  Matrix<double> gram(kDims, kDims);
  gram.set_identity(1.0 / kP0);
  std::vector<double> hty(kDims, 0.0);

  std::vector<float> h(kDims);
  std::vector<NodeId> walk_buf(2);
  for (int step = 0; step < 80; ++step) {
    const auto center = static_cast<NodeId>(rng.bounded(kNodes));
    model.hidden(center, h);
    for (std::size_t i = 0; i < kDims; ++i) {
      hty[i] += h[i];  // t = 1
      for (std::size_t j = 0; j < kDims; ++j) {
        gram(i, j) += static_cast<double>(h[i]) * h[j];
      }
    }
    walk_buf = {center, kTarget};
    WalkContext ctx{center, std::span<const NodeId>(walk_buf).subspan(1)};
    model.train_context(ctx, {});
  }

  // Closed form: beta* = (P0^{-1} + sum H^T H)^{-1} sum H^T t.
  const Matrix<double> inv = invert(gram);
  std::vector<double> expected(kDims, 0.0);
  for (std::size_t i = 0; i < kDims; ++i) {
    for (std::size_t j = 0; j < kDims; ++j) {
      expected[i] += inv(i, j) * hty[j];
    }
  }

  auto beta = model.beta_transposed().row(kTarget);
  for (std::size_t i = 0; i < kDims; ++i) {
    EXPECT_NEAR(beta[i], expected[i], 5e-3) << "beta[" << i << "]";
  }
}

TEST(OselmMath, CovarianceStaysSymmetricPositive) {
  Rng rng(23);
  OselmSkipGram::Options opts;
  opts.dims = 8;
  opts.p0 = 10.0;
  OselmSkipGram model(20, opts, rng);  // tied weights this time

  std::vector<NodeId> walk_buf;
  std::vector<NodeId> negs = {1, 2, 3};
  for (int step = 0; step < 200; ++step) {
    const auto center = static_cast<NodeId>(rng.bounded(20));
    const auto pos = static_cast<NodeId>(rng.bounded(20));
    walk_buf = {center, pos};
    WalkContext ctx{center, std::span<const NodeId>(walk_buf).subspan(1)};
    model.train_context(ctx, negs);
  }

  const MatrixF& p = model.covariance();
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_GT(p(i, i), 0.0f) << "diagonal must stay positive";
    for (std::size_t j = i + 1; j < 8; ++j) {
      EXPECT_NEAR(p(i, j), p(j, i), 1e-3) << "symmetry " << i << "," << j;
    }
  }
}

TEST(OselmMath, RlsErrorDecreasesOnRepeatedSample) {
  // Re-presenting the same (center, positive) pair must monotonically
  // shrink its squared error: the defining property of a least-squares
  // sequential learner.
  Rng rng(24);
  OselmSkipGram::Options opts;
  opts.dims = 8;
  // mu/p0 scaled up so the single-pair RLS fixed point (error -> 0) is
  // reached within ~100 presentations; the monotonicity property itself
  // holds for any setting.
  opts.mu = 0.5;
  opts.p0 = 100.0;
  OselmSkipGram model(10, opts, rng);

  std::vector<NodeId> walk_buf = {0, 1};
  WalkContext ctx{0, std::span<const NodeId>(walk_buf).subspan(1)};
  double prev = 1e300;
  for (int i = 0; i < 100; ++i) {
    const double err = model.train_context(ctx, {});
    EXPECT_LE(err, prev + 1e-9) << "iteration " << i;
    prev = err;
  }
  EXPECT_LT(prev, 0.05) << "error must approach 0";
}

}  // namespace
}  // namespace seqge
