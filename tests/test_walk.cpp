// Tests for the node2vec walkers (on-the-fly and rejection-sampling),
// context windowing, and corpus generation — including the statistical
// property that both sampling strategies draw from the same biased
// distribution, and that p/q steer the walk as Sec. 2.1 describes.

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "graph/dynamic_graph.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"
#include "walk/corpus.hpp"
#include "walk/node2vec_walker.hpp"

namespace seqge {
namespace {

TEST(Node2VecParams, Validation) {
  Node2VecParams p;
  EXPECT_NO_THROW(p.validate());
  p.p = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = Node2VecParams{};
  p.window = 100;
  p.walk_length = 50;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(Walker, WalkHasRequestedLength) {
  const Graph g = make_ring(20, 4);
  Node2VecParams params;
  params.walk_length = 15;
  Node2VecWalker<Graph> walker(g, params);
  Rng rng(1);
  const auto walk = walker.walk(rng, 3);
  EXPECT_EQ(walk.size(), 15u);
  EXPECT_EQ(walk[0], 3u);
}

TEST(Walker, ConsecutiveNodesAreConnected) {
  const LabeledGraph data = generate_dcsbm(
      {.num_nodes = 200, .target_edges = 800, .num_classes = 4, .seed = 2});
  Node2VecParams params;
  params.walk_length = 40;
  Node2VecWalker<Graph> walker(data.graph, params);
  Rng rng(2);
  for (int t = 0; t < 20; ++t) {
    const auto start = static_cast<NodeId>(rng.bounded(200));
    const auto walk = walker.walk(rng, start);
    for (std::size_t i = 1; i < walk.size(); ++i) {
      ASSERT_TRUE(data.graph.has_edge(walk[i - 1], walk[i]))
          << walk[i - 1] << " -> " << walk[i];
    }
  }
}

TEST(Walker, IsolatedStartYieldsSingleton) {
  const std::vector<Edge> edges = {{0, 1}};
  const Graph g = Graph::from_edges(3, edges);  // node 2 isolated
  Node2VecWalker<Graph> walker(g, Node2VecParams{});
  Rng rng(3);
  const auto walk = walker.walk(rng, 2);
  EXPECT_EQ(walk.size(), 1u);
}

TEST(Walker, ReturnParameterBiasesBacktracking) {
  // Path graph 0-1-2. From (prev=0, cur=1) the only options are back to
  // 0 (alpha=1/p) or on to 2 (alpha=1/q, since d(0,2)=2). With p small,
  // returns dominate; with p large, they are rare.
  const std::vector<Edge> edges = {{0, 1}, {1, 2}};
  const Graph g = Graph::from_edges(3, edges);

  auto return_rate = [&](double p) {
    Node2VecParams params;
    params.p = p;
    params.q = 1.0;
    Node2VecWalker<Graph> walker(g, params);
    Rng rng(4);
    int back = 0;
    constexpr int kTrials = 20000;
    for (int i = 0; i < kTrials; ++i) {
      back += (walker.biased_step(rng, /*prev=*/0, /*cur=*/1) == 0);
    }
    return back / static_cast<double>(kTrials);
  };

  // Expected: (1/p) / (1/p + 1).
  EXPECT_NEAR(return_rate(0.25), 0.8, 0.02);
  EXPECT_NEAR(return_rate(4.0), 0.2, 0.02);
}

TEST(Walker, InOutParameterBiasesExploration) {
  // Square with a diagonal: 0-1, 1-2, 2-3, 3-0, 0-2.
  // From (prev=0, cur=1): candidates 0 (return), 2 (triangle, d=1).
  // From (prev=1, cur=2): candidates 1 (return), 0 (d=1 from 1), 3 (d=2).
  const std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}};
  const Graph g = Graph::from_edges(4, edges);

  auto explore_rate = [&](double q) {
    Node2VecParams params;
    params.p = 1.0;
    params.q = q;
    Node2VecWalker<Graph> walker(g, params);
    Rng rng(5);
    int to3 = 0;
    constexpr int kTrials = 20000;
    for (int i = 0; i < kTrials; ++i) {
      to3 += (walker.biased_step(rng, /*prev=*/1, /*cur=*/2) == 3);
    }
    return to3 / static_cast<double>(kTrials);
  };

  // Expected: (1/q) / (1 + 1 + 1/q).
  EXPECT_NEAR(explore_rate(0.5), 2.0 / 4.0, 0.02);
  EXPECT_NEAR(explore_rate(2.0), 0.5 / 2.5, 0.02);
}

TEST(Walker, RespectsEdgeWeights) {
  // First step from node 0: neighbors 1 (weight 9) and 2 (weight 1).
  const std::vector<Edge> edges = {{0, 1, 9.0f}, {0, 2, 1.0f}};
  const Graph g = Graph::from_edges(3, edges);
  Node2VecParams params;
  params.walk_length = 2;
  params.window = 2;
  Node2VecWalker<Graph> walker(g, params);
  Rng rng(6);
  int heavy = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) heavy += (walker.walk(rng, 0)[1] == 1);
  EXPECT_NEAR(heavy / static_cast<double>(kTrials), 0.9, 0.01);
}

TEST(Walker, WorksOnDynamicGraph) {
  DynamicGraph dg(5);
  dg.add_edge(0, 1);
  dg.add_edge(1, 2);
  Node2VecParams params;
  params.walk_length = 10;
  Node2VecWalker<DynamicGraph> walker(dg, params);
  Rng rng(7);
  auto walk = walker.walk(rng, 0);
  EXPECT_EQ(walk.size(), 10u);
  // Adding an edge immediately affects subsequent walks.
  dg.add_edge(2, 3);
  bool reached3 = false;
  for (int i = 0; i < 50 && !reached3; ++i) {
    for (NodeId v : walker.walk(rng, 0)) reached3 |= (v == 3);
  }
  EXPECT_TRUE(reached3);
}

TEST(RejectionWalker, MatchesOnTheFlyDistribution) {
  // Both strategies must sample the same second-order distribution.
  const LabeledGraph data = generate_dcsbm(
      {.num_nodes = 60, .target_edges = 240, .num_classes = 3, .seed = 8});
  const Graph& g = data.graph;
  Node2VecParams params;
  params.p = 0.5;
  params.q = 2.0;
  Node2VecWalker<Graph> otf(g, params);
  RejectionNode2VecWalker rej(g, params);

  // Pick a (prev, cur) pair with decent degree.
  NodeId cur = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (g.degree(u) >= 4) {
      cur = u;
      break;
    }
  }
  const NodeId prev = g.neighbors(cur)[0];

  constexpr int kTrials = 60000;
  std::map<NodeId, int> otf_counts, rej_counts;
  Rng r1(9), r2(10);
  for (int i = 0; i < kTrials; ++i) {
    ++otf_counts[otf.biased_step(r1, prev, cur)];
    ++rej_counts[rej.biased_step(r2, prev, cur)];
  }
  for (NodeId nbr : g.neighbors(cur)) {
    const double a = otf_counts[nbr] / static_cast<double>(kTrials);
    const double b = rej_counts[nbr] / static_cast<double>(kTrials);
    EXPECT_NEAR(a, b, 0.015) << "neighbor " << nbr;
  }
}

TEST(Windowing, ContextCountMatchesPaper) {
  // l = 80, w = 8 -> 73 contexts (Sec. 4.2).
  EXPECT_EQ(num_contexts(80, 8), 73u);
  EXPECT_EQ(num_contexts(8, 8), 1u);
  EXPECT_EQ(num_contexts(7, 8), 0u);
}

TEST(Windowing, CentersAndPositives) {
  const std::vector<NodeId> walk = {10, 11, 12, 13, 14};
  std::vector<NodeId> centers;
  std::vector<std::size_t> positive_counts;
  for_each_context(std::span<const NodeId>(walk), 3,
                   [&](const WalkContext& ctx) {
                     centers.push_back(ctx.center);
                     positive_counts.push_back(ctx.positives.size());
                   });
  ASSERT_EQ(centers.size(), 3u);
  EXPECT_EQ(centers[0], 10u);
  EXPECT_EQ(centers[2], 12u);
  for (auto c : positive_counts) EXPECT_EQ(c, 2u);
}

TEST(Windowing, FirstContextPositivesFollowCenter) {
  const std::vector<NodeId> walk = {1, 2, 3, 4};
  for_each_context(std::span<const NodeId>(walk), 4,
                   [&](const WalkContext& ctx) {
                     EXPECT_EQ(ctx.center, 1u);
                     ASSERT_EQ(ctx.positives.size(), 3u);
                     EXPECT_EQ(ctx.positives[0], 2u);
                     EXPECT_EQ(ctx.positives[2], 4u);
                   });
}

TEST(Corpus, CountsAndFrequencies) {
  const LabeledGraph data = generate_dcsbm(
      {.num_nodes = 100, .target_edges = 400, .num_classes = 4, .seed = 11});
  Node2VecParams params;
  params.walk_length = 20;
  Rng rng(12);
  const WalkCorpus corpus = generate_corpus(data.graph, params, 3, rng);
  EXPECT_EQ(corpus.walks.size(), 300u);

  std::uint64_t total_visits = 0;
  for (const auto& w : corpus.walks) total_visits += w.size();
  std::uint64_t freq_sum = 0;
  for (auto f : corpus.frequency) freq_sum += f;
  EXPECT_EQ(freq_sum, total_visits);
  EXPECT_EQ(corpus.total_contexts(8), 300u * num_contexts(20, 8));
}

TEST(Corpus, DeterministicVariantIsThreadCountInvariant) {
  // The per-walk-seeded corpus must be identical regardless of OpenMP
  // scheduling — same walks in the same slots for the same seed.
  const LabeledGraph data = generate_dcsbm(
      {.num_nodes = 80, .target_edges = 320, .num_classes = 4, .seed = 21});
  Node2VecParams params;
  params.walk_length = 16;
  const WalkCorpus a =
      generate_corpus_deterministic(data.graph, params, 3, 42);
  const WalkCorpus b =
      generate_corpus_deterministic(data.graph, params, 3, 42);
  ASSERT_EQ(a.walks.size(), b.walks.size());
  for (std::size_t i = 0; i < a.walks.size(); ++i) {
    EXPECT_EQ(a.walks[i], b.walks[i]) << "walk " << i;
  }
  EXPECT_EQ(a.frequency, b.frequency);

  // Different seeds give different corpora.
  const WalkCorpus c =
      generate_corpus_deterministic(data.graph, params, 3, 43);
  bool differs = false;
  for (std::size_t i = 0; i < a.walks.size() && !differs; ++i) {
    differs = (a.walks[i] != c.walks[i]);
  }
  EXPECT_TRUE(differs);
}

TEST(Corpus, DeterministicVariantHasCorrectShape) {
  const Graph g = make_ring(25, 4);
  Node2VecParams params;
  params.walk_length = 12;
  const WalkCorpus corpus = generate_corpus_deterministic(g, params, 4, 7);
  EXPECT_EQ(corpus.walks.size(), 100u);
  std::uint64_t visits = 0;
  for (const auto& w : corpus.walks) {
    EXPECT_EQ(w.size(), 12u);
    visits += w.size();
  }
  std::uint64_t freq = 0;
  for (auto f : corpus.frequency) freq += f;
  EXPECT_EQ(freq, visits);
  // Walk w starts at node w % n.
  EXPECT_EQ(corpus.walks[0][0], 0u);
  EXPECT_EQ(corpus.walks[26][0], 1u);
}

TEST(Corpus, EveryNodeStartsWalks) {
  const Graph g = make_ring(30, 2);
  Node2VecParams params;
  params.walk_length = 5;
  params.window = 2;
  Rng rng(13);
  const WalkCorpus corpus = generate_corpus(g, params, 2, rng);
  std::vector<int> starts(30, 0);
  for (const auto& w : corpus.walks) ++starts[w[0]];
  for (int s : starts) EXPECT_EQ(s, 2);
}

}  // namespace
}  // namespace seqge
