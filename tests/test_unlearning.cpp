// Deletion / unlearning tests: the OS-ELM covariance downdate
// (OselmSkipGram::untrain_walk and the dataflow mirror), the
// EmbeddingModel::untrain_batch adapters, the StreamTrainer's
// delete/expire path, and tombstone visibility in the serving layer.
//
// The core claim gated here: untraining the most recently trained walks
// (LIFO order — what sliding-window expiry produces) reproduces the
// model a from-scratch run over the surviving walks would have built,
// to float round-off (<= 1e-4 per weight at these scales).

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "embedding/model.hpp"
#include "embedding/oselm_dataflow.hpp"
#include "embedding/oselm_skipgram.hpp"
#include "embedding/trainer.hpp"
#include "graph/sliding_window.hpp"
#include "linalg/kernels.hpp"
#include "sampling/negative_sampler.hpp"
#include "serve/embedding_store.hpp"
#include "serve/query_engine.hpp"
#include "serve/sharded_query.hpp"
#include "serve/sharded_store.hpp"
#include "util/rng.hpp"
#include "walk/walk_batch.hpp"

namespace seqge {
namespace {

constexpr std::size_t kDims = 8;
constexpr std::size_t kNodes = 24;
constexpr std::size_t kWindow = 3;

/// Hand-crafted walk set: every context's center is absent from its own
/// positives and from the walk's shared negatives, so the tied-weights
/// self-reference guard never fires and reversal is exact.
struct Stream {
  std::vector<std::vector<NodeId>> walks;
  std::vector<std::vector<NodeId>> negatives;  // shared per walk
};

Stream make_stream() {
  Stream s;
  s.walks = {{0, 1, 2, 3, 4},
             {5, 6, 7, 8, 9},
             {2, 3, 4, 5, 6},
             {10, 11, 0, 1, 12},
             {7, 8, 9, 10, 11}};
  // Centers of walk i are its first walk_len - window + 1 nodes; keep
  // each negative set disjoint from them.
  s.negatives = {{8, 9}, {0, 1}, {9, 1}, {5, 6}, {0, 4}};
  return s;
}

double max_abs_diff(const MatrixF& a, const MatrixF& b) {
  EXPECT_EQ(a.rows(), b.rows());
  EXPECT_EQ(a.cols(), b.cols());
  double m = 0.0;
  auto fa = a.flat();
  auto fb = b.flat();
  for (std::size_t i = 0; i < fa.size(); ++i) {
    m = std::max(m, std::abs(static_cast<double>(fa[i]) - fb[i]));
  }
  return m;
}

// --- Algorithm 1 (OselmSkipGram) -------------------------------------------

TEST(OselmUnlearning, LifoUntrainMatchesFromScratchRetrain) {
  const Stream s = make_stream();
  OselmSkipGram::Options opts;
  opts.dims = kDims;
  // reset_p_per_walk default: beta is the only cross-walk state.
  Rng rng_a(7);
  OselmSkipGram full(kNodes, opts, rng_a);
  for (std::size_t w = 0; w < s.walks.size(); ++w) {
    full.train_walk(s.walks[w], kWindow, s.negatives[w]);
  }
  // Untrain the last two walks, newest first (LIFO).
  for (std::size_t w = s.walks.size(); w-- > 3;) {
    ASSERT_TRUE(full.untrain_walk(s.walks[w], kWindow, s.negatives[w]));
  }

  Rng rng_b(7);  // identical init
  OselmSkipGram survivors(kNodes, opts, rng_b);
  for (std::size_t w = 0; w < 3; ++w) {
    survivors.train_walk(s.walks[w], kWindow, s.negatives[w]);
  }
  EXPECT_LE(max_abs_diff(full.beta_transposed(),
                         survivors.beta_transposed()),
            1e-4);
}

TEST(OselmUnlearning, PersistentModeRestoresBetaAndCovariance) {
  const Stream s = make_stream();
  OselmSkipGram::Options opts;
  opts.dims = kDims;
  opts.reset_p_per_walk = false;  // classic RLS: P carries across walks
  Rng rng_a(11);
  OselmSkipGram full(kNodes, opts, rng_a);
  for (std::size_t w = 0; w < s.walks.size(); ++w) {
    full.train_walk(s.walks[w], kWindow, s.negatives[w]);
  }
  for (std::size_t w = s.walks.size(); w-- > 2;) {
    ASSERT_TRUE(full.untrain_walk(s.walks[w], kWindow, s.negatives[w]));
  }

  Rng rng_b(11);
  OselmSkipGram survivors(kNodes, opts, rng_b);
  for (std::size_t w = 0; w < 2; ++w) {
    survivors.train_walk(s.walks[w], kWindow, s.negatives[w]);
  }
  EXPECT_LE(max_abs_diff(full.beta_transposed(),
                         survivors.beta_transposed()),
            1e-4);
  EXPECT_LE(max_abs_diff(full.covariance(), survivors.covariance()), 1e-4);
}

TEST(OselmUnlearning, ShortWalkIsNoop) {
  OselmSkipGram::Options opts;
  opts.dims = kDims;
  Rng rng(3);
  OselmSkipGram m(kNodes, opts, rng);
  const MatrixF before = m.beta_transposed();
  const std::vector<NodeId> walk = {1, 2};  // shorter than window
  const std::vector<NodeId> negs = {5};
  EXPECT_TRUE(m.untrain_walk(walk, 4, negs));
  EXPECT_EQ(max_abs_diff(m.beta_transposed(), before), 0.0);
}

TEST(OselmUnlearning, ConditioningGuardFiresOnBlownUpCovariance) {
  OselmSkipGram::Options opts;
  opts.dims = kDims;
  opts.reset_p_per_walk = false;
  Rng rng(5);
  OselmSkipGram m(kNodes, opts, rng);
  const std::vector<NodeId> walk = {0, 1, 2};
  const std::vector<NodeId> negs = {7, 8};
  m.train_walk(walk, kWindow, negs);
  // Inflate P so d = 1 - H P H^T goes non-positive: the downdated P
  // would lose positive-definiteness and the guard must refuse.
  m.covariance().set_identity(1e6f);
  EXPECT_FALSE(m.untrain_walk(walk, kWindow, negs));
}

TEST(OselmUnlearning, ConditioningGuardHonorsEps) {
  OselmSkipGram::Options opts;
  opts.dims = kDims;
  Rng rng(6);
  OselmSkipGram m(kNodes, opts, rng);
  const std::vector<NodeId> walk = {0, 1, 2};
  const std::vector<NodeId> negs = {7, 8};
  m.train_walk(walk, kWindow, negs);
  const MatrixF before = m.beta_transposed();
  // d is always <= 1, so eps = 2 trips the guard on the first context —
  // before any mutation, so the model must be untouched.
  EXPECT_FALSE(m.untrain_walk(walk, kWindow, negs, /*eps=*/2.0));
  EXPECT_EQ(max_abs_diff(m.beta_transposed(), before), 0.0);
}

TEST(OselmUnlearning, SelfReferenceGuardInTiedMode) {
  OselmSkipGram::Options opts;
  opts.dims = kDims;
  Rng rng(8);
  OselmSkipGram m(kNodes, opts, rng);
  const std::vector<NodeId> positives = {1, 0};  // center 0 among them
  const std::vector<NodeId> negs = {7};
  WalkContext self_pos{0, positives};
  EXPECT_FALSE(m.untrain_context(self_pos, negs));
  const std::vector<NodeId> neg_center = {5, 0};  // center 0 as negative
  WalkContext ok_pos{0, std::span<const NodeId>(positives).subspan(0, 1)};
  EXPECT_FALSE(m.untrain_context(ok_pos, neg_center));
}

TEST(OselmUnlearning, RandomAlphaModeHasNoSelfReferenceGuard) {
  OselmSkipGram::Options opts;
  opts.dims = kDims;
  opts.random_alpha = true;  // H comes from fixed alpha, not beta
  Rng rng(9);
  OselmSkipGram m(kNodes, opts, rng);
  const std::vector<NodeId> walk = {0, 1, 2};
  const std::vector<NodeId> negs = {0, 7};  // center 0 as negative: fine
  m.train_walk(walk, kWindow, negs);
  EXPECT_TRUE(m.untrain_walk(walk, kWindow, negs));
}

TEST(OselmUnlearning, FusedAndUnfusedUntrainBitIdentical) {
  const Stream s = make_stream();
  OselmSkipGram::Options opts;
  opts.dims = kDims;
  Rng rng_a(13);
  OselmSkipGram fused(kNodes, opts, rng_a);
  Rng rng_b(13);
  OselmSkipGram unfused(kNodes, opts, rng_b);
  unfused.set_force_unfused(true);
  for (std::size_t w = 0; w < s.walks.size(); ++w) {
    fused.train_walk(s.walks[w], kWindow, s.negatives[w]);
    unfused.train_walk(s.walks[w], kWindow, s.negatives[w]);
  }
  for (std::size_t w = s.walks.size(); w-- > 2;) {
    ASSERT_TRUE(fused.untrain_walk(s.walks[w], kWindow, s.negatives[w]));
    ASSERT_TRUE(unfused.untrain_walk(s.walks[w], kWindow, s.negatives[w]));
  }
  auto fa = fused.beta_transposed().flat();
  auto fb = unfused.beta_transposed().flat();
  for (std::size_t i = 0; i < fa.size(); ++i) {
    ASSERT_EQ(fa[i], fb[i]) << "at flat index " << i;
  }
}

// --- Algorithm 2 (dataflow) ------------------------------------------------

TEST(DataflowUnlearning, UntrainRestoresBetaWithinTolerance) {
  const Stream s = make_stream();
  OselmSkipGramDataflow::Options opts;
  opts.dims = kDims;
  Rng rng(17);
  OselmSkipGramDataflow m(kNodes, opts, rng);
  for (std::size_t w = 0; w + 1 < s.walks.size(); ++w) {
    m.train_walk(s.walks[w], kWindow, s.negatives[w]);
  }
  const MatrixF before = m.beta_transposed();
  m.train_walk(s.walks.back(), kWindow, s.negatives.back());
  ASSERT_TRUE(m.untrain_walk(s.walks.back(), kWindow, s.negatives.back()));
  // The dataflow reversal mirrors the frozen-state update against the
  // post-walk beta — second-order error O(mu^2 ||delta||), well under
  // 1e-4 at these scales.
  EXPECT_LE(max_abs_diff(m.beta_transposed(), before), 1e-4);
}

TEST(DataflowUnlearning, PersistentModeRestoresCovariance) {
  const Stream s = make_stream();
  OselmSkipGramDataflow::Options opts;
  opts.dims = kDims;
  opts.reset_p_per_walk = false;
  Rng rng(19);
  OselmSkipGramDataflow m(kNodes, opts, rng);
  m.train_walk(s.walks[0], kWindow, s.negatives[0]);
  const MatrixF beta_before = m.beta_transposed();
  const MatrixF p_before = m.covariance();
  m.train_walk(s.walks[1], kWindow, s.negatives[1]);
  ASSERT_TRUE(m.untrain_walk(s.walks[1], kWindow, s.negatives[1]));
  EXPECT_LE(max_abs_diff(m.beta_transposed(), beta_before), 1e-4);
  EXPECT_LE(max_abs_diff(m.covariance(), p_before), 1e-4);
}

TEST(DataflowUnlearning, GuardLeavesStateBitIdentical) {
  const Stream s = make_stream();
  OselmSkipGramDataflow::Options opts;
  opts.dims = kDims;
  Rng rng(23);
  OselmSkipGramDataflow m(kNodes, opts, rng);
  m.train_walk(s.walks[0], kWindow, s.negatives[0]);
  const MatrixF beta_before = m.beta_transposed();
  const MatrixF p_before = m.covariance();
  // denom = 1 + H P H^T is near 1; eps = 10 trips the guard, and unlike
  // Algorithm 1 the dataflow form commits nothing on failure.
  EXPECT_FALSE(
      m.untrain_walk(s.walks[0], kWindow, s.negatives[0], /*eps=*/10.0));
  EXPECT_EQ(max_abs_diff(m.beta_transposed(), beta_before), 0.0);
  EXPECT_EQ(max_abs_diff(m.covariance(), p_before), 0.0);
}

// --- EmbeddingModel::untrain_batch adapters --------------------------------

WalkBatch pack_stream(const Stream& s, std::size_t from, std::size_t to) {
  WalkBatch batch;
  for (std::size_t w = from; w < to; ++w) {
    batch.add_walk(s.walks[w], s.negatives[w], /*train_seed=*/1000 + w);
  }
  return batch;
}

TEST(UntrainBatch, OselmAdapterReversesLifo) {
  const Stream s = make_stream();
  TrainConfig cfg;
  cfg.dims = kDims;
  cfg.negative_samples = 2;
  cfg.negative_mode = NegativeMode::kPerWalk;
  cfg.walk.window = kWindow;
  cfg.walk.walk_length = 5;
  const std::vector<std::uint64_t> counts(kNodes, 1);
  NegativeSampler sampler(counts);

  Rng rng_a(29);
  auto full = make_model(ModelKind::kOselm, kNodes, cfg, rng_a);
  const WalkBatch head = pack_stream(s, 0, 3);
  const WalkBatch tail = pack_stream(s, 3, s.walks.size());
  full->train_batch(head, kWindow, sampler, 2, NegativeMode::kPerWalk);
  full->train_batch(tail, kWindow, sampler, 2, NegativeMode::kPerWalk);
  EXPECT_TRUE(
      full->untrain_batch(tail, kWindow, sampler, 2, NegativeMode::kPerWalk));

  Rng rng_b(29);
  auto survivors = make_model(ModelKind::kOselm, kNodes, cfg, rng_b);
  survivors->train_batch(head, kWindow, sampler, 2, NegativeMode::kPerWalk);
  EXPECT_LE(max_abs_diff(full->extract_embedding(),
                         survivors->extract_embedding()),
            1e-4);
}

TEST(UntrainBatch, DataflowAdapterReverses) {
  const Stream s = make_stream();
  TrainConfig cfg;
  cfg.dims = kDims;
  cfg.negative_samples = 2;
  cfg.walk.window = kWindow;
  cfg.walk.walk_length = 5;
  const std::vector<std::uint64_t> counts(kNodes, 1);
  NegativeSampler sampler(counts);
  Rng rng(31);
  auto model = make_model(ModelKind::kOselmDataflow, kNodes, cfg, rng);
  const WalkBatch head = pack_stream(s, 0, 4);
  const WalkBatch tail = pack_stream(s, 4, s.walks.size());
  model->train_batch(head, kWindow, sampler, 2, NegativeMode::kPerWalk);
  const MatrixF before = model->extract_embedding();
  model->train_batch(tail, kWindow, sampler, 2, NegativeMode::kPerWalk);
  EXPECT_TRUE(model->untrain_batch(tail, kWindow, sampler, 2,
                                   NegativeMode::kPerWalk));
  EXPECT_LE(max_abs_diff(model->extract_embedding(), before), 1e-4);
}

TEST(UntrainBatch, SgdIsUnsupported) {
  const Stream s = make_stream();
  TrainConfig cfg;
  cfg.dims = kDims;
  cfg.negative_samples = 2;
  cfg.walk.window = kWindow;
  cfg.walk.walk_length = 5;
  const std::vector<std::uint64_t> counts(kNodes, 1);
  NegativeSampler sampler(counts);
  Rng rng(37);
  auto model = make_model(ModelKind::kOriginalSGD, kNodes, cfg, rng);
  const WalkBatch batch = pack_stream(s, 0, 2);
  model->train_batch(batch, kWindow, sampler, 2, NegativeMode::kPerWalk);
  EXPECT_FALSE(model->untrain_batch(batch, kWindow, sampler, 2,
                                    NegativeMode::kPerWalk));
}

TEST(UntrainBatch, RejectsUnpackedNegatives) {
  TrainConfig cfg;
  cfg.dims = kDims;
  cfg.negative_samples = 2;
  cfg.walk.window = kWindow;
  cfg.walk.walk_length = 5;
  const std::vector<std::uint64_t> counts(kNodes, 1);
  NegativeSampler sampler(counts);
  Rng rng(41);
  auto model = make_model(ModelKind::kOselm, kNodes, cfg, rng);
  WalkBatch batch;
  const std::vector<NodeId> walk = {0, 1, 2, 3, 4};
  batch.add_walk(walk, {}, 99);  // no packed negatives
  EXPECT_FALSE(model->untrain_batch(batch, kWindow, sampler, 2,
                                    NegativeMode::kPerWalk));
  EXPECT_FALSE(model->untrain_batch(batch, kWindow, sampler, 2,
                                    NegativeMode::kPerContext));
}

// --- StreamTrainer ----------------------------------------------------------

StreamConfig small_stream_config() {
  StreamConfig cfg;
  cfg.train.dims = kDims;
  cfg.train.negative_samples = 2;
  cfg.train.walk.window = 2;  // positives = successor only: a context
                              // can never contain its own center
  cfg.train.walk.walk_length = 4;
  return cfg;
}

TEST(StreamTrainer, InsertThenRemoveRestoresEmbedding) {
  StreamConfig cfg = small_stream_config();
  // Pure reversal (no neighborhood refresh): this deletion is LIFO, so
  // the downdate alone must restore the pre-insertion state.
  cfg.refresh_after_unlearn = false;
  SlidingWindowGraph graph(kNodes);
  Rng mrng(43);
  auto model = make_model(ModelKind::kOselm, kNodes, cfg.train, mrng);
  Rng srng(44);
  StreamTrainer trainer(*model, graph, cfg, srng);
  for (NodeId u = 0; u + 1 < kNodes; ++u) {
    ASSERT_NE(trainer.insert(u, u + 1, 1.0f, u),
              SlidingWindowGraph::kInvalidToken);
  }
  const MatrixF before = model->extract_embedding();
  const auto base_deleted = trainer.stats().edges_deleted;
  ASSERT_NE(trainer.insert(3, 17, 1.0f, 100),
            SlidingWindowGraph::kInvalidToken);
  ASSERT_TRUE(trainer.remove(3, 17));
  EXPECT_EQ(trainer.stats().edges_deleted, base_deleted + 1);
  EXPECT_FALSE(graph.has_edge(3, 17));
  if (trainer.stats().fallback_retrains == 0) {
    // Exact reversal of the newest walks: the embedding returns to its
    // pre-insertion state to float round-off.
    EXPECT_LE(max_abs_diff(model->extract_embedding(), before), 1e-4);
    EXPECT_EQ(trainer.stats().walks_unlearned, 2u);
  } else {
    // Conditioning guard fired (seed-dependent): the approximate path
    // must still have re-trained the surviving neighborhoods.
    EXPECT_GT(trainer.stats().walks_trained, 2 * (kNodes - 1));
  }
}

TEST(StreamTrainer, ExpiryTombstonesIsolatedNodes) {
  StreamConfig cfg = small_stream_config();
  SlidingWindowGraph::Options wopts;
  wopts.max_age = 10;
  SlidingWindowGraph graph(kNodes, wopts);
  Rng mrng(47);
  auto model = make_model(ModelKind::kOselm, kNodes, cfg.train, mrng);
  Rng srng(48);
  StreamTrainer trainer(*model, graph, cfg, srng);
  // One isolated pair first (the ring is FIFO by stamp), then a hub
  // cluster that stays.
  trainer.insert(20, 21, 1.0f, 5);  // old: expires at now = 40
  for (NodeId u = 1; u <= 6; ++u) trainer.insert(0, u, 1.0f, 50);
  ASSERT_EQ(trainer.advance(40), 1u);
  EXPECT_EQ(graph.degree(20), 0u);
  EXPECT_EQ(graph.degree(21), 0u);
  EXPECT_EQ(trainer.stats().nodes_tombstoned, 2u);
  EXPECT_TRUE(trainer.dead_nodes().count(20) == 1);
  EXPECT_TRUE(trainer.dead_nodes().count(21) == 1);
  // Re-inserting revives both.
  trainer.insert(20, 21, 1.0f, 45);
  EXPECT_TRUE(trainer.dead_nodes().empty());
}

TEST(StreamTrainer, FlushPublishesTombstonesAndOnlySurvivingRows) {
  StreamConfig cfg = small_stream_config();
  serve::ShardedEmbeddingStore store(3);
  cfg.sink = &store;
  SlidingWindowGraph graph(kNodes);
  Rng mrng(53);
  auto model = make_model(ModelKind::kOselm, kNodes, cfg.train, mrng);
  Rng srng(54);
  StreamTrainer trainer(*model, graph, cfg, srng);
  for (NodeId u = 1; u <= 8; ++u) trainer.insert(0, u, 1.0f, u);
  trainer.insert(20, 21, 1.0f, 9);
  trainer.flush();  // first publish: full snapshot + empty dead set
  EXPECT_EQ(store.tombstoned_rows(), 0u);

  ASSERT_TRUE(trainer.remove(20, 21));
  const auto copied_before = store.rows_copied();
  trainer.flush();
  EXPECT_EQ(store.tombstoned_rows(), 2u);
  // The deletion publish copies only touched surviving rows — never the
  // dead ones, never O(n).
  const auto copied = store.rows_copied() - copied_before;
  EXPECT_GT(copied, 0u);
  EXPECT_LT(copied, kNodes);
  serve::ShardedQueryEngine engine(store);
  for (const auto& hit : engine.topk(NodeId{0}, kNodes)) {
    EXPECT_NE(hit.node, NodeId{20});
    EXPECT_NE(hit.node, NodeId{21});
  }

  // Delete-then-reinsert idempotence at the serving layer: the revived
  // pair is served again after the next flush.
  trainer.insert(20, 21, 1.0f, 12);
  trainer.flush();
  EXPECT_EQ(store.tombstoned_rows(), 0u);
  serve::ShardedQueryEngine engine2(store);
  bool saw = false;
  for (const auto& hit : engine2.topk(NodeId{21}, kNodes)) {
    if (hit.node == NodeId{20}) saw = true;
  }
  EXPECT_TRUE(saw);
}

// --- serving-layer tombstones ----------------------------------------------

MatrixF random_matrix(std::size_t rows, std::size_t cols,
                      std::uint64_t seed) {
  MatrixF m(rows, cols);
  Rng rng(seed);
  m.fill_uniform(rng, -1.0, 1.0);
  return m;
}

TEST(Tombstones, ShardedStoreHidesAndRevives) {
  serve::ShardedEmbeddingStore store(4);
  store.publish(random_matrix(32, kDims, 61));
  const auto copied_before = store.rows_copied();
  const std::vector<NodeId> dead = {5, 17};
  store.publish_tombstones(dead);
  // Visibility flips copy zero embedding rows.
  EXPECT_EQ(store.rows_copied(), copied_before);
  EXPECT_EQ(store.tombstoned_rows(), 2u);

  serve::ShardedQueryEngine engine(store);
  const auto hits = engine.topk(NodeId{0}, 32);
  for (const auto& h : hits) {
    EXPECT_NE(h.node, NodeId{5});
    EXPECT_NE(h.node, NodeId{17});
  }
  // Hidden rows shrink the candidate set (self + 2 dead of 32 rows).
  EXPECT_EQ(hits.size(), 32u - 3u);

  // A delta republish of a dead row revives it.
  MatrixF one(1, kDims);
  for (auto& v : one.flat()) v = 0.5f;
  const std::vector<NodeId> touched = {17};
  store.publish_delta(touched, std::move(one));
  EXPECT_EQ(store.tombstoned_rows(), 1u);
  serve::ShardedQueryEngine engine2(store);
  bool saw17 = false;
  for (const auto& h : engine2.topk(NodeId{5}, 32)) {
    if (h.node == NodeId{17}) saw17 = true;
    EXPECT_NE(h.node, NodeId{5});
  }
  EXPECT_TRUE(saw17);

  // A full publish serves everything again.
  store.publish(random_matrix(32, kDims, 62));
  EXPECT_EQ(store.tombstoned_rows(), 0u);
}

TEST(Tombstones, ShardedStoreValidatesAndReplaces) {
  serve::ShardedEmbeddingStore store(2);
  const std::vector<NodeId> some = {1};
  EXPECT_THROW(store.publish_tombstones(some), std::logic_error);
  store.publish(random_matrix(16, kDims, 63));
  const std::vector<NodeId> unsorted = {7, 3};
  EXPECT_THROW(store.publish_tombstones(unsorted), std::invalid_argument);
  const std::vector<NodeId> oob = {99};
  EXPECT_THROW(store.publish_tombstones(oob), std::invalid_argument);

  const std::vector<NodeId> first = {2, 9};
  store.publish_tombstones(first);
  EXPECT_EQ(store.tombstoned_rows(), 2u);
  // Replace, not accumulate: {4} supersedes {2, 9}.
  const std::vector<NodeId> second = {4};
  store.publish_tombstones(second);
  EXPECT_EQ(store.tombstoned_rows(), 1u);
  serve::ShardedQueryEngine engine(store);
  bool saw2 = false;
  for (const auto& h : engine.topk(NodeId{0}, 16)) {
    if (h.node == NodeId{2}) saw2 = true;
    EXPECT_NE(h.node, NodeId{4});
  }
  EXPECT_TRUE(saw2);
}

TEST(Tombstones, QueryEngineFiltersIvfAndQuantPaths) {
  serve::ShardedEmbeddingStore store(1);
  store.publish(random_matrix(64, kDims, 67));
  const std::vector<NodeId> dead = {10, 40};
  store.publish_tombstones(dead);

  serve::ShardedIndexConfig ivf_cfg;
  ivf_cfg.index.kind = serve::IndexConfig::Kind::kIvf;
  ivf_cfg.index.nprobe = 4;
  serve::ShardedQueryEngine ivf_engine(store, ivf_cfg);
  for (const auto& h : ivf_engine.topk(NodeId{10}, 64)) {
    EXPECT_NE(h.node, NodeId{10});
    EXPECT_NE(h.node, NodeId{40});
  }
  serve::ShardedIndexConfig quant_cfg;
  quant_cfg.index.quant = serve::QuantMode::kInt8;
  serve::ShardedQueryEngine quant_engine(store, quant_cfg);
  for (const auto& h : quant_engine.topk(NodeId{10}, 64)) {
    EXPECT_NE(h.node, NodeId{10});
    EXPECT_NE(h.node, NodeId{40});
  }
}

TEST(Tombstones, UnshardedStoreRoundTrip) {
  serve::EmbeddingStore store;
  const std::vector<NodeId> dead = {3};
  store.on_tombstone(dead);  // ignored before the first publish
  EXPECT_EQ(store.version(), 0u);
  store.publish(random_matrix(16, kDims, 71));
  store.on_tombstone(dead);
  EXPECT_EQ(store.version(), 2u);
  const auto snap = store.current();
  ASSERT_TRUE(snap->tombstoned(3));
  serve::QueryEngine engine(snap);
  for (const auto& h : engine.topk(NodeId{0}, 16)) {
    EXPECT_NE(h.node, NodeId{3});
  }
  // Replace with the empty set: everything served again.
  store.on_tombstone({});
  EXPECT_FALSE(store.current()->tombstoned(3));
}

TEST(Tombstones, ConcurrentReadersSeeConsistentSnapshots) {
  // TSan hammer: one publisher alternating deltas and tombstone flips,
  // readers scanning through fresh engines. Every access goes through
  // the RCU heads — no torn bitmaps, no use-after-free.
  serve::ShardedEmbeddingStore store(4);
  store.publish(random_matrix(48, kDims, 73));
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      serve::ShardedQueryEngine engine(store);
      const auto hits = engine.topk(NodeId{1}, 8);
      EXPECT_LE(hits.size(), 8u);
    }
  });
  std::vector<NodeId> dead = {7, 23, 33};
  for (int i = 0; i < 200; ++i) {
    if (i % 2 == 0) {
      store.publish_tombstones(dead);
    } else {
      MatrixF rows = random_matrix(2, kDims, 100 + i);
      const std::vector<NodeId> touched = {7, 40};  // 7 revives
      store.publish_delta(touched, std::move(rows));
    }
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_GE(store.version(), 201u);
}

}  // namespace
}  // namespace seqge
