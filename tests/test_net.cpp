// Network front-end tests: seqge-wire-v1 codec round-trips for every
// message type, strict rejection of malformed / truncated / oversized /
// wrong-version frames, the token-bucket limiter, and loopback
// end-to-end serving — including the bit-identity contract (a served
// answer equals the in-process answer with ==, not near), admission
// statuses (NOT_READY, RATE_LIMITED, OVERLOADED), pipelined
// out-of-order completion, and graceful drain.

#include <gtest/gtest.h>

#include <sys/socket.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/server.hpp"
#include "net/token_bucket.hpp"
#include "net/wire.hpp"
#include "serve/embedding_server.hpp"
#include "serve/embedding_store.hpp"
#include "util/rng.hpp"

namespace seqge::net {
namespace {

MatrixF random_matrix(std::size_t rows, std::size_t cols,
                      std::uint64_t seed) {
  MatrixF m(rows, cols);
  Rng rng(seed);
  for (float& v : m.flat()) {
    v = static_cast<float>(rng.uniform() * 2.0 - 1.0);
  }
  return m;
}

std::shared_ptr<serve::EmbeddingStore> published_store(
    std::size_t nodes = 64, std::size_t dims = 8) {
  auto store = std::make_shared<serve::EmbeddingStore>();
  store->publish(random_matrix(nodes, dims, 99), 123, "test");
  return store;
}

// --- codec round-trips ---------------------------------------------------

Request decode_ok(const std::vector<std::uint8_t>& frame) {
  bool too_large = false;
  const std::size_t fsize = frame_size(frame, kDefaultMaxFrame, &too_large);
  EXPECT_FALSE(too_large);
  EXPECT_EQ(fsize, frame.size());
  Request req;
  const std::span<const std::uint8_t> body(frame.data() + kLenBytes,
                                           frame.size() - kLenBytes);
  EXPECT_EQ(decode_request(body, req), Status::kOk);
  return req;
}

Response decode_resp_ok(const std::vector<std::uint8_t>& frame) {
  bool too_large = false;
  const std::size_t fsize = frame_size(frame, kDefaultMaxFrame, &too_large);
  EXPECT_FALSE(too_large);
  EXPECT_EQ(fsize, frame.size());
  Response resp;
  const std::span<const std::uint8_t> body(frame.data() + kLenBytes,
                                           frame.size() - kLenBytes);
  EXPECT_TRUE(decode_response(body, resp));
  return resp;
}

TEST(Wire, TopKRequestRoundTrip) {
  std::vector<std::uint8_t> f;
  encode_topk_request(f, 77, 42, 10);
  const Request req = decode_ok(f);
  EXPECT_EQ(req.type, MsgType::kTopK);
  EXPECT_EQ(req.id, 77u);
  EXPECT_EQ(req.u, 42u);
  EXPECT_EQ(req.k, 10u);
}

TEST(Wire, ScoreRequestRoundTrip) {
  std::vector<std::uint8_t> f;
  encode_score_request(f, 5, 1, 2, EdgeScore::kHadamardL2);
  const Request req = decode_ok(f);
  EXPECT_EQ(req.type, MsgType::kScore);
  EXPECT_EQ(req.id, 5u);
  EXPECT_EQ(req.u, 1u);
  EXPECT_EQ(req.v, 2u);
  EXPECT_EQ(req.kind, EdgeScore::kHadamardL2);
}

TEST(Wire, TopKBatchRequestRoundTrip) {
  const std::vector<NodeId> nodes{3, 1, 4, 1, 5};
  std::vector<std::uint8_t> f;
  encode_topk_batch_request(f, 9, nodes, 7);
  const Request req = decode_ok(f);
  EXPECT_EQ(req.type, MsgType::kTopKBatch);
  EXPECT_EQ(req.k, 7u);
  EXPECT_EQ(req.nodes, nodes);
}

TEST(Wire, ScoreBatchRequestRoundTrip) {
  const std::vector<std::pair<NodeId, NodeId>> pairs{{1, 2}, {3, 4}};
  std::vector<std::uint8_t> f;
  encode_score_batch_request(f, 11, pairs, EdgeScore::kDot);
  const Request req = decode_ok(f);
  EXPECT_EQ(req.type, MsgType::kScoreBatch);
  EXPECT_EQ(req.kind, EdgeScore::kDot);
  EXPECT_EQ(req.pairs, pairs);
}

TEST(Wire, StatsAndPingRequestsRoundTrip) {
  std::vector<std::uint8_t> f;
  encode_stats_request(f, 1);
  EXPECT_EQ(decode_ok(f).type, MsgType::kStats);
  f.clear();
  encode_ping_request(f, 2);
  EXPECT_EQ(decode_ok(f).type, MsgType::kPing);
}

TEST(Wire, TopKResponseRoundTripBitExact) {
  const std::vector<serve::Neighbor> neigh{{4, 0.25f}, {9, -1.5f},
                                           {2, 1e-30f}};
  std::vector<std::uint8_t> f;
  encode_topk_response(f, 13, 7, neigh);
  const Response resp = decode_resp_ok(f);
  EXPECT_EQ(resp.type, MsgType::kTopK);
  EXPECT_EQ(resp.status, Status::kOk);
  EXPECT_EQ(resp.id, 13u);
  EXPECT_EQ(resp.version, 7u);
  ASSERT_EQ(resp.neighbors.size(), neigh.size());
  for (std::size_t i = 0; i < neigh.size(); ++i) {
    EXPECT_EQ(resp.neighbors[i].node, neigh[i].node);
    EXPECT_EQ(resp.neighbors[i].score, neigh[i].score);  // bit-exact
  }
}

TEST(Wire, ScoreResponseRoundTripBitExact) {
  std::vector<std::uint8_t> f;
  const double score = 0.1234567890123456789;  // not representable
  encode_score_response(f, 21, 3, score);
  const Response resp = decode_resp_ok(f);
  EXPECT_EQ(resp.type, MsgType::kScore);
  EXPECT_EQ(resp.version, 3u);
  EXPECT_EQ(resp.score, score);
}

TEST(Wire, BatchResponsesRoundTrip) {
  const std::vector<std::vector<serve::Neighbor>> results{
      {{1, 0.5f}, {2, 0.25f}}, {}, {{7, -0.125f}}};
  std::vector<std::uint8_t> f;
  encode_topk_batch_response(f, 31, 9, results);
  Response resp = decode_resp_ok(f);
  EXPECT_EQ(resp.type, MsgType::kTopKBatch);
  ASSERT_EQ(resp.batch.size(), 3u);
  EXPECT_EQ(resp.batch[1].size(), 0u);
  EXPECT_EQ(resp.batch[2][0].node, 7u);
  EXPECT_EQ(resp.batch[2][0].score, -0.125f);

  const std::vector<double> scores{0.5, -1.0, 3.25};
  f.clear();
  encode_score_batch_response(f, 32, 9, scores);
  resp = decode_resp_ok(f);
  EXPECT_EQ(resp.type, MsgType::kScoreBatch);
  EXPECT_EQ(resp.scores, scores);
}

TEST(Wire, StatsResponseRoundTrip) {
  ServerStats s;
  s.snapshot_version = 1;
  s.queries_served = 2;
  s.engine_rebuilds = 3;
  s.queue_depth = 4;
  s.queue_capacity = 5;
  s.open_connections = 6;
  s.connections_total = 7;
  s.requests_total = 8;
  s.rejected_overload = 9;
  s.rejected_ratelimit = 10;
  s.bad_frames = 11;
  std::vector<std::uint8_t> f;
  encode_stats_response(f, 41, s);
  const Response resp = decode_resp_ok(f);
  EXPECT_EQ(resp.type, MsgType::kStats);
  EXPECT_EQ(resp.stats.snapshot_version, 1u);
  EXPECT_EQ(resp.stats.queue_capacity, 5u);
  EXPECT_EQ(resp.stats.rejected_ratelimit, 10u);
  EXPECT_EQ(resp.stats.bad_frames, 11u);
}

TEST(Wire, ErrorResponseCarriesStatusAndEmptyPayload) {
  std::vector<std::uint8_t> f;
  encode_error_response(f, MsgType::kTopK, 55, Status::kOverloaded);
  const Response resp = decode_resp_ok(f);
  EXPECT_EQ(resp.type, MsgType::kTopK);
  EXPECT_EQ(resp.status, Status::kOverloaded);
  EXPECT_EQ(resp.id, 55u);
  EXPECT_TRUE(resp.neighbors.empty());
}

// --- strict decoding -----------------------------------------------------

TEST(Wire, IncompleteFrameNeedsMoreBytes) {
  std::vector<std::uint8_t> f;
  encode_topk_request(f, 1, 2, 3);
  bool too_large = false;
  for (std::size_t n = 0; n < f.size(); ++n) {
    const std::span<const std::uint8_t> prefix(f.data(), n);
    EXPECT_EQ(frame_size(prefix, kDefaultMaxFrame, &too_large), 0u);
    EXPECT_FALSE(too_large);
  }
  EXPECT_EQ(frame_size(f, kDefaultMaxFrame, &too_large), f.size());
}

TEST(Wire, OversizedFrameFlagged) {
  std::vector<std::uint8_t> f;
  encode_topk_request(f, 1, 2, 3);
  bool too_large = false;
  // Tiny limit: the announced body no longer fits.
  EXPECT_EQ(frame_size(f, 4, &too_large), 0u);
  EXPECT_TRUE(too_large);
}

TEST(Wire, VersionMismatchRejected) {
  std::vector<std::uint8_t> f;
  encode_topk_request(f, 1, 2, 3);
  f[kLenBytes] = 2;  // version byte
  Request req;
  const std::span<const std::uint8_t> body(f.data() + kLenBytes,
                                           f.size() - kLenBytes);
  EXPECT_EQ(decode_request(body, req), Status::kVersionMismatch);
  EXPECT_EQ(req.id, 1u);  // id still echoed
}

TEST(Wire, GarbageRejectedAsBadRequest) {
  std::vector<std::uint8_t> f;
  encode_topk_request(f, 1, 2, 3);

  auto body = [&](std::vector<std::uint8_t>& frame) {
    return std::span<const std::uint8_t>(frame.data() + kLenBytes,
                                         frame.size() - kLenBytes);
  };
  Request req;

  auto bad = f;
  bad[kLenBytes + 1] = 0x55;  // unknown type
  EXPECT_EQ(decode_request(body(bad), req), Status::kBadRequest);

  bad = f;
  bad[kLenBytes + 1] |= kResponseBit;  // response bit in a request
  EXPECT_EQ(decode_request(body(bad), req), Status::kBadRequest);

  bad = f;
  bad[kLenBytes + 3] = 1;  // non-zero flags
  EXPECT_EQ(decode_request(body(bad), req), Status::kBadRequest);

  bad = f;
  bad.push_back(0);  // trailing payload byte
  EXPECT_EQ(decode_request(body(bad), req), Status::kBadRequest);

  bad = f;
  bad.resize(bad.size() - 2);  // truncated payload
  EXPECT_EQ(decode_request(body(bad), req), Status::kBadRequest);

  // Hostile count: a batch announcing more nodes than the body holds
  // must be rejected before any allocation.
  std::vector<std::uint8_t> batch;
  encode_topk_batch_request(batch, 1, std::vector<NodeId>{1, 2, 3}, 5);
  const std::uint32_t huge = 0x40000000u;
  std::memcpy(batch.data() + kLenBytes + kHeaderBytes + 4, &huge, 4);
  EXPECT_EQ(decode_request(body(batch), req), Status::kBadRequest);

  std::vector<std::uint8_t> score;
  encode_score_request(score, 1, 2, 3, EdgeScore::kDot);
  score[kLenBytes + kHeaderBytes + 8] = 17;  // invalid EdgeScore
  EXPECT_EQ(decode_request(body(score), req), Status::kBadRequest);
}

// --- token bucket --------------------------------------------------------

TEST(TokenBucket, EnforcesRateAndRefills) {
  using Clock = std::chrono::steady_clock;
  const auto t0 = Clock::now();
  TokenBucket bucket(10.0, 2.0, t0);  // 10/s, burst 2
  EXPECT_TRUE(bucket.take(t0));
  EXPECT_TRUE(bucket.take(t0));
  EXPECT_FALSE(bucket.take(t0));  // burst exhausted
  // 100 ms later one token has refilled.
  const auto t1 = t0 + std::chrono::milliseconds(100);
  EXPECT_TRUE(bucket.take(t1));
  EXPECT_FALSE(bucket.take(t1));
  // Refill caps at the burst size however long the idle gap.
  const auto t2 = t1 + std::chrono::hours(1);
  EXPECT_TRUE(bucket.take(t2));
  EXPECT_TRUE(bucket.take(t2));
  EXPECT_FALSE(bucket.take(t2));
}

TEST(TokenBucket, ZeroRateDisables) {
  TokenBucket bucket(0.0, 1.0);
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(bucket.take());
}

// --- loopback end-to-end -------------------------------------------------

struct Loopback {
  explicit Loopback(serve::ServerConfig engine_cfg = {},
                    NetServerConfig net_cfg = {},
                    std::shared_ptr<serve::EmbeddingStore> st = nullptr)
      : store(st != nullptr ? std::move(st) : published_store()),
        engine(store, engine_cfg), server(engine, net_cfg) {
    server.start();
  }
  std::shared_ptr<serve::EmbeddingStore> store;
  serve::EmbeddingServer engine;
  Server server;
};

TEST(NetServer, LoopbackAnswersBitIdenticalToInProcess) {
  Loopback lb;
  Client client("127.0.0.1", lb.server.port());

  for (NodeId u = 0; u < 16; ++u) {
    const serve::TopKResult local = lb.engine.topk(u, 5).get();
    const Response wire = client.topk(u, 5);
    ASSERT_EQ(wire.status, Status::kOk);
    EXPECT_EQ(wire.version, local.version);
    ASSERT_EQ(wire.neighbors.size(), local.neighbors.size());
    for (std::size_t i = 0; i < local.neighbors.size(); ++i) {
      EXPECT_EQ(wire.neighbors[i].node, local.neighbors[i].node);
      // The contract: raw IEEE-754 bits cross the wire, so == holds.
      EXPECT_EQ(wire.neighbors[i].score, local.neighbors[i].score);
    }
  }
  for (const auto kind :
       {EdgeScore::kDot, EdgeScore::kCosine, EdgeScore::kHadamardL2}) {
    const serve::ScoreResult local = lb.engine.score(3, 11, kind).get();
    const Response wire = client.score(3, 11, kind);
    ASSERT_EQ(wire.status, Status::kOk);
    EXPECT_EQ(wire.score, local.score);
  }
}

TEST(NetServer, BatchRequestsMatchInProcess) {
  Loopback lb;
  Client client("127.0.0.1", lb.server.port());

  const std::vector<NodeId> nodes{0, 7, 13, 63};
  const serve::TopKBatchResult local =
      lb.engine.topk_batch(nodes, 4).get();
  const Response wire = client.topk_batch(nodes, 4);
  ASSERT_EQ(wire.status, Status::kOk);
  ASSERT_EQ(wire.batch.size(), local.results.size());
  for (std::size_t i = 0; i < local.results.size(); ++i) {
    ASSERT_EQ(wire.batch[i].size(), local.results[i].size());
    for (std::size_t j = 0; j < local.results[i].size(); ++j) {
      EXPECT_EQ(wire.batch[i][j].node, local.results[i][j].node);
      EXPECT_EQ(wire.batch[i][j].score, local.results[i][j].score);
    }
  }

  const std::vector<std::pair<NodeId, NodeId>> pairs{{0, 1}, {5, 9}};
  const serve::ScoreBatchResult slocal =
      lb.engine.score_batch(pairs, EdgeScore::kCosine).get();
  const Response swire = client.score_batch(pairs, EdgeScore::kCosine);
  ASSERT_EQ(swire.status, Status::kOk);
  EXPECT_EQ(swire.scores, slocal.scores);
}

TEST(NetServer, PipelinedResponsesMatchedByCorrelationId) {
  Loopback lb;
  Client client("127.0.0.1", lb.server.port());

  std::vector<std::uint64_t> ids;
  for (NodeId u = 0; u < 32; ++u) ids.push_back(client.send_topk(u, 3));
  // Collect in reverse order: wait() must park interleaved arrivals.
  for (auto it = ids.rbegin(); it != ids.rend(); ++it) {
    const Response resp = client.wait(*it);
    EXPECT_EQ(resp.id, *it);
    EXPECT_EQ(resp.status, Status::kOk);
  }
  EXPECT_EQ(client.parked(), 0u);
}

TEST(NetServer, PingAndStats) {
  Loopback lb;
  Client client("127.0.0.1", lb.server.port());
  EXPECT_EQ(client.ping().status, Status::kOk);
  (void)client.topk(1, 3);
  const Response st = client.stats();
  ASSERT_EQ(st.status, Status::kOk);
  EXPECT_EQ(st.stats.snapshot_version, 1u);
  EXPECT_EQ(st.stats.open_connections, 1u);
  EXPECT_GE(st.stats.requests_total, 1u);
  EXPECT_EQ(st.stats.queue_capacity, 1024u);
}

TEST(NetServer, NotReadyBeforeFirstPublish) {
  auto empty = std::make_shared<serve::EmbeddingStore>();
  Loopback lb({}, {}, empty);
  Client client("127.0.0.1", lb.server.port());
  EXPECT_EQ(client.topk(0, 3).status, Status::kNotReady);
  EXPECT_EQ(client.ping().status, Status::kOk);  // probes still work
}

TEST(NetServer, RateLimitSheds) {
  NetServerConfig ncfg;
  ncfg.rate_limit_qps = 0.001;  // ~no refill within the test
  ncfg.rate_limit_burst = 3.0;
  Loopback lb({}, ncfg);
  Client client("127.0.0.1", lb.server.port());

  int ok = 0, limited = 0;
  for (int i = 0; i < 10; ++i) {
    const Status s = client.topk(1, 3).status;
    if (s == Status::kOk) ++ok;
    if (s == Status::kRateLimited) ++limited;
  }
  EXPECT_EQ(ok, 3);
  EXPECT_EQ(limited, 7);
  EXPECT_EQ(lb.server.rejected_ratelimit(), 7u);
  // Pings bypass the bucket: the operator can always probe.
  EXPECT_EQ(client.ping().status, Status::kOk);
}

TEST(NetServer, OverloadShedsInsteadOfBlocking) {
  serve::ServerConfig ecfg;
  ecfg.threads = 1;
  ecfg.queue_capacity = 2;
  Loopback lb(ecfg, {}, published_store(512, 32));
  Client client("127.0.0.1", lb.server.port());

  // Pipeline far more work than a 2-slot queue with one worker can
  // hold; each batch occupies the worker long enough for the window to
  // pile up. Every response must be OK or OVERLOADED — never a hang.
  const std::vector<NodeId> nodes = [] {
    std::vector<NodeId> v(64);
    for (std::size_t i = 0; i < v.size(); ++i) {
      v[i] = static_cast<NodeId>(i);
    }
    return v;
  }();
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 64; ++i) {
    ids.push_back(client.send_topk_batch(nodes, 10));
  }
  int ok = 0, shed = 0;
  for (const std::uint64_t id : ids) {
    const Status s = client.wait(id).status;
    if (s == Status::kOk) ++ok;
    if (s == Status::kOverloaded) ++shed;
  }
  EXPECT_EQ(ok + shed, 64);
  EXPECT_GT(ok, 0);
  EXPECT_GT(shed, 0);
  EXPECT_EQ(lb.server.rejected_overload(),
            static_cast<std::uint64_t>(shed));
}

TEST(NetServer, MalformedFramesOverLoopback) {
  NetServerConfig ncfg;
  ncfg.max_frame_bytes = 1024;
  Loopback lb({}, ncfg);

  // A version-2 frame is answered VERSION_MISMATCH and the connection
  // survives (frame boundaries were honored).
  Client client("127.0.0.1", lb.server.port());
  {
    std::vector<std::uint8_t> f;
    encode_topk_request(f, 31, 1, 3);
    f[kLenBytes] = 2;
    Fd raw = connect_tcp("127.0.0.1", lb.server.port());
    ASSERT_EQ(::send(raw.get(), f.data(), f.size(), 0),
              static_cast<ssize_t>(f.size()));
    std::vector<std::uint8_t> buf(4096);
    const ssize_t n = ::recv(raw.get(), buf.data(), buf.size(), 0);
    ASSERT_GT(n, 0);
    buf.resize(static_cast<std::size_t>(n));
    Response resp;
    ASSERT_TRUE(decode_response(
        std::span<const std::uint8_t>(buf.data() + kLenBytes,
                                      buf.size() - kLenBytes),
        resp));
    EXPECT_EQ(resp.status, Status::kVersionMismatch);
    EXPECT_EQ(resp.id, 31u);

    // Same connection, valid frame: still served.
    std::vector<std::uint8_t> good;
    encode_ping_request(good, 32);
    ASSERT_EQ(::send(raw.get(), good.data(), good.size(), 0),
              static_cast<ssize_t>(good.size()));
    const ssize_t n2 = ::recv(raw.get(), buf.data(), 4096, 0);
    EXPECT_GT(n2, 0);
  }

  // An oversized frame is answered FRAME_TOO_LARGE and the connection
  // closed (the stream is no longer frame-aligned).
  {
    Fd raw = connect_tcp("127.0.0.1", lb.server.port());
    std::vector<std::uint8_t> f(kLenBytes);
    const std::uint32_t huge = 1u << 30;
    std::memcpy(f.data(), &huge, 4);
    ASSERT_EQ(::send(raw.get(), f.data(), f.size(), 0),
              static_cast<ssize_t>(f.size()));
    std::vector<std::uint8_t> buf(4096);
    const ssize_t n = ::recv(raw.get(), buf.data(), buf.size(), 0);
    ASSERT_GT(n, 0);
    Response resp;
    ASSERT_TRUE(decode_response(
        std::span<const std::uint8_t>(buf.data() + kLenBytes,
                                      static_cast<std::size_t>(n) -
                                          kLenBytes),
        resp));
    EXPECT_EQ(resp.status, Status::kFrameTooLarge);
    // Then EOF.
    EXPECT_EQ(::recv(raw.get(), buf.data(), buf.size(), 0), 0);
  }

  // Garbage payload inside a well-framed body: BAD_REQUEST.
  {
    const Response bad = [&] {
      std::vector<std::uint8_t> f;
      encode_topk_request(f, 41, 1, 3);
      f.resize(f.size() - 2);  // truncate payload
      const std::uint32_t body_len =
          static_cast<std::uint32_t>(f.size() - kLenBytes);
      std::memcpy(f.data(), &body_len, 4);
      Fd raw = connect_tcp("127.0.0.1", lb.server.port());
      ::send(raw.get(), f.data(), f.size(), 0);
      std::vector<std::uint8_t> buf(4096);
      const ssize_t n = ::recv(raw.get(), buf.data(), buf.size(), 0);
      EXPECT_GT(n, 0);
      Response resp;
      EXPECT_TRUE(decode_response(
          std::span<const std::uint8_t>(buf.data() + kLenBytes,
                                        static_cast<std::size_t>(n) -
                                            kLenBytes),
          resp));
      return resp;
    }();
    EXPECT_EQ(bad.status, Status::kBadRequest);
    EXPECT_EQ(bad.id, 41u);
  }
  EXPECT_GE(lb.server.bad_frames(), 3u);
}

TEST(NetServer, GracefulStopDrainsAndRefusesNewConnections) {
  auto lb = std::make_unique<Loopback>();
  const std::uint16_t port = lb->server.port();
  Client client("127.0.0.1", port);
  for (NodeId u = 0; u < 8; ++u) {
    EXPECT_EQ(client.topk(u, 3).status, Status::kOk);
  }
  EXPECT_EQ(lb->server.stop(), 0u);  // idle server: clean drain
  EXPECT_FALSE(lb->server.running());
  EXPECT_THROW(Client("127.0.0.1", port), std::system_error);
  lb.reset();  // double-stop via destructor is a no-op
}

TEST(NetServer, ConcurrentClientsWithPublishesStayCoherent) {
  // Trainer-style publisher keeps replacing the snapshot while several
  // client threads hammer the front-end; every OK response must carry a
  // version that is monotone per connection and k neighbors.
  Loopback lb;
  std::atomic<bool> stop{false};
  std::thread publisher([&] {
    std::uint64_t walks = 200;
    while (!stop.load(std::memory_order_acquire)) {
      lb.store->publish(random_matrix(64, 8, walks), walks, "pub");
      ++walks;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&, c] {
      Client cl("127.0.0.1", lb.server.port());
      std::uint64_t last_version = 0;
      Rng rng(static_cast<std::uint64_t>(c) + 1);
      for (int i = 0; i < 200; ++i) {
        const Response r =
            cl.topk(static_cast<NodeId>(rng.bounded(64)), 4);
        if (r.status != Status::kOk || r.version < last_version ||
            r.neighbors.size() != 4) {
          failures.fetch_add(1);
        }
        last_version = std::max(last_version, r.version);
      }
    });
  }
  for (auto& th : clients) th.join();
  stop.store(true, std::memory_order_release);
  publisher.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace seqge::net
