// Cross-module integration tests: the full pipeline (generate ->
// walk -> train -> evaluate) for every model including the FPGA
// accelerator, plus the paper's central qualitative claims at reduced
// scale — embeddings are far better than chance, and the sequential
// scenario runs end to end on a dynamic graph.

#include <gtest/gtest.h>

#include "embedding/model.hpp"
#include "embedding/trainer.hpp"
#include "eval/node_classification.hpp"
#include "fpga/accelerator.hpp"
#include "graph/datasets.hpp"
#include "linalg/kernels.hpp"

namespace seqge {
namespace {

struct Pipeline {
  LabeledGraph data;
  TrainConfig cfg;
};

Pipeline small_cora() {
  Pipeline p{make_dataset(DatasetId::kCora, 1, 0.12), {}};
  p.cfg.dims = 16;
  p.cfg.walk.walk_length = 40;
  p.cfg.walks_per_node = 4;
  return p;
}

double chance_level(const LabeledGraph& data) {
  std::vector<std::size_t> counts(data.num_classes, 0);
  for (auto l : data.labels) ++counts[l];
  return static_cast<double>(
             *std::max_element(counts.begin(), counts.end())) /
         static_cast<double>(data.labels.size());
}

TEST(Integration, AllModelsBeatChanceOnCoraTwin) {
  const Pipeline p = small_cora();
  const double chance = chance_level(p.data);

  for (ModelKind kind : {ModelKind::kOriginalSGD, ModelKind::kOselm,
                         ModelKind::kOselmDataflow}) {
    Rng rng(p.cfg.seed);
    auto model =
        make_model(kind, p.data.graph.num_nodes(), p.cfg, rng);
    train_all(*model, p.data.graph, p.cfg, rng);
    const double f1 =
        mean_micro_f1(model->extract_embedding(), p.data.labels,
                      p.data.num_classes, ClassificationConfig{}, 2, 5);
    EXPECT_GT(f1, chance + 0.25) << to_string(kind);
  }
}

TEST(Integration, FpgaAcceleratorBeatsChanceToo) {
  const Pipeline p = small_cora();
  Rng rng(p.cfg.seed);
  fpga::AcceleratorConfig acfg;
  acfg.dims = p.cfg.dims;
  acfg.parallelism = 16;
  acfg.walk_length = p.cfg.walk.walk_length;
  acfg.window = p.cfg.walk.window;
  acfg.negative_samples = p.cfg.negative_samples;
  fpga::Accelerator accel(p.data.graph.num_nodes(), acfg, rng);
  train_all(accel, p.data.graph, p.cfg, rng);
  const double f1 =
      mean_micro_f1(accel.extract_embedding(), p.data.labels,
                    p.data.num_classes, ClassificationConfig{}, 2, 5);
  EXPECT_GT(f1, chance_level(p.data) + 0.25);
  EXPECT_GT(accel.simulated_seconds(), 0.0);
}

TEST(Integration, FpgaMatchesFloatDataflowAccuracyClosely) {
  // Fig. 5's FPGA bars come from the fixed-point dataflow algorithm; the
  // fixed-point quantization must not change accuracy materially.
  const Pipeline p = small_cora();

  Rng rng_f(p.cfg.seed);
  auto flt = make_model(ModelKind::kOselmDataflow,
                        p.data.graph.num_nodes(), p.cfg, rng_f);
  train_all(*flt, p.data.graph, p.cfg, rng_f);
  const double f1_float =
      mean_micro_f1(flt->extract_embedding(), p.data.labels,
                    p.data.num_classes, ClassificationConfig{}, 3, 5);

  Rng rng_x(p.cfg.seed);
  fpga::AcceleratorConfig acfg;
  acfg.dims = p.cfg.dims;
  acfg.parallelism = 16;
  acfg.walk_length = p.cfg.walk.walk_length;
  acfg.window = p.cfg.walk.window;
  acfg.negative_samples = p.cfg.negative_samples;
  fpga::Accelerator accel(p.data.graph.num_nodes(), acfg, rng_x);
  train_all(accel, p.data.graph, p.cfg, rng_x);
  const double f1_fixed =
      mean_micro_f1(accel.extract_embedding(), p.data.labels,
                    p.data.num_classes, ClassificationConfig{}, 3, 5);

  EXPECT_NEAR(f1_fixed, f1_float, 0.08);
}

TEST(Integration, SequentialScenarioEndToEnd) {
  const Pipeline p = small_cora();
  SequentialConfig scfg;
  scfg.train = p.cfg;
  scfg.train.walks_per_node = 2;

  Rng rng(11);
  auto model = make_model(ModelKind::kOselm, p.data.graph.num_nodes(),
                          scfg.train, rng);
  const SequentialResult result =
      train_sequential(*model, p.data.graph, scfg, rng);
  EXPECT_GT(result.insertions, 0u);

  const double f1 =
      mean_micro_f1(model->extract_embedding(), p.data.labels,
                    p.data.num_classes, ClassificationConfig{}, 2, 5);
  EXPECT_GT(f1, chance_level(p.data) + 0.2)
      << "sequentially-trained embedding must be usable";
}

TEST(Integration, SequentialOselmRetainsMoreThanSgdLoses) {
  // The paper's Fig. 6 claim, at reduced scale: in the "seq" scenario
  // the proposed model ends at least as good as the SGD baseline.
  // (At full scale the gap is large; at this scale we assert the
  // direction with a small margin to keep the test robust.)
  const LabeledGraph data = make_dataset(DatasetId::kCora, 3, 0.12);
  SequentialConfig scfg;
  scfg.train.dims = 16;
  scfg.train.walk.walk_length = 40;
  scfg.train.walks_per_node = 2;

  auto run = [&](ModelKind kind) {
    Rng rng(17);
    auto model =
        make_model(kind, data.graph.num_nodes(), scfg.train, rng);
    train_sequential(*model, data.graph, scfg, rng);
    return mean_micro_f1(model->extract_embedding(), data.labels,
                         data.num_classes, ClassificationConfig{}, 3, 5);
  };
  // The paper notes the forgetting gap grows with graph size and dims;
  // at this reduced scale we only require the proposed model to stay in
  // the same accuracy band (the full-scale comparison is
  // bench_fig6_sequential_accuracy).
  const double f1_oselm = run(ModelKind::kOselm);
  const double f1_sgd = run(ModelKind::kOriginalSGD);
  EXPECT_GT(f1_oselm, f1_sgd - 0.15)
      << "oselm=" << f1_oselm << " sgd=" << f1_sgd;
}

TEST(Integration, EmbeddingGroupsSameClassNodes) {
  const Pipeline p = small_cora();
  Rng rng(p.cfg.seed);
  auto model =
      make_model(ModelKind::kOselm, p.data.graph.num_nodes(), p.cfg, rng);
  train_all(*model, p.data.graph, p.cfg, rng);
  const MatrixF emb = model->extract_embedding();

  // Mean cosine similarity within class must exceed across classes.
  Rng pick(3);
  double same_sum = 0, cross_sum = 0;
  int same_n = 0, cross_n = 0;
  for (int i = 0; i < 4000; ++i) {
    const auto a = static_cast<NodeId>(pick.bounded(emb.rows()));
    const auto b = static_cast<NodeId>(pick.bounded(emb.rows()));
    if (a == b) continue;
    const double cs = cosine_similarity(emb.row(a), emb.row(b));
    if (p.data.labels[a] == p.data.labels[b]) {
      same_sum += cs;
      ++same_n;
    } else {
      cross_sum += cs;
      ++cross_n;
    }
  }
  EXPECT_GT(same_sum / same_n, cross_sum / cross_n + 0.05);
}

}  // namespace
}  // namespace seqge
