// Serving subsystem tests: RCU snapshot store under concurrent
// publish/read load, SnapshotSink integration with the trainers, exact
// and IVF k-NN correctness, checkpoint persistence, and the
// multi-threaded EmbeddingServer (results, freshness, graceful drain).

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <future>
#include <sstream>
#include <thread>
#include <vector>

#include "embedding/backend_registry.hpp"
#include "embedding/trainer.hpp"
#include "graph/generators.hpp"
#include "linalg/kernels.hpp"
#include "serve/embedding_server.hpp"
#include "serve/embedding_store.hpp"
#include "serve/query_engine.hpp"
#include "util/rng.hpp"

namespace seqge::serve {
namespace {

MatrixF constant_matrix(std::size_t rows, std::size_t cols, float value) {
  MatrixF m(rows, cols);
  m.fill(value);
  return m;
}

// --- EmbeddingStore -------------------------------------------------------

TEST(EmbeddingStore, VersionsAreMonotonicAndContentsPreserved) {
  EmbeddingStore store;
  EXPECT_EQ(store.version(), 0u);
  EXPECT_EQ(store.current(), nullptr);

  EXPECT_EQ(store.publish(constant_matrix(4, 2, 1.0f), 10, "m"), 1u);
  EXPECT_EQ(store.publish(constant_matrix(4, 2, 2.0f), 20, "m"), 2u);

  const auto snap = store.current();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->version, 2u);
  EXPECT_EQ(snap->walks_trained, 20u);
  EXPECT_EQ(snap->producer, "m");
  EXPECT_EQ(snap->num_nodes(), 4u);
  EXPECT_EQ(snap->dims(), 2u);
  for (float v : snap->embedding.flat()) EXPECT_EQ(v, 2.0f);
}

TEST(EmbeddingStore, EmptyPublishRejected) {
  EmbeddingStore store;
  EXPECT_THROW(store.publish(MatrixF{}), std::invalid_argument);
}

TEST(EmbeddingStore, ReadersKeepOldSnapshotAlive) {
  EmbeddingStore store;
  store.publish(constant_matrix(3, 3, 1.0f));
  const auto held = store.current();
  store.publish(constant_matrix(3, 3, 2.0f));
  // The reader's reference still sees version 1, untouched.
  EXPECT_EQ(held->version, 1u);
  for (float v : held->embedding.flat()) EXPECT_EQ(v, 1.0f);
  EXPECT_EQ(store.current()->version, 2u);
}

TEST(EmbeddingStore, WaitForVersionTimesOutAndSucceeds) {
  EmbeddingStore store;
  EXPECT_FALSE(store.wait_for_version(1, std::chrono::milliseconds(10)));
  std::thread publisher([&] {
    store.publish(constant_matrix(2, 2, 1.0f));
  });
  EXPECT_TRUE(store.wait_for_version(1, std::chrono::milliseconds(2000)));
  publisher.join();
}

// One publisher hammers the store while N readers continuously acquire
// snapshots. Every element of a published matrix equals its version, so
// a torn row — any mix of two versions inside one snapshot — is
// detectable, and per-reader version sequences must be monotonic.
TEST(EmbeddingStore, ConcurrentReadersSeeConsistentSnapshots) {
  constexpr std::size_t kRows = 64;
  constexpr std::size_t kCols = 16;
  constexpr std::uint64_t kPublishes = 300;
  constexpr std::size_t kReaders = 4;

  EmbeddingStore store;
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> torn{0};
  std::atomic<std::uint64_t> non_monotonic{0};
  std::atomic<std::uint64_t> reads{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (std::size_t t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      std::uint64_t last_seen = 0;
      // A minimum iteration count guarantees real reads even if the
      // publisher finishes before this thread is first scheduled.
      for (std::size_t i = 0;
           i < 500 || !done.load(std::memory_order_acquire); ++i) {
        const auto snap = store.current();
        if (snap == nullptr) continue;
        if (snap->version < last_seen) {
          non_monotonic.fetch_add(1);
        }
        last_seen = snap->version;
        const auto expected = static_cast<float>(snap->version);
        for (float v : snap->embedding.flat()) {
          if (v != expected) {
            torn.fetch_add(1);
            break;
          }
        }
        reads.fetch_add(1);
      }
    });
  }

  for (std::uint64_t p = 1; p <= kPublishes; ++p) {
    store.publish(
        constant_matrix(kRows, kCols, static_cast<float>(p)), p, "pub");
  }
  done.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();

  EXPECT_EQ(torn.load(), 0u);
  EXPECT_EQ(non_monotonic.load(), 0u);
  EXPECT_EQ(store.version(), kPublishes);
  EXPECT_GT(reads.load(), 0u);
}

// --- SnapshotSink integration with the trainers ---------------------------

TEST(SnapshotSink, TrainAllPublishesAtCadenceAndFinal) {
  const LabeledGraph data = make_karate_club();
  TrainConfig cfg;
  cfg.dims = 8;
  cfg.seed = 7;

  auto store = std::make_shared<EmbeddingStore>();
  Rng rng(cfg.seed);
  auto model = make_backend("oselm", data.graph.num_nodes(), cfg, rng);

  PipelineConfig pipe;
  pipe.batch_walks = 16;
  pipe.snapshot_every = 2;
  pipe.snapshot_sink = store.get();
  const TrainStats stats = train_all(*model, data.graph, cfg, rng, pipe);

  // Cadence publishes plus the final one.
  EXPECT_EQ(stats.snapshots_published, store->version());
  EXPECT_GE(store->version(), 1u + stats.num_batches / 2);

  const auto snap = store->current();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->producer, model->name());
  EXPECT_EQ(snap->walks_trained, stats.num_walks);
  // Final snapshot is exactly the trained embedding.
  EXPECT_DOUBLE_EQ(
      max_abs_diff(snap->embedding, model->extract_embedding()), 0.0);
}

TEST(SnapshotSink, TrainSequentialPublishesDuringInsertionStream) {
  const LabeledGraph data = make_karate_club();
  TrainConfig cfg;
  cfg.dims = 8;
  cfg.seed = 11;

  auto store = std::make_shared<EmbeddingStore>();
  Rng rng(cfg.seed);
  auto model = make_backend("oselm", data.graph.num_nodes(), cfg, rng);

  SequentialConfig scfg;
  scfg.train = cfg;
  scfg.pipeline.snapshot_sink = store.get();
  scfg.snapshot_every_insertions = 8;
  scfg.max_insertions = 24;
  const SequentialResult result =
      train_sequential(*model, data.graph, scfg, rng);

  // 24 insertions at cadence 8 -> 3 cadence publishes + 1 final.
  EXPECT_EQ(store->version(), result.stats.snapshots_published);
  EXPECT_GE(store->version(), 4u);
  EXPECT_DOUBLE_EQ(
      max_abs_diff(store->current()->embedding, model->extract_embedding()),
      0.0);
}

// --- checkpoint persistence -----------------------------------------------

TEST(EmbeddingStore, CheckpointRoundTripPreservesEmbedding) {
  EmbeddingStore store;
  MatrixF emb(5, 3);
  Rng rng(3);
  emb.fill_uniform(rng, -1.0, 1.0);
  store.publish(MatrixF(emb));

  std::stringstream ss;
  store.save(ss);

  EmbeddingStore restored;
  EXPECT_EQ(restored.load(ss), 1u);
  EXPECT_DOUBLE_EQ(max_abs_diff(restored.current()->embedding, emb), 0.0);
}

TEST(EmbeddingStore, SaveWithoutSnapshotThrows) {
  EmbeddingStore store;
  std::stringstream ss;
  EXPECT_THROW(store.save(ss), std::runtime_error);
}

// --- QueryEngine ----------------------------------------------------------

std::shared_ptr<const Snapshot> toy_snapshot() {
  // 6 nodes in 2-D with obvious cosine structure: 0,1,2 point right-ish,
  // 3,4 point up-ish, 5 points left.
  auto snap = std::make_shared<Snapshot>();
  snap->version = 1;
  snap->embedding = MatrixF(6, 2);
  const float rows[6][2] = {{1.0f, 0.0f}, {2.0f, 0.1f},  {1.0f, 0.2f},
                            {0.0f, 1.0f}, {0.1f, 2.0f},  {-1.0f, 0.0f}};
  for (std::size_t r = 0; r < 6; ++r) {
    snap->embedding(r, 0) = rows[r][0];
    snap->embedding(r, 1) = rows[r][1];
  }
  return snap;
}

TEST(QueryEngine, ExactCosineTopKOrdersAndExcludesSelf) {
  QueryEngine engine(toy_snapshot());
  const auto nn = engine.topk(NodeId{0}, 3);
  ASSERT_EQ(nn.size(), 3u);
  // Node 1 (cos ~0.9988) beats node 2 (cos ~0.9806); never node 0.
  EXPECT_EQ(nn[0].node, 1u);
  EXPECT_EQ(nn[1].node, 2u);
  for (const auto& n : nn) EXPECT_NE(n.node, 0u);
  EXPECT_GE(nn[0].score, nn[1].score);
  EXPECT_GE(nn[1].score, nn[2].score);
}

TEST(QueryEngine, DotRankingDiffersFromCosine) {
  QueryEngine engine(toy_snapshot());
  // Under dot product, node 1's magnitude (2.0) makes it the best match
  // for node 2; under cosine the directions decide.
  const auto dot_nn = engine.topk(NodeId{2}, 1, Similarity::kDot);
  ASSERT_EQ(dot_nn.size(), 1u);
  EXPECT_EQ(dot_nn[0].node, 1u);
  EXPECT_FLOAT_EQ(dot_nn[0].score, 2.0f * 1.0f + 0.1f * 0.2f);
}

TEST(QueryEngine, KClampedToCandidates) {
  QueryEngine engine(toy_snapshot());
  EXPECT_EQ(engine.topk(NodeId{0}, 100).size(), 5u);  // n-1 candidates
  EXPECT_TRUE(engine.topk(NodeId{0}, 0).empty());
}

TEST(QueryEngine, QueryVectorOverloadMatchesNodeOverload) {
  const auto snap = toy_snapshot();
  QueryEngine engine(snap);
  const auto by_node = engine.topk(NodeId{3}, 4);
  const auto by_vec =
      engine.topk(snap->embedding.row(3), 4, Similarity::kCosine, NodeId{3});
  ASSERT_EQ(by_node.size(), by_vec.size());
  for (std::size_t i = 0; i < by_node.size(); ++i) {
    EXPECT_EQ(by_node[i].node, by_vec[i].node);
    EXPECT_FLOAT_EQ(by_node[i].score, by_vec[i].score);
  }
}

TEST(QueryEngine, BadInputsThrow) {
  QueryEngine engine(toy_snapshot());
  EXPECT_THROW(engine.topk(NodeId{99}, 2), std::invalid_argument);
  const std::vector<float> wrong_dims(3, 0.0f);
  EXPECT_THROW(engine.topk(std::span<const float>(wrong_dims), 2),
               std::invalid_argument);
  EXPECT_THROW(QueryEngine(nullptr), std::invalid_argument);
}

TEST(QueryEngine, ScoreMatchesEvalScorer) {
  const auto snap = toy_snapshot();
  QueryEngine engine(snap);
  for (const EdgeScore kind :
       {EdgeScore::kDot, EdgeScore::kCosine, EdgeScore::kHadamardL2}) {
    EXPECT_DOUBLE_EQ(engine.score(0, 3, kind),
                     score_edge(snap->embedding, 0, 3, kind));
  }
}

/// Clustered synthetic embedding: `clusters` well-separated unit-ish
/// directions with small per-point jitter — the regime IVF is built for.
std::shared_ptr<const Snapshot> clustered_snapshot(std::size_t n,
                                                   std::size_t dims,
                                                   std::size_t clusters,
                                                   std::uint64_t seed) {
  Rng rng(seed);
  MatrixF centers(clusters, dims);
  centers.fill_gaussian(rng, 1.0);
  auto snap = std::make_shared<Snapshot>();
  snap->version = 1;
  snap->embedding = MatrixF(n, dims);
  for (std::size_t r = 0; r < n; ++r) {
    const auto c = centers.row(r % clusters);
    auto row = snap->embedding.row(r);
    for (std::size_t d = 0; d < dims; ++d) {
      row[d] = c[d] + static_cast<float>(rng.gaussian() * 0.15);
    }
  }
  return snap;
}

TEST(QueryEngine, IvfFullProbeMatchesExact) {
  const auto snap = clustered_snapshot(500, 16, 10, 5);
  QueryEngine exact(snap);
  IndexConfig ivf_cfg;
  ivf_cfg.kind = IndexConfig::Kind::kIvf;
  ivf_cfg.nlist = 16;
  QueryEngine ivf(snap, ivf_cfg);
  for (NodeId u : {NodeId{0}, NodeId{123}, NodeId{499}}) {
    const auto e = exact.topk(u, 10);
    // nprobe == nlist degenerates to scanning every cell == exact.
    const auto a = ivf.topk(u, 10, Similarity::kCosine, /*nprobe=*/16);
    EXPECT_DOUBLE_EQ(recall_at_k(e, a), 1.0);
  }
}

TEST(QueryEngine, IvfRecallHighOnClusteredData) {
  const auto snap = clustered_snapshot(2000, 32, 20, 9);
  QueryEngine exact(snap);
  IndexConfig ivf_cfg;
  ivf_cfg.kind = IndexConfig::Kind::kIvf;
  ivf_cfg.nlist = 32;
  ivf_cfg.nprobe = 8;
  QueryEngine ivf(snap, ivf_cfg);
  EXPECT_EQ(ivf.nlist(), 32u);

  double recall_sum = 0.0;
  constexpr std::size_t kQueries = 50;
  for (std::size_t q = 0; q < kQueries; ++q) {
    const auto u = static_cast<NodeId>(q * 37 % 2000);
    recall_sum += recall_at_k(exact.topk(u, 10), ivf.topk(u, 10));
  }
  EXPECT_GE(recall_sum / kQueries, 0.9);
}

TEST(QueryEngine, TopKBatchMatchesSingleQueries) {
  const auto snap = clustered_snapshot(300, 8, 6, 2);
  QueryEngine engine(snap);
  const std::vector<NodeId> nodes = {0, 5, 17, 120, 299};
  const auto batch = engine.topk_batch(nodes, 5);
  ASSERT_EQ(batch.size(), nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const auto single = engine.topk(nodes[i], 5);
    ASSERT_EQ(batch[i].size(), single.size());
    for (std::size_t j = 0; j < single.size(); ++j) {
      EXPECT_EQ(batch[i][j].node, single[j].node);
    }
  }
}

// --- EmbeddingServer ------------------------------------------------------

TEST(EmbeddingServer, AnswersMatchDirectEngineAndDrainCounts) {
  auto store = std::make_shared<EmbeddingStore>();
  const auto snap = clustered_snapshot(400, 16, 8, 13);
  store->publish(MatrixF(snap->embedding));

  ServerConfig cfg;
  cfg.threads = 4;
  EmbeddingServer server(store, cfg);

  QueryEngine reference(store->current());
  constexpr std::size_t kRequests = 200;
  std::vector<std::future<TopKResult>> topk_futures;
  std::vector<std::future<ScoreResult>> score_futures;
  for (std::size_t i = 0; i < kRequests; ++i) {
    topk_futures.push_back(server.topk(static_cast<NodeId>(i % 400), 5));
    score_futures.push_back(server.score(static_cast<NodeId>(i % 400),
                                         static_cast<NodeId>((i * 7) % 400)));
  }
  for (std::size_t i = 0; i < kRequests; ++i) {
    TopKResult res = topk_futures[i].get();
    EXPECT_EQ(res.version, 1u);
    const auto expect = reference.topk(static_cast<NodeId>(i % 400), 5);
    ASSERT_EQ(res.neighbors.size(), expect.size());
    for (std::size_t j = 0; j < expect.size(); ++j) {
      EXPECT_EQ(res.neighbors[j].node, expect[j].node);
    }
    ScoreResult sres = score_futures[i].get();
    EXPECT_DOUBLE_EQ(sres.score,
                     reference.score(static_cast<NodeId>(i % 400),
                                     static_cast<NodeId>((i * 7) % 400)));
  }

  server.drain();
  EXPECT_EQ(server.queries_served(), 2 * kRequests);
  EXPECT_EQ(server.engine_rebuilds(), 1u);
  const LatencySummary lat = server.latency();
  EXPECT_EQ(lat.count, 2 * kRequests);
  EXPECT_GT(lat.p50_us, 0.0);
  EXPECT_LE(lat.p50_us, lat.p95_us);
  EXPECT_LE(lat.p95_us, lat.p99_us);
  EXPECT_LE(lat.p99_us, lat.max_us);
}

TEST(EmbeddingServer, ObservesNewSnapshotsAcrossPublishes) {
  auto store = std::make_shared<EmbeddingStore>();
  store->publish(constant_matrix(50, 4, 1.0f));
  ServerConfig cfg;
  cfg.threads = 2;
  EmbeddingServer server(store, cfg);

  EXPECT_EQ(server.topk(0, 3).get().version, 1u);
  store->publish(constant_matrix(50, 4, 2.0f));
  // The next request must be answered from the new version — workers
  // notice the store moved and rebuild exactly once.
  EXPECT_EQ(server.topk(1, 3).get().version, 2u);
  server.drain();
  EXPECT_EQ(server.engine_rebuilds(), 2u);
}

TEST(EmbeddingServer, RequestBeforeFirstPublishFails) {
  auto store = std::make_shared<EmbeddingStore>();
  EmbeddingServer server(store);
  auto fut = server.topk(0, 3);
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(EmbeddingServer, SubmitAfterDrainRejected) {
  auto store = std::make_shared<EmbeddingStore>();
  store->publish(constant_matrix(10, 4, 1.0f));
  EmbeddingServer server(store);
  server.drain();
  EXPECT_TRUE(server.draining());
  EXPECT_THROW(server.topk(0, 3), std::runtime_error);
}

// Queries issued from client threads while a publisher keeps swapping
// snapshots: every answer must come from a complete snapshot (all
// elements equal to the reported version) and versions seen by one
// client never go backwards.
TEST(EmbeddingServer, ConcurrentPublishAndQueryStaysConsistent) {
  auto store = std::make_shared<EmbeddingStore>();
  store->publish(constant_matrix(64, 8, 1.0f));
  ServerConfig cfg;
  cfg.threads = 3;
  EmbeddingServer server(store, cfg);

  std::atomic<bool> stop{false};
  std::thread publisher([&] {
    for (std::uint64_t p = 2; !stop.load(); ++p) {
      store->publish(constant_matrix(64, 8, static_cast<float>(p)));
      std::this_thread::yield();
    }
  });

  std::uint64_t last_version = 0;
  for (std::size_t i = 0; i < 300; ++i) {
    TopKResult res = server.topk(static_cast<NodeId>(i % 64), 3).get();
    EXPECT_GE(res.version, last_version);
    last_version = res.version;
    // All scores derive from a uniform matrix: cosine of identical
    // rows == 1 regardless of version, so just sanity-check shape.
    ASSERT_EQ(res.neighbors.size(), 3u);
  }
  stop.store(true);
  publisher.join();
  server.drain();
  EXPECT_GT(last_version, 0u);
}

TEST(EmbeddingServer, BatchRequestsMatchSingles) {
  auto store = std::make_shared<EmbeddingStore>();
  const auto snap = clustered_snapshot(200, 8, 4, 29);
  store->publish(MatrixF(snap->embedding));
  EmbeddingServer server(store);

  std::vector<NodeId> nodes{0, 17, 42, 199, 42};
  TopKBatchResult batch = server.topk_batch(nodes, 5).get();
  EXPECT_EQ(batch.version, 1u);
  ASSERT_EQ(batch.results.size(), nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const TopKResult single = server.topk(nodes[i], 5).get();
    ASSERT_EQ(batch.results[i].size(), single.neighbors.size());
    for (std::size_t j = 0; j < single.neighbors.size(); ++j) {
      EXPECT_EQ(batch.results[i][j].node, single.neighbors[j].node);
      EXPECT_EQ(batch.results[i][j].score, single.neighbors[j].score);
    }
  }

  std::vector<std::pair<NodeId, NodeId>> pairs{{0, 1}, {17, 42}, {5, 5}};
  ScoreBatchResult sbatch =
      server.score_batch(pairs, EdgeScore::kCosine).get();
  ASSERT_EQ(sbatch.scores.size(), pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const ScoreResult single =
        server.score(pairs[i].first, pairs[i].second, EdgeScore::kCosine)
            .get();
    EXPECT_DOUBLE_EQ(sbatch.scores[i], single.score);
  }
  server.drain();
  // Batches count once per member in the served totals.
  EXPECT_EQ(server.queries_served(), 5u + 5u + 3u + 3u);
}

TEST(EmbeddingServer, TrySubmissionShedsWhenQueueFull) {
  auto store = std::make_shared<EmbeddingStore>();
  store->publish(constant_matrix(600, 32, 1.0f));
  ServerConfig cfg;
  cfg.threads = 1;
  cfg.queue_capacity = 2;
  EmbeddingServer server(store, cfg);

  // Flood far past the 2-slot queue: try_topk must return nullopt
  // (shed) rather than block, and every accepted future must resolve.
  std::vector<std::future<TopKResult>> accepted;
  std::size_t shed = 0;
  for (int i = 0; i < 500; ++i) {
    auto fut = server.try_topk(static_cast<NodeId>(i % 600), 10);
    if (fut) {
      accepted.push_back(std::move(*fut));
    } else {
      ++shed;
    }
  }
  EXPECT_GT(shed, 0u);
  EXPECT_GT(accepted.size(), 0u);
  for (auto& fut : accepted) EXPECT_EQ(fut.get().version, 1u);

  // After drain, try_* sheds instead of throwing (unlike topk()).
  server.drain();
  EXPECT_FALSE(server.try_topk(0, 3).has_value());
  EXPECT_FALSE(server.try_score(0, 1).has_value());
}

TEST(EmbeddingServer, DrainForReportsLeftoverThenCompletes) {
  auto store = std::make_shared<EmbeddingStore>();
  store->publish(constant_matrix(2000, 64, 0.5f));
  ServerConfig cfg;
  cfg.threads = 1;
  EmbeddingServer server(store, cfg);

  // Queue enough brute-force work that a ~0 ms budget cannot finish it.
  std::vector<std::future<TopKBatchResult>> futures;
  std::vector<NodeId> nodes(64);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    nodes[i] = static_cast<NodeId>(i);
  }
  for (int i = 0; i < 50; ++i) {
    futures.push_back(server.topk_batch(nodes, 10));
  }
  const std::size_t left = server.drain_for(std::chrono::milliseconds(0));
  EXPECT_GT(left, 0u);
  EXPECT_TRUE(server.draining());
  // Every accepted promise is still fulfilled after the timeout path.
  for (auto& fut : futures) EXPECT_EQ(fut.get().version, 1u);
  // A second bounded drain now finds nothing pending.
  EXPECT_EQ(server.drain_for(std::chrono::seconds(30)), 0u);
}

TEST(EmbeddingServer, DrainForCleanWhenIdle) {
  auto store = std::make_shared<EmbeddingStore>();
  store->publish(constant_matrix(10, 4, 1.0f));
  EmbeddingServer server(store);
  (void)server.topk(0, 3).get();
  EXPECT_EQ(server.drain_for(std::chrono::seconds(10)), 0u);
  EXPECT_TRUE(server.draining());
}

}  // namespace
}  // namespace seqge::serve
