// Tests for the batch ("all") and dynamic ("seq") training
// orchestrators.

#include <gtest/gtest.h>

#include "embedding/model.hpp"
#include "embedding/trainer.hpp"
#include "graph/components.hpp"
#include "walk/corpus.hpp"
#include "graph/generators.hpp"
#include "linalg/kernels.hpp"
#include "util/rng.hpp"

namespace seqge {
namespace {

LabeledGraph small_graph() {
  return generate_dcsbm(
      {.num_nodes = 120, .target_edges = 600, .num_classes = 3, .seed = 31});
}

TrainConfig small_config() {
  TrainConfig cfg;
  cfg.dims = 8;
  cfg.walk.walk_length = 20;
  cfg.walk.window = 5;
  cfg.walks_per_node = 2;
  cfg.negative_samples = 4;
  return cfg;
}

TEST(TrainAll, StatsAccounting) {
  const LabeledGraph data = small_graph();
  const TrainConfig cfg = small_config();
  Rng rng(1);
  auto model = make_model(ModelKind::kOselm, data.graph.num_nodes(), cfg, rng);
  const TrainStats stats = train_all(*model, data.graph, cfg, rng);

  EXPECT_EQ(stats.num_walks, data.graph.num_nodes() * cfg.walks_per_node);
  // Every walk reaches full length (all nodes have degree >= 1), so the
  // context count is exact.
  EXPECT_EQ(stats.num_contexts,
            stats.num_walks *
                num_contexts(cfg.walk.walk_length, cfg.walk.window));
  EXPECT_GT(stats.train_seconds, 0.0);
  EXPECT_GT(stats.walk_seconds, 0.0);
}

TEST(TrainAll, ChangesTheEmbedding) {
  const LabeledGraph data = small_graph();
  const TrainConfig cfg = small_config();
  Rng rng(2);
  auto model = make_model(ModelKind::kOselm, data.graph.num_nodes(), cfg, rng);
  const MatrixF before = model->extract_embedding();
  train_all(*model, data.graph, cfg, rng);
  const MatrixF after = model->extract_embedding();
  EXPECT_GT(max_abs_diff(before, after), 1e-4);
}

TEST(TrainAll, DeterministicForSameSeed) {
  const LabeledGraph data = small_graph();
  const TrainConfig cfg = small_config();
  MatrixF emb[2];
  for (int t = 0; t < 2; ++t) {
    Rng rng(cfg.seed);
    auto model =
        make_model(ModelKind::kOselm, data.graph.num_nodes(), cfg, rng);
    train_all(*model, data.graph, cfg, rng);
    emb[t] = model->extract_embedding();
  }
  EXPECT_DOUBLE_EQ(max_abs_diff(emb[0], emb[1]), 0.0);
}

TEST(TrainAll, MultiEpochTrainsMore) {
  const LabeledGraph data = small_graph();
  TrainConfig cfg = small_config();
  cfg.epochs = 3;
  Rng rng(3);
  auto model =
      make_model(ModelKind::kOriginalSGD, data.graph.num_nodes(), cfg, rng);
  const TrainStats stats = train_all(*model, data.graph, cfg, rng);
  EXPECT_EQ(stats.num_walks,
            3 * data.graph.num_nodes() * cfg.walks_per_node);
}

TEST(TrainSequential, InsertsEveryRemovedEdge) {
  const LabeledGraph data = small_graph();
  SequentialConfig cfg;
  cfg.train = small_config();
  Rng rng(4);
  auto model =
      make_model(ModelKind::kOselm, data.graph.num_nodes(), cfg.train, rng);
  const SequentialResult result =
      train_sequential(*model, data.graph, cfg, rng);

  const std::size_t cc = count_components(data.graph);
  EXPECT_EQ(result.forest_edges, data.graph.num_nodes() - cc);
  EXPECT_EQ(result.forest_edges + result.removed_edges,
            data.graph.num_edges());
  EXPECT_EQ(result.insertions, result.removed_edges);
  // Initial corpus walks + 2 walks per insertion.
  EXPECT_EQ(result.stats.num_walks,
            data.graph.num_nodes() * cfg.train.walks_per_node +
                2 * result.insertions);
}

TEST(TrainSequential, MaxInsertionsCap) {
  const LabeledGraph data = small_graph();
  SequentialConfig cfg;
  cfg.train = small_config();
  cfg.max_insertions = 10;
  Rng rng(5);
  auto model =
      make_model(ModelKind::kOselm, data.graph.num_nodes(), cfg.train, rng);
  const SequentialResult result =
      train_sequential(*model, data.graph, cfg, rng);
  EXPECT_EQ(result.insertions, 10u);
}

TEST(TrainSequential, InitialWalksOverride) {
  const LabeledGraph data = small_graph();
  SequentialConfig cfg;
  cfg.train = small_config();
  cfg.initial_walks_per_node = 1;
  cfg.max_insertions = 0;
  Rng rng(6);
  auto model =
      make_model(ModelKind::kOselm, data.graph.num_nodes(), cfg.train, rng);
  const SequentialResult result =
      train_sequential(*model, data.graph, cfg, rng);
  EXPECT_EQ(result.stats.num_walks, data.graph.num_nodes());
}

TEST(TrainSequential, SamplerRebuildCadenceMatchesInterval) {
  const LabeledGraph data = small_graph();
  SequentialConfig cfg;
  cfg.train = small_config();
  cfg.max_insertions = 20;
  cfg.sampler_rebuild_interval = 5;
  Rng rng(8);
  auto model =
      make_model(ModelKind::kOselm, data.graph.num_nodes(), cfg.train, rng);
  const SequentialResult result =
      train_sequential(*model, data.graph, cfg, rng);
  ASSERT_EQ(result.insertions, 20u);
  // One rebuild every 5 insertions: exactly 20 / 5.
  EXPECT_EQ(result.stats.sampler_rebuilds, 4u);

  // A longer interval amortizes further.
  SequentialConfig sparse = cfg;
  sparse.sampler_rebuild_interval = 16;
  Rng rng2(8);
  auto model2 =
      make_model(ModelKind::kOselm, data.graph.num_nodes(), cfg.train, rng2);
  const SequentialResult result2 =
      train_sequential(*model2, data.graph, sparse, rng2);
  EXPECT_EQ(result2.stats.sampler_rebuilds, 1u);
}

TEST(TrainSequential, WorksForSgdBaselineToo) {
  const LabeledGraph data = small_graph();
  SequentialConfig cfg;
  cfg.train = small_config();
  cfg.max_insertions = 20;
  Rng rng(7);
  auto model = make_model(ModelKind::kOriginalSGD, data.graph.num_nodes(),
                          cfg.train, rng);
  const SequentialResult result =
      train_sequential(*model, data.graph, cfg, rng);
  EXPECT_EQ(result.insertions, 20u);
  EXPECT_GT(result.stats.num_contexts, 0u);
}

}  // namespace
}  // namespace seqge
