// Tests for the batched, pipelined training engine: train_batch
// semantics (default fallback == looped train_walk; every backend's
// batched override bit-identical to the fallback), pipelined train_all
// bit-identity across walker-thread counts, and clean early-stop
// draining of the bounded queue.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "embedding/backend_registry.hpp"
#include "embedding/trainer.hpp"
#include "fpga/accelerator.hpp"
#include "graph/generators.hpp"
#include "linalg/kernels.hpp"
#include "sampling/negative_sampler.hpp"
#include "util/rng.hpp"
#include "walk/corpus.hpp"
#include "walk/walk_batch.hpp"

namespace seqge {
namespace {

LabeledGraph small_graph() {
  return generate_dcsbm(
      {.num_nodes = 80, .target_edges = 400, .num_classes = 3, .seed = 11});
}

TrainConfig small_config() {
  TrainConfig cfg;
  cfg.dims = 8;
  cfg.walk.walk_length = 20;
  cfg.walk.window = 5;
  cfg.walks_per_node = 2;
  cfg.negative_samples = 4;
  return cfg;
}

/// Walks + a batch with per-walk seeds, as the pipeline producers build
/// them (pre-sampling negatives when the mode shares them per walk).
struct BatchFixture {
  std::vector<std::vector<NodeId>> walks;
  std::vector<std::uint64_t> seeds;
  WalkBatch batch;

  BatchFixture(const Graph& graph, const TrainConfig& cfg,
               const NegativeSampler& sampler, NegativeMode mode,
               std::size_t num_walks) {
    Node2VecWalker<Graph> walker(graph, cfg.walk);
    Rng walk_rng(99);
    std::vector<NodeId> negs;
    for (std::size_t i = 0; i < num_walks; ++i) {
      walks.push_back(walker.walk(
          walk_rng, static_cast<NodeId>(i % graph.num_nodes())));
      seeds.push_back(derive_seed(1234, kTrainSeedStream, i));
      if (mode == NegativeMode::kPerWalk) {
        Rng nrng(seeds.back());
        sampler.sample_batch(nrng, cfg.negative_samples, walks.back()[0],
                             negs);
        batch.add_walk(walks.back(), negs, seeds.back());
      } else {
        batch.add_walk(walks.back(), {}, seeds.back());
      }
    }
  }
};

class TrainBatchMatchesLoop
    : public ::testing::TestWithParam<std::tuple<std::string, NegativeMode>> {
};

TEST_P(TrainBatchMatchesLoop, BatchedEqualsLoopedTrainWalk) {
  const auto& [backend, mode] = GetParam();
  const LabeledGraph data = small_graph();
  TrainConfig cfg = small_config();
  cfg.negative_mode = mode;
  const NegativeSampler sampler = NegativeSampler::from_degrees(data.graph);
  const BatchFixture fx(data.graph, cfg, sampler, mode, 12);

  Rng rng_a(7), rng_b(7);
  auto looped = make_backend(backend, data.graph.num_nodes(), cfg, rng_a);
  auto batched = make_backend(backend, data.graph.num_nodes(), cfg, rng_b);

  double loss_loop = 0.0;
  for (std::size_t i = 0; i < fx.walks.size(); ++i) {
    Rng rng(fx.seeds[i]);
    loss_loop += looped->train_walk(fx.walks[i], cfg.walk.window, sampler,
                                    cfg.negative_samples, mode, rng);
  }
  const double loss_batch = batched->train_batch(
      fx.batch, cfg.walk.window, sampler, cfg.negative_samples, mode);

  EXPECT_DOUBLE_EQ(loss_loop, loss_batch);
  EXPECT_DOUBLE_EQ(max_abs_diff(looped->extract_embedding(),
                                batched->extract_embedding()),
                   0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, TrainBatchMatchesLoop,
    ::testing::Combine(::testing::Values("original-sgd", "oselm",
                                         "oselm-dataflow", "fpga"),
                       ::testing::Values(NegativeMode::kPerContext,
                                         NegativeMode::kPerWalk)),
    [](const auto& info) {
      return std::get<0>(info.param) == "original-sgd"
                 ? (std::get<1>(info.param) == NegativeMode::kPerWalk
                        ? std::string("sgd_perwalk")
                        : std::string("sgd_percontext"))
                 : std::get<0>(info.param) == "oselm"
                       ? (std::get<1>(info.param) == NegativeMode::kPerWalk
                              ? std::string("oselm_perwalk")
                              : std::string("oselm_percontext"))
                       : std::get<0>(info.param) == "oselm-dataflow"
                             ? (std::get<1>(info.param) ==
                                        NegativeMode::kPerWalk
                                    ? std::string("dataflow_perwalk")
                                    : std::string("dataflow_percontext"))
                             : (std::get<1>(info.param) ==
                                        NegativeMode::kPerWalk
                                    ? std::string("fpga_perwalk")
                                    : std::string("fpga_percontext"));
    });

// The FPGA's batched path must also *amortize*: one burst per batch
// moves each distinct row once, so simulated time drops versus looping
// train_walk over the same walks.
TEST(TrainBatchFpga, AmortizesSimulatedDma) {
  const LabeledGraph data = small_graph();
  TrainConfig cfg = small_config();
  cfg.negative_mode = NegativeMode::kPerWalk;
  const NegativeSampler sampler = NegativeSampler::from_degrees(data.graph);
  const BatchFixture fx(data.graph, cfg, sampler, cfg.negative_mode, 12);

  Rng rng_a(7), rng_b(7);
  auto looped = make_backend("fpga", data.graph.num_nodes(), cfg, rng_a);
  auto batched = make_backend("fpga", data.graph.num_nodes(), cfg, rng_b);

  for (std::size_t i = 0; i < fx.walks.size(); ++i) {
    Rng rng(fx.seeds[i]);
    looped->train_walk(fx.walks[i], cfg.walk.window, sampler,
                       cfg.negative_samples, cfg.negative_mode, rng);
  }
  batched->train_batch(fx.batch, cfg.walk.window, sampler,
                       cfg.negative_samples, cfg.negative_mode);

  const auto& accel_loop = dynamic_cast<const fpga::Accelerator&>(*looped);
  const auto& accel_batch = dynamic_cast<const fpga::Accelerator&>(*batched);
  EXPECT_EQ(accel_loop.walks_processed(), accel_batch.walks_processed());
  EXPECT_LT(accel_batch.simulated_seconds(),
            accel_loop.simulated_seconds());
}

// A model that only implements train_walk: the default train_batch must
// visit every walk with its own seed-derived RNG.
TEST(TrainBatchDefault, FallbackLoopsEveryWalk) {
  class CountingModel final : public EmbeddingModel {
   public:
    std::size_t calls = 0;
    double train_walk(std::span<const NodeId>, std::size_t,
                      const NegativeSampler&, std::size_t, NegativeMode,
                      Rng& rng) override {
      ++calls;
      return static_cast<double>(rng.next() % 1000);
    }
    [[nodiscard]] MatrixF extract_embedding() const override {
      return MatrixF(1, 1);
    }
    [[nodiscard]] std::size_t dims() const override { return 1; }
    [[nodiscard]] std::size_t num_nodes() const override { return 1; }
    [[nodiscard]] std::size_t model_bytes() const override { return 0; }
    [[nodiscard]] std::string name() const override { return "counting"; }
  };

  const LabeledGraph data = small_graph();
  const TrainConfig cfg = small_config();
  const NegativeSampler sampler = NegativeSampler::from_degrees(data.graph);
  const BatchFixture fx(data.graph, cfg, sampler, NegativeMode::kPerContext,
                        9);

  CountingModel model;
  const double loss_a = model.train_batch(fx.batch, cfg.walk.window, sampler,
                                          cfg.negative_samples,
                                          NegativeMode::kPerContext);
  EXPECT_EQ(model.calls, 9u);
  // Same batch again: seeds are per-walk, so the reported loss repeats.
  const double loss_b = model.train_batch(fx.batch, cfg.walk.window, sampler,
                                          cfg.negative_samples,
                                          NegativeMode::kPerContext);
  EXPECT_DOUBLE_EQ(loss_a, loss_b);
}

class PipelineBitIdentical
    : public ::testing::TestWithParam<std::tuple<std::string, NegativeMode>> {
};

TEST_P(PipelineBitIdentical, FourWalkerThreadsMatchSingleThread) {
  const auto& [backend, mode] = GetParam();
  const LabeledGraph data = small_graph();
  TrainConfig cfg = small_config();
  cfg.negative_mode = mode;

  auto run = [&](std::size_t threads) {
    Rng rng(cfg.seed);
    auto model = make_backend(backend, data.graph.num_nodes(), cfg, rng);
    PipelineConfig pipe;
    pipe.walker_threads = threads;
    pipe.batch_walks = 16;
    pipe.queue_capacity = 4;
    const TrainStats stats = train_all(*model, data.graph, cfg, rng, pipe);
    return std::make_pair(stats, model->extract_embedding());
  };

  const auto [stats_single, emb_single] = run(0);
  const auto [stats_piped, emb_piped] = run(4);

  EXPECT_EQ(stats_single.num_walks, stats_piped.num_walks);
  EXPECT_EQ(stats_single.num_contexts, stats_piped.num_contexts);
  EXPECT_EQ(stats_single.num_batches, stats_piped.num_batches);
  EXPECT_DOUBLE_EQ(stats_single.last_loss, stats_piped.last_loss);
  EXPECT_DOUBLE_EQ(max_abs_diff(emb_single, emb_piped), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, PipelineBitIdentical,
    ::testing::Values(
        std::make_tuple(std::string("original-sgd"),
                        NegativeMode::kPerContext),
        std::make_tuple(std::string("oselm"), NegativeMode::kPerContext),
        std::make_tuple(std::string("oselm"), NegativeMode::kPerWalk),
        std::make_tuple(std::string("oselm-dataflow"),
                        NegativeMode::kPerWalk)),
    [](const auto& info) {
      std::string n = std::get<0>(info.param) +
                      (std::get<1>(info.param) == NegativeMode::kPerWalk
                           ? "_perwalk"
                           : "_percontext");
      for (char& c : n) {
        if (c == '-') c = '_';
      }
      return n;
    });

TEST(PipelineEarlyStop, BoundedQueueDrainsCleanly) {
  const LabeledGraph data = small_graph();
  const TrainConfig cfg = small_config();

  // Cap mid-batch (37 is not a multiple of batch_walks = 8): the final
  // batch must be truncated, producers unblocked, and the call return
  // without hanging.
  PipelineConfig pipe;
  pipe.walker_threads = 4;
  pipe.batch_walks = 8;
  pipe.queue_capacity = 2;
  pipe.max_walks = 37;

  Rng rng(cfg.seed);
  auto model = make_backend("oselm", data.graph.num_nodes(), cfg, rng);
  const TrainStats stats = train_all(*model, data.graph, cfg, rng, pipe);
  EXPECT_EQ(stats.num_walks, 37u);
  EXPECT_EQ(stats.num_batches, 5u);  // 4 full batches of 8 + one of 5

  // Early stop must match the prefix of an uncapped single-thread run.
  Rng rng_full(cfg.seed);
  auto full = make_backend("oselm", data.graph.num_nodes(), cfg, rng_full);
  PipelineConfig inline_pipe;
  inline_pipe.batch_walks = 8;
  inline_pipe.max_walks = 37;
  const TrainStats stats_inline =
      train_all(*full, data.graph, cfg, rng_full, inline_pipe);
  EXPECT_EQ(stats_inline.num_walks, 37u);
  EXPECT_DOUBLE_EQ(max_abs_diff(model->extract_embedding(),
                                full->extract_embedding()),
                   0.0);
}

TEST(SequentialPipeline, BitIdenticalAcrossThreadCounts) {
  const LabeledGraph data = small_graph();
  SequentialConfig cfg;
  cfg.train = small_config();
  cfg.max_insertions = 30;

  auto run = [&](std::size_t threads) {
    SequentialConfig scfg = cfg;
    scfg.pipeline.walker_threads = threads;
    Rng rng(5);
    auto model =
        make_backend("oselm", data.graph.num_nodes(), scfg.train, rng);
    const SequentialResult r =
        train_sequential(*model, data.graph, scfg, rng);
    return std::make_pair(r, model->extract_embedding());
  };

  const auto [r_single, emb_single] = run(0);
  const auto [r_piped, emb_piped] = run(4);
  EXPECT_EQ(r_single.insertions, r_piped.insertions);
  EXPECT_EQ(r_single.stats.num_walks, r_piped.stats.num_walks);
  EXPECT_DOUBLE_EQ(max_abs_diff(emb_single, emb_piped), 0.0);
}

}  // namespace
}  // namespace seqge
