// Tests for the link-prediction evaluation substrate: AUC correctness
// against hand-computed rankings, non-edge sampling invariants, and an
// end-to-end sanity check that trained embeddings rank held-out edges
// above non-edges.

#include <gtest/gtest.h>

#include "embedding/model.hpp"
#include "embedding/trainer.hpp"
#include "eval/link_prediction.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"
#include "walk/alias_walker.hpp"

namespace seqge {
namespace {

TEST(RocAuc, PerfectSeparation) {
  const std::vector<double> pos = {0.9, 0.8, 0.7};
  const std::vector<double> neg = {0.3, 0.2, 0.1};
  EXPECT_DOUBLE_EQ(roc_auc(pos, neg), 1.0);
  EXPECT_DOUBLE_EQ(roc_auc(neg, pos), 0.0);
}

TEST(RocAuc, RandomScoresGiveHalf) {
  Rng rng(1);
  std::vector<double> pos(2000), neg(2000);
  for (auto& x : pos) x = rng.uniform();
  for (auto& x : neg) x = rng.uniform();
  EXPECT_NEAR(roc_auc(pos, neg), 0.5, 0.03);
}

TEST(RocAuc, TiesCountHalf) {
  const std::vector<double> pos = {0.5};
  const std::vector<double> neg = {0.5};
  EXPECT_DOUBLE_EQ(roc_auc(pos, neg), 0.5);
}

TEST(RocAuc, HandComputedMixedCase) {
  // pos {3, 1}, neg {2, 0}: pairs (3>2),(3>0),(1<2),(1>0) -> 3/4.
  const std::vector<double> pos = {3.0, 1.0};
  const std::vector<double> neg = {2.0, 0.0};
  EXPECT_DOUBLE_EQ(roc_auc(pos, neg), 0.75);
}

TEST(RocAuc, EmptyThrows) {
  const std::vector<double> some = {1.0};
  EXPECT_THROW(roc_auc({}, some), std::invalid_argument);
  EXPECT_THROW(roc_auc(some, {}), std::invalid_argument);
}

TEST(SampleNonEdges, InvariantsHold) {
  const Graph g = make_ring(30, 4);
  Rng rng(2);
  const auto non_edges = sample_non_edges(g, 100, rng);
  EXPECT_EQ(non_edges.size(), 100u);
  std::set<std::pair<NodeId, NodeId>> seen;
  for (const Edge& e : non_edges) {
    EXPECT_NE(e.src, e.dst);
    EXPECT_FALSE(g.has_edge(e.src, e.dst));
    EXPECT_TRUE(seen.emplace(e.src, e.dst).second) << "duplicate non-edge";
  }
}

TEST(SampleNonEdges, TooManyRequestedThrows) {
  const Graph g = make_ring(4, 2);  // 4 nodes, 4 edges, 2 non-edges
  Rng rng(3);
  EXPECT_THROW(sample_non_edges(g, 5, rng), std::invalid_argument);
}

TEST(ScoreEdge, CosineAgreesWithHadamard) {
  Rng rng(4);
  MatrixF emb(4, 8);
  emb.fill_uniform(rng, -1.0, 1.0);
  for (NodeId u = 0; u < 4; ++u) {
    for (NodeId v = 0; v < 4; ++v) {
      EXPECT_NEAR(score_edge(emb, u, v, EdgeScore::kCosine),
                  score_edge(emb, u, v, EdgeScore::kHadamardL2), 1e-6);
    }
  }
}

TEST(LinkPrediction, TrainedEmbeddingBeatsChance) {
  const LabeledGraph data = generate_dcsbm({.num_nodes = 300,
                                            .target_edges = 1800,
                                            .num_classes = 4,
                                            .assortativity = 12.0,
                                            .seed = 5});
  // Hold out 15% of edges.
  Rng rng(6);
  std::vector<Edge> edges = data.graph.edge_list();
  for (std::size_t i = edges.size(); i > 1; --i) {
    std::swap(edges[i - 1], edges[rng.bounded(i)]);
  }
  const std::size_t n_held = edges.size() * 15 / 100;
  std::vector<Edge> held(edges.begin(),
                         edges.begin() + static_cast<std::ptrdiff_t>(n_held));
  const Graph observed = Graph::from_edges(
      data.graph.num_nodes(),
      std::span<const Edge>(edges).subspan(n_held));

  TrainConfig cfg;
  cfg.dims = 16;
  cfg.walk.walk_length = 30;
  cfg.walks_per_node = 5;
  auto model =
      make_model(ModelKind::kOselm, data.graph.num_nodes(), cfg, rng);
  train_all(*model, observed, cfg, rng);

  const double auc = link_prediction_auc(
      model->extract_embedding(), observed, held, EdgeScore::kCosine, rng);
  EXPECT_GT(auc, 0.7) << "held-out edges must rank above non-edges";
}

TEST(AliasWalker, MatchesOnTheFlyDistribution) {
  const LabeledGraph data = generate_dcsbm(
      {.num_nodes = 60, .target_edges = 240, .num_classes = 3, .seed = 8});
  const Graph& g = data.graph;
  Node2VecParams params;
  params.p = 0.5;
  params.q = 2.0;
  Node2VecWalker<Graph> otf(g, params);
  AliasNode2VecWalker alias(g, params);

  NodeId cur = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (g.degree(u) >= 4) {
      cur = u;
      break;
    }
  }
  const NodeId prev = g.neighbors(cur)[0];

  constexpr int kTrials = 60000;
  std::map<NodeId, int> otf_counts, alias_counts;
  Rng r1(9), r2(10);
  for (int i = 0; i < kTrials; ++i) {
    ++otf_counts[otf.biased_step(r1, prev, cur)];
    ++alias_counts[alias.biased_step(r2, prev, cur)];
  }
  for (NodeId nbr : g.neighbors(cur)) {
    const double a = otf_counts[nbr] / static_cast<double>(kTrials);
    const double b = alias_counts[nbr] / static_cast<double>(kTrials);
    EXPECT_NEAR(a, b, 0.015) << "neighbor " << nbr;
  }
}

TEST(AliasWalker, WalkShapeAndConnectivity) {
  const Graph g = make_ring(40, 4);
  Node2VecParams params;
  params.walk_length = 25;
  AliasNode2VecWalker walker(g, params);
  Rng rng(11);
  const auto walk = walker.walk(rng, 7);
  EXPECT_EQ(walk.size(), 25u);
  EXPECT_EQ(walk[0], 7u);
  for (std::size_t i = 1; i < walk.size(); ++i) {
    EXPECT_TRUE(g.has_edge(walk[i - 1], walk[i]));
  }
  EXPECT_GT(walker.table_entries(), 0u);
}

TEST(AliasWalker, BudgetEnforced) {
  const LabeledGraph data = generate_dcsbm(
      {.num_nodes = 200, .target_edges = 2000, .num_classes = 2, .seed = 12});
  EXPECT_THROW(
      AliasNode2VecWalker(data.graph, Node2VecParams{}, /*budget=*/10),
      std::length_error);
}

TEST(AliasWalker, NonEdgeStepThrows) {
  const Graph g = make_ring(10, 2);
  AliasNode2VecWalker walker(g, Node2VecParams{.walk_length = 5, .window = 2});
  Rng rng(13);
  EXPECT_THROW(walker.biased_step(rng, 0, 5), std::invalid_argument);
}

}  // namespace
}  // namespace seqge
