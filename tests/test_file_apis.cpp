// Tests for the path-based persistence APIs (graph I/O and model
// checkpoints on the filesystem) and the FPGA accelerator driving the
// full sequential scenario — the deployment loop an IoT device would
// actually run: restore checkpoint -> stream edges -> save checkpoint.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "embedding/checkpoint.hpp"
#include "embedding/oselm_skipgram.hpp"
#include "embedding/trainer.hpp"
#include "eval/node_classification.hpp"
#include "fpga/accelerator.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "linalg/kernels.hpp"

namespace seqge {
namespace {

class TempDir {
 public:
  TempDir() {
    path_ = std::filesystem::temp_directory_path() /
            ("seqge_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  [[nodiscard]] std::string file(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  std::filesystem::path path_;
};

TEST(FileApis, GraphSaveLoadThroughPath) {
  TempDir dir;
  const LabeledGraph g = generate_dcsbm(
      {.num_nodes = 90, .target_edges = 360, .num_classes = 3, .seed = 1});
  const std::string path = dir.file("graph.txt");
  save_labeled_graph(path, g);
  const LabeledGraph g2 = load_labeled_graph(path);
  EXPECT_EQ(g2.graph.num_nodes(), g.graph.num_nodes());
  EXPECT_EQ(g2.graph.num_edges(), g.graph.num_edges());
  EXPECT_EQ(g2.labels, g.labels);
}

TEST(FileApis, GraphLoadMissingFileThrows) {
  EXPECT_THROW(load_labeled_graph("/nonexistent/path/graph.txt"),
               std::runtime_error);
}

TEST(FileApis, CheckpointSaveLoadThroughPath) {
  TempDir dir;
  Rng rng(2);
  OselmSkipGram::Options opts;
  opts.dims = 8;
  OselmSkipGram model(15, opts, rng);
  const std::string path = dir.file("model.ckpt");
  save_model(path, model);

  Rng rng2(3);
  OselmSkipGram restored(15, opts, rng2);
  load_model(path, restored);
  EXPECT_DOUBLE_EQ(
      max_abs_diff(model.beta_transposed(), restored.beta_transposed()),
      0.0);
}

TEST(FileApis, CheckpointMissingFileThrows) {
  Rng rng(4);
  OselmSkipGram::Options opts;
  opts.dims = 4;
  OselmSkipGram model(5, opts, rng);
  EXPECT_THROW(load_model("/nonexistent/model.ckpt", model),
               std::runtime_error);
  EXPECT_THROW(save_model("/nonexistent/dir/model.ckpt", model),
               std::runtime_error);
}

TEST(FpgaSequential, AcceleratorRunsSeqScenario) {
  // The accelerator as the training engine of the full "seq" loop —
  // exactly the deployment mode the paper targets.
  const LabeledGraph data = generate_dcsbm({.num_nodes = 100,
                                            .target_edges = 500,
                                            .num_classes = 3,
                                            .assortativity = 12.0,
                                            .seed = 5});
  fpga::AcceleratorConfig acfg;
  acfg.dims = 8;
  acfg.parallelism = 8;
  acfg.walk_length = 20;
  acfg.window = 5;
  acfg.negative_samples = 4;

  Rng rng(6);
  fpga::Accelerator accel(data.graph.num_nodes(), acfg, rng);

  SequentialConfig scfg;
  scfg.train.dims = acfg.dims;
  scfg.train.walk.walk_length = acfg.walk_length;
  scfg.train.walk.window = acfg.window;
  scfg.train.negative_samples = acfg.negative_samples;
  scfg.train.walks_per_node = 2;
  scfg.max_insertions = 50;

  const SequentialResult result =
      train_sequential(accel, data.graph, scfg, rng);
  EXPECT_EQ(result.insertions, 50u);
  EXPECT_EQ(accel.walks_processed(), result.stats.num_walks);
  EXPECT_GT(accel.simulated_seconds(), 0.0);

  const double f1 =
      mean_micro_f1(accel.extract_embedding(), data.labels,
                    data.num_classes, ClassificationConfig{}, 2, 7);
  EXPECT_GT(f1, 0.4) << "seq-trained fixed-point embedding must be usable";
}

TEST(FpgaSequential, ShortWalksCostLessSimTime) {
  // Walks in the seq scenario can be shorter than l when they hit
  // degree-0 nodes... on the forest they cannot, but the accelerator's
  // timing must still scale with actual contexts; verify with a
  // hand-fed short walk.
  fpga::AcceleratorConfig acfg;
  acfg.dims = 8;
  acfg.parallelism = 8;
  acfg.walk_length = 20;
  acfg.window = 5;
  acfg.negative_samples = 4;
  Rng rng(8);
  fpga::Accelerator accel(40, acfg, rng);
  const std::vector<std::uint64_t> counts(40, 1);
  NegativeSampler sampler(counts);

  std::vector<NodeId> full_walk(20);
  for (std::size_t i = 0; i < full_walk.size(); ++i) {
    full_walk[i] = static_cast<NodeId>(i);
  }
  accel.train_walk(full_walk, acfg.window, sampler, 4,
                   NegativeMode::kPerWalk, rng);
  const double t_full = accel.last_walk_timing().total_us;

  std::vector<NodeId> short_walk(full_walk.begin(), full_walk.begin() + 8);
  accel.train_walk(short_walk, acfg.window, sampler, 4,
                   NegativeMode::kPerWalk, rng);
  const double t_short = accel.last_walk_timing().total_us;
  EXPECT_LT(t_short, t_full);
}

}  // namespace
}  // namespace seqge
