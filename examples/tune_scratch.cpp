// Scratch probe: "all" vs "seq" accuracy for original-SGD vs OS-ELM at
// moderate scale (Fig. 6 shape exploration).
#include <cstdio>

#include "embedding/backend_registry.hpp"
#include "embedding/trainer.hpp"
#include "eval/node_classification.hpp"
#include "graph/datasets.hpp"
#include "obs/export.hpp"
#include "util/cli.hpp"

using namespace seqge;

int main(int argc, char** argv) {
  double scale = 0.5;
  std::string dataset = "cora";
  std::int64_t dims = 32, r = 10;
  double p0 = 10.0, mu = 0.01;
  ArgParser args("probe");
  args.add_double("scale", &scale, "dataset scale");
  args.add_string("dataset", &dataset, "cora|ampt|amcp");
  args.add_int("dims", &dims, "dims");
  args.add_int("r", &r, "walks per node");
  args.add_double("p0", &p0, "P init");
  args.add_double("mu", &mu, "mu");
  std::string metrics_out;
  args.add_string("metrics-out", &metrics_out,
                  "write a seqge-metrics-v1 JSON dump to this path");
  if (!args.parse(argc, argv)) return 1;

  const LabeledGraph data =
      make_dataset(dataset_from_name(dataset), 1, scale);
  std::printf("twin: %zu nodes %zu edges (scale %.2f)\n",
              data.graph.num_nodes(), data.graph.num_edges(), scale);

  TrainConfig cfg;
  cfg.dims = static_cast<std::size_t>(dims);
  cfg.walks_per_node = static_cast<std::size_t>(r);
  cfg.mu = mu;
  cfg.p0 = p0;

  auto score = [&](EmbeddingModel& m) {
    return mean_micro_f1(m.extract_embedding(), data.labels,
                         data.num_classes, ClassificationConfig{}, 3, 1);
  };

  for (const char* backend : {"original-sgd", "oselm", "oselm-dataflow"}) {
    {
      Rng rng(cfg.seed);
      auto m = make_backend(backend, data.graph.num_nodes(), cfg, rng);
      train_all(*m, data.graph, cfg, rng);
      std::printf("%-14s all  F1=%.3f\n", m->name().c_str(), score(*m));
      std::fflush(stdout);
    }
    {
      Rng rng(cfg.seed);
      SequentialConfig scfg;
      scfg.train = cfg;
      auto m = make_backend(backend, data.graph.num_nodes(), cfg, rng);
      train_sequential(*m, data.graph, scfg, rng);
      std::printf("%-14s seq  F1=%.3f\n", m->name().c_str(), score(*m));
      std::fflush(stdout);
    }
  }
  if (!metrics_out.empty() && !obs::write_metrics_json(metrics_out)) {
    return 1;
  }
  return 0;
}
