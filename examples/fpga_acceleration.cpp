// FPGA acceleration walkthrough: trains the same workload on the CPU
// OS-ELM model and on the simulated accelerator (bit-accurate Q8.24
// core + calibrated cycle/DMA model), then prints the board-level
// story: per-walk latency breakdown (DMA-in / compute / DMA-out),
// end-to-end simulated speedups against the paper's CPU reference
// models, resource utilization of the chosen configuration, and the
// accuracy parity between float and fixed-point training.
//
//   ./examples/fpga_acceleration [--dims 32] [--scale 0.2]

#include <cstdio>
#include <stdexcept>

#include "embedding/backend_registry.hpp"
#include "embedding/trainer.hpp"
#include "eval/node_classification.hpp"
#include "fpga/accelerator.hpp"
#include "fpga/resource_model.hpp"
#include "graph/datasets.hpp"
#include "perfmodel/cpu_model.hpp"
#include "obs/export.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace seqge;

int main(int argc, char** argv) {
  double scale = 0.2;
  std::int64_t dims = 32, seed = 42, threads = 0;
  ArgParser args("fpga_acceleration",
                 "simulated ZCU104 accelerator walkthrough");
  args.add_double("scale", &scale, "cora twin scale factor");
  args.add_int("dims", &dims, "embedding dimensions (32/64/96 calibrated)");
  args.add_int("threads", &threads,
               "walker threads for the training pipeline (0 = inline)");
  args.add_int("seed", &seed, "random seed");
  std::string metrics_out;
  args.add_string("metrics-out", &metrics_out,
                  "write a seqge-metrics-v1 JSON dump to this path");
  if (!args.parse(argc, argv)) return 1;

  const LabeledGraph data =
      make_dataset(DatasetId::kCora, static_cast<std::uint64_t>(seed), scale);
  std::printf("graph: %zu nodes, %zu edges\n\n", data.graph.num_nodes(),
              data.graph.num_edges());

  TrainConfig cfg;
  cfg.dims = static_cast<std::size_t>(dims);
  cfg.seed = static_cast<std::uint64_t>(seed);

  PipelineConfig pipe;
  pipe.walker_threads = static_cast<std::size_t>(threads);

  // --- CPU reference (float Algorithm 2) ------------------------------
  Rng rng_cpu(cfg.seed);
  auto cpu =
      make_backend("oselm-dataflow", data.graph.num_nodes(), cfg, rng_cpu);
  train_all(*cpu, data.graph, cfg, rng_cpu, pipe);
  const double f1_cpu =
      mean_micro_f1(cpu->extract_embedding(), data.labels,
                    data.num_classes, ClassificationConfig{}, 3, cfg.seed);

  // --- Simulated accelerator ------------------------------------------
  Rng rng_fpga(cfg.seed);
  auto fpga_model =
      make_backend("fpga", data.graph.num_nodes(), cfg, rng_fpga);
  const auto& accel = dynamic_cast<const fpga::Accelerator&>(*fpga_model);
  const TrainStats stats =
      train_all(*fpga_model, data.graph, cfg, rng_fpga, pipe);
  const double f1_fpga =
      mean_micro_f1(fpga_model->extract_embedding(), data.labels,
                    data.num_classes, ClassificationConfig{}, 3, cfg.seed);

  // --- Per-walk latency breakdown --------------------------------------
  const fpga::PerfModel pm(accel.config());
  const fpga::WalkTiming t = pm.walk_timing();
  std::printf("per-walk latency @ %.0f MHz, parallelism %zu:\n",
              accel.config().clock_mhz, accel.config().parallelism);
  Table lat({"phase", "microseconds", "bytes"});
  lat.add_row({"DMA in (ids + beta rows + P)", Table::fmt(t.dma_in_us, 1),
               std::to_string(t.bytes_in)});
  lat.add_row({"compute (73 contexts)", Table::fmt(t.compute_us, 1), "-"});
  lat.add_row({"DMA out (beta rows + P)", Table::fmt(t.dma_out_us, 1),
               std::to_string(t.bytes_out)});
  lat.add_row({"control overhead", Table::fmt(t.overhead_us, 1), "-"});
  lat.add_row({"total", Table::fmt(t.total_us, 1), "-"});
  lat.print();

  // --- End-to-end numbers ----------------------------------------------
  const double fpga_ms = t.total_us / 1000.0;
  const double a53_orig =
      perfmodel::a53_original_model().predict_ms(cfg.dims);
  const double a53_prop =
      perfmodel::a53_proposed_model().predict_ms(cfg.dims);
  std::printf("\nend-to-end (%zu walks):\n", stats.num_walks);
  std::printf("  simulated accelerator time : %.3f s\n",
              accel.simulated_seconds());
  std::printf("  speedup vs A53 original    : %.1fx\n", a53_orig / fpga_ms);
  std::printf("  speedup vs A53 proposed    : %.1fx\n", a53_prop / fpga_ms);
  std::printf("  micro-F1 float (CPU)       : %.3f\n", f1_cpu);
  std::printf("  micro-F1 Q8.24 (FPGA)      : %.3f\n", f1_fpga);

  // --- Resource report ---------------------------------------------------
  const fpga::ResourceModel rm;
  const auto usage = rm.estimate(accel.config());
  const auto& dev = rm.device();
  std::printf("\nresources on %s (%s):\n", dev.name.c_str(),
              usage.calibrated ? "calibrated point" : "structural estimate");
  std::printf("  BRAM %zu (%.1f%%), DSP %zu (%.1f%%), FF %zu (%.1f%%), "
              "LUT %zu (%.1f%%)%s\n",
              usage.bram36, usage.bram_pct(dev), usage.dsp,
              usage.dsp_pct(dev), usage.ff, usage.ff_pct(dev), usage.lut,
              usage.lut_pct(dev),
              usage.fits(dev) ? "" : "  ** DOES NOT FIT **");
  if (!metrics_out.empty() && !obs::write_metrics_json(metrics_out)) {
    return 1;
  }
  return 0;
}
