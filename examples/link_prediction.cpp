// Dynamic link prediction (the task of the dynamic-node2vec related
// work, refs [4][5]): hold out a fraction of edges, train the proposed
// sequential model on the observed graph, then rank held-out edges
// against sampled non-edges by embedding similarity (ROC-AUC). Run with
// --update to additionally stream half of the held-out edges in with
// sequential training and watch the AUC on the remainder improve — the
// "embedding keeps up with the graph" story.
//
//   ./examples/link_prediction [--dataset cora] [--scale 0.4]
//                              [--holdout 0.2] [--update]

#include <cstdio>

#include "embedding/backend_registry.hpp"
#include "embedding/trainer.hpp"
#include "eval/link_prediction.hpp"
#include "graph/datasets.hpp"
#include "graph/dynamic_graph.hpp"
#include "obs/export.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "walk/corpus.hpp"
#include "walk/node2vec_walker.hpp"

using namespace seqge;

int main(int argc, char** argv) {
  std::string dataset = "cora", model_name = "oselm";
  double scale = 0.4, holdout = 0.2;
  std::int64_t dims = 32, seed = 42, threads = 0;
  bool update = false;
  ArgParser args("link_prediction",
                 "held-out edge prediction with the sequential model");
  args.add_choice("dataset", &dataset, {"cora", "ampt", "amcp"},
                  "dataset twin");
  args.add_choice("model", &model_name, backend_names(), "training backend");
  args.add_int("threads", &threads,
               "walker threads for the training pipeline (0 = inline)");
  args.add_double("scale", &scale, "dataset scale factor");
  args.add_double("holdout", &holdout, "fraction of edges held out");
  args.add_int("dims", &dims, "embedding dimensions");
  args.add_int("seed", &seed, "random seed");
  args.add_flag("update", &update,
                "stream half of the held-out edges with sequential "
                "training before the final evaluation");
  std::string metrics_out;
  args.add_string("metrics-out", &metrics_out,
                  "write a seqge-metrics-v1 JSON dump to this path");
  if (!args.parse(argc, argv)) return 1;

  const LabeledGraph data =
      make_dataset(dataset_from_name(dataset),
                   static_cast<std::uint64_t>(seed), scale);
  Rng rng(static_cast<std::uint64_t>(seed));

  // Randomized edge split: observed vs held out.
  std::vector<Edge> edges = data.graph.edge_list();
  for (std::size_t i = edges.size(); i > 1; --i) {
    std::swap(edges[i - 1], edges[rng.bounded(i)]);
  }
  const auto n_held =
      static_cast<std::size_t>(static_cast<double>(edges.size()) * holdout);
  std::vector<Edge> held(edges.begin(),
                         edges.begin() + static_cast<std::ptrdiff_t>(n_held));
  std::vector<Edge> observed(edges.begin() +
                                 static_cast<std::ptrdiff_t>(n_held),
                             edges.end());
  const Graph observed_graph =
      Graph::from_edges(data.graph.num_nodes(), observed);
  std::printf("observed %zu edges, held out %zu\n", observed.size(),
              held.size());

  // Train the chosen backend on the observed graph.
  TrainConfig cfg;
  cfg.dims = static_cast<std::size_t>(dims);
  cfg.seed = static_cast<std::uint64_t>(seed);
  auto model = make_backend(model_name, data.graph.num_nodes(), cfg, rng);
  PipelineConfig pipe;
  pipe.walker_threads = static_cast<std::size_t>(threads);
  train_all(*model, observed_graph, cfg, rng, pipe);

  Table table({"stage", "AUC (dot)", "AUC (cosine)"});
  auto auc_row = [&](const std::string& stage, const Graph& g,
                     std::span<const Edge> test_edges) {
    Rng arng(99);
    const MatrixF emb = model->extract_embedding();
    table.add_row({stage,
                   Table::fmt(link_prediction_auc(emb, g, test_edges,
                                                  EdgeScore::kDot, arng)),
                   Table::fmt(link_prediction_auc(
                       emb, g, test_edges, EdgeScore::kCosine, arng))});
  };
  auc_row("after batch training", observed_graph, held);

  if (update) {
    // Stream the first half of the held-out edges with sequential
    // training; evaluate on the untouched second half.
    const std::size_t half = held.size() / 2;
    DynamicGraph dyn = DynamicGraph::from_graph(observed_graph);
    Node2VecWalker<DynamicGraph> walker(dyn, cfg.walk);
    NegativeSampler sampler = NegativeSampler::from_degrees(dyn);
    std::vector<NodeId> walk;
    for (std::size_t i = 0; i < half; ++i) {
      const Edge& e = held[i];
      if (!dyn.add_edge(e.src, e.dst, e.weight)) continue;
      for (NodeId endpoint : {e.src, e.dst}) {
        walker.walk_into(rng, endpoint, walk);
        model->train_walk(walk, cfg.walk.window, sampler,
                          cfg.negative_samples, cfg.negative_mode, rng);
      }
    }
    const std::span<const Edge> rest(held.data() + half,
                                     held.size() - half);
    auc_row("after streaming " + std::to_string(half) + " edges",
            dyn.to_graph(), rest);
  }
  table.print();
  if (!metrics_out.empty() && !obs::write_metrics_json(metrics_out)) {
    return 1;
  }
  return 0;
}
