// Quickstart: train a graph embedding on Zachary's karate club with
// every backend in the registry — the original SGD skip-gram, the
// proposed OS-ELM model (Algorithm 1), its dataflow variant
// (Algorithm 2), and the simulated FPGA accelerator; score each with
// the paper's downstream task (one-vs-rest logistic regression,
// micro-F1) and show nearest neighbors in embedding space.
//
//   ./examples/quickstart [--dims 16] [--walks-per-node 10] [--threads 4]

#include <cstdio>
#include <vector>

#include "embedding/backend_registry.hpp"
#include "embedding/trainer.hpp"
#include "eval/node_classification.hpp"
#include "fpga/accelerator.hpp"
#include "graph/generators.hpp"
#include "linalg/kernels.hpp"
#include "obs/export.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace seqge;

namespace {

double train_and_score(EmbeddingModel& model, const LabeledGraph& data,
                       const TrainConfig& cfg, Rng& rng,
                       const PipelineConfig& pipe) {
  train_all(model, data.graph, cfg, rng, pipe);
  const MatrixF emb = model.extract_embedding();
  return mean_micro_f1(emb, data.labels, data.num_classes,
                       ClassificationConfig{}, /*trials=*/3, cfg.seed);
}

void print_neighbors(const MatrixF& emb, NodeId node, std::size_t k) {
  std::vector<std::pair<double, NodeId>> sims;
  for (NodeId v = 0; v < emb.rows(); ++v) {
    if (v == node) continue;
    sims.emplace_back(cosine_similarity(emb.row(node), emb.row(v)), v);
  }
  std::sort(sims.rbegin(), sims.rend());
  std::printf("  nearest to node %u:", node);
  for (std::size_t i = 0; i < k && i < sims.size(); ++i) {
    std::printf(" %u (%.2f)", sims[i].second, sims[i].first);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::int64_t dims = 16, walks = 10, seed = 42, threads = 0;
  ArgParser args("quickstart", "seqge quickstart on the karate club graph");
  args.add_int("dims", &dims, "embedding dimensions");
  args.add_int("walks-per-node", &walks, "random walks per node (r)");
  args.add_int("threads", &threads,
               "walker threads for the training pipeline (0 = inline)");
  args.add_int("seed", &seed, "random seed");
  std::string metrics_out;
  args.add_string("metrics-out", &metrics_out,
                  "write a seqge-metrics-v1 JSON dump to this path");
  if (!args.parse(argc, argv)) return 1;

  const LabeledGraph data = make_karate_club();
  std::printf("graph: %zu nodes, %zu edges, %zu classes\n",
              data.graph.num_nodes(), data.graph.num_edges(),
              data.num_classes);

  TrainConfig cfg;
  cfg.dims = static_cast<std::size_t>(dims);
  cfg.walks_per_node = static_cast<std::size_t>(walks);
  cfg.walk.walk_length = 40;  // small graph; shorter walks suffice
  cfg.seed = static_cast<std::uint64_t>(seed);

  PipelineConfig pipe;
  pipe.walker_threads = static_cast<std::size_t>(threads);

  Table table({"backend", "model", "micro-F1"});
  MatrixF oselm_embedding;

  for (const std::string& backend : backend_names()) {
    Rng rng(cfg.seed);
    auto model = make_backend(backend, data.graph.num_nodes(), cfg, rng);
    const double f1 = train_and_score(*model, data, cfg, rng, pipe);
    table.add_row({backend, model->name(), Table::fmt(f1)});
    if (backend == "oselm") oselm_embedding = model->extract_embedding();
    if (const auto* accel = dynamic_cast<fpga::Accelerator*>(model.get())) {
      std::printf("fpga simulated training time: %.3f ms (%llu walks)\n",
                  accel->simulated_seconds() * 1e3,
                  static_cast<unsigned long long>(accel->walks_processed()));
    }
  }

  table.print();

  std::printf("embedding-space neighbors (OS-ELM model):\n");
  print_neighbors(oselm_embedding, 0, 5);   // instructor
  print_neighbors(oselm_embedding, 33, 5);  // administrator
  if (!metrics_out.empty() && !obs::write_metrics_json(metrics_out)) {
    return 1;
  }
  return 0;
}
