// Sliding-window IoT stream: device links come and go, and the
// embedding follows BOTH directions. Insertions are trained the usual
// sequential way (two walks per new edge); an edge falling off the
// window — explicitly removed, or expired past --max-age — is
// *unlearned*: the OS-ELM covariance downdate reverses exactly the
// walks the edge once trained, falling back to neighborhood re-training
// when the downdate would lose positive-definiteness. Devices whose
// last link departs are tombstoned in the serving store and vanish from
// top-k answers until they reappear.
//
//   ./examples/sliding_window_stream [--nodes 2000] [--events 6000]
//       [--max-age 800] [--dims 16] [--publish-every 64] [--seed 42]
//       [--metrics-out metrics.json]

#include <cstdio>

#include "embedding/model.hpp"
#include "embedding/trainer.hpp"
#include "graph/sliding_window.hpp"
#include "obs/export.hpp"
#include "serve/sharded_query.hpp"
#include "serve/sharded_store.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace seqge;

int main(int argc, char** argv) {
  std::int64_t nodes = 2000, events = 6000, max_age = 800, dims = 16,
               publish_every = 64, seed = 42;
  std::string metrics_out;
  ArgParser args("sliding_window_stream",
                 "train + unlearn over an expiring edge stream");
  args.add_int("nodes", &nodes, "device count");
  args.add_int("events", &events, "stream events to replay");
  args.add_int("max-age", &max_age, "edge expiry horizon (ticks)");
  args.add_int("dims", &dims, "embedding dimensions");
  args.add_int("publish-every", &publish_every,
               "serving publish cadence (mutations)");
  args.add_int("seed", &seed, "random seed");
  args.add_string("metrics-out", &metrics_out,
                  "write a seqge-metrics-v1 JSON dump to this path");
  if (!args.parse(argc, argv)) return 1;

  const auto n = static_cast<std::size_t>(nodes);
  TrainConfig tcfg;
  tcfg.dims = static_cast<std::size_t>(dims);
  tcfg.seed = static_cast<std::uint64_t>(seed);
  tcfg.walk.walk_length = 12;
  tcfg.walk.window = 3;
  tcfg.negative_samples = 3;
  // Random-alpha OS-ELM (the classic ELM form): the hidden layer comes
  // from fixed random weights, so a walk that revisits its own center —
  // near-certain on hub-and-spoke streams, where walks oscillate around
  // gateways — can still be reversed exactly. The tied-weight variant
  // refuses those reversals (self-reference guard) and would push every
  // deletion onto the fallback re-train path.
  tcfg.random_alpha = true;

  Rng rng(tcfg.seed);
  auto model = make_model(ModelKind::kOselm, n, tcfg, rng);

  SlidingWindowGraph::Options wopts;
  wopts.max_age = static_cast<std::uint64_t>(max_age);
  SlidingWindowGraph graph(n, wopts);

  serve::ShardedEmbeddingStore store(4);
  StreamConfig scfg;
  scfg.train = tcfg;
  scfg.sink = &store;
  scfg.publish_every = static_cast<std::size_t>(publish_every);
  StreamTrainer trainer(*model, graph, scfg, rng);

  // Device links with temporal locality: each tick wires a random
  // device to one of a drifting "hot set" of gateways, so old regions
  // of the graph cool down and age out of the window.
  Table table({"tick", "live edges", "trained", "unlearned", "fallbacks",
               "tombstoned"});
  const auto total = static_cast<std::uint64_t>(events);
  for (std::uint64_t t = 1; t <= total; ++t) {
    const auto gateway =
        static_cast<NodeId>((t / 500 * 97 + rng.bounded(32)) % n);
    const auto device = static_cast<NodeId>(rng.bounded(n));
    trainer.insert(device, gateway, 1.0f, t);
    if (rng.bounded(16) == 0 && graph.num_edges() > 1) {
      // Occasional explicit teardown of a random live neighbor link.
      const auto u = static_cast<NodeId>(rng.bounded(n));
      const auto nbrs = graph.neighbors(u);
      if (!nbrs.empty()) trainer.remove(u, nbrs[rng.bounded(nbrs.size())]);
    }
    if (t % 64 == 0) trainer.advance(t);
    if (t % (total / 6) == 0) {
      const StreamStats& s = trainer.stats();
      table.add_row({std::to_string(t), std::to_string(graph.num_edges()),
                     std::to_string(s.walks_trained),
                     std::to_string(s.walks_unlearned),
                     std::to_string(s.fallback_retrains),
                     std::to_string(trainer.dead_nodes().size())});
    }
  }
  trainer.flush();
  table.print();

  const StreamStats& s = trainer.stats();
  std::printf(
      "\nstream: %zu inserted, %zu deleted; %zu walks trained, %zu "
      "unlearned exactly, %zu fallback re-trains; %zu publishes\n",
      s.edges_inserted, s.edges_deleted, s.walks_trained,
      s.walks_unlearned, s.fallback_retrains, s.publishes);
  std::printf("serving: version %llu, %llu rows tombstoned of %zu\n",
              static_cast<unsigned long long>(store.version()),
              static_cast<unsigned long long>(store.tombstoned_rows()),
              n);

  // Tombstoned devices are invisible to queries until they reconnect.
  serve::ShardedQueryEngine engine(store);
  std::size_t served_dead = 0, probes = 0;
  for (NodeId u = 0; u < n && probes < 32; ++u) {
    if (graph.degree(u) == 0) continue;
    ++probes;
    for (const auto& hit : engine.topk(u, 10)) {
      served_dead += trainer.dead_nodes().count(hit.node);
    }
  }
  std::printf("spot check: %zu top-10 probes served %zu dead devices\n",
              probes, served_dead);

  if (!metrics_out.empty() && !obs::write_metrics_json(metrics_out)) {
    return 1;
  }
  return served_dead == 0 ? 0 : 1;
}
