// Network client walkthrough: connect to a running
// `embedding_server --listen` front-end over seqge-wire-v1
// (src/net/client.hpp), probe it with a ping, print the server's stats,
// then issue a handful of top-k and edge-score queries — including one
// pipelined burst to show out-of-order completion by correlation id.
//
//   ./build/embedding_server --listen --port 7421 &
//   ./build/embedding_client --port 7421 [--host 127.0.0.1]
//       [--queries 20] [--top-k 5] [--seed 1]

#include <cstdio>
#include <vector>

#include "net/client.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace seqge;

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  std::int64_t port = 0, seed = 1;
  std::size_t queries = 20, top_k = 5;
  ArgParser args("embedding_client",
                 "query a seqge-wire-v1 embedding server over TCP");
  args.add_string("host", &host, "server address");
  args.add_int("port", &port, "server port (required)");
  args.add_size("queries", &queries, "top-k queries to issue");
  args.add_size("top-k", &top_k, "neighbors per query");
  args.add_int("seed", &seed, "query-node RNG seed");
  if (!args.parse(argc, argv)) return 1;
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "embedding_client: --port is required\n");
    return 1;
  }

  net::ClientConfig ccfg;
  ccfg.recv_timeout_ms = 10000;
  net::Client client(host, static_cast<std::uint16_t>(port), ccfg);

  const net::Response pong = client.ping();
  if (pong.status != net::Status::kOk) {
    std::fprintf(stderr, "ping failed: %s\n",
                 net::status_name(pong.status));
    return 1;
  }

  const net::Response st = client.stats();
  const net::ServerStats& s = st.stats;
  std::printf(
      "server: snapshot v%llu, %llu queries served, queue %llu/%llu, "
      "%llu open connection(s)\n",
      static_cast<unsigned long long>(s.snapshot_version),
      static_cast<unsigned long long>(s.queries_served),
      static_cast<unsigned long long>(s.queue_depth),
      static_cast<unsigned long long>(s.queue_capacity),
      static_cast<unsigned long long>(s.open_connections));

  // The stats response tells us nothing about the node-id range, so
  // spread queries over a small prefix — every graph has node 0.
  Rng rng(static_cast<std::uint64_t>(seed));
  Table table({"node", "status", "version",
               "top-" + std::to_string(top_k) + " neighbors"});
  std::size_t ok = 0, shed = 0;
  for (std::size_t i = 0; i < queries; ++i) {
    const auto u = static_cast<NodeId>(rng.bounded(256));
    const net::Response r =
        client.topk(u, static_cast<std::uint32_t>(top_k));
    if (r.status == net::Status::kOk) {
      ++ok;
    } else {
      ++shed;
    }
    if (i < 8) {
      std::string ids;
      for (const auto& n : r.neighbors) {
        if (!ids.empty()) ids += " ";
        ids += std::to_string(n.node);
      }
      table.add_row({std::to_string(u), net::status_name(r.status),
                     std::to_string(r.version), ids});
    }
  }
  table.print();

  // Pipelined burst: fire first, collect by correlation id after.
  std::vector<std::uint64_t> ids;
  for (std::size_t i = 0; i < 8; ++i) {
    ids.push_back(client.send_topk(static_cast<NodeId>(i),
                                   static_cast<std::uint32_t>(top_k)));
  }
  std::size_t burst_ok = 0;
  for (const std::uint64_t id : ids) {
    if (client.wait(id).status == net::Status::kOk) ++burst_ok;
  }

  const net::Response edge =
      client.score(0, 1, EdgeScore::kCosine);
  std::printf(
      "\n%zu/%zu sync queries ok (%zu shed), %zu/8 pipelined ok; "
      "score(0,1) = %.6f [%s]\n",
      ok, ok + shed, shed, burst_ok, edge.score,
      net::status_name(edge.status));
  return 0;
}
