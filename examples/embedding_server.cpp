// Online serving walkthrough: the FPGA-accelerated trainer grows a
// DynamicGraph edge by edge (the paper's "seq" scenario) and publishes
// embedding snapshots into an EmbeddingStore at a configurable cadence,
// while a client thread queries an EmbeddingServer for nearest
// neighbors the whole time. The freshness table shows the snapshot
// version each query batch was answered from advancing as training
// proceeds — the embedding never goes offline to retrain.
//
//   ./examples/embedding_server [--model fpga] [--nodes 300]
//       [--top-k 5] [--serve-threads 2] [--snapshot-every 64]

#include <atomic>
#include <cstdio>
#include <thread>

#include "embedding/backend_registry.hpp"
#include "embedding/trainer.hpp"
#include "graph/generators.hpp"
#include "serve/embedding_server.hpp"
#include "serve/embedding_store.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace seqge;

int main(int argc, char** argv) {
  std::string model_name = "fpga";
  std::int64_t nodes = 300, ba_edges = 3, dims = 16, seed = 42;
  std::size_t top_k = 5, serve_threads = 2, snapshot_every = 64;
  std::size_t max_insertions = 400, walks_per_node = 3;
  ArgParser args("embedding_server",
                 "train online on a growing graph while serving k-NN "
                 "queries against versioned embedding snapshots");
  args.add_choice("model", &model_name, backend_names(), "training backend");
  args.add_int("nodes", &nodes, "BA graph nodes");
  args.add_int("ba-edges", &ba_edges, "BA attachment edges per node");
  args.add_int("dims", &dims, "embedding dimensions");
  args.add_size("top-k", &top_k, "neighbors per query");
  args.add_size("serve-threads", &serve_threads, "server worker threads");
  args.add_size("snapshot-every", &snapshot_every,
                "publish a snapshot every this many edge insertions");
  args.add_size("max-insertions", &max_insertions,
                "cap on streamed edge insertions");
  args.add_size("walks-per-node", &walks_per_node,
                "walks per node for the initial forest phase");
  args.add_int("seed", &seed, "random seed");
  if (!args.parse(argc, argv)) return 1;

  const Graph graph =
      make_barabasi_albert(static_cast<std::size_t>(nodes),
                           static_cast<std::size_t>(ba_edges),
                           static_cast<std::uint64_t>(seed));
  std::printf("BA graph: %zu nodes, %zu edges; backend %s\n",
              graph.num_nodes(), graph.num_edges(), model_name.c_str());

  TrainConfig cfg;
  cfg.dims = static_cast<std::size_t>(dims);
  cfg.seed = static_cast<std::uint64_t>(seed);
  cfg.negative_mode = NegativeMode::kPerWalk;
  // Short walks keep the bit-accurate FPGA simulation interactive.
  cfg.walk.walk_length = 20;
  cfg.walk.window = 4;
  cfg.negative_samples = 5;

  auto store = std::make_shared<serve::EmbeddingStore>();

  // Producer: sequential training on the growing graph, publishing into
  // the store every `snapshot_every` insertions (plus the final state).
  SequentialResult result;
  std::atomic<bool> trainer_done{false};
  std::thread trainer([&] {
    Rng rng(cfg.seed);
    auto model = make_backend(model_name, graph.num_nodes(), cfg, rng);
    SequentialConfig scfg;
    scfg.train = cfg;
    scfg.initial_walks_per_node = walks_per_node;
    scfg.max_insertions = max_insertions;
    scfg.pipeline.snapshot_sink = store.get();
    scfg.snapshot_every_insertions = snapshot_every;
    result = train_sequential(*model, graph, scfg, rng);
    trainer_done.store(true, std::memory_order_release);
  });

  // Consumer: wait for the first snapshot, then keep querying while the
  // trainer runs.
  if (!store->wait_for_version(1, std::chrono::minutes(10))) {
    std::fprintf(stderr, "no snapshot published — trainer stuck?\n");
    trainer.join();
    return 1;
  }

  serve::ServerConfig srv_cfg;
  srv_cfg.threads = serve_threads;
  serve::EmbeddingServer server(store, srv_cfg);

  Table table({"query", "snapshot version", "walks trained",
               "top-" + std::to_string(top_k) + " of node 0",
               "latency (us)"});
  Rng qrng(static_cast<std::uint64_t>(seed) + 1);
  std::size_t queries = 0;
  WallTimer clock;
  std::uint64_t last_version = 0;
  while (!trainer_done.load(std::memory_order_acquire)) {
    const auto u = static_cast<NodeId>(qrng.bounded(graph.num_nodes()));
    WallTimer lat;
    serve::TopKResult res = server.topk(u, top_k).get();
    const double lat_us = lat.millis() * 1000.0;
    ++queries;

    // Report one row per freshly observed snapshot version (with the
    // neighbors of node 0 so consecutive rows are comparable).
    if (res.version != last_version) {
      last_version = res.version;
      serve::TopKResult probe = server.topk(0, top_k).get();
      ++queries;
      std::string ids;
      for (const auto& n : probe.neighbors) {
        if (!ids.empty()) ids += " ";
        ids += std::to_string(n.node);
      }
      const auto snap = store->current();
      table.add_row({std::to_string(queries), std::to_string(res.version),
                     std::to_string(snap->walks_trained), ids,
                     Table::fmt(lat_us, 1)});
    }
  }
  trainer.join();

  // A few final queries against the finished embedding.
  for (int i = 0; i < 50; ++i) {
    server.topk(static_cast<NodeId>(qrng.bounded(graph.num_nodes())), top_k)
        .get();
    queries += 1;
  }
  server.drain();

  table.print();
  const serve::LatencySummary lat = server.latency();
  std::printf(
      "\ntrained %zu insertions (%zu walks) while serving %llu queries "
      "in %.2f s\n",
      result.insertions, result.stats.num_walks,
      static_cast<unsigned long long>(server.queries_served()),
      clock.seconds());
  std::printf(
      "snapshots published: %llu; query latency p50 %.0f us, p95 %.0f us, "
      "p99 %.0f us (n=%zu)\n",
      static_cast<unsigned long long>(store->version()), lat.p50_us,
      lat.p95_us, lat.p99_us, lat.count);
  return 0;
}
