// Online serving walkthrough: the FPGA-accelerated trainer grows a
// DynamicGraph edge by edge (the paper's "seq" scenario) and publishes
// embedding snapshots into a snapshot store at a configurable cadence,
// while a client thread queries an EmbeddingServer for nearest
// neighbors the whole time. The freshness table shows the snapshot
// version each query batch was answered from advancing as training
// proceeds — the embedding never goes offline to retrain.
//
// With --shards > 1 the store is a ShardedEmbeddingStore: the trainer's
// cadence publications arrive as copy-on-write row deltas
// (SnapshotSink::on_delta), so each publish copies only the rows the
// recent insertions touched, and the server fans queries out across the
// per-shard snapshots. --shards 1 (default) keeps the single-snapshot
// EmbeddingStore.
//
// --quant int8 switches the engines to the int8 quantized candidate
// scan with float re-rank (serve/quantized_store.hpp); --scan-threads N
// fans the sharded exact scan out over N threads (bit-identical to the
// sequential scan).
//
// With --listen the process becomes a network server instead of
// running the in-process query loop: after the first snapshot it binds
// a seqge-wire-v1 TCP front-end (src/net/server.hpp) and serves
// external clients (examples/embedding_client, bench/bench_net) until
// SIGTERM/SIGINT or --listen-for-s elapses, then drains gracefully and
// exits 0. --port-file writes the bound port (useful with --port 0).
//
//   ./examples/embedding_server [--model fpga] [--nodes 300]
//       [--top-k 5] [--serve-threads 2] [--snapshot-every 64]
//       [--shards 4] [--quant int8|none] [--scan-threads 2]
//       [--metrics-out metrics.json [--metrics-period-ms 1000]]
//       [--listen [--port 7421] [--listen-for-s 30] [--net-workers 2]
//        [--rate-limit-qps 0] [--max-conns 256] [--port-file path]]

#include <csignal>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <thread>

#include "embedding/backend_registry.hpp"
#include "embedding/trainer.hpp"
#include "graph/generators.hpp"
#include "net/server.hpp"
#include "obs/export.hpp"
#include "serve/embedding_server.hpp"
#include "serve/embedding_store.hpp"
#include "serve/sharded_store.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace seqge;

namespace {
volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }
}  // namespace

int main(int argc, char** argv) {
  std::string model_name = "fpga";
  std::int64_t nodes = 300, ba_edges = 3, dims = 16, seed = 42;
  std::size_t top_k = 5, serve_threads = 2, snapshot_every = 64;
  std::size_t max_insertions = 400, walks_per_node = 3, shards = 1;
  std::size_t scan_threads = 0;
  std::string quant = "none";
  ArgParser args("embedding_server",
                 "train online on a growing graph while serving k-NN "
                 "queries against versioned embedding snapshots");
  args.add_choice("model", &model_name, backend_names(), "training backend");
  args.add_int("nodes", &nodes, "BA graph nodes");
  args.add_int("ba-edges", &ba_edges, "BA attachment edges per node");
  args.add_int("dims", &dims, "embedding dimensions");
  args.add_size("top-k", &top_k, "neighbors per query");
  args.add_size("serve-threads", &serve_threads, "server worker threads");
  args.add_size("snapshot-every", &snapshot_every,
                "publish a snapshot every this many edge insertions");
  args.add_size("max-insertions", &max_insertions,
                "cap on streamed edge insertions");
  args.add_size("walks-per-node", &walks_per_node,
                "walks per node for the initial forest phase");
  args.add_size("shards", &shards,
                "shard the store by node range (1 = unsharded); delta "
                "publishing + fan-out queries when > 1");
  args.add_choice("quant", &quant, {"none", "int8", "bfp"},
                  "scan arithmetic: float rows, int8 quantized rows, or "
                  "block-floating-point rows (shared-exponent int8), "
                  "both with float re-rank");
  args.add_size("scan-threads", &scan_threads,
                "threads for the sharded fan-out scan (0 = sequential)");
  args.add_int("seed", &seed, "random seed");
  std::string metrics_out;
  std::size_t metrics_period_ms = 0;
  args.add_string("metrics-out", &metrics_out,
                  "write a seqge-metrics-v1 JSON dump to this path");
  args.add_size("metrics-period-ms", &metrics_period_ms,
                "also re-dump --metrics-out every this many ms while "
                "serving (0 = final dump only)");
  bool listen = false;
  std::int64_t listen_port = 0, listen_for_s = 0;
  std::size_t net_workers = 2, max_conns = 256;
  double rate_limit_qps = 0.0;
  std::string port_file;
  args.add_flag("listen", &listen,
                "serve seqge-wire-v1 over TCP instead of the in-process "
                "query loop (runs until SIGTERM or --listen-for-s)");
  args.add_int("port", &listen_port,
               "TCP port for --listen (0 = kernel-assigned)");
  args.add_int("listen-for-s", &listen_for_s,
               "stop serving after this many seconds (0 = until signal)");
  args.add_size("net-workers", &net_workers,
                "network responder threads for --listen");
  args.add_double("rate-limit-qps", &rate_limit_qps,
                  "per-connection token-bucket rate (0 = unlimited)");
  args.add_size("max-conns", &max_conns, "max open connections");
  args.add_string("port-file", &port_file,
                  "write the bound port to this file once listening");
  if (!args.parse(argc, argv)) return 1;

  const Graph graph =
      make_barabasi_albert(static_cast<std::size_t>(nodes),
                           static_cast<std::size_t>(ba_edges),
                           static_cast<std::uint64_t>(seed));
  std::printf("BA graph: %zu nodes, %zu edges; backend %s, %zu shard(s)\n",
              graph.num_nodes(), graph.num_edges(), model_name.c_str(),
              shards);

  TrainConfig cfg;
  cfg.dims = static_cast<std::size_t>(dims);
  cfg.seed = static_cast<std::uint64_t>(seed);
  cfg.negative_mode = NegativeMode::kPerWalk;
  // Short walks keep the bit-accurate FPGA simulation interactive.
  cfg.walk.walk_length = 20;
  cfg.walk.window = 4;
  cfg.negative_samples = 5;

  // --shards 1: one RCU snapshot store (full-matrix publishes);
  // --shards N: per-node-range shards with copy-on-write delta
  // publishes. Both implement SnapshotSink, so the trainer is
  // identical either way.
  std::shared_ptr<serve::EmbeddingStore> store;
  std::shared_ptr<serve::ShardedEmbeddingStore> sharded_store;
  SnapshotSink* sink = nullptr;
  if (shards > 1) {
    sharded_store = std::make_shared<serve::ShardedEmbeddingStore>(shards);
    sink = sharded_store.get();
  } else {
    store = std::make_shared<serve::EmbeddingStore>();
    sink = store.get();
  }
  const auto store_version = [&] {
    return store != nullptr ? store->version() : sharded_store->version();
  };
  const auto store_walks = [&]() -> std::uint64_t {
    return store != nullptr ? store->current()->walks_trained
                            : sharded_store->walks_trained();
  };

  // Producer: sequential training on the growing graph, publishing into
  // the store every `snapshot_every` insertions (plus the final state).
  SequentialResult result;
  std::atomic<bool> trainer_done{false};
  std::thread trainer([&] {
    Rng rng(cfg.seed);
    auto model = make_backend(model_name, graph.num_nodes(), cfg, rng);
    SequentialConfig scfg;
    scfg.train = cfg;
    scfg.initial_walks_per_node = walks_per_node;
    scfg.max_insertions = max_insertions;
    scfg.pipeline.snapshot_sink = sink;
    scfg.snapshot_every_insertions = snapshot_every;
    result = train_sequential(*model, graph, scfg, rng);
    trainer_done.store(true, std::memory_order_release);
  });

  // Consumer: wait for the first snapshot, then keep querying while the
  // trainer runs.
  const bool published =
      store != nullptr
          ? store->wait_for_version(1, std::chrono::minutes(10))
          : sharded_store->wait_for_version(1, std::chrono::minutes(10));
  if (!published) {
    std::fprintf(stderr, "no snapshot published — trainer stuck?\n");
    trainer.join();
    return 1;
  }

  serve::ServerConfig srv_cfg;
  srv_cfg.threads = serve_threads;
  if (quant == "int8") srv_cfg.index.quant = serve::QuantMode::kInt8;
  if (quant == "bfp") srv_cfg.index.quant = serve::QuantMode::kBfp;
  srv_cfg.scan_threads = scan_threads;
  auto server = store != nullptr
                    ? std::make_unique<serve::EmbeddingServer>(store, srv_cfg)
                    : std::make_unique<serve::EmbeddingServer>(sharded_store,
                                                               srv_cfg);

  // Long-running servers keep the metrics file fresh on a cadence so
  // the latest state survives a crash; the final dump at exit below
  // covers the short default run.
  std::unique_ptr<obs::PeriodicDumper> dumper;
  if (!metrics_out.empty() && metrics_period_ms > 0) {
    dumper = std::make_unique<obs::PeriodicDumper>(
        metrics_out, std::chrono::milliseconds(metrics_period_ms));
  }

  if (listen) {
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    net::NetServerConfig ncfg;
    ncfg.port = static_cast<std::uint16_t>(listen_port);
    ncfg.workers = net_workers;
    ncfg.max_connections = max_conns;
    ncfg.rate_limit_qps = rate_limit_qps;
    net::Server front(*server, ncfg);
    front.start();
    std::printf("listening on %s:%u\n", ncfg.bind_addr.c_str(),
                static_cast<unsigned>(front.port()));
    std::fflush(stdout);
    if (!port_file.empty()) {
      std::ofstream pf(port_file);
      pf << front.port() << "\n";
    }

    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(listen_for_s);
    while (g_stop == 0 &&
           (listen_for_s == 0 ||
            std::chrono::steady_clock::now() < deadline)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }

    const std::size_t late = front.stop();
    trainer.join();
    const std::size_t engine_late =
        server->drain_for(std::chrono::seconds(5));
    std::printf(
        "served %llu wire requests over %llu connections "
        "(%llu overload + %llu rate-limit rejects, %llu bad frames); "
        "drain left %zu net + %zu engine requests in flight\n",
        static_cast<unsigned long long>(front.requests_admitted()),
        static_cast<unsigned long long>(front.connections_accepted()),
        static_cast<unsigned long long>(front.rejected_overload()),
        static_cast<unsigned long long>(front.rejected_ratelimit()),
        static_cast<unsigned long long>(front.bad_frames()), late,
        engine_late);
    if (dumper != nullptr) dumper->stop();
    if (dumper == nullptr && !metrics_out.empty() &&
        !obs::write_metrics_json(metrics_out)) {
      return 1;
    }
    return 0;
  }

  Table table({"query", "snapshot version", "walks trained",
               "top-" + std::to_string(top_k) + " of node 0",
               "latency (us)"});
  Rng qrng(static_cast<std::uint64_t>(seed) + 1);
  std::size_t queries = 0;
  WallTimer clock;
  std::uint64_t last_version = 0;
  while (!trainer_done.load(std::memory_order_acquire)) {
    const auto u = static_cast<NodeId>(qrng.bounded(graph.num_nodes()));
    WallTimer lat;
    serve::TopKResult res = server->topk(u, top_k).get();
    const double lat_us = lat.millis() * 1000.0;
    ++queries;

    // Report one row per freshly observed snapshot version (with the
    // neighbors of node 0 so consecutive rows are comparable).
    if (res.version != last_version) {
      last_version = res.version;
      serve::TopKResult probe = server->topk(0, top_k).get();
      ++queries;
      std::string ids;
      for (const auto& n : probe.neighbors) {
        if (!ids.empty()) ids += " ";
        ids += std::to_string(n.node);
      }
      table.add_row({std::to_string(queries), std::to_string(res.version),
                     std::to_string(store_walks()), ids,
                     Table::fmt(lat_us, 1)});
    }
  }
  trainer.join();

  // A few final queries against the finished embedding.
  for (int i = 0; i < 50; ++i) {
    server->topk(static_cast<NodeId>(qrng.bounded(graph.num_nodes())), top_k)
        .get();
    queries += 1;
  }
  server->drain();

  table.print();
  const serve::LatencySummary lat = server->latency();
  std::printf(
      "\ntrained %zu insertions (%zu walks) while serving %llu queries "
      "in %.2f s\n",
      result.insertions, result.stats.num_walks,
      static_cast<unsigned long long>(server->queries_served()),
      clock.seconds());
  std::printf(
      "snapshots published: %llu; query latency p50 %.0f us, p95 %.0f us, "
      "p99 %.0f us (n=%zu)\n",
      static_cast<unsigned long long>(store_version()), lat.p50_us,
      lat.p95_us, lat.p99_us, lat.count);
  if (sharded_store != nullptr) {
    // Rows a full-republish store would have copied for the same
    // publish count — the delta win grows with graph size (at a few
    // hundred nodes an insertion window touches most rows, so the two
    // are close; see bench_serving phase 3 for the 50k-node numbers).
    const auto full_equiv = static_cast<unsigned long long>(
        store_version() * graph.num_nodes());
    std::printf(
        "delta publishing: %llu full + %llu delta publishes, %llu rows "
        "copied (full-republish equivalent: %llu), %llu compactions\n",
        static_cast<unsigned long long>(sharded_store->full_publishes()),
        static_cast<unsigned long long>(sharded_store->delta_publishes()),
        static_cast<unsigned long long>(sharded_store->rows_copied()),
        full_equiv,
        static_cast<unsigned long long>(sharded_store->compactions()));
  }
  if (dumper != nullptr) dumper->stop();  // stop() writes a final dump
  if (dumper == nullptr && !metrics_out.empty() &&
      !obs::write_metrics_json(metrics_out)) {
    return 1;
  }
  return 0;
}
