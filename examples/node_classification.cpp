// Full node-classification pipeline on any dataset twin: generate ->
// walk -> train (model of your choice) -> one-vs-rest logistic
// regression -> micro/macro F1. This is the paper's Sec. 4.3 evaluation
// protocol, exposed as a CLI.
//
//   ./examples/node_classification --dataset ampt --scale 0.1
//       --model oselm --dims 64 --trials 3 --threads 4

#include <cstdio>

#include "embedding/backend_registry.hpp"
#include "embedding/trainer.hpp"
#include "eval/node_classification.hpp"
#include "graph/datasets.hpp"
#include "graph/stats.hpp"
#include "obs/export.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace seqge;

int main(int argc, char** argv) {
  std::string dataset = "cora", model_name = "oselm", scenario = "all";
  double scale = 0.25, mu = TrainConfig{}.mu, p0 = TrainConfig{}.p0;
  std::int64_t dims = 32, walks = 10, trials = 3, seed = 42, threads = 0;
  ArgParser args("node_classification",
                 "embedding + one-vs-rest logistic regression (Sec. 4.3)");
  args.add_choice("dataset", &dataset, {"cora", "ampt", "amcp"},
                  "dataset twin");
  args.add_choice("model", &model_name, backend_names(), "training backend");
  args.add_choice("scenario", &scenario, {"all", "seq"},
                  "static batch training or forest + edge stream");
  args.add_double("scale", &scale, "dataset scale factor");
  args.add_int("dims", &dims, "embedding dimensions");
  args.add_int("walks-per-node", &walks, "random walks per node (r)");
  args.add_int("trials", &trials, "evaluation trials to average");
  args.add_int("threads", &threads,
               "walker threads for the training pipeline (0 = inline)");
  args.add_double("mu", &mu, "OS-ELM scale factor");
  args.add_double("p0", &p0, "OS-ELM initial P diagonal");
  args.add_int("seed", &seed, "random seed");
  std::string metrics_out;
  args.add_string("metrics-out", &metrics_out,
                  "write a seqge-metrics-v1 JSON dump to this path");
  if (!args.parse(argc, argv)) return 1;

  const LabeledGraph data =
      make_dataset(dataset_from_name(dataset),
                   static_cast<std::uint64_t>(seed), scale);
  const GraphStats stats = compute_stats(data);
  std::printf(
      "dataset %s: %zu nodes, %zu edges, %zu classes, homophily %.2f\n",
      data.name.c_str(), stats.num_nodes, stats.num_edges,
      data.num_classes, stats.label_homophily);

  TrainConfig cfg;
  cfg.dims = static_cast<std::size_t>(dims);
  cfg.walks_per_node = static_cast<std::size_t>(walks);
  cfg.mu = mu;
  cfg.p0 = p0;
  cfg.seed = static_cast<std::uint64_t>(seed);

  Rng rng(cfg.seed);
  auto model = make_backend(model_name, data.graph.num_nodes(), cfg, rng);

  PipelineConfig pipe;
  pipe.walker_threads = static_cast<std::size_t>(threads);

  TrainStats tstats;
  if (scenario == "seq") {
    SequentialConfig scfg;
    scfg.train = cfg;
    scfg.pipeline = pipe;
    const SequentialResult r = train_sequential(*model, data.graph, scfg, rng);
    tstats = r.stats;
    std::printf("seq: forest %zu edges, %zu insertions\n", r.forest_edges,
                r.insertions);
  } else {
    tstats = train_all(*model, data.graph, cfg, rng, pipe);
  }
  std::printf(
      "trained %s: %zu walks, %zu contexts, walk %.2fs + train %.2fs\n",
      model->name().c_str(), tstats.num_walks, tstats.num_contexts,
      tstats.walk_seconds, tstats.train_seconds);

  const MatrixF emb = model->extract_embedding();
  Table table({"trial", "micro-F1", "macro-F1", "accuracy"});
  double micro_sum = 0.0;
  for (std::int64_t t = 0; t < trials; ++t) {
    const F1Scores s = evaluate_embedding(
        emb, data.labels, data.num_classes, ClassificationConfig{},
        cfg.seed + static_cast<std::uint64_t>(t) * 1000003ULL);
    micro_sum += s.micro;
    table.add_row({std::to_string(t), Table::fmt(s.micro),
                   Table::fmt(s.macro), Table::fmt(s.accuracy)});
  }
  table.print();
  std::printf("mean micro-F1 over %lld trials: %.3f\n",
              static_cast<long long>(trials),
              micro_sum / static_cast<double>(trials));
  std::printf("model parameter footprint: %.3f MB\n",
              static_cast<double>(model->model_bytes()) / 1e6);
  if (!metrics_out.empty() && !obs::write_metrics_json(metrics_out)) {
    return 1;
  }
  return 0;
}
