// IoT dynamic-graph scenario (the paper's motivating use case, Sec. 1):
// a deployed edge device observes a growing device-communication graph
// and keeps its embedding current with sequential training — no batch
// retraining. This example streams the edges of a dataset twin into a
// spanning forest, trains the proposed OS-ELM model after every
// insertion (a random walk from each endpoint, exactly the "seq"
// protocol), and reports micro-F1 checkpoints so you can watch the
// embedding stay usable while the graph changes, plus what the FPGA
// accelerator's simulated latency budget would be for the same stream.
//
//   ./examples/iot_dynamic_graph [--dataset cora] [--scale 0.3]
//                                [--dims 32] [--checkpoints 6]

#include <cstdio>

#include "embedding/backend_registry.hpp"
#include "embedding/trainer.hpp"
#include "eval/node_classification.hpp"
#include "fpga/perf_model.hpp"
#include "graph/datasets.hpp"
#include "graph/dynamic_graph.hpp"
#include "graph/spanning_forest.hpp"
#include "obs/export.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "walk/corpus.hpp"
#include "walk/node2vec_walker.hpp"

using namespace seqge;

int main(int argc, char** argv) {
  std::string dataset = "cora", model_name = "oselm";
  double scale = 0.3;
  std::int64_t dims = 32, checkpoints = 6, seed = 42;
  ArgParser args("iot_dynamic_graph",
                 "sequential training on a growing graph with accuracy "
                 "checkpoints");
  args.add_choice("dataset", &dataset, {"cora", "ampt", "amcp"},
                  "dataset twin");
  args.add_choice("model", &model_name, backend_names(), "training backend");
  args.add_double("scale", &scale, "dataset scale factor");
  args.add_int("dims", &dims, "embedding dimensions");
  args.add_int("checkpoints", &checkpoints, "number of accuracy checkpoints");
  args.add_int("seed", &seed, "random seed");
  std::string metrics_out;
  args.add_string("metrics-out", &metrics_out,
                  "write a seqge-metrics-v1 JSON dump to this path");
  if (!args.parse(argc, argv)) return 1;

  const LabeledGraph data =
      make_dataset(dataset_from_name(dataset),
                   static_cast<std::uint64_t>(seed), scale);
  std::printf("graph: %zu nodes, %zu edges, %zu classes\n",
              data.graph.num_nodes(), data.graph.num_edges(),
              data.num_classes);

  TrainConfig cfg;
  cfg.dims = static_cast<std::size_t>(dims);
  cfg.seed = static_cast<std::uint64_t>(seed);

  Rng rng(cfg.seed);
  auto model = make_backend(model_name, data.graph.num_nodes(), cfg, rng);

  // Forest start, as in Sec. 4.3.2.
  ForestSplit split = split_spanning_forest(data.graph, rng);
  DynamicGraph dyn(data.graph.num_nodes());
  for (const Edge& e : split.forest_edges) dyn.add_edge(e.src, e.dst, e.weight);
  std::printf("initial forest: %zu edges; %zu edges to stream\n\n",
              split.forest_edges.size(), split.removed_edges.size());

  auto evaluate = [&] {
    return mean_micro_f1(model->extract_embedding(), data.labels,
                         data.num_classes, ClassificationConfig{}, 3,
                         cfg.seed);
  };

  // Initial training on the forest.
  {
    WalkCorpus corpus = generate_corpus(dyn, cfg.walk, cfg.walks_per_node, rng);
    NegativeSampler sampler(corpus.frequency);
    for (const auto& walk : corpus.walks) {
      model->train_walk(walk, cfg.walk.window, sampler,
                        cfg.negative_samples, cfg.negative_mode, rng);
    }
  }
  std::printf("after forest training: micro-F1 = %.3f\n", evaluate());

  // Stream the removed edges, checkpointing accuracy.
  Table table({"edges inserted", "graph edges", "micro-F1"});
  Node2VecWalker<DynamicGraph> walker(dyn, cfg.walk);
  NegativeSampler sampler = NegativeSampler::from_degrees(dyn);
  std::vector<std::uint64_t> freq(data.graph.num_nodes(), 0);
  std::vector<NodeId> walk;

  const std::size_t total = split.removed_edges.size();
  const std::size_t per_chunk =
      std::max<std::size_t>(1, total / static_cast<std::size_t>(checkpoints));
  std::size_t inserted = 0;
  for (std::size_t i = 0; i < total; ++i) {
    const Edge& e = split.removed_edges[i];
    if (!dyn.add_edge(e.src, e.dst, e.weight)) continue;
    ++inserted;
    for (NodeId endpoint : {e.src, e.dst}) {
      walker.walk_into(rng, endpoint, walk);
      for (NodeId v : walk) ++freq[v];
      model->train_walk(walk, cfg.walk.window, sampler,
                        cfg.negative_samples, cfg.negative_mode, rng);
    }
    if (inserted % 256 == 0) sampler = NegativeSampler(freq);
    if (inserted % per_chunk == 0 || i + 1 == total) {
      table.add_row({std::to_string(inserted),
                     std::to_string(dyn.num_edges()),
                     Table::fmt(evaluate())});
    }
  }
  table.print();

  // What the PL accelerator would have cost for this stream.
  const fpga::PerfModel pm(fpga::AcceleratorConfig::for_dims(cfg.dims));
  const double per_walk_ms = pm.walk_timing().total_us / 1000.0;
  std::printf(
      "\nFPGA budget: %.3f ms per walk -> %.1f ms per edge insertion "
      "(2 walks); the full stream of %zu insertions would take %.2f s of "
      "accelerator time.\n",
      per_walk_ms, 2 * per_walk_ms, inserted,
      2 * per_walk_ms * static_cast<double>(inserted) / 1000.0);
  if (!metrics_out.empty() && !obs::write_metrics_json(metrics_out)) {
    return 1;
  }
  return 0;
}
