#pragma once
// Shared helpers for the per-table/per-figure benchmark binaries. Every
// bench prints (a) the paper artifact it regenerates, (b) the effective
// workload (datasets are DC-SBM twins, scaled down by default so the
// whole suite finishes on a small CI box — pass --full for paper-scale),
// and (c) a table whose rows mirror the paper's.

#include <cstdio>
#include <string>
#include <vector>

#include "embedding/backend_registry.hpp"
#include "embedding/config.hpp"
#include "embedding/model.hpp"
#include "embedding/trainer.hpp"
#include "eval/node_classification.hpp"
#include "graph/datasets.hpp"
#include "graph/stats.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace seqge::bench {

inline void print_header(const std::string& artifact,
                         const std::string& description) {
  std::printf("==================================================\n");
  std::printf("seqge bench — %s\n", artifact.c_str());
  std::printf("%s\n", description.c_str());
  std::printf("hyper-parameters (Table 2): p=0.5 q=1.0 r=10 l=80 w=8 ns=10\n");
  std::printf("==================================================\n");
}

/// Scaled dataset with a banner line describing the twin actually used.
inline LabeledGraph load_twin(DatasetId id, double scale,
                              std::uint64_t seed) {
  LabeledGraph data = make_dataset(id, seed, scale);
  const GraphStats stats = compute_stats(data);
  std::printf(
      "dataset %-5s (scale %.3f): %zu nodes, %zu edges, %zu classes, "
      "homophily %.2f\n",
      data.name.c_str(), scale, stats.num_nodes, stats.num_edges,
      data.num_classes, stats.label_homophily);
  return data;
}

/// Train registry backend `backend` on the graph in the "all" scenario
/// and return the mean micro-F1 over `trials` evaluation trials.
inline double train_all_f1(const std::string& backend,
                           const LabeledGraph& data, const TrainConfig& cfg,
                           std::size_t trials) {
  Rng rng(cfg.seed);
  auto model = make_backend(backend, data.graph.num_nodes(), cfg, rng);
  train_all(*model, data.graph, cfg, rng);
  return mean_micro_f1(model->extract_embedding(), data.labels,
                       data.num_classes, ClassificationConfig{}, trials,
                       cfg.seed);
}

/// Train registry backend `backend` in the "seq" scenario (forest +
/// edge stream).
inline double train_seq_f1(const std::string& backend,
                           const LabeledGraph& data, const TrainConfig& cfg,
                           std::size_t trials) {
  Rng rng(cfg.seed);
  SequentialConfig scfg;
  scfg.train = cfg;
  auto model = make_backend(backend, data.graph.num_nodes(), cfg, rng);
  train_sequential(*model, data.graph, scfg, rng);
  return mean_micro_f1(model->extract_embedding(), data.labels,
                       data.num_classes, ClassificationConfig{}, trials,
                       cfg.seed);
}

/// Median wall-clock milliseconds of `fn()` over `reps` runs after one
/// warmup.
template <typename Fn>
double time_ms(Fn&& fn, int reps = 5) {
  fn();  // warmup
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    WallTimer t;
    fn();
    times.push_back(t.millis());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

}  // namespace seqge::bench
