#pragma once
// Shared helpers for the per-table/per-figure benchmark binaries. Every
// bench prints (a) the paper artifact it regenerates, (b) the effective
// workload (datasets are DC-SBM twins, scaled down by default so the
// whole suite finishes on a small CI box — pass --full for paper-scale),
// and (c) a table whose rows mirror the paper's.

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "embedding/backend_registry.hpp"
#include "embedding/config.hpp"
#include "embedding/model.hpp"
#include "embedding/trainer.hpp"
#include "eval/node_classification.hpp"
#include "graph/datasets.hpp"
#include "graph/stats.hpp"
#include "linalg/simd.hpp"
#include "obs/export.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace seqge::bench {

/// Register the shared --metrics-out option into `*path`. Pair with
/// dump_metrics(*path) after the workload ran.
inline void add_metrics_flag(ArgParser& parser, std::string* path) {
  parser.add_string("metrics-out", path,
                    "write a seqge-metrics-v1 JSON dump of every "
                    "counter/gauge/histogram to this path");
}

/// Dump the global registry when --metrics-out was given. Returns
/// false only on a failed write (empty path is success).
inline bool dump_metrics(const std::string& path) {
  if (path.empty()) return true;
  const bool ok = obs::write_metrics_json(path);
  if (ok) std::printf("wrote %s\n", path.c_str());
  return ok;
}

/// Minimal ordered JSON value for the BENCH_*.json artifacts the
/// benches emit under --json. Insertion order is preserved so the
/// files diff cleanly run-to-run; covers exactly what the benches
/// need (objects, arrays, strings, numbers, bools).
class Json {
 public:
  Json() = default;
  static Json object() { return Json(Kind::kObject); }
  static Json array() { return Json(Kind::kArray); }
  static Json str(std::string s) {
    Json j(Kind::kString);
    j.str_ = std::move(s);
    return j;
  }
  static Json num(double v) {
    Json j(Kind::kNumber);
    j.num_ = v;
    return j;
  }
  static Json num(std::size_t v) {
    Json j(Kind::kInt);
    j.int_ = static_cast<std::int64_t>(v);
    return j;
  }
  static Json num(std::int64_t v) {
    Json j(Kind::kInt);
    j.int_ = v;
    return j;
  }
  static Json boolean(bool v) {
    Json j(Kind::kBool);
    j.bool_ = v;
    return j;
  }

  Json& set(std::string key, Json v) {
    fields_.emplace_back(std::move(key), std::move(v));
    return *this;
  }
  Json& push(Json v) {
    items_.push_back(std::move(v));
    return *this;
  }

  [[nodiscard]] std::string dump(int indent = 0) const {
    std::string out;
    write(out, indent);
    out.push_back('\n');
    return out;
  }

 private:
  enum class Kind { kNull, kObject, kArray, kString, kNumber, kInt, kBool };
  explicit Json(Kind k) : kind_(k) {}

  static void escape(const std::string& s, std::string& out) {
    out.push_back('"');
    for (char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(c));
            out += buf;
          } else {
            out.push_back(c);
          }
      }
    }
    out.push_back('"');
  }

  void write(std::string& out, int indent) const {
    const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
    const std::string pad1(static_cast<std::size_t>(indent + 1) * 2, ' ');
    char buf[64];
    switch (kind_) {
      case Kind::kNull: out += "null"; break;
      case Kind::kString: escape(str_, out); break;
      case Kind::kNumber:
        std::snprintf(buf, sizeof(buf), "%.10g", num_);
        out += buf;
        break;
      case Kind::kInt:
        std::snprintf(buf, sizeof(buf), "%" PRId64, int_);
        out += buf;
        break;
      case Kind::kBool: out += bool_ ? "true" : "false"; break;
      case Kind::kObject: {
        if (fields_.empty()) {
          out += "{}";
          break;
        }
        out += "{\n";
        for (std::size_t i = 0; i < fields_.size(); ++i) {
          out += pad1;
          escape(fields_[i].first, out);
          out += ": ";
          fields_[i].second.write(out, indent + 1);
          if (i + 1 < fields_.size()) out.push_back(',');
          out.push_back('\n');
        }
        out += pad + "}";
        break;
      }
      case Kind::kArray: {
        if (items_.empty()) {
          out += "[]";
          break;
        }
        out += "[\n";
        for (std::size_t i = 0; i < items_.size(); ++i) {
          out += pad1;
          items_[i].write(out, indent + 1);
          if (i + 1 < items_.size()) out.push_back(',');
          out.push_back('\n');
        }
        out += pad + "]";
        break;
      }
    }
  }

  Kind kind_ = Kind::kNull;
  std::string str_;
  double num_ = 0.0;
  std::int64_t int_ = 0;
  bool bool_ = false;
  std::vector<std::pair<std::string, Json>> fields_;
  std::vector<Json> items_;
};

/// Machine block shared by every BENCH_*.json: the resolved SIMD ISA
/// (the single most result-relevant fact on the serving side), thread
/// budget, and toolchain.
inline Json machine_json() {
  Json m = Json::object();
  m.set("simd_isa", Json::str(simd::isa_name()));
  m.set("hardware_threads",
        Json::num(static_cast<std::size_t>(
            std::thread::hardware_concurrency())));
#if defined(__VERSION__)
  m.set("compiler", Json::str(__VERSION__));
#endif
#if defined(NDEBUG)
  m.set("build", Json::str("release"));
#else
  m.set("build", Json::str("debug"));
#endif
  m.set("pointer_bits", Json::num(sizeof(void*) * 8));
  return m;
}

/// Write `root` to `path`; returns false (with a message) on I/O error.
inline bool write_json_file(const std::string& path, const Json& root) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot open %s for writing\n", path.c_str());
    return false;
  }
  const std::string text = root.dump();
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  std::fclose(f);
  if (ok) std::printf("wrote %s\n", path.c_str());
  return ok;
}

inline void print_header(const std::string& artifact,
                         const std::string& description) {
  std::printf("==================================================\n");
  std::printf("seqge bench — %s\n", artifact.c_str());
  std::printf("%s\n", description.c_str());
  std::printf("hyper-parameters (Table 2): p=0.5 q=1.0 r=10 l=80 w=8 ns=10\n");
  std::printf("==================================================\n");
}

/// Scaled dataset with a banner line describing the twin actually used.
inline LabeledGraph load_twin(DatasetId id, double scale,
                              std::uint64_t seed) {
  LabeledGraph data = make_dataset(id, seed, scale);
  const GraphStats stats = compute_stats(data);
  std::printf(
      "dataset %-5s (scale %.3f): %zu nodes, %zu edges, %zu classes, "
      "homophily %.2f\n",
      data.name.c_str(), scale, stats.num_nodes, stats.num_edges,
      data.num_classes, stats.label_homophily);
  return data;
}

/// Train registry backend `backend` on the graph in the "all" scenario
/// and return the mean micro-F1 over `trials` evaluation trials.
inline double train_all_f1(const std::string& backend,
                           const LabeledGraph& data, const TrainConfig& cfg,
                           std::size_t trials) {
  Rng rng(cfg.seed);
  auto model = make_backend(backend, data.graph.num_nodes(), cfg, rng);
  train_all(*model, data.graph, cfg, rng);
  return mean_micro_f1(model->extract_embedding(), data.labels,
                       data.num_classes, ClassificationConfig{}, trials,
                       cfg.seed);
}

/// Train registry backend `backend` in the "seq" scenario (forest +
/// edge stream).
inline double train_seq_f1(const std::string& backend,
                           const LabeledGraph& data, const TrainConfig& cfg,
                           std::size_t trials) {
  Rng rng(cfg.seed);
  SequentialConfig scfg;
  scfg.train = cfg;
  auto model = make_backend(backend, data.graph.num_nodes(), cfg, rng);
  train_sequential(*model, data.graph, scfg, rng);
  return mean_micro_f1(model->extract_embedding(), data.labels,
                       data.num_classes, ClassificationConfig{}, trials,
                       cfg.seed);
}

/// Median wall-clock milliseconds of `fn()` over `reps` runs after one
/// warmup.
template <typename Fn>
double time_ms(Fn&& fn, int reps = 5) {
  fn();  // warmup
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    WallTimer t;
    fn();
    times.push_back(t.millis());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

}  // namespace seqge::bench
