// Ablation bench for the design choices DESIGN.md calls out:
//   1. shared-per-walk vs fresh-per-context negative samples,
//   2. per-walk P reset vs classic persistent-P OS-ELM,
//   3. Algorithm 1 vs Algorithm 2 (accuracy + host time),
//   4. on-the-fly vs rejection-sampling walker throughput,
//   5. float vs Q8.24 fixed-point core numerics.

#include "bench/common.hpp"
#include "walk/node2vec_walker.hpp"

using namespace seqge;
using namespace seqge::bench;

int main(int argc, char** argv) {
  double scale = 0.4;
  std::int64_t dims = 32, trials = 3;
  std::string metrics_out;
  ArgParser args("bench_ablation", "design-choice ablations");
  args.add_double("scale", &scale, "cora twin scale");
  args.add_int("dims", &dims, "embedding dimensions");
  args.add_int("trials", &trials, "evaluation trials");
  add_metrics_flag(args, &metrics_out);
  if (!args.parse(argc, argv)) return 1;

  print_header("Ablations",
               "negative sharing / P reset policy / Alg1 vs Alg2 / walker "
               "strategy / numerics");

  const LabeledGraph data = load_twin(DatasetId::kCora, scale, 1);
  const auto t = static_cast<std::size_t>(trials);

  // --- 1 + 2 + 3: accuracy grid over model variants -------------------
  {
    Table table({"variant", "micro-F1", "train time (s)"});
    struct Variant {
      std::string name;
      std::string backend;
      NegativeMode mode;
      bool reset_p;
    };
    const Variant variants[] = {
        {"alg1, fresh negatives, P reset", "oselm",
         NegativeMode::kPerContext, true},
        {"alg1, shared negatives, P reset", "oselm",
         NegativeMode::kPerWalk, true},
        {"alg1, fresh negatives, persistent P", "oselm",
         NegativeMode::kPerContext, false},
        {"alg2, shared negatives, P reset", "oselm-dataflow",
         NegativeMode::kPerWalk, true},
        {"alg2, shared negatives, persistent P", "oselm-dataflow",
         NegativeMode::kPerWalk, false},
        {"original SGD (reference)", "original-sgd",
         NegativeMode::kPerContext, true},
    };
    for (const Variant& v : variants) {
      TrainConfig cfg;
      cfg.dims = static_cast<std::size_t>(dims);
      cfg.negative_mode = v.mode;
      cfg.reset_p_per_walk = v.reset_p;
      Rng rng(cfg.seed);
      auto model = make_backend(v.backend, data.graph.num_nodes(), cfg, rng);
      WallTimer timer;
      train_all(*model, data.graph, cfg, rng);
      const double secs = timer.seconds();
      const double f1 =
          mean_micro_f1(model->extract_embedding(), data.labels,
                        data.num_classes, ClassificationConfig{}, t,
                        cfg.seed);
      table.add_row({v.name, Table::fmt(f1), Table::fmt(secs, 2)});
      std::printf(".");
      std::fflush(stdout);
    }
    std::printf("\n[negatives / P policy / algorithm]\n");
    table.print();
  }

  // --- 4: walker strategy throughput ----------------------------------
  {
    Node2VecParams params;
    Rng rng(3);
    Node2VecWalker<Graph> otf(data.graph, params);
    RejectionNode2VecWalker rej(data.graph, params);
    std::vector<NodeId> walk;
    const int kWalks = 2000;
    const double otf_ms = time_ms([&] {
      for (int i = 0; i < kWalks; ++i) {
        otf.walk_into(rng, static_cast<NodeId>(
                               rng.bounded(data.graph.num_nodes())),
                      walk);
      }
    });
    const double rej_ms = time_ms([&] {
      for (int i = 0; i < kWalks; ++i) {
        rej.walk_into(rng, static_cast<NodeId>(
                               rng.bounded(data.graph.num_nodes())),
                      walk);
      }
    });
    Table table({"walker", "ms / 2000 walks", "relative"});
    table.add_row({"on-the-fly (two-pass linear)", Table::fmt(otf_ms, 1),
                   "1.00"});
    table.add_row({"rejection (alias proposal)", Table::fmt(rej_ms, 1),
                   Table::fmt(rej_ms / otf_ms, 2)});
    std::printf("[walker strategy]\n");
    table.print();
  }

  // --- 5: float dataflow vs fixed-point FPGA core ----------------------
  {
    TrainConfig cfg;
    cfg.dims = static_cast<std::size_t>(dims);
    const double f_float = train_all_f1("oselm-dataflow", data, cfg, t);
    const double f_fixed = train_all_f1("fpga", data, cfg, t);
    Table table({"numerics", "micro-F1"});
    table.add_row({"float32 (Algorithm 2)", Table::fmt(f_float)});
    table.add_row({"Q8.24 fixed point (HLS core)", Table::fmt(f_fixed)});
    std::printf("[numerics]\n");
    table.print();
  }
  if (!dump_metrics(metrics_out)) return 1;
  return 0;
}
