#pragma once
// Shared implementation of the Tables 3/4 speedup benches. Per embedding
// dimension it measures, on this host, the time to train one full random
// walk (73 contexts) with the original SGD skip-gram and with the
// proposed OS-ELM model (Algorithm 1), obtains the FPGA latency from the
// calibrated cycle/DMA model, and prints speedups alongside the paper's
// reference CPU rows (quadratic models anchored on the paper's measured
// points, since neither a Cortex-A53 nor an i7-11700 is available here).

#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "embedding/backend_registry.hpp"
#include "fpga/perf_model.hpp"
#include "perfmodel/cpu_model.hpp"
#include "sampling/negative_sampler.hpp"
#include "walk/corpus.hpp"
#include "walk/node2vec_walker.hpp"

namespace seqge::bench {

struct SpeedupRow {
  std::size_t dims;
  double orig_host_ms;
  double prop_host_ms;
  double fpga_ms;
  double orig_ref_ms;  // paper-anchored CPU model
  double prop_ref_ms;
};

inline int run_speedup_bench(const std::string& artifact,
                             const perfmodel::CpuLatencyModel& ref_orig,
                             const perfmodel::CpuLatencyModel& ref_prop,
                             int argc, char** argv) {
  double scale = 1.0;
  std::int64_t reps = 9;
  std::string metrics_out;
  ArgParser args("bench_speedup",
                 artifact + " — training time of a single random walk");
  args.add_double("scale", &scale, "dataset scale for the weight tables");
  args.add_int("reps", &reps, "timing repetitions (median reported)");
  add_metrics_flag(args, &metrics_out);
  if (!args.parse(argc, argv)) return 1;

  print_header(artifact,
               "Training time of one random walk (l=80 -> 73 contexts); "
               "host-measured CPU rows + calibrated FPGA model + "
               "paper-anchored " + ref_orig.platform + " reference");

  const LabeledGraph data = load_twin(DatasetId::kCora, scale, 1);
  const std::size_t n = data.graph.num_nodes();

  // One fixed full-length walk + negative sampler over degrees.
  Node2VecParams wp;
  Rng rng(7);
  Node2VecWalker<Graph> walker(data.graph, wp);
  NodeId start = 0;
  while (data.graph.degree(start) == 0) ++start;
  const std::vector<NodeId> walk = walker.walk(rng, start);
  const NegativeSampler sampler = NegativeSampler::from_degrees(data.graph);

  std::vector<SpeedupRow> rows;
  for (std::size_t dims : {32u, 64u, 96u}) {
    SpeedupRow row{};
    row.dims = dims;

    TrainConfig mcfg;
    mcfg.dims = dims;
    // Both host models go through the backend registry; timing drives
    // the same EmbeddingModel interface the trainers use.
    {
      Rng mrng(11);
      auto orig = make_backend("original-sgd", n, mcfg, mrng);
      row.orig_host_ms = time_ms(
          [&] {
            Rng step(13);
            orig->train_walk(walk, wp.window, sampler, 10,
                             NegativeMode::kPerContext, step);
          },
          static_cast<int>(reps));
    }
    {
      Rng mrng(17);
      auto prop = make_backend("oselm", n, mcfg, mrng);
      row.prop_host_ms = time_ms(
          [&] {
            Rng step(13);
            prop->train_walk(walk, wp.window, sampler, 10,
                             NegativeMode::kPerContext, step);
          },
          static_cast<int>(reps));
    }

    const fpga::PerfModel pm(fpga::AcceleratorConfig::for_dims(dims));
    row.fpga_ms = pm.walk_timing().total_us / 1000.0;
    row.orig_ref_ms = ref_orig.predict_ms(dims);
    row.prop_ref_ms = ref_prop.predict_ms(dims);
    rows.push_back(row);
  }

  Table table({"metric", "32", "64", "96"});
  auto add = [&](const std::string& name, auto getter, int precision) {
    std::vector<std::string> r = {name};
    for (const SpeedupRow& row : rows) {
      r.push_back(Table::fmt(getter(row), precision));
    }
    table.add_row(std::move(r));
  };
  add("Original model on this host (ms)",
      [](const SpeedupRow& r) { return r.orig_host_ms; }, 3);
  add("Proposed model on this host (ms)",
      [](const SpeedupRow& r) { return r.prop_host_ms; }, 3);
  add("Original model on " + ref_orig.platform + " (ms, model)",
      [](const SpeedupRow& r) { return r.orig_ref_ms; }, 3);
  add("Proposed model on " + ref_prop.platform + " (ms, model)",
      [](const SpeedupRow& r) { return r.prop_ref_ms; }, 3);
  add("Proposed model on FPGA (ms, model)",
      [](const SpeedupRow& r) { return r.fpga_ms; }, 3);
  add("Speedup vs original (" + ref_orig.platform + ")",
      [](const SpeedupRow& r) { return r.orig_ref_ms / r.fpga_ms; }, 3);
  add("Speedup vs proposed (" + ref_prop.platform + ")",
      [](const SpeedupRow& r) { return r.prop_ref_ms / r.fpga_ms; }, 3);
  add("Speedup vs original (this host)",
      [](const SpeedupRow& r) { return r.orig_host_ms / r.fpga_ms; }, 3);
  add("Proposed-vs-original on this host (x)",
      [](const SpeedupRow& r) { return r.orig_host_ms / r.prop_host_ms; },
      2);
  table.print();

  std::printf(
      "\nnote: %s rows interpolate the paper's measured anchors exactly; "
      "host rows are measured on this machine (different CPU, so absolute "
      "values differ while the ordering and growth with dims should "
      "match).\n",
      ref_orig.platform.c_str());
  if (!dump_metrics(metrics_out)) return 1;
  return 0;
}

}  // namespace seqge::bench
