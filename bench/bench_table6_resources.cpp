// Regenerates Table 6: FPGA resource utilization on the XCZU7EV
// (ZCU104). The three paper design points come from the calibrated
// resource model (post-route numbers need the vendor toolchain); the
// structural estimator's numbers are printed alongside, and additional
// what-if configurations demonstrate extrapolation.

#include "bench/common.hpp"
#include "fpga/resource_model.hpp"

using namespace seqge;
using namespace seqge::bench;
using seqge::fpga::AcceleratorConfig;
using seqge::fpga::ResourceModel;
using seqge::fpga::ResourceUsage;

int main(int argc, char** argv) {
  std::string metrics_out;
  ArgParser args("bench_table6_resources",
                 "Table 6 — resource utilization on XCZU7EV");
  add_metrics_flag(args, &metrics_out);
  if (!args.parse(argc, argv)) return 1;

  print_header("Table 6", "FPGA resource utilization (XCZU7EV, 200 MHz)");

  const ResourceModel rm;
  const auto& dev = rm.device();
  std::printf("device %s: %zu BRAM36, %zu DSP, %zu FF, %zu LUT\n\n",
              dev.name.c_str(), dev.bram36, dev.dsp, dev.ff, dev.lut);

  Table table({"dims", "par", "source", "BRAM", "BRAM%", "DSP", "DSP%",
               "FF", "FF%", "LUT", "LUT%", "fits"});
  auto add_row = [&](std::size_t dims, std::size_t par,
                     const std::string& source, const ResourceUsage& u) {
    table.add_row({std::to_string(dims), std::to_string(par), source,
                   std::to_string(u.bram36), Table::fmt(u.bram_pct(dev), 2),
                   std::to_string(u.dsp), Table::fmt(u.dsp_pct(dev), 2),
                   std::to_string(u.ff), Table::fmt(u.ff_pct(dev), 2),
                   std::to_string(u.lut), Table::fmt(u.lut_pct(dev), 2),
                   u.fits(dev) ? "yes" : "NO"});
  };

  for (std::size_t dims : {32u, 64u, 96u}) {
    const AcceleratorConfig cfg = AcceleratorConfig::for_dims(dims);
    add_row(dims, cfg.parallelism, "calibrated (Table 6)",
            rm.estimate(cfg));
    add_row(dims, cfg.parallelism, "structural", rm.structural_estimate(cfg));
  }

  // What-if configurations beyond the paper.
  for (auto [dims, par] : {std::pair<std::size_t, std::size_t>{128, 64},
                           {16, 16}, {32, 64}}) {
    AcceleratorConfig cfg;
    cfg.dims = dims;
    cfg.parallelism = par;
    add_row(dims, par, "structural (what-if)", rm.structural_estimate(cfg));
  }
  table.print();
  if (!dump_metrics(metrics_out)) return 1;
  return 0;
}
