// Pipeline throughput bench: wall-clock of the batched train_all with 0
// vs N walker threads on a generated Barabasi-Albert graph, for any
// registry backend. The two runs must produce bit-identical embeddings
// (the pipelined engine's determinism contract); the bench verifies
// that while reporting the speedup, so a reported win can never come
// from silently training something different.
//
// Both runs publish through a ShardedEmbeddingStore sink (identical
// observer cost on both sides, so the comparison is fair), and a short
// fan-out k-NN scan runs against the piped store afterwards — so a
// --metrics-out dump from this bench carries every pipeline-stage span
// (walk_gen, queue_wait, train_batch, publish, scan_fanout).
//
//   ./bench/bench_pipeline [--model oselm] [--threads 4] [--nodes 2000]
//       [--metrics-out metrics.json]

#include "bench/common.hpp"
#include "graph/generators.hpp"
#include "linalg/kernels.hpp"
#include "serve/sharded_query.hpp"
#include "serve/sharded_store.hpp"

#include <thread>

using namespace seqge;
using namespace seqge::bench;

int main(int argc, char** argv) {
  std::int64_t nodes = 2000, ba_edges = 5, dims = 32, walks = 10,
               threads = 4, seed = 42;
  std::string model = "oselm";
  ArgParser args("bench_pipeline",
                 "pipelined vs single-thread train_all wall-clock");
  args.add_choice("model", &model, backend_names(), "training backend");
  args.add_int("nodes", &nodes, "BA graph nodes");
  args.add_int("ba-edges", &ba_edges, "BA attachment edges per node");
  args.add_int("dims", &dims, "embedding dimensions");
  args.add_int("walks-per-node", &walks, "random walks per node (r)");
  args.add_int("threads", &threads, "walker threads for the pipelined run");
  args.add_int("seed", &seed, "random seed");
  std::string metrics_out;
  add_metrics_flag(args, &metrics_out);
  if (!args.parse(argc, argv)) return 1;

  print_header("Pipeline",
               "producer/consumer training pipeline vs the single-thread "
               "path (same updates, same order, bit-identical result)");

  const Graph graph =
      make_barabasi_albert(static_cast<std::size_t>(nodes),
                           static_cast<std::size_t>(ba_edges),
                           static_cast<std::uint64_t>(seed));
  std::printf("BA graph: %zu nodes, %zu edges; backend %s; %u hardware "
              "threads\n",
              graph.num_nodes(), graph.num_edges(), model.c_str(),
              std::thread::hardware_concurrency());

  TrainConfig cfg;
  cfg.dims = static_cast<std::size_t>(dims);
  cfg.walks_per_node = static_cast<std::size_t>(walks);
  cfg.seed = static_cast<std::uint64_t>(seed);
  // The paper's board always shares one negative set per walk; this is
  // also the mode whose pre-sampling the producers take off the
  // consumer's critical path.
  cfg.negative_mode = NegativeMode::kPerWalk;

  struct RunResult {
    TrainStats stats;
    double seconds;
    MatrixF embedding;
    std::shared_ptr<serve::ShardedEmbeddingStore> store;
  };
  auto run = [&](std::size_t walker_threads) {
    Rng rng(cfg.seed);
    auto m = make_backend(model, graph.num_nodes(), cfg, rng);
    RunResult r;
    // Publish through a sharded sink on both paths: identical observer
    // cost, and the metrics dump then carries the publish-stage span.
    r.store = std::make_shared<serve::ShardedEmbeddingStore>(4);
    PipelineConfig pipe;
    pipe.walker_threads = walker_threads;
    pipe.snapshot_sink = r.store.get();
    WallTimer timer;
    r.stats = train_all(*m, graph, cfg, rng, pipe);
    r.seconds = timer.seconds();
    r.embedding = m->extract_embedding();
    return r;
  };

  const RunResult single = run(0);
  const RunResult piped = run(static_cast<std::size_t>(threads));
  const double diff = max_abs_diff(single.embedding, piped.embedding);

  Table table({"path", "walk (s)", "train (s)", "total (s)"});
  table.add_row({"single-thread", Table::fmt(single.stats.walk_seconds, 3),
                 Table::fmt(single.stats.train_seconds, 3),
                 Table::fmt(single.seconds, 3)});
  table.add_row({"pipelined x" + std::to_string(threads),
                 Table::fmt(piped.stats.walk_seconds, 3),
                 Table::fmt(piped.stats.train_seconds, 3),
                 Table::fmt(piped.seconds, 3)});
  table.print();

  std::printf("\nspeedup (wall-clock): %.2fx over %zu walks / %zu batches\n",
              single.seconds / piped.seconds, piped.stats.num_walks,
              piped.stats.num_batches);
  std::printf("bit-identical embeddings: %s (max |delta| = %g)\n",
              diff == 0.0 ? "yes" : "NO", diff);

  // Short fan-out scan over the piped run's store: exercises the
  // serving-side scan_fanout span + per-shard latency histogram so the
  // metrics dump covers the full train->publish->serve chain.
  {
    serve::ShardedIndexConfig qcfg;
    qcfg.scan_threads = 2;
    serve::ShardedQueryEngine engine(*piped.store, qcfg);
    Rng qrng(static_cast<std::uint64_t>(seed) + 1);
    std::size_t hits = 0;
    for (int i = 0; i < 32; ++i) {
      hits += engine
                  .topk(static_cast<NodeId>(qrng.bounded(graph.num_nodes())),
                        10)
                  .size();
    }
    std::printf("fan-out scan: 32 queries, %zu neighbors returned\n", hits);
  }

  if (!dump_metrics(metrics_out)) return 1;
  return diff == 0.0 ? 0 : 1;
}
