// Regenerates Figure 7: impact of the scale factor mu on accuracy, plus
// the "alpha" baseline (input-side weights fixed at random values as in
// classic OS-ELM). Paper result: mu = 0.001 learns nothing useful,
// mu in [0.005, 0.1] is the sweet spot, accuracy decays gradually for
// mu > 0.1, and "alpha" underperforms the tied weights everywhere except
// at uselessly small mu.

#include "bench/common.hpp"

using namespace seqge;
using namespace seqge::bench;

int main(int argc, char** argv) {
  double scale = 0.5;
  std::int64_t dims = 32, trials = 3;
  bool full = false;
  std::string metrics_out;
  ArgParser args("bench_fig7_scale_factor",
                 "Figure 7 — scale factor mu vs accuracy");
  args.add_double("scale", &scale, "cora twin scale");
  args.add_int("dims", &dims, "embedding dimensions (paper: 32)");
  args.add_int("trials", &trials, "evaluation trials to average");
  args.add_flag("full", &full, "paper-scale dataset");
  add_metrics_flag(args, &metrics_out);
  if (!args.parse(argc, argv)) return 1;
  if (full) scale = 1.0;

  print_header("Figure 7",
               "Proposed model accuracy vs scale factor mu (tied input "
               "weights mu*beta^T), plus the random-alpha baseline");

  const LabeledGraph data = load_twin(DatasetId::kCora, scale, 1);
  const auto t = static_cast<std::size_t>(trials);

  Table table({"mu", "micro-F1"});
  for (double mu : {0.001, 0.005, 0.01, 0.05, 0.1, 0.2, 0.5}) {
    TrainConfig cfg;
    cfg.dims = static_cast<std::size_t>(dims);
    cfg.mu = mu;
    const double f1 = train_all_f1("oselm", data, cfg, t);
    table.add_row({Table::fmt(mu, 3), Table::fmt(f1)});
    std::printf(".");
    std::fflush(stdout);
  }
  {
    TrainConfig cfg;
    cfg.dims = static_cast<std::size_t>(dims);
    cfg.random_alpha = true;
    const double f1 = train_all_f1("oselm", data, cfg, t);
    table.add_row({"alpha (random fixed)", Table::fmt(f1)});
  }
  std::printf("\n");
  table.print();
  std::printf(
      "\npaper shape: useless at mu=0.001, high for mu in [0.005, 0.1], "
      "gradually decreasing beyond; alpha below the tied weights.\n");
  if (!dump_metrics(metrics_out)) return 1;
  return 0;
}
