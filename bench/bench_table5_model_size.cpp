// Regenerates Table 5: model sizes of the original skip-gram and the
// proposed model, per dataset and embedding dimension. Sizes are
// analytic (DESIGN.md documents the accounting: original = two n x N
// matrices in the CPU reference's double precision; proposed = beta +
// P in the 32-bit words the BRAM holds). The proposed column matches the
// paper's amcp numbers exactly; the in-memory float sizes of this
// library's implementations are printed for completeness.

#include "bench/common.hpp"
#include "embedding/model_size.hpp"

using namespace seqge;
using namespace seqge::bench;

int main(int argc, char** argv) {
  std::string metrics_out;
  ArgParser args("bench_table5_model_size", "Table 5 — model sizes (MB)");
  add_metrics_flag(args, &metrics_out);
  if (!args.parse(argc, argv)) return 1;

  print_header("Table 5",
               "Model sizes of original vs proposed model (MB = 1e6 B)");

  Table table({"dims", "model", "cora", "ampt", "amcp"});
  for (std::size_t dims : {32u, 64u, 96u}) {
    std::vector<std::string> orig_row = {std::to_string(dims),
                                         "Original (2 x n x N, f64)"};
    std::vector<std::string> prop_row = {std::to_string(dims),
                                         "Proposed (beta + P, 32-bit)"};
    std::vector<std::string> ratio_row = {std::to_string(dims), "ratio"};
    for (const DatasetSpec& spec : dataset_specs()) {
      orig_row.push_back(
          Table::fmt(original_model_mb(spec.num_nodes, dims), 3));
      prop_row.push_back(
          Table::fmt(proposed_model_mb(spec.num_nodes, dims), 3));
      ratio_row.push_back(
          Table::fmt(model_size_ratio(spec.num_nodes, dims), 2));
    }
    table.add_row(std::move(orig_row));
    table.add_row(std::move(prop_row));
    table.add_row(std::move(ratio_row));
  }
  table.print();
  std::printf(
      "\npaper headline: proposed model up to 3.82x smaller (amcp, "
      "dims 96: 20.303 MB -> 5.318 MB).\n");
  if (!dump_metrics(metrics_out)) return 1;
  return 0;
}
