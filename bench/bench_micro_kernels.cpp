// Self-contained microbenchmarks of the kernels behind Tables 3/4 plus
// the SIMD/int8 serving kernels (no external benchmark framework —
// plain calibrated loops, best-of-N passes). Three phases:
//
//   micro — ns/op audit of the training-side kernels: alias-table
//           sampling, node2vec walk steps (on-the-fly vs rejection),
//           per-context training updates of all three models, the
//           fixed-point core, and the dense matvec. These numbers feed
//           the op-count audit in EXPERIMENTS.md.
//   simd  — scalar reference vs dispatched float kernels (dot, axpy,
//           scale, l2_norm, fused dot_topk_scan). GATES: dispatched dot
//           and dot_topk_scan must be >= 2x the scalar reference at the
//           serving dims (96) whenever a vector ISA is active.
//   train — scalar reference vs dispatched *training* kernels at the
//           training dims (96): matvec_transposed, rank1_update, the
//           fused OS-ELM pair kernels (matvec_both, rank1_matvec), the
//           gather kernels, sgns_apply, and a whole train_pair fused vs
//           unfused on the real SGNS model. GATES: dispatched
//           matvec_transposed must be >= 2x scalar on a vector ISA;
//           the fused train_pair must not lose to the unfused path at
//           full scale.
//   int8  — float scan vs int8 quantized scan (including the float
//           re-rank the engines do). GATES: the int8 path must not be
//           slower than the float scan on a vector ISA, and the
//           approximate scores must track float dots.
//
// --json <path> writes the results as BENCH_kernels.json (machine
// info, every timing, gate outcomes). Exit code is non-zero when a
// gate fails, so CI can run this binary directly.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "common.hpp"
#include "embedding/oselm_dataflow.hpp"
#include "embedding/oselm_skipgram.hpp"
#include "embedding/skipgram_sgd.hpp"
#include "fixed/fixed_point.hpp"
#include "fpga/hls_core.hpp"
#include "graph/datasets.hpp"
#include "linalg/kernels.hpp"
#include "linalg/simd.hpp"
#include "sampling/alias_table.hpp"
#include "sampling/negative_sampler.hpp"
#include "serve/query_engine.hpp"
#include "serve/quantized_store.hpp"
#include "walk/node2vec_walker.hpp"

namespace {

using namespace seqge;
using bench::Json;

/// Compiler barrier: keeps `value` (and everything it points to) alive
/// without emitting any code — the DoNotOptimize idiom.
template <typename T>
inline void keep(T const& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

/// Best-of-`passes` ns per op: each pass times `iters` calls of fn and
/// the minimum pass wins (robust against scheduler noise on the small
/// shared boxes this suite runs on).
template <typename Fn>
double ns_per_op(std::size_t iters, Fn&& fn, int passes = 3) {
  fn();  // warmup
  double best = std::numeric_limits<double>::infinity();
  for (int p = 0; p < passes; ++p) {
    WallTimer t;
    for (std::size_t i = 0; i < iters; ++i) fn();
    best = std::min(best,
                    static_cast<double>(t.nanos()) /
                        static_cast<double>(iters));
  }
  return best;
}

struct Row {
  std::string name;
  double ns;
};

struct GateResult {
  std::string name;
  double required;
  double actual;
  bool enforced;
  bool pass;
};

std::vector<Row> g_micro;
std::vector<GateResult> g_gates;

void report(const std::string& name, double ns) {
  g_micro.push_back({name, ns});
  std::printf("  %-34s %12.1f ns/op\n", name.c_str(), ns);
}

/// Record a >=`required`x speedup gate. Gates only bind when a vector
/// ISA is active (the scalar fallback build reports but never fails)
/// and at full scale (`scale_ok`) — --tiny stores are too small for
/// the fixed candidate-set cost to amortize, so tiny runs are smoke
/// tests, not performance claims.
void gate(const std::string& name, double required, double actual,
          bool scale_ok = true) {
  const bool enforced =
      simd::active_isa() != simd::Isa::kScalar && scale_ok;
  const bool pass = !enforced || actual >= required;
  g_gates.push_back({name, required, actual, enforced, pass});
  const char* status = pass ? "PASS" : "FAIL";
  if (!enforced) {
    status = simd::active_isa() == simd::Isa::kScalar
                 ? "skipped: scalar isa"
                 : "skipped: tiny run";
  }
  std::printf("  GATE %-28s need >= %.2fx  got %5.2fx  [%s]\n", name.c_str(),
              required, actual, status);
}

const LabeledGraph& bench_graph() {
  static const LabeledGraph g = make_dataset(DatasetId::kCora, 1, 0.25);
  return g;
}

// --- phase 1: training-side micro kernels -----------------------------------

void run_micro_phase(std::size_t scale_div) {
  std::printf("\n-- micro: training-side kernels (ns/op) --\n");
  const auto it = [&](std::size_t n) { return std::max<std::size_t>(1, n / scale_div); };

  {
    Rng rng(1);
    std::vector<double> w(1000);
    for (auto& x : w) x = rng.uniform(0.1, 10.0);
    AliasTable table(w);
    report("alias_sample/1k", ns_per_op(it(1000000), [&] {
             keep(table.sample(rng));
           }));
  }
  {
    Rng rng(1);
    std::vector<double> w(100000);
    for (auto& x : w) x = rng.uniform(0.1, 10.0);
    AliasTable table(w);
    report("alias_sample/100k", ns_per_op(it(1000000), [&] {
             keep(table.sample(rng));
           }));
  }
  {
    Rng rng(2);
    std::vector<double> w(1000);
    for (auto& x : w) x = rng.uniform(0.1, 10.0);
    report("alias_build/1k", ns_per_op(it(2000), [&] {
             AliasTable table(w);
             keep(table.size());
           }));
  }

  const Graph& g = bench_graph().graph;
  {
    Node2VecParams params;
    Node2VecWalker<Graph> walker(g, params);
    Rng rng(3);
    std::vector<NodeId> walk;
    const double ns = ns_per_op(it(20000), [&] {
      walker.walk_into(rng, static_cast<NodeId>(rng.bounded(g.num_nodes())),
                       walk);
      keep(walk.data());
    });
    report("walk_step/on_the_fly",
           ns / static_cast<double>(Node2VecParams{}.walk_length));
  }
  {
    Node2VecParams params;
    RejectionNode2VecWalker walker(g, params);
    Rng rng(4);
    std::vector<NodeId> walk;
    const double ns = ns_per_op(it(20000), [&] {
      walker.walk_into(rng, static_cast<NodeId>(rng.bounded(g.num_nodes())),
                       walk);
      keep(walk.data());
    });
    report("walk_step/rejection",
           ns / static_cast<double>(Node2VecParams{}.walk_length));
  }

  const auto sampler = NegativeSampler::from_degrees(g);
  const std::size_t dims = 96;
  {
    Rng rng(5);
    SkipGramSGD model(g.num_nodes(), dims, rng);
    Node2VecWalker<Graph> walker(g, Node2VecParams{});
    const auto walk = walker.walk(rng, 0);
    report("train_walk/sgns/96", ns_per_op(it(200), [&] {
             keep(model.train_walk(walk, 8, sampler, 10,
                                   NegativeMode::kPerContext, rng, 0.01));
           }));
  }
  {
    Rng rng(6);
    OselmSkipGram::Options opts;
    opts.dims = dims;
    OselmSkipGram model(g.num_nodes(), opts, rng);
    Node2VecWalker<Graph> walker(g, Node2VecParams{});
    const auto walk = walker.walk(rng, 0);
    report("train_walk/oselm/96", ns_per_op(it(200), [&] {
             keep(model.train_walk(walk, 8, sampler, 10,
                                   NegativeMode::kPerContext, rng));
           }));
  }
  {
    Rng rng(7);
    OselmSkipGramDataflow::Options opts;
    opts.dims = dims;
    OselmSkipGramDataflow model(g.num_nodes(), opts, rng);
    Node2VecWalker<Graph> walker(g, Node2VecParams{});
    const auto walk = walker.walk(rng, 0);
    report("train_walk/dataflow/96", ns_per_op(it(200), [&] {
             keep(model.train_walk(walk, 8, sampler, 10, rng));
           }));
  }
  {
    fpga::AcceleratorConfig cfg = fpga::AcceleratorConfig::for_dims(32);
    fpga::HlsCore core(cfg);
    Rng rng(8);
    std::vector<std::uint32_t> walk(cfg.walk_length);
    for (auto& v : walk) {
      v = static_cast<std::uint32_t>(rng.bounded(cfg.walk_length));
    }
    std::vector<std::uint32_t> negs(cfg.negative_samples);
    for (std::size_t i = 0; i < negs.size(); ++i) {
      negs[i] = static_cast<std::uint32_t>(cfg.walk_length + i);
    }
    report("hls_core/run_walk/32", ns_per_op(it(500), [&] {
             keep(core.run_walk(walk, negs));
           }));
  }
  {
    using F = fixed::CoreFixed;
    F a = F::from_double(1.2345);
    const F b = F::from_double(-0.5678);
    report("fixed/multiply_add", ns_per_op(it(5000000), [&] {
             a = a * b + F::from_double(1.0);
             keep(a);
           }));
  }
  {
    Rng rng(9);
    const std::size_t n = 96;
    MatrixF m(n, n);
    m.fill_uniform(rng, -1.0, 1.0);
    std::vector<float> v(n, 1.0f), out(n);
    report("matvec/96", ns_per_op(it(20000), [&] {
             matvec(m, std::span<const float>(v), std::span<float>(out));
             keep(out.data());
           }));
  }
}

// --- phase 2: scalar vs dispatched float kernels ----------------------------

struct SimdRow {
  std::string kernel;
  std::size_t dims;
  double scalar_ns;
  double simd_ns;
  [[nodiscard]] double speedup() const { return scalar_ns / simd_ns; }
};

std::vector<SimdRow> g_simd;

void simd_report(const std::string& kernel, std::size_t dims,
                 double scalar_ns, double simd_ns) {
  g_simd.push_back({kernel, dims, scalar_ns, simd_ns});
  std::printf("  %-20s dims=%-3zu scalar %9.1f ns  %s %9.1f ns  (%.2fx)\n",
              kernel.c_str(), dims, scalar_ns, simd::isa_name(), simd_ns,
              scalar_ns / simd_ns);
}

void run_simd_phase(std::size_t rows, int passes) {
  std::printf("\n-- simd: scalar vs %s float kernels (%zu rows/pass) --\n",
              simd::isa_name(), rows);
  double gate_dot = 0.0, gate_scan = 0.0;
  for (std::size_t dims : {std::size_t{32}, std::size_t{96}}) {
    Rng rng(42);
    std::vector<float> data(rows * dims), q(dims), scores(rows);
    for (auto& x : data) x = static_cast<float>(rng.uniform(-1.0, 1.0));
    for (auto& x : q) x = static_cast<float>(rng.uniform(-1.0, 1.0));

    // Per-row dot over the whole store; ns is per row.
    const double sc_dot = ns_per_op(1, [&] {
      float acc = 0.0f;
      for (std::size_t r = 0; r < rows; ++r) {
        acc += simd::scalar::dot(data.data() + r * dims, q.data(), dims);
      }
      keep(acc);
    }, passes) / static_cast<double>(rows);
    const double vec_dot = ns_per_op(1, [&] {
      float acc = 0.0f;
      for (std::size_t r = 0; r < rows; ++r) {
        acc += simd::dot(data.data() + r * dims, q.data(), dims);
      }
      keep(acc);
    }, passes) / static_cast<double>(rows);
    simd_report("dot", dims, sc_dot, vec_dot);

    std::vector<float> acc_vec(dims, 0.0f);
    const double sc_axpy = ns_per_op(1, [&] {
      for (std::size_t r = 0; r < rows; ++r) {
        simd::scalar::axpy(1e-6f, data.data() + r * dims, acc_vec.data(),
                           dims);
      }
      keep(acc_vec.data());
    }, passes) / static_cast<double>(rows);
    const double vec_axpy = ns_per_op(1, [&] {
      for (std::size_t r = 0; r < rows; ++r) {
        simd::axpy(1e-6f, data.data() + r * dims, acc_vec.data(), dims);
      }
      keep(acc_vec.data());
    }, passes) / static_cast<double>(rows);
    simd_report("axpy", dims, sc_axpy, vec_axpy);

    const double sc_scale = ns_per_op(1, [&] {
      for (std::size_t r = 0; r < rows; ++r) {
        simd::scalar::scale(0.999999f, data.data() + r * dims, dims);
      }
      keep(data.data());
    }, passes) / static_cast<double>(rows);
    const double vec_scale = ns_per_op(1, [&] {
      for (std::size_t r = 0; r < rows; ++r) {
        simd::scale(1.000001f, data.data() + r * dims, dims);
      }
      keep(data.data());
    }, passes) / static_cast<double>(rows);
    simd_report("scale", dims, sc_scale, vec_scale);

    const double sc_norm = ns_per_op(1, [&] {
      double acc = 0.0;
      for (std::size_t r = 0; r < rows; ++r) {
        acc += simd::scalar::l2_norm(data.data() + r * dims, dims);
      }
      keep(acc);
    }, passes) / static_cast<double>(rows);
    const double vec_norm = ns_per_op(1, [&] {
      double acc = 0.0;
      for (std::size_t r = 0; r < rows; ++r) {
        acc += simd::l2_norm(data.data() + r * dims, dims);
      }
      keep(acc);
    }, passes) / static_cast<double>(rows);
    simd_report("l2_norm", dims, sc_norm, vec_norm);

    // The fused scan, with the engines' real accumulator in the loop.
    const double sc_scan = ns_per_op(1, [&] {
      serve::TopKAccumulator top(10);
      for (std::size_t r = 0; r < rows; ++r) {
        top.offer(static_cast<NodeId>(r),
                  simd::scalar::dot(data.data() + r * dims, q.data(), dims));
      }
      keep(top);
    }, passes) / static_cast<double>(rows);
    const double vec_scan = ns_per_op(1, [&] {
      serve::TopKAccumulator top(10);
      simd::dot_topk_scan(data.data(), rows, dims, q.data(),
                          [&](std::size_t r, float s) {
                            top.offer(static_cast<NodeId>(r), s);
                          });
      keep(top);
    }, passes) / static_cast<double>(rows);
    simd_report("dot_topk_scan", dims, sc_scan, vec_scan);

    if (dims == 96) {
      gate_dot = sc_dot / vec_dot;
      gate_scan = sc_scan / vec_scan;
    }
  }
  // Gate at the serving dims (96). Small dims are reported but not
  // gated: a 32-dim dot is latency-bound on the single accumulator the
  // determinism contract requires, so its speedup understates the
  // serving-path win.
  gate("simd_dot_96", 2.0, gate_dot);
  gate("simd_dot_topk_scan_96", 2.0, gate_scan);
}

// --- phase 3: scalar vs dispatched training kernels -------------------------

std::vector<SimdRow> g_train;

void train_report(const std::string& kernel, std::size_t dims,
                  double scalar_ns, double simd_ns) {
  g_train.push_back({kernel, dims, scalar_ns, simd_ns});
  std::printf("  %-20s dims=%-3zu scalar %9.1f ns  %s %9.1f ns  (%.2fx)\n",
              kernel.c_str(), dims, scalar_ns, simd::isa_name(), simd_ns,
              scalar_ns / simd_ns);
}

void run_train_phase(std::size_t scale_div, int passes, bool tiny) {
  std::printf("\n-- train: scalar vs %s training kernels (dims=96) --\n",
              simd::isa_name());
  const std::size_t n = 96;  // training dims of every committed config
  const auto it = [&](std::size_t iters) {
    return std::max<std::size_t>(1, iters / scale_div);
  };

  Rng rng(11);
  std::vector<float> m(n * n), v(n), x(n), y(n), out(n), out2(n);
  for (auto& f : m) f = static_cast<float>(rng.uniform(-1.0, 1.0));
  for (auto& f : v) f = static_cast<float>(rng.uniform(-1.0, 1.0));
  for (auto& f : x) f = static_cast<float>(rng.uniform(-1.0, 1.0));
  for (auto& f : y) f = static_cast<float>(rng.uniform(-1.0, 1.0));

  // hp = h P — one of the two OS-ELM P-products.
  const double sc_mt = ns_per_op(it(100000), [&] {
    simd::scalar::matvec_t(m.data(), n, n, v.data(), out.data());
    keep(out.data());
  }, passes);
  const double ve_mt = ns_per_op(it(100000), [&] {
    simd::matvec_t(m.data(), n, n, v.data(), out.data());
    keep(out.data());
  }, passes);
  train_report("matvec_transposed", n, sc_mt, ve_mt);

  // P -= k ph hp^T. The tiny coefficient keeps m finite over the
  // repeated in-place updates.
  const double sc_r1 = ns_per_op(it(100000), [&] {
    simd::scalar::rank1_update(m.data(), n, n, 1e-7f, x.data(), y.data());
    keep(m.data());
  }, passes);
  const double ve_r1 = ns_per_op(it(100000), [&] {
    simd::rank1_update(m.data(), n, n, -1e-7f, x.data(), y.data());
    keep(m.data());
  }, passes);
  train_report("rank1_update", n, sc_r1, ve_r1);

  // The fused pair kernels the OS-ELM backends actually call: two P
  // passes instead of four (see simd.hpp).
  const double sc_both = ns_per_op(it(100000), [&] {
    simd::scalar::matvec_both(m.data(), n, v.data(), out.data(),
                              out2.data());
    keep(out.data());
  }, passes);
  const double ve_both = ns_per_op(it(100000), [&] {
    simd::matvec_both(m.data(), n, v.data(), out.data(), out2.data());
    keep(out.data());
  }, passes);
  train_report("matvec_both", n, sc_both, ve_both);

  const double sc_r1mv = ns_per_op(it(100000), [&] {
    simd::scalar::rank1_matvec(m.data(), n, 1e-7f, x.data(), y.data(),
                               v.data(), out.data());
    keep(out.data());
  }, passes);
  const double ve_r1mv = ns_per_op(it(100000), [&] {
    simd::rank1_matvec(m.data(), n, -1e-7f, x.data(), y.data(), v.data(),
                       out.data());
    keep(out.data());
  }, passes);
  train_report("rank1_matvec", n, sc_r1mv, ve_r1mv);

  // One SGNS sample group: 1 positive + 10 negatives of gathered rows.
  const std::size_t group = 11;
  std::vector<float> rows(group * n), g(group), h(n), hgrad(n);
  for (auto& f : rows) f = static_cast<float>(rng.uniform(-1.0, 1.0));
  for (auto& f : g) f = static_cast<float>(rng.uniform(-1e-3, 1e-3));
  for (auto& f : h) f = static_cast<float>(rng.uniform(-1.0, 1.0));
  std::vector<float*> row_ptrs(group);
  for (std::size_t i = 0; i < group; ++i) row_ptrs[i] = rows.data() + i * n;
  std::vector<float> scores(group);

  const double sc_gather = ns_per_op(it(500000), [&] {
    simd::scalar::dot_batch_gather(
        const_cast<const float* const*>(row_ptrs.data()), group, n, h.data(),
        scores.data());
    keep(scores.data());
  }, passes);
  const double ve_gather = ns_per_op(it(500000), [&] {
    simd::dot_batch_gather(const_cast<const float* const*>(row_ptrs.data()),
                           group, n, h.data(), scores.data());
    keep(scores.data());
  }, passes);
  train_report("dot_batch_gather", n, sc_gather, ve_gather);

  const double sc_apply = ns_per_op(it(200000), [&] {
    simd::scalar::sgns_apply(h.data(), hgrad.data(), row_ptrs.data(),
                             g.data(), -1e-4f, group, n);
    keep(h.data());
  }, passes);
  const double ve_apply = ns_per_op(it(200000), [&] {
    simd::sgns_apply(h.data(), hgrad.data(), row_ptrs.data(), g.data(),
                     1e-4f, group, n);
    keep(h.data());
  }, passes);
  train_report("sgns_apply", n, sc_apply, ve_apply);

  // Whole train_pair on the real model, fused batched path vs the
  // sequential per-sample fallback (set_force_unfused) — same model,
  // same distinct negatives, so both runs take the path they claim.
  {
    const Graph& graph = bench_graph().graph;
    Rng mrng(12);
    SkipGramSGD model(graph.num_nodes(), n, mrng);
    std::vector<NodeId> negs;
    for (NodeId i = 0; i < 10; ++i) negs.push_back(100 + 7 * i);
    const NodeId center = 1, pos = 2;
    model.set_force_unfused(true);
    const double unfused = ns_per_op(it(50000), [&] {
      keep(model.train_pair(center, pos, negs, 0.01));
    }, passes);
    model.set_force_unfused(false);
    const double fused = ns_per_op(it(50000), [&] {
      keep(model.train_pair(center, pos, negs, 0.01));
    }, passes);
    train_report("train_pair", n, unfused, fused);
    // Fused-vs-unfused is a modest win by design (the unfused fallback
    // shares the same dispatched dot/axpy); gate conservatively, and
    // only at full scale — tiny runs are too short to be stable.
    gate("train_pair_fused_96", 1.05, unfused / fused, !tiny);
  }

  gate("train_matvec_t_96", 2.0, sc_mt / ve_mt);
}

// --- phase 4: float vs int8 quantized scan ----------------------------------

struct Int8Row {
  std::string name;
  double value;
};

std::vector<Int8Row> g_int8;

void int8_report(const std::string& name, const char* unit, double v) {
  g_int8.push_back({name, v});
  std::printf("  %-28s %12.3f %s\n", name.c_str(), v, unit);
}

void run_int8_phase(std::size_t rows, int passes, bool tiny) {
  std::printf("\n-- int8: float scan vs quantized scan+rerank (%zu rows) --\n",
              rows);
  const std::size_t dims = 96;
  const std::size_t k = 10, rerank = 4;

  Rng rng(7);
  MatrixF m(rows, dims);
  m.fill_uniform(rng, -1.0, 1.0);
  serve::l2_normalize_rows(m);
  std::vector<float> q(dims);
  for (auto& x : q) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  serve::l2_normalize(std::span<float>(q));

  const serve::QuantizedRowStore store(m, serve::QuantConfig{});
  const auto qq =
      serve::QuantizedRowStore::quantize_query(q, serve::QuantConfig{});

  const double float_scan = ns_per_op(1, [&] {
    serve::TopKAccumulator top(k);
    simd::dot_topk_scan(m.data(), rows, dims, q.data(),
                        [&](std::size_t r, float s) {
                          top.offer(static_cast<NodeId>(r), s);
                        });
    keep(top);
  }, passes) / static_cast<double>(rows);

  // The quantized path as the engines run it: approximate scan into a
  // k*rerank accumulator, then float re-rank of the candidates.
  const double int8_scan = ns_per_op(1, [&] {
    serve::TopKAccumulator approx(k * rerank);
    store.scan(qq, [&](std::size_t r, float s) {
      approx.offer(static_cast<NodeId>(r), s);
    });
    serve::TopKAccumulator top(k);
    for (const auto& c : approx.take()) {
      top.offer(c.node, simd::dot(m.row(c.node), std::span<const float>(q)));
    }
    keep(top);
  }, passes) / static_cast<double>(rows);

  int8_report("float_scan", "ns/row", float_scan);
  int8_report("int8_scan_rerank", "ns/row", int8_scan);
  int8_report("bytes_ratio", "x smaller",
              static_cast<double>(rows * dims * sizeof(float)) /
                  static_cast<double>(store.bytes()));

  // Approximation quality: |approx - exact| over the whole store for
  // this query (unit vectors, so exact dots are in [-1, 1]).
  double max_err = 0.0, sum_err = 0.0;
  store.scan(qq, [&](std::size_t r, float approx) {
    const double exact = static_cast<double>(
        simd::dot(m.row(r), std::span<const float>(q)));
    const double err = std::fabs(static_cast<double>(approx) - exact);
    max_err = std::max(max_err, err);
    sum_err += err;
  });
  int8_report("score_err_mean", "abs", sum_err / static_cast<double>(rows));
  int8_report("score_err_max", "abs", max_err);

  // At --tiny scale the k*rerank candidate heap is ~8% of the whole
  // store and dominates; the gate binds only at full scale, where the
  // float rows spill the L2 and the 4x-narrower codes pull ahead.
  gate("int8_scan_not_slower", 1.0, float_scan / int8_scan, !tiny);
}

}  // namespace

int main(int argc, char** argv) {
  bool tiny = false;
  std::string json_path;
  std::string phase = "all";
  ArgParser args("bench_micro_kernels",
                 "ns/op audit of training kernels + SIMD/int8 serving "
                 "kernel gates");
  args.add_flag("tiny", &tiny, "shrink iteration counts for smoke runs");
  args.add_string("json", &json_path,
                  "write results to this path (BENCH_kernels.json)");
  args.add_choice("phase", &phase, {"all", "micro", "simd", "train", "int8"},
                  "which phase(s) to run");
  std::string metrics_out;
  bench::add_metrics_flag(args, &metrics_out);
  if (!args.parse(argc, argv)) return 1;

  bench::print_header(
      "micro kernels (Tables 3/4 op audit + SIMD/int8 gates)",
      std::string("simd isa: ") + simd::isa_name());

  const std::size_t scale_div = tiny ? 20 : 1;
  const std::size_t scan_rows = tiny ? 512 : 8192;
  const int passes = tiny ? 3 : 7;

  if (phase == "all" || phase == "micro") run_micro_phase(scale_div);
  if (phase == "all" || phase == "simd") run_simd_phase(scan_rows, passes);
  if (phase == "all" || phase == "train") {
    run_train_phase(scale_div, passes, tiny);
  }
  if (phase == "all" || phase == "int8") run_int8_phase(scan_rows, passes, tiny);

  bool all_pass = true;
  for (const auto& gr : g_gates) all_pass = all_pass && gr.pass;

  if (!json_path.empty()) {
    Json root = Json::object();
    root.set("bench", Json::str("micro_kernels"));
    root.set("machine", bench::machine_json());
    Json cfg = Json::object();
    cfg.set("tiny", Json::boolean(tiny));
    cfg.set("scan_rows", Json::num(scan_rows));
    cfg.set("passes", Json::num(static_cast<std::int64_t>(passes)));
    root.set("config", std::move(cfg));
    Json micro = Json::array();
    for (const auto& r : g_micro) {
      Json j = Json::object();
      j.set("name", Json::str(r.name));
      j.set("ns_per_op", Json::num(r.ns));
      micro.push(std::move(j));
    }
    root.set("micro", std::move(micro));
    Json simd_arr = Json::array();
    for (const auto& r : g_simd) {
      Json j = Json::object();
      j.set("kernel", Json::str(r.kernel));
      j.set("dims", Json::num(r.dims));
      j.set("scalar_ns", Json::num(r.scalar_ns));
      j.set("simd_ns", Json::num(r.simd_ns));
      j.set("speedup", Json::num(r.speedup()));
      simd_arr.push(std::move(j));
    }
    root.set("simd", std::move(simd_arr));
    Json train_arr = Json::array();
    for (const auto& r : g_train) {
      Json j = Json::object();
      j.set("kernel", Json::str(r.kernel));
      j.set("dims", Json::num(r.dims));
      j.set("scalar_ns", Json::num(r.scalar_ns));
      j.set("simd_ns", Json::num(r.simd_ns));
      j.set("speedup", Json::num(r.speedup()));
      train_arr.push(std::move(j));
    }
    root.set("train", std::move(train_arr));
    Json int8_arr = Json::array();
    for (const auto& r : g_int8) {
      Json j = Json::object();
      j.set("name", Json::str(r.name));
      j.set("value", Json::num(r.value));
      int8_arr.push(std::move(j));
    }
    root.set("int8", std::move(int8_arr));
    Json gates = Json::array();
    for (const auto& gr : g_gates) {
      Json j = Json::object();
      j.set("name", Json::str(gr.name));
      j.set("required_speedup", Json::num(gr.required));
      j.set("actual_speedup", Json::num(gr.actual));
      j.set("enforced", Json::boolean(gr.enforced));
      j.set("pass", Json::boolean(gr.pass));
      gates.push(std::move(j));
    }
    root.set("gates", std::move(gates));
    if (!bench::write_json_file(json_path, root)) return 1;
  }

  if (!bench::dump_metrics(metrics_out)) return 1;

  if (!all_pass) {
    std::printf("\nRESULT: GATE FAILURE\n");
    return 1;
  }
  std::printf("\nRESULT: ok\n");
  return 0;
}
