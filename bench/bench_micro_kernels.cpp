// Google-benchmark microbenchmarks of the kernels behind Tables 3/4:
// alias-table sampling, node2vec walk steps (on-the-fly vs rejection),
// per-context training updates of all three models, the fixed-point
// core, and the dense matvec. These numbers feed the op-count audit in
// EXPERIMENTS.md.

#include <benchmark/benchmark.h>

#include "embedding/oselm_dataflow.hpp"
#include "embedding/oselm_skipgram.hpp"
#include "embedding/skipgram_sgd.hpp"
#include "fixed/fixed_point.hpp"
#include "fpga/hls_core.hpp"
#include "graph/datasets.hpp"
#include "linalg/kernels.hpp"
#include "sampling/alias_table.hpp"
#include "sampling/negative_sampler.hpp"
#include "walk/node2vec_walker.hpp"

namespace {

using namespace seqge;

const LabeledGraph& bench_graph() {
  static const LabeledGraph g = make_dataset(DatasetId::kCora, 1, 0.25);
  return g;
}

void BM_AliasSample(benchmark::State& state) {
  std::vector<double> w(static_cast<std::size_t>(state.range(0)));
  Rng rng(1);
  for (auto& x : w) x = rng.uniform(0.1, 10.0);
  AliasTable table(w);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.sample(rng));
  }
}
BENCHMARK(BM_AliasSample)->Arg(1000)->Arg(100000);

void BM_AliasBuild(benchmark::State& state) {
  std::vector<double> w(static_cast<std::size_t>(state.range(0)));
  Rng rng(2);
  for (auto& x : w) x = rng.uniform(0.1, 10.0);
  for (auto _ : state) {
    AliasTable table(w);
    benchmark::DoNotOptimize(table.size());
  }
}
BENCHMARK(BM_AliasBuild)->Arg(1000)->Arg(100000);

void BM_WalkOnTheFly(benchmark::State& state) {
  const Graph& g = bench_graph().graph;
  Node2VecParams params;
  Node2VecWalker<Graph> walker(g, params);
  Rng rng(3);
  std::vector<NodeId> walk;
  for (auto _ : state) {
    walker.walk_into(rng, static_cast<NodeId>(rng.bounded(g.num_nodes())),
                     walk);
    benchmark::DoNotOptimize(walk.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(params.walk_length));
}
BENCHMARK(BM_WalkOnTheFly);

void BM_WalkRejection(benchmark::State& state) {
  const Graph& g = bench_graph().graph;
  Node2VecParams params;
  RejectionNode2VecWalker walker(g, params);
  Rng rng(4);
  std::vector<NodeId> walk;
  for (auto _ : state) {
    walker.walk_into(rng, static_cast<NodeId>(rng.bounded(g.num_nodes())),
                     walk);
    benchmark::DoNotOptimize(walk.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(params.walk_length));
}
BENCHMARK(BM_WalkRejection);

void BM_TrainWalkSgns(benchmark::State& state) {
  const auto dims = static_cast<std::size_t>(state.range(0));
  const Graph& g = bench_graph().graph;
  Rng rng(5);
  SkipGramSGD model(g.num_nodes(), dims, rng);
  Node2VecWalker<Graph> walker(g, Node2VecParams{});
  const auto walk = walker.walk(rng, 0);
  const auto sampler = NegativeSampler::from_degrees(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.train_walk(
        walk, 8, sampler, 10, NegativeMode::kPerContext, rng, 0.01));
  }
}
BENCHMARK(BM_TrainWalkSgns)->Arg(32)->Arg(64)->Arg(96);

void BM_TrainWalkOselm(benchmark::State& state) {
  const auto dims = static_cast<std::size_t>(state.range(0));
  const Graph& g = bench_graph().graph;
  Rng rng(6);
  OselmSkipGram::Options opts;
  opts.dims = dims;
  OselmSkipGram model(g.num_nodes(), opts, rng);
  Node2VecWalker<Graph> walker(g, Node2VecParams{});
  const auto walk = walker.walk(rng, 0);
  const auto sampler = NegativeSampler::from_degrees(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.train_walk(
        walk, 8, sampler, 10, NegativeMode::kPerContext, rng));
  }
}
BENCHMARK(BM_TrainWalkOselm)->Arg(32)->Arg(64)->Arg(96);

void BM_TrainWalkDataflow(benchmark::State& state) {
  const auto dims = static_cast<std::size_t>(state.range(0));
  const Graph& g = bench_graph().graph;
  Rng rng(7);
  OselmSkipGramDataflow::Options opts;
  opts.dims = dims;
  OselmSkipGramDataflow model(g.num_nodes(), opts, rng);
  Node2VecWalker<Graph> walker(g, Node2VecParams{});
  const auto walk = walker.walk(rng, 0);
  const auto sampler = NegativeSampler::from_degrees(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model.train_walk(walk, 8, sampler, 10, rng));
  }
}
BENCHMARK(BM_TrainWalkDataflow)->Arg(32)->Arg(64)->Arg(96);

void BM_HlsCoreWalk(benchmark::State& state) {
  const auto dims = static_cast<std::size_t>(state.range(0));
  fpga::AcceleratorConfig cfg = fpga::AcceleratorConfig::for_dims(dims);
  fpga::HlsCore core(cfg);
  Rng rng(8);
  std::vector<std::uint32_t> walk(cfg.walk_length);
  for (auto& v : walk) {
    v = static_cast<std::uint32_t>(rng.bounded(cfg.walk_length));
  }
  std::vector<std::uint32_t> negs(cfg.negative_samples);
  for (std::size_t i = 0; i < negs.size(); ++i) {
    negs[i] = static_cast<std::uint32_t>(cfg.walk_length + i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core.run_walk(walk, negs));
  }
}
BENCHMARK(BM_HlsCoreWalk)->Arg(32)->Arg(64);

void BM_FixedMultiply(benchmark::State& state) {
  using F = fixed::CoreFixed;
  F a = F::from_double(1.2345), b = F::from_double(-0.5678);
  for (auto _ : state) {
    a = a * b + F::from_double(1.0);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_FixedMultiply);

void BM_Matvec(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(9);
  MatrixF m(n, n);
  m.fill_uniform(rng, -1.0, 1.0);
  std::vector<float> v(n, 1.0f), out(n);
  for (auto _ : state) {
    matvec(m, std::span<const float>(v), std::span<float>(out));
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n * n));
}
BENCHMARK(BM_Matvec)->Arg(32)->Arg(96);

}  // namespace

BENCHMARK_MAIN();
