// Regenerates Figure 6: impact of sequential training on accuracy.
// For each dataset and embedding dimension, trains the Original (SGD
// skip-gram) and Proposed (OS-ELM, Algorithm 2 semantics) models in two
// scenarios:
//   all — the whole graph trained from the start,
//   seq — spanning-forest start + one random walk from each endpoint of
//         every re-inserted edge, training after each insertion.
// Paper result: in "all" the original model wins slightly; in "seq" the
// original model loses accuracy (catastrophic forgetting) while the
// proposed model holds or improves (more training samples on the dense
// graphs).

#include <sstream>

#include "bench/common.hpp"

using namespace seqge;
using namespace seqge::bench;

int main(int argc, char** argv) {
  double cora_scale = 0.4, ampt_scale = 0.06, amcp_scale = 0.035;
  std::string dims_csv = "32";
  std::int64_t trials = 3;
  bool full = false;
  std::string metrics_out;
  ArgParser args("bench_fig6_sequential_accuracy",
                 "Figure 6 — sequential-training accuracy (micro-F1)");
  args.add_double("cora-scale", &cora_scale, "cora twin scale");
  args.add_double("ampt-scale", &ampt_scale, "amazon-photo twin scale");
  args.add_double("amcp-scale", &amcp_scale, "amazon-computers twin scale");
  args.add_string("dims", &dims_csv, "comma-separated dims (paper: 32,64,96)");
  args.add_int("trials", &trials, "evaluation trials to average");
  args.add_flag("full", &full, "paper-scale datasets (very slow)");
  add_metrics_flag(args, &metrics_out);
  if (!args.parse(argc, argv)) return 1;
  if (full) {
    cora_scale = ampt_scale = amcp_scale = 1.0;
    dims_csv = "32,64,96";
  }

  std::vector<std::size_t> dims_list;
  {
    std::stringstream ss(dims_csv);
    std::string tok;
    while (std::getline(ss, tok, ',')) {
      dims_list.push_back(static_cast<std::size_t>(std::stoul(tok)));
    }
  }

  print_header("Figure 6",
               "'all' vs 'seq' scenarios, Original (SGD) vs Proposed "
               "(OS-ELM) micro-F1");

  const std::pair<DatasetId, double> runs[] = {
      {DatasetId::kCora, cora_scale},
      {DatasetId::kAmazonPhoto, ampt_scale},
      {DatasetId::kAmazonComputers, amcp_scale},
  };

  Table table({"dataset", "dims", "Original all", "Proposed all",
               "Original seq", "Proposed seq"});
  for (const auto& [id, scale] : runs) {
    const LabeledGraph data = load_twin(id, scale, 1);
    for (std::size_t dims : dims_list) {
      TrainConfig cfg;
      cfg.dims = dims;
      const auto t = static_cast<std::size_t>(trials);
      const double orig_all = train_all_f1("original-sgd", data, cfg, t);
      const double prop_all = train_all_f1("oselm-dataflow", data, cfg, t);
      const double orig_seq = train_seq_f1("original-sgd", data, cfg, t);
      const double prop_seq = train_seq_f1("oselm-dataflow", data, cfg, t);
      table.add_row({data.name, std::to_string(dims),
                     Table::fmt(orig_all), Table::fmt(prop_all),
                     Table::fmt(orig_seq), Table::fmt(prop_seq)});
      std::printf(".");
      std::fflush(stdout);
    }
  }
  std::printf("\n");
  table.print();
  std::printf(
      "\npaper shape: Original wins in 'all'; in 'seq' Original drops "
      "(catastrophic forgetting) while Proposed holds or improves.\n");
  if (!dump_metrics(metrics_out)) return 1;
  return 0;
}
