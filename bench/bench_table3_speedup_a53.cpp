// Regenerates Table 3: training time of a single random walk vs the ARM
// Cortex-A53 CPU of the ZCU104 PS, and speedups of the FPGA accelerator.

#include "bench/speedup_bench.hpp"

int main(int argc, char** argv) {
  return seqge::bench::run_speedup_bench(
      "Table 3", seqge::perfmodel::a53_original_model(),
      seqge::perfmodel::a53_proposed_model(), argc, argv);
}
