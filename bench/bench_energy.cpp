// Extension bench (the paper's future work, Sec. 5): energy per trained
// random walk across platforms. Latencies come from the same models as
// Tables 3/4 (paper-anchored CPU interpolants, calibrated FPGA cycle
// model); power from fpga/energy_model.hpp (documented first-order
// estimates).

#include "bench/common.hpp"
#include "fpga/energy_model.hpp"
#include "fpga/perf_model.hpp"
#include "fpga/resource_model.hpp"
#include "perfmodel/cpu_model.hpp"

using namespace seqge;
using namespace seqge::bench;
using namespace seqge::fpga;

int main(int argc, char** argv) {
  std::string metrics_out;
  ArgParser args("bench_energy",
                 "extension — energy per trained walk across platforms");
  add_metrics_flag(args, &metrics_out);
  if (!args.parse(argc, argv)) return 1;

  print_header("Energy (extension)",
               "energy per trained random walk: modeled power x modeled "
               "latency; FPGA vs A53 vs i7");

  const EnergyModel em;
  const ResourceModel rm;

  Table table({"dims", "platform", "model", "ms/walk", "W", "mJ/walk",
               "efficiency vs A53-orig"});
  for (std::size_t dims : {32u, 64u, 96u}) {
    const AcceleratorConfig cfg = AcceleratorConfig::for_dims(dims);
    const double fpga_ms = PerfModel(cfg).walk_timing().total_us / 1000.0;
    const PowerProfile pl = em.pl_power(rm.estimate(cfg), rm.device());

    const EnergyReport rows[] = {
        EnergyModel::report(EnergyModel::cortex_a53(),
                            perfmodel::a53_original_model().predict_ms(dims)),
        EnergyModel::report(EnergyModel::cortex_a53(),
                            perfmodel::a53_proposed_model().predict_ms(dims)),
        EnergyModel::report(EnergyModel::i7_11700(),
                            perfmodel::i7_original_model().predict_ms(dims)),
        EnergyModel::report(EnergyModel::i7_11700(),
                            perfmodel::i7_proposed_model().predict_ms(dims)),
        EnergyModel::report(pl, fpga_ms),
    };
    const char* names[] = {"original", "proposed", "original", "proposed",
                           "proposed (Alg2)"};
    const double baseline_mj = rows[0].millijoules_per_walk;
    for (int i = 0; i < 5; ++i) {
      table.add_row(
          {std::to_string(dims), rows[i].platform, names[i],
           Table::fmt(rows[i].ms_per_walk, 3), Table::fmt(rows[i].watts, 2),
           Table::fmt(rows[i].millijoules_per_walk, 2),
           Table::fmt(baseline_mj / rows[i].millijoules_per_walk, 1) + "x"});
    }
  }
  table.print();
  std::printf(
      "\nreading: the FPGA's speedup compounds with its low power — per\n"
      "walk it is orders of magnitude more energy-efficient than the A53\n"
      "running the original model, and still ahead of the desktop CPU.\n");
  if (!dump_metrics(metrics_out)) return 1;
  return 0;
}
