// Regenerates Table 1: the three evaluation datasets. Prints the paper's
// specs next to the DC-SBM twins this repository actually evaluates on
// (at --scale, default full size), with structural stats that justify
// the substitution (homophily, degree distribution, connectivity).

#include "bench/common.hpp"
#include "graph/components.hpp"

using namespace seqge;
using namespace seqge::bench;

int main(int argc, char** argv) {
  double scale = 1.0;
  std::int64_t seed = 1;
  std::string metrics_out;
  ArgParser args("bench_table1_datasets", "Table 1 — dataset statistics");
  args.add_double("scale", &scale, "dataset scale factor (0, 1]");
  args.add_int("seed", &seed, "generator seed");
  add_metrics_flag(args, &metrics_out);
  if (!args.parse(argc, argv)) return 1;

  print_header("Table 1", "Datasets used in evaluations (DC-SBM twins)");

  Table table({"dataset", "#nodes (paper)", "#nodes (twin)",
               "#edges (paper)", "#edges (twin)", "#classes", "mean deg",
               "max deg", "homophily", "#components"});
  for (const DatasetSpec& spec : dataset_specs()) {
    const LabeledGraph twin =
        make_dataset(spec.id, static_cast<std::uint64_t>(seed), scale);
    const GraphStats s = compute_stats(twin);
    table.add_row({spec.name, std::to_string(spec.num_nodes),
                   std::to_string(s.num_nodes),
                   std::to_string(spec.num_edges),
                   std::to_string(s.num_edges),
                   std::to_string(spec.num_classes),
                   Table::fmt(s.mean_degree, 1),
                   std::to_string(s.max_degree),
                   Table::fmt(s.label_homophily, 2),
                   std::to_string(s.num_components)});
  }
  table.print();
  if (!dump_metrics(metrics_out)) return 1;
  return 0;
}
