// Dynamic-graph deletion bench: quantifies the two claims of the
// unlearning path.
//
// Phase 1 — stream: replay a Barabasi-Albert edge stream through a
// SlidingWindowGraph + StreamTrainer (random-alpha OS-ELM — the form
// whose covariance downdate stays applicable on hub-heavy streams),
// then delete --delete-frac of the live edges. Every deletion unlearns
// the walks the edge trained (exact rank-1 downdate where the
// conditioning guard allows; windowed re-train otherwise), and flushes
// to a ShardedEmbeddingStore every --deletions-per-publish deletions.
//
// Phase 2 — fresh baseline: an identically configured model trained
// from scratch on only the surviving edges (the embedding a batch
// system would rebuild after the deletions).
//
// Phase 3 — evaluation and gates, against graph truth on the surviving
// graph (fraction of a node's true neighbors inside its embedding
// top-10, sampled nodes, the same metric for both models):
//   * recall@10(streamed) >= recall@10(fresh) - 0.02 — unlearning keeps
//     the embedding as good as a from-scratch rebuild;
//   * deletion publishes copy O(touched) rows amortized — bounded by
//     the walks a deletion batch can touch times the store's
//     compaction amortization factor, never O(n) (individual flushes
//     may spike when a shard's cost-scheduled repack comes due, but
//     every repack row was paid for by a prior delta row);
//   * a tombstone-only publish copies ZERO embedding rows.
// Exit code 1 when any gate fails.
//
// --json writes BENCH_dynamic.json; --metrics-out dumps the
// observability registry (seqge_deletions_*, seqge_tombstones,
// seqge_store_tombstoned_rows).
//
//   ./bench/bench_dynamic [--tiny] [--nodes 50000] [--dims 16]
//       [--delete-frac 0.2] [--deletions-per-publish 64] [--seed 7]
//       [--json BENCH_dynamic.json] [--metrics-out metrics.json]

#include <algorithm>
#include <cmath>

#include "bench/common.hpp"
#include "graph/generators.hpp"
#include "graph/sliding_window.hpp"
#include "serve/query_engine.hpp"
#include "serve/sharded_store.hpp"

namespace seqge::bench {
namespace {

TrainConfig stream_train_config(std::size_t dims, std::uint64_t seed) {
  TrainConfig cfg;
  cfg.dims = dims;
  cfg.seed = seed;
  cfg.walk.walk_length = 12;
  cfg.walk.window = 3;
  cfg.negative_samples = 3;
  cfg.random_alpha = true;
  return cfg;
}

/// Graph-truth recall@k: fraction of u's surviving-graph neighbors
/// found in its embedding top-k, averaged over `queries` sampled nodes
/// with degree >= 1. Both models are scored by exactly this function.
double neighbor_recall(const MatrixF& embedding, const Graph& truth,
                       std::size_t k, std::size_t queries,
                       std::uint64_t seed) {
  auto snap = std::make_shared<serve::Snapshot>();
  snap->version = 1;
  snap->embedding = embedding;
  serve::QueryEngine engine(std::move(snap));
  Rng rng(seed);
  double sum = 0.0;
  std::size_t counted = 0;
  std::size_t attempts = 0;
  while (counted < queries && attempts < queries * 20) {
    ++attempts;
    const auto u = static_cast<NodeId>(rng.bounded(truth.num_nodes()));
    const auto nbrs = truth.neighbors(u);
    if (nbrs.empty()) continue;
    const auto hits = engine.topk(u, k);
    std::size_t found = 0;
    for (const auto& h : hits) {
      if (std::find(nbrs.begin(), nbrs.end(), h.node) != nbrs.end()) {
        ++found;
      }
    }
    sum += static_cast<double>(found) /
           static_cast<double>(std::min(k, nbrs.size()));
    ++counted;
  }
  return counted ? sum / static_cast<double>(counted) : 0.0;
}

}  // namespace
}  // namespace seqge::bench

int main(int argc, char** argv) {
  using namespace seqge;
  using namespace seqge::bench;

  std::size_t nodes = 50000, dims = 16, per_publish = 64, queries = 512;
  double delete_frac = 0.2;
  std::int64_t seed = 7;
  bool tiny = false;
  std::string json_out, metrics_out;
  ArgParser args("bench_dynamic",
                 "edge-deletion stream: unlearning accuracy vs a "
                 "from-scratch rebuild, and O(touched) publish cost");
  args.add_size("nodes", &nodes, "graph size (BA, m = 3)");
  args.add_size("dims", &dims, "embedding dimensions");
  args.add_double("delete-frac", &delete_frac,
                  "fraction of edges to delete");
  args.add_size("deletions-per-publish", &per_publish,
                "deletions between serving flushes");
  std::size_t retrain_walks = 2;
  args.add_size("retrain-walks", &retrain_walks,
                "refresh walks per surviving endpoint per deletion");
  args.add_size("queries", &queries, "recall sample size");
  args.add_int("seed", &seed, "random seed");
  args.add_flag("tiny", &tiny, "CI smoke scale (overrides sizes)");
  args.add_string("json", &json_out, "write BENCH_dynamic.json here");
  add_metrics_flag(args, &metrics_out);
  if (!args.parse(argc, argv)) return 1;
  if (tiny) {
    nodes = 2000;
    queries = 128;
    // Small enough that a flush's touched set stays under half the
    // store (past half, on_delta rebases — a full O(n) copy — and the
    // O(touched) gate would measure the rebase, not the delta path).
    per_publish = 8;
  }

  const Graph base = make_barabasi_albert(nodes, 3, 17);
  const TrainConfig tcfg =
      stream_train_config(dims, static_cast<std::uint64_t>(seed));
  std::printf("stream: %zu nodes, %zu edges, deleting %.0f%%\n",
              base.num_nodes(), base.num_edges(), 100.0 * delete_frac);

  // --- phase 1: insert everything, then delete a random subset --------
  Rng rng(tcfg.seed);
  auto streamed = make_model(ModelKind::kOselm, nodes, tcfg, rng);
  SlidingWindowGraph window(nodes);
  serve::ShardedEmbeddingStore store(8);
  StreamConfig scfg;
  scfg.train = tcfg;
  scfg.sink = &store;  // manual flush cadence; publish_every stays 0
  scfg.retrain_walks_per_endpoint = retrain_walks;
  StreamTrainer trainer(*streamed, window, scfg, rng);

  std::vector<Edge> edges;
  edges.reserve(base.num_edges());
  for (NodeId u = 0; u < base.num_nodes(); ++u) {
    for (NodeId v : base.neighbors(u)) {
      if (v > u) edges.push_back({u, v, base.edge_weight(u, v)});
    }
  }
  // Deletion mixture: half the budget "flaps" — an edge retracted a few
  // inserts after it appeared, inside the staleness horizon, so the
  // exact covariance downdate applies; the other half is deleted long
  // after training (stale) and takes the fallback re-train path.
  const auto to_delete =
      static_cast<std::size_t>(delete_frac *
                               static_cast<double>(edges.size()));
  const std::size_t flap_budget = to_delete / 2;
  const std::size_t flap_stride =
      flap_budget ? std::max<std::size_t>(2, edges.size() / flap_budget) : 0;

  Rng del_rng(tcfg.seed + 1);
  WallTimer insert_timer;
  std::uint64_t stamp = 0;
  std::size_t flapped = 0;
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const Edge& e = edges[i];
    trainer.insert(e.src, e.dst, e.weight, ++stamp);
    if (flap_stride != 0 && i % flap_stride == flap_stride - 1 &&
        flapped < flap_budget && i >= 8) {
      const Edge& old = edges[i - 1 - del_rng.bounded(8)];
      if (trainer.remove(old.src, old.dst)) ++flapped;
    }
  }
  trainer.flush();  // one full publish; stale deletions flush as deltas
  const double insert_s = insert_timer.seconds();

  for (std::size_t i = edges.size(); i > 1; --i) {
    std::swap(edges[i - 1], edges[del_rng.bounded(i)]);
  }
  std::uint64_t publish_rows_max = 0, publish_rows_total = 0;
  std::size_t deletion_publishes = 0, stale_deleted = 0;
  WallTimer delete_timer;
  std::uint64_t copied_mark = store.rows_copied();
  for (std::size_t i = 0;
       i < edges.size() && stale_deleted + flapped < to_delete; ++i) {
    if (!trainer.remove(edges[i].src, edges[i].dst)) continue;
    ++stale_deleted;
    if (stale_deleted % per_publish == 0 ||
        stale_deleted + flapped == to_delete) {
      trainer.flush();
      const std::uint64_t copied = store.rows_copied() - copied_mark;
      copied_mark = store.rows_copied();
      publish_rows_total += copied;
      publish_rows_max = std::max(publish_rows_max, copied);
      ++deletion_publishes;
    }
  }
  const double delete_s = delete_timer.seconds();
  const StreamStats& st = trainer.stats();

  // Tombstone-only republish: pure visibility flip, zero row copies.
  std::vector<NodeId> dead(trainer.dead_nodes().begin(),
                           trainer.dead_nodes().end());
  std::sort(dead.begin(), dead.end());
  const std::uint64_t copied_before_tomb = store.rows_copied();
  store.publish_tombstones(dead);
  const std::uint64_t tombstone_rows_copied =
      store.rows_copied() - copied_before_tomb;

  std::printf(
      "streamed: %zu inserted (%.1fs), %zu deleted (%.1fs); %zu walks "
      "unlearned exactly, %zu fallback re-trains, %zu nodes "
      "tombstoned\n",
      st.edges_inserted, insert_s, st.edges_deleted, delete_s,
      st.walks_unlearned, st.fallback_retrains, st.nodes_tombstoned);

  // --- phase 2: from-scratch baseline on the surviving graph ----------
  const Graph survivors = window.to_graph();
  Rng fresh_rng(tcfg.seed);
  auto fresh = make_model(ModelKind::kOselm, nodes, tcfg, fresh_rng);
  SlidingWindowGraph fresh_window(nodes);
  StreamConfig fresh_cfg;
  fresh_cfg.train = tcfg;
  StreamTrainer fresh_trainer(*fresh, fresh_window, fresh_cfg, fresh_rng);
  WallTimer fresh_timer;
  stamp = 0;
  for (NodeId u = 0; u < survivors.num_nodes(); ++u) {
    for (NodeId v : survivors.neighbors(u)) {
      if (v > u) fresh_trainer.insert(u, v, 1.0f, ++stamp);
    }
  }
  const double fresh_s = fresh_timer.seconds();
  std::printf("fresh baseline: %zu surviving edges re-trained in %.1fs\n",
              survivors.num_edges(), fresh_s);

  // --- phase 3: evaluation and gates ----------------------------------
  const double recall_streamed =
      neighbor_recall(streamed->extract_embedding(), survivors, 10,
                      queries, tcfg.seed + 2);
  const double recall_fresh =
      neighbor_recall(fresh->extract_embedding(), survivors, 10, queries,
                      tcfg.seed + 2);
  const double avg_rows =
      deletion_publishes ? static_cast<double>(publish_rows_total) /
                               static_cast<double>(deletion_publishes)
                         : 0.0;
  // O(touched) bound: per deletion, an exact unlearn touches its two
  // recorded walks (walk nodes + shared negatives each), and the
  // refresh/fallback re-train adds retrain_walks per surviving
  // endpoint — (2 + 2 * retrain_walks) walks is the ceiling. The store
  // additionally compacts a shard only once the delta volume since its
  // base reaches compact_cost_factor (1.0) times the shard's rows, so
  // every repacked row is paid for by a published delta row: amortized
  // cost <= 2x the touched rows, independent of n.
  const double touched_bound =
      static_cast<double>(per_publish) *
      static_cast<double>(2 + 2 * retrain_walks) *
      static_cast<double>(tcfg.walk.walk_length + tcfg.negative_samples);
  const double amortized_bound = 2.0 * touched_bound;

  const bool recall_ok = recall_streamed >= recall_fresh - 0.02;
  const bool publish_ok = avg_rows <= amortized_bound;
  const bool tombstone_ok = tombstone_rows_copied == 0;

  Table table({"metric", "streamed", "fresh"});
  table.add_row({"neighbor recall@10", Table::fmt(recall_streamed, 3),
                 Table::fmt(recall_fresh, 3)});
  table.add_row({"train wall (s)", Table::fmt(insert_s + delete_s, 1),
                 Table::fmt(fresh_s, 1)});
  table.print();
  std::printf(
      "deletion publishes: %zu, avg %.0f rows copied (max %llu, "
      "amortized bound %.0f, n = %zu); tombstone publish copied %llu "
      "rows\n",
      deletion_publishes, avg_rows,
      static_cast<unsigned long long>(publish_rows_max), amortized_bound,
      nodes, static_cast<unsigned long long>(tombstone_rows_copied));
  std::printf("gate recall@10 >= fresh - 0.02:   %s\n",
              recall_ok ? "PASS" : "FAIL");
  std::printf("gate publish rows <= O(touched):  %s\n",
              publish_ok ? "PASS" : "FAIL");
  std::printf("gate tombstone publish is 0-copy: %s\n",
              tombstone_ok ? "PASS" : "FAIL");

  if (!json_out.empty()) {
    Json root = Json::object();
    root.set("bench", Json::str("dynamic"));
    root.set("machine", machine_json());
    Json cfg = Json::object();
    cfg.set("nodes", Json::num(nodes));
    cfg.set("dims", Json::num(dims));
    cfg.set("delete_frac", Json::num(delete_frac));
    cfg.set("deletions_per_publish", Json::num(per_publish));
    cfg.set("retrain_walks_per_endpoint", Json::num(retrain_walks));
    cfg.set("tiny", Json::boolean(tiny));
    cfg.set("seed", Json::num(static_cast<std::int64_t>(seed)));
    root.set("config", cfg);
    Json stream = Json::object();
    stream.set("edges_inserted", Json::num(st.edges_inserted));
    stream.set("edges_deleted", Json::num(st.edges_deleted));
    stream.set("walks_trained", Json::num(st.walks_trained));
    stream.set("walks_unlearned", Json::num(st.walks_unlearned));
    stream.set("fallback_retrains", Json::num(st.fallback_retrains));
    stream.set("flap_deletions", Json::num(flapped));
    stream.set("stale_deletions", Json::num(stale_deleted));
    stream.set("nodes_tombstoned", Json::num(st.nodes_tombstoned));
    stream.set("insert_seconds", Json::num(insert_s));
    stream.set("delete_seconds", Json::num(delete_s));
    stream.set("fresh_seconds", Json::num(fresh_s));
    root.set("stream", stream);
    Json eval = Json::object();
    eval.set("recall_at_10_streamed", Json::num(recall_streamed));
    eval.set("recall_at_10_fresh", Json::num(recall_fresh));
    eval.set("deletion_publishes", Json::num(deletion_publishes));
    eval.set("avg_rows_copied_per_publish", Json::num(avg_rows));
    eval.set("max_rows_copied_per_publish",
             Json::num(static_cast<std::size_t>(publish_rows_max)));
    eval.set("touched_bound_rows", Json::num(touched_bound));
    eval.set("amortized_bound_rows", Json::num(amortized_bound));
    eval.set("tombstone_publish_rows_copied",
             Json::num(static_cast<std::size_t>(tombstone_rows_copied)));
    root.set("eval", eval);
    Json gates = Json::object();
    gates.set("recall_within_0_02_of_fresh", Json::boolean(recall_ok));
    gates.set("publish_cost_o_touched", Json::boolean(publish_ok));
    gates.set("tombstone_publish_zero_copy", Json::boolean(tombstone_ok));
    root.set("gates", gates);
    if (!write_json_file(json_out, root)) return 1;
  }
  if (!dump_metrics(metrics_out)) return 1;
  return (recall_ok && publish_ok && tombstone_ok) ? 0 : 1;
}
