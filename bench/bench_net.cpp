// Network serving load generator — drives the seqge-wire-v1 TCP
// front-end (src/net/) with traffic shaped like a production serving
// fleet and gates the overload contract from the serving roadmap:
//
//   phase 1  mixed      Zipfian hot-key skew, alternating calm/burst
//                        pipeline windows, a request-type mix (single
//                        top-k / edge score / batches), and a trainer
//                        thread publishing fresh snapshots the whole
//                        time. Reports sustained QPS + p50/p95/p99.
//   phase 2  overload   ~2x the engine queue's capacity in concurrent
//                        batch requests against a deliberately small
//                        queue: the server must stay up (ping + stats
//                        keep answering), shed with OVERLOADED
//                        (reject counter > 0), and never block a
//                        client indefinitely. Afterwards a calm leg
//                        must see p99 recover.
//   phase 3  identity   served responses bit-identical (==) to the
//                        in-process answers for the same snapshot.
//
//   ./bench/bench_net [--tiny] [--clients 4] [--duration-ms 4000]
//       [--json BENCH_net.json] [--metrics-out metrics_net.json]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench/common.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "serve/embedding_server.hpp"
#include "serve/embedding_store.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace seqge {
namespace {

using Clock = std::chrono::steady_clock;

MatrixF random_matrix(std::size_t rows, std::size_t cols,
                      std::uint64_t seed) {
  MatrixF m(rows, cols);
  Rng rng(seed);
  for (float& v : m.flat()) {
    v = static_cast<float>(rng.uniform() * 2.0 - 1.0);
  }
  return m;
}

/// Zipfian sampler over [0, n): CDF table once, then one uniform draw
/// plus a binary search per sample. Rank r gets mass 1/(r+1)^s — the
/// hot-key skew real embedding serving sees (popular accounts/items
/// are queried orders of magnitude more than the tail).
class Zipf {
 public:
  Zipf(std::size_t n, double s) : cdf_(n) {
    double sum = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      sum += 1.0 / std::pow(static_cast<double>(r + 1), s);
      cdf_[r] = sum;
    }
    for (double& c : cdf_) c /= sum;
  }

  [[nodiscard]] NodeId sample(Rng& rng) const {
    const double u = rng.uniform();
    const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
    const auto rank =
        static_cast<std::size_t>(std::distance(cdf_.begin(), it));
    // Scatter ranks over node-id space so the hot set is not the
    // contiguous prefix (which a row-cache would love too much).
    return static_cast<NodeId>((rank * 2654435761u) % cdf_.size());
  }

 private:
  std::vector<double> cdf_;
};

struct ClientTally {
  std::vector<double> lat_us;  ///< OK responses only
  std::uint64_t sent = 0;
  std::uint64_t ok = 0;
  std::uint64_t overloaded = 0;
  std::uint64_t ratelimited = 0;
  std::uint64_t other = 0;
};

void count_status(ClientTally& tally, net::Status s) {
  switch (s) {
    case net::Status::kOk: ++tally.ok; break;
    case net::Status::kOverloaded: ++tally.overloaded; break;
    case net::Status::kRateLimited: ++tally.ratelimited; break;
    default: ++tally.other;
  }
}

/// One closed-loop client with a pipeline window that alternates
/// between calm and burst every `phase_ms` — the burst phases are what
/// pile concurrent small requests into one poll sweep and exercise the
/// server's coalescing.
ClientTally run_mixed_client(std::uint16_t port, const Zipf& zipf,
                             std::uint64_t seed, std::size_t nodes,
                             int duration_ms, int phase_ms,
                             std::size_t calm_window,
                             std::size_t burst_window) {
  net::ClientConfig ccfg;
  ccfg.recv_timeout_ms = 15000;
  net::Client client("127.0.0.1", port, ccfg);
  Rng rng(seed);
  ClientTally tally;
  std::unordered_map<std::uint64_t, Clock::time_point> t0s;

  const auto start = Clock::now();
  const auto end = start + std::chrono::milliseconds(duration_ms);
  std::size_t outstanding = 0;
  while (Clock::now() < end) {
    const auto elapsed_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                              start)
            .count();
    const bool burst = (elapsed_ms / phase_ms) % 2 == 1;
    const std::size_t window = burst ? burst_window : calm_window;

    while (outstanding < window) {
      const double mix = rng.uniform();
      std::uint64_t id = 0;
      if (mix < 0.70) {
        id = client.send_topk(zipf.sample(rng), 10);
      } else if (mix < 0.85) {
        id = client.send_score(zipf.sample(rng),
                               static_cast<NodeId>(rng.bounded(nodes)),
                               EdgeScore::kCosine);
      } else if (mix < 0.95) {
        std::vector<NodeId> batch(8);
        for (auto& n : batch) n = zipf.sample(rng);
        id = client.send_topk_batch(batch, 10);
      } else {
        std::vector<std::pair<NodeId, NodeId>> pairs(8);
        for (auto& p : pairs) {
          p = {zipf.sample(rng), static_cast<NodeId>(rng.bounded(nodes))};
        }
        id = client.send_score_batch(pairs, EdgeScore::kCosine);
      }
      t0s.emplace(id, Clock::now());
      ++tally.sent;
      ++outstanding;
    }

    const net::Response resp = client.recv();
    --outstanding;
    count_status(tally, resp.status);
    const auto it = t0s.find(resp.id);
    if (it != t0s.end()) {
      if (resp.status == net::Status::kOk) {
        tally.lat_us.push_back(
            std::chrono::duration<double, std::micro>(Clock::now() -
                                                      it->second)
                .count());
      }
      t0s.erase(it);
    }
  }
  while (outstanding > 0) {
    count_status(tally, client.recv().status);
    --outstanding;
  }
  return tally;
}

}  // namespace
}  // namespace seqge

int main(int argc, char** argv) {
  using namespace seqge;
  using bench::Json;

  bool tiny = false;
  std::size_t clients = 4, nodes = 20000, dims = 32;
  std::int64_t duration_ms = 4000, phase_ms = 500, seed = 42;
  std::string json_path, metrics_out;
  ArgParser args("bench_net",
                 "traffic-shaped load generator for the seqge-wire-v1 "
                 "network serving front-end");
  args.add_flag("tiny", &tiny, "CI-sized run (small store, short phases)");
  args.add_size("clients", &clients, "concurrent client connections");
  args.add_size("nodes", &nodes, "embedding store rows");
  args.add_size("dims", &dims, "embedding dimensions");
  args.add_int("duration-ms", &duration_ms, "mixed-phase duration");
  args.add_int("phase-ms", &phase_ms, "calm/burst alternation period");
  args.add_int("seed", &seed, "workload RNG seed");
  args.add_string("json", &json_path, "write BENCH_net.json here");
  bench::add_metrics_flag(args, &metrics_out);
  if (!args.parse(argc, argv)) return 1;
  if (tiny) {
    nodes = std::min<std::size_t>(nodes, 4000);
    duration_ms = std::min<std::int64_t>(duration_ms, 1200);
    phase_ms = std::min<std::int64_t>(phase_ms, 200);
  }

  bench::print_header(
      "network serving",
      "wire protocol + admission control under Zipfian burst traffic");
  std::printf(
      "store %zu x %zu, %zu clients, %lld ms mixed phase "
      "(calm/burst window 4/32 every %lld ms)\n\n",
      nodes, dims, clients, static_cast<long long>(duration_ms),
      static_cast<long long>(phase_ms));

  Json root = Json::object();
  root.set("bench", Json::str("net"));
  root.set("machine", bench::machine_json());
  {
    Json cfg = Json::object();
    cfg.set("tiny", Json::boolean(tiny));
    cfg.set("nodes", Json::num(nodes));
    cfg.set("dims", Json::num(dims));
    cfg.set("clients", Json::num(clients));
    cfg.set("duration_ms", Json::num(static_cast<std::size_t>(duration_ms)));
    cfg.set("phase_ms", Json::num(static_cast<std::size_t>(phase_ms)));
    root.set("config", cfg);
  }

  const Zipf zipf(nodes, 1.1);

  // ---- phase 1: mixed traffic with a concurrent publisher ---------------
  double mixed_p99 = 0.0, mixed_qps = 0.0;
  std::uint64_t coalesced_batches = 0, coalesced_requests = 0;
  std::uint64_t mixed_bad_frames = 0;
  bool mixed_ok_majority = false;
  {
    auto store = std::make_shared<serve::EmbeddingStore>();
    store->publish(random_matrix(nodes, dims, 7), 100, "bench");
    serve::ServerConfig ecfg;
    ecfg.threads = 4;
    serve::EmbeddingServer engine(store, ecfg);
    net::NetServerConfig ncfg;
    ncfg.workers = 2;
    net::Server front(engine, ncfg);
    front.start();

    // Trainer stand-in: keep publishing fresh snapshots so queries keep
    // crossing engine rebuilds, exactly like serving during training.
    std::atomic<bool> stop_pub{false};
    std::thread publisher([&] {
      std::uint64_t version_seed = 8;
      while (!stop_pub.load(std::memory_order_acquire)) {
        store->publish(random_matrix(nodes, dims, version_seed++),
                       version_seed * 100, "bench");
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
    });

    std::vector<ClientTally> tallies(clients);
    std::vector<std::thread> threads;
    const auto t_start = Clock::now();
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        tallies[c] = run_mixed_client(
            front.port(), zipf, static_cast<std::uint64_t>(seed) + c,
            nodes, static_cast<int>(duration_ms),
            static_cast<int>(phase_ms), 4, 32);
      });
    }
    for (auto& th : threads) th.join();
    const double wall_s =
        std::chrono::duration<double>(Clock::now() - t_start).count();
    stop_pub.store(true, std::memory_order_release);
    publisher.join();

    ClientTally total;
    for (auto& t : tallies) {
      total.sent += t.sent;
      total.ok += t.ok;
      total.overloaded += t.overloaded;
      total.ratelimited += t.ratelimited;
      total.other += t.other;
      total.lat_us.insert(total.lat_us.end(), t.lat_us.begin(),
                          t.lat_us.end());
    }
    mixed_qps = static_cast<double>(total.ok) / wall_s;
    const double p50 = percentile(total.lat_us, 0.50);
    const double p95 = percentile(total.lat_us, 0.95);
    mixed_p99 = percentile(total.lat_us, 0.99);
    mixed_ok_majority = total.ok * 2 > total.sent;
    mixed_bad_frames = front.bad_frames();

    std::printf(
        "mixed:    %.0f qps ok (%llu sent, %llu ok, %llu overloaded, "
        "%llu other)\n          p50 %.0f us, p95 %.0f us, p99 %.0f us; "
        "%llu snapshot versions served\n",
        mixed_qps, static_cast<unsigned long long>(total.sent),
        static_cast<unsigned long long>(total.ok),
        static_cast<unsigned long long>(total.overloaded),
        static_cast<unsigned long long>(total.other), p50, p95, mixed_p99,
        static_cast<unsigned long long>(engine.engine_rebuilds()));

    // Coalescing counters live in the global obs registry.
    const auto* cb = obs::Registry::global().find_counter(
        "seqge_net_coalesced_batches_total");
    const auto* cr = obs::Registry::global().find_counter(
        "seqge_net_coalesced_requests_total");
    coalesced_batches = cb != nullptr ? cb->value() : 0;
    coalesced_requests = cr != nullptr ? cr->value() : 0;
    std::printf(
        "          coalescing: %llu wire requests merged into %llu "
        "engine batches\n",
        static_cast<unsigned long long>(coalesced_requests),
        static_cast<unsigned long long>(coalesced_batches));

    front.stop();
    engine.drain_for(std::chrono::seconds(10));

    Json mixed = Json::object();
    mixed.set("qps_ok", Json::num(mixed_qps));
    mixed.set("sent", Json::num(total.sent));
    mixed.set("ok", Json::num(total.ok));
    mixed.set("overloaded", Json::num(total.overloaded));
    mixed.set("ratelimited", Json::num(total.ratelimited));
    mixed.set("other", Json::num(total.other));
    mixed.set("p50_us", Json::num(p50));
    mixed.set("p95_us", Json::num(p95));
    mixed.set("p99_us", Json::num(mixed_p99));
    mixed.set("snapshot_versions", Json::num(engine.engine_rebuilds()));
    mixed.set("coalesced_batches", Json::num(coalesced_batches));
    mixed.set("coalesced_requests", Json::num(coalesced_requests));
    root.set("mixed", mixed);
  }

  // ---- phase 2: overload + recovery -------------------------------------
  std::uint64_t overload_rejects = 0;
  bool overload_alive = false, overload_all_answered = false;
  double recovery_p99 = 0.0;
  {
    auto store = std::make_shared<serve::EmbeddingStore>();
    store->publish(random_matrix(nodes, dims, 70), 100, "bench");
    serve::ServerConfig ecfg;
    ecfg.threads = 1;  // deliberately under-provisioned
    ecfg.queue_capacity = 64;
    serve::EmbeddingServer engine(store, ecfg);
    net::Server front(engine, {});
    front.start();

    // Offer ~2x the queue's capacity in simultaneously outstanding
    // batch requests (batches skip coalescing: one queue slot each).
    const std::size_t overload_clients = std::max<std::size_t>(2, clients);
    const std::size_t per_client =
        (2 * ecfg.queue_capacity + overload_clients - 1) / overload_clients;
    std::vector<ClientTally> tallies(overload_clients);
    std::vector<std::thread> threads;
    for (std::size_t c = 0; c < overload_clients; ++c) {
      threads.emplace_back([&, c] {
        net::ClientConfig ccfg;
        ccfg.recv_timeout_ms = 30000;
        net::Client cl("127.0.0.1", front.port(), ccfg);
        Rng rng(static_cast<std::uint64_t>(seed) + 100 + c);
        std::vector<NodeId> batch(32);
        ClientTally& tally = tallies[c];
        for (int round = 0; round < 6; ++round) {
          std::vector<std::uint64_t> ids;
          for (std::size_t i = 0; i < per_client; ++i) {
            for (auto& n : batch) n = zipf.sample(rng);
            ids.push_back(cl.send_topk_batch(batch, 10));
            ++tally.sent;
          }
          for (const std::uint64_t id : ids) {
            count_status(tally, cl.wait(id).status);
          }
        }
      });
    }
    // While the flood is on, the probe connection must keep answering:
    // "stays up" means an operator can still ping and read stats.
    {
      net::ClientConfig ccfg;
      ccfg.recv_timeout_ms = 30000;
      net::Client probe("127.0.0.1", front.port(), ccfg);
      bool alive = true;
      for (int i = 0; i < 20; ++i) {
        if (probe.ping().status != net::Status::kOk) alive = false;
        if (probe.stats().status != net::Status::kOk) alive = false;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
      overload_alive = alive;
    }
    for (auto& th : threads) th.join();

    ClientTally total;
    for (auto& t : tallies) {
      total.sent += t.sent;
      total.ok += t.ok;
      total.overloaded += t.overloaded;
      total.other += t.other;
    }
    overload_rejects = front.rejected_overload();
    overload_all_answered =
        total.ok + total.overloaded + total.other == total.sent;

    // Post-burst recovery: a calm synchronous client should see p99
    // come back down once the queue drains.
    std::vector<double> rec_lat;
    {
      net::ClientConfig ccfg;
      ccfg.recv_timeout_ms = 30000;
      net::Client cl("127.0.0.1", front.port(), ccfg);
      Rng rng(static_cast<std::uint64_t>(seed) + 999);
      const int probes = tiny ? 100 : 300;
      for (int i = 0; i < probes; ++i) {
        const auto t0 = Clock::now();
        const net::Response r = cl.topk(zipf.sample(rng), 10);
        if (r.status == net::Status::kOk) {
          rec_lat.push_back(std::chrono::duration<double, std::micro>(
                                Clock::now() - t0)
                                .count());
        }
      }
    }
    const double rec_p50 = percentile(rec_lat, 0.50);
    recovery_p99 = percentile(rec_lat, 0.99);

    std::printf(
        "overload: %llu batch requests offered against a %zu-slot queue "
        "-> %llu ok, %llu shed OVERLOADED (server counter %llu); "
        "probes alive: %s\n"
        "recovery: p50 %.0f us, p99 %.0f us over %zu calm queries\n",
        static_cast<unsigned long long>(total.sent), ecfg.queue_capacity,
        static_cast<unsigned long long>(total.ok),
        static_cast<unsigned long long>(total.overloaded),
        static_cast<unsigned long long>(overload_rejects),
        overload_alive ? "yes" : "NO", rec_p50, recovery_p99,
        rec_lat.size());

    front.stop();
    engine.drain_for(std::chrono::seconds(10));

    Json over = Json::object();
    over.set("offered", Json::num(total.sent));
    over.set("ok", Json::num(total.ok));
    over.set("shed_overloaded", Json::num(total.overloaded));
    over.set("server_reject_counter", Json::num(overload_rejects));
    over.set("probes_alive", Json::boolean(overload_alive));
    over.set("all_answered", Json::boolean(overload_all_answered));
    over.set("recovery_p50_us", Json::num(rec_p50));
    over.set("recovery_p99_us", Json::num(recovery_p99));
    root.set("overload", over);
  }

  // ---- phase 3: loopback bit-identity -----------------------------------
  bool identity = true;
  {
    auto store = std::make_shared<serve::EmbeddingStore>();
    store->publish(random_matrix(std::min<std::size_t>(nodes, 2000), dims,
                                 5),
                   100, "bench");
    serve::EmbeddingServer engine(store);
    net::Server front(engine, {});
    front.start();
    net::Client cl("127.0.0.1", front.port());
    Rng rng(static_cast<std::uint64_t>(seed) + 3);
    const std::size_t n = store->current()->num_nodes();
    for (int i = 0; i < 64 && identity; ++i) {
      const auto u = static_cast<NodeId>(rng.bounded(n));
      const serve::TopKResult local = engine.topk(u, 10).get();
      const net::Response wire = cl.topk(u, 10);
      identity = wire.status == net::Status::kOk &&
                 wire.version == local.version &&
                 wire.neighbors.size() == local.neighbors.size();
      for (std::size_t j = 0; identity && j < local.neighbors.size(); ++j) {
        identity = wire.neighbors[j].node == local.neighbors[j].node &&
                   wire.neighbors[j].score == local.neighbors[j].score;
      }
      const auto v = static_cast<NodeId>(rng.bounded(n));
      const serve::ScoreResult slocal =
          engine.score(u, v, EdgeScore::kCosine).get();
      const net::Response swire = cl.score(u, v, EdgeScore::kCosine);
      identity = identity && swire.status == net::Status::kOk &&
                 swire.score == slocal.score;
    }
    std::printf("identity: served == in-process (bit-exact): %s\n\n",
                identity ? "yes" : "NO");
    front.stop();
    engine.drain_for(std::chrono::seconds(10));

    Json ident = Json::object();
    ident.set("queries", Json::num(static_cast<std::size_t>(64 * 2)));
    ident.set("bit_identical", Json::boolean(identity));
    root.set("identity", ident);
  }

  // ---- gates ------------------------------------------------------------
  const bool gate_qps = mixed_qps > 0.0 && mixed_ok_majority;
  const bool gate_rejects = overload_rejects > 0;
  const bool gate_recovery =
      recovery_p99 > 0.0 &&
      recovery_p99 <= std::max(10.0 * mixed_p99, 20000.0);
  const bool gate_clean_wire = mixed_bad_frames == 0;
  Json gates = Json::object();
  gates.set("mixed_sustained", Json::boolean(gate_qps));
  gates.set("overload_sheds", Json::boolean(gate_rejects));
  gates.set("overload_stays_up", Json::boolean(overload_alive));
  gates.set("overload_no_blocking", Json::boolean(overload_all_answered));
  gates.set("post_burst_p99_recovers", Json::boolean(gate_recovery));
  gates.set("loopback_bit_identical", Json::boolean(identity));
  gates.set("no_bad_frames_on_clean_traffic",
            Json::boolean(gate_clean_wire));
  root.set("gates", gates);

  const bool all_gates = gate_qps && gate_rejects && overload_alive &&
                         overload_all_answered && gate_recovery &&
                         identity && gate_clean_wire;
  std::printf("gates: %s\n", all_gates ? "ALL PASS" : "FAILURES");

  bool ok = true;
  if (!json_path.empty()) ok = bench::write_json_file(json_path, root);
  ok = bench::dump_metrics(metrics_out) && ok;
  return ok && all_gates ? 0 : 1;
}
