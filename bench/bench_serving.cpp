// Serving bench: quantifies the two claims of the serving subsystem.
//
// Phase 1 — concurrent operation: train_all runs on its own thread
// (publishing snapshots into the EmbeddingStore at a batch cadence)
// while client threads hammer the EmbeddingServer with top-k queries.
// Reports training throughput (walks/s) and serving QPS with
// p50/p95/p99 latency measured *during* training — the store's RCU swap
// is the only coupling between the two sides.
//
// Phase 2 — IVF vs exact brute force on the final snapshot: ground
// truth from the exact engine, then recall@k and per-query wall-clock
// for the IVF engine across a sweep of nprobe values. On a BA graph at
// the default 50k nodes the IVF engine beats brute force wall-clock at
// recall@10 >= 0.9.
//
//   ./bench/bench_serving [--tiny] [--nodes 50000] [--model oselm]
//       [--serve-threads 4] [--queries 10000] [--top-k 10]

#include <atomic>
#include <thread>

#include "bench/common.hpp"
#include "graph/generators.hpp"
#include "serve/embedding_server.hpp"
#include "serve/embedding_store.hpp"
#include "serve/query_engine.hpp"
#include "util/stats.hpp"

using namespace seqge;
using namespace seqge::bench;

int main(int argc, char** argv) {
  std::int64_t nodes = 50000, ba_edges = 5, dims = 32, seed = 42;
  std::size_t top_k = 10, serve_threads = 4, snapshot_every = 50;
  std::size_t query_target = 10000, max_walks = 0;
  std::size_t nlist = 128, eval_queries = 200;
  bool tiny = false;
  ArgParser args("bench_serving",
                 "concurrent train+serve throughput and IVF vs brute-force "
                 "k-NN on the final snapshot");
  args.add_int("nodes", &nodes, "BA graph nodes");
  args.add_int("ba-edges", &ba_edges, "BA attachment edges per node");
  args.add_int("dims", &dims, "embedding dimensions");
  args.add_size("top-k", &top_k, "neighbors per query");
  args.add_size("serve-threads", &serve_threads, "server worker threads");
  args.add_size("snapshot-every", &snapshot_every,
                "publish a snapshot every this many training batches");
  args.add_size("queries", &query_target,
                "serving queries to issue during training");
  args.add_size("max-walks", &max_walks,
                "training walk budget (0 = the full corpus)");
  args.add_size("nlist", &nlist, "IVF coarse cells");
  args.add_size("eval-queries", &eval_queries,
                "query nodes for the recall/latency sweep");
  args.add_flag("tiny", &tiny, "CI smoke scale (overrides sizes)");
  args.add_int("seed", &seed, "random seed");
  if (!args.parse(argc, argv)) return 1;

  if (tiny) {
    nodes = 2000;
    query_target = 1000;
    nlist = 32;
    eval_queries = 50;
    serve_threads = 2;
    snapshot_every = 5;
  }

  print_header("Serving",
               "versioned snapshot store + k-NN query engine under "
               "concurrent online training");

  const Graph graph =
      make_barabasi_albert(static_cast<std::size_t>(nodes),
                           static_cast<std::size_t>(ba_edges),
                           static_cast<std::uint64_t>(seed));
  std::printf("BA graph: %zu nodes, %zu edges; %u hardware threads\n\n",
              graph.num_nodes(), graph.num_edges(),
              std::thread::hardware_concurrency());

  TrainConfig cfg;
  cfg.dims = static_cast<std::size_t>(dims);
  cfg.seed = static_cast<std::uint64_t>(seed);
  cfg.negative_mode = NegativeMode::kPerWalk;
  // One walk per node covers every node's embedding while keeping the
  // concurrent window to seconds rather than minutes.
  cfg.walks_per_node = 1;

  auto store = std::make_shared<serve::EmbeddingStore>();

  // ---------------------------------------------------- phase 1: concurrent
  std::atomic<bool> trainer_done{false};
  TrainStats train_stats;
  double train_seconds = 0.0;
  std::thread trainer([&] {
    Rng rng(cfg.seed);
    auto model = make_backend("oselm", graph.num_nodes(), cfg, rng);
    PipelineConfig pipe;
    pipe.walker_threads = 2;
    pipe.snapshot_every = snapshot_every;
    pipe.snapshot_sink = store.get();
    pipe.max_walks = max_walks;
    WallTimer t;
    train_stats = train_all(*model, graph, cfg, rng, pipe);
    train_seconds = t.seconds();
    trainer_done.store(true, std::memory_order_release);
  });

  if (!store->wait_for_version(1, std::chrono::minutes(10))) {
    std::fprintf(stderr, "trainer never published\n");
    trainer.join();
    return 1;
  }

  serve::ServerConfig srv_cfg;
  srv_cfg.threads = serve_threads;
  serve::EmbeddingServer server(store, srv_cfg);

  std::atomic<std::size_t> during_training{0};
  std::size_t issued = 0;
  std::uint64_t first_version = 0, last_version = 0;
  {
    Rng qrng(cfg.seed + 1);
    WallTimer qt;
    std::vector<std::future<serve::TopKResult>> inflight;
    inflight.reserve(64);
    while (issued < query_target ||
           !trainer_done.load(std::memory_order_acquire)) {
      // Submit in small bursts so the queue stays busy without
      // unbounded future accumulation.
      for (int b = 0; b < 32; ++b) {
        inflight.push_back(server.topk(
            static_cast<NodeId>(qrng.bounded(graph.num_nodes())), top_k));
        ++issued;
      }
      for (auto& f : inflight) {
        const serve::TopKResult res = f.get();
        if (first_version == 0) first_version = res.version;
        last_version = res.version;
        if (!trainer_done.load(std::memory_order_acquire)) {
          during_training.fetch_add(1, std::memory_order_relaxed);
        }
      }
      inflight.clear();
      // Training finished and the target met — stop issuing.
      if (issued >= query_target &&
          trainer_done.load(std::memory_order_acquire)) {
        break;
      }
    }
    trainer.join();
    const double query_seconds = qt.seconds();
    server.drain();

    const serve::LatencySummary lat = server.latency();
    Table table({"metric", "value"});
    table.add_row({"training walks", std::to_string(train_stats.num_walks)});
    table.add_row({"training walks/s",
                   Table::fmt(static_cast<double>(train_stats.num_walks) /
                              train_seconds, 1)});
    table.add_row(
        {"snapshots published",
         std::to_string(static_cast<std::size_t>(store->version()))});
    table.add_row({"queries served", std::to_string(lat.count)});
    table.add_row({"queries during training",
                   std::to_string(during_training.load())});
    table.add_row({"snapshot versions seen",
                   std::to_string(first_version) + " -> " +
                       std::to_string(last_version)});
    table.add_row({"QPS", Table::fmt(static_cast<double>(lat.count) /
                                     query_seconds, 1)});
    table.add_row({"p50 latency (us)", Table::fmt(lat.p50_us, 1)});
    table.add_row({"p95 latency (us)", Table::fmt(lat.p95_us, 1)});
    table.add_row({"p99 latency (us)", Table::fmt(lat.p99_us, 1)});
    table.print();

    const bool concurrent_ok =
        train_stats.num_walks > 0 && during_training.load() > 0;
    std::printf("\nconcurrent operation: %s (%zu walks trained, %zu queries "
                "answered while training ran)\n\n",
                concurrent_ok ? "yes" : "NO", train_stats.num_walks,
                during_training.load());
  }

  // ------------------------------------------- phase 2: IVF vs brute force
  std::printf("IVF vs exact brute force on the final snapshot "
              "(recall@%zu over %zu query nodes):\n",
              top_k, eval_queries);
  const auto snap = store->current();
  const serve::QueryEngine exact(snap);

  Rng qrng(cfg.seed + 2);
  std::vector<NodeId> query_nodes;
  query_nodes.reserve(eval_queries);
  for (std::size_t q = 0; q < eval_queries; ++q) {
    query_nodes.push_back(
        static_cast<NodeId>(qrng.bounded(graph.num_nodes())));
  }

  std::vector<std::vector<serve::Neighbor>> truth(eval_queries);
  const double exact_ms = time_ms([&] {
    for (std::size_t q = 0; q < eval_queries; ++q) {
      truth[q] = exact.topk(query_nodes[q], top_k);
    }
  }, 3);

  serve::IndexConfig ivf_cfg;
  ivf_cfg.kind = serve::IndexConfig::Kind::kIvf;
  ivf_cfg.nlist = nlist;
  ivf_cfg.seed = cfg.seed;
  WallTimer build_timer;
  const serve::QueryEngine ivf(snap, ivf_cfg);
  const double build_ms = build_timer.millis();

  Table table({"engine", "nprobe", "recall@" + std::to_string(top_k),
               "us/query", "speedup"});
  const double exact_us = exact_ms * 1000.0 /
                          static_cast<double>(eval_queries);
  table.add_row({"brute force", "-", "1.000", Table::fmt(exact_us, 1),
                 "1.00x"});

  bool recall_ok = false, perf_ok = false;
  for (std::size_t nprobe : {2, 4, 8, 16, 32}) {
    if (nprobe >= ivf.nlist()) break;
    double recall_sum = 0.0;
    std::vector<std::vector<serve::Neighbor>> approx(eval_queries);
    const double ivf_ms = time_ms([&] {
      for (std::size_t q = 0; q < eval_queries; ++q) {
        approx[q] = ivf.topk(query_nodes[q], top_k,
                             serve::Similarity::kCosine, nprobe);
      }
    }, 3);
    for (std::size_t q = 0; q < eval_queries; ++q) {
      recall_sum += serve::recall_at_k(truth[q], approx[q]);
    }
    const double recall = recall_sum / static_cast<double>(eval_queries);
    const double ivf_us =
        ivf_ms * 1000.0 / static_cast<double>(eval_queries);
    table.add_row({"ivf", std::to_string(nprobe), Table::fmt(recall, 3),
                   Table::fmt(ivf_us, 1),
                   Table::fmt(exact_us / ivf_us, 2) + "x"});
    if (recall >= 0.9) {
      recall_ok = true;
      if (ivf_us < exact_us) perf_ok = true;
    }
  }
  table.print();
  std::printf("\nIVF build: %.1f ms for nlist=%zu over %zu nodes\n",
              build_ms, ivf.nlist(), graph.num_nodes());
  std::printf("IVF beats brute force at recall@%zu >= 0.9: %s\n", top_k,
              perf_ok ? "yes" : "NO");
  // --tiny is the CI smoke: at 2000 nodes the brute-force scan is so
  // cheap that the timing comparison is scheduler noise, so only the
  // recall criterion gates there; full scale gates on both.
  const bool ok = tiny ? recall_ok : (recall_ok && perf_ok);
  return ok ? 0 : 1;
}
