// Serving bench: quantifies the two claims of the serving subsystem.
//
// Phase 1 — concurrent operation: train_all runs on its own thread
// (publishing snapshots into the EmbeddingStore at a batch cadence)
// while client threads hammer the EmbeddingServer with top-k queries.
// Reports training throughput (walks/s) and serving QPS with
// p50/p95/p99 latency measured *during* training — the store's RCU swap
// is the only coupling between the two sides.
//
// Phase 2 — IVF vs exact brute force on the final snapshot: ground
// truth from the exact engine, then recall@k and per-query wall-clock
// for the IVF engine across a sweep of nprobe values. On a BA graph at
// the default 50k nodes the IVF engine beats brute force wall-clock at
// recall@10 >= 0.9.
//
// Phase 3 — sharded copy-on-write delta publishing vs full-snapshot
// publishing: replay a sequential-training touch pattern (a few hundred
// rows per publish) against (a) the unsharded EmbeddingStore, which
// copies the full matrix per publish, and (b) a ShardedEmbeddingStore
// taking row deltas. Reports ms/publish and rows copied for both and
// gates on the delta path being >= 5x cheaper — at equal answer
// quality: the sharded fan-out exact top-k must be *identical* to the
// N = 1 store's (with --scan-threads, the threaded fan-out), and the
// sharded per-shard IVF must reach the same recall@10 bar (0.9) as the
// unsharded index. The delta replay also runs under the legacy
// chain-depth compaction policy vs the amortized-cost policy and gates
// on the cost policy copying fewer rows per publish.
//
// Phase 4 (--quant int8, the default; bfp for the block-floating-point
// layout) — float vs quantized scan on the final snapshot: the same
// IVF engine with and without the quantized candidate stage. Gates on
// the quantized engine holding recall@10 >= 0.95 against the float
// engine at the same nprobe, and (at full scale) on it being faster.
//
// Phase 5 — observability overhead: the exact-engine scan workload
// timed with the metrics registry enabled vs disabled (SEQGE_OBS
// runtime switch). Gates (at full scale) on the enabled run costing
// <= 2% over the disabled run, and (at every scale) on the disabled
// run recording nothing — the scan counter must not move.
//
// --json <path> writes every phase's metrics as BENCH_serving.json;
// --metrics-out <path> dumps the observability registry itself.
//
//   ./bench/bench_serving [--tiny] [--nodes 50000] [--model oselm]
//       [--serve-threads 4] [--queries 10000] [--top-k 10] [--shards 32]
//       [--quant int8|none] [--scan-threads N] [--json out.json]
//       [--metrics-out metrics.json]

#include <atomic>
#include <cmath>
#include <thread>

#include "bench/common.hpp"
#include "embedding/sparse_delta.hpp"
#include "obs/metrics.hpp"
#include "graph/generators.hpp"
#include "linalg/kernels.hpp"
#include "serve/embedding_server.hpp"
#include "serve/embedding_store.hpp"
#include "serve/query_engine.hpp"
#include "serve/sharded_query.hpp"
#include "serve/sharded_store.hpp"
#include "util/stats.hpp"

using namespace seqge;
using namespace seqge::bench;

int main(int argc, char** argv) {
  std::int64_t nodes = 50000, ba_edges = 5, dims = 32, seed = 42;
  std::size_t top_k = 10, serve_threads = 4, snapshot_every = 50;
  std::size_t query_target = 10000, max_walks = 0;
  std::size_t nlist = 128, eval_queries = 200;
  std::size_t shards = 32, delta_publishes = 100, touched_per_publish = 160;
  std::size_t scan_threads = 0;
  std::string quant = "int8", json_path;
  bool tiny = false;
  ArgParser args("bench_serving",
                 "concurrent train+serve throughput and IVF vs brute-force "
                 "k-NN on the final snapshot");
  args.add_int("nodes", &nodes, "BA graph nodes");
  args.add_int("ba-edges", &ba_edges, "BA attachment edges per node");
  args.add_int("dims", &dims, "embedding dimensions");
  args.add_size("top-k", &top_k, "neighbors per query");
  args.add_size("serve-threads", &serve_threads, "server worker threads");
  args.add_size("snapshot-every", &snapshot_every,
                "publish a snapshot every this many training batches");
  args.add_size("queries", &query_target,
                "serving queries to issue during training");
  args.add_size("max-walks", &max_walks,
                "training walk budget (0 = the full corpus)");
  args.add_size("nlist", &nlist, "IVF coarse cells");
  args.add_size("eval-queries", &eval_queries,
                "query nodes for the recall/latency sweep");
  args.add_size("shards", &shards, "sharded-store shard count (phase 3)");
  args.add_size("delta-publishes", &delta_publishes,
                "publish rounds for the delta-vs-full comparison");
  args.add_size("touched", &touched_per_publish,
                "rows touched per delta publish (sequential-training "
                "footprint)");
  args.add_size("scan-threads", &scan_threads,
                "sharded fan-out threads (0 = sequential scan)");
  args.add_choice("quant", &quant, {"int8", "bfp", "none"},
                  "quantized-scan phase mode: int8 (float scales), bfp "
                  "(shared int16 exponents), or none (skip)");
  args.add_string("json", &json_path,
                  "write results to this path (BENCH_serving.json)");
  std::string metrics_out;
  add_metrics_flag(args, &metrics_out);
  args.add_flag("tiny", &tiny, "CI smoke scale (overrides sizes)");
  args.add_int("seed", &seed, "random seed");
  if (!args.parse(argc, argv)) return 1;

  if (tiny) {
    nodes = 2000;
    query_target = 1000;
    nlist = 32;
    eval_queries = 50;
    serve_threads = 2;
    snapshot_every = 5;
    shards = 8;
    delta_publishes = 20;
    touched_per_publish = 40;
  }

  print_header("Serving",
               "versioned snapshot store + k-NN query engine under "
               "concurrent online training");

  const Graph graph =
      make_barabasi_albert(static_cast<std::size_t>(nodes),
                           static_cast<std::size_t>(ba_edges),
                           static_cast<std::uint64_t>(seed));
  std::printf("BA graph: %zu nodes, %zu edges; %u hardware threads\n\n",
              graph.num_nodes(), graph.num_edges(),
              std::thread::hardware_concurrency());

  TrainConfig cfg;
  cfg.dims = static_cast<std::size_t>(dims);
  cfg.seed = static_cast<std::uint64_t>(seed);
  cfg.negative_mode = NegativeMode::kPerWalk;
  // One walk per node covers every node's embedding while keeping the
  // concurrent window to seconds rather than minutes.
  cfg.walks_per_node = 1;

  auto store = std::make_shared<serve::EmbeddingStore>();

  // ---------------------------------------------------- phase 1: concurrent
  std::atomic<bool> trainer_done{false};
  TrainStats train_stats;
  double train_seconds = 0.0;
  std::thread trainer([&] {
    Rng rng(cfg.seed);
    auto model = make_backend("oselm", graph.num_nodes(), cfg, rng);
    PipelineConfig pipe;
    pipe.walker_threads = 2;
    pipe.snapshot_every = snapshot_every;
    pipe.snapshot_sink = store.get();
    pipe.max_walks = max_walks;
    WallTimer t;
    train_stats = train_all(*model, graph, cfg, rng, pipe);
    train_seconds = t.seconds();
    trainer_done.store(true, std::memory_order_release);
  });

  if (!store->wait_for_version(1, std::chrono::minutes(10))) {
    std::fprintf(stderr, "trainer never published\n");
    trainer.join();
    return 1;
  }

  serve::ServerConfig srv_cfg;
  srv_cfg.threads = serve_threads;
  serve::EmbeddingServer server(store, srv_cfg);

  std::atomic<std::size_t> during_training{0};
  std::size_t issued = 0;
  std::uint64_t first_version = 0, last_version = 0;
  serve::LatencySummary lat{};
  double qps = 0.0, walks_per_s = 0.0;
  {
    Rng qrng(cfg.seed + 1);
    WallTimer qt;
    std::vector<std::future<serve::TopKResult>> inflight;
    inflight.reserve(64);
    while (issued < query_target ||
           !trainer_done.load(std::memory_order_acquire)) {
      // Submit in small bursts so the queue stays busy without
      // unbounded future accumulation.
      for (int b = 0; b < 32; ++b) {
        inflight.push_back(server.topk(
            static_cast<NodeId>(qrng.bounded(graph.num_nodes())), top_k));
        ++issued;
      }
      for (auto& f : inflight) {
        const serve::TopKResult res = f.get();
        if (first_version == 0) first_version = res.version;
        last_version = res.version;
        if (!trainer_done.load(std::memory_order_acquire)) {
          during_training.fetch_add(1, std::memory_order_relaxed);
        }
      }
      inflight.clear();
      // Training finished and the target met — stop issuing.
      if (issued >= query_target &&
          trainer_done.load(std::memory_order_acquire)) {
        break;
      }
    }
    trainer.join();
    const double query_seconds = qt.seconds();
    server.drain();

    lat = server.latency();
    qps = static_cast<double>(lat.count) / query_seconds;
    walks_per_s = static_cast<double>(train_stats.num_walks) / train_seconds;
    Table table({"metric", "value"});
    table.add_row({"training walks", std::to_string(train_stats.num_walks)});
    table.add_row({"training walks/s", Table::fmt(walks_per_s, 1)});
    table.add_row(
        {"snapshots published",
         std::to_string(static_cast<std::size_t>(store->version()))});
    table.add_row({"queries served", std::to_string(lat.count)});
    table.add_row({"queries during training",
                   std::to_string(during_training.load())});
    table.add_row({"snapshot versions seen",
                   std::to_string(first_version) + " -> " +
                       std::to_string(last_version)});
    table.add_row({"QPS", Table::fmt(qps, 1)});
    table.add_row({"p50 latency (us)", Table::fmt(lat.p50_us, 1)});
    table.add_row({"p95 latency (us)", Table::fmt(lat.p95_us, 1)});
    table.add_row({"p99 latency (us)", Table::fmt(lat.p99_us, 1)});
    table.print();

    const bool concurrent_ok =
        train_stats.num_walks > 0 && during_training.load() > 0;
    std::printf("\nconcurrent operation: %s (%zu walks trained, %zu queries "
                "answered while training ran)\n\n",
                concurrent_ok ? "yes" : "NO", train_stats.num_walks,
                during_training.load());
  }

  // ------------------------------------------- phase 2: IVF vs brute force
  std::printf("IVF vs exact brute force on the final snapshot "
              "(recall@%zu over %zu query nodes):\n",
              top_k, eval_queries);
  const auto snap = store->current();
  const serve::QueryEngine exact(snap);

  Rng qrng(cfg.seed + 2);
  std::vector<NodeId> query_nodes;
  query_nodes.reserve(eval_queries);
  for (std::size_t q = 0; q < eval_queries; ++q) {
    query_nodes.push_back(
        static_cast<NodeId>(qrng.bounded(graph.num_nodes())));
  }

  std::vector<std::vector<serve::Neighbor>> truth(eval_queries);
  const double exact_ms = time_ms([&] {
    for (std::size_t q = 0; q < eval_queries; ++q) {
      truth[q] = exact.topk(query_nodes[q], top_k);
    }
  }, 3);

  serve::IndexConfig ivf_cfg;
  ivf_cfg.kind = serve::IndexConfig::Kind::kIvf;
  ivf_cfg.nlist = nlist;
  ivf_cfg.seed = cfg.seed;
  WallTimer build_timer;
  const serve::QueryEngine ivf(snap, ivf_cfg);
  const double build_ms = build_timer.millis();

  Table table({"engine", "nprobe", "recall@" + std::to_string(top_k),
               "us/query", "speedup"});
  const double exact_us = exact_ms * 1000.0 /
                          static_cast<double>(eval_queries);
  table.add_row({"brute force", "-", "1.000", Table::fmt(exact_us, 1),
                 "1.00x"});

  struct SweepRow {
    std::size_t nprobe;
    double recall;
    double us;
  };
  std::vector<SweepRow> ivf_sweep;
  bool recall_ok = false, perf_ok = false;
  for (std::size_t nprobe : {2, 4, 8, 16, 32}) {
    if (nprobe >= ivf.nlist()) break;
    double recall_sum = 0.0;
    std::vector<std::vector<serve::Neighbor>> approx(eval_queries);
    const double ivf_ms = time_ms([&] {
      for (std::size_t q = 0; q < eval_queries; ++q) {
        approx[q] = ivf.topk(query_nodes[q], top_k,
                             serve::Similarity::kCosine, nprobe);
      }
    }, 3);
    for (std::size_t q = 0; q < eval_queries; ++q) {
      recall_sum += serve::recall_at_k(truth[q], approx[q]);
    }
    const double recall = recall_sum / static_cast<double>(eval_queries);
    const double ivf_us =
        ivf_ms * 1000.0 / static_cast<double>(eval_queries);
    ivf_sweep.push_back({nprobe, recall, ivf_us});
    table.add_row({"ivf", std::to_string(nprobe), Table::fmt(recall, 3),
                   Table::fmt(ivf_us, 1),
                   Table::fmt(exact_us / ivf_us, 2) + "x"});
    if (recall >= 0.9) {
      recall_ok = true;
      if (ivf_us < exact_us) perf_ok = true;
    }
  }
  table.print();
  std::printf("\nIVF build: %.1f ms for nlist=%zu over %zu nodes\n",
              build_ms, ivf.nlist(), graph.num_nodes());
  std::printf("IVF beats brute force at recall@%zu >= 0.9: %s\n", top_k,
              perf_ok ? "yes" : "NO");

  // --------------------- phase 3: sharded delta vs full-snapshot publish
  std::printf("\nsharded delta publishing vs full-snapshot publishing "
              "(%zu publishes of %zu touched rows, %zu shards):\n",
              delta_publishes, touched_per_publish, shards);
  const MatrixF& final_emb = snap->embedding;
  const std::size_t n = final_emb.rows();
  const std::size_t d = final_emb.cols();

  // The touch pattern of sequential training: a few hundred scattered
  // rows per publish (walk nodes + negatives), identical for both
  // paths. Values are re-published unchanged so both stores end bit-
  // identical to `final_emb` and answer-quality comparisons are on
  // equal content.
  Rng trng(cfg.seed + 3);
  std::vector<std::vector<NodeId>> touch_sets(delta_publishes);
  for (auto& set : touch_sets) {
    DirtyRowSet dirty(n);
    for (std::size_t t = 0; t < touched_per_publish; ++t) {
      dirty.mark(static_cast<NodeId>(trng.bounded(n)));
    }
    const auto sorted = dirty.sorted();
    set.assign(sorted.begin(), sorted.end());
  }

  // Full-snapshot path: every publish copies the whole matrix.
  serve::EmbeddingStore full_store;
  full_store.publish(MatrixF(final_emb));
  const double full_ms = [&] {
    WallTimer t;
    for (std::size_t p = 0; p < delta_publishes; ++p) {
      full_store.publish(MatrixF(final_emb));
    }
    return t.millis() / static_cast<double>(delta_publishes);
  }();

  // Sharded delta path, replayed under both compaction policies: the
  // legacy chain-depth trigger (compact whenever any shard's chain hits
  // 32, whatever the repack costs) and the default amortized-cost
  // trigger (compact when appended delta rows have paid for the
  // O(shard) repack). Same touch sets, same end state.
  struct PolicyResult {
    std::shared_ptr<serve::ShardedEmbeddingStore> store;
    double ms_per_publish;
    double rows_per_publish;
    std::uint64_t compactions;
  };
  const auto run_policy =
      [&](const serve::ShardedEmbeddingStore::Config& pcfg) {
        auto st = std::make_shared<serve::ShardedEmbeddingStore>(pcfg);
        st->publish(MatrixF(final_emb));
        const std::uint64_t base_copied = st->rows_copied();
        WallTimer t;
        for (const auto& set : touch_sets) {
          MatrixF rows(set.size(), d);
          for (std::size_t i = 0; i < set.size(); ++i) {
            copy<float>(final_emb.row(set[i]), rows.row(i));
          }
          st->publish_delta(set, std::move(rows));
        }
        const double ms =
            t.millis() / static_cast<double>(delta_publishes);
        return PolicyResult{
            st, ms,
            static_cast<double>(st->rows_copied() - base_copied) /
                static_cast<double>(delta_publishes),
            st->compactions()};
      };
  // Legacy: chain cap 32, overlay backstop 0.5, cost trigger off.
  const PolicyResult legacy =
      run_policy(serve::ShardedEmbeddingStore::Config{shards, 32, 0.5, 0.0});
  // Current default: cost-scheduled compaction.
  const PolicyResult current =
      run_policy(serve::ShardedEmbeddingStore::Config{shards});
  const auto sharded_store = current.store;
  const double delta_ms = current.ms_per_publish;
  const double publish_speedup = full_ms / delta_ms;

  Table pub_table({"publish path", "ms/publish", "rows copied/publish",
                   "compactions"});
  pub_table.add_row({"full snapshot", Table::fmt(full_ms, 3),
                     std::to_string(n), "-"});
  pub_table.add_row({"delta (legacy chain-32)",
                     Table::fmt(legacy.ms_per_publish, 3),
                     Table::fmt(legacy.rows_per_publish, 1),
                     std::to_string(legacy.compactions)});
  pub_table.add_row({"delta (amortized cost)", Table::fmt(delta_ms, 3),
                     Table::fmt(current.rows_per_publish, 1),
                     std::to_string(current.compactions)});
  pub_table.print();
  // The cost policy must not copy more than the legacy policy; at full
  // scale (where the legacy chain trigger actually fires) it must copy
  // strictly less.
  const bool compaction_ok =
      tiny ? current.rows_per_publish <= legacy.rows_per_publish
           : current.rows_per_publish < legacy.rows_per_publish;
  std::printf("delta publish speedup vs full snapshot: %.1fx; "
              "cost-scheduled compaction copies %s rows than chain-depth: "
              "%s\n",
              publish_speedup, tiny ? "no more" : "fewer",
              compaction_ok ? "yes" : "NO");

  // Equal answer quality, part 1 — exact fan-out identity: the sharded
  // engine's exact top-k must match the N = 1 store's node for node,
  // score for score.
  const serve::QueryEngine exact_full(full_store.current());
  serve::ShardedIndexConfig exact_sharded_cfg;
  exact_sharded_cfg.scan_threads = scan_threads;
  const serve::ShardedQueryEngine exact_sharded(*sharded_store,
                                                exact_sharded_cfg);
  bool identical = true;
  for (std::size_t q = 0; q < eval_queries && identical; ++q) {
    const auto u = query_nodes[q % query_nodes.size()];
    const auto a = exact_full.topk(u, top_k);
    const auto b = exact_sharded.topk(u, top_k);
    if (a.size() != b.size()) identical = false;
    for (std::size_t i = 0; identical && i < a.size(); ++i) {
      identical = a[i].node == b[i].node && a[i].score == b[i].score;
    }
  }
  std::printf("sharded exact fan-out identical to N=1 store: %s\n",
              identical ? "yes" : "NO");

  // Equal answer quality, part 2 — the per-shard IVF must clear the
  // same recall@k bar as the unsharded index (0.9), at a sub-exact
  // scan cost. nprobe applies per shard, so the sweep starts at 1.
  serve::ShardedIndexConfig sharded_ivf_cfg;
  sharded_ivf_cfg.index.kind = serve::IndexConfig::Kind::kIvf;
  // nlist = 0: each shard sizes its quantizer to ~sqrt(its rows).
  sharded_ivf_cfg.index.seed = cfg.seed;
  sharded_ivf_cfg.scan_threads = scan_threads;
  const serve::ShardedQueryEngine sharded_ivf(*sharded_store,
                                              sharded_ivf_cfg);
  Table stable({"engine", "nprobe/shard", "recall@" + std::to_string(top_k),
                "us/query"});
  std::vector<SweepRow> sharded_sweep;
  bool sharded_recall_ok = false;
  const std::size_t shard_nlist = static_cast<std::size_t>(std::sqrt(
      static_cast<double>((n + shards - 1) / shards)));
  for (std::size_t nprobe : {1, 2, 4, 8}) {
    if (nprobe >= shard_nlist) break;
    double recall_sum = 0.0;
    std::vector<std::vector<serve::Neighbor>> approx(eval_queries);
    const double ms = time_ms([&] {
      for (std::size_t q = 0; q < eval_queries; ++q) {
        approx[q] = sharded_ivf.topk(query_nodes[q], top_k,
                                     serve::Similarity::kCosine, nprobe);
      }
    }, 3);
    for (std::size_t q = 0; q < eval_queries; ++q) {
      recall_sum += serve::recall_at_k(truth[q], approx[q]);
    }
    const double recall = recall_sum / static_cast<double>(eval_queries);
    const double us = ms * 1000.0 / static_cast<double>(eval_queries);
    sharded_sweep.push_back({nprobe, recall, us});
    stable.add_row({"sharded ivf", std::to_string(nprobe),
                    Table::fmt(recall, 3), Table::fmt(us, 1)});
    if (recall >= 0.9) sharded_recall_ok = true;
  }
  stable.print();

  const bool publish_ok = publish_speedup >= 5.0;
  if (tiny) {
    // The timing gate is meaningless at smoke scale (a 2000-row matrix
    // copy is noise), so report only what --tiny actually gates on.
    std::printf("\nsharded delta at equal recall@%zu: %s "
                "(publish speedup %.1fx — timing ungated at --tiny "
                "scale)\n",
                top_k, sharded_recall_ok ? "yes" : "NO", publish_speedup);
  } else {
    std::printf("\ndelta publish >= 5x cheaper at equal recall@%zu: %s\n",
                top_k, (publish_ok && sharded_recall_ok) ? "yes" : "NO");
  }

  // -------------------------- phase 4: float vs int8 quantized scan
  struct QuantRow {
    std::size_t nprobe;
    double recall;
    double float_us;
    double int8_us;
  };
  std::vector<QuantRow> quant_sweep;
  bool quant_recall_ok = true, quant_perf_ok = true;
  if (quant != "none") {
    std::printf("\nfloat vs %s quantized IVF scan on the final snapshot "
                "(recall of %s vs float at the same nprobe):\n",
                quant.c_str(), quant.c_str());
    serve::IndexConfig qcfg = ivf_cfg;
    qcfg.quant = quant == "bfp" ? serve::QuantMode::kBfp
                                : serve::QuantMode::kInt8;
    const serve::QueryEngine ivf_int8(snap, qcfg);
    Table qtable({"nprobe", "recall@" + std::to_string(top_k),
                  "float us/q", quant + " us/q", "speedup"});
    quant_recall_ok = false;
    quant_perf_ok = false;
    for (std::size_t nprobe : {4, 8, 16, 32}) {
      if (nprobe >= ivf.nlist()) break;
      std::vector<std::vector<serve::Neighbor>> fres(eval_queries);
      std::vector<std::vector<serve::Neighbor>> qres(eval_queries);
      const double f_ms = time_ms([&] {
        for (std::size_t q = 0; q < eval_queries; ++q) {
          fres[q] = ivf.topk(query_nodes[q], top_k,
                             serve::Similarity::kCosine, nprobe);
        }
      }, 3);
      const double q_ms = time_ms([&] {
        for (std::size_t q = 0; q < eval_queries; ++q) {
          qres[q] = ivf_int8.topk(query_nodes[q], top_k,
                                  serve::Similarity::kCosine, nprobe);
        }
      }, 3);
      double recall_sum = 0.0;
      for (std::size_t q = 0; q < eval_queries; ++q) {
        recall_sum += serve::recall_at_k(fres[q], qres[q]);
      }
      const double recall = recall_sum / static_cast<double>(eval_queries);
      const double f_us = f_ms * 1000.0 / static_cast<double>(eval_queries);
      const double q_us = q_ms * 1000.0 / static_cast<double>(eval_queries);
      quant_sweep.push_back({nprobe, recall, f_us, q_us});
      qtable.add_row({std::to_string(nprobe), Table::fmt(recall, 3),
                      Table::fmt(f_us, 1), Table::fmt(q_us, 1),
                      Table::fmt(f_us / q_us, 2) + "x"});
      if (recall >= 0.95) {
        quant_recall_ok = true;
        if (q_us < f_us) quant_perf_ok = true;
      }
    }
    qtable.print();
    if (tiny) {
      // Per-query times at 2000 nodes are sub-microsecond; only the
      // recall claim is meaningful at smoke scale.
      std::printf("%s holds recall@%zu >= 0.95 vs float: %s "
                  "(timing ungated at --tiny scale)\n",
                  quant.c_str(), top_k, quant_recall_ok ? "yes" : "NO");
      quant_perf_ok = true;
    } else {
      std::printf("%s faster than float at recall@%zu >= 0.95: %s\n",
                  quant.c_str(), top_k,
                  (quant_recall_ok && quant_perf_ok) ? "yes" : "NO");
    }
  }

  // -------------------------- phase 5: observability overhead on scans
  // The hot scan path pays one relaxed counter add per query; everything
  // heavier (span clocks, re-rank accounting) is behind the runtime
  // switch. Time the exact-engine workload with obs on and off to show
  // the cost, and check the off run records nothing at all.
  std::printf("\nobservability overhead on the exact scan path "
              "(%zu queries, median of 5):\n", eval_queries);
  const auto scan_workload = [&] {
    for (std::size_t q = 0; q < eval_queries; ++q) {
      exact.topk(query_nodes[q], top_k);
    }
  };
  const double obs_on_ms = time_ms(scan_workload, 5);
  const obs::Counter* scans_total =
      obs::Registry::global().find_counter("seqge_query_scans_total");
  obs::set_enabled(false);
  const std::uint64_t scans_before =
      scans_total != nullptr ? scans_total->value() : 0;
  const double obs_off_ms = time_ms(scan_workload, 5);
  const std::uint64_t scans_after =
      scans_total != nullptr ? scans_total->value() : 0;
  obs::set_enabled(true);
  const double obs_overhead_pct =
      obs_off_ms > 0.0 ? (obs_on_ms / obs_off_ms - 1.0) * 100.0 : 0.0;
  // Disabled must mean silent: the counter the enabled run drives on
  // every query may not move while the switch is off.
  const bool obs_noop_ok =
      scans_total != nullptr && scans_after == scans_before;
  // Timing gate at full scale only — the --tiny workload finishes in
  // microseconds, where a 2% bound is pure scheduler noise.
  const bool obs_overhead_ok = tiny || obs_overhead_pct <= 2.0;
  Table otable({"registry", "ms/workload", "us/query"});
  otable.add_row({"enabled", Table::fmt(obs_on_ms, 3),
                  Table::fmt(obs_on_ms * 1000.0 /
                                 static_cast<double>(eval_queries), 2)});
  otable.add_row({"disabled", Table::fmt(obs_off_ms, 3),
                  Table::fmt(obs_off_ms * 1000.0 /
                                 static_cast<double>(eval_queries), 2)});
  otable.print();
  std::printf("obs overhead: %+.2f%% (%s <= 2%%: %s); disabled run "
              "recorded nothing: %s\n",
              obs_overhead_pct,
              tiny ? "ungated at --tiny scale, full-scale gate"
                   : "gated",
              obs_overhead_ok ? "yes" : "NO", obs_noop_ok ? "yes" : "NO");

  if (!json_path.empty()) {
    Json root = Json::object();
    root.set("bench", Json::str("serving"));
    root.set("machine", machine_json());
    Json jcfg = Json::object();
    jcfg.set("tiny", Json::boolean(tiny));
    jcfg.set("nodes", Json::num(static_cast<std::size_t>(nodes)));
    jcfg.set("dims", Json::num(static_cast<std::size_t>(dims)));
    jcfg.set("top_k", Json::num(top_k));
    jcfg.set("shards", Json::num(shards));
    jcfg.set("scan_threads", Json::num(scan_threads));
    jcfg.set("quant", Json::str(quant));
    root.set("config", std::move(jcfg));

    Json ph1 = Json::object();
    ph1.set("training_walks_per_s", Json::num(walks_per_s));
    ph1.set("qps", Json::num(qps));
    ph1.set("queries_during_training",
            Json::num(during_training.load()));
    ph1.set("p50_us", Json::num(lat.p50_us));
    ph1.set("p95_us", Json::num(lat.p95_us));
    ph1.set("p99_us", Json::num(lat.p99_us));
    root.set("concurrent", std::move(ph1));

    const auto sweep_json = [](const std::vector<SweepRow>& rows) {
      Json arr = Json::array();
      for (const auto& r : rows) {
        Json j = Json::object();
        j.set("nprobe", Json::num(r.nprobe));
        j.set("recall", Json::num(r.recall));
        j.set("us_per_query", Json::num(r.us));
        arr.push(std::move(j));
      }
      return arr;
    };
    Json ph2 = Json::object();
    ph2.set("exact_us_per_query", Json::num(exact_us));
    ph2.set("ivf_build_ms", Json::num(build_ms));
    ph2.set("ivf_sweep", sweep_json(ivf_sweep));
    root.set("index", std::move(ph2));

    Json ph3 = Json::object();
    ph3.set("full_snapshot_ms_per_publish", Json::num(full_ms));
    const auto policy_json = [](const PolicyResult& r) {
      Json j = Json::object();
      j.set("ms_per_publish", Json::num(r.ms_per_publish));
      j.set("rows_copied_per_publish", Json::num(r.rows_per_publish));
      j.set("compactions",
            Json::num(static_cast<std::int64_t>(r.compactions)));
      return j;
    };
    ph3.set("delta_legacy_chain", policy_json(legacy));
    ph3.set("delta_amortized_cost", policy_json(current));
    ph3.set("publish_speedup", Json::num(publish_speedup));
    ph3.set("fanout_identical", Json::boolean(identical));
    ph3.set("sharded_ivf_sweep", sweep_json(sharded_sweep));
    root.set("publishing", std::move(ph3));

    if (quant != "none") {
      Json qarr = Json::array();
      for (const auto& r : quant_sweep) {
        Json j = Json::object();
        j.set("nprobe", Json::num(r.nprobe));
        j.set("recall_vs_float", Json::num(r.recall));
        j.set("float_us_per_query", Json::num(r.float_us));
        j.set("quant_us_per_query", Json::num(r.int8_us));
        qarr.push(std::move(j));
      }
      root.set("quant_sweep", std::move(qarr));
    }

    Json obs_json = Json::object();
    obs_json.set("enabled_ms", Json::num(obs_on_ms));
    obs_json.set("disabled_ms", Json::num(obs_off_ms));
    obs_json.set("overhead_pct", Json::num(obs_overhead_pct));
    root.set("obs_overhead", std::move(obs_json));

    Json gates = Json::object();
    gates.set("ivf_recall", Json::boolean(recall_ok));
    gates.set("ivf_faster_than_exact", Json::boolean(perf_ok));
    gates.set("fanout_identical", Json::boolean(identical));
    gates.set("sharded_recall", Json::boolean(sharded_recall_ok));
    gates.set("publish_speedup_5x", Json::boolean(publish_ok));
    gates.set("compaction_fewer_rows", Json::boolean(compaction_ok));
    gates.set("quant_recall", Json::boolean(quant_recall_ok));
    gates.set("quant_faster", Json::boolean(quant_perf_ok));
    gates.set("obs_overhead_2pct", Json::boolean(obs_overhead_ok));
    gates.set("obs_disabled_noop", Json::boolean(obs_noop_ok));
    root.set("gates", std::move(gates));
    if (!write_json_file(json_path, root)) return 1;
  }

  if (!dump_metrics(metrics_out)) return 1;

  // --tiny is the CI smoke: at 2000 nodes the brute-force scan is so
  // cheap that every timing comparison is scheduler noise, so only the
  // recall/identity/accounting criteria gate there; full scale gates on
  // all.
  const bool ok = tiny
                      ? (recall_ok && identical && sharded_recall_ok &&
                         compaction_ok && quant_recall_ok && obs_noop_ok)
                      : (recall_ok && perf_ok && identical &&
                         sharded_recall_ok && publish_ok && compaction_ok &&
                         quant_recall_ok && quant_perf_ok &&
                         obs_overhead_ok && obs_noop_ok);
  return ok ? 0 : 1;
}
