// Regenerates Figure 5: impact of the dataflow optimization on accuracy.
// Compares the proposed algorithm (Algorithm 1, float, per-context
// updates) on CPU against the modified algorithm (Algorithm 2, deferred
// updates) on the simulated FPGA (bit-accurate Q8.24 core), per dataset.
// Paper result: up to 1.09% micro-F1 loss on Cora, none on the larger
// Amazon graphs.

#include "bench/common.hpp"

using namespace seqge;
using namespace seqge::bench;

int main(int argc, char** argv) {
  double cora_scale = 0.5, ampt_scale = 0.08, amcp_scale = 0.05;
  std::int64_t dims = 32, trials = 3;
  bool full = false;
  std::string metrics_out;
  ArgParser args("bench_fig5_dataflow_accuracy",
                 "Figure 5 — dataflow optimization accuracy impact");
  args.add_double("cora-scale", &cora_scale, "cora twin scale");
  args.add_double("ampt-scale", &ampt_scale, "amazon-photo twin scale");
  args.add_double("amcp-scale", &amcp_scale, "amazon-computers twin scale");
  args.add_int("dims", &dims, "embedding dimensions");
  args.add_int("trials", &trials, "evaluation trials to average");
  args.add_flag("full", &full, "paper-scale datasets (slow)");
  add_metrics_flag(args, &metrics_out);
  if (!args.parse(argc, argv)) return 1;
  if (full) cora_scale = ampt_scale = amcp_scale = 1.0;

  print_header("Figure 5",
               "Algorithm 1 (CPU, float) vs Algorithm 2 (FPGA, Q8.24) "
               "micro-F1 in the 'all' scenario");

  TrainConfig cfg;
  cfg.dims = static_cast<std::size_t>(dims);

  const std::pair<DatasetId, double> runs[] = {
      {DatasetId::kCora, cora_scale},
      {DatasetId::kAmazonPhoto, ampt_scale},
      {DatasetId::kAmazonComputers, amcp_scale},
  };

  Table table({"dataset", "Alg1 on CPU (F1)", "Alg2 on FPGA (F1)",
               "delta (pp)"});
  for (const auto& [id, scale] : runs) {
    const LabeledGraph data = load_twin(id, scale, 1);
    const double cpu =
        train_all_f1("oselm", data, cfg, static_cast<std::size_t>(trials));
    const double fpga =
        train_all_f1("fpga", data, cfg, static_cast<std::size_t>(trials));
    table.add_row({data.name, Table::fmt(cpu), Table::fmt(fpga),
                   Table::fmt((cpu - fpga) * 100.0, 2)});
  }
  table.print();
  std::printf(
      "\npaper: accuracy decreases by up to 1.09%% on cora; no degradation "
      "on the larger graphs.\n");
  if (!dump_metrics(metrics_out)) return 1;
  return 0;
}
