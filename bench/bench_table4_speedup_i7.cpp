// Regenerates Table 4: training time of a single random walk vs a
// desktop Intel Core i7-11700, and speedups of the FPGA accelerator.

#include "bench/speedup_bench.hpp"

int main(int argc, char** argv) {
  return seqge::bench::run_speedup_bench(
      "Table 4", seqge::perfmodel::i7_original_model(),
      seqge::perfmodel::i7_proposed_model(), argc, argv);
}
