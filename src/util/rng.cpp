#include "util/rng.hpp"

#include <cmath>

namespace seqge {

double Rng::gaussian() noexcept {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double m = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * m;
  has_spare_ = true;
  return u * m;
}

}  // namespace seqge
