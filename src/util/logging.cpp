#include "util/logging.hpp"

#include <cstdio>

namespace seqge::log_detail {

LogLevel& threshold() noexcept {
  static LogLevel level = LogLevel::kInfo;
  return level;
}

void emit(LogLevel level, std::string_view msg) {
  if (static_cast<int>(level) < static_cast<int>(threshold())) return;
  static constexpr const char* kNames[] = {"DEBUG", "INFO", "WARN", "ERROR"};
  std::fprintf(stderr, "[seqge %s] %.*s\n",
               kNames[static_cast<int>(level)],
               static_cast<int>(msg.size()), msg.data());
}

}  // namespace seqge::log_detail
