#include "util/logging.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace seqge::log_detail {

namespace {

LogLevel env_threshold() {
  const char* v = std::getenv("SEQGE_LOG_LEVEL");
  if (v == nullptr) return LogLevel::kInfo;
  if (std::strcmp(v, "debug") == 0 || std::strcmp(v, "0") == 0)
    return LogLevel::kDebug;
  if (std::strcmp(v, "info") == 0 || std::strcmp(v, "1") == 0)
    return LogLevel::kInfo;
  if (std::strcmp(v, "warn") == 0 || std::strcmp(v, "2") == 0)
    return LogLevel::kWarn;
  if (std::strcmp(v, "error") == 0 || std::strcmp(v, "3") == 0)
    return LogLevel::kError;
  return LogLevel::kInfo;
}

std::mutex& sink_mutex() {
  static std::mutex mu;
  return mu;
}

}  // namespace

LogLevel& threshold() noexcept {
  static LogLevel level = env_threshold();
  return level;
}

void emit(LogLevel level, std::string_view msg) {
  if (static_cast<int>(level) < static_cast<int>(threshold())) return;
  static constexpr const char* kNames[] = {"DEBUG", "INFO", "WARN", "ERROR"};
  // Build the full line first, then one locked write: concurrent
  // callers never interleave within a line.
  std::string line;
  line.reserve(msg.size() + 16);
  line += "[seqge ";
  line += kNames[static_cast<int>(level)];
  line += "] ";
  line.append(msg.data(), msg.size());
  line += '\n';
  std::lock_guard lock(sink_mutex());
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace seqge::log_detail
