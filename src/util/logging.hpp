#pragma once
// Minimal leveled logger. Single global sink (stderr); levels can be
// silenced for tests/benches. Each line is built in full and emitted
// with a single locked write, so concurrent lines never interleave.
// The initial threshold honours the SEQGE_LOG_LEVEL environment
// variable (debug|info|warn|error or 0-3); set_log_level() overrides.

#include <sstream>
#include <string>
#include <string_view>

namespace seqge {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

namespace log_detail {
LogLevel& threshold() noexcept;
void emit(LogLevel level, std::string_view msg);
}  // namespace log_detail

/// Set the minimum level that is emitted (default kInfo).
inline void set_log_level(LogLevel level) noexcept {
  log_detail::threshold() = level;
}

/// Stream-style log statement: LogLine(LogLevel::kInfo) << "x=" << x;
class LogLine {
 public:
  explicit LogLine(LogLevel level) noexcept : level_(level) {}
  ~LogLine() { log_detail::emit(level_, ss_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    ss_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream ss_;
};

#define SEQGE_LOG_DEBUG ::seqge::LogLine(::seqge::LogLevel::kDebug)
#define SEQGE_LOG_INFO ::seqge::LogLine(::seqge::LogLevel::kInfo)
#define SEQGE_LOG_WARN ::seqge::LogLine(::seqge::LogLevel::kWarn)
#define SEQGE_LOG_ERROR ::seqge::LogLine(::seqge::LogLevel::kError)

}  // namespace seqge
