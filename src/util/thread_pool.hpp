#pragma once
// Minimal blocking fork-join pool for query-time fan-out
// (serve/sharded_query.hpp). Not a task scheduler: the only operation
// is parallel_for(count, fn), which runs fn(0..count-1) across the
// workers *and the calling thread*, then returns when every index has
// finished. Batches are serialized — a second caller blocks until the
// first batch drains — which keeps the state machine trivial and is
// fine for the intended use (one pool per engine, short scans).
//
// A pool of `workers` threads therefore applies `workers + 1` threads
// to each batch. Exceptions from fn are captured and the first one is
// rethrown on the calling thread after the batch completes.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace seqge {

class ThreadPool {
 public:
  /// Spawns `workers` threads (0 is valid: parallel_for then runs
  /// entirely on the calling thread).
  explicit ThreadPool(std::size_t workers) {
    threads_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
      threads_.emplace_back([this] { worker_loop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    wake_cv_.notify_all();
    for (auto& t : threads_) t.join();
  }

  [[nodiscard]] std::size_t workers() const noexcept {
    return threads_.size();
  }

  /// Runs fn(i) for every i in [0, count), caller participating;
  /// returns when all are done. Rethrows the first captured exception.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn) {
    if (count == 0) return;
    if (threads_.empty() || count == 1) {
      for (std::size_t i = 0; i < count; ++i) fn(i);
      return;
    }
    // Time only the wait for the batch slot (contention with other
    // parallel_for callers), not the batch itself.
    static obs::Histogram* const queue_wait_us =
        obs::Registry::global().histogram(
            "seqge_pool_queue_wait_us", obs::default_latency_buckets_us(), {},
            "Wait for the thread pool batch slot (microseconds)");
    static obs::Counter* const batches_total = obs::Registry::global().counter(
        "seqge_pool_batches_total", {},
        "parallel_for batches dispatched to pool workers");
    std::unique_lock<std::mutex> serial(serial_mu_, std::defer_lock);
    if (obs::enabled()) {
      const double t0 = obs::wall_us();
      serial.lock();
      queue_wait_us->observe(obs::wall_us() - t0);
      batches_total->add();
    } else {
      serial.lock();
    }
    auto batch = std::make_shared<Batch>();
    batch->count = count;
    batch->fn = &fn;
    {
      std::lock_guard<std::mutex> lk(mu_);
      current_ = batch;
      ++generation_;
    }
    wake_cv_.notify_all();
    run_batch(*batch);
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [&] { return batch->done == batch->count; });
    current_.reset();
    if (batch->error != nullptr) std::rethrow_exception(batch->error);
  }

 private:
  // One parallel_for invocation. `count`/`fn` are immutable after the
  // batch is published (publication happens under mu_, workers pick the
  // pointer up under mu_); `next` hands out indices; `done`/`error` are
  // guarded by mu_. Workers hold the batch via shared_ptr, so a thread
  // that wakes late only ever sees an exhausted `next` — it never
  // touches a newer batch's state by accident.
  struct Batch {
    std::size_t count = 0;
    const std::function<void(std::size_t)>* fn = nullptr;
    std::atomic<std::size_t> next{0};
    std::size_t done = 0;
    std::exception_ptr error = nullptr;
  };

  void run_batch(Batch& b) {
    for (;;) {
      const std::size_t i = b.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= b.count) return;
      std::exception_ptr err = nullptr;
      try {
        (*b.fn)(i);
      } catch (...) {
        err = std::current_exception();
      }
      std::lock_guard<std::mutex> lk(mu_);
      if (err != nullptr && b.error == nullptr) b.error = err;
      if (++b.done == b.count) done_cv_.notify_all();
    }
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      std::shared_ptr<Batch> batch;
      {
        std::unique_lock<std::mutex> lk(mu_);
        wake_cv_.wait(lk, [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
        batch = current_;
      }
      if (batch != nullptr) run_batch(*batch);
    }
  }

  std::vector<std::thread> threads_;
  std::mutex serial_mu_;  ///< serializes parallel_for callers
  std::mutex mu_;
  std::condition_variable wake_cv_;
  std::condition_variable done_cv_;
  std::shared_ptr<Batch> current_;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
};

}  // namespace seqge
