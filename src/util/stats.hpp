#pragma once
// Small statistics helpers for benchmark reporting (mean/stddev/median of
// repeated trials) and for accuracy aggregation across seeds.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

namespace seqge {

[[nodiscard]] inline double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

/// Sample standard deviation (n-1 denominator); 0 for n < 2.
[[nodiscard]] inline double stddev(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

[[nodiscard]] inline double median(std::vector<double> xs) noexcept {
  if (xs.empty()) return 0.0;
  const std::size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid),
                   xs.end());
  double hi = xs[mid];
  if (xs.size() % 2 == 1) return hi;
  std::nth_element(xs.begin(),
                   xs.begin() + static_cast<std::ptrdiff_t>(mid) - 1,
                   xs.end());
  return 0.5 * (hi + xs[mid - 1]);
}

/// q-th percentile (q in [0, 1]) by linear interpolation between order
/// statistics — the convention serving dashboards use for p50/p95/p99.
/// 0 for an empty sample.
[[nodiscard]] inline double percentile(std::vector<double> xs,
                                       double q) noexcept {
  if (xs.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(lo),
                   xs.end());
  const double a = xs[lo];
  if (lo + 1 >= xs.size()) return a;
  const double frac = pos - static_cast<double>(lo);
  if (frac == 0.0) return a;
  const double b =
      *std::min_element(xs.begin() + static_cast<std::ptrdiff_t>(lo) + 1,
                        xs.end());
  return a + frac * (b - a);
}

[[nodiscard]] inline double min_of(std::span<const double> xs) noexcept {
  double m = xs.empty() ? 0.0 : xs[0];
  for (double x : xs) m = std::min(m, x);
  return m;
}

[[nodiscard]] inline double max_of(std::span<const double> xs) noexcept {
  double m = xs.empty() ? 0.0 : xs[0];
  for (double x : xs) m = std::max(m, x);
  return m;
}

}  // namespace seqge
