#pragma once
// Bounded multi-producer / single-consumer queue backing the training
// pipeline (walker threads produce WalkBatches, the trainer consumes
// them). Blocking push/pop with a close() that wakes every waiter, so
// early stop drains cleanly: producers see push() fail and exit, the
// consumer sees pop() return nullopt once the queue is empty.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace seqge {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Non-blocking push: returns false immediately when the queue is
  /// full or closed, leaving `item` untouched. This is the admission-
  /// control path — the serving front-end sheds load through it instead
  /// of parking an event-loop thread; trainers keep the blocking push()
  /// below (backpressure is the correct behavior for a producer that
  /// owns its thread).
  [[nodiscard]] bool try_push(T&& item) {
    {
      std::lock_guard lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while full. Returns false (item dropped) if the queue was
  /// closed before space became available.
  bool push(T&& item) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock,
                   [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while empty. Returns nullopt once closed *and* drained —
  /// items pushed before close() are still delivered.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Idempotent. Wakes all blocked producers and consumers.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  mutable std::mutex mutex_;
  std::condition_variable not_full_, not_empty_;
  std::deque<T> items_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace seqge
