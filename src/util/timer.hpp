#pragma once
// Wall-clock timing utilities used by the benchmark harness and the
// trainers' built-in profiling counters.

#include <chrono>
#include <cstdint>

namespace seqge {

/// Monotonic wall-clock stopwatch with nanosecond resolution.
class WallTimer {
 public:
  WallTimer() noexcept { reset(); }

  void reset() noexcept { start_ = Clock::now(); }

  /// Elapsed time since construction or last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }
  [[nodiscard]] double micros() const noexcept { return seconds() * 1e6; }
  [[nodiscard]] std::uint64_t nanos() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates total time across repeated start/stop sections, e.g. to
/// attribute trainer time to walk vs update phases.
class AccumTimer {
 public:
  void start() noexcept { t_.reset(); }
  void stop() noexcept {
    total_ += t_.seconds();
    ++count_;
  }
  [[nodiscard]] double total_seconds() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double mean_seconds() const noexcept {
    return count_ == 0 ? 0.0 : total_ / static_cast<double>(count_);
  }
  void reset() noexcept {
    total_ = 0.0;
    count_ = 0;
  }

 private:
  WallTimer t_;
  double total_ = 0.0;
  std::uint64_t count_ = 0;
};

}  // namespace seqge
