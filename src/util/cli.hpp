#pragma once
// Tiny declarative CLI argument parser used by benches and examples.
// Supports --name value, --name=value, and boolean --flag forms, plus
// automatic --help generation. Unknown flags are an error so typos in
// experiment sweeps fail loudly instead of silently using defaults.

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace seqge {

class ArgParser {
 public:
  explicit ArgParser(std::string program, std::string description = "");

  /// Register options. `name` is without leading dashes. All registration
  /// must happen before parse().
  void add_flag(const std::string& name, bool* target,
                const std::string& help);
  void add_int(const std::string& name, std::int64_t* target,
               const std::string& help);
  /// Non-negative count option (std::size_t) — sizes, thread counts,
  /// cadences. Negative values are rejected at parse time.
  void add_size(const std::string& name, std::size_t* target,
                const std::string& help);
  void add_double(const std::string& name, double* target,
                  const std::string& help);
  void add_string(const std::string& name, std::string* target,
                  const std::string& help);
  /// String option restricted to `choices` (listed in --help; any other
  /// value is rejected at parse time). The target's initial value is the
  /// default and must be one of the choices.
  void add_choice(const std::string& name, std::string* target,
                  std::vector<std::string> choices, const std::string& help);

  /// Parse argv. Returns false (after printing usage) on --help or error.
  [[nodiscard]] bool parse(int argc, char** argv);

  /// Positional arguments left over after flag parsing.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  void print_usage() const;

 private:
  enum class Kind { kFlag, kInt, kSize, kDouble, kString, kChoice };
  struct Option {
    std::string name;
    Kind kind;
    void* target;
    std::string help;
    std::string default_repr;
    std::vector<std::string> choices;  // kChoice only
  };

  Option* find(const std::string& name);
  static bool set_value(Option& opt, const std::string& value);

  std::string program_;
  std::string description_;
  std::vector<Option> options_;
  std::vector<std::string> positional_;
};

}  // namespace seqge
