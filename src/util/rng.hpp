#pragma once
// Deterministic, fast pseudo-random number generation for simulation and
// training. We deliberately avoid std::mt19937 in hot loops: xoshiro256**
// is ~4x faster and passes BigCrush. All stochastic components of the
// library (walks, negative sampling, weight init) take an explicit Rng so
// experiments are reproducible from a single seed.

#include <cstdint>
#include <limits>

namespace seqge {

/// SplitMix64 — used to expand a single 64-bit seed into a full xoshiro
/// state. Also a fine standalone generator for non-critical uses.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna). 2^256-1 period, jump-free use.
/// Satisfies UniformRandomBitGenerator so it can drive std distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5EED5EED5EED5EEDULL) noexcept {
    reseed(seed);
  }

  void reseed(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, bound) via Lemire's multiply-shift (unbiased
  /// enough for simulation; exact rejection not needed at 2^64 range).
  std::uint64_t bounded(std::uint64_t bound) noexcept {
    // 128-bit multiply keeps the modulo bias below 2^-64.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    bounded(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Standard normal via Marsaglia polar method (cached spare).
  double gaussian() noexcept;

  /// Bernoulli(p).
  bool bernoulli(double p) noexcept { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace seqge
