#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace seqge {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: empty header");
}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("Table: row arity mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c] << std::string(width[c] - row[c].size(), ' ')
         << " |";
    }
    os << '\n';
  };
  emit_row(header_);
  os << "|";
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << "|";
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

}  // namespace seqge
