#include "util/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace seqge {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void ArgParser::add_flag(const std::string& name, bool* target,
                         const std::string& help) {
  options_.push_back({name, Kind::kFlag, target, help,
                      *target ? "true" : "false", {}});
}

void ArgParser::add_int(const std::string& name, std::int64_t* target,
                        const std::string& help) {
  options_.push_back(
      {name, Kind::kInt, target, help, std::to_string(*target), {}});
}

void ArgParser::add_size(const std::string& name, std::size_t* target,
                         const std::string& help) {
  options_.push_back(
      {name, Kind::kSize, target, help, std::to_string(*target), {}});
}

void ArgParser::add_double(const std::string& name, double* target,
                           const std::string& help) {
  options_.push_back(
      {name, Kind::kDouble, target, help, std::to_string(*target), {}});
}

void ArgParser::add_string(const std::string& name, std::string* target,
                           const std::string& help) {
  options_.push_back({name, Kind::kString, target, help, *target, {}});
}

void ArgParser::add_choice(const std::string& name, std::string* target,
                           std::vector<std::string> choices,
                           const std::string& help) {
  bool default_ok = false;
  for (const auto& c : choices) default_ok = default_ok || c == *target;
  if (choices.empty() || !default_ok) {
    throw std::invalid_argument("ArgParser::add_choice(--" + name +
                                "): default '" + *target +
                                "' is not among the choices");
  }
  options_.push_back(
      {name, Kind::kChoice, target, help, *target, std::move(choices)});
}

ArgParser::Option* ArgParser::find(const std::string& name) {
  for (auto& opt : options_) {
    if (opt.name == name) return &opt;
  }
  return nullptr;
}

bool ArgParser::set_value(Option& opt, const std::string& value) {
  try {
    switch (opt.kind) {
      case Kind::kFlag:
        *static_cast<bool*>(opt.target) =
            !(value == "false" || value == "0" || value == "no");
        return true;
      case Kind::kInt:
        *static_cast<std::int64_t*>(opt.target) = std::stoll(value);
        return true;
      case Kind::kSize: {
        // stoull happily wraps negatives; reject them explicitly.
        if (value.find('-') != std::string::npos) return false;
        std::size_t consumed = 0;
        const unsigned long long v = std::stoull(value, &consumed);
        if (consumed != value.size()) return false;
        *static_cast<std::size_t*>(opt.target) =
            static_cast<std::size_t>(v);
        return true;
      }
      case Kind::kDouble:
        *static_cast<double*>(opt.target) = std::stod(value);
        return true;
      case Kind::kString:
        *static_cast<std::string*>(opt.target) = value;
        return true;
      case Kind::kChoice:
        for (const auto& c : opt.choices) {
          if (c == value) {
            *static_cast<std::string*>(opt.target) = value;
            return true;
          }
        }
        return false;
    }
  } catch (const std::exception&) {
    return false;
  }
  return false;
}

bool ArgParser::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool have_value = false;
    if (auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      have_value = true;
    }
    Option* opt = find(name);
    if (opt == nullptr) {
      std::fprintf(stderr, "%s: unknown option --%s\n", program_.c_str(),
                   name.c_str());
      print_usage();
      return false;
    }
    if (!have_value) {
      if (opt->kind == Kind::kFlag) {
        value = "true";
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        std::fprintf(stderr, "%s: option --%s requires a value\n",
                     program_.c_str(), name.c_str());
        return false;
      }
    }
    if (!set_value(*opt, value)) {
      if (opt->kind == Kind::kChoice) {
        std::string allowed;
        for (const auto& c : opt->choices) {
          if (!allowed.empty()) allowed += "|";
          allowed += c;
        }
        std::fprintf(stderr, "%s: bad value '%s' for --%s (one of: %s)\n",
                     program_.c_str(), value.c_str(), name.c_str(),
                     allowed.c_str());
      } else {
        std::fprintf(stderr, "%s: bad value '%s' for --%s\n",
                     program_.c_str(), value.c_str(), name.c_str());
      }
      return false;
    }
  }
  return true;
}

void ArgParser::print_usage() const {
  std::fprintf(stderr, "usage: %s [options]\n", program_.c_str());
  if (!description_.empty()) std::fprintf(stderr, "%s\n", description_.c_str());
  std::fprintf(stderr, "options:\n");
  for (const auto& opt : options_) {
    std::string lhs = opt.name;
    switch (opt.kind) {
      case Kind::kFlag:
        break;
      case Kind::kInt:
        lhs += " <int>";
        break;
      case Kind::kSize:
        lhs += " <count>";
        break;
      case Kind::kDouble:
        lhs += " <float>";
        break;
      case Kind::kString:
        lhs += " <str>";
        break;
      case Kind::kChoice:
        break;
    }
    if (opt.kind == Kind::kChoice) {
      std::string allowed;
      for (const auto& c : opt.choices) {
        if (!allowed.empty()) allowed += "|";
        allowed += c;
      }
      std::fprintf(stderr, "  --%-24s %s (one of: %s; default: %s)\n",
                   lhs.c_str(), opt.help.c_str(), allowed.c_str(),
                   opt.default_repr.c_str());
    } else {
      std::fprintf(stderr, "  --%-24s %s (default: %s)\n", lhs.c_str(),
                   opt.help.c_str(), opt.default_repr.c_str());
    }
  }
}

}  // namespace seqge
