#pragma once
// Aligned-column table printer used by the bench harness so each bench
// prints rows in the same layout as the paper's tables/figure series.

#include <string>
#include <vector>

namespace seqge {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: format doubles with fixed precision.
  static std::string fmt(double v, int precision = 3);

  /// Render as an aligned text table (markdown-compatible pipes).
  [[nodiscard]] std::string to_string() const;

  /// Render as CSV.
  [[nodiscard]] std::string to_csv() const;

  /// Print to stdout.
  void print() const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace seqge
