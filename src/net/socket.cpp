#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <system_error>

namespace seqge::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::system_error(errno, std::generic_category(), what);
}

sockaddr_in make_addr(const std::string& addr, std::uint16_t port) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  if (::inet_pton(AF_INET, addr.c_str(), &sa.sin_addr) != 1) {
    throw std::system_error(EINVAL, std::generic_category(),
                            "net: bad IPv4 address: " + addr);
  }
  return sa;
}

}  // namespace

void Fd::reset() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Fd listen_tcp(const std::string& addr, std::uint16_t port, int backlog) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("net: socket");
  const int one = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) !=
      0) {
    throw_errno("net: setsockopt(SO_REUSEADDR)");
  }
  const sockaddr_in sa = make_addr(addr, port);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) !=
      0) {
    throw_errno("net: bind " + addr + ":" + std::to_string(port));
  }
  if (::listen(fd.get(), backlog) != 0) throw_errno("net: listen");
  return fd;
}

std::uint16_t bound_port(const Fd& fd) {
  sockaddr_in sa{};
  socklen_t len = sizeof(sa);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&sa), &len) != 0) {
    throw_errno("net: getsockname");
  }
  return ntohs(sa.sin_port);
}

Fd connect_tcp(const std::string& addr, std::uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("net: socket");
  const sockaddr_in sa = make_addr(addr, port);
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&sa),
                sizeof(sa)) != 0) {
    throw_errno("net: connect " + addr + ":" + std::to_string(port));
  }
  set_nodelay(fd);
  return fd;
}

void set_nonblocking(const Fd& fd) {
  const int flags = ::fcntl(fd.get(), F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd.get(), F_SETFL, flags | O_NONBLOCK) != 0) {
    throw_errno("net: fcntl(O_NONBLOCK)");
  }
}

void set_nodelay(const Fd& fd) noexcept {
  const int one = 1;
  (void)::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void set_recv_timeout(const Fd& fd, std::uint32_t ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    throw_errno("net: setsockopt(SO_RCVTIMEO)");
  }
}

}  // namespace seqge::net
