#pragma once
// Per-client token-bucket rate limiter for the serving front-end. One
// bucket per connection, touched only from the event-loop thread, so
// there is no locking: refill is computed lazily from the elapsed time
// at each take() instead of by a timer thread.

#include <algorithm>
#include <chrono>

namespace seqge::net {

class TokenBucket {
 public:
  /// `rate` tokens per second, up to `burst` banked. rate <= 0 disables
  /// the limiter (take() always succeeds).
  TokenBucket(double rate, double burst,
              std::chrono::steady_clock::time_point now =
                  std::chrono::steady_clock::now()) noexcept
      : rate_(rate), burst_(std::max(burst, 1.0)), tokens_(burst_),
        last_(now) {}

  /// Consume one token. Returns false (request should be shed with
  /// RATE_LIMITED) when the bucket is empty.
  bool take(std::chrono::steady_clock::time_point now =
                std::chrono::steady_clock::now()) noexcept {
    if (rate_ <= 0.0) return true;
    const double elapsed =
        std::chrono::duration<double>(now - last_).count();
    last_ = now;
    tokens_ = std::min(burst_, tokens_ + elapsed * rate_);
    if (tokens_ < 1.0) return false;
    tokens_ -= 1.0;
    return true;
  }

  [[nodiscard]] double tokens() const noexcept { return tokens_; }

 private:
  double rate_;
  double burst_;
  double tokens_;
  std::chrono::steady_clock::time_point last_;
};

}  // namespace seqge::net
