#include "net/wire.hpp"

#include <bit>
#include <cstring>

namespace seqge::net {

namespace {

// Little-endian primitive writers. The codebase only targets
// little-endian hosts (x86-64, aarch64), so these are memcpys; the
// byte order is nonetheless pinned here, in one place.
void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  const auto n = out.size();
  out.resize(n + 4);
  std::memcpy(out.data() + n, &v, 4);
}
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  const auto n = out.size();
  out.resize(n + 8);
  std::memcpy(out.data() + n, &v, 8);
}
void put_f32(std::vector<std::uint8_t>& out, float v) {
  put_u32(out, std::bit_cast<std::uint32_t>(v));
}
void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

/// Bounds-checked read cursor over a frame body. Every take_* returns
/// false once the body is exhausted; decoders propagate that as
/// kBadRequest instead of reading past the buffer.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> buf) : buf_(buf) {}

  bool take_u8(std::uint8_t& v) {
    if (off_ + 1 > buf_.size()) return false;
    v = buf_[off_++];
    return true;
  }
  bool take_u32(std::uint32_t& v) {
    if (off_ + 4 > buf_.size()) return false;
    std::memcpy(&v, buf_.data() + off_, 4);
    off_ += 4;
    return true;
  }
  bool take_u64(std::uint64_t& v) {
    if (off_ + 8 > buf_.size()) return false;
    std::memcpy(&v, buf_.data() + off_, 8);
    off_ += 8;
    return true;
  }
  bool take_f32(float& v) {
    std::uint32_t bits = 0;
    if (!take_u32(bits)) return false;
    v = std::bit_cast<float>(bits);
    return true;
  }
  bool take_f64(double& v) {
    std::uint64_t bits = 0;
    if (!take_u64(bits)) return false;
    v = std::bit_cast<double>(bits);
    return true;
  }
  /// True when `count` items of `item_bytes` each fit in what remains —
  /// checked before any reserve/resize so a hostile count cannot force
  /// a huge allocation.
  [[nodiscard]] bool fits(std::uint64_t count,
                          std::size_t item_bytes) const {
    return count * item_bytes <= remaining();
  }
  [[nodiscard]] std::size_t remaining() const { return buf_.size() - off_; }
  [[nodiscard]] bool exhausted() const { return off_ == buf_.size(); }

 private:
  std::span<const std::uint8_t> buf_;
  std::size_t off_ = 0;
};

/// Start a frame: length placeholder + body header. Returns the offset
/// of the placeholder for finish_frame to patch.
std::size_t begin_frame(std::vector<std::uint8_t>& out, std::uint8_t type,
                        Status status, std::uint64_t id) {
  const std::size_t len_at = out.size();
  put_u32(out, 0);  // patched by finish_frame
  put_u8(out, kWireVersion);
  put_u8(out, type);
  put_u8(out, static_cast<std::uint8_t>(status));
  put_u8(out, 0);  // flags
  put_u64(out, id);
  return len_at;
}

void finish_frame(std::vector<std::uint8_t>& out, std::size_t len_at) {
  const auto body_len =
      static_cast<std::uint32_t>(out.size() - len_at - kLenBytes);
  std::memcpy(out.data() + len_at, &body_len, 4);
}

std::uint8_t req_type(MsgType t) { return static_cast<std::uint8_t>(t); }
std::uint8_t resp_type(MsgType t) {
  return static_cast<std::uint8_t>(t) | kResponseBit;
}

bool valid_edge_score(std::uint8_t v) {
  return v <= static_cast<std::uint8_t>(EdgeScore::kHadamardL2);
}

}  // namespace

const char* status_name(Status s) noexcept {
  switch (s) {
    case Status::kOk: return "OK";
    case Status::kError: return "ERROR";
    case Status::kOverloaded: return "OVERLOADED";
    case Status::kRateLimited: return "RATE_LIMITED";
    case Status::kBadRequest: return "BAD_REQUEST";
    case Status::kVersionMismatch: return "VERSION_MISMATCH";
    case Status::kNotReady: return "NOT_READY";
    case Status::kShuttingDown: return "SHUTTING_DOWN";
    case Status::kFrameTooLarge: return "FRAME_TOO_LARGE";
  }
  return "UNKNOWN";
}

// --- request encoders ----------------------------------------------------

void encode_topk_request(std::vector<std::uint8_t>& out, std::uint64_t id,
                         NodeId node, std::uint32_t k) {
  const auto at = begin_frame(out, req_type(MsgType::kTopK), Status::kOk, id);
  put_u32(out, node);
  put_u32(out, k);
  finish_frame(out, at);
}

void encode_score_request(std::vector<std::uint8_t>& out, std::uint64_t id,
                          NodeId u, NodeId v, EdgeScore kind) {
  const auto at =
      begin_frame(out, req_type(MsgType::kScore), Status::kOk, id);
  put_u32(out, u);
  put_u32(out, v);
  put_u8(out, static_cast<std::uint8_t>(kind));
  finish_frame(out, at);
}

void encode_topk_batch_request(std::vector<std::uint8_t>& out,
                               std::uint64_t id,
                               std::span<const NodeId> nodes,
                               std::uint32_t k) {
  const auto at =
      begin_frame(out, req_type(MsgType::kTopKBatch), Status::kOk, id);
  put_u32(out, k);
  put_u32(out, static_cast<std::uint32_t>(nodes.size()));
  for (NodeId n : nodes) put_u32(out, n);
  finish_frame(out, at);
}

void encode_score_batch_request(
    std::vector<std::uint8_t>& out, std::uint64_t id,
    std::span<const std::pair<NodeId, NodeId>> pairs, EdgeScore kind) {
  const auto at =
      begin_frame(out, req_type(MsgType::kScoreBatch), Status::kOk, id);
  put_u8(out, static_cast<std::uint8_t>(kind));
  put_u32(out, static_cast<std::uint32_t>(pairs.size()));
  for (const auto& [u, v] : pairs) {
    put_u32(out, u);
    put_u32(out, v);
  }
  finish_frame(out, at);
}

void encode_stats_request(std::vector<std::uint8_t>& out, std::uint64_t id) {
  finish_frame(out, begin_frame(out, req_type(MsgType::kStats),
                                Status::kOk, id));
}

void encode_ping_request(std::vector<std::uint8_t>& out, std::uint64_t id) {
  finish_frame(out,
               begin_frame(out, req_type(MsgType::kPing), Status::kOk, id));
}

// --- response encoders ---------------------------------------------------

void encode_topk_response(std::vector<std::uint8_t>& out, std::uint64_t id,
                          std::uint64_t version,
                          std::span<const serve::Neighbor> neighbors) {
  const auto at =
      begin_frame(out, resp_type(MsgType::kTopK), Status::kOk, id);
  put_u64(out, version);
  put_u32(out, static_cast<std::uint32_t>(neighbors.size()));
  for (const auto& n : neighbors) {
    put_u32(out, n.node);
    put_f32(out, n.score);
  }
  finish_frame(out, at);
}

void encode_score_response(std::vector<std::uint8_t>& out, std::uint64_t id,
                           std::uint64_t version, double score) {
  const auto at =
      begin_frame(out, resp_type(MsgType::kScore), Status::kOk, id);
  put_u64(out, version);
  put_f64(out, score);
  finish_frame(out, at);
}

void encode_topk_batch_response(
    std::vector<std::uint8_t>& out, std::uint64_t id, std::uint64_t version,
    std::span<const std::vector<serve::Neighbor>> results) {
  const auto at =
      begin_frame(out, resp_type(MsgType::kTopKBatch), Status::kOk, id);
  put_u64(out, version);
  put_u32(out, static_cast<std::uint32_t>(results.size()));
  for (const auto& list : results) {
    put_u32(out, static_cast<std::uint32_t>(list.size()));
    for (const auto& n : list) {
      put_u32(out, n.node);
      put_f32(out, n.score);
    }
  }
  finish_frame(out, at);
}

void encode_score_batch_response(std::vector<std::uint8_t>& out,
                                 std::uint64_t id, std::uint64_t version,
                                 std::span<const double> scores) {
  const auto at =
      begin_frame(out, resp_type(MsgType::kScoreBatch), Status::kOk, id);
  put_u64(out, version);
  put_u32(out, static_cast<std::uint32_t>(scores.size()));
  for (double s : scores) put_f64(out, s);
  finish_frame(out, at);
}

void encode_stats_response(std::vector<std::uint8_t>& out, std::uint64_t id,
                           const ServerStats& stats) {
  const auto at =
      begin_frame(out, resp_type(MsgType::kStats), Status::kOk, id);
  put_u64(out, stats.snapshot_version);
  put_u64(out, stats.queries_served);
  put_u64(out, stats.engine_rebuilds);
  put_u64(out, stats.queue_depth);
  put_u64(out, stats.queue_capacity);
  put_u64(out, stats.open_connections);
  put_u64(out, stats.connections_total);
  put_u64(out, stats.requests_total);
  put_u64(out, stats.rejected_overload);
  put_u64(out, stats.rejected_ratelimit);
  put_u64(out, stats.bad_frames);
  finish_frame(out, at);
}

void encode_ping_response(std::vector<std::uint8_t>& out, std::uint64_t id) {
  finish_frame(out,
               begin_frame(out, resp_type(MsgType::kPing), Status::kOk, id));
}

void encode_error_response(std::vector<std::uint8_t>& out, MsgType type,
                           std::uint64_t id, Status status) {
  finish_frame(out, begin_frame(out, resp_type(type), status, id));
}

// --- decoding ------------------------------------------------------------

std::size_t frame_size(std::span<const std::uint8_t> buf,
                       std::size_t max_frame, bool* too_large) {
  *too_large = false;
  if (buf.size() < kLenBytes) return 0;
  std::uint32_t body_len = 0;
  std::memcpy(&body_len, buf.data(), 4);
  if (body_len > max_frame) {
    *too_large = true;
    return 0;
  }
  if (buf.size() < kLenBytes + body_len) return 0;
  return kLenBytes + body_len;
}

bool decode_header(std::span<const std::uint8_t> body, FrameHeader& out) {
  if (body.size() < kHeaderBytes) return false;
  out.version = body[0];
  out.type = body[1];
  out.status = static_cast<Status>(body[2]);
  out.flags = body[3];
  std::memcpy(&out.id, body.data() + 4, 8);
  return true;
}

Status decode_request(std::span<const std::uint8_t> body, Request& out) {
  FrameHeader hdr;
  if (!decode_header(body, hdr)) return Status::kBadRequest;
  out.id = hdr.id;
  if (hdr.version != kWireVersion) return Status::kVersionMismatch;
  if (hdr.flags != 0) return Status::kBadRequest;
  if ((hdr.type & kResponseBit) != 0) return Status::kBadRequest;
  if (hdr.type < static_cast<std::uint8_t>(MsgType::kTopK) ||
      hdr.type > static_cast<std::uint8_t>(MsgType::kPing)) {
    return Status::kBadRequest;
  }
  out.type = static_cast<MsgType>(hdr.type);

  Reader r(body.subspan(kHeaderBytes));
  switch (out.type) {
    case MsgType::kTopK: {
      if (!r.take_u32(out.u) || !r.take_u32(out.k)) {
        return Status::kBadRequest;
      }
      break;
    }
    case MsgType::kScore: {
      std::uint8_t kind = 0;
      if (!r.take_u32(out.u) || !r.take_u32(out.v) || !r.take_u8(kind) ||
          !valid_edge_score(kind)) {
        return Status::kBadRequest;
      }
      out.kind = static_cast<EdgeScore>(kind);
      break;
    }
    case MsgType::kTopKBatch: {
      std::uint32_t count = 0;
      if (!r.take_u32(out.k) || !r.take_u32(count) || !r.fits(count, 4)) {
        return Status::kBadRequest;
      }
      out.nodes.resize(count);
      for (auto& n : out.nodes) {
        if (!r.take_u32(n)) return Status::kBadRequest;
      }
      break;
    }
    case MsgType::kScoreBatch: {
      std::uint8_t kind = 0;
      std::uint32_t count = 0;
      if (!r.take_u8(kind) || !valid_edge_score(kind) ||
          !r.take_u32(count) || !r.fits(count, 8)) {
        return Status::kBadRequest;
      }
      out.kind = static_cast<EdgeScore>(kind);
      out.pairs.resize(count);
      for (auto& [u, v] : out.pairs) {
        if (!r.take_u32(u) || !r.take_u32(v)) return Status::kBadRequest;
      }
      break;
    }
    case MsgType::kStats:
    case MsgType::kPing:
      break;
  }
  if (!r.exhausted()) return Status::kBadRequest;  // trailing bytes
  return Status::kOk;
}

bool decode_response(std::span<const std::uint8_t> body, Response& out) {
  FrameHeader hdr;
  if (!decode_header(body, hdr)) return false;
  if (hdr.version != kWireVersion) return false;
  if ((hdr.type & kResponseBit) == 0) return false;
  const std::uint8_t base = hdr.type & ~kResponseBit;
  if (base < static_cast<std::uint8_t>(MsgType::kTopK) ||
      base > static_cast<std::uint8_t>(MsgType::kPing)) {
    return false;
  }
  out.type = static_cast<MsgType>(base);
  out.status = hdr.status;
  out.id = hdr.id;

  Reader r(body.subspan(kHeaderBytes));
  if (out.status != Status::kOk) return r.exhausted();

  switch (out.type) {
    case MsgType::kTopK: {
      std::uint32_t count = 0;
      if (!r.take_u64(out.version) || !r.take_u32(count) ||
          !r.fits(count, 8)) {
        return false;
      }
      out.neighbors.resize(count);
      for (auto& n : out.neighbors) {
        if (!r.take_u32(n.node) || !r.take_f32(n.score)) return false;
      }
      break;
    }
    case MsgType::kScore: {
      if (!r.take_u64(out.version) || !r.take_f64(out.score)) return false;
      break;
    }
    case MsgType::kTopKBatch: {
      std::uint32_t count = 0;
      if (!r.take_u64(out.version) || !r.take_u32(count) ||
          !r.fits(count, 4)) {
        return false;
      }
      out.batch.resize(count);
      for (auto& list : out.batch) {
        std::uint32_t m = 0;
        if (!r.take_u32(m) || !r.fits(m, 8)) return false;
        list.resize(m);
        for (auto& n : list) {
          if (!r.take_u32(n.node) || !r.take_f32(n.score)) return false;
        }
      }
      break;
    }
    case MsgType::kScoreBatch: {
      std::uint32_t count = 0;
      if (!r.take_u64(out.version) || !r.take_u32(count) ||
          !r.fits(count, 8)) {
        return false;
      }
      out.scores.resize(count);
      for (auto& s : out.scores) {
        if (!r.take_f64(s)) return false;
      }
      break;
    }
    case MsgType::kStats: {
      ServerStats& s = out.stats;
      if (!r.take_u64(s.snapshot_version) || !r.take_u64(s.queries_served) ||
          !r.take_u64(s.engine_rebuilds) || !r.take_u64(s.queue_depth) ||
          !r.take_u64(s.queue_capacity) || !r.take_u64(s.open_connections) ||
          !r.take_u64(s.connections_total) || !r.take_u64(s.requests_total) ||
          !r.take_u64(s.rejected_overload) ||
          !r.take_u64(s.rejected_ratelimit) || !r.take_u64(s.bad_frames)) {
        return false;
      }
      break;
    }
    case MsgType::kPing:
      break;
  }
  return r.exhausted();
}

}  // namespace seqge::net
