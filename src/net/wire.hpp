#pragma once
// seqge-wire-v1 — the versioned length-prefixed binary protocol the
// network serving front-end (net/server.hpp) and client (net/client.hpp)
// speak. Spec: docs/SERVING.md. Designed for pipelining: every request
// carries a client-chosen 64-bit correlation id echoed verbatim in the
// response, and responses to one connection may arrive in any order
// (the engine's worker pool answers concurrently).
//
// Frame layout (all integers little-endian):
//
//   u32 body_len                      bytes after this field
//   body:
//     u8  version     = 1             protocol version
//     u8  type                        MsgType; responses set bit 0x80
//     u8  status                      Status; 0 in requests
//     u8  flags       = 0             reserved, must be 0 in v1
//     u64 id                          correlation id, echoed verbatim
//     ... payload                     type-specific, below
//
// Floats cross the wire as raw IEEE-754 bits (f32/f64 via bit_cast), so
// a served score is bit-identical to the in-process answer — the
// loopback equivalence test in tests/test_net.cpp asserts ==, not near.
//
// Request payloads:
//   kTopK        u32 node | u32 k
//   kScore       u32 u | u32 v | u8 kind (EdgeScore)
//   kTopKBatch   u32 k | u32 count | count x u32 node
//   kScoreBatch  u8 kind | u32 count | count x (u32 u | u32 v)
//   kStats       (empty)
//   kPing        (empty)
//
// Response payloads (only when status == kOk; error responses carry an
// empty payload):
//   kTopK        u64 snapshot_version | u32 count
//                | count x (u32 node | f32 score)
//   kScore       u64 snapshot_version | f64 score
//   kTopKBatch   u64 snapshot_version | u32 count
//                | count x (u32 m | m x (u32 node | f32 score))
//   kScoreBatch  u64 snapshot_version | u32 count | count x f64
//   kStats       ServerStats, 11 x u64 in declaration order
//   kPing        (empty)
//
// Decoding is strict: unknown type, non-zero flags, trailing payload
// bytes, or a count that cannot fit in the remaining bytes all reject
// the frame with kBadRequest (counts are validated against the byte
// budget *before* any allocation, so a hostile length cannot balloon
// memory). A version byte != 1 rejects with kVersionMismatch but — the
// frame boundary being intact — does not poison the connection.

#include <cstdint>
#include <span>
#include <vector>

#include "eval/link_prediction.hpp"
#include "graph/graph.hpp"
#include "serve/query_engine.hpp"

namespace seqge::net {

inline constexpr std::uint8_t kWireVersion = 1;
/// Bytes of the u32 length prefix.
inline constexpr std::size_t kLenBytes = 4;
/// Fixed body header: version, type, status, flags, id.
inline constexpr std::size_t kHeaderBytes = 12;
/// Default cap on body_len; frames above it are rejected and the
/// connection closed (the stream can no longer be trusted to be
/// frame-aligned once a length is refused).
inline constexpr std::size_t kDefaultMaxFrame = 1u << 20;

enum class MsgType : std::uint8_t {
  kTopK = 1,
  kScore = 2,
  kTopKBatch = 3,
  kScoreBatch = 4,
  kStats = 5,
  kPing = 6,
};
inline constexpr std::uint8_t kResponseBit = 0x80;

enum class Status : std::uint8_t {
  kOk = 0,
  kError = 1,            ///< engine raised; request was well-formed
  kOverloaded = 2,       ///< shed: engine queue full (back off + retry)
  kRateLimited = 3,      ///< shed: per-client token bucket empty
  kBadRequest = 4,       ///< malformed frame or payload
  kVersionMismatch = 5,  ///< unsupported protocol version byte
  kNotReady = 6,         ///< no snapshot published yet
  kShuttingDown = 7,     ///< server draining; connection closes soon
  kFrameTooLarge = 8,    ///< body_len over the server's max frame
};

[[nodiscard]] const char* status_name(Status s) noexcept;

/// Decoded body header (the 12 bytes after the length prefix).
struct FrameHeader {
  std::uint8_t version = kWireVersion;
  std::uint8_t type = 0;  ///< MsgType value; responses OR in kResponseBit
  Status status = Status::kOk;
  std::uint8_t flags = 0;
  std::uint64_t id = 0;
};

/// Server counters returned by a kStats request, fixed order on the
/// wire. Engine fields come from serve::EmbeddingServer, net fields
/// from the front-end itself.
struct ServerStats {
  std::uint64_t snapshot_version = 0;
  std::uint64_t queries_served = 0;
  std::uint64_t engine_rebuilds = 0;
  std::uint64_t queue_depth = 0;
  std::uint64_t queue_capacity = 0;
  std::uint64_t open_connections = 0;
  std::uint64_t connections_total = 0;
  std::uint64_t requests_total = 0;
  std::uint64_t rejected_overload = 0;
  std::uint64_t rejected_ratelimit = 0;
  std::uint64_t bad_frames = 0;
};

/// One decoded request, whatever its type (unused fields are empty).
struct Request {
  MsgType type = MsgType::kPing;
  std::uint64_t id = 0;
  NodeId u = 0;
  NodeId v = 0;
  std::uint32_t k = 0;
  EdgeScore kind = EdgeScore::kCosine;
  std::vector<NodeId> nodes;                     ///< kTopKBatch
  std::vector<std::pair<NodeId, NodeId>> pairs;  ///< kScoreBatch
};

/// One decoded response, whatever its type (unused fields are empty).
struct Response {
  MsgType type = MsgType::kPing;
  Status status = Status::kOk;
  std::uint64_t id = 0;
  std::uint64_t version = 0;
  std::vector<serve::Neighbor> neighbors;            ///< kTopK
  std::vector<std::vector<serve::Neighbor>> batch;   ///< kTopKBatch
  double score = 0.0;                                ///< kScore
  std::vector<double> scores;                        ///< kScoreBatch
  ServerStats stats;                                 ///< kStats
};

// --- encoding (append one complete frame to `out`) -----------------------

void encode_topk_request(std::vector<std::uint8_t>& out, std::uint64_t id,
                         NodeId node, std::uint32_t k);
void encode_score_request(std::vector<std::uint8_t>& out, std::uint64_t id,
                          NodeId u, NodeId v, EdgeScore kind);
void encode_topk_batch_request(std::vector<std::uint8_t>& out,
                               std::uint64_t id,
                               std::span<const NodeId> nodes,
                               std::uint32_t k);
void encode_score_batch_request(
    std::vector<std::uint8_t>& out, std::uint64_t id,
    std::span<const std::pair<NodeId, NodeId>> pairs, EdgeScore kind);
void encode_stats_request(std::vector<std::uint8_t>& out, std::uint64_t id);
void encode_ping_request(std::vector<std::uint8_t>& out, std::uint64_t id);

void encode_topk_response(std::vector<std::uint8_t>& out, std::uint64_t id,
                          std::uint64_t version,
                          std::span<const serve::Neighbor> neighbors);
void encode_score_response(std::vector<std::uint8_t>& out, std::uint64_t id,
                           std::uint64_t version, double score);
void encode_topk_batch_response(
    std::vector<std::uint8_t>& out, std::uint64_t id, std::uint64_t version,
    std::span<const std::vector<serve::Neighbor>> results);
void encode_score_batch_response(std::vector<std::uint8_t>& out,
                                 std::uint64_t id, std::uint64_t version,
                                 std::span<const double> scores);
void encode_stats_response(std::vector<std::uint8_t>& out, std::uint64_t id,
                           const ServerStats& stats);
void encode_ping_response(std::vector<std::uint8_t>& out, std::uint64_t id);
/// Error/shed response: any type, empty payload, non-kOk status.
void encode_error_response(std::vector<std::uint8_t>& out, MsgType type,
                           std::uint64_t id, Status status);

// --- decoding ------------------------------------------------------------

/// Inspect a receive buffer for one complete frame. Returns the total
/// frame size (length prefix + body) when `buf` holds at least one
/// complete frame starting at offset 0; 0 when more bytes are needed.
/// Sets `*too_large` when the announced body exceeds `max_frame` (the
/// caller must reject and close — the stream is no longer trustworthy).
[[nodiscard]] std::size_t frame_size(std::span<const std::uint8_t> buf,
                                     std::size_t max_frame, bool* too_large);

/// Decode the fixed header from a complete frame body (the bytes after
/// the length prefix). Returns false when the body is shorter than
/// kHeaderBytes.
[[nodiscard]] bool decode_header(std::span<const std::uint8_t> body,
                                 FrameHeader& out);

/// Decode a complete request body. Returns kOk and fills `out`, or the
/// Status the server should answer with (kVersionMismatch /
/// kBadRequest). `out.id` is filled whenever the header was readable,
/// so error responses can echo it.
[[nodiscard]] Status decode_request(std::span<const std::uint8_t> body,
                                    Request& out);

/// Decode a complete response body (client side). Returns false on a
/// malformed body.
[[nodiscard]] bool decode_response(std::span<const std::uint8_t> body,
                                   Response& out);

}  // namespace seqge::net
