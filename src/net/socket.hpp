#pragma once
// Thin POSIX TCP socket helpers for the net/ subsystem: an RAII fd
// owner plus the handful of listen/connect/option calls the server and
// client need. Errors surface as std::system_error with the errno
// category so call sites log actionable messages. Loopback-first: the
// bench and tests drive everything over 127.0.0.1, but nothing here is
// loopback-specific.

#include <cstdint>
#include <string>
#include <utility>

namespace seqge::net {

/// Owning file descriptor. Move-only; closes on destruction.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) noexcept : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(Fd&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  [[nodiscard]] int get() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int release() noexcept { return std::exchange(fd_, -1); }
  void reset() noexcept;

 private:
  int fd_ = -1;
};

/// Bind + listen on `addr:port` (port 0 = kernel-assigned ephemeral
/// port, read back via bound_port). SO_REUSEADDR is set so restarts do
/// not fight TIME_WAIT. Throws std::system_error.
[[nodiscard]] Fd listen_tcp(const std::string& addr, std::uint16_t port,
                            int backlog = 128);

/// The local port a bound socket ended up on.
[[nodiscard]] std::uint16_t bound_port(const Fd& fd);

/// Blocking connect to `addr:port`. TCP_NODELAY is set (the wire
/// protocol writes whole frames; Nagle only adds latency). Throws
/// std::system_error on failure.
[[nodiscard]] Fd connect_tcp(const std::string& addr, std::uint16_t port);

/// Switch a socket to non-blocking mode. Throws std::system_error.
void set_nonblocking(const Fd& fd);

/// Disable Nagle. Best-effort (ignored on failure: correctness never
/// depends on it).
void set_nodelay(const Fd& fd) noexcept;

/// SO_RCVTIMEO in milliseconds for blocking clients (0 = no timeout).
void set_recv_timeout(const Fd& fd, std::uint32_t ms);

}  // namespace seqge::net
