#include "net/client.hpp"

#include <sys/socket.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>

namespace seqge::net {

Client::Client(const std::string& addr, std::uint16_t port, ClientConfig cfg)
    : fd_(connect_tcp(addr, port)), cfg_(cfg) {
  if (cfg_.recv_timeout_ms > 0) {
    set_recv_timeout(fd_, cfg_.recv_timeout_ms);
  }
}

void Client::send_frame(const std::vector<std::uint8_t>& frame) {
  std::size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n = ::send(fd_.get(), frame.data() + off,
                             frame.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    throw std::system_error(errno, std::generic_category(),
                            "net: client send");
  }
}

Response Client::read_one() {
  for (;;) {
    bool too_large = false;
    const std::size_t fsize =
        frame_size(in_, cfg_.max_frame_bytes, &too_large);
    if (too_large) {
      throw std::runtime_error("net: client: response frame over limit");
    }
    if (fsize != 0) {
      Response resp;
      const std::span<const std::uint8_t> body(in_.data() + kLenBytes,
                                               fsize - kLenBytes);
      const bool ok = decode_response(body, resp);
      in_.erase(in_.begin(), in_.begin() + static_cast<std::ptrdiff_t>(fsize));
      if (!ok) {
        throw std::runtime_error("net: client: malformed response frame");
      }
      return resp;
    }
    std::uint8_t buf[16 * 1024];
    const ssize_t n = ::recv(fd_.get(), buf, sizeof(buf), 0);
    if (n > 0) {
      in_.insert(in_.end(), buf, buf + n);
      continue;
    }
    if (n == 0) {
      throw std::runtime_error("net: client: connection closed by server");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      throw std::runtime_error("net: client: receive timeout");
    }
    throw std::system_error(errno, std::generic_category(),
                            "net: client recv");
  }
}

Response Client::recv() {
  if (!parked_order_.empty()) {
    const std::uint64_t id = parked_order_.front();
    parked_order_.erase(parked_order_.begin());
    auto it = parked_.find(id);
    Response resp = std::move(it->second);
    parked_.erase(it);
    return resp;
  }
  return read_one();
}

Response Client::wait(std::uint64_t id) {
  auto it = parked_.find(id);
  if (it != parked_.end()) {
    Response resp = std::move(it->second);
    parked_.erase(it);
    for (auto oit = parked_order_.begin(); oit != parked_order_.end(); ++oit) {
      if (*oit == id) {
        parked_order_.erase(oit);
        break;
      }
    }
    return resp;
  }
  for (;;) {
    Response resp = read_one();
    if (resp.id == id) return resp;
    parked_order_.push_back(resp.id);
    parked_.emplace(resp.id, std::move(resp));
  }
}

// --- pipelined sends -----------------------------------------------------

std::uint64_t Client::send_topk(NodeId node, std::uint32_t k) {
  const std::uint64_t id = next_id_++;
  std::vector<std::uint8_t> frame;
  encode_topk_request(frame, id, node, k);
  send_frame(frame);
  return id;
}

std::uint64_t Client::send_score(NodeId u, NodeId v, EdgeScore kind) {
  const std::uint64_t id = next_id_++;
  std::vector<std::uint8_t> frame;
  encode_score_request(frame, id, u, v, kind);
  send_frame(frame);
  return id;
}

std::uint64_t Client::send_topk_batch(std::span<const NodeId> nodes,
                                      std::uint32_t k) {
  const std::uint64_t id = next_id_++;
  std::vector<std::uint8_t> frame;
  encode_topk_batch_request(frame, id, nodes, k);
  send_frame(frame);
  return id;
}

std::uint64_t Client::send_score_batch(
    std::span<const std::pair<NodeId, NodeId>> pairs, EdgeScore kind) {
  const std::uint64_t id = next_id_++;
  std::vector<std::uint8_t> frame;
  encode_score_batch_request(frame, id, pairs, kind);
  send_frame(frame);
  return id;
}

std::uint64_t Client::send_ping() {
  const std::uint64_t id = next_id_++;
  std::vector<std::uint8_t> frame;
  encode_ping_request(frame, id);
  send_frame(frame);
  return id;
}

// --- sync wrappers -------------------------------------------------------

Response Client::topk(NodeId node, std::uint32_t k) {
  return wait(send_topk(node, k));
}

Response Client::score(NodeId u, NodeId v, EdgeScore kind) {
  return wait(send_score(u, v, kind));
}

Response Client::topk_batch(std::span<const NodeId> nodes, std::uint32_t k) {
  return wait(send_topk_batch(nodes, k));
}

Response Client::score_batch(
    std::span<const std::pair<NodeId, NodeId>> pairs, EdgeScore kind) {
  return wait(send_score_batch(pairs, kind));
}

Response Client::stats() {
  const std::uint64_t id = next_id_++;
  std::vector<std::uint8_t> frame;
  encode_stats_request(frame, id);
  send_frame(frame);
  return wait(id);
}

Response Client::ping() { return wait(send_ping()); }

}  // namespace seqge::net
