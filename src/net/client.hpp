#pragma once
// seqge-wire-v1 client. One TCP connection, blocking socket, two usage
// styles:
//
//  * Sync: topk()/score()/..., one request in flight — send, then read
//    frames until the response with the matching correlation id shows
//    up (responses may interleave arbitrarily when mixed with async
//    sends; anything that is not the awaited id is parked).
//  * Pipelined: send_*() returns the correlation id immediately without
//    waiting; recv() returns the next response in arrival order and
//    wait(id) a specific one. The load generator (bench/bench_net.cpp)
//    keeps a configurable window of these outstanding per connection —
//    that window, not connection count, is what drives the server's
//    coalescing and overload behaviour.
//
// Errors: socket failures and malformed response frames throw
// std::runtime_error / std::system_error (the stream is unusable once
// framing is broken). Shed responses (OVERLOADED, RATE_LIMITED, ...)
// are NOT exceptions — they come back as a Response with that status,
// because backpressure is data the caller reacts to, not a bug.
//
// Not thread-safe: one Client per thread.

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/socket.hpp"
#include "net/wire.hpp"

namespace seqge::net {

struct ClientConfig {
  /// Responses announcing a larger body abort with an exception.
  std::size_t max_frame_bytes = kDefaultMaxFrame;
  /// SO_RCVTIMEO for reads; 0 = block forever. A timeout surfaces as
  /// std::runtime_error from recv()/wait().
  std::uint32_t recv_timeout_ms = 0;
};

class Client {
 public:
  /// Connects immediately; throws std::system_error on failure.
  Client(const std::string& addr, std::uint16_t port, ClientConfig cfg = {});

  Client(Client&&) noexcept = default;
  Client& operator=(Client&&) noexcept = default;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // --- sync calls (send + wait for this response) ------------------------

  Response topk(NodeId node, std::uint32_t k);
  Response score(NodeId u, NodeId v, EdgeScore kind);
  Response topk_batch(std::span<const NodeId> nodes, std::uint32_t k);
  Response score_batch(std::span<const std::pair<NodeId, NodeId>> pairs,
                       EdgeScore kind);
  Response stats();
  Response ping();

  // --- pipelined calls (send only; collect with recv()/wait()) -----------

  std::uint64_t send_topk(NodeId node, std::uint32_t k);
  std::uint64_t send_score(NodeId u, NodeId v, EdgeScore kind);
  std::uint64_t send_topk_batch(std::span<const NodeId> nodes,
                                std::uint32_t k);
  std::uint64_t send_score_batch(
      std::span<const std::pair<NodeId, NodeId>> pairs, EdgeScore kind);
  std::uint64_t send_ping();

  /// Next response in arrival order (parked responses first). Throws
  /// on EOF, socket error, or a malformed frame.
  Response recv();
  /// The response with this correlation id; other arrivals are parked
  /// for later recv()/wait() calls.
  Response wait(std::uint64_t id);

  /// Responses received but not yet claimed by recv()/wait().
  [[nodiscard]] std::size_t parked() const noexcept {
    return parked_.size();
  }

 private:
  void send_frame(const std::vector<std::uint8_t>& frame);
  /// Read exactly one frame off the socket and decode it.
  Response read_one();

  Fd fd_;
  ClientConfig cfg_;
  std::uint64_t next_id_ = 1;
  std::vector<std::uint8_t> in_;
  std::unordered_map<std::uint64_t, Response> parked_;
  std::vector<std::uint64_t> parked_order_;
};

}  // namespace seqge::net
