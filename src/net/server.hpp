#pragma once
// TCP front-end for serve::EmbeddingServer speaking seqge-wire-v1
// (net/wire.hpp; spec in docs/SERVING.md) — the gate between "library"
// and "system": external clients issue top-k / edge-score / batch /
// stats requests over a socket instead of std::future in-process.
//
// Architecture — acceptor/event-loop + responder workers:
//
//   clients ──▶ event-loop thread (poll)          responder pool
//              ┌──────────────────────────┐      ┌───────────────────┐
//              │ accept / read / decode   │ Com- │ future.get()      │
//              │ admission control:       │ ple- │ encode response   │
//              │  * SHUTTING_DOWN drain   │ tion │ stage to outbox,  │
//              │  * token-bucket          │ queue│ wake the loop     │
//              │    RATE_LIMITED          │ ───▶ │                   │
//              │  * try_* shed            │      └───────────────────┘
//              │    OVERLOADED            │  ◀── outbox + wake pipe
//              │ coalesce single top-k    │
//              │ into engine batch calls  │
//              │ write-buffer flushing    │
//              └──────────────────────────┘
//
// The event loop never blocks on the engine: submission goes through
// EmbeddingServer::try_* (BoundedQueue::try_push under the hood), so a
// saturated engine queue sheds with OVERLOADED instead of parking the
// loop; responder workers absorb the blocking future.get() calls.
//
// Coalescing: single top-k requests decoded in one poll sweep (across
// connections) with the same k are merged into one
// EmbeddingServer::topk_batch call — one queue slot and one worker
// wake-up for the whole group — and fanned back out as individual
// responses. This is the host-side analogue of the accelerator's
// batched walk training: amortize per-item dispatch over a batch.
//
// Hardening: max-frame and max-connection limits, per-client token
// bucket, idle-connection timeout, graceful drain on stop() (stop
// accepting, answer SHUTTING_DOWN, flush in-flight responses up to
// drain_timeout). Everything is instrumented through src/obs/ under
// seqge_net_* (docs/OBSERVABILITY.md).
//
// Threading: the connection table is owned exclusively by the event-
// loop thread; responders communicate with it only through the locked
// outbox + wake pipe, and with clients never directly. start()/stop()
// are for one controlling thread; stats accessors are safe anywhere.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/socket.hpp"
#include "net/wire.hpp"
#include "serve/embedding_server.hpp"
#include "util/bounded_queue.hpp"

namespace seqge::net {

struct NetServerConfig {
  std::string bind_addr = "127.0.0.1";
  /// 0 = kernel-assigned ephemeral port; read back with port().
  std::uint16_t port = 0;
  /// Responder threads turning engine futures into response frames.
  std::size_t workers = 2;
  /// Accepted connections beyond this are closed immediately.
  std::size_t max_connections = 256;
  /// Frames announcing a larger body are rejected (FRAME_TOO_LARGE)
  /// and the connection closed.
  std::size_t max_frame_bytes = kDefaultMaxFrame;
  /// Connections idle (no readable bytes) longer than this are closed.
  /// 0 disables the sweep.
  std::chrono::milliseconds idle_timeout{30000};
  /// Per-client token bucket: requests/second and banked burst.
  /// rate <= 0 disables rate limiting.
  double rate_limit_qps = 0.0;
  double rate_limit_burst = 64.0;
  /// Max single top-k requests coalesced into one engine batch call.
  std::size_t coalesce_max = 16;
  /// Completion-queue capacity (responses in flight between the event
  /// loop and the responders); overflow sheds with OVERLOADED.
  std::size_t completion_capacity = 4096;
  /// stop() waits this long for in-flight responses to flush before
  /// tearing connections down.
  std::chrono::milliseconds drain_timeout{2000};
};

class Server {
 public:
  /// The engine must outlive the server. Call start() to begin serving.
  Server(serve::EmbeddingServer& engine, NetServerConfig cfg = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen, and spawn the event loop + responders. Throws
  /// std::system_error on bind failure.
  void start();

  /// The port actually bound (after start(); resolves port 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }

  /// Graceful drain: stop accepting, answer new requests with
  /// SHUTTING_DOWN, wait up to cfg.drain_timeout for in-flight
  /// responses to flush, then close every connection and join all
  /// threads. Idempotent; also run by the destructor. Returns the
  /// number of responses still in flight when the timeout expired
  /// (0 = clean drain).
  std::size_t stop();

  // Lifetime totals, safe from any thread (the kStats wire response
  // carries the same numbers).
  [[nodiscard]] std::uint64_t connections_accepted() const noexcept {
    return conns_total_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t requests_admitted() const noexcept {
    return requests_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t rejected_overload() const noexcept {
    return rej_overload_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t rejected_ratelimit() const noexcept {
    return rej_ratelimit_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bad_frames() const noexcept {
    return bad_frames_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t open_connections() const noexcept {
    return open_conns_.load(std::memory_order_relaxed);
  }

 private:
  struct Conn;
  struct PendingTopK;
  struct Completion;

  void run_loop();
  void responder_loop();
  /// Parse + dispatch every complete frame in `conn`'s read buffer.
  void process_frames(Conn& conn);
  void dispatch(Conn& conn, Request&& req,
                std::chrono::steady_clock::time_point t0);
  /// Submit the coalesced single-top-k groups accumulated this sweep.
  void flush_coalesced();
  /// Responder side: queue response bytes for `conn_id` and wake the
  /// event loop.
  void stage(std::uint64_t conn_id, std::vector<std::uint8_t>&& bytes);
  /// Event-loop side: append + try to flush immediately.
  void send_now(Conn& conn, const std::vector<std::uint8_t>& bytes);
  bool flush_out(Conn& conn);  ///< false = fatal write error, drop conn
  void close_conn(std::uint64_t conn_id);
  void wake() noexcept;
  ServerStats snapshot_stats() const;

  serve::EmbeddingServer& engine_;
  NetServerConfig cfg_;

  Fd listen_fd_;
  Fd wake_r_, wake_w_;
  std::uint16_t port_ = 0;

  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> stop_loop_{false};
  std::atomic<bool> quiescent_{true};  ///< loop: all buffers flushed
  std::atomic<std::int64_t> inflight_{0};

  std::unique_ptr<BoundedQueue<Completion>> completions_;
  std::mutex outbox_mu_;
  std::vector<std::pair<std::uint64_t, std::vector<std::uint8_t>>> outbox_;

  std::thread loop_;
  std::vector<std::thread> responders_;

  // Event-loop-owned state (touched only by run_loop and the helpers
  // it calls on its own thread).
  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns_;
  std::uint64_t next_conn_id_ = 1;
  std::unordered_map<std::uint32_t, std::vector<PendingTopK>> pending_topk_;

  std::atomic<std::uint64_t> conns_total_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> rej_overload_{0};
  std::atomic<std::uint64_t> rej_ratelimit_{0};
  std::atomic<std::uint64_t> bad_frames_{0};
  std::atomic<std::uint64_t> open_conns_{0};
};

}  // namespace seqge::net
