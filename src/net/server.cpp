#include "net/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "net/token_bucket.hpp"
#include "obs/metrics.hpp"
#include "util/logging.hpp"

namespace seqge::net {

namespace {

/// Process-wide wire-layer metrics (docs/OBSERVABILITY.md, seqge_net_*).
struct NetMetrics {
  obs::Counter* connections;
  obs::Counter* requests;
  obs::Counter* rej_overload;
  obs::Counter* rej_ratelimit;
  obs::Counter* bad_frames;
  obs::Counter* bytes_in;
  obs::Counter* bytes_out;
  obs::Counter* coalesced_batches;
  obs::Counter* coalesced_requests;
  obs::Gauge* open_conns;
  obs::Gauge* inflight;
  obs::Histogram* decode_us;
  obs::Histogram* request_us;
};

NetMetrics& net_metrics() {
  auto& reg = obs::Registry::global();
  static NetMetrics m{
      reg.counter("seqge_net_connections_total", {},
                  "TCP connections accepted"),
      reg.counter("seqge_net_requests_total", {},
                  "Wire requests admitted (decoded + past admission)"),
      reg.counter("seqge_net_rejected_overload_total", {},
                  "Requests shed with OVERLOADED (engine queue full)"),
      reg.counter("seqge_net_rejected_ratelimit_total", {},
                  "Requests shed with RATE_LIMITED (token bucket empty)"),
      reg.counter("seqge_net_bad_frames_total", {},
                  "Frames rejected (malformed, oversized, bad version)"),
      reg.counter("seqge_net_bytes_in_total", {}, "Bytes read from clients"),
      reg.counter("seqge_net_bytes_out_total", {},
                  "Bytes written to clients"),
      reg.counter("seqge_net_coalesced_batches_total", {},
                  "Engine batch calls that merged >1 wire top-k request"),
      reg.counter("seqge_net_coalesced_requests_total", {},
                  "Wire top-k requests that shared a coalesced engine call"),
      reg.gauge("seqge_net_open_connections", {}, "Connections open now"),
      reg.gauge("seqge_net_inflight_requests", {},
                "Requests admitted, response not yet staged"),
      reg.histogram("seqge_net_frame_decode_us",
                    obs::default_latency_buckets_us(), {},
                    "Wire frame decode time (microseconds)"),
      reg.histogram("seqge_net_request_us",
                    obs::default_latency_buckets_us(), {},
                    "Wire request latency, decode to response encode "
                    "(microseconds)"),
  };
  return m;
}

constexpr std::size_t kReadChunk = 16 * 1024;

}  // namespace

/// Per-connection state, owned by the event-loop thread.
struct Server::Conn {
  Conn(Fd f, std::uint64_t id_, double rate, double burst)
      : fd(std::move(f)), id(id_), bucket(rate, burst),
        last_active(std::chrono::steady_clock::now()) {}

  Fd fd;
  std::uint64_t id;
  std::vector<std::uint8_t> in;
  std::vector<std::uint8_t> out;
  std::size_t out_off = 0;
  TokenBucket bucket;
  std::chrono::steady_clock::time_point last_active;
  /// Framing is no longer trustworthy (oversized length): answer, then
  /// close once the error frame flushed.
  bool close_after_flush = false;
};

/// One wire top-k request waiting inside a coalesced engine batch.
struct Server::PendingTopK {
  std::uint64_t conn_id = 0;
  std::uint64_t wire_id = 0;
  NodeId node = 0;
  std::chrono::steady_clock::time_point t0{};
};

/// Work handed from the event loop to a responder: the engine future
/// plus everything needed to encode and route the response(s).
struct Server::Completion {
  enum class Kind { kScore, kTopKBatch, kScoreBatch, kCoalescedTopK };
  Kind kind = Kind::kScore;
  std::uint64_t conn_id = 0;
  std::uint64_t wire_id = 0;
  std::chrono::steady_clock::time_point t0{};
  std::future<serve::ScoreResult> score_fut;
  std::future<serve::TopKBatchResult> topk_fut;
  std::future<serve::ScoreBatchResult> score_batch_fut;
  std::vector<PendingTopK> members;  ///< kCoalescedTopK only
};

Server::Server(serve::EmbeddingServer& engine, NetServerConfig cfg)
    : engine_(engine), cfg_(std::move(cfg)) {
  if (cfg_.workers == 0) cfg_.workers = 1;
  if (cfg_.coalesce_max == 0) cfg_.coalesce_max = 1;
  completions_ = std::make_unique<BoundedQueue<Completion>>(
      cfg_.completion_capacity == 0 ? 1 : cfg_.completion_capacity);
}

Server::~Server() { stop(); }

void Server::start() {
  if (running_.load(std::memory_order_acquire)) return;
  // A previous stop() closed the completion queue; restartable servers
  // need a fresh one.
  completions_ = std::make_unique<BoundedQueue<Completion>>(
      cfg_.completion_capacity == 0 ? 1 : cfg_.completion_capacity);
  listen_fd_ = listen_tcp(cfg_.bind_addr, cfg_.port);
  set_nonblocking(listen_fd_);
  port_ = bound_port(listen_fd_);

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    throw std::system_error(errno, std::generic_category(), "net: pipe");
  }
  wake_r_ = Fd(pipe_fds[0]);
  wake_w_ = Fd(pipe_fds[1]);
  set_nonblocking(wake_r_);
  set_nonblocking(wake_w_);

  draining_.store(false, std::memory_order_release);
  stop_loop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);

  responders_.reserve(cfg_.workers);
  for (std::size_t i = 0; i < cfg_.workers; ++i) {
    responders_.emplace_back([this] { responder_loop(); });
  }
  loop_ = std::thread([this] { run_loop(); });
  SEQGE_LOG_INFO << "net: listening on " << cfg_.bind_addr << ":" << port_
                 << " (" << cfg_.workers << " responders, engine queue cap "
                 << engine_.queue_capacity() << ")";
}

std::size_t Server::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return 0;

  // Phase 1: stop admitting. The loop keeps running so in-flight
  // responses still reach their sockets; new requests get
  // SHUTTING_DOWN and accept() is parked.
  draining_.store(true, std::memory_order_release);
  wake();
  const auto deadline =
      std::chrono::steady_clock::now() + cfg_.drain_timeout;
  std::size_t left = 0;
  for (;;) {
    left = static_cast<std::size_t>(
        std::max<std::int64_t>(0, inflight_.load(std::memory_order_acquire)));
    if (left == 0 && quiescent_.load(std::memory_order_acquire)) break;
    if (std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  // Phase 2: tear down. Responders may still be blocked in
  // future.get(); the engine (not drained here — it belongs to the
  // caller) fulfills those promises, the staged bytes are dropped.
  completions_->close();
  stop_loop_.store(true, std::memory_order_release);
  wake();
  if (loop_.joinable()) loop_.join();
  for (auto& th : responders_) {
    if (th.joinable()) th.join();
  }
  responders_.clear();
  listen_fd_.reset();
  wake_r_.reset();
  wake_w_.reset();
  if (left != 0) {
    SEQGE_LOG_WARN << "net: drain timeout expired with " << left
                   << " responses in flight";
  }
  return left;
}

void Server::wake() noexcept {
  if (!wake_w_.valid()) return;
  const char b = 1;
  // Non-blocking; a full pipe already guarantees a pending wake-up.
  (void)::write(wake_w_.get(), &b, 1);
}

void Server::stage(std::uint64_t conn_id, std::vector<std::uint8_t>&& bytes) {
  {
    std::lock_guard lock(outbox_mu_);
    outbox_.emplace_back(conn_id, std::move(bytes));
  }
  quiescent_.store(false, std::memory_order_release);
  wake();
}

ServerStats Server::snapshot_stats() const {
  ServerStats s;
  s.snapshot_version = engine_.store_version();
  s.queries_served = engine_.queries_served();
  s.engine_rebuilds = engine_.engine_rebuilds();
  s.queue_depth = engine_.queue_depth();
  s.queue_capacity = engine_.queue_capacity();
  s.open_connections = open_conns_.load(std::memory_order_relaxed);
  s.connections_total = conns_total_.load(std::memory_order_relaxed);
  s.requests_total = requests_.load(std::memory_order_relaxed);
  s.rejected_overload = rej_overload_.load(std::memory_order_relaxed);
  s.rejected_ratelimit = rej_ratelimit_.load(std::memory_order_relaxed);
  s.bad_frames = bad_frames_.load(std::memory_order_relaxed);
  return s;
}

void Server::send_now(Conn& conn, const std::vector<std::uint8_t>& bytes) {
  conn.out.insert(conn.out.end(), bytes.begin(), bytes.end());
  flush_out(conn);
}

bool Server::flush_out(Conn& conn) {
  while (conn.out_off < conn.out.size()) {
    const ssize_t n =
        ::send(conn.fd.get(), conn.out.data() + conn.out_off,
               conn.out.size() - conn.out_off, MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_off += static_cast<std::size_t>(n);
      net_metrics().bytes_out->add(static_cast<std::uint64_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    if (n < 0 && errno == EINTR) continue;
    return false;  // peer gone
  }
  conn.out.clear();
  conn.out_off = 0;
  return true;
}

void Server::close_conn(std::uint64_t conn_id) {
  if (conns_.erase(conn_id) > 0) {
    open_conns_.fetch_sub(1, std::memory_order_relaxed);
    net_metrics().open_conns->sub();
  }
}

void Server::dispatch(Conn& conn, Request&& req,
                      std::chrono::steady_clock::time_point t0) {
  auto& m = net_metrics();
  std::vector<std::uint8_t> reply;

  // Admission, cheapest check first. Stats and ping bypass admission:
  // they are the probes an operator uses *while* the server sheds.
  if (req.type == MsgType::kPing) {
    encode_ping_response(reply, req.id);
    send_now(conn, reply);
    return;
  }
  if (req.type == MsgType::kStats) {
    encode_stats_response(reply, req.id, snapshot_stats());
    send_now(conn, reply);
    return;
  }
  if (draining_.load(std::memory_order_acquire)) {
    encode_error_response(reply, req.type, req.id, Status::kShuttingDown);
    send_now(conn, reply);
    return;
  }
  if (!conn.bucket.take(t0)) {
    rej_ratelimit_.fetch_add(1, std::memory_order_relaxed);
    m.rej_ratelimit->add();
    encode_error_response(reply, req.type, req.id, Status::kRateLimited);
    send_now(conn, reply);
    return;
  }
  if (engine_.store_version() == 0) {
    encode_error_response(reply, req.type, req.id, Status::kNotReady);
    send_now(conn, reply);
    return;
  }

  requests_.fetch_add(1, std::memory_order_relaxed);
  m.requests->add();

  const auto shed = [&] {
    rej_overload_.fetch_add(1, std::memory_order_relaxed);
    m.rej_overload->add();
    std::vector<std::uint8_t> err;
    encode_error_response(err, req.type, req.id, Status::kOverloaded);
    send_now(conn, err);
  };
  const auto enqueue = [&](Completion&& c) {
    inflight_.fetch_add(1, std::memory_order_acq_rel);
    m.inflight->add();
    if (!completions_->try_push(std::move(c))) {
      inflight_.fetch_sub(1, std::memory_order_acq_rel);
      m.inflight->sub();
      shed();
    }
  };

  switch (req.type) {
    case MsgType::kTopK:
      // Deferred: coalesced with this sweep's other single top-ks into
      // one engine batch call (flush_coalesced).
      pending_topk_[req.k].push_back(
          PendingTopK{conn.id, req.id, req.u, t0});
      if (pending_topk_[req.k].size() >= cfg_.coalesce_max) {
        flush_coalesced();
      }
      break;
    case MsgType::kScore: {
      auto fut = engine_.try_score(req.u, req.v, req.kind);
      if (!fut) {
        shed();
        break;
      }
      Completion c;
      c.kind = Completion::Kind::kScore;
      c.conn_id = conn.id;
      c.wire_id = req.id;
      c.t0 = t0;
      c.score_fut = std::move(*fut);
      enqueue(std::move(c));
      break;
    }
    case MsgType::kTopKBatch: {
      auto fut = engine_.try_topk_batch(std::move(req.nodes), req.k);
      if (!fut) {
        shed();
        break;
      }
      Completion c;
      c.kind = Completion::Kind::kTopKBatch;
      c.conn_id = conn.id;
      c.wire_id = req.id;
      c.t0 = t0;
      c.topk_fut = std::move(*fut);
      enqueue(std::move(c));
      break;
    }
    case MsgType::kScoreBatch: {
      auto fut = engine_.try_score_batch(std::move(req.pairs), req.kind);
      if (!fut) {
        shed();
        break;
      }
      Completion c;
      c.kind = Completion::Kind::kScoreBatch;
      c.conn_id = conn.id;
      c.wire_id = req.id;
      c.t0 = t0;
      c.score_batch_fut = std::move(*fut);
      enqueue(std::move(c));
      break;
    }
    case MsgType::kStats:
    case MsgType::kPing:
      break;  // handled above
  }
}

void Server::flush_coalesced() {
  auto& m = net_metrics();
  for (auto& [k, members] : pending_topk_) {
    if (members.empty()) continue;
    std::vector<NodeId> nodes;
    nodes.reserve(members.size());
    for (const auto& p : members) nodes.push_back(p.node);

    auto fut = engine_.try_topk_batch(std::move(nodes), k);
    if (!fut) {
      for (const auto& p : members) {
        rej_overload_.fetch_add(1, std::memory_order_relaxed);
        m.rej_overload->add();
        auto it = conns_.find(p.conn_id);
        if (it == conns_.end()) continue;
        std::vector<std::uint8_t> err;
        encode_error_response(err, MsgType::kTopK, p.wire_id,
                              Status::kOverloaded);
        send_now(*it->second, err);
      }
      members.clear();
      continue;
    }
    if (members.size() > 1) {
      m.coalesced_batches->add();
      m.coalesced_requests->add(members.size());
    }
    Completion c;
    c.kind = Completion::Kind::kCoalescedTopK;
    c.t0 = members.front().t0;
    c.topk_fut = std::move(*fut);
    c.members = std::move(members);
    members.clear();

    inflight_.fetch_add(1, std::memory_order_acq_rel);
    m.inflight->add();
    if (!completions_->try_push(std::move(c))) {
      // Completion queue saturated: shed the whole group. try_push
      // rejects without consuming, so c (and its member list) is still
      // intact; the abandoned engine future is fulfilled then dropped —
      // wasted work bounded by the completion-queue capacity.
      inflight_.fetch_sub(1, std::memory_order_acq_rel);
      m.inflight->sub();
      for (const auto& p : c.members) {
        rej_overload_.fetch_add(1, std::memory_order_relaxed);
        m.rej_overload->add();
        auto it = conns_.find(p.conn_id);
        if (it == conns_.end()) continue;
        std::vector<std::uint8_t> err;
        encode_error_response(err, MsgType::kTopK, p.wire_id,
                              Status::kOverloaded);
        send_now(*it->second, err);
      }
    }
  }
  pending_topk_.clear();
}

void Server::process_frames(Conn& conn) {
  auto& m = net_metrics();
  std::size_t off = 0;
  for (;;) {
    const std::span<const std::uint8_t> avail(conn.in.data() + off,
                                              conn.in.size() - off);
    bool too_large = false;
    const std::size_t fsize =
        frame_size(avail, cfg_.max_frame_bytes, &too_large);
    if (too_large) {
      bad_frames_.fetch_add(1, std::memory_order_relaxed);
      m.bad_frames->add();
      // Echo type/id if the header happens to be readable; the stream
      // is out of trust either way, so close after the error flushes.
      FrameHeader hdr;
      MsgType t = MsgType::kPing;
      std::uint64_t id = 0;
      if (avail.size() >= kLenBytes + kHeaderBytes &&
          decode_header(avail.subspan(kLenBytes), hdr)) {
        id = hdr.id;
        const std::uint8_t base = hdr.type & ~kResponseBit;
        if (base >= 1 && base <= 6) t = static_cast<MsgType>(base);
      }
      std::vector<std::uint8_t> err;
      encode_error_response(err, t, id, Status::kFrameTooLarge);
      send_now(conn, err);
      conn.close_after_flush = true;
      conn.in.clear();
      return;
    }
    if (fsize == 0) break;  // need more bytes

    const auto body = avail.subspan(kLenBytes, fsize - kLenBytes);
    const auto t0 = std::chrono::steady_clock::now();
    Request req;
    const Status st = decode_request(body, req);
    m.decode_us->observe(
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - t0)
            .count());
    if (st != Status::kOk) {
      bad_frames_.fetch_add(1, std::memory_order_relaxed);
      m.bad_frames->add();
      // Frame boundaries are intact (the length field was honored), so
      // the connection survives a malformed or version-mismatched
      // request.
      FrameHeader hdr;
      MsgType t = MsgType::kPing;
      if (decode_header(body, hdr)) {
        const std::uint8_t base = hdr.type & ~kResponseBit;
        if (base >= 1 && base <= 6) t = static_cast<MsgType>(base);
      }
      std::vector<std::uint8_t> err;
      encode_error_response(err, t, req.id, st);
      send_now(conn, err);
    } else {
      dispatch(conn, std::move(req), t0);
    }
    off += fsize;
  }
  if (off > 0) conn.in.erase(conn.in.begin(),
                             conn.in.begin() + static_cast<std::ptrdiff_t>(off));
}

void Server::run_loop() {
  auto& m = net_metrics();
  std::vector<pollfd> pfds;
  std::vector<std::uint64_t> pfd_conn;  // conn id per pollfd (0 = control)
  auto last_idle_sweep = std::chrono::steady_clock::now();

  while (!stop_loop_.load(std::memory_order_acquire)) {
    pfds.clear();
    pfd_conn.clear();
    const bool accepting = !draining_.load(std::memory_order_acquire) &&
                           conns_.size() < cfg_.max_connections;
    if (accepting) {
      pfds.push_back({listen_fd_.get(), POLLIN, 0});
      pfd_conn.push_back(0);
    }
    pfds.push_back({wake_r_.get(), POLLIN, 0});
    pfd_conn.push_back(0);
    for (const auto& [id, conn] : conns_) {
      short ev = POLLIN;
      if (conn->out_off < conn->out.size()) ev |= POLLOUT;
      pfds.push_back({conn->fd.get(), ev, 0});
      pfd_conn.push_back(id);
    }

    (void)::poll(pfds.data(), pfds.size(), 20);

    // Drain the wake pipe and move staged responses into connection
    // write buffers (responses for connections that vanished in the
    // meantime are dropped).
    {
      char buf[256];
      while (::read(wake_r_.get(), buf, sizeof(buf)) > 0) {
      }
      std::vector<std::pair<std::uint64_t, std::vector<std::uint8_t>>> staged;
      {
        std::lock_guard lock(outbox_mu_);
        staged.swap(outbox_);
      }
      for (auto& [conn_id, bytes] : staged) {
        auto it = conns_.find(conn_id);
        if (it == conns_.end()) continue;
        send_now(*it->second, bytes);
      }
    }

    // Accept every pending connection (edge-triggered by loop).
    if (accepting && (pfds[0].revents & POLLIN) != 0) {
      for (;;) {
        const int cfd = ::accept(listen_fd_.get(), nullptr, nullptr);
        if (cfd < 0) break;  // EAGAIN or transient error
        if (conns_.size() >= cfg_.max_connections) {
          ::close(cfd);
          continue;
        }
        Fd fd(cfd);
        set_nodelay(fd);
        try {
          set_nonblocking(fd);
        } catch (const std::system_error&) {
          continue;  // fd closed by Fd dtor
        }
        const std::uint64_t id = next_conn_id_++;
        conns_.emplace(id, std::make_unique<Conn>(
                               std::move(fd), id, cfg_.rate_limit_qps,
                               cfg_.rate_limit_burst));
        conns_total_.fetch_add(1, std::memory_order_relaxed);
        open_conns_.fetch_add(1, std::memory_order_relaxed);
        m.connections->add();
        m.open_conns->add();
      }
    }

    // Read + decode per connection, then flush this sweep's coalesced
    // top-k group in one engine call.
    std::vector<std::uint64_t> dead;
    for (std::size_t i = 0; i < pfds.size(); ++i) {
      const std::uint64_t id = pfd_conn[i];
      if (id == 0) continue;
      auto it = conns_.find(id);
      if (it == conns_.end()) continue;
      Conn& conn = *it->second;
      const short rev = pfds[i].revents;
      if ((rev & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
          (rev & POLLIN) == 0) {
        dead.push_back(id);
        continue;
      }
      if ((rev & POLLIN) != 0) {
        bool closed = false;
        std::uint8_t buf[kReadChunk];
        for (;;) {
          const ssize_t n = ::recv(conn.fd.get(), buf, sizeof(buf), 0);
          if (n > 0) {
            conn.in.insert(conn.in.end(), buf, buf + n);
            m.bytes_in->add(static_cast<std::uint64_t>(n));
            conn.last_active = std::chrono::steady_clock::now();
            if (static_cast<std::size_t>(n) < sizeof(buf)) break;
            continue;
          }
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          if (n < 0 && errno == EINTR) continue;
          closed = true;  // EOF or fatal error
          break;
        }
        if (!conn.close_after_flush) process_frames(conn);
        if (closed) {
          dead.push_back(id);
          continue;
        }
      }
      if ((rev & POLLOUT) != 0 || conn.out_off < conn.out.size()) {
        if (!flush_out(conn)) {
          dead.push_back(id);
          continue;
        }
      }
      if (conn.close_after_flush && conn.out.empty()) dead.push_back(id);
    }
    flush_coalesced();
    for (std::uint64_t id : dead) close_conn(id);

    // Idle sweep, once a second.
    const auto now = std::chrono::steady_clock::now();
    if (cfg_.idle_timeout.count() > 0 &&
        now - last_idle_sweep > std::chrono::seconds(1)) {
      last_idle_sweep = now;
      std::vector<std::uint64_t> idle;
      for (const auto& [id, conn] : conns_) {
        if (now - conn->last_active > cfg_.idle_timeout &&
            conn->out.empty()) {
          idle.push_back(id);
        }
      }
      for (std::uint64_t id : idle) close_conn(id);
    }

    // Quiescence signal for the graceful drain: no staged responses
    // and every write buffer flushed.
    bool quiet = true;
    {
      std::lock_guard lock(outbox_mu_);
      quiet = outbox_.empty();
    }
    if (quiet) {
      for (const auto& [id, conn] : conns_) {
        if (!conn->out.empty()) {
          quiet = false;
          break;
        }
      }
    }
    quiescent_.store(quiet, std::memory_order_release);
  }

  // Loop exit: close every connection.
  std::vector<std::uint64_t> ids;
  ids.reserve(conns_.size());
  for (const auto& [id, conn] : conns_) ids.push_back(id);
  for (std::uint64_t id : ids) close_conn(id);
}

void Server::responder_loop() {
  auto& m = net_metrics();
  for (;;) {
    auto item = completions_->pop();
    if (!item) break;  // closed and drained
    Completion& c = *item;
    const auto done = [&](std::chrono::steady_clock::time_point t0) {
      m.request_us->observe(std::chrono::duration<double, std::micro>(
                                std::chrono::steady_clock::now() - t0)
                                .count());
    };
    switch (c.kind) {
      case Completion::Kind::kScore: {
        std::vector<std::uint8_t> out;
        try {
          const serve::ScoreResult res = c.score_fut.get();
          encode_score_response(out, c.wire_id, res.version, res.score);
        } catch (const std::exception&) {
          encode_error_response(out, MsgType::kScore, c.wire_id,
                                Status::kError);
        }
        done(c.t0);
        stage(c.conn_id, std::move(out));
        break;
      }
      case Completion::Kind::kTopKBatch: {
        std::vector<std::uint8_t> out;
        try {
          const serve::TopKBatchResult res = c.topk_fut.get();
          encode_topk_batch_response(out, c.wire_id, res.version,
                                     res.results);
        } catch (const std::exception&) {
          encode_error_response(out, MsgType::kTopKBatch, c.wire_id,
                                Status::kError);
        }
        done(c.t0);
        stage(c.conn_id, std::move(out));
        break;
      }
      case Completion::Kind::kScoreBatch: {
        std::vector<std::uint8_t> out;
        try {
          const serve::ScoreBatchResult res = c.score_batch_fut.get();
          encode_score_batch_response(out, c.wire_id, res.version,
                                      res.scores);
        } catch (const std::exception&) {
          encode_error_response(out, MsgType::kScoreBatch, c.wire_id,
                                Status::kError);
        }
        done(c.t0);
        stage(c.conn_id, std::move(out));
        break;
      }
      case Completion::Kind::kCoalescedTopK: {
        serve::TopKBatchResult res;
        bool ok = true;
        try {
          res = c.topk_fut.get();
        } catch (const std::exception&) {
          ok = false;
        }
        for (std::size_t i = 0; i < c.members.size(); ++i) {
          const PendingTopK& p = c.members[i];
          std::vector<std::uint8_t> out;
          if (ok && i < res.results.size()) {
            encode_topk_response(out, p.wire_id, res.version,
                                 res.results[i]);
          } else {
            encode_error_response(out, MsgType::kTopK, p.wire_id,
                                  Status::kError);
          }
          done(p.t0);
          stage(p.conn_id, std::move(out));
        }
        break;
      }
    }
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
    m.inflight->sub();
  }
}

}  // namespace seqge::net
