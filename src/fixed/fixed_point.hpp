#pragma once
// Q-format fixed-point arithmetic mirroring the semantics of Xilinx
// `ap_fixed<W, I>` with saturation (AP_SAT) and round-to-nearest-even on
// narrowing (AP_RND_CONV approximated by round-half-away for speed). The
// FPGA functional model (src/fpga/hls_core) computes in this type so the
// accuracy impact of the hardware numerics is reproduced bit-faithfully
// on the host.
//
// Fixed<IntBits, FracBits>:
//   value = raw / 2^FracBits, raw stored in int64_t,
//   representable range = [-2^(IntBits-1), 2^(IntBits-1) - 2^-FracBits].
// IntBits counts the sign bit, matching ap_fixed's I parameter.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <ostream>
#include <type_traits>

namespace seqge::fixed {

namespace detail {
// Saturate a wide intermediate to the [lo, hi] raw range.
constexpr std::int64_t saturate(__int128 v, std::int64_t lo,
                                std::int64_t hi) noexcept {
  if (v < lo) return lo;
  if (v > hi) return hi;
  return static_cast<std::int64_t>(v);
}
}  // namespace detail

template <int IntBits, int FracBits>
class Fixed {
  static_assert(IntBits >= 1, "need at least the sign bit");
  static_assert(FracBits >= 0, "fractional bits must be non-negative");
  static_assert(IntBits + FracBits <= 48,
                "raw must fit int64 with headroom for products");

 public:
  static constexpr int kIntBits = IntBits;
  static constexpr int kFracBits = FracBits;
  static constexpr int kWidth = IntBits + FracBits;
  static constexpr std::int64_t kOne = std::int64_t{1} << FracBits;
  static constexpr std::int64_t kRawMax =
      (std::int64_t{1} << (kWidth - 1)) - 1;
  static constexpr std::int64_t kRawMin = -(std::int64_t{1} << (kWidth - 1));

  constexpr Fixed() noexcept = default;

  /// Construct from a double, rounding to nearest and saturating.
  static constexpr Fixed from_double(double v) noexcept {
    // llround saturates UB-free only in-range; clamp in double first.
    constexpr double hi = static_cast<double>(kRawMax);
    constexpr double lo = static_cast<double>(kRawMin);
    double scaled = v * static_cast<double>(kOne);
    scaled = std::min(hi, std::max(lo, scaled));
    return from_raw(static_cast<std::int64_t>(std::llround(scaled)));
  }

  /// Construct from the raw underlying integer (no scaling applied).
  static constexpr Fixed from_raw(std::int64_t raw) noexcept {
    Fixed f;
    f.raw_ = raw;
    return f;
  }

  [[nodiscard]] constexpr std::int64_t raw() const noexcept { return raw_; }
  [[nodiscard]] constexpr double to_double() const noexcept {
    return static_cast<double>(raw_) / static_cast<double>(kOne);
  }

  [[nodiscard]] static constexpr Fixed max_value() noexcept {
    return from_raw(kRawMax);
  }
  [[nodiscard]] static constexpr Fixed min_value() noexcept {
    return from_raw(kRawMin);
  }
  /// Smallest positive increment (one LSB).
  [[nodiscard]] static constexpr Fixed epsilon() noexcept {
    return from_raw(1);
  }

  // --- saturating arithmetic -------------------------------------------

  friend constexpr Fixed operator+(Fixed a, Fixed b) noexcept {
    return from_raw(detail::saturate(
        static_cast<__int128>(a.raw_) + b.raw_, kRawMin, kRawMax));
  }
  friend constexpr Fixed operator-(Fixed a, Fixed b) noexcept {
    return from_raw(detail::saturate(
        static_cast<__int128>(a.raw_) - b.raw_, kRawMin, kRawMax));
  }
  friend constexpr Fixed operator-(Fixed a) noexcept {
    return from_raw(detail::saturate(-static_cast<__int128>(a.raw_), kRawMin,
                                     kRawMax));
  }

  /// Full-precision product then round-half-away-from-zero back to
  /// FracBits — matches a DSP48 multiply followed by AP_RND truncation.
  friend constexpr Fixed operator*(Fixed a, Fixed b) noexcept {
    __int128 prod = static_cast<__int128>(a.raw_) * b.raw_;
    const __int128 half = __int128{1} << (FracBits - 1);
    prod += (prod >= 0) ? half : -half;
    prod >>= FracBits;
    return from_raw(detail::saturate(prod, kRawMin, kRawMax));
  }

  /// Division via pre-shifted dividend; used only by the scalar
  /// reciprocal in Stage 4 (hpht_inv), never in the inner MAC loops.
  friend constexpr Fixed operator/(Fixed a, Fixed b) noexcept {
    if (b.raw_ == 0) {
      return a.raw_ >= 0 ? max_value() : min_value();
    }
    __int128 num = static_cast<__int128>(a.raw_) << FracBits;
    __int128 q = num / b.raw_;
    return from_raw(detail::saturate(q, kRawMin, kRawMax));
  }

  constexpr Fixed& operator+=(Fixed b) noexcept { return *this = *this + b; }
  constexpr Fixed& operator-=(Fixed b) noexcept { return *this = *this - b; }
  constexpr Fixed& operator*=(Fixed b) noexcept { return *this = *this * b; }

  friend constexpr bool operator==(Fixed a, Fixed b) noexcept {
    return a.raw_ == b.raw_;
  }
  friend constexpr auto operator<=>(Fixed a, Fixed b) noexcept {
    return a.raw_ <=> b.raw_;
  }

  friend std::ostream& operator<<(std::ostream& os, Fixed f) {
    return os << f.to_double();
  }

 private:
  std::int64_t raw_ = 0;
};

/// Fused multiply-accumulate with a wide (non-saturating) accumulator,
/// mirroring an HLS accumulation register wider than the operand type.
/// Use WideAcc for dot products, then narrow once at the end.
template <int IntBits, int FracBits>
class WideAcc {
 public:
  using Value = Fixed<IntBits, FracBits>;

  constexpr void mac(Value a, Value b) noexcept {
    acc_ += static_cast<__int128>(a.raw()) * b.raw();
  }
  constexpr void add(Value a) noexcept {
    acc_ += static_cast<__int128>(a.raw()) << FracBits;
  }
  constexpr void reset() noexcept { acc_ = 0; }

  /// Narrow back to the operand format with rounding + saturation.
  [[nodiscard]] constexpr Value result() const noexcept {
    __int128 v = acc_;
    const __int128 half = __int128{1} << (FracBits - 1);
    v += (v >= 0) ? half : -half;
    v >>= FracBits;
    return Value::from_raw(
        detail::saturate(v, Value::kRawMin, Value::kRawMax));
  }

 private:
  __int128 acc_ = 0;
};

/// The numeric format used by the accelerator core. 8 integer bits
/// (incl. sign) and 24 fractional bits: embeddings and P entries stay in
/// (-128, 128) with ~6e-8 resolution — comfortably covers the dynamic
/// range observed in training while fitting a 32-bit BRAM word.
using CoreFixed = Fixed<8, 24>;
using CoreAcc = WideAcc<8, 24>;

}  // namespace seqge::fixed
