// Scalar reference kernels, the NEON implementation (aarch64 baseline
// ISA, so compile-time selected), and the runtime dispatch table.
// The AVX2 implementation lives in simd_avx2.cpp, compiled with
// -mavx2 -mfma only for that translation unit (see CMakeLists.txt);
// SEQGE_SIMD_HAS_AVX2 is defined by the build system iff that TU is
// part of the library.

#include "linalg/simd.hpp"

#include <cmath>

#if defined(__ARM_NEON) && !defined(SEQGE_DISABLE_SIMD)
#include <arm_neon.h>
#define SEQGE_SIMD_USE_NEON 1
#endif

namespace seqge::simd {

// --- scalar reference --------------------------------------------------------
// These are byte-for-byte the loops linalg/kernels.hpp shipped before
// the dispatch layer existed: single float accumulator for dot, double
// accumulator for l2_norm. The SEQGE_DISABLE_SIMD build resolves every
// dispatched call here, which is what makes that build bit-identical
// to the pre-vectorization library.

namespace scalar {

float dot(const float* x, const float* y, std::size_t n) noexcept {
  float acc = 0.0f;
  for (std::size_t i = 0; i < n; ++i) acc += x[i] * y[i];
  return acc;
}

void axpy(float a, const float* x, float* y, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) y[i] += a * x[i];
}

void scale(float a, float* x, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) x[i] *= a;
}

double l2_norm(const float* x, std::size_t n) noexcept {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += static_cast<double>(x[i]) * static_cast<double>(x[i]);
  }
  return std::sqrt(acc);
}

void dot_batch(const float* rows, std::size_t n, std::size_t dims,
               const float* q, float* scores) noexcept {
  for (std::size_t r = 0; r < n; ++r) {
    scores[r] = dot(rows + r * dims, q, dims);
  }
}

// The training kernels are compositions of the scalar dot/axpy loops
// above, in exactly the sequence the backends used before fusion — the
// fused-vs-unfused model tests rely on that being byte-for-byte true.

void matvec_t(const float* m, std::size_t rows, std::size_t cols,
              const float* v, float* out) noexcept {
  for (std::size_t c = 0; c < cols; ++c) out[c] = 0.0f;
  for (std::size_t r = 0; r < rows; ++r) {
    axpy(v[r], m + r * cols, out, cols);
  }
}

void rank1_update(float* m, std::size_t rows, std::size_t cols, float a,
                  const float* x, const float* y) noexcept {
  for (std::size_t r = 0; r < rows; ++r) {
    axpy(a * x[r], y, m + r * cols, cols);
  }
}

void matvec_both(const float* m, std::size_t n, const float* v,
                 float* out_mv, float* out_mtv) noexcept {
  dot_batch(m, n, n, v, out_mv);
  matvec_t(m, n, n, v, out_mtv);
}

void rank1_matvec(float* m, std::size_t n, float a, const float* x,
                  const float* y, const float* v, float* out) noexcept {
  rank1_update(m, n, n, a, x, y);
  dot_batch(m, n, n, v, out);
}

void dot_batch_gather(const float* const* rows, std::size_t n,
                      std::size_t dims, const float* q,
                      float* scores) noexcept {
  for (std::size_t i = 0; i < n; ++i) scores[i] = dot(rows[i], q, dims);
}

void axpy_gather(float* const* rows, const float* coeffs, const float* x,
                 std::size_t n, std::size_t dims) noexcept {
  for (std::size_t i = 0; i < n; ++i) axpy(coeffs[i], x, rows[i], dims);
}

void sgns_apply(float* h, float* hgrad, float* const* rows, const float* g,
                float neg_lr, std::size_t n, std::size_t dims) noexcept {
  for (std::size_t d = 0; d < dims; ++d) hgrad[d] = 0.0f;
  for (std::size_t i = 0; i < n; ++i) {
    axpy(g[i], rows[i], hgrad, dims);
    axpy(neg_lr * g[i], h, rows[i], dims);
  }
  axpy(neg_lr, hgrad, h, dims);
}

std::int32_t dot_i8(const std::int8_t* x, const std::int8_t* y,
                    std::size_t n) noexcept {
  std::int32_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += static_cast<std::int32_t>(x[i]) * static_cast<std::int32_t>(y[i]);
  }
  return acc;
}

void dot_i8_batch(const std::int8_t* rows, std::size_t n, std::size_t dims,
                  const std::int8_t* q, std::int32_t* out) noexcept {
  for (std::size_t r = 0; r < n; ++r) {
    out[r] = dot_i8(rows + r * dims, q, dims);
  }
}

}  // namespace scalar

// --- NEON --------------------------------------------------------------------

#if defined(SEQGE_SIMD_USE_NEON)
namespace neon {

// Canonical per-row order: one 4-wide accumulator stepped 4 at a time,
// lanes reduced low-to-high, scalar tail. dot_batch below uses the
// same order per row, so row scores match 1-row calls exactly.
float dot(const float* x, const float* y, std::size_t n) noexcept {
  float32x4_t acc = vdupq_n_f32(0.0f);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = vfmaq_f32(acc, vld1q_f32(x + i), vld1q_f32(y + i));
  }
  float sum = (vgetq_lane_f32(acc, 0) + vgetq_lane_f32(acc, 1)) +
              (vgetq_lane_f32(acc, 2) + vgetq_lane_f32(acc, 3));
  // One rounding per tail element (scalar fmadd), matching dot_batch's
  // tails bit-for-bit regardless of compiler contraction choices.
  for (; i < n; ++i) sum = std::fmaf(x[i], y[i], sum);
  return sum;
}

void axpy(float a, const float* x, float* y, std::size_t n) noexcept {
  const float32x4_t av = vdupq_n_f32(a);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(y + i, vfmaq_f32(vld1q_f32(y + i), av, vld1q_f32(x + i)));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

void scale(float a, float* x, std::size_t n) noexcept {
  const float32x4_t av = vdupq_n_f32(a);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(x + i, vmulq_f32(vld1q_f32(x + i), av));
  }
  for (; i < n; ++i) x[i] *= a;
}

double l2_norm(const float* x, std::size_t n) noexcept {
  // Widen each lane pair to double before accumulating — precision
  // parity with the scalar double accumulator.
  float64x2_t acc0 = vdupq_n_f64(0.0);
  float64x2_t acc1 = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4_t v = vld1q_f32(x + i);
    const float64x2_t lo = vcvt_f64_f32(vget_low_f32(v));
    const float64x2_t hi = vcvt_f64_f32(vget_high_f32(v));
    acc0 = vfmaq_f64(acc0, lo, lo);
    acc1 = vfmaq_f64(acc1, hi, hi);
  }
  double sum = vgetq_lane_f64(acc0, 0) + vgetq_lane_f64(acc0, 1) +
               vgetq_lane_f64(acc1, 0) + vgetq_lane_f64(acc1, 1);
  for (; i < n; ++i) {
    sum += static_cast<double>(x[i]) * static_cast<double>(x[i]);
  }
  return std::sqrt(sum);
}

void dot_batch(const float* rows, std::size_t n, std::size_t dims,
               const float* q, float* scores) noexcept {
  std::size_t r = 0;
  // Four rows share each load of q; each row keeps its own accumulator
  // in the canonical per-row order.
  for (; r + 4 <= n; r += 4) {
    const float* r0 = rows + (r + 0) * dims;
    const float* r1 = rows + (r + 1) * dims;
    const float* r2 = rows + (r + 2) * dims;
    const float* r3 = rows + (r + 3) * dims;
    float32x4_t a0 = vdupq_n_f32(0.0f), a1 = a0, a2 = a0, a3 = a0;
    std::size_t i = 0;
    for (; i + 4 <= dims; i += 4) {
      const float32x4_t qv = vld1q_f32(q + i);
      a0 = vfmaq_f32(a0, vld1q_f32(r0 + i), qv);
      a1 = vfmaq_f32(a1, vld1q_f32(r1 + i), qv);
      a2 = vfmaq_f32(a2, vld1q_f32(r2 + i), qv);
      a3 = vfmaq_f32(a3, vld1q_f32(r3 + i), qv);
    }
    float s0 = (vgetq_lane_f32(a0, 0) + vgetq_lane_f32(a0, 1)) +
               (vgetq_lane_f32(a0, 2) + vgetq_lane_f32(a0, 3));
    float s1 = (vgetq_lane_f32(a1, 0) + vgetq_lane_f32(a1, 1)) +
               (vgetq_lane_f32(a1, 2) + vgetq_lane_f32(a1, 3));
    float s2 = (vgetq_lane_f32(a2, 0) + vgetq_lane_f32(a2, 1)) +
               (vgetq_lane_f32(a2, 2) + vgetq_lane_f32(a2, 3));
    float s3 = (vgetq_lane_f32(a3, 0) + vgetq_lane_f32(a3, 1)) +
               (vgetq_lane_f32(a3, 2) + vgetq_lane_f32(a3, 3));
    for (; i < dims; ++i) {
      s0 = std::fmaf(r0[i], q[i], s0);
      s1 = std::fmaf(r1[i], q[i], s1);
      s2 = std::fmaf(r2[i], q[i], s2);
      s3 = std::fmaf(r3[i], q[i], s3);
    }
    scores[r + 0] = s0;
    scores[r + 1] = s1;
    scores[r + 2] = s2;
    scores[r + 3] = s3;
  }
  for (; r < n; ++r) scores[r] = dot(rows + r * dims, q, dims);
}

void matvec_t(const float* m, std::size_t rows, std::size_t cols,
              const float* v, float* out) noexcept {
  // Zero-then-accumulate, rows in ascending order: the same per-element
  // FMA chain as calling axpy(v[r], row r, out) row by row (which is
  // exactly what this loop does — the calls inline in this TU).
  for (std::size_t c = 0; c < cols; ++c) out[c] = 0.0f;
  for (std::size_t r = 0; r < rows; ++r) {
    axpy(v[r], m + r * cols, out, cols);
  }
}

void rank1_update(float* m, std::size_t rows, std::size_t cols, float a,
                  const float* x, const float* y) noexcept {
  for (std::size_t r = 0; r < rows; ++r) {
    axpy(a * x[r], y, m + r * cols, cols);
  }
}

// The fused square-matrix pairs stay compositions on NEON: the calls
// inline in this TU, so fusing further would only re-derive the same
// chains. (The AVX2 TU fuses them for real — one pass over m.)
void matvec_both(const float* m, std::size_t n, const float* v,
                 float* out_mv, float* out_mtv) noexcept {
  dot_batch(m, n, n, v, out_mv);
  matvec_t(m, n, n, v, out_mtv);
}

void rank1_matvec(float* m, std::size_t n, float a, const float* x,
                  const float* y, const float* v, float* out) noexcept {
  rank1_update(m, n, n, a, x, y);
  dot_batch(m, n, n, v, out);
}

void dot_batch_gather(const float* const* rows, std::size_t n,
                      std::size_t dims, const float* q,
                      float* scores) noexcept {
  // Same 4-rows-share-q blocking as dot_batch, per-row canonical order.
  std::size_t r = 0;
  for (; r + 4 <= n; r += 4) {
    const float* r0 = rows[r + 0];
    const float* r1 = rows[r + 1];
    const float* r2 = rows[r + 2];
    const float* r3 = rows[r + 3];
    float32x4_t a0 = vdupq_n_f32(0.0f), a1 = a0, a2 = a0, a3 = a0;
    std::size_t i = 0;
    for (; i + 4 <= dims; i += 4) {
      const float32x4_t qv = vld1q_f32(q + i);
      a0 = vfmaq_f32(a0, vld1q_f32(r0 + i), qv);
      a1 = vfmaq_f32(a1, vld1q_f32(r1 + i), qv);
      a2 = vfmaq_f32(a2, vld1q_f32(r2 + i), qv);
      a3 = vfmaq_f32(a3, vld1q_f32(r3 + i), qv);
    }
    float s0 = (vgetq_lane_f32(a0, 0) + vgetq_lane_f32(a0, 1)) +
               (vgetq_lane_f32(a0, 2) + vgetq_lane_f32(a0, 3));
    float s1 = (vgetq_lane_f32(a1, 0) + vgetq_lane_f32(a1, 1)) +
               (vgetq_lane_f32(a1, 2) + vgetq_lane_f32(a1, 3));
    float s2 = (vgetq_lane_f32(a2, 0) + vgetq_lane_f32(a2, 1)) +
               (vgetq_lane_f32(a2, 2) + vgetq_lane_f32(a2, 3));
    float s3 = (vgetq_lane_f32(a3, 0) + vgetq_lane_f32(a3, 1)) +
               (vgetq_lane_f32(a3, 2) + vgetq_lane_f32(a3, 3));
    for (; i < dims; ++i) {
      s0 = std::fmaf(r0[i], q[i], s0);
      s1 = std::fmaf(r1[i], q[i], s1);
      s2 = std::fmaf(r2[i], q[i], s2);
      s3 = std::fmaf(r3[i], q[i], s3);
    }
    scores[r + 0] = s0;
    scores[r + 1] = s1;
    scores[r + 2] = s2;
    scores[r + 3] = s3;
  }
  for (; r < n; ++r) scores[r] = dot(rows[r], q, dims);
}

void axpy_gather(float* const* rows, const float* coeffs, const float* x,
                 std::size_t n, std::size_t dims) noexcept {
  for (std::size_t i = 0; i < n; ++i) axpy(coeffs[i], x, rows[i], dims);
}

void sgns_apply(float* h, float* hgrad, float* const* rows, const float* g,
                float neg_lr, std::size_t n, std::size_t dims) noexcept {
  for (std::size_t d = 0; d < dims; ++d) hgrad[d] = 0.0f;
  for (std::size_t i = 0; i < n; ++i) {
    axpy(g[i], rows[i], hgrad, dims);
    axpy(neg_lr * g[i], h, rows[i], dims);
  }
  axpy(neg_lr, hgrad, h, dims);
}

std::int32_t dot_i8(const std::int8_t* x, const std::int8_t* y,
                    std::size_t n) noexcept {
  int32x4_t acc = vdupq_n_s32(0);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const int16x8_t xv = vmovl_s8(vld1_s8(x + i));
    const int16x8_t yv = vmovl_s8(vld1_s8(y + i));
    acc = vmlal_s16(acc, vget_low_s16(xv), vget_low_s16(yv));
    acc = vmlal_s16(acc, vget_high_s16(xv), vget_high_s16(yv));
  }
  std::int32_t sum = vaddvq_s32(acc);
  for (; i < n; ++i) {
    sum += static_cast<std::int32_t>(x[i]) * static_cast<std::int32_t>(y[i]);
  }
  return sum;
}

void dot_i8_batch(const std::int8_t* rows, std::size_t n, std::size_t dims,
                  const std::int8_t* q, std::int32_t* out) noexcept {
  for (std::size_t r = 0; r < n; ++r) {
    out[r] = dot_i8(rows + r * dims, q, dims);
  }
}

}  // namespace neon
#endif  // SEQGE_SIMD_USE_NEON

// --- AVX2 (separate TU; declarations only) -----------------------------------

#if defined(SEQGE_SIMD_HAS_AVX2)
namespace avx2 {
bool supported() noexcept;
float dot(const float* x, const float* y, std::size_t n) noexcept;
void axpy(float a, const float* x, float* y, std::size_t n) noexcept;
void scale(float a, float* x, std::size_t n) noexcept;
double l2_norm(const float* x, std::size_t n) noexcept;
void dot_batch(const float* rows, std::size_t n, std::size_t dims,
               const float* q, float* scores) noexcept;
void matvec_t(const float* m, std::size_t rows, std::size_t cols,
              const float* v, float* out) noexcept;
void rank1_update(float* m, std::size_t rows, std::size_t cols, float a,
                  const float* x, const float* y) noexcept;
void matvec_both(const float* m, std::size_t n, const float* v,
                 float* out_mv, float* out_mtv) noexcept;
void rank1_matvec(float* m, std::size_t n, float a, const float* x,
                  const float* y, const float* v, float* out) noexcept;
void dot_batch_gather(const float* const* rows, std::size_t n,
                      std::size_t dims, const float* q,
                      float* scores) noexcept;
void axpy_gather(float* const* rows, const float* coeffs, const float* x,
                 std::size_t n, std::size_t dims) noexcept;
void sgns_apply(float* h, float* hgrad, float* const* rows, const float* g,
                float neg_lr, std::size_t n, std::size_t dims) noexcept;
std::int32_t dot_i8(const std::int8_t* x, const std::int8_t* y,
                    std::size_t n) noexcept;
void dot_i8_batch(const std::int8_t* rows, std::size_t n, std::size_t dims,
                  const std::int8_t* q, std::int32_t* out) noexcept;
}  // namespace avx2
#endif

// --- dispatch ----------------------------------------------------------------

namespace {

struct Table {
  Isa isa = Isa::kScalar;
  const char* name = "scalar";
  float (*dot)(const float*, const float*, std::size_t) noexcept =
      scalar::dot;
  void (*axpy)(float, const float*, float*, std::size_t) noexcept =
      scalar::axpy;
  void (*scale)(float, float*, std::size_t) noexcept = scalar::scale;
  double (*l2_norm)(const float*, std::size_t) noexcept = scalar::l2_norm;
  void (*dot_batch)(const float*, std::size_t, std::size_t, const float*,
                    float*) noexcept = scalar::dot_batch;
  void (*matvec_t)(const float*, std::size_t, std::size_t, const float*,
                   float*) noexcept = scalar::matvec_t;
  void (*rank1_update)(float*, std::size_t, std::size_t, float, const float*,
                       const float*) noexcept = scalar::rank1_update;
  void (*matvec_both)(const float*, std::size_t, const float*, float*,
                      float*) noexcept = scalar::matvec_both;
  void (*rank1_matvec)(float*, std::size_t, float, const float*, const float*,
                       const float*, float*) noexcept = scalar::rank1_matvec;
  void (*dot_batch_gather)(const float* const*, std::size_t, std::size_t,
                           const float*, float*) noexcept =
      scalar::dot_batch_gather;
  void (*axpy_gather)(float* const*, const float*, const float*, std::size_t,
                      std::size_t) noexcept = scalar::axpy_gather;
  void (*sgns_apply)(float*, float*, float* const*, const float*, float,
                     std::size_t, std::size_t) noexcept = scalar::sgns_apply;
  std::int32_t (*dot_i8)(const std::int8_t*, const std::int8_t*,
                         std::size_t) noexcept = scalar::dot_i8;
  void (*dot_i8_batch)(const std::int8_t*, std::size_t, std::size_t,
                       const std::int8_t*, std::int32_t*) noexcept =
      scalar::dot_i8_batch;
};

Table select() noexcept {
  Table t;  // scalar defaults
#if defined(SEQGE_SIMD_HAS_AVX2)
  if (avx2::supported()) {
    t.isa = Isa::kAvx2;
    t.name = "avx2";
    t.dot = avx2::dot;
    t.axpy = avx2::axpy;
    t.scale = avx2::scale;
    t.l2_norm = avx2::l2_norm;
    t.dot_batch = avx2::dot_batch;
    t.matvec_t = avx2::matvec_t;
    t.rank1_update = avx2::rank1_update;
    t.matvec_both = avx2::matvec_both;
    t.rank1_matvec = avx2::rank1_matvec;
    t.dot_batch_gather = avx2::dot_batch_gather;
    t.axpy_gather = avx2::axpy_gather;
    t.sgns_apply = avx2::sgns_apply;
    t.dot_i8 = avx2::dot_i8;
    t.dot_i8_batch = avx2::dot_i8_batch;
    return t;
  }
#endif
#if defined(SEQGE_SIMD_USE_NEON)
  t.isa = Isa::kNeon;
  t.name = "neon";
  t.dot = neon::dot;
  t.axpy = neon::axpy;
  t.scale = neon::scale;
  t.l2_norm = neon::l2_norm;
  t.dot_batch = neon::dot_batch;
  t.matvec_t = neon::matvec_t;
  t.rank1_update = neon::rank1_update;
  t.matvec_both = neon::matvec_both;
  t.rank1_matvec = neon::rank1_matvec;
  t.dot_batch_gather = neon::dot_batch_gather;
  t.axpy_gather = neon::axpy_gather;
  t.sgns_apply = neon::sgns_apply;
  t.dot_i8 = neon::dot_i8;
  t.dot_i8_batch = neon::dot_i8_batch;
#endif
  return t;
}

const Table& table() noexcept {
  // Resolved once; constant for the process lifetime (determinism per
  // ISA). Thread-safe per C++11 static initialization.
  static const Table t = select();
  return t;
}

}  // namespace

Isa active_isa() noexcept { return table().isa; }
const char* isa_name() noexcept { return table().name; }

float dot(const float* x, const float* y, std::size_t n) noexcept {
  return table().dot(x, y, n);
}
void axpy(float a, const float* x, float* y, std::size_t n) noexcept {
  table().axpy(a, x, y, n);
}
void scale(float a, float* x, std::size_t n) noexcept {
  table().scale(a, x, n);
}
double l2_norm(const float* x, std::size_t n) noexcept {
  return table().l2_norm(x, n);
}
void dot_batch(const float* rows, std::size_t n, std::size_t dims,
               const float* q, float* scores) noexcept {
  table().dot_batch(rows, n, dims, q, scores);
}
void matvec_t(const float* m, std::size_t rows, std::size_t cols,
              const float* v, float* out) noexcept {
  table().matvec_t(m, rows, cols, v, out);
}
void rank1_update(float* m, std::size_t rows, std::size_t cols, float a,
                  const float* x, const float* y) noexcept {
  table().rank1_update(m, rows, cols, a, x, y);
}
void matvec_both(const float* m, std::size_t n, const float* v,
                 float* out_mv, float* out_mtv) noexcept {
  table().matvec_both(m, n, v, out_mv, out_mtv);
}
void rank1_matvec(float* m, std::size_t n, float a, const float* x,
                  const float* y, const float* v, float* out) noexcept {
  table().rank1_matvec(m, n, a, x, y, v, out);
}
void dot_batch_gather(const float* const* rows, std::size_t n,
                      std::size_t dims, const float* q,
                      float* scores) noexcept {
  table().dot_batch_gather(rows, n, dims, q, scores);
}
void axpy_gather(float* const* rows, const float* coeffs, const float* x,
                 std::size_t n, std::size_t dims) noexcept {
  table().axpy_gather(rows, coeffs, x, n, dims);
}
void sgns_apply(float* h, float* hgrad, float* const* rows, const float* g,
                float neg_lr, std::size_t n, std::size_t dims) noexcept {
  table().sgns_apply(h, hgrad, rows, g, neg_lr, n, dims);
}
std::int32_t dot_i8(const std::int8_t* x, const std::int8_t* y,
                    std::size_t n) noexcept {
  return table().dot_i8(x, y, n);
}
void dot_i8_batch(const std::int8_t* rows, std::size_t n, std::size_t dims,
                  const std::int8_t* q, std::int32_t* out) noexcept {
  table().dot_i8_batch(rows, n, dims, q, out);
}

}  // namespace seqge::simd
