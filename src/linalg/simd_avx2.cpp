// AVX2+FMA kernels. This TU (and only this TU) is compiled with
// -mavx2 -mfma on x86-64 builds; everything here is self-guarded with
// __AVX2__ so the file compiles to nothing if the flags are absent.
// Selection happens at runtime in simd.cpp via avx2::supported(), so
// the binary still runs on pre-AVX2 machines.
//
// Accumulation-order contract (see simd.hpp): dot uses ONE 8-wide
// accumulator stepped 8 floats at a time, a fixed-order horizontal
// reduction, and a scalar tail; dot_batch applies exactly that order
// to each row, whatever its cross-row blocking. l2_norm widens every
// lane to double before accumulating, matching the scalar baseline's
// double accumulator precision.

#include "linalg/simd.hpp"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <cmath>

namespace seqge::simd::avx2 {

namespace {

// Fixed-order horizontal sum: (lo128 + hi128), then pairwise within
// the 128-bit half — same tree for every call site so row scores are
// reproducible.
inline float hsum256(__m256 v) noexcept {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);            // [a0+a4, a1+a5, a2+a6, a3+a7]
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));   // [a0+a4+a2+a6, a1+a5+a3+a7, ..]
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x55));
  return _mm_cvtss_f32(s);
}

inline double hsum256d(__m256d v) noexcept {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  __m128d s = _mm_add_pd(lo, hi);
  s = _mm_add_sd(s, _mm_unpackhi_pd(s, s));
  return _mm_cvtsd_f64(s);
}

}  // namespace

bool supported() noexcept {
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
}

float dot(const float* x, const float* y, std::size_t n) noexcept {
  __m256 acc = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm256_fmadd_ps(_mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i), acc);
  }
  float sum = hsum256(acc);
  // std::fmaf pins the tail to one rounding per element (a single
  // vfmadd), so dot_batch's tails below are bit-identical to this one
  // no matter how the compiler contracts or SLP-vectorizes either loop.
  for (; i < n; ++i) sum = std::fmaf(x[i], y[i], sum);
  return sum;
}

void axpy(float a, const float* x, float* y, std::size_t n) noexcept {
  const __m256 av = _mm256_set1_ps(a);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 r =
        _mm256_fmadd_ps(av, _mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i));
    _mm256_storeu_ps(y + i, r);
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

void scale(float a, float* x, std::size_t n) noexcept {
  const __m256 av = _mm256_set1_ps(a);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(x + i, _mm256_mul_ps(_mm256_loadu_ps(x + i), av));
  }
  for (; i < n; ++i) x[i] *= a;
}

double l2_norm(const float* x, std::size_t n) noexcept {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(x + i);
    const __m256d lo = _mm256_cvtps_pd(_mm256_castps256_ps128(v));
    const __m256d hi = _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1));
    acc0 = _mm256_fmadd_pd(lo, lo, acc0);
    acc1 = _mm256_fmadd_pd(hi, hi, acc1);
  }
  double sum = hsum256d(acc0) + hsum256d(acc1);
  for (; i < n; ++i) {
    sum += static_cast<double>(x[i]) * static_cast<double>(x[i]);
  }
  return std::sqrt(sum);
}

void dot_batch(const float* rows, std::size_t n, std::size_t dims,
               const float* q, float* scores) noexcept {
  std::size_t r = 0;
  // Four rows per pass share each load of q. Each row keeps its own
  // single 8-wide accumulator and its own scalar tail — the canonical
  // per-row order — so scores match 1-row dot() calls exactly.
  for (; r + 4 <= n; r += 4) {
    const float* r0 = rows + (r + 0) * dims;
    const float* r1 = rows + (r + 1) * dims;
    const float* r2 = rows + (r + 2) * dims;
    const float* r3 = rows + (r + 3) * dims;
    __m256 a0 = _mm256_setzero_ps();
    __m256 a1 = _mm256_setzero_ps();
    __m256 a2 = _mm256_setzero_ps();
    __m256 a3 = _mm256_setzero_ps();
    std::size_t i = 0;
    for (; i + 8 <= dims; i += 8) {
      const __m256 qv = _mm256_loadu_ps(q + i);
      a0 = _mm256_fmadd_ps(_mm256_loadu_ps(r0 + i), qv, a0);
      a1 = _mm256_fmadd_ps(_mm256_loadu_ps(r1 + i), qv, a1);
      a2 = _mm256_fmadd_ps(_mm256_loadu_ps(r2 + i), qv, a2);
      a3 = _mm256_fmadd_ps(_mm256_loadu_ps(r3 + i), qv, a3);
    }
    float s0 = hsum256(a0);
    float s1 = hsum256(a1);
    float s2 = hsum256(a2);
    float s3 = hsum256(a3);
    for (; i < dims; ++i) {
      s0 = std::fmaf(r0[i], q[i], s0);
      s1 = std::fmaf(r1[i], q[i], s1);
      s2 = std::fmaf(r2[i], q[i], s2);
      s3 = std::fmaf(r3[i], q[i], s3);
    }
    scores[r + 0] = s0;
    scores[r + 1] = s1;
    scores[r + 2] = s2;
    scores[r + 3] = s3;
  }
  for (; r < n; ++r) scores[r] = dot(rows + r * dims, q, dims);
}

namespace {

inline std::int32_t hsum256i(__m256i acc) noexcept {
  const __m128i lo = _mm256_castsi256_si128(acc);
  const __m128i hi = _mm256_extracti128_si256(acc, 1);
  __m128i s = _mm_add_epi32(lo, hi);
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0x4E));  // swap 64-bit halves
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0xB1));  // swap 32-bit pairs
  return _mm_cvtsi128_si32(s);
}

inline __m256i widen_i8(const std::int8_t* p) noexcept {
  return _mm256_cvtepi8_epi16(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
}

}  // namespace

std::int32_t dot_i8(const std::int8_t* x, const std::int8_t* y,
                    std::size_t n) noexcept {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    // madd: pairwise i16*i16 -> i32 sums. 16 lanes of i16 products each
    // bounded by 127*127, so the pairwise i32 sums cannot overflow.
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(widen_i8(x + i),
                                                  widen_i8(y + i)));
  }
  std::int32_t sum = hsum256i(acc);
  for (; i < n; ++i) {
    sum += static_cast<std::int32_t>(x[i]) * static_cast<std::int32_t>(y[i]);
  }
  return sum;
}

void dot_i8_batch(const std::int8_t* rows, std::size_t n, std::size_t dims,
                  const std::int8_t* q, std::int32_t* out) noexcept {
  // Four rows per pass share each widen of q (the sign-extension is the
  // expensive step, so amortizing it across rows nearly halves the scan
  // cost). Integer addition is associative, so any blocking gives the
  // same bits — no accumulation-order contract needed here.
  std::size_t r = 0;
  for (; r + 4 <= n; r += 4) {
    const std::int8_t* r0 = rows + (r + 0) * dims;
    const std::int8_t* r1 = rows + (r + 1) * dims;
    const std::int8_t* r2 = rows + (r + 2) * dims;
    const std::int8_t* r3 = rows + (r + 3) * dims;
    __m256i a0 = _mm256_setzero_si256();
    __m256i a1 = _mm256_setzero_si256();
    __m256i a2 = _mm256_setzero_si256();
    __m256i a3 = _mm256_setzero_si256();
    std::size_t i = 0;
    for (; i + 16 <= dims; i += 16) {
      const __m256i qv = widen_i8(q + i);
      a0 = _mm256_add_epi32(a0, _mm256_madd_epi16(widen_i8(r0 + i), qv));
      a1 = _mm256_add_epi32(a1, _mm256_madd_epi16(widen_i8(r1 + i), qv));
      a2 = _mm256_add_epi32(a2, _mm256_madd_epi16(widen_i8(r2 + i), qv));
      a3 = _mm256_add_epi32(a3, _mm256_madd_epi16(widen_i8(r3 + i), qv));
    }
    std::int32_t s0 = hsum256i(a0);
    std::int32_t s1 = hsum256i(a1);
    std::int32_t s2 = hsum256i(a2);
    std::int32_t s3 = hsum256i(a3);
    for (; i < dims; ++i) {
      const std::int32_t qi = q[i];
      s0 += static_cast<std::int32_t>(r0[i]) * qi;
      s1 += static_cast<std::int32_t>(r1[i]) * qi;
      s2 += static_cast<std::int32_t>(r2[i]) * qi;
      s3 += static_cast<std::int32_t>(r3[i]) * qi;
    }
    out[r + 0] = s0;
    out[r + 1] = s1;
    out[r + 2] = s2;
    out[r + 3] = s3;
  }
  for (; r < n; ++r) out[r] = dot_i8(rows + r * dims, q, dims);
}

}  // namespace seqge::simd::avx2

#endif  // __AVX2__ && __FMA__
