// AVX2+FMA kernels. This TU (and only this TU) is compiled with
// -mavx2 -mfma on x86-64 builds; everything here is self-guarded with
// __AVX2__ so the file compiles to nothing if the flags are absent.
// Selection happens at runtime in simd.cpp via avx2::supported(), so
// the binary still runs on pre-AVX2 machines.
//
// Accumulation-order contract (see simd.hpp): dot uses ONE 8-wide
// accumulator stepped 8 floats at a time, a fixed-order horizontal
// reduction, and a scalar tail; dot_batch applies exactly that order
// to each row, whatever its cross-row blocking. l2_norm widens every
// lane to double before accumulating, matching the scalar baseline's
// double accumulator precision.

#include "linalg/simd.hpp"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <cmath>

namespace seqge::simd::avx2 {

namespace {

// Fixed-order horizontal sum: (lo128 + hi128), then pairwise within
// the 128-bit half — same tree for every call site so row scores are
// reproducible.
inline float hsum256(__m256 v) noexcept {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);            // [a0+a4, a1+a5, a2+a6, a3+a7]
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));   // [a0+a4+a2+a6, a1+a5+a3+a7, ..]
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x55));
  return _mm_cvtss_f32(s);
}

inline double hsum256d(__m256d v) noexcept {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  __m128d s = _mm_add_pd(lo, hi);
  s = _mm_add_sd(s, _mm_unpackhi_pd(s, s));
  return _mm_cvtsd_f64(s);
}

}  // namespace

bool supported() noexcept {
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
}

float dot(const float* x, const float* y, std::size_t n) noexcept {
  __m256 acc = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm256_fmadd_ps(_mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i), acc);
  }
  float sum = hsum256(acc);
  // std::fmaf pins the tail to one rounding per element (a single
  // vfmadd), so dot_batch's tails below are bit-identical to this one
  // no matter how the compiler contracts or SLP-vectorizes either loop.
  for (; i < n; ++i) sum = std::fmaf(x[i], y[i], sum);
  return sum;
}

void axpy(float a, const float* x, float* y, std::size_t n) noexcept {
  const __m256 av = _mm256_set1_ps(a);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 r =
        _mm256_fmadd_ps(av, _mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i));
    _mm256_storeu_ps(y + i, r);
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

void scale(float a, float* x, std::size_t n) noexcept {
  const __m256 av = _mm256_set1_ps(a);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(x + i, _mm256_mul_ps(_mm256_loadu_ps(x + i), av));
  }
  for (; i < n; ++i) x[i] *= a;
}

double l2_norm(const float* x, std::size_t n) noexcept {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(x + i);
    const __m256d lo = _mm256_cvtps_pd(_mm256_castps256_ps128(v));
    const __m256d hi = _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1));
    acc0 = _mm256_fmadd_pd(lo, lo, acc0);
    acc1 = _mm256_fmadd_pd(hi, hi, acc1);
  }
  double sum = hsum256d(acc0) + hsum256d(acc1);
  for (; i < n; ++i) {
    sum += static_cast<double>(x[i]) * static_cast<double>(x[i]);
  }
  return std::sqrt(sum);
}

void dot_batch(const float* rows, std::size_t n, std::size_t dims,
               const float* q, float* scores) noexcept {
  std::size_t r = 0;
  // Four rows per pass share each load of q. Each row keeps its own
  // single 8-wide accumulator and its own scalar tail — the canonical
  // per-row order — so scores match 1-row dot() calls exactly.
  for (; r + 4 <= n; r += 4) {
    const float* r0 = rows + (r + 0) * dims;
    const float* r1 = rows + (r + 1) * dims;
    const float* r2 = rows + (r + 2) * dims;
    const float* r3 = rows + (r + 3) * dims;
    __m256 a0 = _mm256_setzero_ps();
    __m256 a1 = _mm256_setzero_ps();
    __m256 a2 = _mm256_setzero_ps();
    __m256 a3 = _mm256_setzero_ps();
    std::size_t i = 0;
    for (; i + 8 <= dims; i += 8) {
      const __m256 qv = _mm256_loadu_ps(q + i);
      a0 = _mm256_fmadd_ps(_mm256_loadu_ps(r0 + i), qv, a0);
      a1 = _mm256_fmadd_ps(_mm256_loadu_ps(r1 + i), qv, a1);
      a2 = _mm256_fmadd_ps(_mm256_loadu_ps(r2 + i), qv, a2);
      a3 = _mm256_fmadd_ps(_mm256_loadu_ps(r3 + i), qv, a3);
    }
    float s0 = hsum256(a0);
    float s1 = hsum256(a1);
    float s2 = hsum256(a2);
    float s3 = hsum256(a3);
    for (; i < dims; ++i) {
      s0 = std::fmaf(r0[i], q[i], s0);
      s1 = std::fmaf(r1[i], q[i], s1);
      s2 = std::fmaf(r2[i], q[i], s2);
      s3 = std::fmaf(r3[i], q[i], s3);
    }
    scores[r + 0] = s0;
    scores[r + 1] = s1;
    scores[r + 2] = s2;
    scores[r + 3] = s3;
  }
  for (; r < n; ++r) scores[r] = dot(rows + r * dims, q, dims);
}

// --- fused training kernels --------------------------------------------------
// Bit-identity contract (simd.hpp): each kernel reproduces the float
// sequence of the per-row avx2 calls it replaces. Column-blocked loops
// keep accumulators in registers, but every output element's chain of
// FMAs runs over rows/samples in the same ascending order with the
// same one-rounding-per-step arithmetic, so the results are the same
// bits. Scalar tails are written in the same expression form as
// axpy/dot tails in this TU so the compiler contracts them identically.

void matvec_t(const float* m, std::size_t rows, std::size_t cols,
              const float* v, float* out) noexcept {
  std::size_t c = 0;
  // 32 columns per pass: one v[r] broadcast feeds four FMAs.
  for (; c + 32 <= cols; c += 32) {
    __m256 a0 = _mm256_setzero_ps();
    __m256 a1 = _mm256_setzero_ps();
    __m256 a2 = _mm256_setzero_ps();
    __m256 a3 = _mm256_setzero_ps();
    for (std::size_t r = 0; r < rows; ++r) {
      const __m256 vr = _mm256_set1_ps(v[r]);
      const float* row = m + r * cols + c;
      a0 = _mm256_fmadd_ps(vr, _mm256_loadu_ps(row + 0), a0);
      a1 = _mm256_fmadd_ps(vr, _mm256_loadu_ps(row + 8), a1);
      a2 = _mm256_fmadd_ps(vr, _mm256_loadu_ps(row + 16), a2);
      a3 = _mm256_fmadd_ps(vr, _mm256_loadu_ps(row + 24), a3);
    }
    _mm256_storeu_ps(out + c + 0, a0);
    _mm256_storeu_ps(out + c + 8, a1);
    _mm256_storeu_ps(out + c + 16, a2);
    _mm256_storeu_ps(out + c + 24, a3);
  }
  for (; c + 8 <= cols; c += 8) {
    __m256 a0 = _mm256_setzero_ps();
    for (std::size_t r = 0; r < rows; ++r) {
      a0 = _mm256_fmadd_ps(_mm256_set1_ps(v[r]),
                           _mm256_loadu_ps(m + r * cols + c), a0);
    }
    _mm256_storeu_ps(out + c, a0);
  }
  for (; c < cols; ++c) {
    out[c] = 0.0f;
    for (std::size_t r = 0; r < rows; ++r) {
      out[c] += v[r] * m[r * cols + c];
    }
  }
}

void rank1_update(float* m, std::size_t rows, std::size_t cols, float a,
                  const float* x, const float* y) noexcept {
  std::size_t r = 0;
  // Four rows per pass share each load of y. Per-row coefficients are
  // rounded once up front, exactly like axpy(a * x[r], y, row).
  for (; r + 4 <= rows; r += 4) {
    float* m0 = m + (r + 0) * cols;
    float* m1 = m + (r + 1) * cols;
    float* m2 = m + (r + 2) * cols;
    float* m3 = m + (r + 3) * cols;
    const float c0 = a * x[r + 0];
    const float c1 = a * x[r + 1];
    const float c2 = a * x[r + 2];
    const float c3 = a * x[r + 3];
    const __m256 cv0 = _mm256_set1_ps(c0);
    const __m256 cv1 = _mm256_set1_ps(c1);
    const __m256 cv2 = _mm256_set1_ps(c2);
    const __m256 cv3 = _mm256_set1_ps(c3);
    std::size_t i = 0;
    for (; i + 8 <= cols; i += 8) {
      const __m256 yv = _mm256_loadu_ps(y + i);
      _mm256_storeu_ps(m0 + i,
                       _mm256_fmadd_ps(cv0, yv, _mm256_loadu_ps(m0 + i)));
      _mm256_storeu_ps(m1 + i,
                       _mm256_fmadd_ps(cv1, yv, _mm256_loadu_ps(m1 + i)));
      _mm256_storeu_ps(m2 + i,
                       _mm256_fmadd_ps(cv2, yv, _mm256_loadu_ps(m2 + i)));
      _mm256_storeu_ps(m3 + i,
                       _mm256_fmadd_ps(cv3, yv, _mm256_loadu_ps(m3 + i)));
    }
    for (; i < cols; ++i) {
      m0[i] += c0 * y[i];
      m1[i] += c1 * y[i];
      m2[i] += c2 * y[i];
      m3[i] += c3 * y[i];
    }
  }
  for (; r < rows; ++r) {
    axpy(a * x[r], y, m + r * cols, cols);
  }
}

void matvec_both(const float* m, std::size_t n, const float* v,
                 float* out_mv, float* out_mtv) noexcept {
  // One pass over the square matrix produces both products: four rows
  // per quad share each load of v; each m-row block feeds that row's
  // dot accumulator (canonical per-row order) AND the M^T v memory
  // accumulator. Per out_mtv element the FMA chain runs rows in
  // ascending order — a register accumulator (matvec_t) and this
  // load-fma-store sequence round identically, so both outputs match
  // separate dot_batch + matvec_t calls bit for bit.
  for (std::size_t c = 0; c < n; ++c) out_mtv[c] = 0.0f;
  std::size_t r = 0;
  for (; r + 4 <= n; r += 4) {
    const float* r0 = m + (r + 0) * n;
    const float* r1 = m + (r + 1) * n;
    const float* r2 = m + (r + 2) * n;
    const float* r3 = m + (r + 3) * n;
    const __m256 vr0 = _mm256_set1_ps(v[r + 0]);
    const __m256 vr1 = _mm256_set1_ps(v[r + 1]);
    const __m256 vr2 = _mm256_set1_ps(v[r + 2]);
    const __m256 vr3 = _mm256_set1_ps(v[r + 3]);
    __m256 a0 = _mm256_setzero_ps();
    __m256 a1 = _mm256_setzero_ps();
    __m256 a2 = _mm256_setzero_ps();
    __m256 a3 = _mm256_setzero_ps();
    std::size_t i = 0;
    // Two column blocks per step: the two out_mtv chains are
    // independent, which hides the 4-deep FMA latency of each; the dot
    // accumulators still take their blocks in ascending order (one
    // serial chain per row — the canonical order — regardless of the
    // unroll).
    for (; i + 16 <= n; i += 16) {
      const __m256 qa = _mm256_loadu_ps(v + i);
      const __m256 qb = _mm256_loadu_ps(v + i + 8);
      const __m256 m0a = _mm256_loadu_ps(r0 + i);
      const __m256 m0b = _mm256_loadu_ps(r0 + i + 8);
      const __m256 m1a = _mm256_loadu_ps(r1 + i);
      const __m256 m1b = _mm256_loadu_ps(r1 + i + 8);
      const __m256 m2a = _mm256_loadu_ps(r2 + i);
      const __m256 m2b = _mm256_loadu_ps(r2 + i + 8);
      const __m256 m3a = _mm256_loadu_ps(r3 + i);
      const __m256 m3b = _mm256_loadu_ps(r3 + i + 8);
      a0 = _mm256_fmadd_ps(m0a, qa, a0);
      a0 = _mm256_fmadd_ps(m0b, qb, a0);
      a1 = _mm256_fmadd_ps(m1a, qa, a1);
      a1 = _mm256_fmadd_ps(m1b, qb, a1);
      a2 = _mm256_fmadd_ps(m2a, qa, a2);
      a2 = _mm256_fmadd_ps(m2b, qb, a2);
      a3 = _mm256_fmadd_ps(m3a, qa, a3);
      a3 = _mm256_fmadd_ps(m3b, qb, a3);
      __m256 ta = _mm256_loadu_ps(out_mtv + i);
      __m256 tb = _mm256_loadu_ps(out_mtv + i + 8);
      ta = _mm256_fmadd_ps(vr0, m0a, ta);
      tb = _mm256_fmadd_ps(vr0, m0b, tb);
      ta = _mm256_fmadd_ps(vr1, m1a, ta);
      tb = _mm256_fmadd_ps(vr1, m1b, tb);
      ta = _mm256_fmadd_ps(vr2, m2a, ta);
      tb = _mm256_fmadd_ps(vr2, m2b, tb);
      ta = _mm256_fmadd_ps(vr3, m3a, ta);
      tb = _mm256_fmadd_ps(vr3, m3b, tb);
      _mm256_storeu_ps(out_mtv + i, ta);
      _mm256_storeu_ps(out_mtv + i + 8, tb);
    }
    for (; i + 8 <= n; i += 8) {
      const __m256 qv = _mm256_loadu_ps(v + i);
      const __m256 m0 = _mm256_loadu_ps(r0 + i);
      const __m256 m1 = _mm256_loadu_ps(r1 + i);
      const __m256 m2 = _mm256_loadu_ps(r2 + i);
      const __m256 m3 = _mm256_loadu_ps(r3 + i);
      a0 = _mm256_fmadd_ps(m0, qv, a0);
      a1 = _mm256_fmadd_ps(m1, qv, a1);
      a2 = _mm256_fmadd_ps(m2, qv, a2);
      a3 = _mm256_fmadd_ps(m3, qv, a3);
      __m256 t = _mm256_loadu_ps(out_mtv + i);
      t = _mm256_fmadd_ps(vr0, m0, t);
      t = _mm256_fmadd_ps(vr1, m1, t);
      t = _mm256_fmadd_ps(vr2, m2, t);
      t = _mm256_fmadd_ps(vr3, m3, t);
      _mm256_storeu_ps(out_mtv + i, t);
    }
    float s0 = hsum256(a0);
    float s1 = hsum256(a1);
    float s2 = hsum256(a2);
    float s3 = hsum256(a3);
    for (; i < n; ++i) {
      s0 = std::fmaf(r0[i], v[i], s0);
      s1 = std::fmaf(r1[i], v[i], s1);
      s2 = std::fmaf(r2[i], v[i], s2);
      s3 = std::fmaf(r3[i], v[i], s3);
      out_mtv[i] += v[r + 0] * r0[i];
      out_mtv[i] += v[r + 1] * r1[i];
      out_mtv[i] += v[r + 2] * r2[i];
      out_mtv[i] += v[r + 3] * r3[i];
    }
    out_mv[r + 0] = s0;
    out_mv[r + 1] = s1;
    out_mv[r + 2] = s2;
    out_mv[r + 3] = s3;
  }
  for (; r < n; ++r) {
    const float* row = m + r * n;
    out_mv[r] = dot(row, v, n);
    axpy(v[r], row, out_mtv, n);
  }
}

void rank1_matvec(float* m, std::size_t n, float a, const float* x,
                  const float* y, const float* v, float* out) noexcept {
  // One pass over the square matrix for update + re-score: per quad of
  // rows the freshly updated block feeds the dot accumulator directly,
  // so each row is read and written once instead of twice. Coefficients
  // round once up front (rank1_update's contract); each dot follows the
  // canonical per-row order over the updated values — bit-identical to
  // rank1_update followed by dot_batch.
  std::size_t r = 0;
  for (; r + 4 <= n; r += 4) {
    float* m0 = m + (r + 0) * n;
    float* m1 = m + (r + 1) * n;
    float* m2 = m + (r + 2) * n;
    float* m3 = m + (r + 3) * n;
    const float c0 = a * x[r + 0];
    const float c1 = a * x[r + 1];
    const float c2 = a * x[r + 2];
    const float c3 = a * x[r + 3];
    const __m256 cv0 = _mm256_set1_ps(c0);
    const __m256 cv1 = _mm256_set1_ps(c1);
    const __m256 cv2 = _mm256_set1_ps(c2);
    const __m256 cv3 = _mm256_set1_ps(c3);
    __m256 a0 = _mm256_setzero_ps();
    __m256 a1 = _mm256_setzero_ps();
    __m256 a2 = _mm256_setzero_ps();
    __m256 a3 = _mm256_setzero_ps();
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
      const __m256 yv = _mm256_loadu_ps(y + i);
      const __m256 vv = _mm256_loadu_ps(v + i);
      const __m256 n0 = _mm256_fmadd_ps(cv0, yv, _mm256_loadu_ps(m0 + i));
      const __m256 n1 = _mm256_fmadd_ps(cv1, yv, _mm256_loadu_ps(m1 + i));
      const __m256 n2 = _mm256_fmadd_ps(cv2, yv, _mm256_loadu_ps(m2 + i));
      const __m256 n3 = _mm256_fmadd_ps(cv3, yv, _mm256_loadu_ps(m3 + i));
      _mm256_storeu_ps(m0 + i, n0);
      _mm256_storeu_ps(m1 + i, n1);
      _mm256_storeu_ps(m2 + i, n2);
      _mm256_storeu_ps(m3 + i, n3);
      a0 = _mm256_fmadd_ps(n0, vv, a0);
      a1 = _mm256_fmadd_ps(n1, vv, a1);
      a2 = _mm256_fmadd_ps(n2, vv, a2);
      a3 = _mm256_fmadd_ps(n3, vv, a3);
    }
    float s0 = hsum256(a0);
    float s1 = hsum256(a1);
    float s2 = hsum256(a2);
    float s3 = hsum256(a3);
    for (; i < n; ++i) {
      m0[i] += c0 * y[i];
      m1[i] += c1 * y[i];
      m2[i] += c2 * y[i];
      m3[i] += c3 * y[i];
      s0 = std::fmaf(m0[i], v[i], s0);
      s1 = std::fmaf(m1[i], v[i], s1);
      s2 = std::fmaf(m2[i], v[i], s2);
      s3 = std::fmaf(m3[i], v[i], s3);
    }
    out[r + 0] = s0;
    out[r + 1] = s1;
    out[r + 2] = s2;
    out[r + 3] = s3;
  }
  for (; r < n; ++r) {
    float* row = m + r * n;
    axpy(a * x[r], y, row, n);
    out[r] = dot(row, v, n);
  }
}

void dot_batch_gather(const float* const* rows, std::size_t n,
                      std::size_t dims, const float* q,
                      float* scores) noexcept {
  // dot_batch's blocking over a gather list: four rows per pass share
  // each load of q, each row in the canonical per-row order.
  std::size_t r = 0;
  for (; r + 4 <= n; r += 4) {
    const float* r0 = rows[r + 0];
    const float* r1 = rows[r + 1];
    const float* r2 = rows[r + 2];
    const float* r3 = rows[r + 3];
    __m256 a0 = _mm256_setzero_ps();
    __m256 a1 = _mm256_setzero_ps();
    __m256 a2 = _mm256_setzero_ps();
    __m256 a3 = _mm256_setzero_ps();
    std::size_t i = 0;
    for (; i + 8 <= dims; i += 8) {
      const __m256 qv = _mm256_loadu_ps(q + i);
      a0 = _mm256_fmadd_ps(_mm256_loadu_ps(r0 + i), qv, a0);
      a1 = _mm256_fmadd_ps(_mm256_loadu_ps(r1 + i), qv, a1);
      a2 = _mm256_fmadd_ps(_mm256_loadu_ps(r2 + i), qv, a2);
      a3 = _mm256_fmadd_ps(_mm256_loadu_ps(r3 + i), qv, a3);
    }
    float s0 = hsum256(a0);
    float s1 = hsum256(a1);
    float s2 = hsum256(a2);
    float s3 = hsum256(a3);
    for (; i < dims; ++i) {
      s0 = std::fmaf(r0[i], q[i], s0);
      s1 = std::fmaf(r1[i], q[i], s1);
      s2 = std::fmaf(r2[i], q[i], s2);
      s3 = std::fmaf(r3[i], q[i], s3);
    }
    scores[r + 0] = s0;
    scores[r + 1] = s1;
    scores[r + 2] = s2;
    scores[r + 3] = s3;
  }
  for (; r < n; ++r) scores[r] = dot(rows[r], q, dims);
}

void axpy_gather(float* const* rows, const float* coeffs, const float* x,
                 std::size_t n, std::size_t dims) noexcept {
  // Four rows per pass share each load of x. Duplicate row pointers in
  // a quad would lose updates (all four pre-values load before any
  // store) — callers guarantee distinct rows (simd.hpp contract).
  std::size_t r = 0;
  for (; r + 4 <= n; r += 4) {
    float* r0 = rows[r + 0];
    float* r1 = rows[r + 1];
    float* r2 = rows[r + 2];
    float* r3 = rows[r + 3];
    const float c0 = coeffs[r + 0];
    const float c1 = coeffs[r + 1];
    const float c2 = coeffs[r + 2];
    const float c3 = coeffs[r + 3];
    const __m256 cv0 = _mm256_set1_ps(c0);
    const __m256 cv1 = _mm256_set1_ps(c1);
    const __m256 cv2 = _mm256_set1_ps(c2);
    const __m256 cv3 = _mm256_set1_ps(c3);
    std::size_t i = 0;
    for (; i + 8 <= dims; i += 8) {
      const __m256 xv = _mm256_loadu_ps(x + i);
      _mm256_storeu_ps(r0 + i,
                       _mm256_fmadd_ps(cv0, xv, _mm256_loadu_ps(r0 + i)));
      _mm256_storeu_ps(r1 + i,
                       _mm256_fmadd_ps(cv1, xv, _mm256_loadu_ps(r1 + i)));
      _mm256_storeu_ps(r2 + i,
                       _mm256_fmadd_ps(cv2, xv, _mm256_loadu_ps(r2 + i)));
      _mm256_storeu_ps(r3 + i,
                       _mm256_fmadd_ps(cv3, xv, _mm256_loadu_ps(r3 + i)));
    }
    for (; i < dims; ++i) {
      r0[i] += c0 * x[i];
      r1[i] += c1 * x[i];
      r2[i] += c2 * x[i];
      r3[i] += c3 * x[i];
    }
  }
  for (; r < n; ++r) axpy(coeffs[r], x, rows[r], dims);
}

void sgns_apply(float* h, float* hgrad, float* const* rows, const float* g,
                float neg_lr, std::size_t n, std::size_t dims) noexcept {
  // Column-blocked: h and the h_grad accumulator stay in registers for
  // a whole 8-column block while every sample row streams through once.
  // Per column, the float chain is the unfused sequence: h_grad FMA
  // from zero over samples (each reading the pre-update row), one
  // rounded neg_lr * g[i] coefficient per sample for the row update
  // against pre-update h, then one final FMA into h. hgrad is bypassed
  // (the accumulator never leaves registers).
  (void)hgrad;
  const __m256 nl = _mm256_set1_ps(neg_lr);
  std::size_t d = 0;
  // 32 columns per pass: the sample loop carries four independent
  // h_grad accumulator chains (the 8-wide version's single chain is
  // FMA-latency-bound at training dims), and one g[i] broadcast plus
  // one neg_lr * g[i] product serve all four blocks. Each column's
  // chain of operations is unchanged, so the results are the same bits.
  for (; d + 32 <= dims; d += 32) {
    const __m256 hb0 = _mm256_loadu_ps(h + d + 0);
    const __m256 hb1 = _mm256_loadu_ps(h + d + 8);
    const __m256 hb2 = _mm256_loadu_ps(h + d + 16);
    const __m256 hb3 = _mm256_loadu_ps(h + d + 24);
    __m256 ac0 = _mm256_setzero_ps();
    __m256 ac1 = _mm256_setzero_ps();
    __m256 ac2 = _mm256_setzero_ps();
    __m256 ac3 = _mm256_setzero_ps();
    for (std::size_t i = 0; i < n; ++i) {
      float* rp = rows[i] + d;
      const __m256 gv = _mm256_set1_ps(g[i]);
      const __m256 cv = _mm256_mul_ps(nl, gv);
      const __m256 r0 = _mm256_loadu_ps(rp + 0);
      const __m256 r1 = _mm256_loadu_ps(rp + 8);
      const __m256 r2 = _mm256_loadu_ps(rp + 16);
      const __m256 r3 = _mm256_loadu_ps(rp + 24);
      ac0 = _mm256_fmadd_ps(gv, r0, ac0);
      ac1 = _mm256_fmadd_ps(gv, r1, ac1);
      ac2 = _mm256_fmadd_ps(gv, r2, ac2);
      ac3 = _mm256_fmadd_ps(gv, r3, ac3);
      _mm256_storeu_ps(rp + 0, _mm256_fmadd_ps(cv, hb0, r0));
      _mm256_storeu_ps(rp + 8, _mm256_fmadd_ps(cv, hb1, r1));
      _mm256_storeu_ps(rp + 16, _mm256_fmadd_ps(cv, hb2, r2));
      _mm256_storeu_ps(rp + 24, _mm256_fmadd_ps(cv, hb3, r3));
    }
    _mm256_storeu_ps(h + d + 0, _mm256_fmadd_ps(nl, ac0, hb0));
    _mm256_storeu_ps(h + d + 8, _mm256_fmadd_ps(nl, ac1, hb1));
    _mm256_storeu_ps(h + d + 16, _mm256_fmadd_ps(nl, ac2, hb2));
    _mm256_storeu_ps(h + d + 24, _mm256_fmadd_ps(nl, ac3, hb3));
  }
  for (; d + 8 <= dims; d += 8) {
    const __m256 hb = _mm256_loadu_ps(h + d);
    __m256 acc = _mm256_setzero_ps();
    for (std::size_t i = 0; i < n; ++i) {
      float* rp = rows[i] + d;
      const __m256 gv = _mm256_set1_ps(g[i]);
      const __m256 rv = _mm256_loadu_ps(rp);
      acc = _mm256_fmadd_ps(gv, rv, acc);
      const __m256 cv = _mm256_mul_ps(nl, gv);
      _mm256_storeu_ps(rp, _mm256_fmadd_ps(cv, hb, rv));
    }
    _mm256_storeu_ps(h + d, _mm256_fmadd_ps(nl, acc, hb));
  }
  for (; d < dims; ++d) {
    float hg = 0.0f;
    const float hd = h[d];
    for (std::size_t i = 0; i < n; ++i) {
      const float c = neg_lr * g[i];
      hg += g[i] * rows[i][d];
      rows[i][d] += c * hd;
    }
    h[d] += neg_lr * hg;
  }
}

namespace {

inline std::int32_t hsum256i(__m256i acc) noexcept {
  const __m128i lo = _mm256_castsi256_si128(acc);
  const __m128i hi = _mm256_extracti128_si256(acc, 1);
  __m128i s = _mm_add_epi32(lo, hi);
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0x4E));  // swap 64-bit halves
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0xB1));  // swap 32-bit pairs
  return _mm_cvtsi128_si32(s);
}

inline __m256i widen_i8(const std::int8_t* p) noexcept {
  return _mm256_cvtepi8_epi16(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
}

}  // namespace

std::int32_t dot_i8(const std::int8_t* x, const std::int8_t* y,
                    std::size_t n) noexcept {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    // madd: pairwise i16*i16 -> i32 sums. 16 lanes of i16 products each
    // bounded by 127*127, so the pairwise i32 sums cannot overflow.
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(widen_i8(x + i),
                                                  widen_i8(y + i)));
  }
  std::int32_t sum = hsum256i(acc);
  for (; i < n; ++i) {
    sum += static_cast<std::int32_t>(x[i]) * static_cast<std::int32_t>(y[i]);
  }
  return sum;
}

void dot_i8_batch(const std::int8_t* rows, std::size_t n, std::size_t dims,
                  const std::int8_t* q, std::int32_t* out) noexcept {
  // Four rows per pass share each widen of q (the sign-extension is the
  // expensive step, so amortizing it across rows nearly halves the scan
  // cost). Integer addition is associative, so any blocking gives the
  // same bits — no accumulation-order contract needed here.
  std::size_t r = 0;
  for (; r + 4 <= n; r += 4) {
    const std::int8_t* r0 = rows + (r + 0) * dims;
    const std::int8_t* r1 = rows + (r + 1) * dims;
    const std::int8_t* r2 = rows + (r + 2) * dims;
    const std::int8_t* r3 = rows + (r + 3) * dims;
    __m256i a0 = _mm256_setzero_si256();
    __m256i a1 = _mm256_setzero_si256();
    __m256i a2 = _mm256_setzero_si256();
    __m256i a3 = _mm256_setzero_si256();
    std::size_t i = 0;
    for (; i + 16 <= dims; i += 16) {
      const __m256i qv = widen_i8(q + i);
      a0 = _mm256_add_epi32(a0, _mm256_madd_epi16(widen_i8(r0 + i), qv));
      a1 = _mm256_add_epi32(a1, _mm256_madd_epi16(widen_i8(r1 + i), qv));
      a2 = _mm256_add_epi32(a2, _mm256_madd_epi16(widen_i8(r2 + i), qv));
      a3 = _mm256_add_epi32(a3, _mm256_madd_epi16(widen_i8(r3 + i), qv));
    }
    std::int32_t s0 = hsum256i(a0);
    std::int32_t s1 = hsum256i(a1);
    std::int32_t s2 = hsum256i(a2);
    std::int32_t s3 = hsum256i(a3);
    for (; i < dims; ++i) {
      const std::int32_t qi = q[i];
      s0 += static_cast<std::int32_t>(r0[i]) * qi;
      s1 += static_cast<std::int32_t>(r1[i]) * qi;
      s2 += static_cast<std::int32_t>(r2[i]) * qi;
      s3 += static_cast<std::int32_t>(r3[i]) * qi;
    }
    out[r + 0] = s0;
    out[r + 1] = s1;
    out[r + 2] = s2;
    out[r + 3] = s3;
  }
  for (; r < n; ++r) out[r] = dot_i8(rows + r * dims, q, dims);
}

}  // namespace seqge::simd::avx2

#endif  // __AVX2__ && __FMA__
