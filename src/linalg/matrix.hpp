#pragma once
// Dense row-major matrix with a contiguous buffer. This is deliberately a
// thin owning container plus free-function kernels (linalg/kernels.hpp)
// rather than an expression-template library: the OS-ELM update touches
// only N x N and n x N shapes with N <= 128, so clarity and predictable
// memory layout beat genericity.

#include <cassert>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace seqge {

template <typename T>
class Matrix {
 public:
  Matrix() = default;

  Matrix(std::size_t rows, std::size_t cols, T init = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, init) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] T& operator()(std::size_t r, std::size_t c) noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  [[nodiscard]] const T& operator()(std::size_t r,
                                    std::size_t c) const noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Contiguous view of one row.
  [[nodiscard]] std::span<T> row(std::size_t r) noexcept {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const T> row(std::size_t r) const noexcept {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  [[nodiscard]] std::span<T> flat() noexcept { return {data_}; }
  [[nodiscard]] std::span<const T> flat() const noexcept { return {data_}; }
  [[nodiscard]] T* data() noexcept { return data_.data(); }
  [[nodiscard]] const T* data() const noexcept { return data_.data(); }

  void fill(T v) { std::fill(data_.begin(), data_.end(), v); }

  /// Set to a scaled identity (requires square shape).
  void set_identity(T diag) {
    if (rows_ != cols_) throw std::invalid_argument("set_identity: not square");
    fill(T{});
    for (std::size_t i = 0; i < rows_; ++i) (*this)(i, i) = diag;
  }

  /// Fill with uniform random values in [lo, hi) — the classic skip-gram
  /// init is U(-0.5/dim, 0.5/dim).
  void fill_uniform(Rng& rng, double lo, double hi) {
    for (auto& v : data_) v = static_cast<T>(rng.uniform(lo, hi));
  }

  /// Fill with N(0, sigma^2) — used for the fixed random alpha of
  /// classic OS-ELM (Fig. 7 "alpha" baseline).
  void fill_gaussian(Rng& rng, double sigma) {
    for (auto& v : data_) v = static_cast<T>(rng.gaussian() * sigma);
  }

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

using MatrixF = Matrix<float>;
using MatrixD = Matrix<double>;

}  // namespace seqge
