#pragma once
// Free-function dense kernels over std::span. These are the complete set
// of primitives used by the skip-gram/OS-ELM trainers; each is written as
// a simple auto-vectorizable loop. OpenMP is applied only where the trip
// count warrants it (matvec over the full vocabulary).
//
// The float instantiations of dot/axpy/scale/l2_norm and of the matrix
// kernels matvec/matvec_transposed/rank1_update are specialized to the
// ISA-dispatched kernels in linalg/simd.hpp (AVX2/NEON at runtime,
// exact scalar reference under SEQGE_DISABLE_SIMD); every other type
// keeps the plain loops below.

#include <cmath>
#include <cstddef>
#include <span>

#include "linalg/matrix.hpp"
#include "linalg/simd.hpp"

namespace seqge {

/// dot(x, y) = sum_i x_i * y_i
template <typename T>
[[nodiscard]] T dot(std::span<const T> x, std::span<const T> y) noexcept {
  assert(x.size() == y.size());
  T acc{};
  for (std::size_t i = 0; i < x.size(); ++i) acc += x[i] * y[i];
  return acc;
}

/// y += a * x
template <typename T>
void axpy(T a, std::span<const T> x, std::span<T> y) noexcept {
  assert(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += a * x[i];
}

/// x *= a
template <typename T>
void scale(T a, std::span<T> x) noexcept {
  for (auto& v : x) v *= a;
}

template <>
[[nodiscard]] inline float dot<float>(std::span<const float> x,
                                      std::span<const float> y) noexcept {
  assert(x.size() == y.size());
  return simd::dot(x.data(), y.data(), x.size());
}

template <>
inline void axpy<float>(float a, std::span<const float> x,
                        std::span<float> y) noexcept {
  assert(x.size() == y.size());
  simd::axpy(a, x.data(), y.data(), x.size());
}

template <>
inline void scale<float>(float a, std::span<float> x) noexcept {
  simd::scale(a, x.data(), x.size());
}

/// y = x
template <typename T>
void copy(std::span<const T> x, std::span<T> y) noexcept {
  assert(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = x[i];
}

/// out = M * v  (M is rows x cols, v has cols entries, out has rows).
template <typename T>
void matvec(const Matrix<T>& m, std::span<const T> v,
            std::span<T> out) noexcept {
  assert(v.size() == m.cols() && out.size() == m.rows());
  const std::size_t rows = m.rows();
#pragma omp parallel for if (rows > 2048) schedule(static)
  for (std::size_t r = 0; r < rows; ++r) {
    out[r] = dot(m.row(r), v);
  }
}

/// out = M^T * v  (v has rows entries, out has cols).
template <typename T>
void matvec_transposed(const Matrix<T>& m, std::span<const T> v,
                       std::span<T> out) noexcept {
  assert(v.size() == m.rows() && out.size() == m.cols());
  for (auto& o : out) o = T{};
  for (std::size_t r = 0; r < m.rows(); ++r) {
    axpy(v[r], m.row(r), out);
  }
}

/// M += a * x * y^T  (rank-1 update; x has rows entries, y has cols).
template <typename T>
void rank1_update(Matrix<T>& m, T a, std::span<const T> x,
                  std::span<const T> y) noexcept {
  assert(x.size() == m.rows() && y.size() == m.cols());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    axpy(a * x[r], y, m.row(r));
  }
}

// Float specializations of the matrix kernels route to the fused
// ISA-dispatched implementations (one dispatch per call instead of one
// per row; bit-identical to the per-row composition on every ISA).

template <>
inline void matvec<float>(const Matrix<float>& m, std::span<const float> v,
                          std::span<float> out) noexcept {
  assert(v.size() == m.cols() && out.size() == m.rows());
  const std::size_t rows = m.rows();
  if (rows > 2048) {
    // Vocabulary-scale matvec keeps the OpenMP row split; per-row dot
    // preserves the canonical order, so the bits match dot_batch.
#pragma omp parallel for schedule(static)
    for (std::size_t r = 0; r < rows; ++r) {
      out[r] = simd::dot(m.row(r).data(), v.data(), v.size());
    }
    return;
  }
  simd::dot_batch(m.data(), rows, m.cols(), v.data(), out.data());
}

template <>
inline void matvec_transposed<float>(const Matrix<float>& m,
                                     std::span<const float> v,
                                     std::span<float> out) noexcept {
  assert(v.size() == m.rows() && out.size() == m.cols());
  simd::matvec_t(m.data(), m.rows(), m.cols(), v.data(), out.data());
}

template <>
inline void rank1_update<float>(Matrix<float>& m, float a,
                                std::span<const float> x,
                                std::span<const float> y) noexcept {
  assert(x.size() == m.rows() && y.size() == m.cols());
  simd::rank1_update(m.data(), m.rows(), m.cols(), a, x.data(), y.data());
}

/// ||x||_2
template <typename T>
[[nodiscard]] double l2_norm(std::span<const T> x) noexcept {
  double acc = 0.0;
  for (auto v : x) acc += static_cast<double>(v) * static_cast<double>(v);
  return std::sqrt(acc);
}

template <>
[[nodiscard]] inline double l2_norm<float>(
    std::span<const float> x) noexcept {
  return simd::l2_norm(x.data(), x.size());
}

/// Frobenius norm of a matrix.
template <typename T>
[[nodiscard]] double frobenius_norm(const Matrix<T>& m) noexcept {
  return l2_norm(m.flat());
}

/// Numerically-stable logistic sigmoid.
[[nodiscard]] inline double sigmoid(double x) noexcept {
  if (x >= 0.0) {
    const double e = std::exp(-x);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(x);
  return e / (1.0 + e);
}

/// Max absolute element-wise difference between two equal-shape matrices.
template <typename T>
[[nodiscard]] double max_abs_diff(const Matrix<T>& a,
                                  const Matrix<T>& b) noexcept {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  double m = 0.0;
  auto fa = a.flat();
  auto fb = b.flat();
  for (std::size_t i = 0; i < fa.size(); ++i) {
    m = std::max(m, std::abs(static_cast<double>(fa[i]) -
                             static_cast<double>(fb[i])));
  }
  return m;
}

/// Cosine similarity between two vectors (0 if either is all-zero).
template <typename T>
[[nodiscard]] double cosine_similarity(std::span<const T> x,
                                       std::span<const T> y) noexcept {
  const double nx = l2_norm(x);
  const double ny = l2_norm(y);
  if (nx == 0.0 || ny == 0.0) return 0.0;
  return static_cast<double>(dot(x, y)) / (nx * ny);
}

}  // namespace seqge
