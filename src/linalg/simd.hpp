#pragma once
// ISA-dispatched dense kernels for the float serving/training hot paths
// and the int8 quantized scan (serve/quantized_store.hpp).
//
// Three implementations sit behind one function-pointer table:
//  * scalar  — always built, bit-identical to the plain loops that
//    linalg/kernels.hpp shipped before vectorization (the fallback and
//    the reference the equivalence tests compare against);
//  * AVX2+FMA — built on x86-64 as a separate translation unit compiled
//    with -mavx2 -mfma (the rest of the library keeps the baseline
//    ISA), selected at runtime via cpuid so one binary runs on any
//    x86-64 machine;
//  * NEON — selected at compile time on aarch64 (NEON is baseline
//    there).
//
// The table is chosen once, at first use, and never changes: results
// are deterministic for a given ISA. Across ISAs, float results may
// differ in the last ulps (vector accumulation reorders the sum; FMA
// contracts rounding steps) — every float kernel here documents its
// accumulation order so "deterministic per ISA" is a checkable claim.
// The int8 kernels are integer arithmetic and therefore bit-identical
// across every implementation (the tests assert exact equality).
//
// Per-row canonical order: dot_batch computes row i's score with
// exactly the same accumulation order as a 1-row call would, whatever
// blocking the implementation uses across rows. That is what makes the
// sharded fan-out scan (per-shard row blocks) bit-identical to the
// single-store scan over the same rows — the serving tests gate on it.
//
// Build knobs: -DSEQGE_DISABLE_SIMD (CMake option of the same name)
// forces the scalar table at compile time — the "no SIMD" CI leg.

#include <cstddef>
#include <cstdint>
#include <span>

namespace seqge::simd {

enum class Isa { kScalar, kAvx2, kNeon };

/// The ISA the dispatch table resolved to (fixed for process lifetime).
[[nodiscard]] Isa active_isa() noexcept;
/// "scalar" | "avx2" | "neon" — for bench/JSON reporting.
[[nodiscard]] const char* isa_name() noexcept;

// --- float kernels (dispatched) ---------------------------------------------

/// sum_i x[i] * y[i]. Vector ISAs: one W-wide accumulator stepped W at
/// a time, fixed-order horizontal reduction, scalar tail.
[[nodiscard]] float dot(const float* x, const float* y,
                        std::size_t n) noexcept;

/// y[i] += a * x[i] (elementwise; no cross-lane reassociation).
void axpy(float a, const float* x, float* y, std::size_t n) noexcept;

/// x[i] *= a.
void scale(float a, float* x, std::size_t n) noexcept;

/// sqrt(sum x[i]^2), accumulated in double on every ISA (the scalar
/// baseline always accumulated in double; the vector paths widen each
/// lane before accumulating so precision does not regress).
[[nodiscard]] double l2_norm(const float* x, std::size_t n) noexcept;

/// scores[i] = dot(rows + i * dims, q) for i in [0, n) — the batched
/// rows-vs-query kernel behind every exact/IVF scan. Row results are
/// bit-identical to per-row dot() calls on the same ISA regardless of
/// how the implementation blocks across rows.
void dot_batch(const float* rows, std::size_t n, std::size_t dims,
               const float* q, float* scores) noexcept;

// --- int8 kernels (dispatched, bit-exact across ISAs) -----------------------

/// sum_i int32(x[i]) * int32(y[i]).
[[nodiscard]] std::int32_t dot_i8(const std::int8_t* x, const std::int8_t* y,
                                  std::size_t n) noexcept;

/// out[i] = dot_i8(rows + i * dims, q) for i in [0, n).
void dot_i8_batch(const std::int8_t* rows, std::size_t n, std::size_t dims,
                  const std::int8_t* q, std::int32_t* out) noexcept;

// --- scalar reference (always available) ------------------------------------
// The exact pre-vectorization loops. The dispatched functions above
// resolve to these on Isa::kScalar; tests compare against them
// directly, whatever ISA is active.
namespace scalar {
[[nodiscard]] float dot(const float* x, const float* y,
                        std::size_t n) noexcept;
void axpy(float a, const float* x, float* y, std::size_t n) noexcept;
void scale(float a, float* x, std::size_t n) noexcept;
[[nodiscard]] double l2_norm(const float* x, std::size_t n) noexcept;
void dot_batch(const float* rows, std::size_t n, std::size_t dims,
               const float* q, float* scores) noexcept;
[[nodiscard]] std::int32_t dot_i8(const std::int8_t* x, const std::int8_t* y,
                                  std::size_t n) noexcept;
void dot_i8_batch(const std::int8_t* rows, std::size_t n, std::size_t dims,
                  const std::int8_t* q, std::int32_t* out) noexcept;
}  // namespace scalar

// --- fused scan --------------------------------------------------------------

/// Fused rows-vs-query top-k scan: computes dot_batch block by block
/// into a stack buffer and hands (row_index, score) to `offer` — the
/// caller plugs in its TopKAccumulator (and its exclusion test) without
/// this header depending on serve/. Scores are identical to a full
/// dot_batch over [0, n).
template <typename Offer>
void dot_topk_scan(const float* rows, std::size_t n, std::size_t dims,
                   const float* q, Offer&& offer) {
  constexpr std::size_t kBlock = 128;
  float scores[kBlock];
  for (std::size_t base = 0; base < n; base += kBlock) {
    const std::size_t count = n - base < kBlock ? n - base : kBlock;
    dot_batch(rows + base * dims, count, dims, q, scores);
    for (std::size_t i = 0; i < count; ++i) offer(base + i, scores[i]);
  }
}

/// Int8 variant of the fused scan: offers raw int32 dot products; the
/// caller applies its scale factors.
template <typename Offer>
void dot_i8_topk_scan(const std::int8_t* rows, std::size_t n,
                      std::size_t dims, const std::int8_t* q,
                      Offer&& offer) {
  constexpr std::size_t kBlock = 128;
  std::int32_t acc[kBlock];
  for (std::size_t base = 0; base < n; base += kBlock) {
    const std::size_t count = n - base < kBlock ? n - base : kBlock;
    dot_i8_batch(rows + base * dims, count, dims, q, acc);
    for (std::size_t i = 0; i < count; ++i) offer(base + i, acc[i]);
  }
}

// --- span conveniences --------------------------------------------------------

[[nodiscard]] inline float dot(std::span<const float> x,
                               std::span<const float> y) noexcept {
  return dot(x.data(), y.data(), x.size());
}
[[nodiscard]] inline double l2_norm(std::span<const float> x) noexcept {
  return l2_norm(x.data(), x.size());
}

}  // namespace seqge::simd
