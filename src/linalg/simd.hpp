#pragma once
// ISA-dispatched dense kernels for the float serving/training hot paths
// and the int8 quantized scan (serve/quantized_store.hpp).
//
// Three implementations sit behind one function-pointer table:
//  * scalar  — always built, bit-identical to the plain loops that
//    linalg/kernels.hpp shipped before vectorization (the fallback and
//    the reference the equivalence tests compare against);
//  * AVX2+FMA — built on x86-64 as a separate translation unit compiled
//    with -mavx2 -mfma (the rest of the library keeps the baseline
//    ISA), selected at runtime via cpuid so one binary runs on any
//    x86-64 machine;
//  * NEON — selected at compile time on aarch64 (NEON is baseline
//    there).
//
// The table is chosen once, at first use, and never changes: results
// are deterministic for a given ISA. Across ISAs, float results may
// differ in the last ulps (vector accumulation reorders the sum; FMA
// contracts rounding steps) — every float kernel here documents its
// accumulation order so "deterministic per ISA" is a checkable claim.
// The int8 kernels are integer arithmetic and therefore bit-identical
// across every implementation (the tests assert exact equality).
//
// Per-row canonical order: dot_batch computes row i's score with
// exactly the same accumulation order as a 1-row call would, whatever
// blocking the implementation uses across rows. That is what makes the
// sharded fan-out scan (per-shard row blocks) bit-identical to the
// single-store scan over the same rows — the serving tests gate on it.
//
// Build knobs: -DSEQGE_DISABLE_SIMD (CMake option of the same name)
// forces the scalar table at compile time — the "no SIMD" CI leg.

#include <cstddef>
#include <cstdint>
#include <span>

namespace seqge::simd {

enum class Isa { kScalar, kAvx2, kNeon };

/// The ISA the dispatch table resolved to (fixed for process lifetime).
[[nodiscard]] Isa active_isa() noexcept;
/// "scalar" | "avx2" | "neon" — for bench/JSON reporting.
[[nodiscard]] const char* isa_name() noexcept;

// --- float kernels (dispatched) ---------------------------------------------

/// sum_i x[i] * y[i]. Vector ISAs: one W-wide accumulator stepped W at
/// a time, fixed-order horizontal reduction, scalar tail.
[[nodiscard]] float dot(const float* x, const float* y,
                        std::size_t n) noexcept;

/// y[i] += a * x[i] (elementwise; no cross-lane reassociation).
void axpy(float a, const float* x, float* y, std::size_t n) noexcept;

/// x[i] *= a.
void scale(float a, float* x, std::size_t n) noexcept;

/// sqrt(sum x[i]^2), accumulated in double on every ISA (the scalar
/// baseline always accumulated in double; the vector paths widen each
/// lane before accumulating so precision does not regress).
[[nodiscard]] double l2_norm(const float* x, std::size_t n) noexcept;

/// scores[i] = dot(rows + i * dims, q) for i in [0, n) — the batched
/// rows-vs-query kernel behind every exact/IVF scan. Row results are
/// bit-identical to per-row dot() calls on the same ISA regardless of
/// how the implementation blocks across rows.
void dot_batch(const float* rows, std::size_t n, std::size_t dims,
               const float* q, float* scores) noexcept;

// --- float training kernels (dispatched) ------------------------------------
// The fused batched kernels behind the three CPU training backends
// (skip-gram SGD and the two OS-ELM variants). Each documents its
// accumulation order; every one is bit-identical to the composition of
// per-row scalar-namespace calls it replaces *on the same ISA*, which
// is what lets the backends swap the per-sample loops for one fused
// call without changing a single trained float (the fused-vs-unfused
// model tests gate on exact equality).

/// out[c] = sum_r v[r] * m[r * cols + c]  (out = M^T v, M row-major).
/// Accumulation order per output element: rows in ascending order, one
/// rounding per step (FMA on vector ISAs) — exactly the order the old
/// zero-then-axpy-per-row composition produced.
void matvec_t(const float* m, std::size_t rows, std::size_t cols,
              const float* v, float* out) noexcept;

/// m[r] += (a * x[r]) * y for every row r (rank-1 update M += a x y^T).
/// The per-row coefficient a * x[r] is rounded to float once, then the
/// row update follows axpy's element order — identical to calling
/// axpy(a * x[r], y, row r) row by row.
void rank1_update(float* m, std::size_t rows, std::size_t cols, float a,
                  const float* x, const float* y) noexcept;

/// Fused square-matrix pair out_mv = M v, out_mtv = M^T v (M is n x n,
/// one pass over M instead of two). out_mv rows follow the canonical
/// dot() order; out_mtv columns accumulate rows in ascending order like
/// matvec_t — both outputs are bit-identical to separate dot_batch and
/// matvec_t calls on the same ISA. This is the OS-ELM "ph = P h,
/// hp = h P" pair, where P is square and h is shared, fused so each P
/// row is read once. v must alias neither output.
void matvec_both(const float* m, std::size_t n, const float* v,
                 float* out_mv, float* out_mtv) noexcept;

/// Fused rank-1 update + matvec for a square n x n matrix: for each row
/// r in ascending order, m[r] += (a * x[r]) * y (coefficient rounded
/// once, axpy element order), then out[r] = dot(m[r], v) in the
/// canonical order — bit-identical to rank1_update followed by a full
/// dot_batch, because each row's score depends only on that row's
/// update. This is OS-ELM's "P -= k ph hp^T; ph2 = P h" pair, fused so
/// each P row makes one trip through the cache instead of two.
void rank1_matvec(float* m, std::size_t n, float a, const float* x,
                  const float* y, const float* v, float* out) noexcept;

/// scores[i] = dot(rows[i], q) over a gather list of row pointers (the
/// scattered w_out_/beta rows of one training context). Per-row order
/// is the canonical dot() order, same as dot_batch.
void dot_batch_gather(const float* const* rows, std::size_t n,
                      std::size_t dims, const float* q,
                      float* scores) noexcept;

/// rows[i] += coeffs[i] * x for each gathered row. Element order per
/// row matches axpy. Duplicate row pointers are NOT supported (updates
/// could be lost under cross-row blocking); callers fall back to
/// sequential axpy calls when the sample list contains duplicates.
void axpy_gather(float* const* rows, const float* coeffs, const float* x,
                 std::size_t n, std::size_t dims) noexcept;

/// Fused SGNS gradient application over one (center, samples) group:
///   for i in [0, n): rows[i] += (neg_lr * g[i]) * h      (output rows)
///   h += neg_lr * sum_i g[i] * rows_pre[i]               (input row)
/// where rows_pre are the row values before this call. `hgrad` is a
/// dims-sized caller scratch (contents unspecified on return). The
/// float sequence matches the unfused reference exactly: h_grad
/// accumulates g[i] * row in ascending i before each row update, the
/// per-row coefficient neg_lr * g[i] is rounded once, and the final h
/// update is one axpy(neg_lr, h_grad, h). h must not alias any row
/// (w_in vs w_out — guaranteed by the model layout); duplicate row
/// pointers are NOT supported (see axpy_gather).
void sgns_apply(float* h, float* hgrad, float* const* rows, const float* g,
                float neg_lr, std::size_t n, std::size_t dims) noexcept;

// --- int8 kernels (dispatched, bit-exact across ISAs) -----------------------

/// sum_i int32(x[i]) * int32(y[i]).
[[nodiscard]] std::int32_t dot_i8(const std::int8_t* x, const std::int8_t* y,
                                  std::size_t n) noexcept;

/// out[i] = dot_i8(rows + i * dims, q) for i in [0, n).
void dot_i8_batch(const std::int8_t* rows, std::size_t n, std::size_t dims,
                  const std::int8_t* q, std::int32_t* out) noexcept;

// --- scalar reference (always available) ------------------------------------
// The exact pre-vectorization loops. The dispatched functions above
// resolve to these on Isa::kScalar; tests compare against them
// directly, whatever ISA is active.
namespace scalar {
[[nodiscard]] float dot(const float* x, const float* y,
                        std::size_t n) noexcept;
void axpy(float a, const float* x, float* y, std::size_t n) noexcept;
void scale(float a, float* x, std::size_t n) noexcept;
[[nodiscard]] double l2_norm(const float* x, std::size_t n) noexcept;
void dot_batch(const float* rows, std::size_t n, std::size_t dims,
               const float* q, float* scores) noexcept;
void matvec_t(const float* m, std::size_t rows, std::size_t cols,
              const float* v, float* out) noexcept;
void rank1_update(float* m, std::size_t rows, std::size_t cols, float a,
                  const float* x, const float* y) noexcept;
void matvec_both(const float* m, std::size_t n, const float* v,
                 float* out_mv, float* out_mtv) noexcept;
void rank1_matvec(float* m, std::size_t n, float a, const float* x,
                  const float* y, const float* v, float* out) noexcept;
void dot_batch_gather(const float* const* rows, std::size_t n,
                      std::size_t dims, const float* q,
                      float* scores) noexcept;
void axpy_gather(float* const* rows, const float* coeffs, const float* x,
                 std::size_t n, std::size_t dims) noexcept;
void sgns_apply(float* h, float* hgrad, float* const* rows, const float* g,
                float neg_lr, std::size_t n, std::size_t dims) noexcept;
[[nodiscard]] std::int32_t dot_i8(const std::int8_t* x, const std::int8_t* y,
                                  std::size_t n) noexcept;
void dot_i8_batch(const std::int8_t* rows, std::size_t n, std::size_t dims,
                  const std::int8_t* q, std::int32_t* out) noexcept;
}  // namespace scalar

// --- fused scan --------------------------------------------------------------

/// Fused rows-vs-query top-k scan: computes dot_batch block by block
/// into a stack buffer and hands (row_index, score) to `offer` — the
/// caller plugs in its TopKAccumulator (and its exclusion test) without
/// this header depending on serve/. Scores are identical to a full
/// dot_batch over [0, n).
template <typename Offer>
void dot_topk_scan(const float* rows, std::size_t n, std::size_t dims,
                   const float* q, Offer&& offer) {
  constexpr std::size_t kBlock = 128;
  float scores[kBlock];
  for (std::size_t base = 0; base < n; base += kBlock) {
    const std::size_t count = n - base < kBlock ? n - base : kBlock;
    dot_batch(rows + base * dims, count, dims, q, scores);
    for (std::size_t i = 0; i < count; ++i) offer(base + i, scores[i]);
  }
}

/// Int8 variant of the fused scan: offers raw int32 dot products; the
/// caller applies its scale factors.
template <typename Offer>
void dot_i8_topk_scan(const std::int8_t* rows, std::size_t n,
                      std::size_t dims, const std::int8_t* q,
                      Offer&& offer) {
  constexpr std::size_t kBlock = 128;
  std::int32_t acc[kBlock];
  for (std::size_t base = 0; base < n; base += kBlock) {
    const std::size_t count = n - base < kBlock ? n - base : kBlock;
    dot_i8_batch(rows + base * dims, count, dims, q, acc);
    for (std::size_t i = 0; i < count; ++i) offer(base + i, acc[i]);
  }
}

// --- span conveniences --------------------------------------------------------

[[nodiscard]] inline float dot(std::span<const float> x,
                               std::span<const float> y) noexcept {
  return dot(x.data(), y.data(), x.size());
}
[[nodiscard]] inline double l2_norm(std::span<const float> x) noexcept {
  return l2_norm(x.data(), x.size());
}

}  // namespace seqge::simd
