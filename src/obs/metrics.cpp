#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

namespace seqge::obs {

namespace {

bool env_enabled() {
  const char* v = std::getenv("SEQGE_OBS");
  if (v == nullptr) return true;
  return !(std::strcmp(v, "0") == 0 || std::strcmp(v, "off") == 0 ||
           std::strcmp(v, "OFF") == 0 || std::strcmp(v, "false") == 0 ||
           std::strcmp(v, "FALSE") == 0);
}

std::atomic<bool>& enabled_flag() noexcept {
  static std::atomic<bool> flag{env_enabled()};
  return flag;
}

}  // namespace

bool enabled() noexcept {
  return enabled_flag().load(std::memory_order_relaxed);
}

void set_enabled(bool on) noexcept {
  enabled_flag().store(on, std::memory_order_relaxed);
}

namespace detail {

std::size_t stripe_index() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t idx =
      next.fetch_add(1, std::memory_order_relaxed) & (kStripes - 1);
  return idx;
}

}  // namespace detail

std::vector<double> exponential_buckets(double start, double factor,
                                        std::size_t count) {
  if (start <= 0.0 || factor <= 1.0 || count == 0) {
    throw std::invalid_argument(
        "exponential_buckets: need start > 0, factor > 1, count > 0");
  }
  std::vector<double> out;
  out.reserve(count);
  double b = start;
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(b);
    b *= factor;
  }
  return out;
}

const std::vector<double>& default_latency_buckets_us() {
  static const std::vector<double> buckets =
      exponential_buckets(1.0, 2.0, 26);
  return buckets;
}

// --- Histogram --------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)) {
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (bounds_[i] <= bounds_[i - 1]) {
      throw std::invalid_argument(
          "Histogram: bounds must be strictly ascending");
    }
  }
  stripes_.reserve(detail::kStripes);
  for (std::size_t s = 0; s < detail::kStripes; ++s) {
    stripes_.push_back(std::make_unique<Stripe>(bounds_.size() + 1));
  }
}

std::size_t Histogram::bucket_of(double v) const noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  return static_cast<std::size_t>(it - bounds_.begin());
}

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t c = 0;
  for (const auto& s : stripes_) {
    c += s->count.load(std::memory_order_relaxed);
  }
  return c;
}

double Histogram::sum() const noexcept {
  double v = 0.0;
  for (const auto& s : stripes_) v += s->sum.load(std::memory_order_relaxed);
  return v;
}

double Histogram::mean() const noexcept {
  const std::uint64_t c = count();
  return c == 0 ? 0.0 : sum() / static_cast<double>(c);
}

double Histogram::max() const noexcept {
  double m = 0.0;
  for (const auto& s : stripes_) {
    m = std::max(m, s->max.load(std::memory_order_relaxed));
  }
  return m;
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.buckets.assign(bounds_.size() + 1, 0);
  for (const auto& s : stripes_) {
    for (std::size_t b = 0; b < snap.buckets.size(); ++b) {
      snap.buckets[b] += s->buckets[b].load(std::memory_order_relaxed);
    }
    snap.count += s->count.load(std::memory_order_relaxed);
    snap.sum += s->sum.load(std::memory_order_relaxed);
    snap.max = std::max(snap.max, s->max.load(std::memory_order_relaxed));
  }
  return snap;
}

double Histogram::percentile(double q) const noexcept {
  const HistogramSnapshot snap = snapshot();
  if (snap.count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(snap.count);
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < snap.buckets.size(); ++b) {
    const std::uint64_t in_bucket = snap.buckets[b];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cum + in_bucket) >= target) {
      // Overflow bucket: the only upper bound we know is the observed
      // max. Otherwise interpolate within [lower, upper].
      if (b == bounds_.size()) return snap.max;
      const double lower = b == 0 ? 0.0 : bounds_[b - 1];
      const double upper = bounds_[b];
      const double frac =
          (target - static_cast<double>(cum)) / static_cast<double>(in_bucket);
      // Clamp to the observed max so a percentile interpolated inside
      // the max's own bucket never exceeds it.
      return std::min(snap.max,
                      lower + (upper - lower) * std::clamp(frac, 0.0, 1.0));
    }
    cum += in_bucket;
  }
  return snap.max;
}

// --- Registry ---------------------------------------------------------------

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

std::string Registry::key_of(const std::string& name, const Labels& labels) {
  std::string key = name;
  for (const auto& [k, v] : labels) {
    key.push_back('\x1f');
    key += k;
    key.push_back('=');
    key += v;
  }
  return key;
}

Registry::Entry* Registry::get_or_create(MetricKind kind,
                                         const std::string& name,
                                         Labels labels,
                                         const std::string& help,
                                         std::vector<double> bounds) {
  const std::string key = key_of(name, labels);
  std::lock_guard lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    Entry& e = entries_[it->second];
    if (e.kind != kind) {
      throw std::logic_error("obs::Registry: metric '" + name +
                             "' re-registered under a different kind");
    }
    return &e;
  }
  Entry e;
  e.kind = kind;
  e.name = name;
  e.labels = std::move(labels);
  e.help = help;
  switch (kind) {
    case MetricKind::kCounter:
      e.counter = std::make_unique<Counter>();
      break;
    case MetricKind::kGauge:
      e.gauge = std::make_unique<Gauge>();
      break;
    case MetricKind::kHistogram:
      e.histogram = std::make_unique<Histogram>(std::move(bounds));
      break;
  }
  index_.emplace(key, entries_.size());
  entries_.push_back(std::move(e));
  return &entries_.back();
}

Counter* Registry::counter(const std::string& name, Labels labels,
                           const std::string& help) {
  return get_or_create(MetricKind::kCounter, name, std::move(labels), help,
                       {})
      ->counter.get();
}

Gauge* Registry::gauge(const std::string& name, Labels labels,
                       const std::string& help) {
  return get_or_create(MetricKind::kGauge, name, std::move(labels), help, {})
      ->gauge.get();
}

Histogram* Registry::histogram(const std::string& name,
                               std::vector<double> bounds, Labels labels,
                               const std::string& help) {
  return get_or_create(MetricKind::kHistogram, name, std::move(labels), help,
                       std::move(bounds))
      ->histogram.get();
}

const Counter* Registry::find_counter(const std::string& name,
                                      const Labels& labels) const {
  std::lock_guard lock(mutex_);
  const auto it = index_.find(key_of(name, labels));
  if (it == index_.end()) return nullptr;
  const Entry& e = entries_[it->second];
  return e.kind == MetricKind::kCounter ? e.counter.get() : nullptr;
}

const Histogram* Registry::find_histogram(const std::string& name,
                                          const Labels& labels) const {
  std::lock_guard lock(mutex_);
  const auto it = index_.find(key_of(name, labels));
  if (it == index_.end()) return nullptr;
  const Entry& e = entries_[it->second];
  return e.kind == MetricKind::kHistogram ? e.histogram.get() : nullptr;
}

std::size_t Registry::size() const {
  std::lock_guard lock(mutex_);
  return entries_.size();
}

std::vector<MetricSnapshot> Registry::collect() const {
  std::lock_guard lock(mutex_);
  std::vector<MetricSnapshot> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) {
    MetricSnapshot m;
    m.kind = e.kind;
    m.name = e.name;
    m.labels = e.labels;
    m.help = e.help;
    switch (e.kind) {
      case MetricKind::kCounter:
        m.counter_value = e.counter->value();
        break;
      case MetricKind::kGauge:
        m.gauge_value = e.gauge->value();
        break;
      case MetricKind::kHistogram:
        m.bounds = e.histogram->bounds();
        m.hist = e.histogram->snapshot();
        m.p50 = e.histogram->percentile(0.50);
        m.p95 = e.histogram->percentile(0.95);
        m.p99 = e.histogram->percentile(0.99);
        break;
    }
    out.push_back(std::move(m));
  }
  return out;
}

}  // namespace seqge::obs
