#pragma once
// RAII span tracing feeding per-stage wall/CPU-time histograms.
//
//   void train_batch(...) {
//     OBS_SPAN("train_batch");
//     ...
//   }
//
// Each OBS_SPAN site lazily registers two histograms in the global
// registry — seqge_span_wall_us{span="<name>"} and
// seqge_span_cpu_us{span="<name>"} — and caches the pointers in a
// function-local static, so the steady-state cost per scope is two
// clock reads on entry, two on exit, and two histogram observes. When
// obs::enabled() is false the scope takes one branch and does nothing
// (no clock reads, no allocation). Compiling with SEQGE_OBS_DISABLED
// expands OBS_SPAN to nothing at all.
//
// Spans nest: a thread-local depth counter tracks the current nesting
// level (current_span_depth()), which tests use to assert scopes
// balance. Histograms are per-site, not per-(site, depth) — nested
// time is attributed to both the inner and outer span, matching the
// usual tracing convention.

#include <cstdint>

#include "obs/metrics.hpp"

namespace seqge::obs {

/// Current thread's live span nesting depth (0 outside any span).
[[nodiscard]] int current_span_depth() noexcept;

/// This thread's CPU time in microseconds (CLOCK_THREAD_CPUTIME_ID).
[[nodiscard]] double thread_cpu_us() noexcept;

/// Monotonic wall clock in microseconds.
[[nodiscard]] double wall_us() noexcept;

namespace detail {

/// Per-OBS_SPAN-site cached histogram pair. Constructed on first pass
/// through the scope (thread-safe via the static-local guarantee);
/// `name` must be a string literal or otherwise outlive the site.
struct SpanSite {
  explicit SpanSite(const char* name);
  Histogram* wall;  ///< seqge_span_wall_us{span=name}
  Histogram* cpu;   ///< seqge_span_cpu_us{span=name}
};

}  // namespace detail

/// RAII scope recording wall + thread-CPU time into a SpanSite's
/// histograms. Use via OBS_SPAN, not directly.
class SpanScope {
 public:
  explicit SpanScope(detail::SpanSite& site) noexcept;
  ~SpanScope();
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  detail::SpanSite* site_;  ///< nullptr when obs was disabled at entry
  double wall_start_ = 0.0;
  double cpu_start_ = 0.0;
};

}  // namespace seqge::obs

#ifdef SEQGE_OBS_DISABLED
#define OBS_SPAN(name) \
  do {                 \
  } while (false)
#else
// Two-level concat so __LINE__ expands before pasting.
#define SEQGE_OBS_CONCAT_INNER(a, b) a##b
#define SEQGE_OBS_CONCAT(a, b) SEQGE_OBS_CONCAT_INNER(a, b)
#define OBS_SPAN(name)                                                 \
  static ::seqge::obs::detail::SpanSite SEQGE_OBS_CONCAT(obs_site_,    \
                                                         __LINE__){name}; \
  ::seqge::obs::SpanScope SEQGE_OBS_CONCAT(obs_scope_, __LINE__) {     \
    SEQGE_OBS_CONCAT(obs_site_, __LINE__)                              \
  }
#endif
