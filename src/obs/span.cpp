#include "obs/span.hpp"

#include <ctime>

namespace seqge::obs {

namespace {
thread_local int span_depth = 0;
}  // namespace

int current_span_depth() noexcept { return span_depth; }

double thread_cpu_us() noexcept {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) * 1e6 +
         static_cast<double>(ts.tv_nsec) * 1e-3;
}

double wall_us() noexcept {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) * 1e6 +
         static_cast<double>(ts.tv_nsec) * 1e-3;
}

namespace detail {

SpanSite::SpanSite(const char* name) {
  Registry& reg = Registry::global();
  const Labels labels{{"span", name}};
  wall = reg.histogram("seqge_span_wall_us", default_latency_buckets_us(),
                       labels, "Wall time per span scope (microseconds)");
  cpu = reg.histogram("seqge_span_cpu_us", default_latency_buckets_us(),
                      labels, "Thread CPU time per span scope (microseconds)");
}

}  // namespace detail

SpanScope::SpanScope(detail::SpanSite& site) noexcept
    : site_(enabled() ? &site : nullptr) {
  if (site_ == nullptr) return;
  ++span_depth;
  cpu_start_ = thread_cpu_us();
  wall_start_ = wall_us();
}

SpanScope::~SpanScope() {
  if (site_ == nullptr) return;
  const double wall_elapsed = wall_us() - wall_start_;
  const double cpu_elapsed = thread_cpu_us() - cpu_start_;
  --span_depth;
  site_->wall->observe(wall_elapsed);
  site_->cpu->observe(cpu_elapsed < 0.0 ? 0.0 : cpu_elapsed);
}

}  // namespace seqge::obs
