#include "obs/export.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/logging.hpp"

namespace seqge::obs {

namespace {

/// Deterministic number formatting: integers render without a decimal
/// point, everything else as shortest round-trippable decimal.
std::string fmt_number(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Trim to the shortest representation that round-trips.
  for (int prec = 1; prec < 17; ++prec) {
    char shorter[40];
    std::snprintf(shorter, sizeof(shorter), "%.*g", prec, v);
    if (std::strtod(shorter, nullptr) == v) return shorter;
  }
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string prom_labels(const Labels& labels) {
  if (labels.empty()) return {};
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out.push_back(',');
    first = false;
    out += k;
    out += "=\"";
    out += v;
    out += "\"";
  }
  out.push_back('}');
  return out;
}

/// Labels plus one extra pair (for histogram le="...").
std::string prom_labels_with(const Labels& labels, const std::string& key,
                             const std::string& value) {
  Labels all = labels;
  all.emplace_back(key, value);
  return prom_labels(all);
}

const char* kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "counter";
}

}  // namespace

std::string render_prometheus(const Registry& reg) {
  const std::vector<MetricSnapshot> metrics = reg.collect();
  std::ostringstream out;
  std::string last_name;
  for (const MetricSnapshot& m : metrics) {
    if (m.name != last_name) {
      if (!m.help.empty()) out << "# HELP " << m.name << ' ' << m.help << '\n';
      out << "# TYPE " << m.name << ' ' << kind_name(m.kind) << '\n';
      last_name = m.name;
    }
    switch (m.kind) {
      case MetricKind::kCounter:
        out << m.name << prom_labels(m.labels) << ' ' << m.counter_value
            << '\n';
        break;
      case MetricKind::kGauge:
        out << m.name << prom_labels(m.labels) << ' ' << m.gauge_value << '\n';
        break;
      case MetricKind::kHistogram: {
        std::uint64_t cum = 0;
        for (std::size_t b = 0; b < m.hist.buckets.size(); ++b) {
          cum += m.hist.buckets[b];
          const std::string le =
              b < m.bounds.size() ? fmt_number(m.bounds[b]) : "+Inf";
          out << m.name << "_bucket" << prom_labels_with(m.labels, "le", le)
              << ' ' << cum << '\n';
        }
        out << m.name << "_sum" << prom_labels(m.labels) << ' '
            << fmt_number(m.hist.sum) << '\n';
        out << m.name << "_count" << prom_labels(m.labels) << ' '
            << m.hist.count << '\n';
        break;
      }
    }
  }
  return out.str();
}

std::string render_json(const Registry& reg) {
  const std::vector<MetricSnapshot> metrics = reg.collect();
  std::ostringstream out;
  out << "{\n  \"schema\": \"seqge-metrics-v1\",\n  \"metrics\": [";
  bool first_metric = true;
  for (const MetricSnapshot& m : metrics) {
    out << (first_metric ? "\n" : ",\n");
    first_metric = false;
    out << "    {\"name\": \"" << json_escape(m.name) << "\", \"type\": \""
        << kind_name(m.kind) << "\", \"labels\": {";
    bool first_label = true;
    for (const auto& [k, v] : m.labels) {
      if (!first_label) out << ", ";
      first_label = false;
      out << '"' << json_escape(k) << "\": \"" << json_escape(v) << '"';
    }
    out << '}';
    switch (m.kind) {
      case MetricKind::kCounter:
        out << ", \"value\": " << m.counter_value;
        break;
      case MetricKind::kGauge:
        out << ", \"value\": " << m.gauge_value;
        break;
      case MetricKind::kHistogram: {
        out << ", \"count\": " << m.hist.count
            << ", \"sum\": " << fmt_number(m.hist.sum)
            << ", \"max\": " << fmt_number(m.hist.max)
            << ", \"p50\": " << fmt_number(m.p50)
            << ", \"p95\": " << fmt_number(m.p95)
            << ", \"p99\": " << fmt_number(m.p99) << ", \"bounds\": [";
        for (std::size_t b = 0; b < m.bounds.size(); ++b) {
          if (b != 0) out << ", ";
          out << fmt_number(m.bounds[b]);
        }
        out << "], \"buckets\": [";
        for (std::size_t b = 0; b < m.hist.buckets.size(); ++b) {
          if (b != 0) out << ", ";
          out << m.hist.buckets[b];
        }
        out << ']';
        break;
      }
    }
    out << '}';
  }
  out << "\n  ]\n}\n";
  return out.str();
}

bool write_metrics_json(const std::string& path) {
  std::ofstream f(path);
  if (!f) {
    SEQGE_LOG_ERROR << "metrics: cannot open " << path << " for writing";
    return false;
  }
  f << render_json(Registry::global());
  return static_cast<bool>(f);
}

PeriodicDumper::PeriodicDumper(std::string path,
                               std::chrono::milliseconds period)
    : path_(std::move(path)), period_(period) {
  thread_ = std::thread([this] {
    std::unique_lock lock(mu_);
    while (!stopping_) {
      if (cv_.wait_for(lock, period_, [this] { return stopping_; })) break;
      lock.unlock();
      write_metrics_json(path_);
      lock.lock();
    }
  });
}

PeriodicDumper::~PeriodicDumper() { stop(); }

void PeriodicDumper::stop() {
  {
    std::lock_guard lock(mu_);
    if (stopping_ && !thread_.joinable()) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  write_metrics_json(path_);
}

}  // namespace seqge::obs
