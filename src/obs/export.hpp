#pragma once
// Exporters for the metrics registry: Prometheus text exposition,
// an ordered JSON dump ("seqge-metrics-v1" schema, the format every
// bench/example writes for --metrics-out and scripts/check_metrics_json.sh
// validates), and a background PeriodicDumper for long-running servers.

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.hpp"

namespace seqge::obs {

/// Prometheus text exposition format: # HELP / # TYPE once per metric
/// name, histogram rendered as name_bucket{le="..."} cumulative series
/// plus name_sum / name_count. Deterministic (registration order).
[[nodiscard]] std::string render_prometheus(const Registry& reg);

/// JSON dump, schema "seqge-metrics-v1":
/// {
///   "schema": "seqge-metrics-v1",
///   "metrics": [
///     {"name": ..., "type": "counter",   "labels": {...}, "value": N},
///     {"name": ..., "type": "gauge",     "labels": {...}, "value": N},
///     {"name": ..., "type": "histogram", "labels": {...},
///      "count": N, "sum": X, "max": X, "p50": X, "p95": X, "p99": X,
///      "bounds": [...], "buckets": [...]}   // buckets = bounds+1 (+Inf)
///   ]
/// }
/// Registration-ordered; keys within an object are fixed-order, so the
/// output is byte-stable for a given registry state (golden-testable).
[[nodiscard]] std::string render_json(const Registry& reg);

/// render_json(Registry::global()) to `path`. Returns false (and logs)
/// when the file cannot be written.
bool write_metrics_json(const std::string& path);

/// Background thread dumping the global registry to `path` every
/// `period`; used by long-running servers so the latest metrics
/// survive a crash. Dumps once more on stop/destruction.
class PeriodicDumper {
 public:
  PeriodicDumper(std::string path, std::chrono::milliseconds period);
  ~PeriodicDumper();
  PeriodicDumper(const PeriodicDumper&) = delete;
  PeriodicDumper& operator=(const PeriodicDumper&) = delete;

  /// Idempotent; joins the thread and writes a final dump.
  void stop();

 private:
  std::string path_;
  std::chrono::milliseconds period_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::thread thread_;
};

}  // namespace seqge::obs
