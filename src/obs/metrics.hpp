#pragma once
// Low-overhead, thread-safe metrics primitives and the process-wide
// registry behind them — the unified observability layer the trainers,
// stores, query engines, and server all report through (before this,
// instrumentation was scattered ad-hoc counters with no common export
// path: the server's latency ring, ShardedEmbeddingStore::rows_copied,
// TrainStats fields).
//
// Primitives:
//  * Counter  — monotonic; add() is one relaxed fetch_add into a
//    cache-line-padded per-thread stripe, so concurrent hot paths never
//    contend on a shared line. value() sums the stripes (exact: adds
//    are atomic per stripe and never lost).
//  * Gauge    — settable signed level (queue depth, chain depth); one
//    atomic, relaxed.
//  * Histogram — fixed ascending bucket boundaries plus an implicit
//    +Inf overflow bucket; observe() is a bucket lookup plus relaxed
//    adds into the caller's stripe. percentile() interpolates linearly
//    within the bracketing bucket, so accuracy is bounded by bucket
//    width (tests compare against util/stats::percentile).
//
// Registry: name + labels -> metric, get-or-create under a mutex at
// registration time only; call sites cache the returned pointer (it is
// stable for the registry's lifetime), so steady-state recording never
// touches the registry lock. Registry::global() is the process-wide
// instance every built-in instrumentation site uses; tests construct
// their own.
//
// Kill switch: obs::enabled() is a process-wide flag initialised once
// from the SEQGE_OBS environment variable ("0" / "off" / "false"
// disables) and overridable with obs::set_enabled(). When disabled,
// every record path (Counter::add, Gauge ops, Histogram::observe, span
// scopes) returns after one predictable branch and performs no atomic
// write and no allocation — the "no-obs build" the bench overhead gate
// compares against. Compiling with SEQGE_OBS_DISABLED additionally
// expands OBS_SPAN to nothing (obs/span.hpp).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace seqge::obs {

/// Runtime kill switch. Initialised from SEQGE_OBS on first use
/// (default: enabled); set_enabled() overrides for benches and tests.
[[nodiscard]] bool enabled() noexcept;
void set_enabled(bool on) noexcept;

/// Scoped set_enabled for tests/benches: restores the previous state.
class EnabledGuard {
 public:
  explicit EnabledGuard(bool on) noexcept : prev_(enabled()) {
    set_enabled(on);
  }
  ~EnabledGuard() { set_enabled(prev_); }
  EnabledGuard(const EnabledGuard&) = delete;
  EnabledGuard& operator=(const EnabledGuard&) = delete;

 private:
  bool prev_;
};

namespace detail {

/// Stripes per sharded metric. Power of two; 8 covers the worker
/// counts in this codebase without bloating per-histogram memory.
inline constexpr std::size_t kStripes = 8;

/// This thread's stripe: threads round-robin over stripes in creation
/// order, so any fixed pool spreads evenly.
[[nodiscard]] std::size_t stripe_index() noexcept;

}  // namespace detail

/// Monotonic counter. add() never blocks and never contends across
/// stripes; value() is exact once the writing threads are quiescent
/// (and a live lower bound while they are not).
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t n = 1) noexcept {
    if (!enabled()) return;
    stripes_[detail::stripe_index()].v.fetch_add(n,
                                                 std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t sum = 0;
    for (const auto& s : stripes_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  struct alignas(64) Stripe {
    std::atomic<std::uint64_t> v{0};
  };
  Stripe stripes_[detail::kStripes];
};

/// Settable signed level (queue depth, delta-chain depth). One atomic:
/// gauges are written at event granularity, not per-row hot paths.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(std::int64_t v) noexcept {
    if (!enabled()) return;
    v_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t n = 1) noexcept {
    if (!enabled()) return;
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  void sub(std::int64_t n = 1) noexcept { add(-n); }

  [[nodiscard]] std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Prometheus-style exponential boundaries: count buckets starting at
/// `start`, each `factor` times the last (start, start*factor, ...).
[[nodiscard]] std::vector<double> exponential_buckets(double start,
                                                      double factor,
                                                      std::size_t count);

/// Default boundaries for microsecond latencies: 1 us .. ~33.5 s,
/// factor 2 (26 buckets + overflow).
[[nodiscard]] const std::vector<double>& default_latency_buckets_us();

/// Merged read-side view of a histogram (see Histogram::snapshot()).
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double max = 0.0;
  std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1 (+Inf last)
};

/// Fixed-boundary histogram, sharded like Counter. Designed for
/// non-negative samples (times, sizes); percentile() assumes the first
/// bucket spans [0, bounds[0]].
class Histogram {
 public:
  /// `bounds` are ascending inclusive upper bounds; an +Inf overflow
  /// bucket is implicit. Throws std::invalid_argument when not
  /// strictly ascending.
  explicit Histogram(std::vector<double> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void observe(double v) noexcept {
    if (!enabled()) return;
    Stripe& s = *stripes_[detail::stripe_index()];
    s.buckets[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    s.count.fetch_add(1, std::memory_order_relaxed);
    // fetch_add on atomic<double> (C++20) — relaxed accumulate.
    s.sum.fetch_add(v, std::memory_order_relaxed);
    double cur = s.max.load(std::memory_order_relaxed);
    while (v > cur &&
           !s.max.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  [[nodiscard]] std::uint64_t count() const noexcept;
  [[nodiscard]] double sum() const noexcept;
  [[nodiscard]] double mean() const noexcept;
  /// Largest observed sample (0 when empty).
  [[nodiscard]] double max() const noexcept;
  /// Merged per-bucket counts + totals in one pass over the stripes.
  [[nodiscard]] HistogramSnapshot snapshot() const;

  /// q in [0, 1], linear interpolation inside the bracketing bucket;
  /// samples in the overflow bucket resolve to max(). 0 when empty.
  [[nodiscard]] double percentile(double q) const noexcept;

 private:
  [[nodiscard]] std::size_t bucket_of(double v) const noexcept;

  // Stripes hold atomics (immovable), so they live behind unique_ptr;
  // the indirection is off the hot path's critical dependency chain.
  struct alignas(64) Stripe {
    explicit Stripe(std::size_t n) : buckets(n) {}
    std::vector<std::atomic<std::uint64_t>> buckets;
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> max{0.0};
  };

  std::vector<double> bounds_;
  std::vector<std::unique_ptr<Stripe>> stripes_;
};

/// Static label set rendered as {k="v",...} in the exporters. Kept as
/// an ordered vector so output is deterministic.
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class MetricKind { kCounter, kGauge, kHistogram };

/// One metric's identity + current value, as collected for export.
struct MetricSnapshot {
  MetricKind kind = MetricKind::kCounter;
  std::string name;
  Labels labels;
  std::string help;
  std::uint64_t counter_value = 0;
  std::int64_t gauge_value = 0;
  std::vector<double> bounds;  ///< histogram only
  HistogramSnapshot hist;      ///< histogram only
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
};

/// Name/label-keyed metric registry. Registration (get-or-create) takes
/// a mutex; returned pointers are stable for the registry's lifetime,
/// so hot paths register once and record lock-free ever after.
/// Re-registering the same (name, labels) returns the same metric;
/// re-registering under a different kind throws std::logic_error.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry every built-in instrumentation site
  /// records into and the exporters dump.
  static Registry& global();

  Counter* counter(const std::string& name, Labels labels = {},
                   const std::string& help = {});
  Gauge* gauge(const std::string& name, Labels labels = {},
               const std::string& help = {});
  /// `bounds` applies on first registration only (later calls with the
  /// same identity return the existing histogram unchanged).
  Histogram* histogram(const std::string& name, std::vector<double> bounds,
                       Labels labels = {}, const std::string& help = {});

  /// Find without creating (nullptr when absent or kind mismatch).
  [[nodiscard]] const Counter* find_counter(const std::string& name,
                                            const Labels& labels = {}) const;
  [[nodiscard]] const Histogram* find_histogram(
      const std::string& name, const Labels& labels = {}) const;

  [[nodiscard]] std::size_t size() const;
  /// Value snapshot of every metric, in registration order (stable, so
  /// exports diff cleanly run-to-run).
  [[nodiscard]] std::vector<MetricSnapshot> collect() const;

 private:
  struct Entry {
    MetricKind kind;
    std::string name;
    Labels labels;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  static std::string key_of(const std::string& name, const Labels& labels);
  Entry* get_or_create(MetricKind kind, const std::string& name,
                       Labels labels, const std::string& help,
                       std::vector<double> bounds);

  mutable std::mutex mutex_;
  std::vector<Entry> entries_;
  std::unordered_map<std::string, std::size_t> index_;
};

}  // namespace seqge::obs
