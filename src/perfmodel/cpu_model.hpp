#pragma once
// CPU latency models for the two platforms the paper compares against
// (ARM Cortex-A53 @1.2 GHz, Table 3; Intel i7-11700 @2.5 GHz, Table 4).
// Neither CPU is available here, so per-walk training latency is modeled
// as a quadratic in the embedding dimension fitted exactly through the
// paper's three measured points per (platform, model). The quadratic
// term captures the cache-pressure growth visible in the paper's own
// numbers (the original model's time grows super-linearly in N even
// though its op count is linear in N). Use predict_ms() to interpolate/
// extrapolate to other dims; op ratios come from op_counts.hpp.

#include <array>
#include <cstddef>
#include <string>

namespace seqge::perfmodel {

/// t(N) = c0 + c1*N + c2*N^2, fitted through three (N, t) anchors.
class QuadraticLatencyModel {
 public:
  /// Exact fit through (n0,t0), (n1,t1), (n2,t2); n's must be distinct.
  static QuadraticLatencyModel fit3(double n0, double t0, double n1,
                                    double t1, double n2, double t2);

  [[nodiscard]] double predict_ms(std::size_t dims) const noexcept {
    const auto n = static_cast<double>(dims);
    return c_[0] + c_[1] * n + c_[2] * n * n;
  }

  [[nodiscard]] const std::array<double, 3>& coefficients() const noexcept {
    return c_;
  }

 private:
  std::array<double, 3> c_{};
};

struct CpuLatencyModel {
  std::string platform;
  std::string model;  // "original" or "proposed"
  QuadraticLatencyModel latency;

  [[nodiscard]] double predict_ms(std::size_t dims) const noexcept {
    return latency.predict_ms(dims);
  }
};

/// Table 3 anchors (per-walk training time, ms, dims 32/64/96).
[[nodiscard]] CpuLatencyModel a53_original_model();
[[nodiscard]] CpuLatencyModel a53_proposed_model();

/// Table 4 anchors.
[[nodiscard]] CpuLatencyModel i7_original_model();
[[nodiscard]] CpuLatencyModel i7_proposed_model();

}  // namespace seqge::perfmodel
