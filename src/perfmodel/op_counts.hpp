#pragma once
// Exact per-walk operation counts for each training algorithm — the
// platform-independent half of the performance model. These formulas are
// audited against the instrumented implementations by tests
// (test_perfmodel.cpp), so the speedup analysis in Tables 3/4 rests on
// verified op counts rather than hand-waving.

#include <cstdint>

namespace seqge::perfmodel {

struct WalkShape {
  std::size_t dims = 32;              ///< N
  std::size_t window = 8;             ///< w
  std::size_t negative_samples = 10;  ///< ns
  std::size_t walk_length = 80;       ///< l

  [[nodiscard]] constexpr std::size_t contexts() const noexcept {
    return walk_length >= window ? walk_length - window + 1 : 0;
  }
  [[nodiscard]] constexpr std::size_t samples_per_context() const noexcept {
    return (window - 1) * (1 + negative_samples);
  }
};

struct OpCounts {
  std::uint64_t macs = 0;         ///< multiply-accumulate operations
  std::uint64_t row_touches = 0;  ///< random weight-row accesses (cache)
};

/// Original skip-gram + negative sampling + SGD. Per sample: score dot
/// (N) + h-grad axpy (N) + output-row axpy (N); per positive one final
/// input-row axpy (N).
[[nodiscard]] constexpr OpCounts sgns_walk_ops(
    const WalkShape& s) noexcept {
  const std::uint64_t n = s.dims;
  const std::uint64_t per_positive =
      (1 + s.negative_samples) * 3 * n + n;
  const std::uint64_t per_context = (s.window - 1) * per_positive;
  OpCounts out;
  out.macs = s.contexts() * per_context;
  out.row_touches =
      s.contexts() * ((s.window - 1) * (1 + s.negative_samples) + 1);
  return out;
}

/// Proposed model, Algorithm 1. Per context: H (N) + two P matvecs
/// (2N^2) + hph (N) + rank-1 P update (N^2) + ph2 recompute (N^2) +
/// per-sample dot+axpy (2N each).
[[nodiscard]] constexpr OpCounts oselm_walk_ops(
    const WalkShape& s) noexcept {
  const std::uint64_t n = s.dims;
  const std::uint64_t per_context =
      4 * n * n + 2 * n + 2 * n * s.samples_per_context();
  OpCounts out;
  out.macs = s.contexts() * per_context;
  out.row_touches = s.contexts() * (s.samples_per_context() + 1);
  return out;
}

/// Proposed model, Algorithm 2 (dataflow). One fewer N^2 matvec per
/// context (P_i H^T comes from the closed form ph*k); plus the per-walk
/// commit of delta-P (N^2) and the touched beta rows.
[[nodiscard]] constexpr OpCounts oselm_dataflow_walk_ops(
    const WalkShape& s) noexcept {
  const std::uint64_t n = s.dims;
  const std::uint64_t per_context =
      3 * n * n + 3 * n + 2 * n * s.samples_per_context();
  OpCounts out;
  out.macs = s.contexts() * per_context + n * n;  // + commit
  out.row_touches = s.contexts() * (s.samples_per_context() + 1) +
                    (s.walk_length + s.negative_samples);
  return out;
}

}  // namespace seqge::perfmodel
