#include "perfmodel/cpu_model.hpp"

#include <stdexcept>

namespace seqge::perfmodel {

QuadraticLatencyModel QuadraticLatencyModel::fit3(double n0, double t0,
                                                  double n1, double t1,
                                                  double n2, double t2) {
  if (n0 == n1 || n1 == n2 || n0 == n2) {
    throw std::invalid_argument("fit3: anchors must be distinct");
  }
  // Lagrange-to-monomial conversion for the 3-point interpolating
  // polynomial.
  const double d0 = (n0 - n1) * (n0 - n2);
  const double d1 = (n1 - n0) * (n1 - n2);
  const double d2 = (n2 - n0) * (n2 - n1);
  const double a0 = t0 / d0, a1 = t1 / d1, a2 = t2 / d2;

  QuadraticLatencyModel m;
  m.c_[2] = a0 + a1 + a2;
  m.c_[1] = -(a0 * (n1 + n2) + a1 * (n0 + n2) + a2 * (n0 + n1));
  m.c_[0] = a0 * n1 * n2 + a1 * n0 * n2 + a2 * n0 * n1;
  return m;
}

CpuLatencyModel a53_original_model() {
  return {"cortex-a53", "original",
          QuadraticLatencyModel::fit3(32, 35.357, 64, 100.291, 96, 202.175)};
}

CpuLatencyModel a53_proposed_model() {
  return {"cortex-a53", "proposed",
          QuadraticLatencyModel::fit3(32, 18.753, 64, 35.941, 96, 72.612)};
}

CpuLatencyModel i7_original_model() {
  return {"i7-11700", "original",
          QuadraticLatencyModel::fit3(32, 1.309, 64, 2.293, 96, 3.285)};
}

CpuLatencyModel i7_proposed_model() {
  return {"i7-11700", "proposed",
          QuadraticLatencyModel::fit3(32, 0.787, 64, 1.426, 96, 2.396)};
}

}  // namespace seqge::perfmodel
