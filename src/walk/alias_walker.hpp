#pragma once
// Fully-preprocessed second-order walker — the strategy of the original
// node2vec reference implementation: one alias table per *directed edge*
// (t -> u) over the biased transition distribution out of u. Sampling a
// step is O(1) with no rejection loop, at the cost of
// O(sum_u deg(u)^2)-ish preprocessing memory, which is why it only suits
// static graphs (and explodes on dense ones — the constructor enforces a
// budget). Completes the strategy triad:
//
//   on-the-fly  O(deg)/step   zero memory      dynamic graphs (paper PS)
//   rejection   O(1) exp.     O(E) memory      static, any density
//   alias/edge  O(1) exact    O(E*deg) memory  static, sparse
//
// All three draw from identical distributions (verified by tests).

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "sampling/alias_table.hpp"
#include "util/rng.hpp"
#include "walk/node2vec_walker.hpp"

namespace seqge {

class AliasNode2VecWalker {
 public:
  /// Preprocesses all per-edge tables. Throws std::length_error if the
  /// total table entries would exceed `max_table_entries` (default 64M
  /// entries ~ 1 GiB).
  AliasNode2VecWalker(const Graph& graph, Node2VecParams params,
                      std::size_t max_table_entries = 64ull << 20);

  [[nodiscard]] const Node2VecParams& params() const noexcept {
    return params_;
  }

  [[nodiscard]] std::vector<NodeId> walk(Rng& rng, NodeId start) const;
  void walk_into(Rng& rng, NodeId start, std::vector<NodeId>& out) const;

  /// One step from `cur` given the directed arc (prev -> cur) used to
  /// arrive there.
  [[nodiscard]] NodeId biased_step(Rng& rng, NodeId prev, NodeId cur) const;

  /// Total entries across all per-edge tables (memory introspection).
  [[nodiscard]] std::size_t table_entries() const noexcept {
    return table_entries_;
  }

 private:
  /// Index of the directed arc prev -> cur in CSR order.
  [[nodiscard]] std::size_t arc_index(NodeId prev, NodeId cur) const;

  const Graph& graph_;
  Node2VecParams params_;
  std::vector<std::size_t> arc_offsets_;   // per node: CSR base
  std::vector<AliasTable> edge_tables_;    // per directed arc
  std::vector<AliasTable> node_tables_;    // first step, per node
  std::size_t table_entries_ = 0;
};

}  // namespace seqge
