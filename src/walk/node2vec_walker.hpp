#pragma once
// Second-order biased random walks (node2vec, Grover & Leskovec, ref [1]).
// Given the previous node t and current node u, the unnormalized
// probability of stepping to neighbor x is w_ux * alpha_pq(t, x) with
//   alpha = 1/p  if x == t            (d_tx = 0, return)
//   alpha = 1    if (t, x) in E       (d_tx = 1, triangle)
//   alpha = 1/q  otherwise            (d_tx = 2, explore)
//
// Two sampling strategies are provided:
//  * OnTheFly — two-pass linear scan over the current adjacency list,
//    recomputing the bias per step. O(deg) per step, zero preprocessing,
//    works on mutable graphs — this is what the paper's host CPU does,
//    and what the "seq" scenario requires (the graph changes every step).
//  * Rejection — per-node alias tables over edge weights as the proposal
//    distribution, accept with alpha/alpha_max (KnightKing-style).
//    O(1) expected per step after O(E) preprocessing; static graphs only.
// Both draw from the exact same distribution (verified by tests).

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "graph/graph.hpp"
#include "sampling/alias_table.hpp"
#include "util/rng.hpp"

namespace seqge {

struct Node2VecParams {
  double p = 0.5;             ///< return parameter (Table 2: 0.5)
  double q = 1.0;             ///< in-out parameter (Table 2: 1.0)
  std::size_t walk_length = 80;   ///< l (Table 2: 80)
  std::size_t window = 8;         ///< w (Table 2: 8)

  void validate() const {
    if (p <= 0.0 || q <= 0.0) {
      throw std::invalid_argument("Node2VecParams: p, q must be > 0");
    }
    if (walk_length < 2 || window < 2 || window > walk_length) {
      throw std::invalid_argument(
          "Node2VecParams: need 2 <= window <= walk_length");
    }
  }
};

/// On-the-fly second-order walker; GraphT must provide num_nodes(),
/// degree(u), neighbors(u), weights(u), has_edge(u, v).
template <typename GraphT>
class Node2VecWalker {
 public:
  Node2VecWalker(const GraphT& graph, Node2VecParams params)
      : graph_(graph), params_(params) {
    params_.validate();
  }

  [[nodiscard]] const Node2VecParams& params() const noexcept {
    return params_;
  }

  /// Perform one walk of params().walk_length nodes starting at `start`.
  /// Stops early only if the walk reaches a node with no neighbors.
  [[nodiscard]] std::vector<NodeId> walk(Rng& rng, NodeId start) const {
    std::vector<NodeId> out;
    walk_into(rng, start, out);
    return out;
  }

  void walk_into(Rng& rng, NodeId start, std::vector<NodeId>& out) const {
    out.clear();
    out.reserve(params_.walk_length);
    out.push_back(start);
    if (graph_.degree(start) == 0) return;

    // First step: proportional to edge weights only (no prev node).
    NodeId cur = weighted_neighbor(rng, start);
    out.push_back(cur);

    while (out.size() < params_.walk_length) {
      if (graph_.degree(cur) == 0) break;
      const NodeId prev = out[out.size() - 2];
      cur = biased_step(rng, prev, cur);
      out.push_back(cur);
    }
  }

  /// One second-order step from `cur` given previous node `prev`.
  [[nodiscard]] NodeId biased_step(Rng& rng, NodeId prev,
                                   NodeId cur) const {
    const auto nbrs = graph_.neighbors(cur);
    const auto ws = graph_.weights(cur);
    const double inv_p = 1.0 / params_.p;
    const double inv_q = 1.0 / params_.q;

    double total = 0.0;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      total += ws[i] * bias(prev, nbrs[i], inv_p, inv_q);
    }
    double r = rng.uniform() * total;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      r -= ws[i] * bias(prev, nbrs[i], inv_p, inv_q);
      if (r <= 0.0) return nbrs[i];
    }
    return nbrs.back();  // FP round-off fallback
  }

 private:
  [[nodiscard]] double bias(NodeId prev, NodeId x, double inv_p,
                            double inv_q) const {
    if (x == prev) return inv_p;
    if (graph_.has_edge(prev, x)) return 1.0;
    return inv_q;
  }

  [[nodiscard]] NodeId weighted_neighbor(Rng& rng, NodeId u) const {
    const auto nbrs = graph_.neighbors(u);
    const auto ws = graph_.weights(u);
    double total = 0.0;
    for (float w : ws) total += w;
    double r = rng.uniform() * total;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      r -= ws[i];
      if (r <= 0.0) return nbrs[i];
    }
    return nbrs.back();
  }

  const GraphT& graph_;
  Node2VecParams params_;
};

/// Rejection-sampling walker over a static CSR graph. Proposal: alias
/// table over each node's edge weights; acceptance: alpha/alpha_max.
class RejectionNode2VecWalker {
 public:
  RejectionNode2VecWalker(const Graph& graph, Node2VecParams params);

  [[nodiscard]] const Node2VecParams& params() const noexcept {
    return params_;
  }

  [[nodiscard]] std::vector<NodeId> walk(Rng& rng, NodeId start) const;
  void walk_into(Rng& rng, NodeId start, std::vector<NodeId>& out) const;
  [[nodiscard]] NodeId biased_step(Rng& rng, NodeId prev, NodeId cur) const;

 private:
  const Graph& graph_;
  Node2VecParams params_;
  std::vector<AliasTable> proposal_;  // per node, over edge weights
  double alpha_max_ = 1.0;
  double inv_p_ = 1.0;
  double inv_q_ = 1.0;
};

}  // namespace seqge
