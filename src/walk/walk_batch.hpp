#pragma once
// WalkBatch: a packed, reusable buffer of random walks plus per-walk
// pre-sampled negatives and per-walk training RNG seeds — the unit of
// work flowing through the batched training pipeline (PS-side walk
// generation / negative pre-sampling feeding PL-side training, Fig. 4).
//
// Walks and negatives are stored contiguously with prefix-offset arrays,
// so a batch is two flat DMA-friendly buffers rather than a
// vector-of-vectors. Each walk carries the seed of its own training RNG
// stream: a walk's stochastic choices depend only on (base seed, walk
// id), never on which thread produced it or what was trained before —
// that is what makes single-threaded and pipelined runs bit-identical.

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace seqge {

/// Derive an independent RNG seed for (stream, index) from a base seed.
/// Two SplitMix64-style mixes keep nearby indices uncorrelated.
[[nodiscard]] constexpr std::uint64_t derive_seed(
    std::uint64_t base, std::uint64_t stream, std::uint64_t index) noexcept {
  std::uint64_t z = base ^ (0x9E3779B97F4A7C15ULL * (stream + 1));
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  z ^= 0xD1B54A32D192ED03ULL * (index + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Stream tags for derive_seed. Epoch e trains with kTrainStream + e so
/// every epoch resamples fresh negatives.
inline constexpr std::uint64_t kWalkSeedStream = 0x77616c6bULL;   // "walk"
inline constexpr std::uint64_t kTrainSeedStream = 0x747261696eULL;  // "train"
inline constexpr std::uint64_t kOrderSeedStream = 0x6f72646572ULL;  // "order"

class WalkBatch {
 public:
  /// Sequence number assigned by the producer; the consumer trains
  /// batches strictly in index order so results are schedule-independent.
  std::size_t index = 0;

  void clear() noexcept;
  void reserve(std::size_t walks, std::size_t nodes_per_walk,
               std::size_t negatives_per_walk);

  /// Append one walk. `negatives` may be empty (models then draw their
  /// own from the walk's seed); when present it must be the batch
  /// pre-sampled for NegativeMode::kPerWalk.
  void add_walk(std::span<const NodeId> walk,
                std::span<const NodeId> negatives, std::uint64_t train_seed);

  /// Drop all walks past the first `count` (early-stop truncation).
  void truncate(std::size_t count) noexcept;

  [[nodiscard]] std::size_t num_walks() const noexcept {
    return seeds_.size();
  }
  [[nodiscard]] bool empty() const noexcept { return seeds_.empty(); }

  [[nodiscard]] std::span<const NodeId> walk(std::size_t i) const noexcept {
    return {nodes_.data() + node_off_[i], node_off_[i + 1] - node_off_[i]};
  }
  [[nodiscard]] std::span<const NodeId> negatives(
      std::size_t i) const noexcept {
    return {negatives_.data() + neg_off_[i], neg_off_[i + 1] - neg_off_[i]};
  }
  [[nodiscard]] bool has_negatives(std::size_t i) const noexcept {
    return neg_off_[i + 1] > neg_off_[i];
  }
  [[nodiscard]] std::uint64_t train_seed(std::size_t i) const noexcept {
    return seeds_[i];
  }

  /// Total packed walk nodes across the batch.
  [[nodiscard]] std::size_t total_nodes() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] std::size_t total_contexts(std::size_t window) const noexcept;

 private:
  std::vector<NodeId> nodes_;          // all walks, concatenated
  std::vector<NodeId> negatives_;      // all negative sets, concatenated
  std::vector<std::uint32_t> node_off_{0};  // num_walks + 1 entries
  std::vector<std::uint32_t> neg_off_{0};   // num_walks + 1 entries
  std::vector<std::uint64_t> seeds_;   // per-walk training RNG seed
};

}  // namespace seqge
