#include "walk/alias_walker.hpp"

#include <algorithm>
#include <stdexcept>

namespace seqge {

AliasNode2VecWalker::AliasNode2VecWalker(const Graph& graph,
                                         Node2VecParams params,
                                         std::size_t max_table_entries)
    : graph_(graph), params_(params) {
  params_.validate();
  const std::size_t n = graph_.num_nodes();

  // Budget check before allocating anything big.
  std::size_t entries = 0;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : graph_.neighbors(u)) {
      entries += graph_.degree(v);
    }
  }
  if (entries > max_table_entries) {
    throw std::length_error(
        "AliasNode2VecWalker: per-edge tables would need " +
        std::to_string(entries) + " entries (budget " +
        std::to_string(max_table_entries) +
        "); use the rejection or on-the-fly walker");
  }
  table_entries_ = entries;

  arc_offsets_.assign(n + 1, 0);
  for (NodeId u = 0; u < n; ++u) {
    arc_offsets_[u + 1] = arc_offsets_[u] + graph_.degree(u);
  }

  node_tables_.resize(n);
  std::vector<double> w;
  for (NodeId u = 0; u < n; ++u) {
    const auto ws = graph_.weights(u);
    if (ws.empty()) continue;
    w.assign(ws.begin(), ws.end());
    node_tables_[u].build(w);
  }

  const double inv_p = 1.0 / params_.p;
  const double inv_q = 1.0 / params_.q;
  edge_tables_.resize(arc_offsets_[n]);
  for (NodeId t = 0; t < n; ++t) {
    const auto t_nbrs = graph_.neighbors(t);
    for (std::size_t i = 0; i < t_nbrs.size(); ++i) {
      const NodeId u = t_nbrs[i];
      const auto u_nbrs = graph_.neighbors(u);
      const auto u_ws = graph_.weights(u);
      if (u_nbrs.empty()) continue;
      w.resize(u_nbrs.size());
      for (std::size_t j = 0; j < u_nbrs.size(); ++j) {
        const NodeId x = u_nbrs[j];
        double alpha;
        if (x == t) {
          alpha = inv_p;
        } else if (graph_.has_edge(t, x)) {
          alpha = 1.0;
        } else {
          alpha = inv_q;
        }
        w[j] = u_ws[j] * alpha;
      }
      edge_tables_[arc_offsets_[t] + i].build(w);
    }
  }
}

std::size_t AliasNode2VecWalker::arc_index(NodeId prev, NodeId cur) const {
  const auto nbrs = graph_.neighbors(prev);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), cur);
  if (it == nbrs.end() || *it != cur) {
    throw std::invalid_argument("AliasNode2VecWalker: (prev, cur) not an edge");
  }
  return arc_offsets_[prev] +
         static_cast<std::size_t>(it - nbrs.begin());
}

NodeId AliasNode2VecWalker::biased_step(Rng& rng, NodeId prev,
                                        NodeId cur) const {
  const AliasTable& table = edge_tables_[arc_index(prev, cur)];
  return graph_.neighbors(cur)[table.sample(rng)];
}

std::vector<NodeId> AliasNode2VecWalker::walk(Rng& rng, NodeId start) const {
  std::vector<NodeId> out;
  walk_into(rng, start, out);
  return out;
}

void AliasNode2VecWalker::walk_into(Rng& rng, NodeId start,
                                    std::vector<NodeId>& out) const {
  out.clear();
  out.reserve(params_.walk_length);
  out.push_back(start);
  if (graph_.degree(start) == 0) return;

  NodeId cur = graph_.neighbors(start)[node_tables_[start].sample(rng)];
  out.push_back(cur);

  while (out.size() < params_.walk_length) {
    if (graph_.degree(cur) == 0) break;
    const NodeId prev = out[out.size() - 2];
    cur = biased_step(rng, prev, cur);
    out.push_back(cur);
  }
}

}  // namespace seqge
