#include "walk/node2vec_walker.hpp"

namespace seqge {

RejectionNode2VecWalker::RejectionNode2VecWalker(const Graph& graph,
                                                 Node2VecParams params)
    : graph_(graph), params_(params) {
  params_.validate();
  inv_p_ = 1.0 / params_.p;
  inv_q_ = 1.0 / params_.q;
  alpha_max_ = std::max({inv_p_, 1.0, inv_q_});

  proposal_.resize(graph_.num_nodes());
  std::vector<double> w;
  for (NodeId u = 0; u < graph_.num_nodes(); ++u) {
    const auto ws = graph_.weights(u);
    if (ws.empty()) continue;
    w.assign(ws.begin(), ws.end());
    proposal_[u].build(w);
  }
}

std::vector<NodeId> RejectionNode2VecWalker::walk(Rng& rng,
                                                  NodeId start) const {
  std::vector<NodeId> out;
  walk_into(rng, start, out);
  return out;
}

void RejectionNode2VecWalker::walk_into(Rng& rng, NodeId start,
                                        std::vector<NodeId>& out) const {
  out.clear();
  out.reserve(params_.walk_length);
  out.push_back(start);
  if (graph_.degree(start) == 0) return;

  NodeId cur = graph_.neighbors(start)[proposal_[start].sample(rng)];
  out.push_back(cur);

  while (out.size() < params_.walk_length) {
    if (graph_.degree(cur) == 0) break;
    const NodeId prev = out[out.size() - 2];
    cur = biased_step(rng, prev, cur);
    out.push_back(cur);
  }
}

NodeId RejectionNode2VecWalker::biased_step(Rng& rng, NodeId prev,
                                            NodeId cur) const {
  const auto nbrs = graph_.neighbors(cur);
  // Expected constant number of rounds: acceptance ratio is bounded
  // below by min(1/p, 1, 1/q) / alpha_max.
  for (;;) {
    const NodeId x = nbrs[proposal_[cur].sample(rng)];
    double alpha;
    if (x == prev) {
      alpha = inv_p_;
    } else if (graph_.has_edge(prev, x)) {
      alpha = 1.0;
    } else {
      alpha = inv_q_;
    }
    if (rng.uniform() * alpha_max_ < alpha) return x;
  }
}

}  // namespace seqge
