#include "walk/walk_batch.hpp"

#include "walk/corpus.hpp"

namespace seqge {

void WalkBatch::clear() noexcept {
  nodes_.clear();
  negatives_.clear();
  node_off_.assign(1, 0);
  neg_off_.assign(1, 0);
  seeds_.clear();
  index = 0;
}

void WalkBatch::reserve(std::size_t walks, std::size_t nodes_per_walk,
                        std::size_t negatives_per_walk) {
  nodes_.reserve(walks * nodes_per_walk);
  negatives_.reserve(walks * negatives_per_walk);
  node_off_.reserve(walks + 1);
  neg_off_.reserve(walks + 1);
  seeds_.reserve(walks);
}

void WalkBatch::add_walk(std::span<const NodeId> walk,
                         std::span<const NodeId> negatives,
                         std::uint64_t train_seed) {
  nodes_.insert(nodes_.end(), walk.begin(), walk.end());
  negatives_.insert(negatives_.end(), negatives.begin(), negatives.end());
  node_off_.push_back(static_cast<std::uint32_t>(nodes_.size()));
  neg_off_.push_back(static_cast<std::uint32_t>(negatives_.size()));
  seeds_.push_back(train_seed);
}

void WalkBatch::truncate(std::size_t count) noexcept {
  if (count >= num_walks()) return;
  node_off_.resize(count + 1);
  neg_off_.resize(count + 1);
  seeds_.resize(count);
  nodes_.resize(node_off_.back());
  negatives_.resize(neg_off_.back());
}

std::size_t WalkBatch::total_contexts(std::size_t window) const noexcept {
  std::size_t total = 0;
  for (std::size_t i = 0; i < num_walks(); ++i) {
    total += num_contexts(walk(i).size(), window);
  }
  return total;
}

}  // namespace seqge
