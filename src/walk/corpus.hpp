#pragma once
// Walk corpus and context windowing. A single random walk RW of length l
// is partitioned into sliding windows of `window` consecutive nodes; the
// first node of each window is the center, the remaining window-1 nodes
// are its positive samples (Fig. 1's NS(u)). With l = 80 and w = 8 this
// yields l - w + 1 = 73 contexts per walk — exactly the paper's "73
// iterations of the outermost loop" (Sec. 4.2).

#include <atomic>
#include <cstdint>
#include <functional>
#include <span>
#include <thread>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"
#include "walk/node2vec_walker.hpp"
#include "walk/walk_batch.hpp"

namespace seqge {

/// One training context: a center node and its positive samples.
struct WalkContext {
  NodeId center;
  std::span<const NodeId> positives;
};

/// Number of contexts a walk of `walk_len` nodes yields at window `w`.
[[nodiscard]] constexpr std::size_t num_contexts(std::size_t walk_len,
                                                 std::size_t w) noexcept {
  return walk_len >= w ? walk_len - w + 1 : 0;
}

/// Invoke `fn(context)` for every window of the walk. Walks shorter than
/// the window produce no contexts.
template <typename Fn>
void for_each_context(std::span<const NodeId> walk, std::size_t window,
                      Fn&& fn) {
  if (walk.size() < window) return;
  for (std::size_t i = 0; i + window <= walk.size(); ++i) {
    WalkContext ctx{walk[i], walk.subspan(i + 1, window - 1)};
    fn(ctx);
  }
}

/// A set of walks plus per-node appearance counts (the negative-sampling
/// frequency distribution of Sec. 3.1).
struct WalkCorpus {
  std::vector<std::vector<NodeId>> walks;
  std::vector<std::uint64_t> frequency;  // per node, over all walks

  [[nodiscard]] std::size_t total_contexts(std::size_t window) const {
    std::size_t total = 0;
    for (const auto& w : walks) total += num_contexts(w.size(), window);
    return total;
  }
};

/// Generate `walks_per_node` walks from every node using one RNG stream
/// per walk, derived from (seed, round, start): the corpus is identical
/// for any thread count, and walk generation parallelizes with OpenMP.
/// Use this on multi-core hosts; generate_corpus below matches the
/// reference implementation's single-stream behaviour.
template <typename GraphT>
[[nodiscard]] WalkCorpus generate_corpus_deterministic(
    const GraphT& graph, const Node2VecParams& params,
    std::size_t walks_per_node, std::uint64_t seed) {
  Node2VecWalker<GraphT> walker(graph, params);
  const std::size_t n = graph.num_nodes();
  const std::size_t total = n * walks_per_node;

  WalkCorpus corpus;
  corpus.frequency.assign(n, 0);
  corpus.walks.resize(total);

#pragma omp parallel for schedule(dynamic, 64)
  for (std::size_t w = 0; w < total; ++w) {
    const std::size_t round = w / n;
    const auto start = static_cast<NodeId>(w % n);
    SplitMix64 sm(seed ^ (0x9E3779B97F4A7C15ULL * (round + 1)) ^
                  (0xD1B54A32D192ED03ULL * (start + 1)));
    Rng walk_rng(sm.next());
    walker.walk_into(walk_rng, start, corpus.walks[w]);
  }
  for (const auto& walk : corpus.walks) {
    for (NodeId v : walk) ++corpus.frequency[v];
  }
  return corpus;
}

/// Per-round shuffled start order derived from `base_seed` alone:
/// round r's permutation of the node ids, identical for any thread
/// count. Walk w of the corpus starts at order (w / n)'s entry w % n.
template <typename GraphT>
[[nodiscard]] std::vector<NodeId> pipelined_start_order(
    const GraphT& graph, std::size_t walks_per_node,
    std::uint64_t base_seed) {
  const std::size_t n = graph.num_nodes();
  std::vector<NodeId> starts(n * walks_per_node);
  for (std::size_t round = 0; round < walks_per_node; ++round) {
    const std::span<NodeId> order(starts.data() + round * n, n);
    for (std::size_t i = 0; i < n; ++i) order[i] = static_cast<NodeId>(i);
    Rng rng(derive_seed(base_seed, kOrderSeedStream, round));
    for (std::size_t i = n; i > 1; --i) {
      std::swap(order[i - 1], order[rng.bounded(i)]);
    }
  }
  return starts;
}

/// Generate `walks_per_node` walks per node with one RNG stream per walk
/// derived from (base_seed, walk id), fanned out over `num_threads`
/// std::threads (0 = run inline on the calling thread). The corpus —
/// walk contents AND order — is bit-identical for every thread count;
/// this is the walk-generation stage of the pipelined trainer.
template <typename GraphT>
[[nodiscard]] WalkCorpus generate_corpus_pipelined(
    const GraphT& graph, const Node2VecParams& params,
    std::size_t walks_per_node, std::uint64_t base_seed,
    std::size_t num_threads) {
  const Node2VecWalker<GraphT> walker(graph, params);
  const std::size_t n = graph.num_nodes();
  const std::size_t total = n * walks_per_node;
  const std::vector<NodeId> starts =
      pipelined_start_order(graph, walks_per_node, base_seed);

  WalkCorpus corpus;
  corpus.frequency.assign(n, 0);
  corpus.walks.resize(total);

  auto generate_range = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t w = lo; w < hi; ++w) {
      Rng walk_rng(derive_seed(base_seed, kWalkSeedStream, w));
      walker.walk_into(walk_rng, starts[w], corpus.walks[w]);
    }
  };

  if (num_threads <= 1) {
    generate_range(0, total);
  } else {
    // Chunked work stealing: cheap, deterministic output (slot per walk).
    std::atomic<std::size_t> next{0};
    constexpr std::size_t kChunk = 32;
    std::vector<std::thread> threads;
    threads.reserve(num_threads);
    for (std::size_t t = 0; t < num_threads; ++t) {
      threads.emplace_back([&] {
        for (;;) {
          const std::size_t lo = next.fetch_add(kChunk);
          if (lo >= total) break;
          generate_range(lo, std::min(total, lo + kChunk));
        }
      });
    }
    for (auto& th : threads) th.join();
  }

  for (const auto& walk : corpus.walks) {
    for (NodeId v : walk) ++corpus.frequency[v];
  }
  return corpus;
}

/// Generate `walks_per_node` walks from every node of the graph
/// (paper: r = 10). Start nodes are visited in shuffled order per round,
/// as in the reference node2vec implementation.
template <typename GraphT>
[[nodiscard]] WalkCorpus generate_corpus(const GraphT& graph,
                                         const Node2VecParams& params,
                                         std::size_t walks_per_node,
                                         Rng& rng) {
  Node2VecWalker<GraphT> walker(graph, params);
  const std::size_t n = graph.num_nodes();

  WalkCorpus corpus;
  corpus.frequency.assign(n, 0);
  corpus.walks.reserve(n * walks_per_node);

  std::vector<NodeId> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = static_cast<NodeId>(i);

  for (std::size_t round = 0; round < walks_per_node; ++round) {
    for (std::size_t i = n; i > 1; --i) {
      std::swap(order[i - 1], order[rng.bounded(i)]);
    }
    for (NodeId start : order) {
      std::vector<NodeId> walk = walker.walk(rng, start);
      for (NodeId v : walk) ++corpus.frequency[v];
      corpus.walks.push_back(std::move(walk));
    }
  }
  return corpus;
}

}  // namespace seqge
