#include "fpga/energy_model.hpp"

#include <stdexcept>

namespace seqge::fpga {

PowerProfile EnergyModel::pl_power(const ResourceUsage& usage,
                                   const DeviceSpec& device) const {
  const double dsp_frac = usage.dsp_pct(device) / 100.0;
  const double bram_frac = usage.bram_pct(device) / 100.0;
  const double logic_frac =
      0.5 * (usage.ff_pct(device) + usage.lut_pct(device)) / 100.0;
  const double watts = coeffs_.static_w + coeffs_.dsp_w * dsp_frac +
                       coeffs_.bram_w * bram_frac +
                       coeffs_.logic_w * logic_frac;
  return {"zcu104-pl", watts};
}

EnergyReport EnergyModel::report(const PowerProfile& power,
                                 double ms_per_walk) {
  if (ms_per_walk <= 0.0 || power.watts <= 0.0) {
    throw std::invalid_argument("EnergyModel::report: non-positive input");
  }
  EnergyReport r;
  r.platform = power.platform;
  r.ms_per_walk = ms_per_walk;
  r.watts = power.watts;
  r.millijoules_per_walk = power.watts * ms_per_walk;  // W * ms = mJ
  r.walks_per_joule = 1000.0 / r.millijoules_per_walk;
  return r;
}

}  // namespace seqge::fpga
