#include "fpga/accelerator.hpp"

#include <stdexcept>

namespace seqge::fpga {

Accelerator::Accelerator(std::size_t num_nodes,
                         const AcceleratorConfig& cfg, Rng& rng)
    : cfg_(cfg),
      num_nodes_(num_nodes),
      core_(cfg),
      perf_(cfg),
      dram_beta_(num_nodes * cfg.dims),
      slot_of_(num_nodes, -1) {
  cfg_.validate();
  // Same init distribution as the CPU models, quantized to Q8.24.
  const double r = 0.5 / static_cast<double>(cfg_.dims);
  for (auto& v : dram_beta_) {
    v = CoreFixed::from_double(rng.uniform(-r, r));
  }
  // P = p0 * I lives in BRAM for the lifetime of the training session.
  std::vector<CoreFixed> p(cfg_.dims * cfg_.dims);
  for (std::size_t i = 0; i < cfg_.dims; ++i) {
    p[i * cfg_.dims + i] = CoreFixed::from_double(cfg_.p0);
  }
  core_.load_p(p);
}

std::uint32_t Accelerator::slot_for(NodeId node) {
  if (slot_of_[node] >= 0) return static_cast<std::uint32_t>(slot_of_[node]);
  const auto slot = static_cast<std::uint32_t>(slot_nodes_.size());
  if (slot >= cfg_.max_slots()) {
    throw std::runtime_error("Accelerator: BRAM slot overflow");
  }
  slot_of_[node] = static_cast<std::int32_t>(slot);
  slot_nodes_.push_back(node);
  return slot;
}

void Accelerator::release_slots() {
  for (NodeId node : slot_nodes_) slot_of_[node] = -1;
  slot_nodes_.clear();
}

double Accelerator::train_walk(std::span<const NodeId> walk,
                               std::size_t window,
                               const NegativeSampler& sampler,
                               std::size_t ns, NegativeMode /*mode*/,
                               Rng& rng) {
  if (walk.size() < window) return 0.0;
  if (window != cfg_.window) {
    throw std::invalid_argument("Accelerator: window != configured window");
  }

  // PS side: pre-sample one shared negative set for the walk (Sec. 3.2).
  sampler.sample_batch(rng, ns, walk[0], negatives_);

  // Slot assignment. Negatives that also appear in the walk share the
  // walk node's slot so their deferred updates accumulate into one row.
  walk_slots_.clear();
  for (NodeId v : walk) walk_slots_.push_back(slot_for(v));
  neg_slots_.clear();
  for (NodeId v : negatives_) neg_slots_.push_back(slot_for(v));

  // DMA-in: gather the touched beta rows from DRAM into BRAM slots.
  for (std::size_t s = 0; s < slot_nodes_.size(); ++s) {
    const NodeId node = slot_nodes_[s];
    core_.load_beta_slot(
        s, {dram_beta_.data() + static_cast<std::size_t>(node) * cfg_.dims,
            cfg_.dims});
  }

  // PL side: run Algorithm 2 bit-accurately.
  const double sq_err = core_.run_walk(walk_slots_, neg_slots_);

  // DMA-out: scatter updated rows back to DRAM.
  for (std::size_t s = 0; s < slot_nodes_.size(); ++s) {
    const NodeId node = slot_nodes_[s];
    auto src = core_.beta_slot(s);
    std::copy(src.begin(), src.end(),
              dram_beta_.begin() + static_cast<std::size_t>(node) * cfg_.dims);
  }

  // Simulated time from the cycle/DMA models (full-length walks match
  // the calibrated Tables 3/4 point; short walks scale by context and
  // slot counts).
  last_timing_ = perf_.walk_timing(
      walk.size() >= window ? walk.size() - window + 1 : 0,
      slot_nodes_.size());
  simulated_us_ += last_timing_.total_us;
  ++walks_;

  release_slots();
  return sq_err;
}

MatrixF Accelerator::extract_embedding() const {
  MatrixF emb(num_nodes_, cfg_.dims);
  const auto mu = static_cast<float>(cfg_.mu);
  for (std::size_t v = 0; v < num_nodes_; ++v) {
    auto dst = emb.row(v);
    const CoreFixed* src = dram_beta_.data() + v * cfg_.dims;
    for (std::size_t d = 0; d < cfg_.dims; ++d) {
      dst[d] = mu * static_cast<float>(src[d].to_double());
    }
  }
  return emb;
}

}  // namespace seqge::fpga
