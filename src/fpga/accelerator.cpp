#include "fpga/accelerator.hpp"

#include <stdexcept>

#include "walk/walk_batch.hpp"

namespace seqge::fpga {

Accelerator::Accelerator(std::size_t num_nodes,
                         const AcceleratorConfig& cfg, Rng& rng)
    : cfg_(cfg),
      num_nodes_(num_nodes),
      core_(cfg),
      perf_(cfg),
      dram_beta_(num_nodes * cfg.dims),
      slot_of_(num_nodes, -1) {
  cfg_.validate();
  // Same init distribution as the CPU models, quantized to Q8.24.
  const double r = 0.5 / static_cast<double>(cfg_.dims);
  for (auto& v : dram_beta_) {
    v = CoreFixed::from_double(rng.uniform(-r, r));
  }
  // P = p0 * I lives in BRAM for the lifetime of the training session.
  std::vector<CoreFixed> p(cfg_.dims * cfg_.dims);
  for (std::size_t i = 0; i < cfg_.dims; ++i) {
    p[i * cfg_.dims + i] = CoreFixed::from_double(cfg_.p0);
  }
  core_.load_p(p);
}

std::uint32_t Accelerator::slot_for(NodeId node) {
  if (slot_of_[node] >= 0) return static_cast<std::uint32_t>(slot_of_[node]);
  const auto slot = static_cast<std::uint32_t>(slot_nodes_.size());
  if (slot >= cfg_.max_slots()) {
    throw std::runtime_error("Accelerator: BRAM slot overflow");
  }
  slot_of_[node] = static_cast<std::int32_t>(slot);
  slot_nodes_.push_back(node);
  return slot;
}

void Accelerator::release_slots() {
  for (NodeId node : slot_nodes_) slot_of_[node] = -1;
  slot_nodes_.clear();
}

Accelerator::WalkRun Accelerator::run_one_walk(
    std::span<const NodeId> walk, std::span<const NodeId> negatives) {
  // Slot assignment. Negatives that also appear in the walk share the
  // walk node's slot so their deferred updates accumulate into one row.
  walk_slots_.clear();
  for (NodeId v : walk) walk_slots_.push_back(slot_for(v));
  neg_slots_.clear();
  for (NodeId v : negatives) neg_slots_.push_back(slot_for(v));

  // DMA-in: gather the touched beta rows from DRAM into BRAM slots.
  for (std::size_t s = 0; s < slot_nodes_.size(); ++s) {
    const NodeId node = slot_nodes_[s];
    core_.load_beta_slot(
        s, {dram_beta_.data() + static_cast<std::size_t>(node) * cfg_.dims,
            cfg_.dims});
  }

  // PL side: run Algorithm 2 bit-accurately.
  const double sq_err = core_.run_walk(walk_slots_, neg_slots_);

  // DMA-out: scatter updated rows back to DRAM.
  for (std::size_t s = 0; s < slot_nodes_.size(); ++s) {
    const NodeId node = slot_nodes_[s];
    auto src = core_.beta_slot(s);
    std::copy(src.begin(), src.end(),
              dram_beta_.begin() + static_cast<std::size_t>(node) * cfg_.dims);
  }
  const WalkRun run{sq_err, slot_nodes_.size()};
  release_slots();
  return run;
}

double Accelerator::train_walk(std::span<const NodeId> walk,
                               std::size_t window,
                               const NegativeSampler& sampler,
                               std::size_t ns, NegativeMode /*mode*/,
                               Rng& rng) {
  if (walk.size() < window) return 0.0;
  if (window != cfg_.window) {
    throw std::invalid_argument("Accelerator: window != configured window");
  }

  // PS side: pre-sample one shared negative set for the walk (Sec. 3.2).
  sampler.sample_batch(rng, ns, walk[0], negatives_);

  const WalkRun run = run_one_walk(walk, negatives_);

  // Simulated time from the cycle/DMA models (full-length walks match
  // the calibrated Tables 3/4 point; short walks scale by context and
  // slot counts).
  last_timing_ =
      perf_.walk_timing(walk.size() - window + 1, run.distinct_slots);
  simulated_us_ += last_timing_.total_us;
  ++walks_;
  return run.sq_err;
}

double Accelerator::train_batch(const WalkBatch& batch, std::size_t window,
                                const NegativeSampler& sampler,
                                std::size_t ns, NegativeMode /*mode*/) {
  if (window != cfg_.window) {
    throw std::invalid_argument("Accelerator: window != configured window");
  }

  // PS side, pass 1: materialize every walk's shared negatives — the
  // batch's pre-sampled set when present, otherwise drawn from the
  // walk's own seed stream exactly as train_walk would.
  batch_negatives_.clear();
  batch_neg_off_.assign(1, 0);
  for (std::size_t i = 0; i < batch.num_walks(); ++i) {
    const auto walk = batch.walk(i);
    if (walk.size() >= window) {
      if (batch.has_negatives(i)) {
        const auto negs = batch.negatives(i);
        batch_negatives_.insert(batch_negatives_.end(), negs.begin(),
                                negs.end());
      } else {
        Rng rng(batch.train_seed(i));
        sampler.sample_batch(rng, ns, walk[0], negatives_);
        batch_negatives_.insert(batch_negatives_.end(), negatives_.begin(),
                                negatives_.end());
      }
    }
    batch_neg_off_.push_back(
        static_cast<std::uint32_t>(batch_negatives_.size()));
  }

  // Pass 2: DMA accounting. BRAM holds at most max_slots() beta rows,
  // so the batch streams through it in burst groups — maximal runs of
  // consecutive walks whose *union* of touched rows still fits the
  // BRAM. Rows shared within a group transfer once per direction; a
  // row needed again in a later group is re-fetched, exactly as the
  // capacity-limited hardware would have to.
  struct BurstGroup {
    std::size_t contexts = 0;
    std::size_t id_words = 0;
    std::size_t walks = 0;
    std::size_t distinct = 0;
  };
  std::vector<BurstGroup> groups;
  BurstGroup cur;
  const std::size_t cap = cfg_.max_slots();
  auto mark = [&](NodeId v) {
    if (slot_of_[v] < 0) {
      slot_of_[v] = 0;
      slot_nodes_.push_back(v);
    }
  };
  std::size_t effective_walks = 0;
  for (std::size_t i = 0; i < batch.num_walks(); ++i) {
    const auto walk = batch.walk(i);
    if (walk.size() < window) continue;
    ++effective_walks;
    const std::span<const NodeId> negs{
        batch_negatives_.data() + batch_neg_off_[i],
        batch_neg_off_[i + 1] - batch_neg_off_[i]};

    const std::size_t checkpoint = slot_nodes_.size();
    for (NodeId v : walk) mark(v);
    for (NodeId v : negs) mark(v);
    if (cur.walks > 0 && slot_nodes_.size() > cap) {
      // This walk overflows the group's BRAM residency: unwind its
      // marks, close the group, and start a fresh one with this walk.
      while (slot_nodes_.size() > checkpoint) {
        slot_of_[slot_nodes_.back()] = -1;
        slot_nodes_.pop_back();
      }
      cur.distinct = slot_nodes_.size();
      groups.push_back(cur);
      cur = {};
      release_slots();
      for (NodeId v : walk) mark(v);
      for (NodeId v : negs) mark(v);
    }
    ++cur.walks;
    cur.contexts += walk.size() - window + 1;
    cur.id_words += walk.size() + negs.size();
  }
  if (cur.walks > 0) {
    cur.distinct = slot_nodes_.size();
    groups.push_back(cur);
  }
  release_slots();

  // Pass 3: run each walk through the core — same per-walk commit order
  // as the unbatched path, so results are bit-identical.
  double sq_err = 0.0;
  for (std::size_t i = 0; i < batch.num_walks(); ++i) {
    const auto walk = batch.walk(i);
    if (walk.size() < window) continue;
    const std::span<const NodeId> negs{
        batch_negatives_.data() + batch_neg_off_[i],
        batch_neg_off_[i + 1] - batch_neg_off_[i]};
    sq_err += run_one_walk(walk, negs).sq_err;
  }

  if (!groups.empty()) {
    // One descriptor chain + completion interrupt for the whole batch:
    // the per-walk control overhead is charged once, on the first group.
    WalkTiming total{};
    for (std::size_t g = 0; g < groups.size(); ++g) {
      const WalkTiming t =
          perf_.batch_timing(groups[g].contexts, groups[g].distinct,
                             groups[g].id_words, /*include_overhead=*/g == 0);
      total.dma_in_us += t.dma_in_us;
      total.compute_us += t.compute_us;
      total.dma_out_us += t.dma_out_us;
      total.overhead_us += t.overhead_us;
      total.total_us += t.total_us;
      total.context_cycles = t.context_cycles;
      total.total_cycles += t.total_cycles;
      total.bytes_in += t.bytes_in;
      total.bytes_out += t.bytes_out;
    }
    last_timing_ = total;
    simulated_us_ += total.total_us;
    walks_ += effective_walks;
  }
  return sq_err;
}

MatrixF Accelerator::beta_as_float() const {
  MatrixF beta(num_nodes_, cfg_.dims);
  for (std::size_t v = 0; v < num_nodes_; ++v) {
    auto dst = beta.row(v);
    const CoreFixed* src = dram_beta_.data() + v * cfg_.dims;
    for (std::size_t d = 0; d < cfg_.dims; ++d) {
      dst[d] = static_cast<float>(src[d].to_double());
    }
  }
  return beta;
}

void Accelerator::load_beta(const MatrixF& beta_t) {
  if (beta_t.rows() != num_nodes_ || beta_t.cols() != cfg_.dims) {
    throw std::invalid_argument("Accelerator::load_beta: shape mismatch");
  }
  for (std::size_t v = 0; v < num_nodes_; ++v) {
    const auto src = beta_t.row(v);
    CoreFixed* dst = dram_beta_.data() + v * cfg_.dims;
    for (std::size_t d = 0; d < cfg_.dims; ++d) {
      dst[d] = CoreFixed::from_double(static_cast<double>(src[d]));
    }
  }
}

MatrixF Accelerator::extract_embedding() const {
  MatrixF emb(num_nodes_, cfg_.dims);
  const auto mu = static_cast<float>(cfg_.mu);
  for (std::size_t v = 0; v < num_nodes_; ++v) {
    auto dst = emb.row(v);
    const CoreFixed* src = dram_beta_.data() + v * cfg_.dims;
    for (std::size_t d = 0; d < cfg_.dims; ++d) {
      dst[d] = mu * static_cast<float>(src[d].to_double());
    }
  }
  return emb;
}

void Accelerator::extract_rows(std::span<const NodeId> nodes,
                               MatrixF& out) const {
  const auto mu = static_cast<float>(cfg_.mu);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    auto dst = out.row(i);
    const CoreFixed* src =
        dram_beta_.data() + static_cast<std::size_t>(nodes[i]) * cfg_.dims;
    for (std::size_t d = 0; d < cfg_.dims; ++d) {
      dst[d] = mu * static_cast<float>(src[d].to_double());
    }
  }
}

}  // namespace seqge::fpga
