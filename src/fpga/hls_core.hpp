#pragma once
// Bit-accurate functional model of the PL training core ("Core" in
// Fig. 4). Executes Algorithm 2 in Q8.24 fixed point (fixed::CoreFixed)
// with wide accumulators for dot products, mirroring an HLS
// implementation's DSP48 MAC chains. The host (Accelerator) maps node
// ids to BRAM slots; the core only sees slot indices, like the real
// hardware.
//
// Stage structure per context (Algorithm 2):
//   Stage 1: H = mu * beta[center];  ph = P H^T;  hp = H P
//   Stage 2: outer = ph x hp;        hph = H P H^T
//   Stage 3: errors e_s = t_s - H . beta[s] for the window's samples
//   Stage 4: k = 1/(1+hph); dP -= outer*k; dBeta[s] += (ph*k) * e_s
// After the walk: P += dP; beta[slot] += dBeta[slot].

#include <cstdint>
#include <span>
#include <vector>

#include "fixed/fixed_point.hpp"
#include "fpga/config.hpp"

namespace seqge::fpga {

using fixed::CoreAcc;
using fixed::CoreFixed;

class HlsCore {
 public:
  explicit HlsCore(const AcceleratorConfig& cfg);

  [[nodiscard]] const AcceleratorConfig& config() const noexcept {
    return cfg_;
  }

  // --- BRAM access (host DMA side) --------------------------------------
  void load_p(std::span<const CoreFixed> p);               // N*N entries
  [[nodiscard]] std::span<const CoreFixed> p() const noexcept {
    return p_;
  }
  void load_beta_slot(std::size_t slot, std::span<const CoreFixed> row);
  [[nodiscard]] std::span<const CoreFixed> beta_slot(
      std::size_t slot) const;

  // --- execution ---------------------------------------------------------
  /// Run Algorithm 2 over one walk given as slot indices (walk_slots has
  /// up to walk_length entries; negative_slots has ns entries). Returns
  /// the summed squared sample error (double, monitoring only).
  double run_walk(std::span<const std::uint32_t> walk_slots,
                  std::span<const std::uint32_t> negative_slots);

  /// Fixed-point MAC operations executed so far (feeds the perf model's
  /// op-count audit).
  [[nodiscard]] std::uint64_t mac_count() const noexcept {
    return mac_count_;
  }
  [[nodiscard]] std::uint64_t contexts_processed() const noexcept {
    return contexts_;
  }

 private:
  [[nodiscard]] std::span<CoreFixed> beta_mut(std::size_t slot);
  [[nodiscard]] std::span<CoreFixed> dbeta_mut(std::size_t slot);

  AcceleratorConfig cfg_;
  std::size_t n_;  // dims
  std::vector<CoreFixed> p_;        // N x N
  std::vector<CoreFixed> beta_;     // max_slots x N
  std::vector<CoreFixed> dp_;       // N x N
  std::vector<CoreFixed> dbeta_;    // max_slots x N
  std::vector<CoreFixed> h_, ph_, hp_, piht_;
  std::uint64_t mac_count_ = 0;
  std::uint64_t contexts_ = 0;
};

}  // namespace seqge::fpga
