#pragma once
// Energy-efficiency model — the comparison the paper defers to future
// work ("compare our FPGA implementation with an embedded GPU in terms
// of execution time and energy efficiency", Sec. 5). Training energy
// per random walk = average power x per-walk latency.
//
// Power numbers are first-order engineering estimates, documented here
// and overridable by the caller:
//  * PL power: static (clock tree, config) + dynamic terms proportional
//    to DSP / BRAM / logic utilization at 200 MHz — the standard XPE
//    shape. Defaults land ~3 W for the dims-32 design, typical for a
//    mid-size Zynq US+ accelerator.
//  * Cortex-A53 @1.2 GHz: ~1.5 W for the active core + DRAM.
//  * i7-11700 @2.5 GHz (one active core of a 65 W-TDP part): ~20 W
//    effective (package overhead amortized on a single-core workload).

#include <string>

#include "fpga/resource_model.hpp"

namespace seqge::fpga {

struct PowerProfile {
  std::string platform;
  double watts = 0.0;
};

struct EnergyReport {
  std::string platform;
  double ms_per_walk = 0.0;
  double watts = 0.0;
  double millijoules_per_walk = 0.0;
  double walks_per_joule = 0.0;
};

class EnergyModel {
 public:
  struct PlPowerCoefficients {
    double static_w = 0.7;   ///< PL static + clocking
    double dsp_w = 2.2;      ///< at 100% DSP utilization, 200 MHz
    double bram_w = 0.9;     ///< at 100% BRAM utilization
    double logic_w = 0.6;    ///< at 100% FF/LUT utilization
  };

  EnergyModel() : coeffs_() {}
  explicit EnergyModel(PlPowerCoefficients coeffs) : coeffs_(coeffs) {}

  /// Average PL power for a synthesized configuration.
  [[nodiscard]] PowerProfile pl_power(const ResourceUsage& usage,
                                      const DeviceSpec& device) const;

  [[nodiscard]] static PowerProfile cortex_a53() {
    return {"cortex-a53", 1.5};
  }
  [[nodiscard]] static PowerProfile i7_11700() {
    return {"i7-11700", 20.0};
  }

  /// Energy report for one platform given its per-walk latency.
  [[nodiscard]] static EnergyReport report(const PowerProfile& power,
                                           double ms_per_walk);

 private:
  PlPowerCoefficients coeffs_;
};

}  // namespace seqge::fpga
