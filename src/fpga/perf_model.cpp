#include "fpga/perf_model.hpp"

namespace seqge::fpga {

std::uint64_t PerfModel::context_ops() const noexcept {
  const std::uint64_t n = cfg_.dims;
  const std::uint64_t s = cfg_.samples_per_context();
  return 3 * n * n + 2 * n * s + 3 * n;
}

std::uint64_t PerfModel::context_cycles() const noexcept {
  const std::uint64_t lanes = cfg_.parallelism;
  const std::uint64_t mac_cycles = (context_ops() + lanes - 1) / lanes;
  return mac_cycles + kContextOverheadCycles;
}

std::size_t PerfModel::bytes_in() const noexcept {
  const std::size_t slots = cfg_.max_slots();
  const std::size_t ids = slots * sizeof(std::uint32_t);
  const std::size_t beta = slots * cfg_.dims * kWordBytes;
  const std::size_t p = cfg_.dims * cfg_.dims * kWordBytes;
  return ids + beta + p;
}

std::size_t PerfModel::bytes_out() const noexcept {
  const std::size_t beta = cfg_.max_slots() * cfg_.dims * kWordBytes;
  const std::size_t p = cfg_.dims * cfg_.dims * kWordBytes;
  return beta + p;
}

WalkTiming PerfModel::walk_timing() const noexcept {
  return walk_timing(cfg_.contexts_per_walk(), cfg_.max_slots());
}

WalkTiming PerfModel::walk_timing(std::size_t contexts,
                                  std::size_t slots) const noexcept {
  WalkTiming t;
  t.context_cycles = context_cycles();
  t.total_cycles = t.context_cycles * contexts;
  t.compute_us =
      static_cast<double>(t.total_cycles) / cfg_.clock_mhz;  // MHz = c/us

  const std::size_t row_bytes = cfg_.dims * kWordBytes;
  const std::size_t p_bytes = cfg_.dims * cfg_.dims * kWordBytes;
  const DmaTransfer in = dma_.transfer(slots * sizeof(std::uint32_t) +
                                       slots * row_bytes + p_bytes);
  const DmaTransfer out = dma_.transfer(slots * row_bytes + p_bytes);
  t.bytes_in = in.bytes;
  t.bytes_out = out.bytes;
  t.dma_in_us = in.microseconds;
  t.dma_out_us = out.microseconds;
  t.overhead_us = kWalkOverheadUs;
  t.total_us = t.compute_us + t.dma_in_us + t.dma_out_us + t.overhead_us;
  return t;
}

WalkTiming PerfModel::batch_timing(std::size_t contexts,
                                   std::size_t distinct_slots,
                                   std::size_t id_words,
                                   bool include_overhead) const noexcept {
  WalkTiming t;
  t.context_cycles = context_cycles();
  t.total_cycles = t.context_cycles * contexts;
  t.compute_us =
      static_cast<double>(t.total_cycles) / cfg_.clock_mhz;  // MHz = c/us

  const std::size_t row_bytes = cfg_.dims * kWordBytes;
  const std::size_t p_bytes = cfg_.dims * cfg_.dims * kWordBytes;
  // Burst semantics: every distinct row crosses DRAM<->BRAM once per
  // group; P is (re)initialized on the PL, so it too moves once.
  const DmaTransfer in = dma_.transfer(id_words * sizeof(std::uint32_t) +
                                       distinct_slots * row_bytes + p_bytes);
  const DmaTransfer out = dma_.transfer(distinct_slots * row_bytes + p_bytes);
  t.bytes_in = in.bytes;
  t.bytes_out = out.bytes;
  t.dma_in_us = in.microseconds;
  t.dma_out_us = out.microseconds;
  t.overhead_us = include_overhead ? kWalkOverheadUs : 0.0;
  t.total_us = t.compute_us + t.dma_in_us + t.dma_out_us + t.overhead_us;
  return t;
}

}  // namespace seqge::fpga
