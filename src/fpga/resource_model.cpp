#include "fpga/resource_model.hpp"

#include <algorithm>
#include <cmath>

namespace seqge::fpga {

std::optional<ResourceUsage> ResourceModel::calibrated_point(
    const AcceleratorConfig& cfg) {
  // Table 6 of the paper (XCZU7EV, Vitis HLS 2022.1, 200 MHz), for the
  // default walk shape (l=80, w=8, ns=10).
  struct Point {
    std::size_t dims, par;
    ResourceUsage usage;
  };
  // BRAM is reported in 36Kb tiles in Table 6 (183/312 = 58.65%).
  static const Point kPoints[] = {
      {32, 32, {183, 1379, 48609, 53330, true}},
      {64, 48, {271, 1552, 77584, 87901, true}},
      {96, 64, {272, 1573, 86081, 108639, true}},
  };
  for (const Point& p : kPoints) {
    if (cfg.dims == p.dims && cfg.parallelism == p.par &&
        cfg.walk_length == 80 && cfg.window == 8 &&
        cfg.negative_samples == 10) {
      return p.usage;
    }
  }
  return std::nullopt;
}

ResourceUsage ResourceModel::structural_estimate(
    const AcceleratorConfig& cfg) const {
  cfg.validate();
  const std::size_t n = cfg.dims;
  const std::size_t par = cfg.parallelism;

  ResourceUsage u;

  // --- DSP: MAC lanes. The paper raises parallelism only *partially*
  // beyond 32 (Sec. 4.5) — the beta-side stages (sample dots, dbeta)
  // scale with `par`, the P-side stages stay at 32 lanes. A 32-bit
  // fixed multiply maps to 4 DSP48E2 (3 partial products + combine);
  // accumulators use the DSP adder. Plus ~15% for the address/scale
  // arithmetic HLS leaves in DSPs.
  const std::size_t lanes = 2 * par + 4 * std::min<std::size_t>(par, 32);
  u.dsp = static_cast<std::size_t>(static_cast<double>(lanes * 4) * 1.15);

  // --- BRAM36: partition-driven. P and dP are cyclically partitioned
  // into `par` banks each so a row of MACs reads in one cycle; beta and
  // dbeta slots likewise. Each partition occupies at least one BRAM18
  // (half a BRAM36) regardless of depth; capacity only matters beyond
  // 18Kb per bank.
  auto banks36 = [](std::size_t partitions, std::size_t words) {
    const std::size_t bits = words * 32;
    const std::size_t per_bank_bits =
        (bits + partitions - 1) / partitions;
    const std::size_t bram18_per_bank =
        std::max<std::size_t>(1, (per_bank_bits + 18 * 1024 - 1) / (18 * 1024));
    return (partitions * bram18_per_bank + 1) / 2;  // 2 BRAM18 = 1 BRAM36
  };
  const std::size_t slots = cfg.max_slots();
  u.bram36 = banks36(par, n * n)        // P
             + banks36(par, n * n)      // dP
             + banks36(par, slots * n)  // beta
             + banks36(par, slots * n)  // dbeta
             + 8;                       // FIFOs, sample ids, H/ph/hp regs

  // --- FF/LUT: per-lane pipeline registers plus control, fitted order
  // of magnitude against the Table 6 points.
  u.ff = lanes * 250 + n * 110 + 9000;
  u.lut = lanes * 300 + n * 190 + 12000;
  u.calibrated = false;
  return u;
}

ResourceUsage ResourceModel::estimate(const AcceleratorConfig& cfg) const {
  if (auto cal = calibrated_point(cfg)) return *cal;
  return structural_estimate(cfg);
}

}  // namespace seqge::fpga
