#pragma once
// Configuration of the PL-side accelerator core (Sec. 3.2 / Sec. 4.5).
// The paper's design runs the PL at 200 MHz with computational
// parallelism "basically 32", partially raised to 48 and 64 lanes for 64
// and 96 embedding dimensions so the dataflow stages stay balanced.

#include <cstddef>
#include <stdexcept>

namespace seqge::fpga {

struct AcceleratorConfig {
  std::size_t dims = 32;              ///< N, graph-embedding dimensions
  std::size_t parallelism = 32;       ///< MAC lanes per stage
  double clock_mhz = 200.0;           ///< PL clock (paper: 200 MHz)
  std::size_t walk_length = 80;       ///< l
  std::size_t window = 8;             ///< w
  std::size_t negative_samples = 10;  ///< ns
  double mu = 0.05;                   ///< scale factor (Sec. 3.1)
  double p0 = 0.1;                   ///< initial P diagonal
  /// Re-initialize P = p0*I in BRAM at every walk (matches the Fig. 4
  /// flow where only beta round-trips DRAM; see TrainConfig).
  bool reset_p_per_walk = true;

  /// The paper's dims -> parallelism mapping (Sec. 4.5).
  [[nodiscard]] static std::size_t default_parallelism(
      std::size_t dims) noexcept {
    if (dims <= 32) return 32;
    if (dims <= 64) return 48;
    return 64;
  }

  [[nodiscard]] static AcceleratorConfig for_dims(std::size_t dims) {
    AcceleratorConfig cfg;
    cfg.dims = dims;
    cfg.parallelism = default_parallelism(dims);
    return cfg;
  }

  /// BRAM slots needed for one walk: l walk nodes + ns negatives (walk
  /// nodes may repeat; distinct-node count is bounded by l).
  [[nodiscard]] std::size_t max_slots() const noexcept {
    return walk_length + negative_samples;
  }

  /// Training contexts per walk: l - w + 1 (73 in the paper).
  [[nodiscard]] std::size_t contexts_per_walk() const noexcept {
    return walk_length >= window ? walk_length - window + 1 : 0;
  }

  /// Samples trained per context: (w - 1) positives x (1 + ns).
  [[nodiscard]] std::size_t samples_per_context() const noexcept {
    return (window - 1) * (1 + negative_samples);
  }

  void validate() const {
    if (dims == 0 || parallelism == 0) {
      throw std::invalid_argument("AcceleratorConfig: zero dims/parallelism");
    }
    if (clock_mhz <= 0.0) {
      throw std::invalid_argument("AcceleratorConfig: bad clock");
    }
    if (window < 2 || window > walk_length) {
      throw std::invalid_argument("AcceleratorConfig: bad window");
    }
    if (mu <= 0.0 || p0 <= 0.0) {
      throw std::invalid_argument("AcceleratorConfig: bad mu/p0");
    }
  }
};

}  // namespace seqge::fpga
