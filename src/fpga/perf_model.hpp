#pragma once
// Cycle-level performance model of the accelerator (reproduces the
// "Proposed model on FPGA" rows of Tables 3/4).
//
// Per context, the core executes (in MAC-equivalent fixed-point ops)
//   Stage 1: H (N) + P H^T and H P (2 N^2)
//   Stage 2: H P H^T (N)
//   Stage 4: dP rank-1 (N^2) + piht (N) + reciprocal
//   Stage 3+4: per sample, error dot (N) + dbeta axpy (N); S samples
//   => ops(N) = 3 N^2 + 2 N S + 3 N,  S = (w-1)(ns+1)
// spread over `parallelism` MAC lanes, plus a fixed per-context pipeline
// overhead (stage fill/drain + control FSM). Per walk, DMA moves the
// sample ids, the touched beta rows and P in, and beta rows + P back out.
//
// Calibration: two constants — kContextOverheadCycles = 1800 and the DMA
// effective bandwidth 2.0 GB/s — were fitted against the paper's three
// measured points (0.777 / 0.878 / 0.985 ms at dims 32/64/96). With
// them, the model reproduces all three to within 0.3% and extrapolates
// structurally to other dims/parallelism/walk shapes.

#include <cstdint>

#include "fpga/config.hpp"
#include "fpga/dma_model.hpp"

namespace seqge::fpga {

struct WalkTiming {
  double dma_in_us = 0.0;
  double compute_us = 0.0;
  double dma_out_us = 0.0;
  double overhead_us = 0.0;
  double total_us = 0.0;
  std::uint64_t context_cycles = 0;  ///< cycles per context incl. overhead
  std::uint64_t total_cycles = 0;    ///< compute cycles for the whole walk
  std::size_t bytes_in = 0;
  std::size_t bytes_out = 0;
};

class PerfModel {
 public:
  explicit PerfModel(const AcceleratorConfig& cfg,
                     DmaModel dma = DmaModel{})
      : cfg_(cfg), dma_(dma) {
    cfg_.validate();
  }

  /// MAC-equivalent fixed-point ops per context.
  [[nodiscard]] std::uint64_t context_ops() const noexcept;

  /// Cycles per context: ceil(ops / lanes) + pipeline overhead.
  [[nodiscard]] std::uint64_t context_cycles() const noexcept;

  /// DMA payload per walk (in: ids + beta rows + P; out: beta rows + P).
  [[nodiscard]] std::size_t bytes_in() const noexcept;
  [[nodiscard]] std::size_t bytes_out() const noexcept;

  /// Full timing for training one full-length random walk.
  [[nodiscard]] WalkTiming walk_timing() const noexcept;

  /// Timing for a walk with `contexts` windows touching `slots` distinct
  /// BRAM rows (short walks in the "seq" scenario transfer and compute
  /// proportionally less).
  [[nodiscard]] WalkTiming walk_timing(std::size_t contexts,
                                       std::size_t slots) const noexcept;

  /// Timing for one burst group of a batch: `contexts` windows over
  /// walks whose union of touched rows is `distinct_slots` (the caller
  /// must keep this within the BRAM capacity, max_slots()), with
  /// `id_words` sample ids streamed in. One burst DMA per direction
  /// moves each distinct beta row (and P) once for the group — the
  /// Fig. 4 burst-transfer amortization the batched host pipeline
  /// exploits. The descriptor-chain/interrupt overhead is charged only
  /// when `include_overhead` is set: a batch issues one descriptor
  /// chain for all its groups, so the caller sets it on the first
  /// group only.
  [[nodiscard]] WalkTiming batch_timing(std::size_t contexts,
                                        std::size_t distinct_slots,
                                        std::size_t id_words,
                                        bool include_overhead) const noexcept;

  [[nodiscard]] const AcceleratorConfig& config() const noexcept {
    return cfg_;
  }

  /// Pipeline fill/drain + control overhead per context, in cycles.
  /// Fitted to the paper's measured latencies (see file header).
  static constexpr std::uint64_t kContextOverheadCycles = 1800;
  /// Per-walk control overhead (interrupt, descriptor chain), in us.
  static constexpr double kWalkOverheadUs = 10.0;
  /// Bytes per BRAM weight word (Q8.24 packs into 32 bits).
  static constexpr std::size_t kWordBytes = 4;

 private:
  AcceleratorConfig cfg_;
  DmaModel dma_;
};

}  // namespace seqge::fpga
