#pragma once
// FPGA resource-utilization model (reproduces Table 6). Two layers:
//
//  * A structural estimator: BRAM18K banks from array partitioning and
//    capacity, DSP48 slices from MAC lanes (4 DSPs per 32x32 fixed
//    multiply), FF/LUT from lane registers and control. Use it for
//    configurations the paper did not synthesize, and for fit checks
//    (fits_on_device).
//
//  * A calibration table for the paper's three synthesized design points
//    (dims 32/64/96 with parallelism 32/48/64 on XCZU7EV); post-route
//    resource counts cannot be derived exactly without the vendor
//    toolchain, so for those configs the model returns the reported
//    values (flagged `calibrated = true`).

#include <cstddef>
#include <optional>
#include <string>

#include "fpga/config.hpp"

namespace seqge::fpga {

/// Device capacities. Defaults: Zynq UltraScale+ XCZU7EV (ZCU104) — 312
/// BRAM36 tiles (11 Mb), 1728 DSP48E2, 460.8k FF, 230.4k LUT.
struct DeviceSpec {
  std::string name = "XCZU7EV";
  std::size_t bram36 = 312;
  std::size_t dsp = 1728;
  std::size_t ff = 460800;
  std::size_t lut = 230400;
};

struct ResourceUsage {
  std::size_t bram36 = 0;
  std::size_t dsp = 0;
  std::size_t ff = 0;
  std::size_t lut = 0;
  bool calibrated = false;  ///< true when from the Table 6 fit points

  [[nodiscard]] double bram_pct(const DeviceSpec& d) const noexcept {
    return 100.0 * static_cast<double>(bram36) / static_cast<double>(d.bram36);
  }
  [[nodiscard]] double dsp_pct(const DeviceSpec& d) const noexcept {
    return 100.0 * static_cast<double>(dsp) / static_cast<double>(d.dsp);
  }
  [[nodiscard]] double ff_pct(const DeviceSpec& d) const noexcept {
    return 100.0 * static_cast<double>(ff) / static_cast<double>(d.ff);
  }
  [[nodiscard]] double lut_pct(const DeviceSpec& d) const noexcept {
    return 100.0 * static_cast<double>(lut) / static_cast<double>(d.lut);
  }
  [[nodiscard]] bool fits(const DeviceSpec& d) const noexcept {
    return bram36 <= d.bram36 && dsp <= d.dsp && ff <= d.ff && lut <= d.lut;
  }
};

class ResourceModel {
 public:
  explicit ResourceModel(DeviceSpec device = DeviceSpec{})
      : device_(std::move(device)) {}

  [[nodiscard]] const DeviceSpec& device() const noexcept { return device_; }

  /// Resource estimate for `cfg`; uses the calibration table when cfg is
  /// one of the paper's synthesized points, the structural model
  /// otherwise.
  [[nodiscard]] ResourceUsage estimate(const AcceleratorConfig& cfg) const;

  /// Pure structural estimate (never calibrated) — exposed for tests and
  /// for what-if exploration.
  [[nodiscard]] ResourceUsage structural_estimate(
      const AcceleratorConfig& cfg) const;

  /// The Table 6 value for cfg if it is a calibrated design point.
  [[nodiscard]] static std::optional<ResourceUsage> calibrated_point(
      const AcceleratorConfig& cfg);

 private:
  DeviceSpec device_;
};

}  // namespace seqge::fpga
