#include "fpga/hls_core.hpp"

#include <stdexcept>

namespace seqge::fpga {

HlsCore::HlsCore(const AcceleratorConfig& cfg) : cfg_(cfg), n_(cfg.dims) {
  cfg_.validate();
  p_.assign(n_ * n_, CoreFixed{});
  beta_.assign(cfg_.max_slots() * n_, CoreFixed{});
  dp_.assign(n_ * n_, CoreFixed{});
  dbeta_.assign(cfg_.max_slots() * n_, CoreFixed{});
  h_.assign(n_, CoreFixed{});
  ph_.assign(n_, CoreFixed{});
  hp_.assign(n_, CoreFixed{});
  piht_.assign(n_, CoreFixed{});
}

void HlsCore::load_p(std::span<const CoreFixed> p) {
  if (p.size() != n_ * n_) throw std::invalid_argument("load_p: bad size");
  std::copy(p.begin(), p.end(), p_.begin());
}

void HlsCore::load_beta_slot(std::size_t slot,
                             std::span<const CoreFixed> row) {
  if (slot >= cfg_.max_slots() || row.size() != n_) {
    throw std::invalid_argument("load_beta_slot: bad slot/size");
  }
  std::copy(row.begin(), row.end(), beta_.begin() + slot * n_);
}

std::span<const CoreFixed> HlsCore::beta_slot(std::size_t slot) const {
  if (slot >= cfg_.max_slots()) {
    throw std::out_of_range("beta_slot: bad slot");
  }
  return {beta_.data() + slot * n_, n_};
}

std::span<CoreFixed> HlsCore::beta_mut(std::size_t slot) {
  return {beta_.data() + slot * n_, n_};
}
std::span<CoreFixed> HlsCore::dbeta_mut(std::size_t slot) {
  return {dbeta_.data() + slot * n_, n_};
}

double HlsCore::run_walk(std::span<const std::uint32_t> walk_slots,
                         std::span<const std::uint32_t> negative_slots) {
  const std::size_t w = cfg_.window;
  if (walk_slots.size() < w) return 0.0;

  const CoreFixed mu = CoreFixed::from_double(cfg_.mu);
  const CoreFixed one = CoreFixed::from_double(1.0);
  double sq_err = 0.0;

  if (cfg_.reset_p_per_walk) {
    std::fill(p_.begin(), p_.end(), CoreFixed{});
    const CoreFixed p0 = CoreFixed::from_double(cfg_.p0);
    for (std::size_t i = 0; i < n_; ++i) p_[i * n_ + i] = p0;
  }
  std::fill(dp_.begin(), dp_.end(), CoreFixed{});
  std::fill(dbeta_.begin(), dbeta_.end(), CoreFixed{});

  for (std::size_t i = 0; i + w <= walk_slots.size(); ++i) {
    const std::uint32_t center = walk_slots[i];
    ++contexts_;

    // ---- Stage 1: H = mu * beta[center]; ph = P H^T; hp = H P --------
    auto bc = beta_mut(center);
    for (std::size_t d = 0; d < n_; ++d) h_[d] = mu * bc[d];
    mac_count_ += n_;

    for (std::size_t r = 0; r < n_; ++r) {
      CoreAcc acc_row;  // ph[r] = sum_c P[r][c] H[c]
      CoreAcc acc_col;  // hp[r] = sum_c H[c] P[c][r]
      for (std::size_t c = 0; c < n_; ++c) {
        acc_row.mac(p_[r * n_ + c], h_[c]);
        acc_col.mac(h_[c], p_[c * n_ + r]);
      }
      ph_[r] = acc_row.result();
      hp_[r] = acc_col.result();
    }
    mac_count_ += 2 * n_ * n_;

    // ---- Stage 2: hph = H P H^T --------------------------------------
    CoreAcc acc_hph;
    for (std::size_t d = 0; d < n_; ++d) acc_hph.mac(h_[d], ph_[d]);
    const CoreFixed hph = acc_hph.result();
    mac_count_ += n_;

    // ---- Stage 4 scalar: k = 1 / (1 + hph) ---------------------------
    const CoreFixed k = one / (one + hph);

    // dP -= (ph hp) * k;  piht = ph * k (closed-form P_i H^T).
    for (std::size_t r = 0; r < n_; ++r) {
      const CoreFixed phk = ph_[r] * k;
      for (std::size_t c = 0; c < n_; ++c) {
        dp_[r * n_ + c] -= phk * hp_[c];
      }
      piht_[r] = phk;
    }
    mac_count_ += n_ * n_ + n_;

    // ---- Stage 3 + 4: sample errors and deferred beta updates --------
    auto train_sample = [&](std::uint32_t slot, CoreFixed t) {
      CoreAcc acc;
      auto bs = beta_mut(slot);
      for (std::size_t d = 0; d < n_; ++d) acc.mac(h_[d], bs[d]);
      const CoreFixed e = t - acc.result();
      mac_count_ += 2 * n_;
      auto db = dbeta_mut(slot);
      for (std::size_t d = 0; d < n_; ++d) db[d] += piht_[d] * e;
      const double ed = e.to_double();
      sq_err += ed * ed;
    };
    for (std::size_t j = 1; j < w; ++j) {
      const std::uint32_t pos = walk_slots[i + j];
      train_sample(pos, one);
      for (std::uint32_t neg : negative_slots) {
        if (neg == pos) continue;
        train_sample(neg, CoreFixed{});
      }
    }
  }

  // ---- Commit (Algorithm 2 lines 19-20) ------------------------------
  for (std::size_t i = 0; i < p_.size(); ++i) p_[i] += dp_[i];
  for (std::size_t i = 0; i < beta_.size(); ++i) beta_[i] += dbeta_[i];
  return sq_err;
}

}  // namespace seqge::fpga
