#pragma once
// AXI DMA transfer-cost model for the PS<->PL path of Fig. 4. A transfer
// costs a fixed descriptor-setup latency plus bytes / effective
// bandwidth. The default effective bandwidth (2.0 GB/s) was fitted
// together with the perf model's per-context overhead against the
// paper's three measured FPGA timings (see perf_model.hpp); it is
// plausible for a single HP port burst stream on Zynq UltraScale+.

#include <cstddef>

namespace seqge::fpga {

struct DmaTransfer {
  std::size_t bytes = 0;
  double microseconds = 0.0;
};

class DmaModel {
 public:
  explicit DmaModel(double bytes_per_us = 2000.0,
                    double setup_latency_us = 1.0) noexcept
      : bytes_per_us_(bytes_per_us), setup_latency_us_(setup_latency_us) {}

  [[nodiscard]] DmaTransfer transfer(std::size_t bytes) const noexcept {
    return {bytes, setup_latency_us_ +
                       static_cast<double>(bytes) / bytes_per_us_};
  }

  [[nodiscard]] double bytes_per_us() const noexcept { return bytes_per_us_; }
  [[nodiscard]] double setup_latency_us() const noexcept {
    return setup_latency_us_;
  }

 private:
  double bytes_per_us_;
  double setup_latency_us_;
};

}  // namespace seqge::fpga
