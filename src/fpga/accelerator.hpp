#pragma once
// Host-side driver of the board-level system (Fig. 4). The "PS" side
// owns the full weight array in DRAM (fixed-point, as stored on the
// device) and, per random walk:
//   1. pre-samples negatives (host CPU, like the paper's PS),
//   2. maps the walk's distinct nodes + negatives to BRAM slots,
//   3. DMA-in: sample ids, touched beta rows (P is modeled in the
//      transfer budget too, matching the perf-model calibration),
//   4. runs the bit-accurate HLS core (Algorithm 2),
//   5. DMA-out: updated beta rows, written back to DRAM.
//
// Wall-clock on the simulating host is irrelevant; the accelerator
// accumulates *simulated* time from the cycle/DMA models. Implements
// EmbeddingModel so both trainers (all/seq) can drive the FPGA exactly
// like the CPU models — that is how Fig. 5/6 FPGA accuracy results are
// produced.

#include <cstdint>
#include <vector>

#include "embedding/model.hpp"
#include "fpga/hls_core.hpp"
#include "fpga/perf_model.hpp"
#include "graph/graph.hpp"

namespace seqge::fpga {

class Accelerator final : public EmbeddingModel {
 public:
  Accelerator(std::size_t num_nodes, const AcceleratorConfig& cfg, Rng& rng);

  // --- EmbeddingModel ----------------------------------------------------
  double train_walk(std::span<const NodeId> walk, std::size_t window,
                    const NegativeSampler& sampler, std::size_t ns,
                    NegativeMode mode, Rng& rng) override;
  /// Batched training. Functionally bit-identical to looping train_walk
  /// (each walk still runs Algorithm 2 and commits before the next), but
  /// the *simulated* DMA amortizes: the union of the batch's touched
  /// beta rows crosses DRAM<->BRAM once per direction and the per-walk
  /// descriptor overhead collapses to one per batch (Fig. 4 bursts).
  double train_batch(const WalkBatch& batch, std::size_t window,
                     const NegativeSampler& sampler, std::size_t ns,
                     NegativeMode mode) override;
  [[nodiscard]] MatrixF extract_embedding() const override;
  /// O(touched) embedding-row extraction (delta publishing): each row
  /// dequantizes exactly the same Q8.24 words extract_embedding would,
  /// so the two are bit-identical row for row.
  void extract_rows(std::span<const NodeId> nodes,
                    MatrixF& out) const override;
  [[nodiscard]] std::size_t dims() const override { return cfg_.dims; }
  [[nodiscard]] std::size_t num_nodes() const override {
    return num_nodes_;
  }
  [[nodiscard]] std::size_t model_bytes() const override {
    return (num_nodes_ * cfg_.dims + cfg_.dims * cfg_.dims) *
           PerfModel::kWordBytes;
  }
  [[nodiscard]] std::string name() const override { return "fpga-accel"; }

  // --- checkpoint support -------------------------------------------------
  /// Device weights dequantized to float (n x N rows, beta^T layout —
  /// the same payload the CPU models checkpoint). Q8.24 values with
  /// |raw| < 2^24 convert exactly, so save/load round-trips losslessly.
  [[nodiscard]] MatrixF beta_as_float() const;
  /// Overwrite the device weights from a float matrix, quantizing each
  /// entry to Q8.24 (the accelerator's load half of the checkpoint
  /// round trip). Shape must be n x N.
  void load_beta(const MatrixF& beta_t);

  // --- simulation introspection -------------------------------------------
  [[nodiscard]] double simulated_seconds() const noexcept {
    return simulated_us_ * 1e-6;
  }
  [[nodiscard]] const WalkTiming& last_walk_timing() const noexcept {
    return last_timing_;
  }
  [[nodiscard]] std::uint64_t walks_processed() const noexcept {
    return walks_;
  }
  [[nodiscard]] const HlsCore& core() const noexcept { return core_; }
  [[nodiscard]] const AcceleratorConfig& config() const noexcept {
    return cfg_;
  }

 private:
  AcceleratorConfig cfg_;
  std::size_t num_nodes_;
  HlsCore core_;
  PerfModel perf_;
  std::vector<CoreFixed> dram_beta_;  // n x N, device-format weights
  // node -> slot scratch (persistent, O(touched) clears)
  std::vector<std::int32_t> slot_of_;
  std::vector<NodeId> slot_nodes_;
  std::vector<std::uint32_t> walk_slots_, neg_slots_;
  std::vector<NodeId> negatives_;
  // batch scratch: per-walk negatives, packed (offsets are walks + 1)
  std::vector<NodeId> batch_negatives_;
  std::vector<std::uint32_t> batch_neg_off_;
  double simulated_us_ = 0.0;
  WalkTiming last_timing_{};
  std::uint64_t walks_ = 0;

  [[nodiscard]] std::uint32_t slot_for(NodeId node);
  void release_slots();
  struct WalkRun {
    double sq_err = 0.0;
    std::size_t distinct_slots = 0;
  };
  /// Slot-map, DMA-in, run, DMA-out, release for one walk (no timing).
  WalkRun run_one_walk(std::span<const NodeId> walk,
                       std::span<const NodeId> negatives);
};

}  // namespace seqge::fpga
