#include "embedding/skipgram_sgd.hpp"

#include <cmath>

#include "linalg/kernels.hpp"

namespace seqge {

SkipGramSGD::SkipGramSGD(std::size_t num_nodes, std::size_t dims, Rng& rng)
    : w_in_(num_nodes, dims), w_out_(num_nodes, dims), h_grad_(dims, 0.0f) {
  const double r = 0.5 / static_cast<double>(dims);
  w_in_.fill_uniform(rng, -r, r);
  // w_out_ stays zero (word2vec convention: output vectors start at 0).
}

double SkipGramSGD::train_pair(NodeId center, NodeId positive,
                               std::span<const NodeId> negatives,
                               double lr) {
  auto h = w_in_.row(center);
  std::fill(h_grad_.begin(), h_grad_.end(), 0.0f);
  double loss = 0.0;

  auto train_sample = [&](NodeId s, float label) {
    auto v = w_out_.row(s);
    const double score = sigmoid(dot<float>(h, v));
    const auto g = static_cast<float>(score - label);
    loss += label > 0.5f ? -std::log(std::max(score, 1e-12))
                         : -std::log(std::max(1.0 - score, 1e-12));
    // h_grad accumulates before v changes, as in the reference word2vec.
    axpy<float>(g, v, h_grad_);
    axpy<float>(static_cast<float>(-lr) * g, h, v);
  };

  train_sample(positive, 1.0f);
  for (NodeId neg : negatives) {
    if (neg == positive) continue;  // never push the positive down
    train_sample(neg, 0.0f);
  }
  axpy<float>(static_cast<float>(-lr), h_grad_, h);
  return loss;
}

double SkipGramSGD::train_context(const WalkContext& ctx,
                                  std::span<const NodeId> negatives,
                                  double lr) {
  double loss = 0.0;
  for (NodeId pos : ctx.positives) {
    loss += train_pair(ctx.center, pos, negatives, lr);
  }
  return loss;
}

double SkipGramSGD::train_walk(std::span<const NodeId> walk,
                               std::size_t window,
                               const NegativeSampler& sampler, std::size_t ns,
                               NegativeMode mode, Rng& rng, double lr) {
  double loss = 0.0;
  if (mode == NegativeMode::kPerWalk) {
    sampler.sample_batch(rng, ns, /*exclude=*/walk.empty() ? 0 : walk[0],
                         scratch_negatives_);
  }
  for_each_context(walk, window, [&](const WalkContext& ctx) {
    if (mode == NegativeMode::kPerContext) {
      for (NodeId pos : ctx.positives) {
        sampler.sample_batch(rng, ns, pos, scratch_negatives_);
        loss += train_pair(ctx.center, pos, scratch_negatives_, lr);
      }
    } else {
      loss += train_context(ctx, scratch_negatives_, lr);
    }
  });
  return loss;
}

double SkipGramSGD::train_walk(std::span<const NodeId> walk,
                               std::size_t window,
                               std::span<const NodeId> shared_negatives,
                               double lr) {
  double loss = 0.0;
  for_each_context(walk, window, [&](const WalkContext& ctx) {
    loss += train_context(ctx, shared_negatives, lr);
  });
  return loss;
}

}  // namespace seqge
