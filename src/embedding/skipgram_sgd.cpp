#include "embedding/skipgram_sgd.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "linalg/kernels.hpp"
#include "linalg/simd.hpp"

namespace seqge {

namespace {

// word2vec-style sigmoid lookup: 1024 bin midpoints over [-6, 6],
// clamped to the edge bins outside. Max error vs std::exp is ~3e-3
// (bin width 12/1024, |sigmoid'| <= 1/4) — enough for SGNS gradients
// (the equivalence tests gate loss/recall, not bits). Clamping to the
// edge *values* (not 0/1) keeps -log(1 - score) finite for negatives.
struct SigmoidTable {
  static constexpr int kSize = 1024;
  static constexpr double kMax = 6.0;
  float values[kSize];
  SigmoidTable() noexcept {
    for (int i = 0; i < kSize; ++i) {
      const double x =
          (static_cast<double>(i) + 0.5) * (2.0 * kMax / kSize) - kMax;
      values[i] = static_cast<float>(sigmoid(x));
    }
  }
};

double fast_sigmoid(double x) noexcept {
  static const SigmoidTable table;
  if (x <= -SigmoidTable::kMax) return table.values[0];
  if (x >= SigmoidTable::kMax) return table.values[SigmoidTable::kSize - 1];
  const int idx = static_cast<int>((x + SigmoidTable::kMax) *
                                   (SigmoidTable::kSize /
                                    (2.0 * SigmoidTable::kMax)));
  return table.values[std::min(idx, SigmoidTable::kSize - 1)];
}

}  // namespace

SkipGramSGD::SkipGramSGD(std::size_t num_nodes, std::size_t dims, Rng& rng,
                         bool fast_sigmoid)
    : w_in_(num_nodes, dims),
      w_out_(num_nodes, dims),
      h_grad_(dims, 0.0f),
      fast_sigmoid_(fast_sigmoid) {
  const double r = 0.5 / static_cast<double>(dims);
  w_in_.fill_uniform(rng, -r, r);
  // w_out_ stays zero (word2vec convention: output vectors start at 0).
}

void SkipGramSGD::prepare_negatives(std::span<const NodeId> negatives) {
  neg_rows_.clear();
  for (NodeId neg : negatives) neg_rows_.push_back(w_out_.row(neg).data());
  // Negatives are drawn with replacement, so the batch can repeat a
  // node (row pointers compare equal iff node ids do). The fused path
  // would read stale rows for the repeat, so such pairs take the
  // sequential fallback. A 64-bit Bloom filter over the ids screens the
  // common all-distinct batch in one pass; only a bit collision (a real
  // dup, or a false positive at ~ns^2/128 odds) pays for the exact
  // quadratic check, so the verdict is identical to always running it.
  std::uint64_t seen = 0;
  bool collision = false;
  for (NodeId neg : negatives) {
    const std::uint64_t bit = std::uint64_t{1} << (neg & 63u);
    collision |= (seen & bit) != 0;
    seen |= bit;
  }
  neg_dups_ = false;
  if (collision) {
    for (std::size_t i = 0; i + 1 < neg_rows_.size() && !neg_dups_; ++i) {
      for (std::size_t j = i + 1; j < neg_rows_.size(); ++j) {
        if (neg_rows_[i] == neg_rows_[j]) {
          neg_dups_ = true;
          break;
        }
      }
    }
  }
}

double SkipGramSGD::train_pair_unfused(NodeId center, NodeId positive,
                                       std::span<const NodeId> negatives,
                                       double lr) {
  auto h = w_in_.row(center);
  std::fill(h_grad_.begin(), h_grad_.end(), 0.0f);
  // Loss telemetry accumulates the pair's likelihood terms as one
  // product and takes a single log at the end: -log(p) - sum log(1-q_i)
  // == -log(p * prod (1-q_i)). One std::log per pair instead of one per
  // sample — the logs were a measurable slice of train_pair — at
  // identical math (the clamped factors are >= 1e-12 each, so the
  // product of <= ~50 terms cannot underflow double). Gradients are
  // untouched: they come from the scores alone. The fused path below
  // multiplies the same factors in the same order, keeping fused and
  // unfused losses bit-equal.
  double likelihood = 1.0;

  auto train_sample = [&](NodeId s, float label) {
    auto v = w_out_.row(s);
    const double raw = dot<float>(h, v);
    const double score = fast_sigmoid_ ? fast_sigmoid(raw) : sigmoid(raw);
    const auto g = static_cast<float>(score - label);
    likelihood *= label > 0.5f ? std::max(score, 1e-12)
                               : std::max(1.0 - score, 1e-12);
    // h_grad accumulates before v changes, as in the reference word2vec.
    axpy<float>(g, v, h_grad_);
    axpy<float>(static_cast<float>(-lr) * g, h, v);
  };

  train_sample(positive, 1.0f);
  for (NodeId neg : negatives) {
    if (neg == positive) continue;  // never push the positive down
    train_sample(neg, 0.0f);
  }
  axpy<float>(static_cast<float>(-lr), h_grad_, h);
  return -std::log(likelihood);
}

double SkipGramSGD::train_pair_prepared(NodeId center, NodeId positive,
                                        std::span<const NodeId> negatives,
                                        double lr) {
  if (force_unfused_ || neg_dups_) {
    return train_pair_unfused(center, positive, negatives, lr);
  }
  auto h = w_in_.row(center);
  float* pos_row = w_out_.row(positive).data();

  // Positive first (label 1), then the negatives that aren't the
  // positive — the exact sample order of the sequential path. All rows
  // are distinct here (dups fell back above), so batching the scores
  // upfront reads the same floats the sequential path would.
  sample_rows_.clear();
  sample_rows_.push_back(pos_row);
  for (float* np : neg_rows_) {
    if (np != pos_row) sample_rows_.push_back(np);
  }
  const std::size_t n = sample_rows_.size();
  const std::size_t d = dims();
  scores_.resize(n);
  g_.resize(n);

  simd::dot_batch_gather(sample_rows_.data(), n, d, h.data(),
                         scores_.data());
  // Same product-form loss as train_pair_unfused (one log per pair),
  // factors multiplied in the same sample order so the two paths stay
  // bit-equal.
  double likelihood = 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double raw = scores_[i];
    const double score = fast_sigmoid_ ? fast_sigmoid(raw) : sigmoid(raw);
    if (i == 0) {
      g_[i] = static_cast<float>(score - 1.0);
      likelihood *= std::max(score, 1e-12);
    } else {
      g_[i] = static_cast<float>(score);
      likelihood *= std::max(1.0 - score, 1e-12);
    }
  }
  simd::sgns_apply(h.data(), h_grad_.data(), sample_rows_.data(), g_.data(),
                   static_cast<float>(-lr), n, d);
  return -std::log(likelihood);
}

double SkipGramSGD::train_pair(NodeId center, NodeId positive,
                               std::span<const NodeId> negatives,
                               double lr) {
  prepare_negatives(negatives);
  return train_pair_prepared(center, positive, negatives, lr);
}

double SkipGramSGD::train_context(const WalkContext& ctx,
                                  std::span<const NodeId> negatives,
                                  double lr) {
  prepare_negatives(negatives);
  double loss = 0.0;
  for (NodeId pos : ctx.positives) {
    loss += train_pair_prepared(ctx.center, pos, negatives, lr);
  }
  return loss;
}

double SkipGramSGD::train_walk(std::span<const NodeId> walk,
                               std::size_t window,
                               const NegativeSampler& sampler, std::size_t ns,
                               NegativeMode mode, Rng& rng, double lr) {
  double loss = 0.0;
  if (mode == NegativeMode::kPerWalk) {
    sampler.sample_batch(rng, ns, /*exclude=*/walk.empty() ? 0 : walk[0],
                         scratch_negatives_);
    // Row pointers of the shared negatives are gathered once for the
    // whole walk instead of once per pair.
    prepare_negatives(scratch_negatives_);
  }
  for_each_context(walk, window, [&](const WalkContext& ctx) {
    if (mode == NegativeMode::kPerContext) {
      for (NodeId pos : ctx.positives) {
        sampler.sample_batch(rng, ns, pos, scratch_negatives_);
        prepare_negatives(scratch_negatives_);
        loss += train_pair_prepared(ctx.center, pos, scratch_negatives_, lr);
      }
    } else {
      for (NodeId pos : ctx.positives) {
        loss +=
            train_pair_prepared(ctx.center, pos, scratch_negatives_, lr);
      }
    }
  });
  return loss;
}

double SkipGramSGD::train_walk(std::span<const NodeId> walk,
                               std::size_t window,
                               std::span<const NodeId> shared_negatives,
                               double lr) {
  double loss = 0.0;
  prepare_negatives(shared_negatives);
  for_each_context(walk, window, [&](const WalkContext& ctx) {
    for (NodeId pos : ctx.positives) {
      loss += train_pair_prepared(ctx.center, pos, shared_negatives, lr);
    }
  });
  return loss;
}

}  // namespace seqge
