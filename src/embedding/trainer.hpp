#pragma once
// Training orchestration for the paper's two scenarios (Sec. 4.3.2):
//
//  * "all" — the entire graph exists from the beginning: generate r
//    walks per node, build the negative-sampling distribution from walk
//    frequencies, and train every walk (train_all).
//
//  * "seq" — start from a spanning forest with the same connected
//    components, then add the removed edges back one at a time; each
//    insertion triggers a random walk from *both* endpoints of the new
//    edge plus a sequential training step (train_sequential).

#include <cstdint>
#include <span>
#include <vector>

#include "embedding/config.hpp"
#include "embedding/model.hpp"
#include "graph/dynamic_graph.hpp"
#include "graph/generators.hpp"
#include "graph/spanning_forest.hpp"
#include "util/timer.hpp"

namespace seqge {

struct TrainStats {
  double walk_seconds = 0.0;   ///< time spent generating random walks
  double train_seconds = 0.0;  ///< time spent in model updates
  std::size_t num_walks = 0;
  std::size_t num_contexts = 0;
  double last_loss = 0.0;
};

/// Batch ("all") training of `model` on a static graph.
TrainStats train_all(EmbeddingModel& model, const Graph& graph,
                     const TrainConfig& cfg, Rng& rng);

struct SequentialConfig {
  TrainConfig train;
  /// Walks per node for the initial (forest) training phase. 0 = use
  /// train.walks_per_node.
  std::size_t initial_walks_per_node = 0;
  /// Rebuild the O(n) negative-sampling alias table every this many
  /// insertions (the paper rebuilds per walk; amortizing preserves the
  /// distribution to within staleness of a few hundred walk counts).
  std::size_t sampler_rebuild_interval = 256;
  /// Cap on the number of edge insertions (for scaled-down benches);
  /// SIZE_MAX = insert every removed edge.
  std::size_t max_insertions = static_cast<std::size_t>(-1);
};

struct SequentialResult {
  TrainStats stats;
  std::size_t insertions = 0;
  std::size_t forest_edges = 0;
  std::size_t removed_edges = 0;
};

/// Dynamic ("seq") training: forest initialization + per-edge sequential
/// updates. The model keeps all state across insertions — this is what
/// exposes catastrophic forgetting in the SGD baseline.
SequentialResult train_sequential(EmbeddingModel& model,
                                  const Graph& full_graph,
                                  const SequentialConfig& cfg, Rng& rng);

}  // namespace seqge
