#pragma once
// Training orchestration for the paper's two scenarios (Sec. 4.3.2),
// rebuilt as a batched, producer/consumer pipelined engine:
//
//  * "all" — the entire graph exists from the beginning: generate r
//    walks per node, build the negative-sampling distribution from walk
//    frequencies, and train every walk (train_all). Walk generation and
//    batch packing (negative pre-sampling included) run on N walker
//    threads — the PS side of Fig. 4 — while the calling thread consumes
//    WalkBatches through EmbeddingModel::train_batch, in strict batch
//    order, so any thread count produces bit-identical embeddings.
//
//  * "seq" — start from a spanning forest with the same connected
//    components, then add the removed edges back one at a time; each
//    insertion triggers a random walk from *both* endpoints of the new
//    edge plus a sequential training step (train_sequential). The
//    initial forest phase reuses the pipelined engine; the insertion
//    stream is inherently sequential but still trains through
//    train_batch (the two endpoint walks share one batch, which lets
//    the FPGA backend burst their overlapping beta rows).
//
// Determinism contract: every stochastic choice in the pipelined path is
// keyed by (seed derived from the caller's Rng, stream, walk id) — see
// walk/walk_batch.hpp — so runs differing only in walker_threads are
// bit-identical. Runs differing in batch_walks train the same updates in
// the same order but may report different FPGA batch timings.

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "embedding/config.hpp"
#include "embedding/model.hpp"
#include "graph/dynamic_graph.hpp"
#include "graph/generators.hpp"
#include "graph/spanning_forest.hpp"
#include "util/timer.hpp"

namespace seqge {

struct TrainStats {
  double walk_seconds = 0.0;   ///< time spent generating random walks
  double train_seconds = 0.0;  ///< time spent in model updates
  std::size_t num_walks = 0;
  std::size_t num_contexts = 0;
  std::size_t num_batches = 0;       ///< train_batch calls issued
  std::size_t sampler_rebuilds = 0;  ///< alias-table rebuilds ("seq" only)
  std::size_t snapshots_published = 0;  ///< SnapshotSink invocations
  double last_loss = 0.0;
};

/// Receives embedding snapshots from a running training loop. The
/// trainers invoke on_snapshot / on_delta on the *consumer* thread at
/// the cadence configured in PipelineConfig / SequentialConfig, always
/// at a batch boundary (never mid-update), so implementations may read
/// the model freely — typically model.extract_embedding() or
/// model.extract_rows() — and hand the copy to concurrent readers.
/// serve::EmbeddingStore (full snapshots) and
/// serve::ShardedEmbeddingStore (copy-on-write deltas) are the
/// canonical implementations; anything else (metrics exporters, eval
/// probes) can plug in the same way.
///
/// Threading and re-entrancy contract:
///  * Calls are serialized: a trainer never invokes the sink from two
///    threads at once, and never re-enters it — each call returns
///    before training resumes, so a sink needs no internal locking
///    against the trainer (only against its own readers).
///  * The `model` reference is valid only for the duration of the call;
///    copy what you need (extract_embedding / extract_rows), do not
///    retain it.
///  * A sink must not call back into the training API from inside a
///    callback (the model is mid-run on the calling thread).
struct SnapshotSink {
  virtual ~SnapshotSink() = default;
  virtual void on_snapshot(const EmbeddingModel& model,
                           const TrainStats& stats) = 0;

  /// Delta variant: `touched_rows` (ascending, unique) is a superset of
  /// every embedding row the model may have changed since the previous
  /// sink invocation of this training run — rows outside it are
  /// bit-identical to what the sink last saw. The trainers emit deltas
  /// only when they can bound the touched set (NegativeMode::kPerWalk
  /// with pre-packed negatives, i.e. the standard pipelined path);
  /// otherwise they fall back to on_snapshot. The default forwards to
  /// on_snapshot, so full-snapshot sinks keep working unchanged.
  virtual void on_delta(const EmbeddingModel& model, const TrainStats& stats,
                        std::span<const NodeId> touched_rows) {
    (void)touched_rows;
    on_snapshot(model, stats);
  }
};

/// How the training pipeline is staffed and shaped. The default is the
/// single-threaded inline path (production on the consumer thread) —
/// bit-identical to any pipelined configuration with the same
/// batch_walks.
struct PipelineConfig {
  /// Walker/packer threads producing WalkBatches. 0 = inline production
  /// on the calling thread (no threads spawned).
  std::size_t walker_threads = 0;
  /// Walks packed per WalkBatch. Larger batches amortize the FPGA's
  /// burst DMA further but delay the pipeline's first result.
  std::size_t batch_walks = 64;
  /// Bound on batches in flight between producers and the consumer.
  std::size_t queue_capacity = 8;
  /// Early stop: consume at most this many walks (0 = no cap). The
  /// queue drains and producers join cleanly when the cap hits
  /// mid-stream.
  std::size_t max_walks = 0;
  /// Publish an embedding snapshot to `snapshot_sink` every this many
  /// trained batches (0 = only the final snapshot). Ignored when
  /// snapshot_sink is null.
  std::size_t snapshot_every = 0;
  /// Non-owning; must outlive the training call. When set, the trainers
  /// publish at the configured cadence plus once after the last update,
  /// so the sink always ends holding the final state. Publications go
  /// through on_delta with the touched-row set whenever the trainer can
  /// bound it (kPerWalk pre-packed negatives — the standard pipelined
  /// path), and through on_snapshot otherwise.
  SnapshotSink* snapshot_sink = nullptr;

  void validate() const {
    if (batch_walks == 0) {
      throw std::invalid_argument("PipelineConfig: batch_walks == 0");
    }
    if (queue_capacity == 0) {
      throw std::invalid_argument("PipelineConfig: queue_capacity == 0");
    }
  }
};

/// Batch ("all") training of `model` on a static graph. `rng` seeds the
/// run (one draw); pipe.walker_threads parallelizes walk generation and
/// batch packing without changing the result.
TrainStats train_all(EmbeddingModel& model, const Graph& graph,
                     const TrainConfig& cfg, Rng& rng,
                     const PipelineConfig& pipe = {});

struct SequentialConfig {
  TrainConfig train;
  /// Walks per node for the initial (forest) training phase. 0 = use
  /// train.walks_per_node.
  std::size_t initial_walks_per_node = 0;
  /// Rebuild the O(n) negative-sampling alias table every this many
  /// insertions (the paper rebuilds per walk; amortizing preserves the
  /// distribution to within staleness of a few hundred walk counts).
  /// Rebuilds performed are reported in TrainStats::sampler_rebuilds.
  std::size_t sampler_rebuild_interval = 256;
  /// Cap on the number of edge insertions (for scaled-down benches);
  /// SIZE_MAX = insert every removed edge.
  std::size_t max_insertions = static_cast<std::size_t>(-1);
  /// Pipeline staffing for the initial forest phase (the insertion
  /// stream is inherently sequential). Its snapshot_sink (if any) is
  /// shared by both phases.
  PipelineConfig pipeline{};
  /// Publish a snapshot to pipeline.snapshot_sink every this many edge
  /// insertions during phase 2 (0 = only the final snapshot).
  std::size_t snapshot_every_insertions = 0;
};

struct SequentialResult {
  TrainStats stats;
  std::size_t insertions = 0;
  std::size_t forest_edges = 0;
  std::size_t removed_edges = 0;
};

/// Dynamic ("seq") training: forest initialization + per-edge sequential
/// updates. The model keeps all state across insertions — this is what
/// exposes catastrophic forgetting in the SGD baseline.
SequentialResult train_sequential(EmbeddingModel& model,
                                  const Graph& full_graph,
                                  const SequentialConfig& cfg, Rng& rng);

}  // namespace seqge
