#pragma once
// Training orchestration for the paper's two scenarios (Sec. 4.3.2),
// rebuilt as a batched, producer/consumer pipelined engine:
//
//  * "all" — the entire graph exists from the beginning: generate r
//    walks per node, build the negative-sampling distribution from walk
//    frequencies, and train every walk (train_all). Walk generation and
//    batch packing (negative pre-sampling included) run on N walker
//    threads — the PS side of Fig. 4 — while the calling thread consumes
//    WalkBatches through EmbeddingModel::train_batch, in strict batch
//    order, so any thread count produces bit-identical embeddings.
//
//  * "seq" — start from a spanning forest with the same connected
//    components, then add the removed edges back one at a time; each
//    insertion triggers a random walk from *both* endpoints of the new
//    edge plus a sequential training step (train_sequential). The
//    initial forest phase reuses the pipelined engine; the insertion
//    stream is inherently sequential but still trains through
//    train_batch (the two endpoint walks share one batch, which lets
//    the FPGA backend burst their overlapping beta rows).
//
// Determinism contract: every stochastic choice in the pipelined path is
// keyed by (seed derived from the caller's Rng, stream, walk id) — see
// walk/walk_batch.hpp — so runs differing only in walker_threads are
// bit-identical. Runs differing in batch_walks train the same updates in
// the same order but may report different FPGA batch timings.

#include <cstdint>
#include <span>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "embedding/config.hpp"
#include "embedding/model.hpp"
#include "embedding/sparse_delta.hpp"
#include "graph/dynamic_graph.hpp"
#include "graph/generators.hpp"
#include "graph/sliding_window.hpp"
#include "graph/spanning_forest.hpp"
#include "util/timer.hpp"
#include "walk/node2vec_walker.hpp"
#include "walk/walk_batch.hpp"

namespace seqge {

struct TrainStats {
  double walk_seconds = 0.0;   ///< time spent generating random walks
  double train_seconds = 0.0;  ///< time spent in model updates
  std::size_t num_walks = 0;
  std::size_t num_contexts = 0;
  std::size_t num_batches = 0;       ///< train_batch calls issued
  std::size_t sampler_rebuilds = 0;  ///< alias-table rebuilds ("seq" only)
  std::size_t snapshots_published = 0;  ///< SnapshotSink invocations
  double last_loss = 0.0;
};

/// Receives embedding snapshots from a running training loop. The
/// trainers invoke on_snapshot / on_delta on the *consumer* thread at
/// the cadence configured in PipelineConfig / SequentialConfig, always
/// at a batch boundary (never mid-update), so implementations may read
/// the model freely — typically model.extract_embedding() or
/// model.extract_rows() — and hand the copy to concurrent readers.
/// serve::EmbeddingStore (full snapshots) and
/// serve::ShardedEmbeddingStore (copy-on-write deltas) are the
/// canonical implementations; anything else (metrics exporters, eval
/// probes) can plug in the same way.
///
/// Threading and re-entrancy contract:
///  * Calls are serialized: a trainer never invokes the sink from two
///    threads at once, and never re-enters it — each call returns
///    before training resumes, so a sink needs no internal locking
///    against the trainer (only against its own readers).
///  * The `model` reference is valid only for the duration of the call;
///    copy what you need (extract_embedding / extract_rows), do not
///    retain it.
///  * A sink must not call back into the training API from inside a
///    callback (the model is mid-run on the calling thread).
struct SnapshotSink {
  virtual ~SnapshotSink() = default;
  virtual void on_snapshot(const EmbeddingModel& model,
                           const TrainStats& stats) = 0;

  /// Delta variant: `touched_rows` (ascending, unique) is a superset of
  /// every embedding row the model may have changed since the previous
  /// sink invocation of this training run — rows outside it are
  /// bit-identical to what the sink last saw. The trainers emit deltas
  /// only when they can bound the touched set (NegativeMode::kPerWalk
  /// with pre-packed negatives, i.e. the standard pipelined path);
  /// otherwise they fall back to on_snapshot. The default forwards to
  /// on_snapshot, so full-snapshot sinks keep working unchanged.
  virtual void on_delta(const EmbeddingModel& model, const TrainStats& stats,
                        std::span<const NodeId> touched_rows) {
    (void)touched_rows;
    on_snapshot(model, stats);
  }

  /// Tombstone variant (deletion workloads): `nodes` — ascending,
  /// unique — is the COMPLETE set of nodes currently deleted from the
  /// graph (replace semantics, not incremental): serving layers must
  /// stop returning exactly these from top-k scans. The StreamTrainer
  /// re-publishes the full set after every delta, so a node that was
  /// deleted and later re-inserted simply drops out of the set (and its
  /// row is republished by the accompanying delta). Always invoked
  /// AFTER the same flush's on_delta/on_snapshot, under the same
  /// serialized-call contract. Default no-op, so insert-only sinks are
  /// unaffected.
  virtual void on_tombstone(std::span<const NodeId> nodes) { (void)nodes; }
};

/// How the training pipeline is staffed and shaped. The default is the
/// single-threaded inline path (production on the consumer thread) —
/// bit-identical to any pipelined configuration with the same
/// batch_walks.
struct PipelineConfig {
  /// Walker/packer threads producing WalkBatches. 0 = inline production
  /// on the calling thread (no threads spawned).
  std::size_t walker_threads = 0;
  /// Walks packed per WalkBatch. Larger batches amortize the FPGA's
  /// burst DMA further but delay the pipeline's first result.
  std::size_t batch_walks = 64;
  /// Bound on batches in flight between producers and the consumer.
  std::size_t queue_capacity = 8;
  /// Early stop: consume at most this many walks (0 = no cap). The
  /// queue drains and producers join cleanly when the cap hits
  /// mid-stream.
  std::size_t max_walks = 0;
  /// Publish an embedding snapshot to `snapshot_sink` every this many
  /// trained batches (0 = only the final snapshot). Ignored when
  /// snapshot_sink is null.
  std::size_t snapshot_every = 0;
  /// Non-owning; must outlive the training call. When set, the trainers
  /// publish at the configured cadence plus once after the last update,
  /// so the sink always ends holding the final state. Publications go
  /// through on_delta with the touched-row set whenever the trainer can
  /// bound it (kPerWalk pre-packed negatives — the standard pipelined
  /// path), and through on_snapshot otherwise.
  SnapshotSink* snapshot_sink = nullptr;

  void validate() const {
    if (batch_walks == 0) {
      throw std::invalid_argument("PipelineConfig: batch_walks == 0");
    }
    if (queue_capacity == 0) {
      throw std::invalid_argument("PipelineConfig: queue_capacity == 0");
    }
  }
};

/// Batch ("all") training of `model` on a static graph. `rng` seeds the
/// run (one draw); pipe.walker_threads parallelizes walk generation and
/// batch packing without changing the result.
TrainStats train_all(EmbeddingModel& model, const Graph& graph,
                     const TrainConfig& cfg, Rng& rng,
                     const PipelineConfig& pipe = {});

struct SequentialConfig {
  TrainConfig train;
  /// Walks per node for the initial (forest) training phase. 0 = use
  /// train.walks_per_node.
  std::size_t initial_walks_per_node = 0;
  /// Rebuild the O(n) negative-sampling alias table every this many
  /// insertions (the paper rebuilds per walk; amortizing preserves the
  /// distribution to within staleness of a few hundred walk counts).
  /// Rebuilds performed are reported in TrainStats::sampler_rebuilds.
  std::size_t sampler_rebuild_interval = 256;
  /// Cap on the number of edge insertions (for scaled-down benches);
  /// SIZE_MAX = insert every removed edge.
  std::size_t max_insertions = static_cast<std::size_t>(-1);
  /// Pipeline staffing for the initial forest phase (the insertion
  /// stream is inherently sequential). Its snapshot_sink (if any) is
  /// shared by both phases.
  PipelineConfig pipeline{};
  /// Publish a snapshot to pipeline.snapshot_sink every this many edge
  /// insertions during phase 2 (0 = only the final snapshot).
  std::size_t snapshot_every_insertions = 0;
};

struct SequentialResult {
  TrainStats stats;
  std::size_t insertions = 0;
  std::size_t forest_edges = 0;
  std::size_t removed_edges = 0;
};

/// Dynamic ("seq") training: forest initialization + per-edge sequential
/// updates. The model keeps all state across insertions — this is what
/// exposes catastrophic forgetting in the SGD baseline.
SequentialResult train_sequential(EmbeddingModel& model,
                                  const Graph& full_graph,
                                  const SequentialConfig& cfg, Rng& rng);

// ---------------------------------------------------------------------------
// Streaming trainer with deletions (the sliding-window IoT scenario).
// ---------------------------------------------------------------------------

struct StreamConfig {
  TrainConfig train;
  /// Non-owning; must outlive the trainer. Receives on_delta with the
  /// touched-row set followed by on_tombstone with the complete set of
  /// isolated (degree-0 after deletion) nodes at every flush().
  SnapshotSink* sink = nullptr;
  /// Auto-flush after this many graph mutations (insert/delete/expiry
  /// events); 0 = flush only when flush() is called.
  std::size_t publish_every = 0;
  /// When an eviction cannot be unlearned exactly (the model returned
  /// false from untrain_batch — SGD always, OS-ELM when its conditioning
  /// guard fires), re-train this many fresh walks from each surviving
  /// endpoint instead. This is the documented *approximate* deletion
  /// path: stale structure is diluted, not subtracted.
  std::size_t retrain_walks_per_endpoint = 1;
  /// Also re-train the surviving endpoints after a *successful*
  /// downdate ("downdate + retrain"). The downdate subtracts the
  /// deleted walks' contribution against the CURRENT weights; unless
  /// the deletion is last-in-first-out, the residual it removes differs
  /// from the one training added by however much the touched rows have
  /// drifted since. The refresh walks re-anchor the neighborhood to
  /// surviving structure (see bench_dynamic's recall gate). Disable
  /// for strict LIFO streams, where the downdate alone is exact.
  bool refresh_after_unlearn = true;
  /// Downdate staleness horizon, in stream mutations (inserts +
  /// deletions) between an edge's training and its deletion. The
  /// reversal's error is proportional to how far the touched rows have
  /// drifted since training — near-zero for a recent ("flapping") edge,
  /// embedding-wrecking for one trained half a stream ago (measured in
  /// bench_dynamic: applying the downdate to uniformly stale deletions
  /// caps neighbor recall at less than half the fresh baseline's).
  /// Deletions older than this skip the downdate and take the fallback
  /// re-train path.
  std::size_t unlearn_staleness_limit = 256;
};

struct StreamStats {
  std::size_t edges_inserted = 0;
  std::size_t edges_deleted = 0;   ///< explicit removals + horizon expiries
  std::size_t walks_trained = 0;   ///< insert walks + fallback re-trains
  std::size_t walks_unlearned = 0; ///< walks reversed exactly via untrain
  std::size_t fallback_retrains = 0;  ///< deletions that took the approximate path
  std::size_t nodes_tombstoned = 0;   ///< nodes that became isolated (cumulative)
  std::size_t publishes = 0;          ///< flush() calls that reached the sink
};

/// Drives an EmbeddingModel from a live edge stream over a
/// SlidingWindowGraph: insertions train (two endpoint walks, exactly the
/// "seq" scenario's update), deletions and horizon expiries *unlearn* —
/// exactly via EmbeddingModel::untrain_batch when the model supports it
/// (the recorded insertion batch, with its packed negatives, is replayed
/// in reverse), approximately via surviving-neighborhood re-training
/// otherwise. Nodes left with degree 0 are tombstoned: flush() publishes
/// the surviving touched rows through SnapshotSink::on_delta (cost
/// O(touched rows), never O(n)) and then the complete dead set through
/// on_tombstone, so serving layers stop returning them.
///
/// Negatives are always packed per walk (NegativeMode::kPerWalk,
/// regardless of cfg.train.negative_mode) — that is what makes the
/// recorded batches reversible without replaying model-internal RNG.
///
/// Single-threaded, like the phase-2 insertion stream of
/// train_sequential; determinism is keyed off one draw from the caller's
/// Rng at construction.
class StreamTrainer {
 public:
  /// `model` and `graph` are borrowed; both must outlive the trainer.
  /// The graph may be pre-populated (its existing edges are treated as
  /// already trained by the caller).
  StreamTrainer(EmbeddingModel& model, SlidingWindowGraph& graph,
                const StreamConfig& cfg, Rng& rng);

  /// Insert (u, v) at `stamp`, walk from both endpoints, train, and
  /// record the batch under the edge's token for later unlearning.
  /// Returns the token, or SlidingWindowGraph::kInvalidToken when the
  /// graph rejected the edge (duplicate / self-loop / out of range).
  std::uint64_t insert(NodeId u, NodeId v, float weight = 1.0f,
                       std::uint64_t stamp = 0);

  /// Explicitly delete a live edge and unlearn it. Returns false when
  /// the edge does not exist.
  bool remove(NodeId u, NodeId v);

  /// Advance the stream clock: evict every edge outside the window's
  /// horizon as of `now` and unlearn each. Returns the eviction count.
  std::size_t advance(std::uint64_t now);

  /// Publish pending changes to cfg.sink: on_delta over the touched
  /// live rows (dirty minus tombstoned — dead rows are never copied),
  /// then on_tombstone with the complete current dead set. No-op
  /// without a sink (the dirty set keeps accumulating).
  void flush();

  [[nodiscard]] const StreamStats& stats() const noexcept { return stats_; }
  /// Nodes currently tombstoned (isolated by deletions), unsorted.
  [[nodiscard]] const std::unordered_set<NodeId>& dead_nodes()
      const noexcept {
    return dead_;
  }

 private:
  void unlearn_edge(const ExpiredEdge& e);
  void retrain_endpoints(const ExpiredEdge& e);
  void note_dirty(const WalkBatch& batch);
  void note_mutation();

  EmbeddingModel& model_;
  SlidingWindowGraph& graph_;
  StreamConfig cfg_;
  Rng rng_;
  Node2VecWalker<SlidingWindowGraph> walker_;
  DirtyRowSet dirty_;
  /// Training record of one live edge, kept until deletion: the exact
  /// batch to reverse, and when it trained (staleness-guard input).
  struct Recorded {
    WalkBatch batch;
    std::uint64_t trained_at = 0;  ///< mutation_seq_ at train time
  };
  std::unordered_map<std::uint64_t, Recorded> records_;  // token -> record
  std::uint64_t mutation_seq_ = 0;
  std::unordered_set<NodeId> dead_;
  StreamStats stats_;
  TrainStats train_stats_;
  std::vector<NodeId> walk_scratch_, neg_scratch_;
  std::vector<NodeId> tombstone_scratch_, touched_scratch_;
  std::vector<ExpiredEdge> expired_scratch_;
  std::size_t since_publish_ = 0;
};

}  // namespace seqge
