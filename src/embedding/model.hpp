#pragma once
// Unified training-model interface. The two trainers (batch "all" and
// dynamic "seq", trainer.hpp) drive any model through this interface, so
// the original SGD skip-gram, the two OS-ELM variants, and the FPGA
// accelerator (src/fpga/accelerator.hpp) are interchangeable in every
// experiment harness.

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "embedding/config.hpp"
#include "graph/graph.hpp"
#include "linalg/matrix.hpp"
#include "sampling/negative_sampler.hpp"
#include "util/rng.hpp"

namespace seqge {

class WalkBatch;

class EmbeddingModel {
 public:
  virtual ~EmbeddingModel() = default;

  /// Train on every context of one random walk. Returns a model-specific
  /// loss value (logistic loss for SGD, squared error for OS-ELM) for
  /// monitoring only.
  virtual double train_walk(std::span<const NodeId> walk, std::size_t window,
                            const NegativeSampler& sampler, std::size_t ns,
                            NegativeMode mode, Rng& rng) = 0;

  /// Train a packed batch of walks. Each walk is trained with its own
  /// RNG stream seeded from WalkBatch::train_seed(i), using the walk's
  /// pre-sampled negatives when present (kPerWalk mode); the base-class
  /// fallback simply loops train_walk. Overrides must be bit-identical
  /// to the fallback — batching may only change *how* the same updates
  /// are applied (e.g. the FPGA amortizing DMA of shared beta rows
  /// across the batch), never the numbers. Returns the summed per-walk
  /// loss.
  virtual double train_batch(const WalkBatch& batch, std::size_t window,
                             const NegativeSampler& sampler, std::size_t ns,
                             NegativeMode mode);

  /// Reverse the training of `batch`, walks last-to-first (the LIFO
  /// order under which the OS-ELM covariance downdate is exact). Only
  /// batches whose walks carry pre-packed negatives (kPerWalk packing)
  /// are reversible — the sample stream is then reconstructible without
  /// replaying the model's internal RNG draws. Returns true when the
  /// whole batch was unlearned; false when the model does not support
  /// unlearning (the default — notably the SGD baseline, whose
  /// documented deletion path is approximate: re-train the surviving
  /// neighborhoods instead), a walk lacks packed negatives, or a
  /// conditioning guard fired mid-reversal. On false the model state
  /// may be partially reversed (see OselmSkipGram::untrain_walk); the
  /// caller must fall back to re-training the affected neighborhoods
  /// either way, which also repairs any partial reversal.
  virtual bool untrain_batch(const WalkBatch& batch, std::size_t window,
                             const NegativeSampler& sampler, std::size_t ns,
                             NegativeMode mode);

  /// The learned graph embedding, one row per node.
  [[nodiscard]] virtual MatrixF extract_embedding() const = 0;

  /// Copy the embedding rows of `nodes` into out.row(i) (out must be
  /// nodes.size() x dims()). Row i must be bit-identical to row
  /// nodes[i] of extract_embedding() — that equivalence is what lets
  /// the delta-publishing path (SnapshotSink::on_delta) reproduce the
  /// full-snapshot path exactly. The base implementation materializes
  /// the full embedding and slices it (O(n x dims)); every built-in
  /// backend overrides it with an O(touched x dims) copy.
  virtual void extract_rows(std::span<const NodeId> nodes,
                            MatrixF& out) const;

  [[nodiscard]] virtual std::size_t dims() const = 0;
  [[nodiscard]] virtual std::size_t num_nodes() const = 0;
  [[nodiscard]] virtual std::size_t model_bytes() const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

enum class ModelKind {
  kOriginalSGD,    ///< skip-gram + negative sampling + SGD (baseline)
  kOselm,          ///< proposed model, Algorithm 1
  kOselmDataflow,  ///< proposed model, Algorithm 2 (FPGA algorithm)
};

[[nodiscard]] std::string to_string(ModelKind kind);

/// Create one of the CPU models. Prefer the string-keyed backend
/// registry (embedding/backend_registry.hpp), which unifies these with
/// the FPGA accelerator; this enum factory is what the registry wraps.
[[nodiscard]] std::unique_ptr<EmbeddingModel> make_model(
    ModelKind kind, std::size_t num_nodes, const TrainConfig& cfg, Rng& rng);

}  // namespace seqge
