#pragma once
// Unified, string-keyed factory for every training backend: the three
// CPU models (original SGD skip-gram, OS-ELM Algorithm 1, OS-ELM
// dataflow Algorithm 2) AND the simulated FPGA accelerator, which used
// to be constructed through a separate src/fpga path. Examples and
// benches select a backend with `--model <name>`; nothing outside this
// registry (and its tests) should call make_model or build an
// fpga::Accelerator directly.
//
// Built-in names:
//   original-sgd    word2vec-style skip-gram + negative sampling + SGD
//   oselm           proposed OS-ELM model, Algorithm 1
//   oselm-dataflow  proposed OS-ELM model, Algorithm 2 (FPGA algorithm)
//   fpga            bit-accurate Q8.24 accelerator simulation (Fig. 4)
//
// The registry is open: call BackendRegistry::instance().add(...) to
// plug in additional backends (sharded, cached, remote, ...) without
// touching any call site.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "embedding/config.hpp"
#include "embedding/model.hpp"
#include "util/rng.hpp"

namespace seqge {

using BackendFactory = std::function<std::unique_ptr<EmbeddingModel>(
    std::size_t num_nodes, const TrainConfig& cfg, Rng& rng)>;

class BackendRegistry {
 public:
  /// The process-wide registry, pre-populated with the built-ins.
  static BackendRegistry& instance();

  /// Register `name`. Re-registering an existing name replaces its
  /// factory (useful for tests injecting doubles).
  void add(std::string name, std::string description, BackendFactory factory);

  [[nodiscard]] bool contains(const std::string& name) const;

  /// Construct a backend; throws std::invalid_argument for unknown
  /// names (message lists what is available).
  [[nodiscard]] std::unique_ptr<EmbeddingModel> create(
      const std::string& name, std::size_t num_nodes, const TrainConfig& cfg,
      Rng& rng) const;

  /// Backend names in registration order (stable across calls).
  [[nodiscard]] std::vector<std::string> names() const;

  /// One-line description per backend, for --help text.
  [[nodiscard]] std::string describe(const std::string& name) const;

 private:
  BackendRegistry();  // registers the built-ins

  struct Entry {
    std::string name;
    std::string description;
    BackendFactory factory;
  };
  [[nodiscard]] const Entry* find(const std::string& name) const;

  std::vector<Entry> entries_;
};

/// Shorthand for BackendRegistry::instance().create(...).
[[nodiscard]] std::unique_ptr<EmbeddingModel> make_backend(
    const std::string& name, std::size_t num_nodes, const TrainConfig& cfg,
    Rng& rng);

/// Shorthand for BackendRegistry::instance().names().
[[nodiscard]] std::vector<std::string> backend_names();

}  // namespace seqge
