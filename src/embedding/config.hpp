#pragma once
// Shared training configuration. Defaults follow Table 2 of the paper:
//   p = 0.5, q = 1.0, r = 10 walks/node, l = 80, w = 8, ns = 10.

#include <cstdint>
#include <stdexcept>

#include "walk/node2vec_walker.hpp"

namespace seqge {

/// When negatives are drawn: fresh per context (Algorithm 1 on CPU) or
/// one shared set per random walk (the FPGA's DRAM<->BRAM traffic
/// optimization, Sec. 3.2 / ref [18]).
enum class NegativeMode { kPerContext, kPerWalk };

struct TrainConfig {
  std::size_t dims = 32;              ///< graph-embedding dimensions N
  Node2VecParams walk{};              ///< p, q, l, w
  std::size_t walks_per_node = 10;    ///< r
  std::size_t negative_samples = 10;  ///< ns
  NegativeMode negative_mode = NegativeMode::kPerContext;

  // --- original skip-gram (SGD) ---
  double learning_rate = 0.01;        ///< paper Sec. 4.3
  std::size_t epochs = 1;             ///< passes over the walk corpus
  /// Opt-in word2vec-style sigmoid lookup table for the SGD model's
  /// scores (1024 bins over [-6, 6]) instead of std::exp. Trained
  /// floats are NOT bit-identical to the default; the fixed-seed
  /// loss/recall equivalence is gated in tests/test_train_fused.cpp.
  bool fast_sigmoid = false;

  // --- proposed OS-ELM model ---
  /// Scale factor mu mapping beta to the input-side weights (Fig. 7:
  /// accuracy is high for mu in [0.005, 0.1]).
  double mu = 0.05;
  /// Initial P = p0 * I. Large p0 = fast early adaptation (standard RLS
  /// forgetting-free initialization).
  double p0 = 0.1;
  /// Fig. 7 "alpha" baseline: input-side weights fixed at random values
  /// as in classic OS-ELM instead of the tied mu * beta^T.
  bool random_alpha = false;
  /// Re-initialize P = p0*I at every walk (board flow of Fig. 4: only
  /// beta round-trips DRAM<->BRAM). Keeps the RLS gain from decaying to
  /// zero over long sequential streams. false = classic persistent-P
  /// OS-ELM (ablation).
  bool reset_p_per_walk = true;

  std::uint64_t seed = 42;

  void validate() const {
    walk.validate();
    if (dims == 0) throw std::invalid_argument("TrainConfig: dims == 0");
    if (walks_per_node == 0) {
      throw std::invalid_argument("TrainConfig: walks_per_node == 0");
    }
    if (negative_samples == 0) {
      throw std::invalid_argument("TrainConfig: negative_samples == 0");
    }
    if (mu <= 0.0) throw std::invalid_argument("TrainConfig: mu <= 0");
    if (p0 <= 0.0) throw std::invalid_argument("TrainConfig: p0 <= 0");
    if (learning_rate <= 0.0) {
      throw std::invalid_argument("TrainConfig: learning_rate <= 0");
    }
  }
};

}  // namespace seqge
