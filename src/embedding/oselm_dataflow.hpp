#pragma once
// Algorithm 2: the dataflow-optimized variant of the OS-ELM skip-gram
// used on the FPGA (Sec. 3.2). Within one random walk, P and beta are
// frozen; each context computes against the frozen state and accumulates
// its corrections into delta-P (dense N x N) and delta-beta (sparse rows);
// both are committed once per walk. This removes the loop-carried
// dependency between contexts so the four HLS pipeline stages stream.
//
// The per-context correction uses the closed form
//   P_i H^T = (P H^T) / (1 + H P H^T)
// (exact for the rank-1 RLS update), so Stage 4 needs one scalar
// reciprocal, exactly as in Algorithm 2 lines 16-18.
//
// Accuracy consequence (Fig. 5): updates within a walk do not see each
// other, which costs up to ~1% micro-F1 on the small Cora graph and
// nothing on the larger Amazon graphs.

#include <cstdint>
#include <span>
#include <vector>

#include "embedding/config.hpp"
#include "embedding/sparse_delta.hpp"
#include "graph/graph.hpp"
#include "linalg/matrix.hpp"
#include "sampling/negative_sampler.hpp"
#include "util/rng.hpp"
#include "walk/corpus.hpp"

namespace seqge {

class OselmSkipGramDataflow {
 public:
  struct Options {
    std::size_t dims = 32;
    double mu = 0.05;
    double p0 = 0.1;
    /// See OselmSkipGram::Options::reset_p_per_walk.
    bool reset_p_per_walk = true;

    static Options from(const TrainConfig& cfg) {
      return {cfg.dims, cfg.mu, cfg.p0, cfg.reset_p_per_walk};
    }
  };

  OselmSkipGramDataflow(std::size_t num_nodes, const Options& opts,
                        Rng& rng);

  /// Train one full walk with a shared negative batch (the FPGA always
  /// shares negatives across the walk's contexts). Commits delta-P and
  /// delta-beta at the end. Returns summed squared error.
  double train_walk(std::span<const NodeId> walk, std::size_t window,
                    std::span<const NodeId> shared_negatives);

  /// Convenience overload that draws the shared negatives itself.
  double train_walk(std::span<const NodeId> walk, std::size_t window,
                    const NegativeSampler& sampler, std::size_t ns,
                    Rng& rng);

  /// Reverse one train_walk: the frozen-state mirror of the forward
  /// pass. Every context recomputes its correction against the
  /// *current* beta/P (exactly how the forward pass computed it against
  /// the then-frozen state) and accumulates the negated deltas; one
  /// commit applies them. Because the forward algorithm froze state for
  /// the whole walk, the recomputed corrections differ from the
  /// original ones only by the walk's own committed delta — a
  /// second-order O(mu^2) error — so this is an approximation (to
  /// ~1e-4 at default mu), not the exact LIFO reversal OselmSkipGram
  /// has. With reset_p_per_walk (default) ph = p0 * H is closed-form
  /// and P is left untouched (the per-walk covariance is transient);
  /// in persistent-P mode the accumulated delta-P is subtracted back.
  ///
  /// Returns false — with NO state modified (the deltas are discarded,
  /// unlike the Alg-1 path) — when the conditioning guard fires
  /// (1 + H P H^T <= eps for some context). Callers fall back to
  /// re-training surviving neighborhoods.
  bool untrain_walk(std::span<const NodeId> walk, std::size_t window,
                    std::span<const NodeId> shared_negatives,
                    double eps = 1e-6);

  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return beta_t_.rows();
  }
  [[nodiscard]] std::size_t dims() const noexcept { return beta_t_.cols(); }
  [[nodiscard]] double mu() const noexcept { return opts_.mu; }

  [[nodiscard]] const MatrixF& beta_transposed() const noexcept {
    return beta_t_;
  }
  /// Mutable access for checkpoint loading / warm starts.
  [[nodiscard]] MatrixF& beta_transposed() noexcept { return beta_t_; }
  [[nodiscard]] const MatrixF& covariance() const noexcept { return p_; }
  [[nodiscard]] MatrixF& covariance() noexcept { return p_; }

  [[nodiscard]] MatrixF extract_embedding() const;

  /// Embedding rows of `nodes` only, into out.row(i) — bit-identical to
  /// the corresponding rows of extract_embedding(), at O(touched) cost
  /// (the delta-publishing fast path).
  void extract_rows(std::span<const NodeId> nodes, MatrixF& out) const;

  [[nodiscard]] std::size_t model_bytes(
      std::size_t bytes_per_scalar = sizeof(float)) const noexcept {
    return (num_nodes() * dims() + dims() * dims()) * bytes_per_scalar;
  }

  /// Debug/bench knob: per-sample sequential delta updates instead of
  /// the fused batched kernels (which are bit-identical; tests gate).
  void set_force_unfused(bool v) noexcept { force_unfused_ = v; }

 private:
  Options opts_;
  MatrixF beta_t_;  // n x N (frozen during a walk)
  MatrixF p_;       // N x N (frozen during a walk)
  MatrixF delta_p_; // N x N accumulator
  SparseRowDelta delta_beta_;
  std::vector<float> h_, ph_, hp_, piht_;
  std::vector<NodeId> scratch_negatives_;
  // Fused-path scratch, reused across contexts/walks.
  std::vector<NodeId> sample_ids_;
  std::vector<const float*> sample_rows_;  // frozen beta rows (scores)
  std::vector<float*> delta_rows_;         // delta_beta_ rows (updates)
  std::vector<float> scores_, coeffs_;
  bool force_unfused_ = false;
};

}  // namespace seqge
