#include "embedding/checkpoint.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "embedding/oselm_dataflow.hpp"
#include "embedding/oselm_skipgram.hpp"
#include "embedding/skipgram_sgd.hpp"
#include "fpga/accelerator.hpp"

namespace seqge {

namespace {

constexpr char kMagic[] = "SEQGE1\n";
constexpr std::size_t kMagicLen = sizeof(kMagic) - 1;

void write_u64(std::ostream& os, std::uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint64_t read_u64(std::istream& is) {
  std::uint64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!is) throw std::runtime_error("checkpoint: truncated header");
  return v;
}

void write_matrix(std::ostream& os, const MatrixF& m) {
  os.write(reinterpret_cast<const char*>(m.data()),
           static_cast<std::streamsize>(m.size() * sizeof(float)));
}

void read_matrix(std::istream& is, MatrixF& m) {
  is.read(reinterpret_cast<char*>(m.data()),
          static_cast<std::streamsize>(m.size() * sizeof(float)));
  if (!is) throw std::runtime_error("checkpoint: truncated payload");
}

}  // namespace

void write_checkpoint(std::ostream& os, const MatrixF& beta,
                      const MatrixF* covariance) {
  os.write(kMagic, static_cast<std::streamsize>(kMagicLen));
  write_u64(os, beta.cols());
  write_u64(os, beta.rows());
  const char kind = covariance != nullptr ? 1 : 0;
  os.write(&kind, 1);
  write_matrix(os, beta);
  if (covariance != nullptr) {
    if (covariance->rows() != beta.cols() ||
        covariance->cols() != beta.cols()) {
      throw std::invalid_argument("checkpoint: covariance shape mismatch");
    }
    write_matrix(os, *covariance);
  }
  if (!os) throw std::runtime_error("checkpoint: write failed");
}

CheckpointHeader read_checkpoint_header(std::istream& is) {
  char magic[kMagicLen];
  is.read(magic, static_cast<std::streamsize>(kMagicLen));
  if (!is || std::memcmp(magic, kMagic, kMagicLen) != 0) {
    throw std::runtime_error("checkpoint: bad magic");
  }
  CheckpointHeader h;
  h.dims = read_u64(is);
  h.rows = read_u64(is);
  char kind = 0;
  is.read(&kind, 1);
  if (!is) throw std::runtime_error("checkpoint: truncated header");
  h.has_covariance = kind == 1;
  return h;
}

void read_checkpoint_payload(std::istream& is, const CheckpointHeader& h,
                             MatrixF& beta, MatrixF* covariance) {
  beta = MatrixF(h.rows, h.dims);
  read_matrix(is, beta);
  if (h.has_covariance) {
    MatrixF p(h.dims, h.dims);
    read_matrix(is, p);
    if (covariance != nullptr) *covariance = std::move(p);
  } else if (covariance != nullptr) {
    throw std::runtime_error("checkpoint: covariance requested but absent");
  }
}

void save_model(std::ostream& os, const OselmSkipGram& model) {
  write_checkpoint(os, model.beta_transposed(), &model.covariance());
}

void save_model(std::ostream& os, const OselmSkipGramDataflow& model) {
  write_checkpoint(os, model.beta_transposed(), &model.covariance());
}

void save_model(std::ostream& os, const SkipGramSGD& model) {
  // The SGD baseline's trainable state is both matrices; store W_in as
  // beta and W_out as the square... W_out is n x dims too, so it cannot
  // ride in the covariance slot. Persist W_in only — enough to serve the
  // embedding; resuming SGD training warm-starts the output vectors at
  // zero, the same as word2vec does.
  write_checkpoint(os, model.embeddings(), nullptr);
}

void save_model(std::ostream& os, const fpga::Accelerator& model) {
  const MatrixF beta = model.beta_as_float();
  write_checkpoint(os, beta, nullptr);
}

namespace {

template <typename Model>
void load_into(std::istream& is, Model& model, bool want_covariance) {
  const CheckpointHeader h = read_checkpoint_header(is);
  if (h.dims != model.dims() || h.rows != model.num_nodes()) {
    throw std::runtime_error("checkpoint: shape mismatch with model");
  }
  if (want_covariance && !h.has_covariance) {
    throw std::runtime_error("checkpoint: missing covariance for OS-ELM");
  }
  read_checkpoint_payload(is, h, model.beta_transposed(),
                          h.has_covariance ? &model.covariance() : nullptr);
}

}  // namespace

void load_model(std::istream& is, OselmSkipGram& model,
                bool require_covariance) {
  load_into(is, model, require_covariance);
}

void load_model(std::istream& is, OselmSkipGramDataflow& model,
                bool require_covariance) {
  load_into(is, model, require_covariance);
}

void load_model(std::istream& is, fpga::Accelerator& model) {
  const CheckpointHeader h = read_checkpoint_header(is);
  if (h.dims != model.dims() || h.rows != model.num_nodes()) {
    throw std::runtime_error("checkpoint: shape mismatch with model");
  }
  MatrixF beta;
  MatrixF covariance;  // consumed so the stream ends positioned correctly
  read_checkpoint_payload(is, h, beta,
                          h.has_covariance ? &covariance : nullptr);
  model.load_beta(beta);
}

void save_model(const std::string& path, const OselmSkipGram& model) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("checkpoint: cannot open " + path);
  save_model(os, model);
}

void load_model(const std::string& path, OselmSkipGram& model) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("checkpoint: cannot open " + path);
  load_model(is, model);
}

}  // namespace seqge
