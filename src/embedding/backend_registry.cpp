#include "embedding/backend_registry.hpp"

#include <stdexcept>

#include "fpga/accelerator.hpp"
#include "fpga/config.hpp"

namespace seqge {

namespace {

/// Map the shared TrainConfig onto the PL-side accelerator knobs; the
/// parallelism follows the paper's dims -> lanes table (Sec. 4.5).
fpga::AcceleratorConfig accelerator_config_from(const TrainConfig& cfg) {
  fpga::AcceleratorConfig acfg = fpga::AcceleratorConfig::for_dims(cfg.dims);
  acfg.walk_length = cfg.walk.walk_length;
  acfg.window = cfg.walk.window;
  acfg.negative_samples = cfg.negative_samples;
  acfg.mu = cfg.mu;
  acfg.p0 = cfg.p0;
  acfg.reset_p_per_walk = cfg.reset_p_per_walk;
  return acfg;
}

}  // namespace

BackendRegistry::BackendRegistry() {
  add("original-sgd",
      "skip-gram + negative sampling + SGD (baseline, Fig. 2-left)",
      [](std::size_t n, const TrainConfig& cfg, Rng& rng) {
        return make_model(ModelKind::kOriginalSGD, n, cfg, rng);
      });
  add("oselm", "proposed OS-ELM model, Algorithm 1",
      [](std::size_t n, const TrainConfig& cfg, Rng& rng) {
        return make_model(ModelKind::kOselm, n, cfg, rng);
      });
  add("oselm-dataflow",
      "proposed OS-ELM model, Algorithm 2 (the FPGA dataflow variant)",
      [](std::size_t n, const TrainConfig& cfg, Rng& rng) {
        return make_model(ModelKind::kOselmDataflow, n, cfg, rng);
      });
  add("fpga",
      "simulated ZCU104 accelerator: bit-accurate Q8.24 core + "
      "calibrated cycle/DMA model (Fig. 4)",
      [](std::size_t n, const TrainConfig& cfg, Rng& rng) {
        cfg.validate();
        return std::make_unique<fpga::Accelerator>(
            n, accelerator_config_from(cfg), rng);
      });
}

BackendRegistry& BackendRegistry::instance() {
  static BackendRegistry registry;
  return registry;
}

void BackendRegistry::add(std::string name, std::string description,
                          BackendFactory factory) {
  for (Entry& e : entries_) {
    if (e.name == name) {
      e.description = std::move(description);
      e.factory = std::move(factory);
      return;
    }
  }
  entries_.push_back(
      {std::move(name), std::move(description), std::move(factory)});
}

const BackendRegistry::Entry* BackendRegistry::find(
    const std::string& name) const {
  for (const Entry& e : entries_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

bool BackendRegistry::contains(const std::string& name) const {
  return find(name) != nullptr;
}

std::unique_ptr<EmbeddingModel> BackendRegistry::create(
    const std::string& name, std::size_t num_nodes, const TrainConfig& cfg,
    Rng& rng) const {
  const Entry* entry = find(name);
  if (entry == nullptr) {
    std::string known;
    for (const Entry& e : entries_) {
      if (!known.empty()) known += ", ";
      known += e.name;
    }
    throw std::invalid_argument("unknown backend '" + name +
                                "' (available: " + known + ")");
  }
  return entry->factory(num_nodes, cfg, rng);
}

std::vector<std::string> BackendRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.push_back(e.name);
  return out;
}

std::string BackendRegistry::describe(const std::string& name) const {
  const Entry* entry = find(name);
  return entry != nullptr ? entry->description : "";
}

std::unique_ptr<EmbeddingModel> make_backend(const std::string& name,
                                             std::size_t num_nodes,
                                             const TrainConfig& cfg,
                                             Rng& rng) {
  return BackendRegistry::instance().create(name, num_nodes, cfg, rng);
}

std::vector<std::string> backend_names() {
  return BackendRegistry::instance().names();
}

}  // namespace seqge
