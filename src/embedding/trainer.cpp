#include "embedding/trainer.hpp"

#include "walk/corpus.hpp"
#include "walk/node2vec_walker.hpp"

namespace seqge {

TrainStats train_all(EmbeddingModel& model, const Graph& graph,
                     const TrainConfig& cfg, Rng& rng) {
  cfg.validate();
  TrainStats stats;
  WallTimer timer;

  WalkCorpus corpus =
      generate_corpus(graph, cfg.walk, cfg.walks_per_node, rng);
  stats.walk_seconds = timer.seconds();

  NegativeSampler sampler(corpus.frequency);

  timer.reset();
  for (std::size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
    for (const auto& walk : corpus.walks) {
      stats.last_loss =
          model.train_walk(walk, cfg.walk.window, sampler,
                           cfg.negative_samples, cfg.negative_mode, rng);
      ++stats.num_walks;
      stats.num_contexts += num_contexts(walk.size(), cfg.walk.window);
    }
  }
  stats.train_seconds = timer.seconds();
  return stats;
}

SequentialResult train_sequential(EmbeddingModel& model,
                                  const Graph& full_graph,
                                  const SequentialConfig& cfg, Rng& rng) {
  cfg.train.validate();
  SequentialResult result;
  TrainStats& stats = result.stats;

  // Phase 0: split into spanning forest + insertion stream.
  ForestSplit split = split_spanning_forest(full_graph, rng);
  result.forest_edges = split.forest_edges.size();
  result.removed_edges = split.removed_edges.size();

  DynamicGraph dyn(full_graph.num_nodes());
  for (const Edge& e : split.forest_edges) dyn.add_edge(e.src, e.dst, e.weight);

  // Phase 1: initial training on the forest.
  const std::size_t init_r = cfg.initial_walks_per_node != 0
                                 ? cfg.initial_walks_per_node
                                 : cfg.train.walks_per_node;
  WallTimer timer;
  WalkCorpus corpus = generate_corpus(dyn, cfg.train.walk, init_r, rng);
  stats.walk_seconds += timer.seconds();

  std::vector<std::uint64_t> frequency = corpus.frequency;
  NegativeSampler sampler(frequency);

  timer.reset();
  for (const auto& walk : corpus.walks) {
    stats.last_loss =
        model.train_walk(walk, cfg.train.walk.window, sampler,
                         cfg.train.negative_samples,
                         cfg.train.negative_mode, rng);
    ++stats.num_walks;
    stats.num_contexts += num_contexts(walk.size(), cfg.train.walk.window);
  }
  stats.train_seconds += timer.seconds();
  corpus.walks.clear();
  corpus.walks.shrink_to_fit();

  // Phase 2: stream the removed edges back in; walk from both endpoints
  // of each inserted edge (Sec. 4.3.2) and train sequentially.
  Node2VecWalker<DynamicGraph> walker(dyn, cfg.train.walk);
  std::vector<NodeId> walk;
  std::size_t since_rebuild = 0;

  const std::size_t limit =
      std::min(cfg.max_insertions, split.removed_edges.size());
  for (std::size_t i = 0; i < limit; ++i) {
    const Edge& e = split.removed_edges[i];
    if (!dyn.add_edge(e.src, e.dst, e.weight)) continue;
    ++result.insertions;

    for (NodeId endpoint : {e.src, e.dst}) {
      timer.reset();
      walker.walk_into(rng, endpoint, walk);
      stats.walk_seconds += timer.seconds();
      for (NodeId v : walk) ++frequency[v];

      timer.reset();
      stats.last_loss =
          model.train_walk(walk, cfg.train.walk.window, sampler,
                           cfg.train.negative_samples,
                           cfg.train.negative_mode, rng);
      stats.train_seconds += timer.seconds();
      ++stats.num_walks;
      stats.num_contexts +=
          num_contexts(walk.size(), cfg.train.walk.window);
    }

    if (++since_rebuild >= cfg.sampler_rebuild_interval) {
      sampler = NegativeSampler(frequency);
      since_rebuild = 0;
    }
  }
  return result;
}

}  // namespace seqge
