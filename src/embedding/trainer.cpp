#include "embedding/trainer.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <map>
#include <mutex>
#include <optional>
#include <thread>

#include "embedding/sparse_delta.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/bounded_queue.hpp"
#include "walk/corpus.hpp"
#include "walk/node2vec_walker.hpp"
#include "walk/walk_batch.hpp"

namespace seqge {

namespace {

/// Registry mirrors of the TrainStats fields, so one metrics dump
/// covers training alongside the serving-side counters. TrainStats
/// stays the per-run return value; these accumulate process-wide.
struct TrainMetrics {
  obs::Counter* walks;
  obs::Counter* batches;
  obs::Counter* contexts;
  obs::Counter* sampler_rebuilds;
  obs::Counter* snapshots_published;
};

TrainMetrics& train_metrics() {
  static TrainMetrics m{
      obs::Registry::global().counter("seqge_train_walks_total", {},
                                      "Walks trained"),
      obs::Registry::global().counter("seqge_train_batches_total", {},
                                      "Walk batches trained"),
      obs::Registry::global().counter("seqge_train_contexts_total", {},
                                      "Context pairs trained"),
      obs::Registry::global().counter("seqge_train_sampler_rebuilds_total", {},
                                      "Negative-sampler rebuilds"),
      obs::Registry::global().counter("seqge_train_snapshots_published_total",
                                      {}, "Snapshot/delta publications"),
  };
  return m;
}

/// Registry mirrors of the StreamStats deletion-side fields.
struct DeletionMetrics {
  obs::Counter* edges;
  obs::Counter* unlearn_walks;
  obs::Counter* fallback_retrains;
  obs::Counter* tombstones;
};

DeletionMetrics& deletion_metrics() {
  static DeletionMetrics m{
      obs::Registry::global().counter("seqge_deletions_edges_total", {},
                                      "Edges deleted or expired"),
      obs::Registry::global().counter(
          "seqge_deletions_unlearn_walks_total", {},
          "Walks reversed exactly via covariance downdating"),
      obs::Registry::global().counter(
          "seqge_deletions_fallback_retrains_total", {},
          "Deletions that fell back to approximate re-training"),
      obs::Registry::global().counter(
          "seqge_tombstones_total", {},
          "Nodes tombstoned (isolated by deletions)"),
  };
  return m;
}

/// Routes cadence publications to the configured SnapshotSink, tracking
/// the rows training may have touched since the last publication so the
/// sink can be handed a delta (on_delta) instead of being forced to
/// copy the full embedding. The touched set is a sound superset for
/// every built-in backend: a trained walk only writes embedding rows of
/// its own nodes and its negative samples, so when the negatives are
/// pre-packed (kPerWalk pipeline packing) the union of walk nodes and
/// packed negatives bounds every write. When a walk's negatives are
/// drawn inside the model (kPerContext, or kPerWalk without packing)
/// the set is unknowable here and the dispatcher falls back to a full
/// on_snapshot for that publication.
class SnapshotDispatcher {
 public:
  SnapshotDispatcher(SnapshotSink* sink, std::size_t num_rows,
                     std::size_t ns)
      : sink_(sink), ns_(ns), dirty_(sink != nullptr ? num_rows : 0) {}

  [[nodiscard]] bool active() const noexcept { return sink_ != nullptr; }

  /// Record walk i of `batch` (call after truncation, for walks that
  /// actually trained).
  void note_walk(const WalkBatch& batch, std::size_t i) {
    if (sink_ == nullptr) return;
    const auto walk = batch.walk(i);
    if (walk.empty()) return;
    dirty_.mark_all(walk);
    if (batch.has_negatives(i)) {
      dirty_.mark_all(batch.negatives(i));
    } else if (ns_ > 0) {
      // The model draws its own negatives; their rows are unknown here.
      full_required_ = true;
    }
  }

  /// Publish to the sink (cadence or final). Delta when the touched set
  /// is bounded, full snapshot otherwise; resets the tracking either
  /// way.
  void publish(const EmbeddingModel& model, const TrainStats& stats) {
    if (sink_ == nullptr) return;
    OBS_SPAN("publish");
    train_metrics().snapshots_published->add();
    if (full_required_) {
      sink_->on_snapshot(model, stats);
    } else {
      sink_->on_delta(model, stats, dirty_.sorted());
    }
    dirty_.clear();
    full_required_ = false;
  }

 private:
  SnapshotSink* sink_;
  std::size_t ns_;
  DirtyRowSet dirty_;
  bool full_required_ = false;
};

/// Append one walk to a batch: pre-sample the shared negative set from
/// the walk's own seed stream when the mode calls for it (the PS side's
/// pre-sampling in Fig. 4), otherwise let the model draw from
/// Rng(train_seed) itself. Every packing site must go through this so
/// the pipeline's determinism contract lives in exactly one place.
void pack_walk(WalkBatch& batch, std::span<const NodeId> walk,
               std::uint64_t train_seed, NegativeMode mode, std::size_t ns,
               const NegativeSampler& sampler,
               std::vector<NodeId>& neg_scratch) {
  if (mode == NegativeMode::kPerWalk && !walk.empty()) {
    Rng nrng(train_seed);
    sampler.sample_batch(nrng, ns, walk[0], neg_scratch);
    batch.add_walk(walk, neg_scratch, train_seed);
  } else {
    batch.add_walk(walk, {}, train_seed);
  }
}

/// Deterministic batch factory over a generated corpus: batch `b` of
/// epoch `e` packs walks [b*B, b*B+B) with training seeds derived from
/// (base_seed, epoch, walk id). build() is const w.r.t. shared state,
/// so any number of producer threads can build disjoint batches
/// concurrently.
struct BatchSource {
  const WalkCorpus& corpus;
  const NegativeSampler& sampler;
  std::size_t window;
  std::size_t ns;
  NegativeMode mode;
  std::uint64_t base_seed;
  std::size_t batch_walks;
  std::size_t batches_per_epoch;

  void build(std::size_t global_index, WalkBatch& batch,
             std::vector<NodeId>& neg_scratch) const {
    const std::size_t epoch = global_index / batches_per_epoch;
    const std::size_t b = global_index % batches_per_epoch;
    batch.clear();
    batch.index = global_index;
    const std::size_t lo = b * batch_walks;
    const std::size_t hi = std::min(corpus.walks.size(), lo + batch_walks);
    for (std::size_t w = lo; w < hi; ++w) {
      const std::uint64_t tseed =
          derive_seed(base_seed, kTrainSeedStream + epoch, w);
      pack_walk(batch, corpus.walks[w], tseed, mode, ns, sampler,
                neg_scratch);
    }
  }
};

/// Run `total_batches` batches from `src` through the model. With
/// pipe.walker_threads == 0 everything happens inline on the calling
/// thread; otherwise producers build batches into a bounded queue and
/// the calling thread consumes them strictly in index order (a small
/// reorder buffer absorbs out-of-order arrival), which is what makes
/// the two paths bit-identical. Honors pipe.max_walks as an early-stop
/// budget: the final batch is truncated, the queue closed, and all
/// producers joined before returning.
void run_batched(EmbeddingModel& model, const BatchSource& src,
                 std::size_t total_batches, const PipelineConfig& pipe,
                 TrainStats& stats, SnapshotDispatcher& snapshots) {
  const std::size_t budget = pipe.max_walks;

  // Train one batch; returns false once the walk budget is exhausted.
  auto train_one = [&](WalkBatch& batch) -> bool {
    if (budget != 0) {
      if (stats.num_walks >= budget) return false;
      batch.truncate(budget - stats.num_walks);
    }
    if (!batch.empty()) {
      {
        OBS_SPAN("train_batch");
        stats.last_loss = model.train_batch(batch, src.window, src.sampler,
                                            src.ns, src.mode);
      }
      for (std::size_t i = 0; i < batch.num_walks(); ++i) {
        snapshots.note_walk(batch, i);
      }
      stats.num_walks += batch.num_walks();
      stats.num_contexts += batch.total_contexts(src.window);
      ++stats.num_batches;
      TrainMetrics& tm = train_metrics();
      tm.walks->add(batch.num_walks());
      tm.contexts->add(batch.total_contexts(src.window));
      tm.batches->add();
      // Snapshot cadence: on the consumer thread, at a batch boundary,
      // so the sink sees a fully committed model state.
      if (pipe.snapshot_sink != nullptr && pipe.snapshot_every != 0 &&
          stats.num_batches % pipe.snapshot_every == 0) {
        snapshots.publish(model, stats);
        ++stats.snapshots_published;
      }
    }
    return budget == 0 || stats.num_walks < budget;
  };

  if (pipe.walker_threads == 0) {
    WalkBatch batch;
    std::vector<NodeId> neg_scratch;
    for (std::size_t b = 0; b < total_batches; ++b) {
      src.build(b, batch, neg_scratch);
      if (!train_one(batch)) break;
    }
    return;
  }

  BoundedQueue<WalkBatch> queue(pipe.queue_capacity);
  std::atomic<std::size_t> next_index{0};
  std::vector<std::thread> producers;
  producers.reserve(pipe.walker_threads);

  // Production lookahead window. The queue alone cannot bound memory:
  // the consumer pops out-of-order arrivals into its reorder buffer
  // (freeing queue slots), so if the producer holding the next-needed
  // index stalls, the others could otherwise run arbitrarily far
  // ahead. Producers therefore wait before *claiming* an index more
  // than `lookahead` batches past the last trained one, which bounds
  // queue + reorder buffer + in-build batches combined.
  const std::size_t lookahead =
      pipe.queue_capacity + pipe.walker_threads;
  std::mutex window_mutex;
  std::condition_variable window_cv;
  std::size_t trained = 0;  // guarded by window_mutex
  bool stopping = false;    // guarded by window_mutex

  // Stop + close + drain + join on every exit path — including an
  // exception thrown by a backend's train_batch — so producers never
  // outlive the queue and the std::threads are always joined before
  // unwinding.
  struct PipelineGuard {
    BoundedQueue<WalkBatch>& queue;
    std::vector<std::thread>& producers;
    std::mutex& window_mutex;
    std::condition_variable& window_cv;
    bool& stopping;
    ~PipelineGuard() {
      {
        std::lock_guard lock(window_mutex);
        stopping = true;
      }
      window_cv.notify_all();
      queue.close();
      while (queue.pop().has_value()) {}  // drain in-flight batches
      for (auto& th : producers) {
        if (th.joinable()) th.join();
      }
    }
  } guard{queue, producers, window_mutex, window_cv, stopping};

  for (std::size_t t = 0; t < pipe.walker_threads; ++t) {
    producers.emplace_back([&] {
      std::vector<NodeId> neg_scratch;
      for (;;) {
        const std::size_t b = next_index.fetch_add(1);
        if (b >= total_batches) break;
        {
          std::unique_lock lock(window_mutex);
          window_cv.wait(lock, [&] {
            return stopping || b <= trained + lookahead;
          });
          if (stopping) break;
        }
        WalkBatch batch;
        src.build(b, batch, neg_scratch);
        if (!queue.push(std::move(batch))) break;  // closed: early stop
      }
    });
  }

  // Consumer: train in batch-index order; a small reorder buffer
  // absorbs out-of-order arrivals (bounded by the lookahead window).
  std::map<std::size_t, WalkBatch> pending;
  std::size_t next_to_train = 0;
  bool keep_going = true;
  while (keep_going && next_to_train < total_batches) {
    std::optional<WalkBatch> item;
    {
      // Consumer-side stall: how long training waits for producers.
      OBS_SPAN("queue_wait");
      item = queue.pop();
    }
    if (!item) break;
    pending.emplace(item->index, std::move(*item));
    for (auto it = pending.find(next_to_train); it != pending.end();
         it = pending.find(next_to_train)) {
      keep_going = train_one(it->second);
      pending.erase(it);
      ++next_to_train;
      {
        std::lock_guard lock(window_mutex);
        trained = next_to_train;
      }
      window_cv.notify_all();
      if (!keep_going) break;
    }
  }
}

}  // namespace

TrainStats train_all(EmbeddingModel& model, const Graph& graph,
                     const TrainConfig& cfg, Rng& rng,
                     const PipelineConfig& pipe) {
  cfg.validate();
  pipe.validate();
  TrainStats stats;
  const std::uint64_t base_seed = rng.next();

  // Stage 1 (PS): walk generation, fanned out over the walker threads.
  WallTimer timer;
  WalkCorpus corpus = [&] {
    OBS_SPAN("walk_gen");
    return generate_corpus_pipelined(graph, cfg.walk, cfg.walks_per_node,
                                     base_seed, pipe.walker_threads);
  }();
  stats.walk_seconds = timer.seconds();

  NegativeSampler sampler(corpus.frequency);

  // Stage 2 (PS -> PL): producers pack batches + pre-sample negatives
  // while the consumer streams them through train_batch.
  timer.reset();
  const std::size_t batches_per_epoch =
      (corpus.walks.size() + pipe.batch_walks - 1) / pipe.batch_walks;
  const BatchSource src{corpus,
                        sampler,
                        cfg.walk.window,
                        cfg.negative_samples,
                        cfg.negative_mode,
                        base_seed,
                        pipe.batch_walks,
                        batches_per_epoch};
  SnapshotDispatcher snapshots(pipe.snapshot_sink, model.num_nodes(),
                               cfg.negative_samples);
  run_batched(model, src, cfg.epochs * batches_per_epoch, pipe, stats,
              snapshots);
  stats.train_seconds = timer.seconds();
  if (snapshots.active()) {
    snapshots.publish(model, stats);
    ++stats.snapshots_published;
  }
  return stats;
}

SequentialResult train_sequential(EmbeddingModel& model,
                                  const Graph& full_graph,
                                  const SequentialConfig& cfg, Rng& rng) {
  cfg.train.validate();
  cfg.pipeline.validate();
  SequentialResult result;
  TrainStats& stats = result.stats;

  // Phase 0: split into spanning forest + insertion stream.
  ForestSplit split = split_spanning_forest(full_graph, rng);
  result.forest_edges = split.forest_edges.size();
  result.removed_edges = split.removed_edges.size();

  DynamicGraph dyn(full_graph.num_nodes());
  for (const Edge& e : split.forest_edges) dyn.add_edge(e.src, e.dst, e.weight);

  const std::uint64_t base_seed = rng.next();

  // One dispatcher across both phases: the dirty-row set carries over
  // the phase boundary, so the first phase-2 publication still covers
  // everything phase 1 touched since the last cadence publish.
  SnapshotDispatcher snapshots(cfg.pipeline.snapshot_sink,
                               model.num_nodes(),
                               cfg.train.negative_samples);

  // Phase 1: initial training on the forest, through the same pipelined
  // engine as train_all.
  const std::size_t init_r = cfg.initial_walks_per_node != 0
                                 ? cfg.initial_walks_per_node
                                 : cfg.train.walks_per_node;
  WallTimer timer;
  WalkCorpus corpus = [&] {
    OBS_SPAN("walk_gen");
    return generate_corpus_pipelined(dyn, cfg.train.walk, init_r, base_seed,
                                     cfg.pipeline.walker_threads);
  }();
  stats.walk_seconds += timer.seconds();

  std::vector<std::uint64_t> frequency = corpus.frequency;
  NegativeSampler sampler(frequency);

  timer.reset();
  const std::size_t batches_per_epoch =
      (corpus.walks.size() + cfg.pipeline.batch_walks - 1) /
      cfg.pipeline.batch_walks;
  const BatchSource src{corpus,
                        sampler,
                        cfg.train.walk.window,
                        cfg.train.negative_samples,
                        cfg.train.negative_mode,
                        base_seed,
                        cfg.pipeline.batch_walks,
                        batches_per_epoch};
  run_batched(model, src, batches_per_epoch, cfg.pipeline, stats,
              snapshots);
  stats.train_seconds += timer.seconds();
  corpus.walks.clear();
  corpus.walks.shrink_to_fit();

  // Phase 2: stream the removed edges back in; walk from both endpoints
  // of each inserted edge (Sec. 4.3.2) and train sequentially. The two
  // endpoint walks share one WalkBatch, so backends with batched
  // implementations (notably the FPGA) burst their overlapping rows.
  Node2VecWalker<DynamicGraph> walker(dyn, cfg.train.walk);
  std::vector<NodeId> walk;
  std::vector<NodeId> neg_scratch;
  WalkBatch batch;
  std::size_t since_rebuild = 0;
  const std::size_t window = cfg.train.walk.window;

  const std::size_t limit =
      std::min(cfg.max_insertions, split.removed_edges.size());
  for (std::size_t i = 0; i < limit; ++i) {
    const Edge& e = split.removed_edges[i];
    if (!dyn.add_edge(e.src, e.dst, e.weight)) continue;
    ++result.insertions;

    batch.clear();
    timer.reset();
    {
      OBS_SPAN("walk_gen");
      for (NodeId endpoint : {e.src, e.dst}) {
        walker.walk_into(rng, endpoint, walk);
        for (NodeId v : walk) ++frequency[v];
        pack_walk(batch, walk, rng.next(), cfg.train.negative_mode,
                  cfg.train.negative_samples, sampler, neg_scratch);
        ++stats.num_walks;
        stats.num_contexts += num_contexts(walk.size(), window);
        train_metrics().walks->add();
        train_metrics().contexts->add(num_contexts(walk.size(), window));
      }
    }
    stats.walk_seconds += timer.seconds();

    timer.reset();
    {
      OBS_SPAN("train_batch");
      stats.last_loss = model.train_batch(batch, window, sampler,
                                          cfg.train.negative_samples,
                                          cfg.train.negative_mode);
    }
    stats.train_seconds += timer.seconds();
    ++stats.num_batches;
    train_metrics().batches->add();
    for (std::size_t w = 0; w < batch.num_walks(); ++w) {
      snapshots.note_walk(batch, w);
    }

    if (++since_rebuild >= cfg.sampler_rebuild_interval) {
      sampler = NegativeSampler(frequency);
      ++stats.sampler_rebuilds;
      train_metrics().sampler_rebuilds->add();
      since_rebuild = 0;
    }

    if (snapshots.active() && cfg.snapshot_every_insertions != 0 &&
        result.insertions % cfg.snapshot_every_insertions == 0) {
      snapshots.publish(model, stats);
      ++stats.snapshots_published;
    }
  }
  if (snapshots.active()) {
    snapshots.publish(model, stats);
    ++stats.snapshots_published;
  }
  return result;
}

// ---------------------------------------------------------------------------
// StreamTrainer
// ---------------------------------------------------------------------------

StreamTrainer::StreamTrainer(EmbeddingModel& model, SlidingWindowGraph& graph,
                             const StreamConfig& cfg, Rng& rng)
    : model_(model),
      graph_(graph),
      cfg_(cfg),
      rng_(rng.next()),
      walker_(graph, cfg.train.walk),
      dirty_(model.num_nodes()) {
  cfg_.train.validate();
  if (cfg_.retrain_walks_per_endpoint == 0) {
    cfg_.retrain_walks_per_endpoint = 1;
  }
}

std::uint64_t StreamTrainer::insert(NodeId u, NodeId v, float weight,
                                    std::uint64_t stamp) {
  const std::uint64_t token = graph_.add_edge(u, v, weight, stamp);
  if (token == SlidingWindowGraph::kInvalidToken) return token;
  ++stats_.edges_inserted;
  // A re-inserted node is live again; its rows get republished by the
  // training walks below (walk[0] is the endpoint itself).
  dead_.erase(u);
  dead_.erase(v);

  const std::size_t window = cfg_.train.walk.window;
  const std::size_t ns = cfg_.train.negative_samples;
  const NegativeSampler& sampler = graph_.sampler();
  WalkBatch batch;
  {
    OBS_SPAN("walk_gen");
    for (NodeId endpoint : {u, v}) {
      walker_.walk_into(rng_, endpoint, walk_scratch_);
      // Always pack kPerWalk negatives: the recorded batch must carry
      // its full sample stream to be reversible on eviction.
      pack_walk(batch, walk_scratch_, rng_.next(), NegativeMode::kPerWalk,
                ns, sampler, neg_scratch_);
      ++stats_.walks_trained;
      train_metrics().walks->add();
      train_metrics().contexts->add(
          num_contexts(walk_scratch_.size(), window));
    }
  }
  {
    OBS_SPAN("train_batch");
    train_stats_.last_loss = model_.train_batch(
        batch, window, sampler, ns, NegativeMode::kPerWalk);
  }
  ++train_stats_.num_batches;
  train_metrics().batches->add();
  note_dirty(batch);
  records_[token] = Recorded{std::move(batch), ++mutation_seq_};
  note_mutation();
  return token;
}

bool StreamTrainer::remove(NodeId u, NodeId v) {
  auto evicted = graph_.remove_edge(u, v);
  if (!evicted) return false;
  unlearn_edge(*evicted);
  note_mutation();
  return true;
}

std::size_t StreamTrainer::advance(std::uint64_t now) {
  expired_scratch_.clear();
  graph_.expire(now, expired_scratch_);
  for (const ExpiredEdge& e : expired_scratch_) {
    unlearn_edge(e);
    note_mutation();
  }
  return expired_scratch_.size();
}

void StreamTrainer::unlearn_edge(const ExpiredEdge& e) {
  ++stats_.edges_deleted;
  deletion_metrics().edges->add();
  const std::size_t window = cfg_.train.walk.window;
  const std::size_t ns = cfg_.train.negative_samples;

  bool unlearned = false;
  ++mutation_seq_;
  auto it = records_.find(e.token);
  if (it != records_.end()) {
    // Staleness guard: the downdate reverses the recorded residuals
    // against the CURRENT weights, so its error grows with how far the
    // touched rows drifted since training. Recent deletions (flapping
    // links, immediate retractions) reverse near-exactly; one trained
    // half a stream ago would inject more noise than it removes — skip
    // the downdate and dilute via re-training instead.
    const bool fresh_enough =
        mutation_seq_ - it->second.trained_at <= cfg_.unlearn_staleness_limit;
    if (fresh_enough) {
      const WalkBatch& batch = it->second.batch;
      // Every row the batch may touch needs republishing whether the
      // reversal is exact, partial (guard fired mid-batch), or skipped.
      note_dirty(batch);
      {
        OBS_SPAN("untrain_batch");
        unlearned = model_.untrain_batch(batch, window, graph_.sampler(),
                                         ns, NegativeMode::kPerWalk);
      }
      if (unlearned) {
        stats_.walks_unlearned += batch.num_walks();
        deletion_metrics().unlearn_walks->add(batch.num_walks());
      }
    }
    records_.erase(it);
  }

  if (!unlearned) {
    // Approximate path: the recorded batch is missing (pre-existing
    // edge), the model cannot reverse (SGD), or a conditioning guard
    // fired — re-train fresh walks from the surviving endpoints so the
    // embedding reflects the post-deletion structure.
    ++stats_.fallback_retrains;
    deletion_metrics().fallback_retrains->add();
    retrain_endpoints(e);
  } else if (cfg_.refresh_after_unlearn) {
    // Downdate + retrain: the reversal subtracted the deleted walks
    // against the current weights (exact only for LIFO deletions);
    // re-anchor the surviving neighborhoods so out-of-order deletion
    // drift does not accumulate (StreamConfig::refresh_after_unlearn).
    retrain_endpoints(e);
  }

  for (NodeId endpoint : {e.src, e.dst}) {
    if (graph_.degree(endpoint) == 0 && dead_.insert(endpoint).second) {
      ++stats_.nodes_tombstoned;
      deletion_metrics().tombstones->add();
    }
  }
}

// Train cfg_.retrain_walks_per_endpoint fresh walks from each surviving
// endpoint of a deleted edge. Not recorded: these walks belong to no
// edge.
void StreamTrainer::retrain_endpoints(const ExpiredEdge& e) {
  const std::size_t window = cfg_.train.walk.window;
  const std::size_t ns = cfg_.train.negative_samples;
  const NegativeSampler& sampler = graph_.sampler();
  WalkBatch batch;
  for (NodeId endpoint : {e.src, e.dst}) {
    if (graph_.degree(endpoint) == 0) continue;
    for (std::size_t r = 0; r < cfg_.retrain_walks_per_endpoint; ++r) {
      walker_.walk_into(rng_, endpoint, walk_scratch_);
      pack_walk(batch, walk_scratch_, rng_.next(), NegativeMode::kPerWalk,
                ns, sampler, neg_scratch_);
      ++stats_.walks_trained;
      train_metrics().walks->add();
    }
  }
  if (!batch.empty()) {
    train_stats_.last_loss = model_.train_batch(
        batch, window, sampler, ns, NegativeMode::kPerWalk);
    ++train_stats_.num_batches;
    note_dirty(batch);
  }
}

void StreamTrainer::note_dirty(const WalkBatch& batch) {
  for (std::size_t i = 0; i < batch.num_walks(); ++i) {
    dirty_.mark_all(batch.walk(i));
    if (batch.has_negatives(i)) dirty_.mark_all(batch.negatives(i));
  }
}

void StreamTrainer::note_mutation() {
  if (cfg_.sink != nullptr && cfg_.publish_every != 0 &&
      ++since_publish_ >= cfg_.publish_every) {
    flush();
  }
}

void StreamTrainer::flush() {
  since_publish_ = 0;
  if (cfg_.sink == nullptr) return;
  OBS_SPAN("publish");

  tombstone_scratch_.assign(dead_.begin(), dead_.end());
  std::sort(tombstone_scratch_.begin(), tombstone_scratch_.end());

  // Publish only surviving rows: dirty minus tombstoned. Dead rows are
  // never copied — the deletion publish cost stays O(touched), and the
  // tombstone pass itself copies nothing (copy-on-write bitmap swap in
  // the sharded store).
  const auto touched = dirty_.sorted();
  touched_scratch_.clear();
  std::set_difference(touched.begin(), touched.end(),
                      tombstone_scratch_.begin(), tombstone_scratch_.end(),
                      std::back_inserter(touched_scratch_));

  train_stats_.num_walks = stats_.walks_trained;
  cfg_.sink->on_delta(model_, train_stats_, touched_scratch_);
  // Replace semantics: the complete current dead set, after the delta,
  // so a full-snapshot fallback inside on_delta (which clears the
  // store's bits) is immediately re-covered.
  cfg_.sink->on_tombstone(tombstone_scratch_);
  ++stats_.publishes;
  ++train_stats_.snapshots_published;
  train_metrics().snapshots_published->add();
  dirty_.clear();
}

}  // namespace seqge
