#pragma once
// The "Original model": skip-gram with negative sampling trained by SGD
// (word2vec-style; Fig. 2-left of the paper). This is the baseline that
// the proposed OS-ELM model is compared against in Tables 3-5 and
// Figs. 5-6, and the model that exhibits catastrophic forgetting in the
// "seq" scenario.
//
// Per (center c, sample s, label t) the update is
//   g = sigmoid(h . v_s) - t
//   v_s -= lr * g * h        (output vector)
//   h_acc += g * v_s          (accumulated into the input row after the
//                              context's samples are processed)
//   w_c -= lr * h_acc
// The graph embedding is the input matrix W_in (Sec. 2.1).
//
// Deletion/unlearning: SGD has no closed-form reversal (unlike the
// OS-ELM recursion, whose covariance downdate untrains exactly — see
// OselmSkipGram::untrain_walk), so this model keeps the default
// EmbeddingModel::untrain_batch (returns false) and the documented
// *approximate* deletion path applies: on edge expiry the StreamTrainer
// re-trains fresh walks from the deleted edge's surviving endpoints,
// diluting the stale structure instead of subtracting it.

#include <cstdint>
#include <span>
#include <vector>

#include "embedding/config.hpp"
#include "graph/graph.hpp"
#include "linalg/matrix.hpp"
#include "sampling/negative_sampler.hpp"
#include "util/rng.hpp"
#include "walk/corpus.hpp"

namespace seqge {

class SkipGramSGD {
 public:
  /// W_in ~ U(-0.5/dims, 0.5/dims), W_out = 0 (word2vec convention).
  /// `fast_sigmoid` swaps std::exp for the word2vec-style lookup table
  /// (see TrainConfig::fast_sigmoid) — an opt-in approximation: trained
  /// floats differ from the default mode, but loss/recall are
  /// equivalent (gated in tests/test_train_fused.cpp).
  SkipGramSGD(std::size_t num_nodes, std::size_t dims, Rng& rng,
              bool fast_sigmoid = false);

  /// Train one (center, positive) pair plus `negatives`. Returns the
  /// summed logistic loss over the ns+1 samples (for monitoring).
  double train_pair(NodeId center, NodeId positive,
                    std::span<const NodeId> negatives, double lr);

  /// Train every positive of a context window against `negatives`.
  double train_context(const WalkContext& ctx,
                       std::span<const NodeId> negatives, double lr);

  /// Train all contexts of one walk. Negatives are drawn fresh per
  /// context (kPerContext) or once for the whole walk (kPerWalk).
  double train_walk(std::span<const NodeId> walk, std::size_t window,
                    const NegativeSampler& sampler, std::size_t ns,
                    NegativeMode mode, Rng& rng, double lr);

  /// kPerWalk path with externally pre-sampled shared negatives (the
  /// batched pipeline's PS-side pre-sampling). Bit-identical to the
  /// rng-drawing overload when `shared_negatives` came from the same
  /// stream.
  double train_walk(std::span<const NodeId> walk, std::size_t window,
                    std::span<const NodeId> shared_negatives, double lr);

  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return w_in_.rows();
  }
  [[nodiscard]] std::size_t dims() const noexcept { return w_in_.cols(); }

  /// The graph embedding (input-side weights), one row per node.
  [[nodiscard]] const MatrixF& embeddings() const noexcept { return w_in_; }
  [[nodiscard]] std::span<const float> embedding(NodeId v) const noexcept {
    return w_in_.row(v);
  }
  [[nodiscard]] const MatrixF& output_weights() const noexcept {
    return w_out_;
  }

  /// Parameter bytes: two n x dims matrices at `bytes_per_scalar`. The
  /// paper's CPU reference stores doubles (8); our in-memory layout is
  /// float (4). Both are reported by bench_table5_model_size.
  [[nodiscard]] std::size_t model_bytes(
      std::size_t bytes_per_scalar = sizeof(float)) const noexcept {
    return 2 * num_nodes() * dims() * bytes_per_scalar;
  }

  /// Debug/bench knob: route every pair through the sequential
  /// per-sample reference path instead of the fused batched kernels.
  /// The fused path is bit-identical on every ISA (tests gate on it);
  /// this exists to measure and to prove that claim.
  void set_force_unfused(bool v) noexcept { force_unfused_ = v; }
  [[nodiscard]] bool fast_sigmoid_enabled() const noexcept {
    return fast_sigmoid_;
  }

 private:
  /// Cache w_out_ row pointers of `negatives` in neg_rows_ and detect
  /// duplicate draws (sampling is with replacement) — once per walk in
  /// kPerWalk mode, once per pair in kPerContext mode.
  void prepare_negatives(std::span<const NodeId> negatives);
  /// train_pair body assuming prepare_negatives(negatives) ran.
  double train_pair_prepared(NodeId center, NodeId positive,
                             std::span<const NodeId> negatives, double lr);
  /// The exact pre-fusion sequential path (duplicate fallback,
  /// force_unfused, and the reference for the identity tests).
  double train_pair_unfused(NodeId center, NodeId positive,
                            std::span<const NodeId> negatives, double lr);

  MatrixF w_in_;   // n x dims
  MatrixF w_out_;  // n x dims (row s = output vector of node s)
  std::vector<float> h_grad_;  // scratch, dims entries
  std::vector<NodeId> scratch_negatives_;
  // Fused-path scratch, reused across pairs/walks (train_walk is
  // allocation-free in steady state — tests/test_train_fused.cpp pins
  // that with an operator-new counter).
  std::vector<float*> neg_rows_;     // w_out_ rows of the negative batch
  std::vector<float*> sample_rows_;  // positive + filtered negatives
  std::vector<float> scores_, g_;    // per-sample scores / gradients
  bool neg_dups_ = false;
  bool fast_sigmoid_ = false;
  bool force_unfused_ = false;
};

}  // namespace seqge
