#include "embedding/oselm_dataflow.hpp"

#include "linalg/kernels.hpp"

namespace seqge {

OselmSkipGramDataflow::OselmSkipGramDataflow(std::size_t num_nodes,
                                             const Options& opts, Rng& rng)
    : opts_(opts),
      beta_t_(num_nodes, opts.dims),
      p_(opts.dims, opts.dims),
      delta_p_(opts.dims, opts.dims),
      delta_beta_(num_nodes, opts.dims),
      h_(opts.dims),
      ph_(opts.dims),
      hp_(opts.dims),
      piht_(opts.dims) {
  const double r = 0.5 / static_cast<double>(opts.dims);
  beta_t_.fill_uniform(rng, -r, r);
  p_.set_identity(static_cast<float>(opts.p0));
}

double OselmSkipGramDataflow::train_walk(
    std::span<const NodeId> walk, std::size_t window,
    std::span<const NodeId> shared_negatives) {
  double sq_err = 0.0;
  const auto mu = static_cast<float>(opts_.mu);

  if (opts_.reset_p_per_walk) {
    p_.set_identity(static_cast<float>(opts_.p0));
  }
  delta_p_.fill(0.0f);

  for_each_context(walk, window, [&](const WalkContext& ctx) {
    // Stage 1: H from the frozen beta; ph = P H^T, hp = H P.
    auto bc = beta_t_.row(ctx.center);
    for (std::size_t d = 0; d < dims(); ++d) h_[d] = mu * bc[d];
    matvec(p_, std::span<const float>(h_), std::span<float>(ph_));
    matvec_transposed(p_, std::span<const float>(h_), std::span<float>(hp_));

    // Stage 2: H P H^T.
    const double hph = dot<float>(h_, ph_);
    const double k = 1.0 / (1.0 + hph);

    // Stage 4 (P side): delta_P -= (ph hp) k;  P_i H^T = ph * k.
    rank1_update(delta_p_, static_cast<float>(-k),
                 std::span<const float>(ph_), std::span<const float>(hp_));
    for (std::size_t d = 0; d < dims(); ++d) {
      piht_[d] = static_cast<float>(k) * ph_[d];
    }

    // Stage 3 + 4 (beta side): errors against the frozen beta, deferred
    // into delta_beta.
    auto train_sample = [&](NodeId s, float t) {
      const double e =
          static_cast<double>(t) - dot<float>(h_, beta_t_.row(s));
      sq_err += e * e;
      axpy<float>(static_cast<float>(e), piht_, delta_beta_.row(s));
    };
    for (NodeId pos : ctx.positives) {
      train_sample(pos, 1.0f);
      for (NodeId neg : shared_negatives) {
        if (neg == pos) continue;
        train_sample(neg, 0.0f);
      }
    }
  });

  // Commit (Algorithm 2 lines 19-20).
  auto pf = p_.flat();
  auto df = delta_p_.flat();
  for (std::size_t i = 0; i < pf.size(); ++i) pf[i] += df[i];
  delta_beta_.apply_to(beta_t_);
  return sq_err;
}

double OselmSkipGramDataflow::train_walk(std::span<const NodeId> walk,
                                         std::size_t window,
                                         const NegativeSampler& sampler,
                                         std::size_t ns, Rng& rng) {
  sampler.sample_batch(rng, ns, walk.empty() ? 0 : walk[0],
                       scratch_negatives_);
  return train_walk(walk, window, scratch_negatives_);
}

MatrixF OselmSkipGramDataflow::extract_embedding() const {
  MatrixF emb(num_nodes(), dims());
  const auto mu = static_cast<float>(opts_.mu);
  for (std::size_t v = 0; v < num_nodes(); ++v) {
    auto src = beta_t_.row(v);
    auto dst = emb.row(v);
    for (std::size_t d = 0; d < dims(); ++d) dst[d] = mu * src[d];
  }
  return emb;
}

void OselmSkipGramDataflow::extract_rows(std::span<const NodeId> nodes,
                                         MatrixF& out) const {
  const auto mu = static_cast<float>(opts_.mu);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    auto src = beta_t_.row(nodes[i]);
    auto dst = out.row(i);
    for (std::size_t d = 0; d < dims(); ++d) dst[d] = mu * src[d];
  }
}

}  // namespace seqge
