#include "embedding/oselm_dataflow.hpp"

#include "linalg/kernels.hpp"

namespace seqge {

OselmSkipGramDataflow::OselmSkipGramDataflow(std::size_t num_nodes,
                                             const Options& opts, Rng& rng)
    : opts_(opts),
      beta_t_(num_nodes, opts.dims),
      p_(opts.dims, opts.dims),
      delta_p_(opts.dims, opts.dims),
      delta_beta_(num_nodes, opts.dims),
      h_(opts.dims),
      ph_(opts.dims),
      hp_(opts.dims),
      piht_(opts.dims) {
  const double r = 0.5 / static_cast<double>(opts.dims);
  beta_t_.fill_uniform(rng, -r, r);
  p_.set_identity(static_cast<float>(opts.p0));
}

double OselmSkipGramDataflow::train_walk(
    std::span<const NodeId> walk, std::size_t window,
    std::span<const NodeId> shared_negatives) {
  double sq_err = 0.0;
  const auto mu = static_cast<float>(opts_.mu);

  if (opts_.reset_p_per_walk) {
    p_.set_identity(static_cast<float>(opts_.p0));
  }
  delta_p_.fill(0.0f);

  // Duplicate negative draws (sampling with replacement) would make
  // the gathered delta updates collide on one row — those walks take
  // the sequential per-sample path. Checked once: the batch is shared
  // across every context of the walk.
  bool neg_dups = false;
  for (std::size_t i = 0; i + 1 < shared_negatives.size() && !neg_dups;
       ++i) {
    for (std::size_t j = i + 1; j < shared_negatives.size(); ++j) {
      if (shared_negatives[i] == shared_negatives[j]) {
        neg_dups = true;
        break;
      }
    }
  }
  const bool fused = !force_unfused_ && !neg_dups;

  for_each_context(walk, window, [&](const WalkContext& ctx) {
    // Stage 1: H from the frozen beta; ph = P H^T, hp = H P — one fused
    // pass over P (bit-identical to separate matvec + matvec_transposed
    // calls, simd.hpp contract).
    auto bc = beta_t_.row(ctx.center);
    for (std::size_t d = 0; d < dims(); ++d) h_[d] = mu * bc[d];
    simd::matvec_both(p_.data(), dims(), h_.data(), ph_.data(), hp_.data());

    // Stage 2: H P H^T.
    const double hph = dot<float>(h_, ph_);
    const double k = 1.0 / (1.0 + hph);

    // Stage 4 (P side): delta_P -= (ph hp) k;  P_i H^T = ph * k.
    rank1_update(delta_p_, static_cast<float>(-k),
                 std::span<const float>(ph_), std::span<const float>(hp_));
    for (std::size_t d = 0; d < dims(); ++d) {
      piht_[d] = static_cast<float>(k) * ph_[d];
    }

    // Stage 3 + 4 (beta side): errors against the frozen beta, deferred
    // into delta_beta.
    auto train_sample = [&](NodeId s, float t) {
      const double e =
          static_cast<double>(t) - dot<float>(h_, beta_t_.row(s));
      sq_err += e * e;
      axpy<float>(static_cast<float>(e), piht_, delta_beta_.row(s));
    };
    for (NodeId pos : ctx.positives) {
      if (!fused) {
        train_sample(pos, 1.0f);
        for (NodeId neg : shared_negatives) {
          if (neg == pos) continue;
          train_sample(neg, 0.0f);
        }
        continue;
      }
      // Fused group: scores come from the frozen beta (batching cannot
      // go stale), updates land in pairwise-distinct delta rows.
      sample_ids_.clear();
      sample_rows_.clear();
      sample_ids_.push_back(pos);
      sample_rows_.push_back(beta_t_.row(pos).data());
      for (NodeId neg : shared_negatives) {
        if (neg == pos) continue;
        sample_ids_.push_back(neg);
        sample_rows_.push_back(beta_t_.row(neg).data());
      }
      const std::size_t n = sample_ids_.size();
      scores_.resize(n);
      coeffs_.resize(n);
      simd::dot_batch_gather(sample_rows_.data(), n, dims(), h_.data(),
                             scores_.data());
      for (std::size_t i = 0; i < n; ++i) {
        const double t = i == 0 ? 1.0 : 0.0;
        const double e = t - static_cast<double>(scores_[i]);
        sq_err += e * e;
        coeffs_[i] = static_cast<float>(e);
      }
      // First-touch delta_beta_.row() in sample order (same dirty-list
      // order as the sequential path), THEN collect the pointers —
      // row() can grow the pool and move earlier rows.
      for (std::size_t i = 0; i < n; ++i) {
        (void)delta_beta_.row(sample_ids_[i]);
      }
      delta_rows_.clear();
      for (std::size_t i = 0; i < n; ++i) {
        delta_rows_.push_back(delta_beta_.row(sample_ids_[i]).data());
      }
      simd::axpy_gather(delta_rows_.data(), coeffs_.data(), piht_.data(), n,
                        dims());
    }
  });

  // Commit (Algorithm 2 lines 19-20).
  auto pf = p_.flat();
  auto df = delta_p_.flat();
  for (std::size_t i = 0; i < pf.size(); ++i) pf[i] += df[i];
  delta_beta_.apply_to(beta_t_);
  return sq_err;
}

double OselmSkipGramDataflow::train_walk(std::span<const NodeId> walk,
                                         std::size_t window,
                                         const NegativeSampler& sampler,
                                         std::size_t ns, Rng& rng) {
  sampler.sample_batch(rng, ns, walk.empty() ? 0 : walk[0],
                       scratch_negatives_);
  return train_walk(walk, window, scratch_negatives_);
}

bool OselmSkipGramDataflow::untrain_walk(
    std::span<const NodeId> walk, std::size_t window,
    std::span<const NodeId> shared_negatives, double eps) {
  if (window < 2 || walk.size() < window) return true;
  const auto mu = static_cast<float>(opts_.mu);
  const auto p0 = static_cast<float>(opts_.p0);
  delta_p_.fill(0.0f);

  bool ok = true;
  for_each_context(walk, window, [&](const WalkContext& ctx) {
    if (!ok) return;
    // Mirror of the forward stages against the current state. In reset
    // mode the covariance the walk trained against was exactly p0*I, so
    // ph = hp = p0 * H in closed form — no P read at all.
    auto bc = beta_t_.row(ctx.center);
    for (std::size_t d = 0; d < dims(); ++d) h_[d] = mu * bc[d];
    if (opts_.reset_p_per_walk) {
      for (std::size_t d = 0; d < dims(); ++d) {
        ph_[d] = p0 * h_[d];
        hp_[d] = ph_[d];
      }
    } else {
      simd::matvec_both(p_.data(), dims(), h_.data(), ph_.data(),
                        hp_.data());
    }
    const double denom = 1.0 + dot<float>(h_, ph_);
    if (!(denom > eps)) {
      ok = false;
      return;
    }
    const double k = 1.0 / denom;

    // Negate the forward accumulations: +k (ph hp) into delta-P,
    // -e * piht into the sparse beta delta.
    rank1_update(delta_p_, static_cast<float>(k),
                 std::span<const float>(ph_), std::span<const float>(hp_));
    for (std::size_t d = 0; d < dims(); ++d) {
      piht_[d] = static_cast<float>(k) * ph_[d];
    }
    auto untrain_sample = [&](NodeId s, float t) {
      const double e =
          static_cast<double>(t) - dot<float>(h_, beta_t_.row(s));
      axpy<float>(static_cast<float>(-e), piht_, delta_beta_.row(s));
    };
    for (NodeId pos : ctx.positives) {
      untrain_sample(pos, 1.0f);
      for (NodeId neg : shared_negatives) {
        if (neg == pos) continue;
        untrain_sample(neg, 0.0f);
      }
    }
  });

  if (!ok) {
    // Nothing was committed: discard the partial accumulators so the
    // model is bit-identical to before the call.
    delta_p_.fill(0.0f);
    delta_beta_.clear();
    return false;
  }

  if (!opts_.reset_p_per_walk) {
    auto pf = p_.flat();
    auto df = delta_p_.flat();
    for (std::size_t i = 0; i < pf.size(); ++i) pf[i] += df[i];
  }
  delta_beta_.apply_to(beta_t_);
  return true;
}

MatrixF OselmSkipGramDataflow::extract_embedding() const {
  MatrixF emb(num_nodes(), dims());
  const auto mu = static_cast<float>(opts_.mu);
  for (std::size_t v = 0; v < num_nodes(); ++v) {
    auto src = beta_t_.row(v);
    auto dst = emb.row(v);
    for (std::size_t d = 0; d < dims(); ++d) dst[d] = mu * src[d];
  }
  return emb;
}

void OselmSkipGramDataflow::extract_rows(std::span<const NodeId> nodes,
                                         MatrixF& out) const {
  const auto mu = static_cast<float>(opts_.mu);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    auto src = beta_t_.row(nodes[i]);
    auto dst = out.row(i);
    for (std::size_t d = 0; d < dims(); ++d) dst[d] = mu * src[d];
  }
}

}  // namespace seqge
