#include "embedding/oselm_skipgram.hpp"

#include <cmath>
#include <cstdint>

#include "linalg/kernels.hpp"

namespace seqge {

OselmSkipGram::OselmSkipGram(std::size_t num_nodes, const Options& opts,
                             Rng& rng)
    : opts_(opts),
      beta_t_(num_nodes, opts.dims),
      p_(opts.dims, opts.dims),
      h_(opts.dims),
      ph_(opts.dims),
      hp_(opts.dims),
      ph2_(opts.dims) {
  const double r = 0.5 / static_cast<double>(opts.dims);
  beta_t_.fill_uniform(rng, -r, r);
  p_.set_identity(static_cast<float>(opts.p0));
  if (opts_.random_alpha) {
    alpha_ = MatrixF(num_nodes, opts.dims);
    // Classic OS-ELM draws alpha from a symmetric distribution; N(0, 1/N)
    // keeps ||H|| comparable across dims.
    alpha_.fill_gaussian(rng, 1.0 / std::sqrt(static_cast<double>(opts.dims)));
  }
}

void OselmSkipGram::hidden(NodeId center, std::span<float> h) const noexcept {
  if (opts_.random_alpha) {
    copy<float>(alpha_.row(center), h);
  } else {
    auto b = beta_t_.row(center);
    const auto mu = static_cast<float>(opts_.mu);
    for (std::size_t d = 0; d < h.size(); ++d) h[d] = mu * b[d];
  }
}

void OselmSkipGram::prepare_negatives(std::span<const NodeId> negatives) {
  neg_rows_.clear();
  for (NodeId neg : negatives) {
    float* row = beta_t_.row(neg).data();
    neg_rows_.push_back(row);
    // The dims^2 P-matrix math runs before the first batched score
    // touches these rows — roughly 2 us of compute that hides the
    // gathered rows' cache-miss latency if we start the fetches now.
    // Prefetching changes no floats.
    for (std::size_t b = 0; b < opts_.dims; b += 16) {
      __builtin_prefetch(row + b);
    }
  }
  // Duplicate draws (sampling is with replacement) make the batched
  // scores read rows the sequential path updates mid-group — those
  // contexts take the per-sample fallback. A 64-bit Bloom filter over
  // the ids screens the common all-distinct batch; only a bit collision
  // pays for the exact quadratic check, so the verdict is identical.
  std::uint64_t seen = 0;
  bool collision = false;
  for (NodeId neg : negatives) {
    const std::uint64_t bit = std::uint64_t{1} << (neg & 63u);
    collision |= (seen & bit) != 0;
    seen |= bit;
  }
  neg_dups_ = false;
  if (collision) {
    for (std::size_t i = 0; i + 1 < neg_rows_.size() && !neg_dups_; ++i) {
      for (std::size_t j = i + 1; j < neg_rows_.size(); ++j) {
        if (neg_rows_[i] == neg_rows_[j]) {
          neg_dups_ = true;
          break;
        }
      }
    }
  }
}

double OselmSkipGram::train_context(const WalkContext& ctx,
                                    std::span<const NodeId> negatives) {
  prepare_negatives(negatives);
  return train_context_prepared(ctx, negatives);
}

double OselmSkipGram::train_context_prepared(
    const WalkContext& ctx, std::span<const NodeId> negatives) {
  const std::size_t n_dims = dims();
  hidden(ctx.center, h_);

  // ph = P H^T ; hp = H P. P stays symmetric in exact arithmetic; both
  // are computed as in Algorithm 1 so float round-off follows the same
  // path as the hardware. The four dims^2 passes over P (two products,
  // the rank-1 update, the re-score) fuse into two trips through the
  // matrix via the SIMD pair kernels — the hot loop of this backend —
  // with bits identical to the unfused matvec/matvec_transposed/
  // rank1_update/matvec sequence (simd.hpp contract).
  simd::matvec_both(p_.data(), n_dims, h_.data(), ph_.data(), hp_.data());

  const double hph = dot<float>(h_, ph_);
  const double k = 1.0 / (1.0 + hph);

  // P <- P - (ph hp) k, then ph2 = P_i H^T with the updated P
  // (Algorithm 1 line 7), one row at a time.
  simd::rank1_matvec(p_.data(), n_dims, static_cast<float>(-k), ph_.data(),
                     hp_.data(), h_.data(), ph2_.data());

  double sq_err = 0.0;
  auto train_sample = [&](NodeId s, float t) {
    auto col = beta_t_.row(s);
    const double e = static_cast<double>(t) - dot<float>(h_, col);
    sq_err += e * e;
    axpy<float>(static_cast<float>(e), ph2_, col);
  };
  for (NodeId pos : ctx.positives) {
    float* pos_row = beta_t_.row(pos).data();
    if (force_unfused_ || neg_dups_) {
      train_sample(pos, 1.0f);
      for (NodeId neg : negatives) {
        if (neg == pos) continue;
        train_sample(neg, 0.0f);
      }
      continue;
    }
    // Fused group: positive first, then negatives != positive — the
    // sequential sample order. Rows are pairwise distinct here, so the
    // batched scores see exactly the floats the sequential pass would,
    // and the gathered axpy updates cannot collide.
    sample_rows_.clear();
    sample_rows_.push_back(pos_row);
    for (float* np : neg_rows_) {
      if (np != pos_row) sample_rows_.push_back(np);
    }
    const std::size_t n = sample_rows_.size();
    scores_.resize(n);
    coeffs_.resize(n);
    simd::dot_batch_gather(sample_rows_.data(), n, n_dims, h_.data(),
                           scores_.data());
    for (std::size_t i = 0; i < n; ++i) {
      const double t = i == 0 ? 1.0 : 0.0;
      const double e = t - static_cast<double>(scores_[i]);
      sq_err += e * e;
      coeffs_[i] = static_cast<float>(e);
    }
    simd::axpy_gather(sample_rows_.data(), coeffs_.data(), ph2_.data(), n,
                      n_dims);
  }
  return sq_err;
}

double OselmSkipGram::train_walk(std::span<const NodeId> walk,
                                 std::size_t window,
                                 const NegativeSampler& sampler,
                                 std::size_t ns, NegativeMode mode,
                                 Rng& rng) {
  double err = 0.0;
  if (opts_.reset_p_per_walk) {
    p_.set_identity(static_cast<float>(opts_.p0));
  }
  if (mode == NegativeMode::kPerWalk) {
    sampler.sample_batch(rng, ns, walk.empty() ? 0 : walk[0],
                         scratch_negatives_);
    prepare_negatives(scratch_negatives_);  // once for the whole walk
    for_each_context(walk, window, [&](const WalkContext& ctx) {
      err += train_context_prepared(ctx, scratch_negatives_);
    });
    return err;
  }
  for_each_context(walk, window, [&](const WalkContext& ctx) {
    // Algorithm 1 draws fresh negatives per positive (line 13); using one
    // draw per context keeps the RLS structure identical while matching
    // the reference implementation's sampling rate.
    sampler.sample_batch(rng, ns, ctx.center, scratch_negatives_);
    err += train_context(ctx, scratch_negatives_);
  });
  return err;
}

double OselmSkipGram::train_walk(std::span<const NodeId> walk,
                                 std::size_t window,
                                 std::span<const NodeId> shared_negatives) {
  double err = 0.0;
  if (opts_.reset_p_per_walk) {
    p_.set_identity(static_cast<float>(opts_.p0));
  }
  prepare_negatives(shared_negatives);
  for_each_context(walk, window, [&](const WalkContext& ctx) {
    err += train_context_prepared(ctx, shared_negatives);
  });
  return err;
}

bool OselmSkipGram::untrain_context(const WalkContext& ctx,
                                    std::span<const NodeId> negatives,
                                    double eps) {
  if (!opts_.random_alpha) {
    // Tied weights: H was mu * beta(center) *at training time*. If this
    // context trained beta(center) through one of its own samples, the
    // current row no longer encodes that H — unrecoverable, bail before
    // touching anything.
    for (NodeId pos : ctx.positives) {
      if (pos == ctx.center) return false;
    }
    for (NodeId neg : negatives) {
      if (neg == ctx.center) return false;
    }
  }
  const std::size_t n_dims = dims();
  hidden(ctx.center, h_);

  // On the post-context P', ph = P' H^T equals the forward pass's ph2
  // (the vector every beta update was scaled by), and
  // d = 1 - H P' H^T = 1 / (1 + H P H^T) > 0 — so d tells us the
  // forward gain exactly, and d <= eps means the restored P would not
  // be positive-definite (the conditioning guard).
  simd::matvec_both(p_.data(), n_dims, h_.data(), ph_.data(), hp_.data());
  const double d = 1.0 - dot<float>(h_, ph_);
  if (!(d > eps)) return false;
  const double inv_d = 1.0 / d;

  // Reverse of the forward sample order: groups last-to-first, each
  // group's negatives (reversed) before its positive. The forward error
  // e satisfies t - H.beta'(s) = e * d, so e recovers exactly.
  auto untrain_sample = [&](NodeId s, float t) {
    auto col = beta_t_.row(s);
    const double e =
        (static_cast<double>(t) - dot<float>(h_, col)) * inv_d;
    axpy<float>(static_cast<float>(-e), ph_, col);
  };
  for (std::size_t g = ctx.positives.size(); g-- > 0;) {
    const NodeId pos = ctx.positives[g];
    for (std::size_t j = negatives.size(); j-- > 0;) {
      if (negatives[j] == pos) continue;
      untrain_sample(negatives[j], 0.0f);
    }
    untrain_sample(pos, 1.0f);
  }

  // Covariance downdate: P = P' + (P' H^T)(H P') / d restores the
  // pre-context covariance (Sherman–Morrison run backwards).
  rank1_update(p_, static_cast<float>(inv_d), std::span<const float>(ph_),
               std::span<const float>(hp_));
  return true;
}

bool OselmSkipGram::untrain_walk(std::span<const NodeId> walk,
                                 std::size_t window,
                                 std::span<const NodeId> shared_negatives,
                                 double eps) {
  if (window < 2 || walk.size() < window) return true;
  // Contexts strictly last-to-first; each reversal restores the state
  // its predecessor's reversal needs (the LIFO recursion). H is
  // recomputed lazily per context from the partially reversed beta —
  // exact, because by the time context i reverses, every later
  // context's update to beta(center_i) has already been undone.
  for (std::size_t i = walk.size() - window + 1; i-- > 0;) {
    const WalkContext ctx{walk[i], walk.subspan(i + 1, window - 1)};
    if (!untrain_context(ctx, shared_negatives, eps)) return false;
  }
  return true;
}

MatrixF OselmSkipGram::extract_embedding() const {
  MatrixF emb(num_nodes(), dims());
  const float scale =
      opts_.random_alpha ? 1.0f : static_cast<float>(opts_.mu);
  for (std::size_t v = 0; v < num_nodes(); ++v) {
    auto src = beta_t_.row(v);
    auto dst = emb.row(v);
    for (std::size_t d = 0; d < dims(); ++d) dst[d] = scale * src[d];
  }
  return emb;
}

void OselmSkipGram::extract_rows(std::span<const NodeId> nodes,
                                 MatrixF& out) const {
  const float scale =
      opts_.random_alpha ? 1.0f : static_cast<float>(opts_.mu);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    auto src = beta_t_.row(nodes[i]);
    auto dst = out.row(i);
    for (std::size_t d = 0; d < dims(); ++d) dst[d] = scale * src[d];
  }
}

}  // namespace seqge
