#include "embedding/oselm_skipgram.hpp"

#include <cmath>

#include "linalg/kernels.hpp"

namespace seqge {

OselmSkipGram::OselmSkipGram(std::size_t num_nodes, const Options& opts,
                             Rng& rng)
    : opts_(opts),
      beta_t_(num_nodes, opts.dims),
      p_(opts.dims, opts.dims),
      h_(opts.dims),
      ph_(opts.dims),
      hp_(opts.dims),
      ph2_(opts.dims) {
  const double r = 0.5 / static_cast<double>(opts.dims);
  beta_t_.fill_uniform(rng, -r, r);
  p_.set_identity(static_cast<float>(opts.p0));
  if (opts_.random_alpha) {
    alpha_ = MatrixF(num_nodes, opts.dims);
    // Classic OS-ELM draws alpha from a symmetric distribution; N(0, 1/N)
    // keeps ||H|| comparable across dims.
    alpha_.fill_gaussian(rng, 1.0 / std::sqrt(static_cast<double>(opts.dims)));
  }
}

void OselmSkipGram::hidden(NodeId center, std::span<float> h) const noexcept {
  if (opts_.random_alpha) {
    copy<float>(alpha_.row(center), h);
  } else {
    auto b = beta_t_.row(center);
    const auto mu = static_cast<float>(opts_.mu);
    for (std::size_t d = 0; d < h.size(); ++d) h[d] = mu * b[d];
  }
}

double OselmSkipGram::train_context(const WalkContext& ctx,
                                    std::span<const NodeId> negatives) {
  const std::size_t n_dims = dims();
  hidden(ctx.center, h_);

  // ph = P H^T ; hp = H P. P stays symmetric in exact arithmetic; both
  // are computed as in Algorithm 1 so float round-off follows the same
  // path as the hardware.
  matvec(p_, std::span<const float>(h_), std::span<float>(ph_));
  matvec_transposed(p_, std::span<const float>(h_), std::span<float>(hp_));

  const double hph = dot<float>(h_, ph_);
  const double k = 1.0 / (1.0 + hph);

  // P <- P - (ph hp) k
  rank1_update(p_, static_cast<float>(-k), std::span<const float>(ph_),
               std::span<const float>(hp_));

  // ph2 = P_i H^T with the updated P (Algorithm 1 line 7).
  matvec(p_, std::span<const float>(h_), std::span<float>(ph2_));

  double sq_err = 0.0;
  auto train_sample = [&](NodeId s, float t) {
    auto col = beta_t_.row(s);
    const double e = static_cast<double>(t) - dot<float>(h_, col);
    sq_err += e * e;
    axpy<float>(static_cast<float>(e), ph2_, col);
  };
  for (NodeId pos : ctx.positives) {
    train_sample(pos, 1.0f);
    for (NodeId neg : negatives) {
      if (neg == pos) continue;
      train_sample(neg, 0.0f);
    }
  }
  (void)n_dims;
  return sq_err;
}

double OselmSkipGram::train_walk(std::span<const NodeId> walk,
                                 std::size_t window,
                                 const NegativeSampler& sampler,
                                 std::size_t ns, NegativeMode mode,
                                 Rng& rng) {
  double err = 0.0;
  if (opts_.reset_p_per_walk) {
    p_.set_identity(static_cast<float>(opts_.p0));
  }
  if (mode == NegativeMode::kPerWalk) {
    sampler.sample_batch(rng, ns, walk.empty() ? 0 : walk[0],
                         scratch_negatives_);
    for_each_context(walk, window, [&](const WalkContext& ctx) {
      err += train_context(ctx, scratch_negatives_);
    });
    return err;
  }
  for_each_context(walk, window, [&](const WalkContext& ctx) {
    // Algorithm 1 draws fresh negatives per positive (line 13); using one
    // draw per context keeps the RLS structure identical while matching
    // the reference implementation's sampling rate.
    sampler.sample_batch(rng, ns, ctx.center, scratch_negatives_);
    err += train_context(ctx, scratch_negatives_);
  });
  return err;
}

double OselmSkipGram::train_walk(std::span<const NodeId> walk,
                                 std::size_t window,
                                 std::span<const NodeId> shared_negatives) {
  double err = 0.0;
  if (opts_.reset_p_per_walk) {
    p_.set_identity(static_cast<float>(opts_.p0));
  }
  for_each_context(walk, window, [&](const WalkContext& ctx) {
    err += train_context(ctx, shared_negatives);
  });
  return err;
}

MatrixF OselmSkipGram::extract_embedding() const {
  MatrixF emb(num_nodes(), dims());
  const float scale =
      opts_.random_alpha ? 1.0f : static_cast<float>(opts_.mu);
  for (std::size_t v = 0; v < num_nodes(); ++v) {
    auto src = beta_t_.row(v);
    auto dst = emb.row(v);
    for (std::size_t d = 0; d < dims(); ++d) dst[d] = scale * src[d];
  }
  return emb;
}

void OselmSkipGram::extract_rows(std::span<const NodeId> nodes,
                                 MatrixF& out) const {
  const float scale =
      opts_.random_alpha ? 1.0f : static_cast<float>(opts_.mu);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    auto src = beta_t_.row(nodes[i]);
    auto dst = out.row(i);
    for (std::size_t d = 0; d < dims(); ++d) dst[d] = scale * src[d];
  }
}

}  // namespace seqge
