#include "embedding/model.hpp"

#include <algorithm>
#include <stdexcept>

#include "embedding/oselm_dataflow.hpp"
#include "embedding/oselm_skipgram.hpp"
#include "embedding/skipgram_sgd.hpp"
#include "walk/walk_batch.hpp"

namespace seqge {

void EmbeddingModel::extract_rows(std::span<const NodeId> nodes,
                                  MatrixF& out) const {
  if (out.rows() != nodes.size() || out.cols() != dims()) {
    throw std::invalid_argument("extract_rows: out shape mismatch");
  }
  // Fallback for backends without a sparse path: materialize everything
  // and slice. Correct but O(n x dims) — the built-ins all override.
  const MatrixF full = extract_embedding();
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    auto src = full.row(nodes[i]);
    auto dst = out.row(i);
    std::copy(src.begin(), src.end(), dst.begin());
  }
}

double EmbeddingModel::train_batch(const WalkBatch& batch,
                                   std::size_t window,
                                   const NegativeSampler& sampler,
                                   std::size_t ns, NegativeMode mode) {
  double loss = 0.0;
  for (std::size_t i = 0; i < batch.num_walks(); ++i) {
    Rng rng(batch.train_seed(i));
    loss += train_walk(batch.walk(i), window, sampler, ns, mode, rng);
  }
  return loss;
}

bool EmbeddingModel::untrain_batch(const WalkBatch& batch, std::size_t window,
                                   const NegativeSampler& sampler,
                                   std::size_t ns, NegativeMode mode) {
  (void)batch;
  (void)window;
  (void)sampler;
  (void)ns;
  (void)mode;
  return false;  // unsupported: callers re-train surviving neighborhoods
}

namespace {

/// Shared per-walk dispatch of the batched adapters: walks with
/// pre-sampled negatives (kPerWalk packing) train through `with_negs`,
/// the rest re-derive their RNG from the walk's seed and train through
/// `with_rng`. This is the determinism-critical half of the train_batch
/// contract — keep it in exactly one place.
template <typename WithNegs, typename WithRng>
double dispatch_batch(const WalkBatch& batch, NegativeMode mode,
                      WithNegs&& with_negs, WithRng&& with_rng) {
  double loss = 0.0;
  for (std::size_t i = 0; i < batch.num_walks(); ++i) {
    if (mode == NegativeMode::kPerWalk && batch.has_negatives(i)) {
      loss += with_negs(batch.walk(i), batch.negatives(i));
    } else {
      Rng rng(batch.train_seed(i));
      loss += with_rng(batch.walk(i), rng);
    }
  }
  return loss;
}

class SgdAdapter final : public EmbeddingModel {
 public:
  SgdAdapter(std::size_t num_nodes, const TrainConfig& cfg, Rng& rng)
      : model_(num_nodes, cfg.dims, rng, cfg.fast_sigmoid),
        lr_(cfg.learning_rate) {}

  double train_walk(std::span<const NodeId> walk, std::size_t window,
                    const NegativeSampler& sampler, std::size_t ns,
                    NegativeMode mode, Rng& rng) override {
    return model_.train_walk(walk, window, sampler, ns, mode, rng, lr_);
  }
  double train_batch(const WalkBatch& batch, std::size_t window,
                     const NegativeSampler& sampler, std::size_t ns,
                     NegativeMode mode) override {
    return dispatch_batch(
        batch, mode,
        [&](auto walk, auto negs) {
          return model_.train_walk(walk, window, negs, lr_);
        },
        [&](auto walk, Rng& rng) {
          return model_.train_walk(walk, window, sampler, ns, mode, rng,
                                   lr_);
        });
  }
  [[nodiscard]] MatrixF extract_embedding() const override {
    return model_.embeddings();
  }
  void extract_rows(std::span<const NodeId> nodes,
                    MatrixF& out) const override {
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const auto src = model_.embedding(nodes[i]);
      auto dst = out.row(i);
      std::copy(src.begin(), src.end(), dst.begin());
    }
  }
  [[nodiscard]] std::size_t dims() const override { return model_.dims(); }
  [[nodiscard]] std::size_t num_nodes() const override {
    return model_.num_nodes();
  }
  [[nodiscard]] std::size_t model_bytes() const override {
    return model_.model_bytes();
  }
  [[nodiscard]] std::string name() const override { return "original-sgd"; }

 private:
  SkipGramSGD model_;
  double lr_;
};

class OselmAdapter final : public EmbeddingModel {
 public:
  OselmAdapter(std::size_t num_nodes, const TrainConfig& cfg, Rng& rng)
      : model_(num_nodes, OselmSkipGram::Options::from(cfg), rng) {}

  double train_walk(std::span<const NodeId> walk, std::size_t window,
                    const NegativeSampler& sampler, std::size_t ns,
                    NegativeMode mode, Rng& rng) override {
    return model_.train_walk(walk, window, sampler, ns, mode, rng);
  }
  double train_batch(const WalkBatch& batch, std::size_t window,
                     const NegativeSampler& sampler, std::size_t ns,
                     NegativeMode mode) override {
    return dispatch_batch(
        batch, mode,
        [&](auto walk, auto negs) {
          return model_.train_walk(walk, window, negs);
        },
        [&](auto walk, Rng& rng) {
          return model_.train_walk(walk, window, sampler, ns, mode, rng);
        });
  }
  bool untrain_batch(const WalkBatch& batch, std::size_t window,
                     const NegativeSampler& /*sampler*/, std::size_t ns,
                     NegativeMode mode) override {
    // Reversible only when every walk's negatives are packed in the
    // batch (kPerWalk pipeline packing) — rng-drawn negatives are not
    // reconstructible once the sampler has been rebuilt.
    if (ns > 0 && mode != NegativeMode::kPerWalk) return false;
    for (std::size_t i = batch.num_walks(); i-- > 0;) {
      if (batch.walk(i).empty()) continue;
      if (ns > 0 && !batch.has_negatives(i)) return false;
      if (!model_.untrain_walk(batch.walk(i), window, batch.negatives(i))) {
        return false;
      }
    }
    return true;
  }
  [[nodiscard]] MatrixF extract_embedding() const override {
    return model_.extract_embedding();
  }
  void extract_rows(std::span<const NodeId> nodes,
                    MatrixF& out) const override {
    model_.extract_rows(nodes, out);
  }
  [[nodiscard]] std::size_t dims() const override { return model_.dims(); }
  [[nodiscard]] std::size_t num_nodes() const override {
    return model_.num_nodes();
  }
  [[nodiscard]] std::size_t model_bytes() const override {
    return model_.model_bytes();
  }
  [[nodiscard]] std::string name() const override { return "oselm-alg1"; }

 private:
  OselmSkipGram model_;
};

class DataflowAdapter final : public EmbeddingModel {
 public:
  DataflowAdapter(std::size_t num_nodes, const TrainConfig& cfg, Rng& rng)
      : model_(num_nodes, OselmSkipGramDataflow::Options::from(cfg), rng) {}

  double train_walk(std::span<const NodeId> walk, std::size_t window,
                    const NegativeSampler& sampler, std::size_t ns,
                    NegativeMode /*mode*/, Rng& rng) override {
    // The dataflow algorithm always shares negatives per walk (Sec. 3.2).
    return model_.train_walk(walk, window, sampler, ns, rng);
  }
  double train_batch(const WalkBatch& batch, std::size_t window,
                     const NegativeSampler& sampler, std::size_t ns,
                     NegativeMode /*mode*/) override {
    // Negatives are only ever packed in kPerWalk mode, and the dataflow
    // algorithm always shares them; force the with-negatives branch
    // whenever they are present.
    return dispatch_batch(
        batch, NegativeMode::kPerWalk,
        [&](auto walk, auto negs) {
          return model_.train_walk(walk, window, negs);
        },
        [&](auto walk, Rng& rng) {
          return model_.train_walk(walk, window, sampler, ns, rng);
        });
  }
  bool untrain_batch(const WalkBatch& batch, std::size_t window,
                     const NegativeSampler& /*sampler*/, std::size_t ns,
                     NegativeMode /*mode*/) override {
    // The dataflow algorithm only ever trains with shared per-walk
    // negatives, so packed negatives are the only reversible shape.
    for (std::size_t i = batch.num_walks(); i-- > 0;) {
      if (batch.walk(i).empty()) continue;
      if (ns > 0 && !batch.has_negatives(i)) return false;
      if (!model_.untrain_walk(batch.walk(i), window, batch.negatives(i))) {
        return false;
      }
    }
    return true;
  }
  [[nodiscard]] MatrixF extract_embedding() const override {
    return model_.extract_embedding();
  }
  void extract_rows(std::span<const NodeId> nodes,
                    MatrixF& out) const override {
    model_.extract_rows(nodes, out);
  }
  [[nodiscard]] std::size_t dims() const override { return model_.dims(); }
  [[nodiscard]] std::size_t num_nodes() const override {
    return model_.num_nodes();
  }
  [[nodiscard]] std::size_t model_bytes() const override {
    return model_.model_bytes();
  }
  [[nodiscard]] std::string name() const override { return "oselm-alg2"; }

 private:
  OselmSkipGramDataflow model_;
};

}  // namespace

std::string to_string(ModelKind kind) {
  switch (kind) {
    case ModelKind::kOriginalSGD:
      return "original-sgd";
    case ModelKind::kOselm:
      return "oselm-alg1";
    case ModelKind::kOselmDataflow:
      return "oselm-alg2";
  }
  return "unknown";
}

std::unique_ptr<EmbeddingModel> make_model(ModelKind kind,
                                           std::size_t num_nodes,
                                           const TrainConfig& cfg, Rng& rng) {
  cfg.validate();
  switch (kind) {
    case ModelKind::kOriginalSGD:
      return std::make_unique<SgdAdapter>(num_nodes, cfg, rng);
    case ModelKind::kOselm:
      return std::make_unique<OselmAdapter>(num_nodes, cfg, rng);
    case ModelKind::kOselmDataflow:
      return std::make_unique<DataflowAdapter>(num_nodes, cfg, rng);
  }
  throw std::invalid_argument("make_model: unknown kind");
}

}  // namespace seqge
