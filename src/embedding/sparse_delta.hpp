#pragma once
// Sparse per-row accumulation buffer for the dataflow algorithm's
// delta-beta: within one random walk only O(l + ns) of the n embedding
// rows are touched, so the deferred update keeps a dirty list plus a
// compact pool of rows instead of a dense n x dims matrix. The node ->
// slot index is persistent across walks (O(1) clears via the dirty
// list), so repeated train_walk calls cost O(touched), not O(n).

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "linalg/matrix.hpp"

namespace seqge {

/// Set of embedding rows touched since the last clear() — the
/// bookkeeping half of copy-on-write delta publishing. The trainers
/// mark every node a trained batch could have updated (walk nodes plus
/// pre-sampled negatives); at snapshot cadence the sorted dirty list is
/// handed to SnapshotSink::on_delta so a store can republish O(touched)
/// rows instead of O(n). Same stamp-array technique as SparseRowDelta:
/// mark() is O(1), clear() is O(dirty), memory is one byte per row.
class DirtyRowSet {
 public:
  explicit DirtyRowSet(std::size_t num_rows)
      : stamp_(num_rows, 0), dirty_() {}

  void mark(NodeId node) {
    if (stamp_[node] == 0) {
      stamp_[node] = 1;
      dirty_.push_back(node);
    }
  }
  void mark_all(std::span<const NodeId> nodes) {
    for (NodeId v : nodes) mark(v);
  }

  [[nodiscard]] bool empty() const noexcept { return dirty_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return dirty_.size(); }
  [[nodiscard]] std::size_t num_rows() const noexcept {
    return stamp_.size();
  }

  /// Dirty rows in ascending order (sorts in place; stays sorted until
  /// the next mark of an unseen row).
  [[nodiscard]] std::span<const NodeId> sorted() {
    std::sort(dirty_.begin(), dirty_.end());
    return dirty_;
  }

  void clear() noexcept {
    for (NodeId node : dirty_) stamp_[node] = 0;
    dirty_.clear();
  }

 private:
  std::vector<std::uint8_t> stamp_;
  std::vector<NodeId> dirty_;
};

class SparseRowDelta {
 public:
  SparseRowDelta(std::size_t num_rows, std::size_t dims)
      : dims_(dims), slot_of_(num_rows, kNoSlot) {}

  /// Accumulation row for `node`; zero-initialized on first touch per
  /// epoch (i.e., since the last clear()/apply_to()).
  [[nodiscard]] std::span<float> row(NodeId node) {
    std::int32_t slot = slot_of_[node];
    if (slot == kNoSlot) {
      slot = static_cast<std::int32_t>(dirty_.size());
      slot_of_[node] = slot;
      dirty_.push_back(node);
      if (pool_.size() < dirty_.size() * dims_) {
        pool_.resize(dirty_.size() * dims_, 0.0f);
      } else {
        std::fill_n(pool_.begin() + slot * static_cast<std::ptrdiff_t>(dims_),
                    dims_, 0.0f);
      }
    }
    return {pool_.data() + static_cast<std::size_t>(slot) * dims_, dims_};
  }

  [[nodiscard]] const std::vector<NodeId>& dirty() const noexcept {
    return dirty_;
  }
  [[nodiscard]] std::size_t dims() const noexcept { return dims_; }

  /// target.row(node) += delta.row(node) for every dirty node, then
  /// reset to empty.
  void apply_to(MatrixF& target) {
    for (std::size_t i = 0; i < dirty_.size(); ++i) {
      const NodeId node = dirty_[i];
      auto dst = target.row(node);
      const float* src = pool_.data() + i * dims_;
      for (std::size_t d = 0; d < dims_; ++d) dst[d] += src[d];
    }
    clear();
  }

  void clear() noexcept {
    for (NodeId node : dirty_) slot_of_[node] = kNoSlot;
    dirty_.clear();
  }

 private:
  static constexpr std::int32_t kNoSlot = -1;
  std::size_t dims_;
  std::vector<std::int32_t> slot_of_;
  std::vector<NodeId> dirty_;
  std::vector<float> pool_;
};

}  // namespace seqge
