#pragma once
// The "Proposed model": OS-ELM-based sequentially-trainable skip-gram
// (Sec. 3.1, Algorithm 1). A single-hidden-layer network where only the
// output-side weights beta (N x n) are trainable, updated by the
// recursive-least-squares OS-ELM rule; the input-side weights are the
// tied mu * beta^T (eliminating the classic OS-ELM random alpha), so the
// hidden activation of center node c is simply H = mu * beta[:, c].
//
// Per context (center c, window positives, ns negatives):
//   H      = mu * beta_col(c)                                  (1 x N)
//   ph     = P H^T,  hp = H P                                  (N)
//   k      = 1 / (1 + H P H^T)
//   P     <- P - (ph hp) k                      (rank-1 RLS shrink)
//   ph2    = P H^T                              (with the new P)
//   for each sample s (1 positive + ns negatives):
//     e    = t_s - H . beta_col(s)              (t=1 pos, 0 neg)
//     beta_col(s) += ph2 * e
//
// beta is stored transposed (n rows of N floats) so beta_col(v) is a
// contiguous row — that row, scaled by mu, is also node v's embedding.
//
// The `random_alpha` option reproduces Fig. 7's "alpha" baseline:
// H = alpha[c] with alpha fixed random, embedding still read from beta.

#include <cstdint>
#include <span>
#include <vector>

#include "embedding/config.hpp"
#include "graph/graph.hpp"
#include "linalg/matrix.hpp"
#include "sampling/negative_sampler.hpp"
#include "util/rng.hpp"
#include "walk/corpus.hpp"

namespace seqge {

class OselmSkipGram {
 public:
  struct Options {
    std::size_t dims = 32;
    double mu = 0.05;
    double p0 = 0.1;
    bool random_alpha = false;
    /// Reset P to p0*I at the start of every walk. This mirrors the
    /// board flow of Fig. 4 (only beta round-trips DRAM<->BRAM; P is
    /// (re)initialized on the PL) and keeps the per-walk update gain
    /// bounded, which is what lets sequential training keep absorbing
    /// new edges indefinitely instead of freezing as 1/t RLS gain decay
    /// sets in. Disable for the classic persistent-P OS-ELM recursion
    /// (the ablation bench compares both).
    bool reset_p_per_walk = true;

    static Options from(const TrainConfig& cfg) {
      return {cfg.dims, cfg.mu, cfg.p0, cfg.random_alpha,
              cfg.reset_p_per_walk};
    }
  };

  OselmSkipGram(std::size_t num_nodes, const Options& opts, Rng& rng);

  /// One Algorithm-1 iteration (lines 2-15): RLS update of P then the
  /// beta columns of the context's samples. Returns the summed squared
  /// error over samples (monitoring only).
  double train_context(const WalkContext& ctx,
                       std::span<const NodeId> negatives);

  /// train_context assuming prepare_negatives(negatives) already ran
  /// (the per-walk shared-negatives paths gather row pointers once).
  double train_context_prepared(const WalkContext& ctx,
                                std::span<const NodeId> negatives);

  /// Train all contexts of one walk; negatives per context (Algorithm 1
  /// default) or one shared batch per walk.
  double train_walk(std::span<const NodeId> walk, std::size_t window,
                    const NegativeSampler& sampler, std::size_t ns,
                    NegativeMode mode, Rng& rng);

  /// kPerWalk path with externally pre-sampled shared negatives (the
  /// batched pipeline's PS-side pre-sampling). Resets P per walk exactly
  /// like the rng-drawing overload.
  double train_walk(std::span<const NodeId> walk, std::size_t window,
                    std::span<const NodeId> shared_negatives);

  /// Reverse one train_walk(walk, window, shared_negatives): the RLS
  /// recursion run backwards. Contexts are reversed last-to-first; each
  /// undoes its beta updates in reverse sample order and then applies
  /// the rank-1 covariance *downdate*
  ///   d  = 1 - H P' H^T          (P' = covariance after the context;
  ///                               equals 1 / (1 + H P H^T) exactly)
  ///   e  = (t - H . beta'(s)) / d,  beta(s) = beta'(s) - e (P' H^T)
  ///   P  = P' + (P' H^T)(H P') / d
  /// which is the Sherman–Morrison inverse update inverted. When the
  /// untrained walk is the most recently trained one (LIFO order —
  /// what sliding-window expiry of the newest-first kind and the
  /// unlearning tests exercise), this reproduces the pre-walk state to
  /// float round-off; untraining older walks runs the same formulas as
  /// an approximation of that walk's contribution against the current
  /// state.
  ///
  /// Returns false — with the model left PARTIALLY reversed — when a
  /// context cannot be inverted:
  ///  * conditioning guard: d <= eps, i.e. the downdated P would lose
  ///    positive-definiteness (numerically impossible under exact LIFO,
  ///    the approximate regime's escape hatch);
  ///  * tied-weights self-reference: the context's center appears among
  ///    its own samples, so H = mu * beta(center) at training time is
  ///    unrecoverable from the post-update state.
  /// Callers must then fall back to re-training the walk's surviving
  /// neighborhoods (StreamTrainer does exactly that).
  ///
  /// With reset_p_per_walk (the default) the covariance restored by a
  /// full reversal is the transient p0*I, not the pre-walk P — beta is
  /// still exactly reversed, which is all that state carries across
  /// walks in that mode.
  bool untrain_walk(std::span<const NodeId> walk, std::size_t window,
                    std::span<const NodeId> shared_negatives,
                    double eps = 1e-6);

  /// One reversed context of untrain_walk (exposed for the unit tests'
  /// guard probes). Same return contract.
  bool untrain_context(const WalkContext& ctx,
                       std::span<const NodeId> negatives, double eps = 1e-6);

  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return beta_t_.rows();
  }
  [[nodiscard]] std::size_t dims() const noexcept { return beta_t_.cols(); }
  [[nodiscard]] double mu() const noexcept { return opts_.mu; }

  /// beta^T (n x N): row v = output weight column of node v.
  [[nodiscard]] const MatrixF& beta_transposed() const noexcept {
    return beta_t_;
  }
  [[nodiscard]] MatrixF& beta_transposed() noexcept { return beta_t_; }
  [[nodiscard]] const MatrixF& covariance() const noexcept { return p_; }
  [[nodiscard]] MatrixF& covariance() noexcept { return p_; }

  /// The graph embedding: mu * beta_col(v) in tied mode; beta_col(v)
  /// when random_alpha (beta is still the trained weight there).
  [[nodiscard]] MatrixF extract_embedding() const;

  /// Embedding rows of `nodes` only, into out.row(i) — bit-identical to
  /// the corresponding rows of extract_embedding(), at O(touched) cost
  /// (the delta-publishing fast path).
  void extract_rows(std::span<const NodeId> nodes, MatrixF& out) const;

  /// Parameter bytes: beta (n x N) + P (N x N), float32 — what the BRAM
  /// actually holds. Excludes the fixed random alpha unless the alpha
  /// baseline is in use (that is the paper's memory-saving argument).
  [[nodiscard]] std::size_t model_bytes(
      std::size_t bytes_per_scalar = sizeof(float)) const noexcept {
    std::size_t params = num_nodes() * dims() + dims() * dims();
    if (opts_.random_alpha) params += num_nodes() * dims();
    return params * bytes_per_scalar;
  }

  /// Hidden activation of a center node into `h` (dims entries).
  void hidden(NodeId center, std::span<float> h) const noexcept;

  /// Debug/bench knob: per-sample sequential beta updates instead of
  /// the fused batched kernels (which are bit-identical; tests gate).
  void set_force_unfused(bool v) noexcept { force_unfused_ = v; }

 private:
  /// Cache beta rows of `negatives` + duplicate detection (see
  /// SkipGramSGD::prepare_negatives).
  void prepare_negatives(std::span<const NodeId> negatives);

  Options opts_;
  MatrixF beta_t_;  // n x N
  MatrixF p_;       // N x N
  MatrixF alpha_;   // n x N, only when random_alpha
  // Scratch (kept to avoid per-context allocation).
  std::vector<float> h_, ph_, hp_, ph2_;
  std::vector<NodeId> scratch_negatives_;
  // Fused-path scratch, reused across contexts/walks.
  std::vector<float*> neg_rows_, sample_rows_;
  std::vector<float> scores_, coeffs_;
  bool neg_dups_ = false;
  bool force_unfused_ = false;
};

}  // namespace seqge
