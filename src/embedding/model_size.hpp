#pragma once
// Analytic model-size accounting (Table 5 of the paper).
//
// Original skip-gram: two n x N weight matrices (input + output). The
// paper's CPU reference stores double precision, which reproduces its
// reported sizes (e.g. amcp/96: 2*13752*96*8 B = 21.1 MB ~ paper 20.3).
//
// Proposed model: beta (n x N) + P (N x N) in 32-bit words — the paper's
// amcp numbers match this exactly (13752*96*4 + 96^2*4 = 5.318 MB).
// The tied input weights are mu * beta^T, so no alpha is stored: that is
// the up-to-3.82x reduction.

#include <cstddef>

namespace seqge {

/// MB = 10^6 bytes, as in the paper's Table 5.
inline constexpr double kBytesPerMb = 1e6;

[[nodiscard]] constexpr double original_model_mb(
    std::size_t num_nodes, std::size_t dims,
    std::size_t bytes_per_scalar = 8) noexcept {
  return static_cast<double>(2 * num_nodes * dims * bytes_per_scalar) /
         kBytesPerMb;
}

[[nodiscard]] constexpr double proposed_model_mb(
    std::size_t num_nodes, std::size_t dims,
    std::size_t bytes_per_scalar = 4) noexcept {
  return static_cast<double>(
             (num_nodes * dims + dims * dims) * bytes_per_scalar) /
         kBytesPerMb;
}

[[nodiscard]] constexpr double model_size_ratio(std::size_t num_nodes,
                                                std::size_t dims) noexcept {
  return original_model_mb(num_nodes, dims) /
         proposed_model_mb(num_nodes, dims);
}

}  // namespace seqge
